package nurapid

import "testing"

func TestNewDefault(t *testing.T) {
	c, mem, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || mem == nil {
		t.Fatal("nil cache or memory")
	}
	r := c.Access(Req{Now: 0, Addr: 0x1000_0000, Write: false})
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	r = c.Access(Req{Now: 10_000, Addr: 0x1000_0000, Write: false})
	if !r.Hit || r.Group != 0 {
		t.Fatalf("want fastest-group hit, got %+v", r)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDGroups = 3
	if _, _, err := New(cfg); err == nil {
		t.Fatal("bad config must be rejected")
	}
}

func TestNewDNUCA(t *testing.T) {
	c, _, err := NewDNUCA(DefaultDNUCAConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Access(Req{Now: 0, Addr: 0x2000, Write: false})
	if g := c.GroupOf(0x2000); g != c.NumGroups()-1 {
		t.Fatalf("D-NUCA initial placement in group %d, want slowest", g)
	}
}

func TestNewBaseHierarchy(t *testing.T) {
	h, mem := NewBaseHierarchy()
	h.Access(Req{Now: 0, Addr: 0x4000, Write: false})
	if mem.Accesses != 1 {
		t.Fatalf("memory accesses = %d", mem.Accesses)
	}
}

func TestWorkloadAccessors(t *testing.T) {
	if len(Apps()) != 15 {
		t.Fatalf("roster size %d", len(Apps()))
	}
	app, ok := AppByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	g, err := NewGenerator(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Next(); !ok {
		t.Fatal("generator must produce instructions")
	}
}

func TestFullSystemViaFacade(t *testing.T) {
	c, _, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCPU(DefaultCPUConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := AppByName("gzip")
	gen, _ := NewGenerator(app, 2)
	res := core.Run(gen, 50_000)
	if res.Instructions != 50_000 || res.IPC <= 0 {
		t.Fatalf("run result %+v", res)
	}
}

func TestRunnerViaFacade(t *testing.T) {
	app, _ := AppByName("gzip")
	r := NewRunner(WithInstructions(60_000), WithSeed(1), WithApps(app))
	base := r.Run(app, Base())
	nu := r.Run(app, NuRAPIDOrg(DefaultConfig()))
	dn := r.Run(app, DNUCAOrg(DefaultDNUCAConfig()))
	id := r.Run(app, Ideal())
	for _, res := range []*RunResult{base, nu, dn, id} {
		if res.CPU.Cycles <= 0 {
			t.Fatalf("run %s/%s has no cycles", res.App, res.Org)
		}
	}
}
