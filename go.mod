module nurapid

go 1.22
