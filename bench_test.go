// Benchmarks regenerating every table and figure of the paper's
// evaluation at a reduced scale (a 5-application subset, a few hundred
// thousand instructions per run) so `go test -bench=.` completes in
// minutes. Headline metrics are attached to each benchmark via
// b.ReportMetric; the full-scale numbers come from cmd/experiments and
// are recorded in EXPERIMENTS.md.
package nurapid

import (
	"runtime"
	"testing"

	"nurapid/internal/memsys"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

// benchInstructions is the per-application run length for benches.
const benchInstructions = 400_000

// benchApps is the subset used by benches: three high-load applications
// spanning small and large working sets, plus one low-load control.
var benchApps = []string{"applu", "art", "mcf", "galgel", "gzip"}

func benchRunner(b *testing.B) *sim.Runner {
	b.Helper()
	return benchRunnerWorkers(b, 1)
}

func benchRunnerWorkers(b *testing.B, workers int) *sim.Runner {
	b.Helper()
	var apps []workload.App
	for _, name := range benchApps {
		a, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}
	return sim.NewRunner(
		sim.WithInstructions(benchInstructions),
		sim.WithSeed(1),
		sim.WithApps(apps...),
		sim.WithWorkers(workers),
	)
}

func report(b *testing.B, e *sim.Experiment, keys ...string) {
	b.Helper()
	for _, k := range keys {
		v, ok := e.Metrics[k]
		if !ok {
			b.Fatalf("experiment %s missing metric %s", e.ID, k)
		}
		b.ReportMetric(v, k)
	}
}

// BenchmarkTable2Energies regenerates the cache-energy table (paper
// Table 2) from the calibrated cacti model.
func BenchmarkTable2Energies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Table2()
		report(b, e, "closest_2mb_nj", "farthest_2mb_nj", "closest_nuca_nj")
	}
}

// BenchmarkTable3AppLoads measures the base-case IPC and L2
// accesses-per-kilo-instruction of the workload models (paper Table 3).
func BenchmarkTable3AppLoads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Table3()
		report(b, e, "apki_applu", "apki_mcf", "ipc_applu")
	}
}

// BenchmarkTable4Latencies regenerates the d-group latency table (paper
// Table 4).
func BenchmarkTable4Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Table4()
		report(b, e, "fastest_2g", "fastest_4g", "fastest_8g", "slowest_8g")
	}
}

// BenchmarkFig4Placement compares set-associative and
// distance-associative placement (paper Figure 4).
func BenchmarkFig4Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig4()
		report(b, e, "sa_group1_frac", "da_group1_frac")
	}
}

// BenchmarkFig5Policies measures the d-group access distribution of the
// three promotion policies (paper Figure 5).
func BenchmarkFig5Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig5()
		report(b, e, "g1_demotion_only", "g1_next_fastest", "g1_fastest")
	}
}

// BenchmarkFig6PolicyPerf measures promotion-policy performance relative
// to the base hierarchy (paper Figure 6).
func BenchmarkFig6PolicyPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig6()
		report(b, e, "rel_demotion_only", "rel_next_fastest", "rel_fastest", "rel_ideal")
	}
}

// BenchmarkLRUApprox compares random and true-LRU distance replacement
// (paper Sec. 5.3.1).
func BenchmarkLRUApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).LRUStudy()
		report(b, e, "g1_next-fastest/random", "g1_next-fastest/lru")
	}
}

// BenchmarkFig7Groups measures the access distribution of 2-, 4-, and
// 8-d-group NuRAPIDs (paper Figure 7).
func BenchmarkFig7Groups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig7()
		report(b, e, "g1_2groups", "g1_4groups", "g1_8groups")
	}
}

// BenchmarkFig8GroupPerf measures the performance of 2-, 4-, and
// 8-d-group NuRAPIDs (paper Figure 8).
func BenchmarkFig8GroupPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig8()
		report(b, e, "rel_2groups", "rel_4groups", "rel_8groups")
	}
}

// BenchmarkFig9VsDNUCA compares NuRAPID with the D-NUCA baseline (paper
// Figure 9).
func BenchmarkFig9VsDNUCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig9()
		report(b, e, "rel_dnuca", "rel_nurapid_4g", "avg_improvement", "max_improvement")
	}
}

// BenchmarkFig10Energy compares L2 dynamic energy and d-group access
// counts (paper Sec. 5.4.2).
func BenchmarkFig10Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig10()
		report(b, e, "energy_reduction", "group_access_reduction")
	}
}

// BenchmarkFig11EnergyDelay compares processor energy-delay (paper Sec.
// 5.4.2).
func BenchmarkFig11EnergyDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunner(b).Fig11()
		report(b, e, "ed_nurapid", "ed_dnuca_perf", "ed_improvement")
	}
}

// BenchmarkFig6Serial regenerates Figure 6 on the serial runner; the
// parallel variant below is the same work on a GOMAXPROCS-wide pool.
// Comparing the two pins the runner's parallel speedup (the numbers
// behind BENCH_runner.json; see TestBenchRunnerSmoke).
func BenchmarkFig6Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunnerWorkers(b, 1).Fig6()
		report(b, e, "rel_next_fastest")
	}
}

// BenchmarkFig6Parallel regenerates Figure 6 with a worker per core.
func BenchmarkFig6Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchRunnerWorkers(b, runtime.GOMAXPROCS(0)).Fig6()
		report(b, e, "rel_next_fastest")
	}
}

// BenchmarkNuRAPIDAccess measures the simulator's raw access throughput
// (not a paper figure; a regression guard for the hot path).
func BenchmarkNuRAPIDAccess(b *testing.B) {
	cache, _, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	app, _ := AppByName("applu")
	gen, _ := NewGenerator(app, 1)
	b.ResetTimer()
	now := int64(0)
	issued := 0
	for issued < b.N {
		in, _ := gen.Next()
		if in.Kind != workload.Load && in.Kind != workload.Store {
			continue
		}
		r := cache.Access(memsys.Req{Now: now, Addr: in.Addr, Write: in.Kind == workload.Store})
		now = r.DoneAt
		issued++
	}
}

// BenchmarkFullSystem measures end-to-end simulation speed in simulated
// instructions (not a paper figure; a regression guard).
func BenchmarkFullSystem(b *testing.B) {
	cache, _, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	core, err := NewCPU(DefaultCPUConfig(), cache)
	if err != nil {
		b.Fatal(err)
	}
	app, _ := AppByName("applu")
	gen, _ := NewGenerator(app, 1)
	b.ResetTimer()
	res := core.Run(gen, int64(b.N))
	if res.Instructions == 0 && b.N > 0 {
		b.Fatal("no instructions committed")
	}
}
