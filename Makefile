# Local entry points mirroring .github/workflows/ci.yml, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: build test race race-runner lint escape-rebaseline fmt bench bench-runner bench-core bench-cmp obs-bench audit diff-fuzz diff-fuzz-long ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-runner: the parallel experiment runner's determinism contract —
# All() on an 8-worker pool must render the same bytes as the serial
# runner — plus the sharded trace-gen / chunked-replay pipeline
# (ReplayAll at 1/2/4/8 workers byte-identical to serial, shared trace
# generation, tail-gap accounting), pool panic latching, and the
# singleflight, observer, and probe/trace machinery, under -race.
race-runner:
	$(GO) test -race -count=1 -run 'TestParallel|TestSingleflight|TestPrefetch|TestSerialPrefetch|TestReplayAll|TestReplayTrace|TestTraceStream|TestExtractTrace|TestRunPool|TestRunPanic|TestPaperRunSet|TestTextObserver|TestObserver|TestClock|TestProbe|TestTrace' ./internal/sim/

# lint = custom analyzers (determinism, panicstyle, statsreg, hotpath,
# probeorder, snapshotdet + the directives meta-check) + go vet via the
# multichecker, the compiler escape-analysis gate against the committed
# lint_escape_baseline.json, and a gofmt cleanliness check.
lint:
	$(GO) run ./cmd/nurapidlint ./...
	$(GO) run ./cmd/nurapidlint -escapecheck ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# escape-rebaseline: refresh lint_escape_baseline.json after a deliberate
# hot-path change; review and commit the diff.
escape-rebaseline:
	$(GO) run ./cmd/nurapidlint -escapecheck -rebaseline ./...

fmt:
	gofmt -w .

# bench smoke: one iteration per benchmark, to catch bit-rot without
# waiting for real measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-runner: sweep the sharded trace-gen + chunked-replay pipeline
# at 1/2/4/8/16 workers (byte-identity enforced at every width), time
# serial vs parallel Fig6 regeneration, and record the scaling curve
# with per-width efficiency in BENCH_runner.json. The >=0.5-efficiency
# gate at 4 workers is enforced only when GOMAXPROCS >= 4; single-proc
# hosts record the gate as skipped instead of faking a speedup.
bench-runner:
	BENCH_RUNNER_JSON=$(CURDIR)/BENCH_runner.json $(GO) test -count=1 -run '^TestBenchRunnerSmoke$$' -v .

# bench-core: run the core access-path benchmark suite, measure the
# headline steady-state NuRAPID ns/access, verify the path is still
# allocation-free, and write BENCH_core.json. Fails when ns/access
# regresses >10% against the committed BENCH_core.json baseline.
bench-core:
	$(GO) test -run='^$$' -bench='^BenchmarkCore' -benchtime=1x .
	BENCH_CORE_JSON=$(CURDIR)/BENCH_core.json $(GO) test -count=1 -run '^TestBenchCoreSmoke$$' -v .

# bench-cmp: measure the CMP front end's aggregate shared-L2 throughput
# (accesses per second of host time) at 1/2/4/8 cores and write
# BENCH_cmp.json. Fails when any core count regresses >15% against the
# committed baseline.
bench-cmp:
	BENCH_CMP_JSON=$(CURDIR)/BENCH_cmp.json $(GO) test -count=1 -run '^TestBenchCmpSmoke$$' -v .

# obs-bench: measure the disabled-probe overhead of the observability
# layer on the Fig6 workload and on the 2-core shared-L2 CMP experiment
# (probe-free vs nil-probe factory vs full Collector+Sampler probes),
# assert the rendered output stays byte-identical, and record wall
# times + overhead ratios in BENCH_obs.json. The queued CMP path adds
# the Enqueue/Issue/Inval emission sites; its <3% disabled-probe budget
# is asserted by the test itself.
obs-bench:
	BENCH_OBS_JSON=$(CURDIR)/BENCH_obs.json $(GO) test -count=1 -run '^TestBenchObsSmoke$$' -v .

# audit: the randomized invariant storm at full length.
audit:
	$(GO) test ./internal/nurapid/ -run TestAuditedAccessStorm -v

# diff-fuzz: the differential oracle at CI depth — every policy-matrix
# cell (placements x promotions x distance policies x triggers x two
# geometries) runs every adversarial workload for >=10k accesses against
# both the fast implementation and the executable spec, under -race.
# Divergences are shrunk and dumped as JSONL into $(DIFF_FUZZ_ARTIFACTS)
# (defaults to the test's temp dir).
diff-fuzz:
	DIFF_FUZZ=1 $(GO) test -race -count=1 -v -run 'TestDifferentialMatrix|TestSeededFault' ./internal/refmodel/difftest/

# diff-fuzz-long: the nightly soak (100k accesses per cell). Set
# DIFF_FUZZ_ARTIFACTS to keep shrunk reproducers outside the temp dir.
diff-fuzz-long:
	DIFF_FUZZ_LONG=1 $(GO) test -count=1 -timeout 60m -v -run TestDifferentialMatrix ./internal/refmodel/difftest/

ci: build test race race-runner lint bench bench-runner bench-core bench-cmp obs-bench diff-fuzz
