# Local entry points mirroring .github/workflows/ci.yml, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: build test race lint fmt bench audit ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = custom analyzers (determinism, panicstyle, statsreg) + go vet,
# via the multichecker, plus a gofmt cleanliness check.
lint:
	$(GO) run ./cmd/nurapidlint ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# bench smoke: one iteration per benchmark, to catch bit-rot without
# waiting for real measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# audit: the randomized invariant storm at full length.
audit:
	$(GO) test ./internal/nurapid/ -run TestAuditedAccessStorm -v

ci: build test race lint bench
