// Tracereplay records a synthetic workload trace once, then replays the
// identical instruction stream through all three lower-level cache
// organizations — the methodology of a trace-driven architecture study.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nurapid"
	"nurapid/internal/workload"
)

const instructions = 300_000

func main() {
	app, ok := nurapid.AppByName("equake")
	if !ok {
		log.Fatal("equake model missing")
	}

	// Record the trace into memory (cmd/tracegen writes the same format
	// to disk).
	var buf bytes.Buffer
	gen, err := nurapid.NewGenerator(app, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.Capture(&buf, app.Name, gen, instructions); err != nil {
		log.Fatal(err)
	}
	traceBytes := buf.Bytes()
	fmt.Printf("recorded %d instructions of %s (%d KB trace)\n\n",
		instructions, app.Name, len(traceBytes)/1024)

	fmt.Printf("%-22s %10s %8s %12s %14s\n", "organization", "cycles", "IPC", "L2 energy nJ", "mem accesses")
	for _, setup := range []struct {
		name  string
		build func() (nurapid.LowerLevel, *nurapid.Memory)
	}{
		{"base L2/L3", func() (nurapid.LowerLevel, *nurapid.Memory) {
			h, m := nurapid.NewBaseHierarchy()
			return h, m
		}},
		{"D-NUCA ss-perf", func() (nurapid.LowerLevel, *nurapid.Memory) {
			c, m, err := nurapid.NewDNUCA(nurapid.DefaultDNUCAConfig())
			if err != nil {
				log.Fatal(err)
			}
			return c, m
		}},
		{"NuRAPID 4 d-groups", func() (nurapid.LowerLevel, *nurapid.Memory) {
			c, m, err := nurapid.New(nurapid.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			return c, m
		}},
	} {
		l2, mem := setup.build()
		core, err := nurapid.NewCPU(nurapid.DefaultCPUConfig(), l2)
		if err != nil {
			log.Fatal(err)
		}
		reader, err := workload.NewTraceReader(bytes.NewReader(traceBytes))
		if err != nil {
			log.Fatal(err)
		}
		res := core.Run(reader, instructions)
		fmt.Printf("%-22s %10d %8.3f %12.0f %14d\n",
			setup.name, res.Cycles, res.IPC, l2.EnergyNJ(), mem.Accesses)
	}

	fmt.Println("\nevery organization saw the byte-identical access stream; the")
	fmt.Println("differences above are purely architectural.")
}
