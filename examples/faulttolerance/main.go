// Faulttolerance demonstrates the physical-layout argument of the
// paper's Section 3: because NuRAPID's d-groups are large, cache blocks
// spread across many subarrays — so spare subarrays can be shared across
// the whole d-group (hard-error tolerance) and a particle strike touches
// at most one bit of any ECC word (soft-error tolerance). D-NUCA's many
// small independent d-groups cannot share spares this way.
package main

import (
	"fmt"
	"log"

	"nurapid/internal/mathx"
	"nurapid/internal/sram"
)

func main() {
	cfg := sram.DefaultConfig()
	a, err := sram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one 2-MB d-group: %d data subarrays + %d spares, %d-way bit interleaving\n\n",
		a.NumDataSubarrays(), a.SparesRemaining(), a.Interleave())

	// Fill some blocks.
	rng := mathx.NewRNG(1)
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	if err := a.WriteBlock(42, payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block 42 is spread over subarrays %v\n\n", a.BlockSubarrays(42))

	// Hard error: a manufacturing defect in one subarray is fused out
	// onto a spare; the block's data survives and the spare pool is
	// shared by every block of the d-group.
	victim := a.BlockSubarrays(42)[3]
	if err := a.MarkDefective(victim); err != nil {
		log.Fatal(err)
	}
	got, st, err := a.ReadBlock(42)
	fmt.Printf("after fusing out subarray %d: read status=%v intact=%v spares left=%d\n\n",
		victim, st, err == nil && string(got) == string(payload), a.SparesRemaining())

	// Soft errors: alpha strikes flip adjacent bits, but bit
	// interleaving guarantees at most one flipped bit per ECC word.
	hits, err := a.InjectRandomStrikes(rng, 100, a.Interleave())
	if err != nil {
		log.Fatal(err)
	}
	rep := a.Scrub()
	fmt.Printf("injected %d random strikes of width %d: %v\n", len(hits), a.Interleave(), rep)
	fmt.Println("\nevery strike was correctable — the property NuRAPID keeps by using a")
	fmt.Println("few large d-groups, and D-NUCA gives up with 128 tiny independent ones.")
}
