// Policies compares NuRAPID's three promotion policies (demotion-only,
// next-fastest, fastest; paper Sec. 2.4.1 and Figures 5-6) on a phased
// workload: the program works on region A, shifts to region B (demoting
// A's blocks), then returns to A. The policies differ in how quickly A's
// blocks regain the fastest d-group.
package main

import (
	"fmt"
	"log"

	"nurapid"
)

const (
	regionBlocks = 12288 // 1.5 MB per region: region A + B exceed d-group 0
	blockBytes   = 128
)

func run(p nurapid.Promotion) {
	cfg := nurapid.DefaultConfig()
	cfg.Promotion = p
	c, _, err := nurapid.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	regionA := uint64(0x1000_0000)
	regionB := regionA + regionBlocks*blockBytes
	now := int64(0)
	touch := func(base uint64, rounds int) {
		for r := 0; r < rounds; r++ {
			for b := 0; b < regionBlocks; b++ {
				res := c.Access(nurapid.Req{Now: now, Addr: base + uint64(b)*blockBytes, Write: false})
				now = res.DoneAt + 3
			}
		}
	}

	touch(regionA, 2) // phase 1: A hot
	touch(regionB, 2) // phase 2: B hot, A demoted

	// Phase 3: A hot again. Measure its service latency per round.
	fmt.Printf("%-14s", p)
	for round := 0; round < 3; round++ {
		start := now
		var served int64
		for b := 0; b < regionBlocks; b++ {
			res := c.Access(nurapid.Req{Now: now, Addr: regionA + uint64(b)*blockBytes, Write: false})
			served += res.DoneAt - now
			now = res.DoneAt + 3
		}
		_ = start
		fmt.Printf("  round %d: %5.1f cyc/hit", round+1, float64(served)/regionBlocks)
	}
	ctrs := c.Counters()
	fmt.Printf("  (promotions %d, demotions %d)\n",
		ctrs.Get("promotions"), ctrs.Get("demotions"))
}

func main() {
	fmt.Println("Promotion-policy comparison: region A hot, then B, then A again.")
	fmt.Println("Average service latency of region A per re-visit round:")
	fmt.Println()
	for _, p := range []nurapid.Promotion{nurapid.DemotionOnly, nurapid.NextFastest, nurapid.Fastest} {
		run(p)
	}
	fmt.Println()
	fmt.Println("demotion-only leaves A stuck at the demoted latency; next-fastest")
	fmt.Println("recovers one d-group per hit; fastest recovers in a single hit but")
	fmt.Println("pays the largest swap traffic.")
}
