// Quickstart: build a NuRAPID cache, issue a handful of accesses, and
// watch distance placement at work — new blocks land in the fastest
// d-group and hits report which d-group (and therefore which latency)
// served them.
package main

import (
	"fmt"
	"log"

	"nurapid"
)

func main() {
	cache, mem, err := nurapid.New(nurapid.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NuRAPID quickstart: 8 MB, 8-way, 4 d-groups, next-fastest promotion")
	fmt.Printf("d-group latencies (cycles): %v\n\n", cache.GroupLatencies())

	addr := uint64(0x1000_0000)
	now := int64(0)

	// Cold miss: fetched from memory and placed in the fastest d-group.
	r := cache.Access(nurapid.Req{Now: now, Addr: addr, Write: false})
	fmt.Printf("cycle %5d: read %#x -> hit=%-5v done at cycle %d (memory latency %d)\n",
		now, addr, r.Hit, r.DoneAt, mem.Latency())
	fmt.Printf("             block now resides in d-group %d\n\n", cache.GroupOf(addr))

	// Warm hit: served at the fastest d-group's latency.
	now = r.DoneAt
	r = cache.Access(nurapid.Req{Now: now, Addr: addr, Write: false})
	fmt.Printf("cycle %5d: read %#x -> hit=%-5v served by d-group %d in %d cycles\n\n",
		now, addr, r.Hit, r.Group, r.DoneAt-now)

	// A dirty write, then enough conflicting blocks to evict it: the
	// writeback goes to memory, and distance replacement demotes blocks
	// rather than evicting them.
	cache.Access(nurapid.Req{Now: now, Addr: addr, Write: true})
	stride := uint64(8 << 20) // same set in the 8-MB, 8-way tag array
	for i := 1; i <= 8; i++ {
		now += 1000
		cache.Access(nurapid.Req{Now: now, Addr: addr + uint64(i)*stride, Write: false})
	}
	fmt.Printf("after 8 conflicting fills: block resident=%v, memory writebacks=%d\n",
		cache.Contains(addr), mem.Writes)
	fmt.Printf("\naccess distribution so far: %v\n", cache.Distribution())
	fmt.Printf("d-group data-array accesses: %v\n", cache.GroupAccesses())
	fmt.Printf("dynamic energy consumed: %.2f nJ\n", cache.EnergyNJ())
}
