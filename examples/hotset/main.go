// Hotset demonstrates the paper's motivating problem (Sec. 1, problem 2
// and Figure 4): when many ways of one cache set are hot, set-associative
// placement can keep only a couple of them in the fastest distance-group,
// while distance-associative placement keeps them all there.
//
// The workload hammers all 8 ways of a single set — the access pattern a
// large-matrix column walk produces.
package main

import (
	"fmt"
	"log"

	"nurapid"
)

func buildCache(p nurapid.Placement) *nurapid.Cache {
	cfg := nurapid.DefaultConfig()
	cfg.Placement = p
	if p == nurapid.SetAssociative {
		// The paper's set-associative comparison cache uses LRU for
		// distance replacement within the set's frames.
		cfg.Distance = nurapid.LRUDistance
	}
	c, _, err := nurapid.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	fmt.Println("Hot-set demonstration: 8 blocks mapping to ONE set of the 8-way tag array")
	fmt.Println()

	// Blocks one set-stride (1 MB here) apart share a set.
	const stride = 1 << 20
	base := uint64(0x1000_0000)

	for _, mode := range []nurapid.Placement{nurapid.SetAssociative, nurapid.DistanceAssociative} {
		c := buildCache(mode)
		now := int64(0)

		// Fill the hot set, then keep re-accessing it.
		for round := 0; round < 20; round++ {
			for i := 0; i < 8; i++ {
				r := c.Access(nurapid.Req{Now: now, Addr: base + uint64(i)*stride, Write: false})
				now = r.DoneAt + 10
			}
		}

		fmt.Printf("%s placement:\n", mode)
		perGroup := map[int]int{}
		for i := 0; i < 8; i++ {
			perGroup[c.GroupOf(base+uint64(i)*stride)]++
		}
		for g := 0; g < 4; g++ {
			fmt.Printf("  d-group %d holds %d of the 8 hot blocks\n", g, perGroup[g])
		}
		d := c.Distribution()
		fmt.Printf("  steady-state distribution: %v\n", d)
		fmt.Printf("  total cycles to run the pattern: %d\n\n", now)
	}

	fmt.Println("Distance associativity lets the whole hot set live at the fastest")
	fmt.Println("latency; set-associative placement strands 6 of 8 blocks in slower")
	fmt.Println("d-groups — exactly the restriction NuRAPID removes.")
}
