package nurapid

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

// runnerBench is the record the bench smoke writes to BENCH_runner.json
// so the runner's perf trajectory is tracked across PRs.
type runnerBench struct {
	Experiment   string  `json:"experiment"`
	Apps         int     `json:"apps"`
	Instructions int64   `json:"instructions_per_run"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	SerialNS     int64   `json:"serial_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
}

// TestBenchRunnerSmoke times a full multi-org experiment (Figure 6:
// base + three promotion policies + ideal, across the bench roster) on
// the serial runner and on a worker-per-core pool, verifies the two
// render identical bytes, and records the wall times. It only runs when
// BENCH_RUNNER_JSON names the output file (make bench-runner / CI), so
// plain `go test ./...` stays timing-free.
func TestBenchRunnerSmoke(t *testing.T) {
	out := os.Getenv("BENCH_RUNNER_JSON")
	if out == "" {
		t.Skip("set BENCH_RUNNER_JSON=<path> to run the runner bench smoke")
	}

	var apps []workload.App
	for _, name := range benchApps {
		a, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}
	workers := runtime.GOMAXPROCS(0)

	timeFig6 := func(w int) (time.Duration, string) {
		r := sim.NewRunner(
			sim.WithInstructions(benchInstructions),
			sim.WithSeed(1),
			sim.WithApps(apps...),
			sim.WithWorkers(w),
		)
		start := time.Now()
		e := r.Fig6()
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := e.Render(&buf, false); err != nil {
			t.Fatal(err)
		}
		return elapsed, buf.String()
	}

	serial, serialBytes := timeFig6(1)
	parallel, parallelBytes := timeFig6(workers)
	if serialBytes != parallelBytes {
		t.Fatalf("serial and parallel Fig6 rendered different bytes (%d vs %d)",
			len(serialBytes), len(parallelBytes))
	}

	rec := runnerBench{
		Experiment:   "fig6",
		Apps:         len(apps),
		Instructions: benchInstructions,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		SerialNS:     serial.Nanoseconds(),
		ParallelNS:   parallel.Nanoseconds(),
		Speedup:      float64(serial) / float64(parallel),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fig6 serial %v, parallel %v on %d workers (%.2fx); recorded in %s",
		serial, parallel, workers, rec.Speedup, out)
}
