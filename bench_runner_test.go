package nurapid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

// runnerSweepEntry is one point of the scaling curve: the trace-gen +
// replay pipeline's wall time at a worker count, with speedup and
// parallel efficiency (speedup / workers) relative to the 1-worker
// pass. One entry per worker count — the half-recorded pre-sweep schema
// pinned workers to 1 and omitted the parallel pass entirely, so the
// regression gate could not see scaling regressions at all.
type runnerSweepEntry struct {
	Workers    int     `json:"workers"`
	WallNS     int64   `json:"wall_ns"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Gate stamps the entry with its own gating status, so a recorded
	// curve can never be misread as an enforced one: a single-proc host
	// records real wall times but meaningless speedups, and before the
	// stamp a reader had to cross-reference the top-level EfficiencyGate
	// to know which points the gate actually saw.
	Gate string `json:"gate,omitempty"`
}

// sweepEntryGate renders one sweep entry's gating status: only the
// 4-worker point is ever enforced, and only when the host has at least 4
// procs to measure it with.
func sweepEntryGate(workers, procs int) string {
	if procs < 4 {
		return fmt.Sprintf("skipped (GOMAXPROCS=%d)", procs)
	}
	if workers == 4 {
		return "enforced (efficiency >= 0.5)"
	}
	return "not enforced (gate applies at 4 workers)"
}

// shouldWriteRunnerBench decides whether a fresh runner-bench record may
// replace the previous BENCH_runner.json contents. A host with fewer
// than 4 procs cannot measure wall-clock parallelism, so its record must
// not clobber one measured with enough procs to enforce the efficiency
// gate; anything else (no previous record, unreadable record, a host at
// least as capable) overwrites.
func shouldWriteRunnerBench(prev []byte, procs int) (bool, string) {
	if len(prev) == 0 {
		return true, "no previous record"
	}
	var old runnerBench
	if err := json.Unmarshal(prev, &old); err != nil {
		return true, fmt.Sprintf("previous record unreadable (%v)", err)
	}
	if procs < 4 && old.GOMAXPROCS >= 4 {
		return false, fmt.Sprintf(
			"refusing to overwrite a GOMAXPROCS=%d record (enforced gate) with a GOMAXPROCS=%d run that cannot measure parallelism",
			old.GOMAXPROCS, procs)
	}
	return true, "previous record superseded"
}

// runnerBench is the record the bench smoke writes to BENCH_runner.json
// so the runner's perf trajectory is tracked across PRs.
//
// TraceGenNS and ReplayNS split one serial pass over the bench roster
// into its two phases: synthesizing each application's L2-visible
// request stream and replaying those streams through NuRAPID's batched
// path. Sweep records the sharded-generation + chunked-replay
// pipeline's wall time at 1/2/4/8/16 workers over the full (app, org)
// job matrix; EfficiencyGate says whether the >=0.5-efficiency-at-4-
// workers gate was enforced or why it was skipped (a single-proc host
// cannot measure wall-clock parallelism, and recording a fake sub-1.0
// "speedup" is exactly the bug an earlier revision of this bench had).
type runnerBench struct {
	Experiment     string             `json:"experiment"`
	Apps           int                `json:"apps"`
	ReplayOrgs     int                `json:"replay_orgs"`
	Instructions   int64              `json:"instructions_per_run"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	TraceRequests  int64              `json:"trace_requests"`
	TraceGenNS     int64              `json:"trace_gen_ns"`
	ReplayNS       int64              `json:"replay_ns"`
	Sweep          []runnerSweepEntry `json:"sweep"`
	EfficiencyGate string             `json:"efficiency_gate"`
	Fig6SerialNS   int64              `json:"fig6_serial_ns"`
	// Fig6ParallelNS and Fig6Speedup cover the full-system experiment
	// runner (Prefetch fan-out) and are only recorded when more than
	// one proc is actually available.
	Fig6ParallelNS int64   `json:"fig6_parallel_ns,omitempty"`
	Fig6Speedup    float64 `json:"fig6_speedup,omitempty"`
}

// benchSweepWorkers is the recorded scaling curve's worker counts.
var benchSweepWorkers = []int{1, 2, 4, 8, 16}

// benchReplayOrgs is the organization set each app's trace is replayed
// through in the sweep: one per family, so the job matrix (apps x
// orgs) gives the pool real width.
func benchReplayOrgs() []sim.Organization {
	return []sim.Organization{
		sim.Base(),
		sim.Ideal(),
		sim.DNUCA(nuca.DefaultConfig()),
		sim.NuRAPID(nurapid.DefaultConfig()),
	}
}

// TestBenchRunnerSmoke measures the parallel replay pipeline and the
// experiment runner, and records BENCH_runner.json:
//
//  1. a serial phase split (trace generation vs batched replay) for an
//     honest single-core baseline;
//  2. the sharded trace-gen + chunked-replay pipeline at 1/2/4/8/16
//     workers over the (app, org) job matrix — verifying every worker
//     count's fingerprints are byte-identical to the serial pass, and
//     gating on >=0.5 parallel efficiency at 4 workers when the host
//     has at least 4 procs;
//  3. serial-vs-parallel Fig6 regeneration (byte-identity always;
//     wall-clock comparison only when more than one proc exists).
//
// It only runs when BENCH_RUNNER_JSON names the output file (make
// bench-runner / CI), so plain `go test ./...` stays timing-free.
func TestBenchRunnerSmoke(t *testing.T) {
	out := os.Getenv("BENCH_RUNNER_JSON")
	if out == "" {
		t.Skip("set BENCH_RUNNER_JSON=<path> to run the runner bench smoke")
	}

	var apps []workload.App
	for _, name := range benchApps {
		a, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}
	procs := runtime.GOMAXPROCS(0)
	model := cacti.Default()
	orgs := benchReplayOrgs()

	// Phase split: trace generation vs batched replay, both serial.
	nrOrg := sim.NuRAPID(nurapid.DefaultConfig())
	var traceGen, replay time.Duration
	var traceReqs int64
	for _, app := range apps {
		start := time.Now()
		reqs := sim.ExtractTrace(app, 1, int(benchInstructions))
		traceGen += time.Since(start)
		traceReqs += int64(len(reqs))
		start = time.Now()
		sim.Replay(model, nrOrg, reqs)
		replay += time.Since(start)
	}

	// The scaling sweep: every app's stream through every organization,
	// sharded generation + chunked replay on a bounded pool.
	var jobs []sim.ReplayJob
	for _, app := range apps {
		for _, org := range orgs {
			jobs = append(jobs, sim.ReplayJob{App: app, Seed: 1, N: int(benchInstructions), Org: org})
		}
	}
	timePipeline := func(w int) (time.Duration, []uint64) {
		start := time.Now()
		results := sim.ReplayAll(model, jobs, sim.ReplayOptions{Workers: w})
		elapsed := time.Since(start)
		fps := make([]uint64, len(results))
		for i, r := range results {
			fps[i] = r.Fingerprint()
		}
		return elapsed, fps
	}

	serialWall, serialFPs := timePipeline(1)
	sweep := []runnerSweepEntry{{Workers: 1, WallNS: serialWall.Nanoseconds(), Speedup: 1, Efficiency: 1,
		Gate: sweepEntryGate(1, procs)}}
	effAt := map[int]float64{1: 1}
	for _, w := range benchSweepWorkers[1:] {
		wall, fps := timePipeline(w)
		for i := range fps {
			if fps[i] != serialFPs[i] {
				t.Fatalf("workers=%d: job %d fingerprint %#016x differs from serial %#016x",
					w, i, fps[i], serialFPs[i])
			}
		}
		speedup := float64(serialWall) / float64(wall)
		entry := runnerSweepEntry{
			Workers:    w,
			WallNS:     wall.Nanoseconds(),
			Speedup:    speedup,
			Efficiency: speedup / float64(w),
			Gate:       sweepEntryGate(w, procs),
		}
		sweep = append(sweep, entry)
		effAt[w] = entry.Efficiency
		t.Logf("pipeline %2d workers: %v (%.2fx, efficiency %.2f)", w, wall, speedup, entry.Efficiency)
	}

	gate := fmt.Sprintf("skipped: gomaxprocs %d < 4, wall-clock parallelism unmeasurable", procs)
	if procs >= 4 {
		gate = "enforced: efficiency at 4 workers >= 0.5"
		if effAt[4] < 0.5 {
			t.Errorf("parallel efficiency at 4 workers = %.2f, want >= 0.5 — the pipeline is not scaling", effAt[4])
			gate = fmt.Sprintf("FAILED: efficiency %.2f at 4 workers < 0.5", effAt[4])
		}
	}

	// The full-system experiment runner: serial vs worker-per-proc
	// Fig6, byte-identity always enforced.
	timeFig6 := func(w int) (time.Duration, string) {
		r := sim.NewRunner(
			sim.WithInstructions(benchInstructions),
			sim.WithSeed(1),
			sim.WithApps(apps...),
			sim.WithWorkers(w),
		)
		start := time.Now()
		e := r.Fig6()
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := e.Render(&buf, false); err != nil {
			t.Fatal(err)
		}
		return elapsed, buf.String()
	}
	serialFig6, serialBytes := timeFig6(1)

	rec := runnerBench{
		Experiment:     "replay-pipeline+fig6",
		Apps:           len(apps),
		ReplayOrgs:     len(orgs),
		Instructions:   benchInstructions,
		GOMAXPROCS:     procs,
		TraceRequests:  traceReqs,
		TraceGenNS:     traceGen.Nanoseconds(),
		ReplayNS:       replay.Nanoseconds(),
		Sweep:          sweep,
		EfficiencyGate: gate,
		Fig6SerialNS:   serialFig6.Nanoseconds(),
	}
	if procs > 1 {
		parallel, parallelBytes := timeFig6(procs)
		if serialBytes != parallelBytes {
			t.Fatalf("serial and parallel Fig6 rendered different bytes (%d vs %d)",
				len(serialBytes), len(parallelBytes))
		}
		rec.Fig6ParallelNS = parallel.Nanoseconds()
		rec.Fig6Speedup = float64(serialFig6) / float64(parallel)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	prev, readErr := os.ReadFile(out)
	if readErr != nil {
		prev = nil // no previous record (or unreadable): write fresh
	}
	if ok, reason := shouldWriteRunnerBench(prev, procs); !ok {
		t.Logf("keeping existing %s: %s", out, reason)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("pipeline serial %v over %d jobs; trace-gen %v, replay %v; fig6 serial %v; gate: %s; recorded in %s",
		serialWall, len(jobs), traceGen, replay, serialFig6, gate, out)
}
