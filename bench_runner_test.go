package nurapid

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/nurapid"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

// runnerBench is the record the bench smoke writes to BENCH_runner.json
// so the runner's perf trajectory is tracked across PRs.
//
// TraceGenNS and ReplayNS split one serial pass over the bench roster
// into its two phases: synthesizing each application's L2-visible
// request stream (per-core front-end work that CMP scaling cannot
// parallelize away) and replaying those streams through NuRAPID's
// batched path. The split keeps the speedup record honest — an earlier
// revision timed "serial vs parallel" on a single-proc machine and
// recorded a meaningless 0.995x, with trace generation silently folded
// into both sides.
type runnerBench struct {
	Experiment    string `json:"experiment"`
	Apps          int    `json:"apps"`
	Instructions  int64  `json:"instructions_per_run"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Workers       int    `json:"workers"`
	TraceRequests int64  `json:"trace_requests"`
	TraceGenNS    int64  `json:"trace_gen_ns"`
	ReplayNS      int64  `json:"replay_ns"`
	SerialNS      int64  `json:"serial_ns"`
	// ParallelNS and Speedup are only recorded when more than one
	// worker is actually available; omitted otherwise rather than
	// reporting a sub-1.0 "speedup" that only reflects timer noise.
	ParallelNS int64   `json:"parallel_ns,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// TestBenchRunnerSmoke times a full multi-org experiment (Figure 6:
// base + three promotion policies + ideal, across the bench roster) on
// the serial runner — and on a worker-per-core pool when the machine
// has more than one proc — verifies serial and parallel render
// identical bytes, and records the wall times. A separate serial pass
// times trace generation and batched replay individually, giving the
// CMP scaling numbers an honest single-core baseline. It only runs
// when BENCH_RUNNER_JSON names the output file (make bench-runner /
// CI), so plain `go test ./...` stays timing-free.
func TestBenchRunnerSmoke(t *testing.T) {
	out := os.Getenv("BENCH_RUNNER_JSON")
	if out == "" {
		t.Skip("set BENCH_RUNNER_JSON=<path> to run the runner bench smoke")
	}

	var apps []workload.App
	for _, name := range benchApps {
		a, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}
	workers := runtime.GOMAXPROCS(0)

	// Phase split: trace generation vs batched replay, both serial.
	model := cacti.Default()
	org := sim.NuRAPID(nurapid.DefaultConfig())
	var traceGen, replay time.Duration
	var traceReqs int64
	for _, app := range apps {
		start := time.Now()
		reqs := sim.ExtractTrace(app, 1, int(benchInstructions))
		traceGen += time.Since(start)
		traceReqs += int64(len(reqs))
		start = time.Now()
		sim.Replay(model, org, reqs)
		replay += time.Since(start)
	}

	timeFig6 := func(w int) (time.Duration, string) {
		r := sim.NewRunner(
			sim.WithInstructions(benchInstructions),
			sim.WithSeed(1),
			sim.WithApps(apps...),
			sim.WithWorkers(w),
		)
		start := time.Now()
		e := r.Fig6()
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := e.Render(&buf, false); err != nil {
			t.Fatal(err)
		}
		return elapsed, buf.String()
	}

	serial, serialBytes := timeFig6(1)

	rec := runnerBench{
		Experiment:    "fig6",
		Apps:          len(apps),
		Instructions:  benchInstructions,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       workers,
		TraceRequests: traceReqs,
		TraceGenNS:    traceGen.Nanoseconds(),
		ReplayNS:      replay.Nanoseconds(),
		SerialNS:      serial.Nanoseconds(),
	}
	if workers > 1 {
		parallel, parallelBytes := timeFig6(workers)
		if serialBytes != parallelBytes {
			t.Fatalf("serial and parallel Fig6 rendered different bytes (%d vs %d)",
				len(serialBytes), len(parallelBytes))
		}
		rec.ParallelNS = parallel.Nanoseconds()
		rec.Speedup = float64(serial) / float64(parallel)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if rec.Speedup != 0 {
		t.Logf("fig6 serial %v, parallel %v on %d workers (%.2fx); trace-gen %v, replay %v; recorded in %s",
			serial, time.Duration(rec.ParallelNS), workers, rec.Speedup, traceGen, replay, out)
	} else {
		t.Logf("fig6 serial %v on 1 worker (parallel pass skipped); trace-gen %v, replay %v; recorded in %s",
			serial, traceGen, replay, out)
	}
}
