package nurapid

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/cmp"
	"nurapid/internal/memsys"
	core "nurapid/internal/nurapid"
	"nurapid/internal/workload"
)

// cmpBenchBaselineFile is the committed CMP perf baseline at the repo
// root. `make bench-cmp` rewrites it locally; CI reads the committed
// copy and fails on a >15% aggregate-throughput regression at any core
// count. The gate is looser than bench-core's 10% because a whole-
// system run (cores + L1s + queue + shared L2) is noisier than the
// isolated access path.
const cmpBenchBaselineFile = "BENCH_cmp.json"

// cmpBenchPoint is one core-count measurement in BENCH_cmp.json.
type cmpBenchPoint struct {
	Cores          int     `json:"cores"`
	L2Accesses     int64   `json:"l2_accesses"`
	WallNS         int64   `json:"wall_ns"`
	AccessesPerSec float64 `json:"l2_accesses_per_sec"`
	AggregateIPC   float64 `json:"aggregate_ipc"`
	Fairness       float64 `json:"fairness"`
}

// cmpBench is the record written to BENCH_cmp.json.
type cmpBench struct {
	Benchmark    string          `json:"benchmark"`
	App          string          `json:"app"`
	Instructions int64           `json:"instructions_per_core"`
	Sharing      string          `json:"sharing"`
	Points       []cmpBenchPoint `json:"points"`
}

// cmpBenchInstructions keeps one point under ~a second of simulated
// work while still reaching L2 steady state.
const cmpBenchInstructions = 200_000

// TestBenchCmpSmoke measures the CMP front end's aggregate wall-clock
// throughput (shared-L2 accesses per second of host time) at 1, 2, 4,
// and 8 cores on a shared NuRAPID L2, records the per-point IPC and
// fairness, writes BENCH_cmp.json, and — when a committed baseline
// exists — fails if any core count's throughput regressed more than
// 15% against it. It only runs when BENCH_CMP_JSON names the output
// file (make bench-cmp / CI), so plain `go test ./...` stays
// timing-free.
func TestBenchCmpSmoke(t *testing.T) {
	out := os.Getenv("BENCH_CMP_JSON")
	if out == "" {
		t.Skip("set BENCH_CMP_JSON=<path> to run the CMP bench smoke")
	}

	app, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("app mcf missing")
	}

	rec := cmpBench{
		Benchmark:    "cmp-nurapid-default/private",
		App:          app.Name,
		Instructions: cmpBenchInstructions,
		Sharing:      cmp.Private.String(),
	}
	for _, cores := range []int{1, 2, 4, 8} {
		mem := memsys.NewMemory(core.DefaultConfig().BlockBytes)
		l2 := core.MustNew(core.DefaultConfig(), cacti.Default(), mem)
		sys := cmp.MustNew(l2, cmp.Config{Cores: cores, Sharing: cmp.Private})

		// Best-of-N: the minimum is the least noisy estimator on a
		// shared machine. Each run needs a fresh system (the L2 and
		// cores carry state), so re-time the whole construction-free
		// Run; construction cost is negligible against the run itself.
		const tries = 3
		var res cmp.Result
		best := time.Duration(1<<63 - 1)
		for i := 0; i < tries; i++ {
			mem := memsys.NewMemory(core.DefaultConfig().BlockBytes)
			l2 := core.MustNew(core.DefaultConfig(), cacti.Default(), mem)
			sys = cmp.MustNew(l2, cmp.Config{Cores: cores, Sharing: cmp.Private})
			srcs, err := sys.Sources(app, 1)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			r := sys.Run(srcs, cmpBenchInstructions)
			if d := time.Since(start); d < best {
				best = d
				res = r
			}
		}

		var l2Accesses int64
		for i := range res.PerCore {
			l2Accesses += res.PerCore[i].Accesses
		}
		rec.Points = append(rec.Points, cmpBenchPoint{
			Cores:          cores,
			L2Accesses:     l2Accesses,
			WallNS:         best.Nanoseconds(),
			AccessesPerSec: float64(l2Accesses) / best.Seconds(),
			AggregateIPC:   res.AggregateIPC,
			Fairness:       res.Fairness,
		})
		t.Logf("cmp bench: %d cores, %d L2 accesses in %v (%.0f acc/s, IPC %.3f, fairness %.3f)",
			cores, l2Accesses, best, float64(l2Accesses)/best.Seconds(), res.AggregateIPC, res.Fairness)
	}

	// Regression gate against the committed baseline, when present.
	if data, err := os.ReadFile(cmpBenchBaselineFile); err == nil {
		var base cmpBench
		if err := json.Unmarshal(data, &base); err != nil {
			t.Fatalf("committed %s is corrupt: %v", cmpBenchBaselineFile, err)
		}
		baseByCores := map[int]cmpBenchPoint{}
		for _, p := range base.Points {
			baseByCores[p.Cores] = p
		}
		for _, p := range rec.Points {
			b, ok := baseByCores[p.Cores]
			if !ok || b.AccessesPerSec <= 0 {
				continue
			}
			if p.AccessesPerSec < b.AccessesPerSec*0.85 {
				t.Errorf("%d-core throughput regressed: %.0f acc/s vs committed baseline %.0f (>15%%)",
					p.Cores, p.AccessesPerSec, b.AccessesPerSec)
			}
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
