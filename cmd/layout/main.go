// Command layout inspects the physical models behind the simulators: the
// L-shaped NuRAPID floorplan, the D-NUCA bank grid, and the calibrated
// latency/energy tables they produce (the paper's Tables 2 and 4).
//
// Usage:
//
//	layout                 # NuRAPID floorplans for 2, 4, and 8 d-groups
//	layout -groups 4       # one configuration in detail
//	layout -nuca           # the D-NUCA bank grid
package main

import (
	"flag"
	"fmt"
	"os"

	"nurapid/internal/cacti"
	"nurapid/internal/floorplan"
	"nurapid/internal/stats"
)

func main() {
	var (
		groups = flag.Int("groups", 0, "show one d-group count in detail (2, 4, or 8)")
		nuca   = flag.Bool("nuca", false, "show the D-NUCA bank grid instead")
	)
	flag.Parse()
	m := cacti.Default()

	if *nuca {
		showNUCA(m)
		return
	}
	if *groups != 0 {
		showPlan(m, *groups)
		return
	}
	for _, n := range []int{2, 4, 8} {
		showPlan(m, n)
		fmt.Println()
	}
}

func showPlan(m *cacti.Model, n int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "invalid configuration: %v\n", r)
			os.Exit(2)
		}
	}()
	plan := floorplan.NewLShapedPlan(8, n)
	lats := m.DGroupLatencies(plan)
	energies := m.DGroupEnergies(plan)
	t := stats.NewTable(fmt.Sprintf("NuRAPID 8 MB, %d d-groups of %.0f MB (L-shaped floorplan)", n, plan.GroupMB()),
		"d-group", "arm", "offset (units)", "route (units)", "latency (cyc)", "energy (nJ)")
	for i, g := range plan.Groups {
		t.AddRow(fmt.Sprintf("%d", i), g.Arm.String(),
			fmt.Sprintf("%.2f", g.Offset), fmt.Sprintf("%.2f", g.Route),
			fmt.Sprintf("%d", lats[i]), energies[i])
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("(1 unit = the side of a 1-MB array; tag array adds %d cycles to every access)\n", m.TagCycles)
}

func showNUCA(m *cacti.Model) {
	grid := floorplan.NewNUCAGrid(8, 64)
	lats := m.NUCABankLatencies(grid)
	energies := m.NUCABankEnergies(grid)
	fmt.Printf("D-NUCA 8 MB: %d x %d grid of 64-KB banks (core centered below row 0)\n\n",
		grid.Cols, grid.Rows)
	fmt.Println("per-bank latency (cycles):")
	for r := 0; r < grid.Rows; r++ {
		for c := 0; c < grid.Cols; c++ {
			fmt.Printf("%3d", lats[r*grid.Cols+c])
		}
		fmt.Println()
	}
	order := grid.BanksByDistance()
	near, far := order[0], order[len(order)-1]
	fmt.Printf("\nnearest bank: #%d at %.2f units, %d cycles, %.2f nJ\n",
		near, grid.BankRoute(near), lats[near], energies[near])
	fmt.Printf("farthest bank: #%d at %.2f units, %d cycles, %.2f nJ\n",
		far, grid.BankRoute(far), lats[far], energies[far])
	avg := 0.0
	for _, e := range energies {
		avg += e
	}
	fmt.Printf("average bank energy: %.2f nJ (cf. Table 2)\n", avg/float64(len(energies)))
}
