// Command nurapidsim runs one (application x organization) simulation and
// prints the full statistics: IPC, L2 access distribution, energy
// breakdown, and the organization's event counters.
//
// Usage:
//
//	nurapidsim -app mcf -org nurapid -groups 4 -promotion next-fastest
//	nurapidsim -app art -org dnuca -policy ss-energy
//	nurapidsim -app applu -org base
//	nurapidsim -list    # show the application roster
package main

import (
	"flag"
	"fmt"
	"os"

	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

func main() {
	var (
		appName   = flag.String("app", "applu", "application model (see -list)")
		orgName   = flag.String("org", "nurapid", "base | ideal | nurapid | dnuca")
		groups    = flag.Int("groups", 4, "nurapid: number of d-groups (2, 4, 8)")
		promotion = flag.String("promotion", "next-fastest", "nurapid: demotion-only | next-fastest | fastest")
		distance  = flag.String("distance", "random", "nurapid: random | lru distance replacement")
		placement = flag.String("placement", "da", "nurapid: da | sa placement")
		restrict  = flag.Int("restrict", 0, "nurapid: frames per d-group a block may use (0 = all)")
		policy    = flag.String("policy", "ss-performance", "dnuca: ss-performance | ss-energy")
		n         = flag.Int64("n", 2_000_000, "instructions to simulate")
		seed      = flag.Uint64("seed", 1, "workload seed")
		list      = flag.Bool("list", false, "list application models and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-4s %-5s %8s %8s\n", "name", "type", "class", "IPC", "APKI")
		for _, a := range workload.Apps() {
			typ := "Int"
			if a.FP {
				typ = "FP"
			}
			fmt.Printf("%-10s %-4s %-5s %8.1f %8.0f\n", a.Name, typ, a.Class, a.TableIPC, a.TableAPKI)
		}
		return
	}

	app, ok := workload.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q (use -list)\n", *appName)
		os.Exit(2)
	}

	org, err := pickOrg(*orgName, *groups, *promotion, *distance, *placement, *restrict, *policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	r := sim.NewRunner(sim.WithInstructions(*n), sim.WithSeed(*seed))
	res := r.Run(app, org)

	fmt.Printf("application: %s    organization: %s\n", res.App, res.Org)
	fmt.Printf("instructions: %d    cycles: %d    IPC: %.3f\n",
		res.CPU.Instructions, res.CPU.Cycles, res.CPU.IPC)
	fmt.Printf("L1D: %d accesses, %d misses (%.1f%%)    L1I: %d accesses, %d misses\n",
		res.CPU.L1DAccesses, res.CPU.L1DMisses,
		100*float64(res.CPU.L1DMisses)/float64(max(res.CPU.L1DAccesses, 1)),
		res.CPU.L1IAccesses, res.CPU.L1IMisses)
	fmt.Printf("L2 accesses: %d (APKI %.1f)    memory accesses: %d\n",
		res.CPU.L2Accesses, res.CPU.APKI, res.MemAccesses)
	fmt.Printf("L2 access distribution: %v\n", res.L2Dist)
	if res.L2GroupAccesses != nil {
		fmt.Printf("d-group data-array accesses: %v\n", res.L2GroupAccesses)
	}
	fmt.Printf("energy (nJ): core %.0f, L1 %.0f, L2 %.0f, memory %.0f, total %.0f\n",
		res.Energy.CoreNJ, res.Energy.L1NJ, res.Energy.L2NJ, res.Energy.MemoryNJ,
		res.Energy.TotalNJ())
	fmt.Printf("energy-delay: %.3e nJ-cycles\n", res.ED)
	fmt.Println("organization counters:")
	for _, name := range res.L2Ctrs.Names() {
		fmt.Printf("  %-24s %12d\n", name, res.L2Ctrs.Get(name))
	}
}

func pickOrg(name string, groups int, promotion, distance, placement string, restrict int, policy string) (sim.Organization, error) {
	switch name {
	case "base":
		return sim.Base(), nil
	case "ideal":
		return sim.Ideal(), nil
	case "nurapid":
		cfg := nurapid.DefaultConfig()
		cfg.NumDGroups = groups
		cfg.RestrictFrames = restrict
		switch promotion {
		case "demotion-only":
			cfg.Promotion = nurapid.DemotionOnly
		case "next-fastest":
			cfg.Promotion = nurapid.NextFastest
		case "fastest":
			cfg.Promotion = nurapid.Fastest
		default:
			return sim.Organization{}, fmt.Errorf("unknown promotion %q", promotion)
		}
		switch distance {
		case "random":
			cfg.Distance = nurapid.RandomDistance
		case "lru":
			cfg.Distance = nurapid.LRUDistance
		default:
			return sim.Organization{}, fmt.Errorf("unknown distance policy %q", distance)
		}
		switch placement {
		case "da":
			cfg.Placement = nurapid.DistanceAssociative
		case "sa":
			cfg.Placement = nurapid.SetAssociative
		default:
			return sim.Organization{}, fmt.Errorf("unknown placement %q", placement)
		}
		return sim.NuRAPID(cfg), nil
	case "dnuca":
		cfg := nuca.DefaultConfig()
		switch policy {
		case "ss-performance":
			cfg.Policy = nuca.SSPerformance
		case "ss-energy":
			cfg.Policy = nuca.SSEnergy
		default:
			return sim.Organization{}, fmt.Errorf("unknown search policy %q", policy)
		}
		return sim.DNUCA(cfg), nil
	default:
		return sim.Organization{}, fmt.Errorf("unknown organization %q", name)
	}
}
