// Command tracegen records synthetic application traces to disk and
// inspects existing trace files.
//
// Usage:
//
//	tracegen -app mcf -n 1000000 -o mcf.trace     # record
//	tracegen -inspect mcf.trace                   # summarize
//	tracegen -app mcf -analyze                    # reuse-distance profile
//	tracegen -inspect mcf.trace -analyze          # profile a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"nurapid/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "applu", "application model to record")
		n       = flag.Int64("n", 1_000_000, "instructions to record")
		out     = flag.String("o", "", "output trace path (default <app>.trace)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		inspect = flag.String("inspect", "", "summarize an existing trace instead of recording")
		analyze = flag.Bool("analyze", false, "print a reuse-distance and footprint profile")
	)
	flag.Parse()

	if *analyze {
		if err := analyzeSource(*inspect, *appName, *seed, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	app, ok := workload.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = app.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := workload.MustNewGenerator(app, *seed)
	if err := workload.Capture(f, app.Name, gen, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", *n, app.Name, path)
}

// analyzeSource profiles the data references of either a trace file or a
// freshly generated stream: exact LRU reuse distances, the distinct-block
// footprint, and the hit rate a fully-associative LRU cache of each
// interesting capacity would see.
func analyzeSource(tracePath, appName string, seed uint64, n int64) error {
	var src workload.Source
	label := ""
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := workload.NewTraceReader(f)
		if err != nil {
			return err
		}
		src, label = r, fmt.Sprintf("trace %s (%s)", tracePath, r.Name())
	} else {
		app, ok := workload.ByName(appName)
		if !ok {
			return fmt.Errorf("unknown application %q", appName)
		}
		src, label = workload.MustNewGenerator(app, seed), "generator "+app.Name
	}

	a := workload.AnalyzeSource(src, n, 128)
	h := a.Histogram()
	fmt.Printf("analysis of %s over %d instructions\n\n", label, n)
	if err := h.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ndistinct 128-B blocks touched: %d (%.1f KB)\n",
		a.DistinctBlocks(), float64(a.DistinctBlocks())*128/1024)
	fmt.Println("\nLRU hit rate by cache capacity (fully associative bound):")
	for _, c := range []struct {
		name   string
		blocks int64
	}{
		{"64 KB (L1)", 512},
		{"1 MB (base L2)", 8192},
		{"2 MB (d-group)", 16384},
		{"8 MB (NuRAPID)", 65536},
	} {
		fmt.Printf("  %-16s %6.1f%%\n", c.name, 100*h.HitFractionAt(c.blocks))
	}
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := workload.NewTraceReader(f)
	if err != nil {
		return err
	}
	counts := map[workload.Kind]int64{}
	mispredicts := int64(0)
	var records int64
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		records++
		counts[in.Kind]++
		if in.Mispredicted {
			mispredicts++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("trace: %s    app: %s    records: %d (declared %d)\n",
		path, r.Name(), records, r.Count())
	for _, k := range []workload.Kind{workload.ALU, workload.Load, workload.Store, workload.Branch} {
		fmt.Printf("  %-7s %12d (%.1f%%)\n", k, counts[k],
			100*float64(counts[k])/float64(max(records, 1)))
	}
	fmt.Printf("  mispredicted branches: %d\n", mispredicts)
	return nil
}
