// Command tracegen records synthetic application traces to disk and
// inspects existing trace files.
//
// Usage:
//
//	tracegen -app mcf -n 1000000 -o mcf.trace     # record
//	tracegen -all -o traces/                      # record the full roster
//	tracegen -all -workers 4                      # ... on 4 concurrent streams
//	tracegen -inspect mcf.trace                   # summarize
//	tracegen -app mcf -analyze                    # reuse-distance profile
//	tracegen -inspect mcf.trace -analyze          # profile a trace file
//
// -all captures every registered application concurrently (one
// independent generator stream per app, -workers capture goroutines);
// each trace file's bytes are identical to a serial -app capture with
// the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"nurapid/internal/workload"
)

func main() {
	var (
		appName = flag.String("app", "applu", "application model to record")
		n       = flag.Int64("n", 1_000_000, "instructions to record")
		out     = flag.String("o", "", "output trace path (default <app>.trace)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		inspect = flag.String("inspect", "", "summarize an existing trace instead of recording")
		analyze = flag.Bool("analyze", false, "print a reuse-distance and footprint profile")
		all     = flag.Bool("all", false, "record every registered application (-o names the output directory)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent capture streams with -all")
	)
	flag.Parse()

	if *all {
		if err := captureAll(*out, *seed, *n, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *analyze {
		if err := analyzeSource(*inspect, *appName, *seed, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	app, ok := workload.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = app.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := workload.MustNewGenerator(app, *seed)
	if err := workload.Capture(f, app.Name, gen, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", *n, app.Name, path)
}

// captureAll records every registered application's trace concurrently.
// Each app gets its own generator (generators are stateful and cannot
// be shared), so the streams are fully independent and the per-file
// bytes match a serial capture exactly; only wall time changes with the
// worker count. The summary prints in roster order regardless of which
// capture finished first.
func captureAll(dir string, seed uint64, n int64, workers int) error {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	apps := workload.Apps()
	if workers < 1 {
		workers = 1
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	errs := make([]error, len(apps))
	paths := make([]string, len(apps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				app := apps[i]
				paths[i] = filepath.Join(dir, app.Name+".trace")
				errs[i] = captureOne(paths[i], app, seed, n)
			}
		}()
	}
	for i := range apps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, app := range apps {
		if errs[i] != nil {
			return fmt.Errorf("capture %s: %w", app.Name, errs[i])
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", n, app.Name, paths[i])
	}
	return nil
}

// captureOne records a single app's stream to path.
func captureOne(path string, app workload.App, seed uint64, n int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gen := workload.MustNewGenerator(app, seed)
	if err := workload.Capture(f, app.Name, gen, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// analyzeSource profiles the data references of either a trace file or a
// freshly generated stream: exact LRU reuse distances, the distinct-block
// footprint, and the hit rate a fully-associative LRU cache of each
// interesting capacity would see.
func analyzeSource(tracePath, appName string, seed uint64, n int64) error {
	var src workload.Source
	label := ""
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := workload.NewTraceReader(f)
		if err != nil {
			return err
		}
		src, label = r, fmt.Sprintf("trace %s (%s)", tracePath, r.Name())
	} else {
		app, ok := workload.ByName(appName)
		if !ok {
			return fmt.Errorf("unknown application %q", appName)
		}
		src, label = workload.MustNewGenerator(app, seed), "generator "+app.Name
	}

	a := workload.AnalyzeSource(src, n, 128)
	h := a.Histogram()
	fmt.Printf("analysis of %s over %d instructions\n\n", label, n)
	if err := h.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ndistinct 128-B blocks touched: %d (%.1f KB)\n",
		a.DistinctBlocks(), float64(a.DistinctBlocks())*128/1024)
	fmt.Println("\nLRU hit rate by cache capacity (fully associative bound):")
	for _, c := range []struct {
		name   string
		blocks int64
	}{
		{"64 KB (L1)", 512},
		{"1 MB (base L2)", 8192},
		{"2 MB (d-group)", 16384},
		{"8 MB (NuRAPID)", 65536},
	} {
		fmt.Printf("  %-16s %6.1f%%\n", c.name, 100*h.HitFractionAt(c.blocks))
	}
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := workload.NewTraceReader(f)
	if err != nil {
		return err
	}
	counts := map[workload.Kind]int64{}
	mispredicts := int64(0)
	var records int64
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		records++
		counts[in.Kind]++
		if in.Mispredicted {
			mispredicts++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("trace: %s    app: %s    records: %d (declared %d)\n",
		path, r.Name(), records, r.Count())
	for _, k := range []workload.Kind{workload.ALU, workload.Load, workload.Store, workload.Branch} {
		fmt.Printf("  %-7s %12d (%.1f%%)\n", k, counts[k],
			100*float64(counts[k])/float64(max(records, 1)))
	}
	fmt.Printf("  mispredicted branches: %d\n", mispredicts)
	return nil
}
