// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -experiment all            # everything, paper order
//	experiments -experiment fig9           # one table/figure
//	experiments -experiment fig6 -n 500000 # shorter runs
//	experiments -experiment fig4 -csv      # machine-readable output
//	experiments -workers 1                 # serial execution
//
// Runs are deterministic for a given -seed: the rendered tables and
// figures are byte-identical whatever -workers is; only the order of
// the stderr progress lines depends on scheduling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nurapid/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1-table4, fig4-fig11, lru, or all")
		n          = flag.Int64("n", 2_000_000, "instructions to simulate per application")
		seed       = flag.Uint64("seed", 1, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		quiet      = flag.Bool("q", false, "suppress per-run progress")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	)
	flag.Parse()

	opts := []sim.Option{
		sim.WithInstructions(*n),
		sim.WithSeed(*seed),
		sim.WithWorkers(*workers),
	}
	if !*quiet {
		opts = append(opts,
			sim.WithObserver(sim.TextObserver(os.Stderr)),
			sim.WithClock(wallClock()))
	}
	r := sim.NewRunner(opts...)

	var exps []*sim.Experiment
	if *experiment == "all" {
		exps = r.All()
	} else {
		e, err := r.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []*sim.Experiment{e}
	}

	for _, e := range exps {
		fmt.Println()
		if err := e.Render(os.Stdout, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// wallClock returns a monotonic clock for RunEvent.Elapsed stamps. The
// wall time only annotates progress events on stderr; it never reaches
// the rendered tables, which stay a pure function of the seed.
func wallClock() func() time.Duration {
	//nurapidlint:ignore determinism progress wall time never reaches rendered output
	start := time.Now()
	return func() time.Duration {
		//nurapidlint:ignore determinism progress wall time never reaches rendered output
		return time.Since(start)
	}
}
