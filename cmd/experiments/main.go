// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -experiment all            # everything, paper order
//	experiments -experiment fig9           # one table/figure
//	experiments -experiment fig6 -n 500000 # shorter runs
//	experiments -experiment fig4 -csv      # machine-readable output
//	experiments -workers 1                 # serial execution
//
// Runs are deterministic for a given -seed: the rendered tables and
// figures are byte-identical whatever -workers is; only the order of
// the stderr progress lines depends on scheduling.
//
// Observability:
//
//	experiments -experiment fig6 -trace traces   # JSONL event traces
//	experiments -http localhost:6060 ...         # expvar + pprof
//
// -trace writes one <app>__<org>.jsonl per executed run (analyze with
// nurapidtrace); -http serves /debug/vars (run progress counters) and
// /debug/pprof while the experiments run. Neither affects the rendered
// tables.
//
// -selfcheck runs a short differential comparison of the NuRAPID
// implementation against its executable spec (internal/refmodel) before
// rendering anything, and aborts on the first divergence — a cheap
// pre-flight for long measurement campaigns (`make diff-fuzz` is the
// full matrix).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/cmp"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/refmodel/difftest"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1-table4, fig4-fig11, lru, ablation, predictor, sweep-*, cmp, or all")
		n          = flag.Int64("n", 2_000_000, "instructions to simulate per application")
		seed       = flag.Uint64("seed", 1, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		quiet      = flag.Bool("q", false, "suppress per-run progress")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
		trace      = flag.String("trace", "", "directory for per-run JSONL event traces (created if missing)")
		httpAddr   = flag.String("http", "", "serve expvar and pprof diagnostics on this address (e.g. localhost:6060)")
		selfcheck  = flag.Bool("selfcheck", false, "differentially check nurapid against its executable spec first")
		replay     = flag.String("replay", "", "replay an application's L2 trace through the batched path instead of running experiments")
		cmpMode    = flag.Bool("cmp", false, "run the multi-core CMP experiment (shorthand for -experiment cmp)")
		cores      = flag.Int("cores", 2, "cores sharing one L2 in CMP runs")
		sharing    = flag.String("sharing", "shared", "CMP workload pattern: shared or private")
	)
	flag.Parse()
	if *cmpMode {
		*experiment = "cmp"
	}
	sharingPattern, err := cmp.ParseSharing(*sharing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *replay != "" {
		if err := runReplay(os.Stdout, *replay, *seed, *n, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *selfcheck {
		if err := runSelfcheck(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := []sim.Option{
		sim.WithInstructions(*n),
		sim.WithSeed(*seed),
		sim.WithWorkers(*workers),
		sim.WithCores(*cores),
		sim.WithSharing(sharingPattern),
	}
	var observers []sim.Observer
	if !*quiet {
		observers = append(observers, sim.TextObserver(os.Stderr))
		opts = append(opts, sim.WithClock(wallClock()))
	}
	if *trace != "" {
		if err := os.MkdirAll(*trace, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts = append(opts, sim.WithTrace(*trace))
	}
	if *httpAddr != "" {
		observers = append(observers, expvarObserver())
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "diagnostics server:", err)
			}
		}()
	}
	if len(observers) > 0 {
		opts = append(opts, sim.WithObserver(fanOut(observers)))
	}
	r := sim.NewRunner(opts...)

	var exps []*sim.Experiment
	if *experiment == "all" {
		exps = r.All()
	} else {
		e, err := r.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []*sim.Experiment{e}
	}

	for _, e := range exps {
		fmt.Println()
		if err := e.Render(os.Stdout, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := r.ProbeErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// fanOut composes observers; the Runner already serializes Observe
// calls, so plain sequential delivery is enough.
func fanOut(obs []sim.Observer) sim.Observer {
	if len(obs) == 1 {
		return obs[0]
	}
	return sim.ObserverFunc(func(e sim.RunEvent) {
		for _, o := range obs {
			o.Observe(e)
		}
	})
}

// expvarObserver publishes run-progress counters at /debug/vars:
// sim_runs_started / sim_runs_finished track executed (non-memoized)
// simulations, sim_last_run names the most recent one, and
// sim_last_metrics carries its full metrics snapshot (including the
// obs_ts_* time-series registry of probed CMP runs — waterfall
// components, fairness, per-bank contention).
func expvarObserver() sim.Observer {
	started := expvar.NewInt("sim_runs_started")
	finished := expvar.NewInt("sim_runs_finished")
	last := expvar.NewString("sim_last_run")
	metrics := expvar.NewMap("sim_last_metrics")
	return sim.ObserverFunc(func(e sim.RunEvent) {
		switch e.Kind {
		case sim.RunStart:
			started.Add(1)
		case sim.RunFinish:
			finished.Add(1)
			last.Set(e.App + "/" + e.Org)
			metrics.Init()
			for _, kv := range e.Metrics {
				f := new(expvar.Float)
				f.Set(kv.Value)
				metrics.Set(kv.Name, f)
			}
		}
	})
}

// wallClock returns a monotonic clock for RunEvent.Elapsed stamps. The
// wall time only annotates progress events on stderr; it never reaches
// the rendered tables, which stay a pure function of the seed.
func wallClock() func() time.Duration {
	//nurapidlint:ignore determinism progress wall time never reaches rendered output
	start := time.Now()
	return func() time.Duration {
		//nurapidlint:ignore determinism progress wall time never reaches rendered output
		return time.Since(start)
	}
}

// runSelfcheck differentially drives every policy-matrix cell for a
// short burst against the executable spec. On a divergence it shrinks
// the reproducer, dumps it as JSONL next to the working directory, and
// returns an error so no tables are rendered from a suspect model.
func runSelfcheck(w io.Writer) error {
	const accesses = 2000
	cells := difftest.Matrix()
	workloads := difftest.Workloads()
	fmt.Fprintf(w, "selfcheck: %d cells x %d workloads x %d accesses\n",
		len(cells), len(workloads), accesses)
	for _, cell := range cells {
		for _, wl := range workloads {
			seq := wl.Gen(cell.Cfg, 11, accesses)
			d := difftest.Diff(cell.Cfg, seq, difftest.Options{})
			if d == nil {
				continue
			}
			shrunk := difftest.Shrink(cell.Cfg, seq, difftest.Options{})
			path := fmt.Sprintf("divergence-%s-%s.jsonl", cell.Name, wl.Name)
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("selfcheck: %s/%s diverged (%s) and artifact dump failed: %w",
					cell.Name, wl.Name, d, err)
			}
			werr := difftest.WriteArtifact(f, cell.Name, wl.Name, cell.Cfg,
				difftest.Options{}, difftest.Diff(cell.Cfg, shrunk, difftest.Options{}), shrunk)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("selfcheck: %s/%s diverged (%s) and artifact dump failed: %w",
					cell.Name, wl.Name, d, werr)
			}
			return fmt.Errorf("selfcheck: %s/%s diverged: %s (shrunk reproducer: %s, %d accesses)",
				cell.Name, wl.Name, d, path, len(shrunk))
		}
	}
	fmt.Fprintln(w, "selfcheck: fast implementation and executable spec agree")
	return nil
}

// runReplay replays appName's L2-visible request stream through the
// standard organizations on the sharded trace-gen + chunked-replay
// pipeline, printing each organization's aggregate result and
// fingerprint. The trace is generated once and shared across the four
// replays, which run on a workers-wide pool; the output is a pure
// function of (app, seed, n) and byte-identical at every worker count.
func runReplay(w io.Writer, appName string, seed uint64, n int64, workers int) error {
	app, ok := workload.ByName(appName)
	if !ok {
		return fmt.Errorf("replay: unknown application %q", appName)
	}
	model := cacti.Default()
	orgs := []sim.Organization{
		sim.Base(),
		sim.Ideal(),
		sim.DNUCA(nuca.DefaultConfig()),
		sim.NuRAPID(nurapid.DefaultConfig()),
	}
	jobs := make([]sim.ReplayJob, len(orgs))
	for i, org := range orgs {
		jobs[i] = sim.ReplayJob{App: app, Seed: seed, N: int(n), Org: org}
	}
	results := sim.ReplayAll(model, jobs, sim.ReplayOptions{Workers: workers})
	for _, res := range results {
		if res.Requests == 0 {
			return fmt.Errorf("replay: %s produced no memory requests", appName)
		}
		if err := res.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-24s %016x\n", "fingerprint", res.Fingerprint()); err != nil {
			return err
		}
	}
	return nil
}
