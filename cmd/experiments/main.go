// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -experiment all            # everything, paper order
//	experiments -experiment fig9           # one table/figure
//	experiments -experiment fig6 -n 500000 # shorter runs
//	experiments -experiment fig4 -csv      # machine-readable output
//
// Runs are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"nurapid/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1-table4, fig4-fig11, lru, or all")
		n          = flag.Int64("n", 2_000_000, "instructions to simulate per application")
		seed       = flag.Uint64("seed", 1, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		quiet      = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	r := sim.NewRunner(*n, *seed)
	if !*quiet {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	var exps []*sim.Experiment
	if *experiment == "all" {
		exps = r.All()
	} else {
		e, err := r.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []*sim.Experiment{e}
	}

	for _, e := range exps {
		fmt.Println()
		if err := e.Render(os.Stdout, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
