// Command nurapidtrace aggregates the JSONL event traces the simulator's
// observability layer writes (experiments -trace, sim.WithTrace, or a
// hand-built obs.TraceSink) into human-readable reports: event counters,
// the demotion-chain depth histogram, the hit-latency distribution,
// per-d-group hit counts, and the epoch-based d-group occupancy
// timeline.
//
// Usage:
//
//	experiments -experiment fig6 -trace traces
//	nurapidtrace traces/mcf__nurapid-4g-next-random.jsonl
//	nurapidtrace -csv traces/*.jsonl        # CSV tables
//	nurapidtrace -epoch 1024 run.jsonl      # finer occupancy timeline
//	nurapidtrace < run.jsonl                # read one trace from stdin
//
// Each input trace gets its own report; outputs follow input order, so
// a fixed argument list renders deterministically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

func main() {
	var (
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		epoch = flag.Int64("epoch", obs.DefaultEpochAccesses, "occupancy sample epoch, in accesses")
	)
	flag.Parse()

	inputs := flag.Args()
	if len(inputs) == 0 {
		if err := report(os.Stdout, "<stdin>", os.Stdin, *epoch, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for i, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		err = report(os.Stdout, path, f, *epoch, *csv)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

// report decodes one trace and renders its aggregate tables.
//
// Degenerate inputs are handled gracefully rather than fatally: an
// empty trace and a mid-record truncation both still render the report
// for whatever was decoded (headers-only tables when nothing was), and
// then return a clear error so the process exits non-zero — a
// truncated measurement campaign must not look like a successful one.
func report(w io.Writer, name string, r io.Reader, epoch int64, csv bool) error {
	coll := obs.NewCollector()
	samp := obs.NewSampler("occupancy", epoch)
	events := 0
	decErr := obs.DecodeTrace(r, func(e obs.Event) error {
		events++
		coll.Emit(e)
		samp.Emit(e)
		return nil
	})
	tables := []*stats.Table{
		countersTable(name, coll.Counters()),
		histTable("demotion-chain depth (links per placement)", "depth", coll.ChainDepth()),
		histTable("hit latency (cycles)", "cycles", coll.HitLatency()),
		groupHitsTable(coll.GroupHits()),
		occupancyTable(samp),
	}
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		var err error
		if csv {
			err = t.WriteCSV(w)
		} else {
			err = t.WriteText(w)
		}
		if err != nil {
			return err
		}
	}
	if decErr != nil {
		return fmt.Errorf("truncated or corrupt trace (%d events decoded): %w", events, decErr)
	}
	if events == 0 {
		return fmt.Errorf("empty trace: no events decoded")
	}
	return nil
}

// countersTable renders the collector's event counters, sorted by name.
func countersTable(name string, ctrs *stats.Counters) *stats.Table {
	t := stats.NewTable("trace "+name+": event counters", "counter", "count")
	for _, n := range ctrs.Names() {
		t.AddRow(n, ctrs.Get(n))
	}
	return t
}

// histTable renders a histogram's populated buckets plus its summary
// rows (overflow when hit, total, mean).
func histTable(title, valueHeader string, h *stats.Histogram) *stats.Table {
	t := stats.NewTable(title, valueHeader, "count")
	for i := 0; i < h.NumBuckets(); i++ {
		if c := h.Count(i); c > 0 {
			t.AddRow(h.BucketLabel(i), c)
		}
	}
	if h.Overflow() > 0 {
		t.AddRow("overflow", h.Overflow())
	}
	t.AddRow("TOTAL", h.Total())
	t.AddRow("MEAN", h.Mean())
	return t
}

// groupHitsTable renders hits served per d-group.
func groupHitsTable(hits []int64) *stats.Table {
	t := stats.NewTable("hits per d-group", "dgroup", "hits")
	for g, n := range hits {
		t.AddRow(g, n)
	}
	return t
}

// occupancyTable renders the epoch timeline: one row per sample, one
// column per d-group. Early samples that predate a group's first use
// render as zero occupancy.
func occupancyTable(s *obs.Sampler) *stats.Table {
	headers := []string{"epoch"}
	for g := 0; g < s.NumGroups(); g++ {
		headers = append(headers, fmt.Sprintf("dgroup_%d", g))
	}
	t := stats.NewTable(
		fmt.Sprintf("d-group occupancy per %d-access epoch (blocks resident)", s.EpochAccesses()),
		headers...)
	for i := 0; i < s.NumSamples(); i++ {
		samp := s.Sample(i)
		row := []any{i}
		for g := 0; g < s.NumGroups(); g++ {
			var v int64
			if g < len(samp) {
				v = samp[g]
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
