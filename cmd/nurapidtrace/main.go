// Command nurapidtrace aggregates the JSONL event traces the simulator's
// observability layer writes (experiments -trace, sim.WithTrace, or a
// hand-built obs.TraceSink) into human-readable reports: event counters,
// the demotion-chain depth histogram, the hit-latency distribution,
// per-d-group hit counts, and the epoch-based d-group occupancy
// timeline.
//
// Usage:
//
//	experiments -experiment fig6 -trace traces
//	nurapidtrace traces/mcf__nurapid-4g-next-random.jsonl
//	nurapidtrace -csv traces/*.jsonl        # CSV tables
//	nurapidtrace -epoch 1024 run.jsonl      # finer occupancy timeline
//	nurapidtrace < run.jsonl                # read one trace from stdin
//
// CMP traces (experiments -cmp -trace traces) carry queue-side events —
// enqueue, issue, inval — that the single-core report ignores; -cmp
// switches to the contention report built on the windowed time-series
// registry:
//
//	nurapidtrace -cmp traces/mcf__cmp2-shared-nurapid-4g-next-random.jsonl
//	nurapidtrace -cmp -window 4096 run.jsonl   # finer timeline windows
//
// The -cmp report renders the per-core latency-breakdown table, the
// per-bank contention summary, the bank-wait heatmap (one row per
// active window, one column per bank), and the queue-depth timeline.
// The timeline tables retain the last 64 active windows; evicted
// windows stay in the all-time tables.
//
// Each input trace gets its own report; outputs follow input order, so
// a fixed argument list renders deterministically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

func main() {
	var (
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		epoch  = flag.Int64("epoch", obs.DefaultEpochAccesses, "occupancy sample epoch, in accesses")
		cmp    = flag.Bool("cmp", false, "render the CMP contention report (queue/bank/coherence events)")
		window = flag.Int64("window", obs.DefaultWindowCycles, "CMP timeline window, in cycles")
	)
	flag.Parse()

	render := func(w io.Writer, name string, r io.Reader) error {
		if *cmp {
			return reportCMP(w, name, r, *window, *csv)
		}
		return report(w, name, r, *epoch, *csv)
	}
	inputs := flag.Args()
	if len(inputs) == 0 {
		if err := render(os.Stdout, "<stdin>", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for i, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		err = render(os.Stdout, path, f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

// report decodes one trace and renders its aggregate tables.
//
// Degenerate inputs are handled gracefully rather than fatally: an
// empty trace and a mid-record truncation both still render the report
// for whatever was decoded (headers-only tables when nothing was), and
// then return a clear error so the process exits non-zero — a
// truncated measurement campaign must not look like a successful one.
func report(w io.Writer, name string, r io.Reader, epoch int64, csv bool) error {
	coll := obs.NewCollector()
	samp := obs.NewSampler("occupancy", epoch)
	events := 0
	decErr := obs.DecodeTrace(r, func(e obs.Event) error {
		events++
		coll.Emit(e)
		samp.Emit(e)
		return nil
	})
	tables := []*stats.Table{
		countersTable(name, coll.Counters()),
		histTable("demotion-chain depth (links per placement)", "depth", coll.ChainDepth()),
		histTable("hit latency (cycles)", "cycles", coll.HitLatency()),
		groupHitsTable(coll.GroupHits()),
		occupancyTable(samp),
	}
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		var err error
		if csv {
			err = t.WriteCSV(w)
		} else {
			err = t.WriteText(w)
		}
		if err != nil {
			return err
		}
	}
	if decErr != nil {
		return fmt.Errorf("truncated or corrupt trace (%d events decoded): %w", events, decErr)
	}
	if events == 0 {
		return fmt.Errorf("empty trace: no events decoded")
	}
	return nil
}

// reportCMP decodes one trace into the windowed time-series registry
// and renders the CMP contention report. No latency profile is
// installed (a trace does not carry the organization's timing model),
// so the registry runs in histogram/contention mode: per-core latency
// comes from observed hit latencies, and the waterfall stays with the
// live harvest (experiments -cmp, obs_ts_wf_* metrics).
//
// Degenerate inputs follow report's contract: truncated traces render
// the decoded prefix and then error.
func reportCMP(w io.Writer, name string, r io.Reader, window int64, csv bool) error {
	coll := obs.NewCollector()
	ts := obs.NewTimeSeries("ts", window)
	events := 0
	decErr := obs.DecodeTrace(r, func(e obs.Event) error {
		events++
		coll.Emit(e)
		ts.Emit(e)
		return nil
	})
	ts.Flush()
	tables := []*stats.Table{
		countersTable(name, coll.Counters()),
		coreBreakdownTable(ts),
		bankContentionTable(ts),
		bankHeatmapTable(ts, "queue wait per bank (cycles)",
			func(ws obs.WindowStat) []int64 { return ws.PerBankWaitCycles }),
		bankHeatmapTable(ts, "queue-depth high-water mark per bank",
			func(ws obs.WindowStat) []int64 { return ws.PerBankDepthHWM }),
		windowTable(ts),
	}
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		var err error
		if csv {
			err = t.WriteCSV(w)
		} else {
			err = t.WriteText(w)
		}
		if err != nil {
			return err
		}
	}
	if decErr != nil {
		return fmt.Errorf("truncated or corrupt trace (%d events decoded): %w", events, decErr)
	}
	if events == 0 {
		return fmt.Errorf("empty trace: no events decoded")
	}
	return nil
}

// coreBreakdownTable renders each core's all-time view of the shared
// level: access and hit counts, absorbed shoot-downs, queue wait, and
// mean end-to-end latency over the observable samples.
func coreBreakdownTable(ts *obs.TimeSeries) *stats.Table {
	t := stats.NewTable("per-core latency breakdown (all-time)",
		"core", "accesses", "hits", "invals", "qwait", "qwait/acc", "mean lat")
	for i, c := range ts.CoreStats() {
		meanWait, meanLat := 0.0, 0.0
		if c.Accesses > 0 {
			meanWait = float64(c.QueueWaitCycles) / float64(c.Accesses)
		}
		if c.LatencySamples > 0 {
			meanLat = float64(c.LatencyCycles) / float64(c.LatencySamples)
		}
		t.AddRow(i, c.Accesses, c.Hits, c.Invals, c.QueueWaitCycles, meanWait, meanLat)
	}
	return t
}

// bankContentionTable renders each queue bank's all-time contention:
// traffic, total and mean wait, and the deepest queue ever observed.
func bankContentionTable(ts *obs.TimeSeries) *stats.Table {
	t := stats.NewTable("per-bank contention (all-time)",
		"bank", "enqueues", "wait", "wait/enq", "depth hwm")
	for i, b := range ts.BankStats() {
		mean := 0.0
		if b.Enqueues > 0 {
			mean = float64(b.WaitCycles) / float64(b.Enqueues)
		}
		t.AddRow(i, b.Enqueues, b.WaitCycles, mean, b.DepthHWM)
	}
	return t
}

// bankHeatmapTable renders a per-window × per-bank matrix: one row per
// retained active window, one column per bank. The registry's ring
// keeps the last 64 active windows; the title says so because a long
// run's early windows are evicted from the timeline (their traffic
// stays in the all-time tables).
func bankHeatmapTable(ts *obs.TimeSeries, what string, cell func(obs.WindowStat) []int64) *stats.Table {
	banks := len(ts.BankStats())
	headers := []string{"window"}
	for b := 0; b < banks; b++ {
		headers = append(headers, fmt.Sprintf("bank_%d", b))
	}
	t := stats.NewTable(
		fmt.Sprintf("%s per %d-cycle window (last 64 active windows)", what, ts.EpochCycles()),
		headers...)
	for _, ws := range ts.Windows() {
		row := []any{ws.Epoch}
		for b := 0; b < banks; b++ {
			var v int64
			if b < len(cell(ws)) {
				v = cell(ws)[b]
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}

// windowTable renders the per-window activity timeline: accesses, hits,
// and rolling Jain fairness over per-core accesses.
func windowTable(ts *obs.TimeSeries) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("window activity per %d-cycle window (last 64 active windows)", ts.EpochCycles()),
		"window", "accesses", "hits", "fairness")
	for _, ws := range ts.Windows() {
		t.AddRow(ws.Epoch, ws.Accesses, ws.Hits, ws.Fairness)
	}
	return t
}

// countersTable renders the collector's event counters, sorted by name.
func countersTable(name string, ctrs *stats.Counters) *stats.Table {
	t := stats.NewTable("trace "+name+": event counters", "counter", "count")
	for _, n := range ctrs.Names() {
		t.AddRow(n, ctrs.Get(n))
	}
	return t
}

// histTable renders a histogram's populated buckets plus its summary
// rows (overflow when hit, total, mean).
func histTable(title, valueHeader string, h *stats.Histogram) *stats.Table {
	t := stats.NewTable(title, valueHeader, "count")
	for i := 0; i < h.NumBuckets(); i++ {
		if c := h.Count(i); c > 0 {
			t.AddRow(h.BucketLabel(i), c)
		}
	}
	if h.Overflow() > 0 {
		t.AddRow("overflow", h.Overflow())
	}
	t.AddRow("TOTAL", h.Total())
	t.AddRow("MEAN", h.Mean())
	return t
}

// groupHitsTable renders hits served per d-group.
func groupHitsTable(hits []int64) *stats.Table {
	t := stats.NewTable("hits per d-group", "dgroup", "hits")
	for g, n := range hits {
		t.AddRow(g, n)
	}
	return t
}

// occupancyTable renders the epoch timeline: one row per sample, one
// column per d-group. Early samples that predate a group's first use
// render as zero occupancy.
func occupancyTable(s *obs.Sampler) *stats.Table {
	headers := []string{"epoch"}
	for g := 0; g < s.NumGroups(); g++ {
		headers = append(headers, fmt.Sprintf("dgroup_%d", g))
	}
	t := stats.NewTable(
		fmt.Sprintf("d-group occupancy per %d-access epoch (blocks resident)", s.EpochAccesses()),
		headers...)
	for i := 0; i < s.NumSamples(); i++ {
		samp := s.Sample(i)
		row := []any{i}
		for g := 0; g < s.NumGroups(); g++ {
			var v int64
			if g < len(samp) {
				v = samp[g]
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
