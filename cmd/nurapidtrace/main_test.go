package main

import (
	"strings"
	"testing"

	"nurapid/internal/obs"
)

// TestReportEmptyTrace pins the degenerate-input contract: an empty
// JSONL trace still renders every table (headers only) and returns an
// error naming the problem, so the CLI exits non-zero instead of
// passing off a headers-only report as a successful analysis.
func TestReportEmptyTrace(t *testing.T) {
	for _, csv := range []bool{false, true} {
		var out strings.Builder
		err := report(&out, "empty.jsonl", strings.NewReader(""), obs.DefaultEpochAccesses, csv)
		if err == nil {
			t.Fatalf("csv=%v: empty trace must return an error", csv)
		}
		if !strings.Contains(err.Error(), "empty trace") {
			t.Fatalf("csv=%v: error %q does not name the empty trace", csv, err)
		}
		want := "event counters" // text table title
		if csv {
			want = "counter,count" // CSV header row
		}
		if !strings.Contains(out.String(), want) {
			t.Fatalf("csv=%v: headers-only report not rendered:\n%s", csv, out.String())
		}
	}
}

// TestReportTruncatedTrace feeds a trace cut off mid-record: the events
// before the cut must still be aggregated and rendered, and the decode
// failure must surface as a clear non-nil error (no panic).
func TestReportTruncatedTrace(t *testing.T) {
	trace := `{"k":"access","t":0,"addr":4096}
{"k":"hit","t":0,"g":1,"lat":21}
{"k":"access","t":30,"ad`
	var out strings.Builder
	err := report(&out, "trunc.jsonl", strings.NewReader(trace), obs.DefaultEpochAccesses, false)
	if err == nil {
		t.Fatal("truncated trace must return an error")
	}
	if !strings.Contains(err.Error(), "truncated or corrupt") {
		t.Fatalf("error %q does not flag the truncation", err)
	}
	if !strings.Contains(err.Error(), "2 events decoded") {
		t.Fatalf("error %q does not report the decoded prefix length", err)
	}
	got := out.String()
	// The two whole records before the cut must be in the report.
	if !strings.Contains(got, "access") || !strings.Contains(got, "hit") {
		t.Fatalf("prefix events missing from the report:\n%s", got)
	}
}

// TestReportWholeTrace guards the happy path around the new error
// returns: a complete trace reports no error.
func TestReportWholeTrace(t *testing.T) {
	trace := `{"k":"access","t":0,"addr":4096}
{"k":"miss","t":0,"addr":4096}
{"k":"place","t":0,"g":3}
`
	var out strings.Builder
	if err := report(&out, "ok.jsonl", strings.NewReader(trace), obs.DefaultEpochAccesses, false); err != nil {
		t.Fatalf("complete trace reported error: %v", err)
	}
	if !strings.Contains(out.String(), "place") {
		t.Fatalf("events missing from report:\n%s", out.String())
	}
}

// TestReportCMPEmptyTrace pins the -cmp degenerate-input contract,
// mirroring the single-core report: headers-only tables plus a non-nil
// error naming the empty trace.
func TestReportCMPEmptyTrace(t *testing.T) {
	for _, csv := range []bool{false, true} {
		var out strings.Builder
		err := reportCMP(&out, "empty.jsonl", strings.NewReader(""), obs.DefaultWindowCycles, csv)
		if err == nil {
			t.Fatalf("csv=%v: empty trace must return an error", csv)
		}
		if !strings.Contains(err.Error(), "empty trace") {
			t.Fatalf("csv=%v: error %q does not name the empty trace", csv, err)
		}
		want := "per-bank contention" // text table title
		if csv {
			want = "counter,count" // CSV header row
		}
		if !strings.Contains(out.String(), want) {
			t.Fatalf("csv=%v: headers-only report not rendered:\n%s", csv, out.String())
		}
	}
}

// TestReportCMPTruncatedTrace checks the shared truncation contract on
// the -cmp path: the decoded prefix still renders, the error names the
// cut.
func TestReportCMPTruncatedTrace(t *testing.T) {
	trace := `{"k":"enqueue","t":0,"addr":4096,"bank":1,"depth":1}
{"k":"issue","t":4,"bank":1,"lat":4}
{"k":"access","t":4,"ad`
	var out strings.Builder
	err := reportCMP(&out, "trunc.jsonl", strings.NewReader(trace), obs.DefaultWindowCycles, false)
	if err == nil {
		t.Fatal("truncated trace must return an error")
	}
	if !strings.Contains(err.Error(), "truncated or corrupt") {
		t.Fatalf("error %q does not flag the truncation", err)
	}
	if !strings.Contains(err.Error(), "2 events decoded") {
		t.Fatalf("error %q does not report the decoded prefix length", err)
	}
	if !strings.Contains(out.String(), "enqueues") {
		t.Fatalf("prefix events missing from the report:\n%s", out.String())
	}
}

// TestReportCMPWholeTrace drives one full queued access window through
// the -cmp report and checks the contention tables reflect it: the
// enqueue lands in bank 1's row with its queue wait, the access and
// shoot-down land in the per-core breakdown.
func TestReportCMPWholeTrace(t *testing.T) {
	trace := `{"k":"enqueue","t":0,"addr":4096,"bank":1,"depth":1,"w":true,"core":1}
{"k":"issue","t":4,"bank":1,"lat":4,"core":1}
{"k":"access","t":4,"addr":4096,"w":true,"core":1}
{"k":"hit","t":4,"g":1,"lat":21}
{"k":"inval","t":25,"addr":4096}
`
	var out strings.Builder
	if err := reportCMP(&out, "ok.jsonl", strings.NewReader(trace), obs.DefaultWindowCycles, false); err != nil {
		t.Fatalf("complete trace reported error: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"per-core latency breakdown",
		"per-bank contention",
		"queue wait per bank",
		"queue-depth high-water mark per bank",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("table %q missing from report:\n%s", want, got)
		}
	}
	// Bank 1: one enqueue, 4 cycles of wait, depth high-water 1.
	found := false
	for _, line := range strings.Split(got, "\n") {
		f := strings.Fields(line)
		if len(f) >= 5 && f[0] == "1" && f[1] == "1" && f[2] == "4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bank 1 contention row (enqueues 1, wait 4) missing:\n%s", got)
	}
	// Core 1 made the access; core 0 absorbed the shoot-down.
	if !strings.Contains(got, "l1d_invals") {
		t.Fatalf("inval counter missing:\n%s", got)
	}
}
