// escape.go implements the -escapecheck mode: the compiler-backed
// counterpart to the static hotpath analyzer. The static analyzer
// forbids allocation by construct; this gate asks the compiler itself
// (`go build -gcflags='-m -m'`) what actually escapes to the heap or
// fails to inline inside the //nurapid:hotpath closure, and diffs that
// against the committed per-function allowlist lint_escape_baseline.json.
// Anything the baseline does not record — a new heap escape, a lost
// inline — fails the gate with a readable per-function diff; anything
// the baseline records that no longer happens fails too, so the
// baseline can never drift from reality. -rebaseline rewrites the file
// from current compiler output.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"nurapid/internal/lint"
)

// baselineFile is the committed allowlist, relative to the module root.
const baselineFile = "lint_escape_baseline.json"

// escapeReport maps a hot function's key (pkgpath.Recv.Name) to the
// normalized compiler diagnostics observed inside its body, sorted.
// Lines are recorded as offsets from the function's first line so that
// edits elsewhere in the file do not churn the baseline.
type escapeReport map[string][]string

// diagLine matches one compiler diagnostic: file:line:col: message.
// The -m -m flow-explanation lines share the shape but are filtered
// out by keepDiag.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// keepDiag reports whether a compiler message belongs to the stable
// subset the gate tracks, and returns it normalized. "cannot inline"
// reasons (cost budgets, compiler heuristics) vary across toolchains,
// so only the function name is kept.
func keepDiag(msg string) (string, bool) {
	switch {
	case strings.Contains(msg, "escapes to heap"),
		strings.Contains(msg, "moved to heap"):
		// -m -m repeats each escape as a "...:" header over its flow
		// explanation; trimming the colon collapses the duplicate.
		return strings.TrimSuffix(msg, ":"), true
	case strings.HasPrefix(msg, "cannot inline "):
		if i := strings.Index(msg, ":"); i >= 0 {
			msg = msg[:i]
		}
		return msg, true
	}
	return "", false
}

// runEscapeCheck executes the gate and returns the process exit code.
func runEscapeCheck(cwd string, pkgs []*lint.Package, patterns []string, rebaseline bool) int {
	hot := lint.HotPathClosure(pkgs)
	if len(hot) == 0 {
		fmt.Fprintln(os.Stderr, "nurapidlint: -escapecheck found no //nurapid:hotpath functions; run it over the whole module (./...)")
		return 2
	}

	diags, err := compilerDiags(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		return 2
	}
	current := attribute(cwd, hot, diags)

	path := filepath.Join(cwd, baselineFile)
	if rebaseline {
		if err := writeBaseline(path, current); err != nil {
			fmt.Fprintln(os.Stderr, "nurapidlint:", err)
			return 2
		}
		fmt.Printf("escapecheck: wrote %s (%d hot functions, %d with compiler findings)\n",
			baselineFile, len(hot), len(current))
		return 0
	}

	baseline, err := readBaseline(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nurapidlint: %v\n  (run `go run ./cmd/nurapidlint -escapecheck -rebaseline ./...` to create it)\n", err)
		return 1
	}
	added, removed := diffReports(baseline, current)
	if len(added) == 0 && len(removed) == 0 {
		fmt.Printf("escapecheck: %d hot functions match %s\n", len(hot), baselineFile)
		return 0
	}
	fmt.Fprintf(os.Stderr, "escapecheck: compiler escape analysis drifted from %s\n", baselineFile)
	printDrift(os.Stderr, "new (not in baseline)", added)
	printDrift(os.Stderr, "gone (baseline records them, compiler no longer reports them)", removed)
	fmt.Fprintln(os.Stderr, "escapecheck: fix the hot path, or re-baseline deliberately with `go run ./cmd/nurapidlint -escapecheck -rebaseline ./...`")
	return 1
}

// compilerDiag is one parsed file:line:col diagnostic.
type compilerDiag struct {
	file string
	line int
	msg  string
}

// compilerDiags builds the module with escape-analysis diagnostics
// enabled and parses them. A warm build cache makes the compiler skip
// packages entirely (no diagnostics printed), so a run that parses
// nothing retries with -a to force recompilation.
func compilerDiags(cwd string, patterns []string) ([]compilerDiag, error) {
	out, err := buildWithFlags(cwd, patterns, false)
	if err != nil {
		return nil, err
	}
	diags := parseCompilerOutput(out)
	if len(diags) == 0 {
		if out, err = buildWithFlags(cwd, patterns, true); err != nil {
			return nil, err
		}
		diags = parseCompilerOutput(out)
	}
	return diags, nil
}

func buildWithFlags(cwd string, patterns []string, force bool) (string, error) {
	args := []string{"build", "-gcflags=-m -m"}
	if force {
		args = append(args, "-a")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cwd
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, buf.String())
	}
	return buf.String(), nil
}

func parseCompilerOutput(out string) []compilerDiag {
	var diags []compilerDiag
	for _, line := range strings.Split(out, "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg, ok := keepDiag(m[4])
		if !ok {
			continue
		}
		var ln int
		fmt.Sscanf(m[2], "%d", &ln)
		diags = append(diags, compilerDiag{file: m[1], line: ln, msg: msg})
	}
	return diags
}

// attribute joins compiler diagnostics against the hot functions' source
// spans: a diagnostic inside [StartLine, EndLine] of a hot function's
// file belongs to that function. Diagnostics outside every hot span —
// cold code, cmd packages — are ignored; that is the point of the gate.
func attribute(cwd string, hot []lint.HotFunc, diags []compilerDiag) escapeReport {
	type span struct {
		key        string
		start, end int
	}
	byFile := make(map[string][]span)
	for _, h := range hot {
		byFile[h.File] = append(byFile[h.File], span{key: h.Key, start: h.StartLine, end: h.EndLine})
	}
	seen := make(map[string]bool)
	report := make(escapeReport)
	for _, d := range diags {
		file := d.file
		if !filepath.IsAbs(file) {
			file = filepath.Join(cwd, file)
		}
		file = filepath.Clean(file)
		for _, s := range byFile[file] {
			if d.line >= s.start && d.line <= s.end {
				entry := fmt.Sprintf("+%d: %s", d.line-s.start, d.msg)
				if !seen[s.key+"\x00"+entry] {
					seen[s.key+"\x00"+entry] = true
					report[s.key] = append(report[s.key], entry)
				}
				break
			}
		}
	}
	for key, msgs := range report {
		sort.Strings(msgs)
		report[key] = msgs
	}
	return report
}

func writeBaseline(path string, report escapeReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readBaseline(path string) (escapeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %v", baselineFile, err)
	}
	var report escapeReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", baselineFile, err)
	}
	return report, nil
}

// diffReports returns, per function key, the entries present only in
// current (added) and only in baseline (removed).
func diffReports(baseline, current escapeReport) (added, removed map[string][]string) {
	added, removed = make(map[string][]string), make(map[string][]string)
	keys := make(map[string]bool)
	for k := range baseline {
		keys[k] = true
	}
	for k := range current {
		keys[k] = true
	}
	for k := range keys {
		have := make(map[string]bool)
		for _, m := range baseline[k] {
			have[m] = true
		}
		want := make(map[string]bool)
		for _, m := range current[k] {
			want[m] = true
			if !have[m] {
				added[k] = append(added[k], m)
			}
		}
		for _, m := range baseline[k] {
			if !want[m] {
				removed[k] = append(removed[k], m)
			}
		}
	}
	return added, removed
}

func printDrift(w *os.File, header string, drift map[string][]string) {
	if len(drift) == 0 {
		return
	}
	fmt.Fprintf(w, "  %s:\n", header)
	keys := make([]string, 0, len(drift))
	for k := range drift {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, m := range drift[k] {
			fmt.Fprintf(w, "    %s %s\n", k, m)
		}
	}
}
