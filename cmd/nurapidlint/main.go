// Command nurapidlint is the repository's multichecker: it runs the
// simulator-specific analyzers from internal/lint (determinism,
// panicstyle, statsreg, hotpath, probeorder, snapshotdet, plus the
// directives meta-check) over the packages matching the given patterns,
// and — unless -vet=false — the stock `go vet` passes as well.
//
// Usage:
//
//	go run ./cmd/nurapidlint ./...          # custom analyzers + go vet
//	go run ./cmd/nurapidlint -vet=false ./internal/nurapid
//	go run ./cmd/nurapidlint -list          # describe the analyzers
//	go run ./cmd/nurapidlint -json ./...    # machine-readable findings
//	go run ./cmd/nurapidlint -escapecheck ./...             # compiler gate
//	go run ./cmd/nurapidlint -escapecheck -rebaseline ./... # refresh baseline
//
// The whole-program analyzers (hotpath) see only the packages given, so
// the patterns should normally be "./..." — on a partial package set,
// cross-package callees look external and findings are missed.
//
// The exit status is non-zero when any analyzer (custom or vet) reports
// a diagnostic, so the command doubles as the CI lint gate. Findings can
// be suppressed per line with a
//
//	//nurapidlint:ignore <analyzer> <reason>
//
// comment on or directly above the offending line; directives that name
// an unknown analyzer or suppress nothing are themselves reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"nurapid/internal/lint"
)

// jsonDiag is the machine-readable form of one finding, for -json.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: the findings plus their count, so
// CI artifacts are self-describing.
type jsonReport struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Count       int        `json:"count"`
}

func main() {
	var (
		vet         = flag.Bool("vet", true, "also run the stock go vet passes")
		list        = flag.Bool("list", false, "list the custom analyzers and exit")
		jsonOut     = flag.Bool("json", false, "emit findings as a JSON report on stdout")
		escapeCheck = flag.Bool("escapecheck", false, "run the compiler escape-analysis gate instead of the analyzers")
		rebaseline  = flag.Bool("rebaseline", false, "with -escapecheck: rewrite lint_escape_baseline.json from current compiler output")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		os.Exit(2)
	}

	if *escapeCheck {
		os.Exit(runEscapeCheck(cwd, pkgs, patterns, *rebaseline))
	}

	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		report := jsonReport{Diagnostics: make([]jsonDiag, 0, len(diags)), Count: len(diags)}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "nurapidlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	failed := len(diags) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
