// Command nurapidlint is the repository's multichecker: it runs the
// simulator-specific analyzers from internal/lint (determinism,
// panicstyle, statsreg) over the packages matching the given patterns,
// and — unless -vet=false — the stock `go vet` passes as well.
//
// Usage:
//
//	go run ./cmd/nurapidlint ./...          # custom analyzers + go vet
//	go run ./cmd/nurapidlint -vet=false ./internal/nurapid
//	go run ./cmd/nurapidlint -list          # describe the analyzers
//
// The exit status is non-zero when any analyzer (custom or vet) reports
// a diagnostic, so the command doubles as the CI lint gate. Findings can
// be suppressed per line with a
//
//	//nurapidlint:ignore <analyzer> <reason>
//
// comment on or directly above the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"nurapid/internal/lint"
)

func main() {
	var (
		vet  = flag.Bool("vet", true, "also run the stock go vet passes")
		list = flag.Bool("list", false, "list the custom analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nurapidlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}

	failed := len(diags) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
