package nurapid

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	core "nurapid/internal/nurapid"
)

// coreBenchBaselineFile is the committed perf baseline at the repo
// root. `make bench-core` rewrites it locally; CI reads the committed
// copy and fails on a >10% ns/access regression.
const coreBenchBaselineFile = "BENCH_core.json"

// prePRNsPerAccess is the headline benchmark's steady-state cost before
// the flat-layout rewrite (pointer-chasing frame nodes, per-access map
// counters, interface-dispatched replacement), measured on the same
// reference machine as the committed baseline. It is a historical
// constant: the speedup field tracks how far the access path has come.
const prePRNsPerAccess = 142.4

// coreBench is the record written to BENCH_core.json.
type coreBench struct {
	Benchmark      string  `json:"benchmark"`
	Accesses       int     `json:"accesses_per_replay"`
	Replays        int     `json:"replays"`
	PrePRNs        float64 `json:"pre_pr_ns_per_access"`
	NsPerAccess    float64 `json:"ns_per_access"`
	Speedup        float64 `json:"speedup_vs_pre_pr"`
	AllocsPerBatch float64 `json:"allocs_per_batch"`
}

// TestBenchCoreSmoke measures the headline steady-state NuRAPID access
// cost (the BenchmarkCoreNuRAPID configuration), asserts the access
// path is still allocation-free, writes BENCH_core.json, and — when a
// committed baseline exists — fails if ns/access regressed more than
// 10% against it. It only runs when BENCH_CORE_JSON names the output
// file (make bench-core / CI), so plain `go test ./...` stays
// timing-free.
func TestBenchCoreSmoke(t *testing.T) {
	out := os.Getenv("BENCH_CORE_JSON")
	if out == "" {
		t.Skip("set BENCH_CORE_JSON=<path> to run the core bench smoke")
	}

	cfg := nurapidBenchCfg(4, core.NextFastest, core.RandomDistance, core.DistanceAssociative)
	mem := memsys.NewMemory(cfg.BlockBytes)
	c := core.MustNew(cfg, cacti.Default(), mem)
	reqs := coreBenchStream(cfg.BlockBytes, numSetsOf(cfg))
	now := replayStream(c, 0, reqs) // reach steady state

	// Zero-allocation contract on the exact gated path.
	if avg := testing.AllocsPerRun(3, func() {
		now = replayStream(c, now, reqs)
	}); avg != 0 {
		t.Fatalf("steady-state replay allocates %.1f times per batch, want 0", avg)
	}

	// Best-of-N replays: the minimum is the least noisy estimator of
	// the access path's intrinsic cost on a shared machine.
	const replays = 8
	best := time.Duration(1<<63 - 1)
	for i := 0; i < replays; i++ {
		start := time.Now()
		now = replayStream(c, now, reqs)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	nsPerAccess := float64(best.Nanoseconds()) / float64(coreBenchAccesses)

	rec := coreBench{
		Benchmark:   "nurapid-4g-next-fastest-random-da/steady-state",
		Accesses:    coreBenchAccesses,
		Replays:     replays,
		PrePRNs:     prePRNsPerAccess,
		NsPerAccess: nsPerAccess,
		Speedup:     prePRNsPerAccess / nsPerAccess,
	}
	t.Logf("core bench: %.2f ns/access (pre-PR %.1f, speedup %.2fx)",
		rec.NsPerAccess, rec.PrePRNs, rec.Speedup)

	// Regression gate against the committed baseline, when present.
	if data, err := os.ReadFile(coreBenchBaselineFile); err == nil {
		var base coreBench
		if err := json.Unmarshal(data, &base); err != nil {
			t.Fatalf("committed %s is corrupt: %v", coreBenchBaselineFile, err)
		}
		if base.NsPerAccess > 0 && nsPerAccess > base.NsPerAccess*1.10 {
			t.Errorf("ns/access regressed: %.2f vs committed baseline %.2f (>10%%)",
				nsPerAccess, base.NsPerAccess)
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
