// Package nurapid is a simulation library reproducing "Distance
// Associativity for High-Performance Energy-Efficient Non-Uniform Cache
// Architectures" (Chishti, Powell, Vijaykumar; MICRO 2003).
//
// The package re-exports the repository's public surface:
//
//   - the NuRAPID cache itself (distance-associative placement with
//     forward/reverse pointers, distance replacement, promotion
//     policies), via New;
//   - the baselines the paper compares against: the D-NUCA dynamic
//     non-uniform cache (NewDNUCA) and the conventional L2/L3 hierarchy
//     (NewBaseHierarchy);
//   - the synthetic SPEC2K-like workload models and trace format;
//   - the cycle-level out-of-order core that drives full-system runs;
//   - the experiment Runner that regenerates every table and figure of
//     the paper's evaluation.
//
// Quick start:
//
//	cache, mem, err := nurapid.New(nurapid.DefaultConfig())
//	if err != nil { ... }
//	r := cache.Access(nurapid.Req{Now: 0, Addr: 0x1000_0000}) // cycle 0, read
//	_ = mem                                                    // backing memory model
//
// Full-system comparison (parallel across all cores, byte-identical
// output to a serial run at the same seed):
//
//	runner := nurapid.NewRunner(
//		nurapid.WithInstructions(2_000_000),
//		nurapid.WithSeed(1),
//		nurapid.WithWorkers(runtime.GOMAXPROCS(0)),
//	)
//	fig9 := runner.Fig9() // NuRAPID vs D-NUCA, paper Figure 9
//	fig9.Table.WriteText(os.Stdout)
package nurapid

import (
	"io"

	"nurapid/internal/cacti"
	"nurapid/internal/cmp"
	"nurapid/internal/cpu"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	core "nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/sim"
	"nurapid/internal/uca"
	"nurapid/internal/workload"
)

// Core NuRAPID types.
type (
	// Config parameterizes a NuRAPID cache (capacity, d-groups,
	// promotion and distance-replacement policies, placement mode).
	Config = core.Config
	// Cache is the NuRAPID cache: a centralized set-associative tag
	// array with forward pointers into a few large distance-groups.
	Cache = core.Cache
	// Promotion selects what happens when a block hits outside the
	// fastest d-group.
	Promotion = core.Promotion
	// DistancePolicy selects the distance-replacement victim policy.
	DistancePolicy = core.DistancePolicy
	// Placement selects decoupled (distance-associative) or coupled
	// (set-associative) data placement.
	Placement = core.Placement
)

// Promotion policies (paper Sec. 2.4.1).
const (
	DemotionOnly = core.DemotionOnly
	NextFastest  = core.NextFastest
	Fastest      = core.Fastest
)

// Distance-replacement victim policies (paper Sec. 2.4.2).
const (
	RandomDistance = core.RandomDistance
	LRUDistance    = core.LRUDistance
)

// Placement modes (paper Sec. 2.1 and Figure 4).
const (
	DistanceAssociative = core.DistanceAssociative
	SetAssociative      = core.SetAssociative
)

// Memory-system types shared by all organizations.
type (
	// Memory is the fixed-latency main-memory model.
	Memory = memsys.Memory
	// Req is one lower-level cache request (issue cycle, block address,
	// direction, requesting core).
	Req = memsys.Req
	// AccessResult reports one lower-level cache access.
	AccessResult = memsys.AccessResult
	// LowerLevel is the interface all L2 organizations implement.
	LowerLevel = memsys.LowerLevel
)

// Baseline organizations.
type (
	// DNUCAConfig parameterizes the D-NUCA baseline.
	DNUCAConfig = nuca.Config
	// DNUCA is the dynamic non-uniform cache baseline (Kim et al.).
	DNUCA = nuca.Cache
	// SearchPolicy selects D-NUCA's lookup strategy.
	SearchPolicy = nuca.SearchPolicy
	// Hierarchy is the conventional L2/L3 baseline.
	Hierarchy = uca.Hierarchy
)

// D-NUCA search policies.
const (
	SSPerformance = nuca.SSPerformance
	SSEnergy      = nuca.SSEnergy
)

// Workload types.
type (
	// App is one modeled SPEC2K-like benchmark.
	App = workload.App
	// Generator synthesizes an instruction stream for one App.
	Generator = workload.Generator
	// Instr is one dynamic instruction.
	Instr = workload.Instr
	// Source produces a dynamic instruction stream.
	Source = workload.Source
)

// CMP (multi-core) types. The CMP front end is the repository's
// extension beyond the paper's single-core evaluation: N cores with
// private L1s share one lower-level organization through a
// deterministic bank-queue model with coherence-lite invalidation.
type (
	// CMPConfig parameterizes a multi-core system (cores, sharing
	// pattern, queue model).
	CMPConfig = cmp.Config
	// CMPSystem is N lockstep cores over one shared lower level.
	CMPSystem = cmp.System
	// CMPResult summarizes one multi-core run (per-core results,
	// aggregate IPC, Jain fairness, contention stalls).
	CMPResult = cmp.Result
	// CMPQueueConfig parameterizes the shared-L2 bank queues.
	CMPQueueConfig = cmp.QueueConfig
	// Sharing selects the CMP workload pattern (SharedWorkloads or
	// PrivateWorkloads).
	Sharing = cmp.Sharing
	// CMPRunResult captures one memoized multi-core Runner simulation.
	CMPRunResult = sim.CMPRunResult
)

// CMP workload sharing patterns.
const (
	// SharedWorkloads gives every core the identical address stream.
	SharedWorkloads = cmp.Shared
	// PrivateWorkloads gives each core a disjoint address space.
	PrivateWorkloads = cmp.Private
)

// NewCMP builds a multi-core system over the shared organization l2.
func NewCMP(l2 LowerLevel, cfg CMPConfig) (*CMPSystem, error) {
	return cmp.New(l2, cfg)
}

// WithCores sets the core count for the Runner's CMP experiment.
func WithCores(n int) RunnerOption { return sim.WithCores(n) }

// WithSharing selects the CMP workload sharing pattern.
func WithSharing(s Sharing) RunnerOption { return sim.WithSharing(s) }

// CPU types.
type (
	// CPUConfig sets the out-of-order core's structural parameters.
	CPUConfig = cpu.Config
	// CPU is the cycle-level out-of-order core model.
	CPU = cpu.CPU
	// CPUResult summarizes one simulation run.
	CPUResult = cpu.Result
)

// Experiment-harness types.
type (
	// Runner executes and memoizes full-system simulations; it is safe
	// for concurrent use (singleflight memo + bounded worker pool).
	Runner = sim.Runner
	// Experiment is one regenerated table or figure.
	Experiment = sim.Experiment
	// Organization pairs a name with an L2 factory.
	Organization = sim.Organization
	// RunResult captures one full-system run.
	RunResult = sim.RunResult
	// RunnerOption configures a Runner at construction time.
	RunnerOption = sim.Option
	// Observer receives run lifecycle events from a Runner.
	Observer = sim.Observer
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = sim.ObserverFunc
	// RunEvent is one run lifecycle event.
	RunEvent = sim.RunEvent
	// EventKind distinguishes start and finish events.
	EventKind = sim.EventKind
	// ProbeFactory builds one microarchitectural probe per executed run.
	ProbeFactory = sim.ProbeFactory
	// Probe receives microarchitectural events from a cache organization.
	Probe = obs.Probe
	// ProbeEvent is one microarchitectural event.
	ProbeEvent = obs.Event
	// ProbeCollector aggregates probe events into counters + histograms.
	ProbeCollector = obs.Collector
	// OccupancySampler samples per-d-group occupancy once per epoch.
	OccupancySampler = obs.Sampler
	// TraceSink streams probe events as JSONL.
	TraceSink = obs.TraceSink
)

// Run lifecycle event kinds.
const (
	RunStart  = sim.RunStart
	RunFinish = sim.RunFinish
)

// DefaultConfig returns the paper's primary NuRAPID design: 8 MB, 8-way,
// 128-B blocks, 4 d-groups, next-fastest promotion, random distance
// replacement.
func DefaultConfig() Config { return core.DefaultConfig() }

// New builds a NuRAPID cache (with latencies and energies from the
// calibrated 70-nm model) backed by a fresh main-memory model, which is
// returned alongside for energy/latency inspection.
func New(cfg Config) (*Cache, *Memory, error) {
	mem := memsys.NewMemory(cfg.BlockBytes)
	c, err := core.New(cfg, cacti.Default(), mem)
	if err != nil {
		return nil, nil, err
	}
	return c, mem, nil
}

// DefaultDNUCAConfig returns the paper's optimal D-NUCA baseline: 8 MB,
// 16-way, 128 64-KB banks, 8 latency groups per set, ss-performance.
func DefaultDNUCAConfig() DNUCAConfig { return nuca.DefaultConfig() }

// NewDNUCA builds the D-NUCA baseline backed by a fresh memory model.
func NewDNUCA(cfg DNUCAConfig) (*DNUCA, *Memory, error) {
	mem := memsys.NewMemory(cfg.BlockBytes)
	c, err := nuca.New(cfg, cacti.Default(), mem)
	if err != nil {
		return nil, nil, err
	}
	return c, mem, nil
}

// NewBaseHierarchy builds the conventional 1-MB-L2 + 8-MB-L3 baseline
// backed by a fresh memory model with the hierarchy's own block size.
func NewBaseHierarchy() (*Hierarchy, *Memory) {
	mem := memsys.NewMemory(uca.BlockBytes)
	return uca.NewHierarchy(cacti.Default(), mem), mem
}

// Apps returns the 15-application workload roster (paper Table 3).
func Apps() []App { return workload.Apps() }

// AppByName finds a workload model by name.
func AppByName(name string) (App, bool) { return workload.ByName(name) }

// NewGenerator builds a deterministic instruction-stream generator.
func NewGenerator(app App, seed uint64) (*Generator, error) {
	return workload.NewGenerator(app, seed)
}

// DefaultCPUConfig returns the paper's Table 1 core parameters.
func DefaultCPUConfig() CPUConfig { return cpu.DefaultConfig() }

// NewCPU builds an out-of-order core driving the given lower level.
func NewCPU(cfg CPUConfig, l2 LowerLevel) (*CPU, error) {
	return cpu.New(l2, cpu.WithConfig(cfg), cpu.WithL1EnergyNJ(cacti.Default().L1NJ))
}

// NewRunner builds an experiment runner: by default the calibrated
// 70-nm model, 2M instructions per run, seed 1, the full application
// roster, and serial execution; override with the With* options. With
// WithWorkers(n > 1), experiments fan their run set onto a bounded
// worker pool while rendered output stays byte-identical to a serial
// run at the same seed.
func NewRunner(opts ...RunnerOption) *Runner {
	return sim.NewRunner(opts...)
}

// NewRunnerSeeded builds a serial runner simulating the given number of
// instructions per run at the given seed.
//
// Deprecated: use NewRunner(WithInstructions(instructions),
// WithSeed(seed)).
func NewRunnerSeeded(instructions int64, seed uint64) *Runner {
	return sim.NewRunnerSeeded(instructions, seed)
}

// Runner construction options.

// WithInstructions sets the number of instructions simulated per run.
func WithInstructions(n int64) RunnerOption { return sim.WithInstructions(n) }

// WithSeed sets the workload seed; rendered output is a pure function
// of the seed and run parameters, regardless of worker count.
func WithSeed(seed uint64) RunnerOption { return sim.WithSeed(seed) }

// WithWorkers bounds the worker pool; n <= 1 selects serial execution.
func WithWorkers(n int) RunnerOption { return sim.WithWorkers(n) }

// WithApps replaces the application roster.
func WithApps(apps ...App) RunnerOption { return sim.WithApps(apps...) }

// WithObserver attaches a structured observer for run events.
func WithObserver(o Observer) RunnerOption { return sim.WithObserver(o) }

// WithProbe attaches a per-run microarchitectural probe factory.
func WithProbe(f ProbeFactory) RunnerOption { return sim.WithProbe(f) }

// WithTrace writes one JSONL event trace per executed run into dir.
func WithTrace(dir string) RunnerOption { return sim.WithTrace(dir) }

// WithModel substitutes the physical timing/energy model (for example
// DefaultModel().Scaled(1.5) for slower wires).
func WithModel(m *Model) RunnerOption { return sim.WithModel(m) }

// Model is the calibrated timing/energy model behind every
// organization (latencies, per-access energies, wire scaling).
type Model = cacti.Model

// DefaultModel returns the calibrated 70-nm model.
func DefaultModel() *Model { return cacti.Default() }

// TextObserver renders each completed run as a one-line progress
// message on w (the cmd/experiments stderr format).
func TextObserver(w io.Writer) Observer { return sim.TextObserver(w) }

// Organization constructors for the Runner.

// Base returns the conventional hierarchy organization.
func Base() Organization { return sim.Base() }

// Ideal returns the constant-fastest-latency bound.
func Ideal() Organization { return sim.Ideal() }

// NuRAPIDOrg returns a NuRAPID organization for the Runner.
func NuRAPIDOrg(cfg Config) Organization { return sim.NuRAPID(cfg) }

// DNUCAOrg returns a D-NUCA organization for the Runner.
func DNUCAOrg(cfg DNUCAConfig) Organization { return sim.DNUCA(cfg) }
