package energy

import (
	"testing"

	"nurapid/internal/cacti"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(cacti.Default())
	if p.L1NJ != 0.57 {
		t.Fatalf("L1NJ = %v, want Table 2's 0.57", p.L1NJ)
	}
	if p.CoreNJPerCycle <= 0 || p.CoreNJPerInstr <= 0 {
		t.Fatal("core rates must be positive")
	}
}

func TestCollectAndTotal(t *testing.T) {
	p := Params{CoreNJPerCycle: 2, CoreNJPerInstr: 3, L1NJ: 0.5}
	b := p.Collect(100, 50, 10, 7, 9)
	if b.CoreNJ != 2*100+3*50 {
		t.Fatalf("CoreNJ = %v", b.CoreNJ)
	}
	if b.L1NJ != 5 {
		t.Fatalf("L1NJ = %v", b.L1NJ)
	}
	if b.L2NJ != 7 || b.MemoryNJ != 9 {
		t.Fatal("passthrough components wrong")
	}
	if b.TotalNJ() != b.CoreNJ+5+7+9 {
		t.Fatalf("TotalNJ = %v", b.TotalNJ())
	}
}

func TestEnergyDelay(t *testing.T) {
	if EnergyDelay(10, 100) != 1000 {
		t.Fatal("EnergyDelay wrong")
	}
}
