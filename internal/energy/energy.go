// Package energy aggregates dynamic energy across the simulated
// processor, in the role Wattch played for the paper: cache and memory
// energies come from the cacti-derived models; everything else in the
// core is charged per cycle and per committed instruction.
package energy

import "nurapid/internal/cacti"

// Params fixes the background (non-cache) energy rates. The absolute
// values are calibration constants (documented in EXPERIMENTS.md); the
// paper's energy-delay comparison only needs the cache energies to be
// cacti-derived and the core energy to be a realistic backdrop.
type Params struct {
	// CoreNJPerCycle charges clocking and idle structure power.
	CoreNJPerCycle float64
	// CoreNJPerInstr charges per committed instruction (fetch, decode,
	// rename, issue, functional units, result bus).
	CoreNJPerInstr float64
	// L1NJ is the per-access energy of each L1 (2 ports, Table 2).
	L1NJ float64
}

// DefaultParams returns the calibration used throughout the experiments.
func DefaultParams(m *cacti.Model) Params {
	return Params{
		CoreNJPerCycle: 1.0,
		CoreNJPerInstr: 1.5,
		L1NJ:           m.L1NJ,
	}
}

// Breakdown is the energy of one simulation, by component, in nJ.
type Breakdown struct {
	CoreNJ   float64
	L1NJ     float64
	L2NJ     float64 // the organization under test (incl. L3 for the base)
	MemoryNJ float64
}

// TotalNJ sums the components.
func (b Breakdown) TotalNJ() float64 {
	return b.CoreNJ + b.L1NJ + b.L2NJ + b.MemoryNJ
}

// Collect assembles a Breakdown from raw simulation tallies.
func (p Params) Collect(cycles, instructions, l1Accesses int64, l2NJ, memNJ float64) Breakdown {
	return Breakdown{
		CoreNJ:   p.CoreNJPerCycle*float64(cycles) + p.CoreNJPerInstr*float64(instructions),
		L1NJ:     p.L1NJ * float64(l1Accesses),
		L2NJ:     l2NJ,
		MemoryNJ: memNJ,
	}
}

// EnergyDelay returns the energy-delay product (nJ x cycles), the metric
// of the paper's Sec. 5.4.2 processor comparison.
func EnergyDelay(totalNJ float64, cycles int64) float64 {
	return totalNJ * float64(cycles)
}
