package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotPath enforces PR 5's zero-allocation contract statically: starting
// from every function annotated //nurapid:hotpath, it walks the
// transitive call graph and reports (1) heap-allocating constructs —
// closures, append outside the owned-scratch-buffer convention, map
// literals and operations, slice literals, make/new/&composite,
// interface boxing at call sites, implicit variadic slices, string
// concatenation and conversions, fmt calls, go/defer — and (2) call
// edges that leave the annotated region: a call into a module function
// that carries neither //nurapid:hotpath nor //nurapid:coldpath, or a
// dynamic call through an interface method whose declaration is not
// annotated. The frontier therefore stays explicit: extending the hot
// path means annotating the callee (and inheriting its obligations),
// and stepping off it means writing //nurapid:coldpath where a reviewer
// can see it.
//
// Escape hatches by design: arguments of panic(...) are exempt (loud
// invariant panics may format freely — they end the simulation), and
// stdlib calls other than fmt are allowed silently; real allocations
// hiding behind them are the escapecheck gate's job (cmd/nurapidlint
// -escapecheck), which reads the compiler's own escape analysis.
//
// Because the analyzer is whole-program, run it over the full module
// ("./..."): on a partial package set, cross-package callees look
// external and frontier violations go unreported.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid heap-allocating constructs and unannotated call edges in " +
		"code reachable from //nurapid:hotpath roots",
	RunProgram: runHotPath,
}

func runHotPath(prog *Program) error {
	hotTraverse(prog, prog.Pkgs)
	return nil
}

// hotTraverse walks the call graph from every hot root, reporting
// through prog when non-nil (silent closure computation otherwise),
// and returns the visited closure.
func hotTraverse(prog *Program, pkgs []*Package) map[string]*progFunc {
	cg := buildCallGraph(pkgs)
	visited := make(map[string]*progFunc)
	var queue []*progFunc
	enqueue := func(pf *progFunc) {
		if visited[pf.key] == nil && pf.decl.Body != nil {
			visited[pf.key] = pf
			queue = append(queue, pf)
		}
	}
	for _, pf := range cg.funcs {
		if pf.mark == markHot {
			enqueue(pf)
		}
	}
	for len(queue) > 0 {
		pf := queue[0]
		queue = queue[1:]
		w := &hotWalker{prog: prog, cg: cg, pf: pf, enqueue: enqueue}
		ast.Inspect(pf.decl.Body, w.visit)
	}
	return visited
}

// A HotFunc locates one function of the hot-path closure in the source
// tree, for tools that join the closure against compiler output
// (cmd/nurapidlint -escapecheck).
type HotFunc struct {
	Key       string
	File      string
	StartLine int
	EndLine   int
}

// HotPathClosure computes the transitive //nurapid:hotpath closure of
// pkgs without reporting diagnostics.
func HotPathClosure(pkgs []*Package) []HotFunc {
	visited := hotTraverse(nil, pkgs)
	out := make([]HotFunc, 0, len(visited))
	for _, pf := range visited {
		start := pf.pkg.Fset.Position(pf.decl.Pos())
		end := pf.pkg.Fset.Position(pf.decl.End())
		out = append(out, HotFunc{
			Key:       pf.key,
			File:      start.Filename,
			StartLine: start.Line,
			EndLine:   end.Line,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// hotWalker scans one hot function's body for allocating constructs and
// call edges.
type hotWalker struct {
	prog    *Program
	cg      *callGraph
	pf      *progFunc
	enqueue func(*progFunc)
}

func (w *hotWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.prog == nil {
		return // silent closure computation (HotPathClosure)
	}
	w.prog.Reportf(w.pf.pkg, pos, format, args...)
}

func (w *hotWalker) typeOf(e ast.Expr) types.Type {
	return w.pf.pkg.Info.TypeOf(e)
}

func (w *hotWalker) isMap(e ast.Expr) bool {
	t := w.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// visit is the ast.Inspect callback; returning false prunes the subtree.
func (w *hotWalker) visit(n ast.Node) bool {
	switch node := n.(type) {
	case *ast.FuncLit:
		w.reportf(node.Pos(), "function %s: closure literal allocates on the hot path", w.pf.key)
		return false
	case *ast.CallExpr:
		return w.visitCall(node)
	case *ast.CompositeLit:
		t := w.typeOf(node)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.reportf(node.Pos(), "function %s: map literal allocates on the hot path", w.pf.key)
			case *types.Slice:
				w.reportf(node.Pos(), "function %s: slice literal allocates on the hot path", w.pf.key)
			}
		}
	case *ast.UnaryExpr:
		if node.Op == token.AND {
			if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
				w.reportf(node.Pos(), "function %s: address of composite literal allocates on the hot path", w.pf.key)
				return false
			}
		}
	case *ast.IndexExpr:
		if w.isMap(node.X) {
			w.reportf(node.Pos(), "function %s: map access on the hot path (map[...] lookups hash and may allocate on write)", w.pf.key)
		}
	case *ast.RangeStmt:
		if w.isMap(node.X) {
			w.reportf(node.X.Pos(), "function %s: map iteration on the hot path (randomized order, hidden hashing)", w.pf.key)
		}
	case *ast.BinaryExpr:
		if node.Op == token.ADD {
			if t := w.typeOf(node.X); t != nil && isString(t) {
				w.reportf(node.Pos(), "function %s: string concatenation allocates on the hot path", w.pf.key)
			}
		}
	case *ast.AssignStmt:
		if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 {
			if t := w.typeOf(node.Lhs[0]); t != nil && isString(t) {
				w.reportf(node.Pos(), "function %s: string concatenation allocates on the hot path", w.pf.key)
			}
		}
	case *ast.GoStmt:
		w.reportf(node.Pos(), "function %s: goroutine launch on the hot path", w.pf.key)
		return false
	case *ast.DeferStmt:
		w.reportf(node.Pos(), "function %s: defer on the hot path (defers cost and may allocate)", w.pf.key)
		return false
	case *ast.SendStmt:
		w.reportf(node.Pos(), "function %s: channel send on the hot path", w.pf.key)
	}
	return true
}

// visitCall classifies one call expression: panic escape hatch, type
// conversions, builtins, static calls (frontier + boxing), or dynamic
// calls.
func (w *hotWalker) visitCall(call *ast.CallExpr) bool {
	info := w.pf.pkg.Info

	// panic(...) ends the simulation; its arguments (typically
	// fmt.Sprintf) are exempt from every hot-path rule.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return false
		}
	}

	if isConversion(info, call) {
		w.checkConversion(call)
		return true
	}

	if b := builtinName(info, call); b != "" {
		switch b {
		case "append":
			w.checkAppend(call)
		case "make", "new":
			w.reportf(call.Pos(), "function %s: %s allocates on the hot path", w.pf.key, b)
		case "delete":
			w.reportf(call.Pos(), "function %s: map delete on the hot path", w.pf.key)
		}
		return true
	}

	fn := staticCallee(info, call)
	if fn == nil {
		w.reportf(call.Pos(), "function %s: dynamic call through a function value on the hot path (not statically checkable; use a direct call or an annotated interface method)", w.pf.key)
		return true
	}
	w.checkStaticCall(call, fn)
	return true
}

func (w *hotWalker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to := w.typeOf(call.Fun)
	from := w.typeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	if isString(to) && isByteOrRuneSlice(from) {
		w.reportf(call.Pos(), "function %s: []byte-to-string conversion allocates on the hot path", w.pf.key)
	}
	if isByteOrRuneSlice(to) && isString(from) {
		w.reportf(call.Pos(), "function %s: string-to-slice conversion allocates on the hot path", w.pf.key)
	}
}

// checkAppend allows the owned-scratch-buffer convention — appending
// into a struct field the enclosing object preallocated (typically
// sliced to [:0] per access) — and reports everything else: an append
// that outgrows its backing array reallocates.
func (w *hotWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := ast.Unparen(call.Args[0])
	for {
		switch e := base.(type) {
		case *ast.SliceExpr:
			base = ast.Unparen(e.X)
			continue
		case *ast.IndexExpr:
			base = ast.Unparen(e.X)
			continue
		}
		break
	}
	if sel, ok := base.(*ast.SelectorExpr); ok {
		if _, isField := w.pf.pkg.Info.Selections[sel]; isField {
			return
		}
	}
	w.reportf(call.Pos(), "function %s: append may grow a heap slice on the hot path; append into a preallocated struct-field scratch buffer instead", w.pf.key)
}

func (w *hotWalker) checkStaticCall(call *ast.CallExpr, fn *types.Func) {
	key := funcKey(fn)
	if key == "" {
		return // universe members (error.Error)
	}

	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		w.reportf(call.Pos(), "function %s: fmt.%s allocates on the hot path (formatting is for panics and reports only)", w.pf.key, fn.Name())
		return
	}

	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		if w.cg.markFor(key) != markHot {
			w.reportf(call.Pos(), "function %s: call through interface method %s whose declaration is not annotated //nurapid:hotpath", w.pf.key, key)
		}
		// Implementations are trusted frontiers (probes may allocate
		// when installed); they are never traversed.
		w.checkBoxing(call, sig)
		return
	}

	switch w.cg.markFor(key) {
	case markCold:
		// Deliberately off the fast path (audit/oracle branches).
	case markHot:
		if pf, ok := w.cg.funcs[key]; ok {
			w.enqueue(pf)
		}
	default:
		if pf, ok := w.cg.funcs[key]; ok {
			// In-module callee. Same-package helpers are hot by
			// contagion; cross-package edges must be annotated so the
			// frontier stays visible at the declaration site.
			if pf.pkg == w.pf.pkg {
				w.enqueue(pf)
			} else {
				w.reportf(call.Pos(), "function %s: call into %s, which is not annotated //nurapid:hotpath (annotate it, or //nurapid:coldpath if deliberately off the fast path)", w.pf.key, key)
			}
		}
		// Non-module (stdlib) calls other than fmt are allowed; the
		// escapecheck gate covers allocations hiding behind them.
	}
	if sig != nil {
		w.checkBoxing(call, sig)
	}
}

// checkBoxing reports implicit interface conversions at the call site:
// passing a concrete value where the parameter is an interface boxes it
// (allocating unless the escape analysis gets lucky), and passing extra
// arguments to a variadic function materializes a slice.
func (w *hotWalker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	nfixed := params.Len()
	if sig.Variadic() {
		nfixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > nfixed {
			w.reportf(call.Pos(), "function %s: variadic call materializes an argument slice on the hot path", w.pf.key)
		}
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < nfixed:
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := w.typeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			// Pointer-shaped values fit the interface data word
			// directly; boxing them does not allocate.
			continue
		}
		w.reportf(arg.Pos(), "function %s: passing %s as interface %s boxes the value on the hot path", w.pf.key, at, pt)
	}
}
