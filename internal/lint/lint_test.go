package lint

import (
	"path/filepath"
	"testing"
)

// moduleRoot is the repository root relative to this package.
const moduleRoot = "../.."

func checkGolden(t *testing.T, a *Analyzer, sub string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", sub)
	problems, err := CheckDir(moduleRoot, dir, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestDeterminismGolden(t *testing.T) { checkGolden(t, Determinism, "determinism") }
func TestPanicStyleGolden(t *testing.T)  { checkGolden(t, PanicStyle, "panicstyle") }
func TestStatsRegGolden(t *testing.T)    { checkGolden(t, StatsReg, "statsreg") }

// TestRepositoryIsClean is the in-process version of the CI gate: the
// whole module must lint clean under the custom analyzer suite.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := Load(moduleRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader is missing targets", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLoadTypeInfo spot-checks that the loader produces real type
// information resolved through export data, not shallow parses.
func TestLoadTypeInfo(t *testing.T) {
	pkgs, err := Load(moduleRoot, "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types.Path() != "nurapid/internal/stats" {
		t.Fatalf("package path = %q", p.Types.Path())
	}
	if p.Types.Scope().Lookup("Counters") == nil {
		t.Fatal("stats.Counters not in package scope")
	}
	if len(p.Info.Uses) == 0 || len(p.Info.Selections) == 0 {
		t.Fatal("type info is empty")
	}
}
