package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot is the repository root relative to this package.
const moduleRoot = "../.."

func checkGolden(t *testing.T, a *Analyzer, sub string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", sub)
	problems, err := CheckDir(moduleRoot, dir, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestDeterminismGolden(t *testing.T) { checkGolden(t, Determinism, "determinism") }
func TestPanicStyleGolden(t *testing.T)  { checkGolden(t, PanicStyle, "panicstyle") }
func TestStatsRegGolden(t *testing.T)    { checkGolden(t, StatsReg, "statsreg") }
func TestHotPathGolden(t *testing.T)     { checkGolden(t, HotPath, "hotpath") }
func TestProbeOrderGolden(t *testing.T)  { checkGolden(t, ProbeOrder, "probeorder") }
func TestSnapshotDetGolden(t *testing.T) { checkGolden(t, SnapshotDet, "snapshotdet") }

// TestDirectivesGolden exercises the directives meta-check: unknown
// analyzer names and suppress-nothing directives are findings (the
// golden package runs under determinism so a used directive is also
// present).
func TestDirectivesGolden(t *testing.T) { checkGolden(t, Determinism, "directives") }

// TestHotPathFrontier builds a throwaway two-package module: hotpath's
// cross-package frontier rule (annotate the callee or the edge is a
// finding) needs real package boundaries, which single-directory golden
// packages cannot express.
func TestHotPathFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list on a temp module")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module hottest\n\ngo 1.24\n",
		"a/a.go": `package a

import "hottest/b"

//nurapid:hotpath
func Fast(x int) int {
	return b.Helper(x)
}
`,
		"b/b.go": `package b

func Helper(x int) int { return x + 1 }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, []*Analyzer{HotPath})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	want := "call into hottest/b.Helper, which is not annotated //nurapid:hotpath"
	if !strings.Contains(diags[0].Message, want) {
		t.Fatalf("diagnostic %q does not mention %q", diags[0].Message, want)
	}
}

// TestHotRootsAnnotated is the drift guard: every real organization
// entry point — a FuncDecl named Access, AccessMany, or Replay in the
// module — must carry //nurapid:hotpath or //nurapid:coldpath, so new
// organizations cannot silently dodge the analyzer.
func TestHotRootsAnnotated(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	rootNames := map[string]bool{"Access": true, "AccessMany": true, "Replay": true}
	pkgs, err := Load(moduleRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !rootNames[fd.Name.Name] {
					continue
				}
				found++
				if markOf(fd.Doc) == "" {
					pos := pkg.Fset.Position(fd.Pos())
					t.Errorf("%s: %s.%s carries neither //nurapid:hotpath nor //nurapid:coldpath",
						pos, pkg.Types.Path(), fd.Name.Name)
				}
			}
		}
	}
	if found < 12 {
		t.Fatalf("found only %d Access/AccessMany/Replay declarations; the drift guard lost its targets", found)
	}
}

// TestRepositoryIsClean is the in-process version of the CI gate: the
// whole module must lint clean under the custom analyzer suite.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := Load(moduleRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader is missing targets", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLoadTypeInfo spot-checks that the loader produces real type
// information resolved through export data, not shallow parses.
func TestLoadTypeInfo(t *testing.T) {
	pkgs, err := Load(moduleRoot, "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types.Path() != "nurapid/internal/stats" {
		t.Fatalf("package path = %q", p.Types.Path())
	}
	if p.Types.Scope().Lookup("Counters") == nil {
		t.Fatal("stats.Counters not in package scope")
	}
	if len(p.Info.Uses) == 0 || len(p.Info.Selections) == 0 {
		t.Fatal("type info is empty")
	}
}
