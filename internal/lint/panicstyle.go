package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// PanicStyle polices how the simulator fails. The d-group machinery
// (internal/nurapid/dgroup.go) guards its structural invariants with
// panics; those must be identifiable in a crash log, so every panic
// message starts with a "<pkg>: " prefix. And panics must stay on
// invariant paths: a function that can return an error has an error path,
// so it must use it — with the one sanctioned exception of Must* wrappers
// that exist precisely to convert errors into panics for static
// configurations.
var PanicStyle = &Analyzer{
	Name: "panicstyle",
	Doc: "panic messages must carry a \"<pkg>: \" prefix, and functions " +
		"with an error result must not panic (except Must* wrappers)",
	Run: runPanicStyle,
}

func runPanicStyle(pass *Pass) error {
	prefix := pass.Pkg.Name() + ": "
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPanicsIn(pass, fn, prefix)
		}
	}
	return nil
}

func checkPanicsIn(pass *Pass, fn *ast.FuncDecl, prefix string) {
	isMust := strings.HasPrefix(fn.Name.Name, "Must")
	checkPanicBody(pass, fn.Body, prefix, fn.Name.Name, isMust,
		resultsIncludeError(pass, fn.Type))
}

// checkPanicBody walks one function body. Nested function literals are
// visited with their own error-result flag: a panic inside a literal
// cannot take the enclosing function's error path.
func checkPanicBody(pass *Pass, body ast.Node, prefix, fnName string, isMust, returnsError bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkPanicBody(pass, lit.Body, prefix, fnName+" (func literal)", isMust,
				resultsIncludeError(pass, lit.Type))
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if returnsError && !isMust {
			pass.Reportf(call.Pos(),
				"%s returns an error; use the error path instead of panicking (panics are for invariants)",
				fnName)
			return true
		}
		if isMust {
			return true // Must* wrappers re-panic arbitrary errors by design
		}
		if len(call.Args) == 1 && !panicMsgHasPrefix(pass, call.Args[0], prefix) {
			pass.Reportf(call.Pos(),
				"panic message must start with %q so invariant failures are attributable", prefix)
		}
		return true
	})
}

func resultsIncludeError(pass *Pass, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, r := range ft.Results.List {
		if t := pass.TypeOf(r.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

// panicMsgHasPrefix reports whether the panic argument is a string
// message carrying the package prefix: a string literal, an fmt.Sprintf
// whose format literal is prefixed, or a concatenation whose leftmost
// operand is a prefixed literal.
func panicMsgHasPrefix(pass *Pass, arg ast.Expr, prefix string) bool {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(e.Value); err == nil {
			return strings.HasPrefix(s, prefix)
		}
	case *ast.BinaryExpr:
		return panicMsgHasPrefix(pass, e.X, prefix)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" && len(e.Args) > 0 {
			if pkg := pkgOf(pass, sel); pkg != nil && pkg.Path() == "fmt" {
				return panicMsgHasPrefix(pass, e.Args[0], prefix)
			}
		}
	}
	// Non-literal messages (wrapped errors, computed strings) are only
	// allowed in Must* wrappers, handled by the caller.
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
