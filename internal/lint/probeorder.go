package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ProbeOrder statically verifies the obs ordering contract that PR 4's
// runtime pin (TestEventOrderCanonical) and the differential oracle
// depend on: within one access, events appear as
//
//	[Enqueue → Issue →] Access → outcome (Hit|Miss) → Evict → links
//	(Promote/Demote) → Place [→ Swap] [→ Inval...]
//
// on every control-flow path. The analyzer abstractly interprets each
// function body, tracking the set of possibly-last-emitted kinds
// through branches, loops (to fixpoint), and same-package helper calls
// (via first/last emission summaries), and reports any emission — or
// helper call — that can follow a higher-ranked one. Two deliberate
// relaxations encode the contract's real shape: a completed access
// (any emission) may be followed by a new Access (batched loops), and
// Place may be followed by the next level's outcome (uca.Hierarchy
// applies the order per level). A function that emits Access directly
// must emit it before anything else (Issue excepted: an inline queue
// may grant, then access).
//
// The CMP queue-side kinds bracket the window: Enqueue must be
// directly followed by Issue, Issue by the organization's Access, and
// Inval (coherence shoot-down) may appear only after the outcome. The
// organization's own emissions happen behind dynamic dispatch — the
// analyzer gives calls to memsys.LowerLevel.Access/AccessMany (and the
// package-level batch helpers) a synthetic whole-window summary so
// queue code that emits around such a call is still checked.
//
// Probe emissions are recognized as p.Emit(obs.Ctor(...)) where Emit is
// the obs.Probe interface method; an `x != nil`-guarded block that
// emits is assumed taken, since probe nil-ness is uniform across a run
// and the nil fast path emits nothing at all.
var ProbeOrder = &Analyzer{
	Name: "probeorder",
	Doc: "verify obs emissions follow the pinned Enqueue → Issue → Access → " +
		"outcome → Evict → links → Place → Inval order on every control-flow path",
	Run: runProbeOrder,
}

// obsPkgPath is the import path of the observability layer whose
// Probe.Emit calls the analyzer tracks.
const obsPkgPath = "nurapid/internal/obs"

// memsysPkgPath is the import path whose LowerLevel.Access dynamic
// dispatch gets the synthetic whole-window summary.
const memsysPkgPath = "nurapid/internal/memsys"

// poKind enumerates the obs event constructors in pinned-order rank
// groups.
type poKind int

const (
	poAccess poKind = iota
	poHit
	poMiss
	poEvict
	poPromote
	poDemote
	poPlace
	poSwap
	poEnqueue
	poIssue
	poInval
	poBypass
	numPoKinds
)

// poStart is the state-mask bit for "nothing emitted yet on this path".
const poStart uint16 = 1 << numPoKinds

var poCtorKinds = map[string]poKind{
	"Access": poAccess, "Hit": poHit, "Miss": poMiss, "Evict": poEvict,
	"Promote": poPromote, "DemoteLink": poDemote, "Place": poPlace,
	"SwapBacklog": poSwap,
	"Enqueue":     poEnqueue, "Issue": poIssue, "Inval": poInval,
	"Bypass": poBypass,
}

var poNames = [numPoKinds]string{
	"Access", "Hit", "Miss", "Evict", "Promote", "DemoteLink", "Place", "SwapBacklog",
	"Enqueue", "Issue", "Inval", "Bypass",
}

// poRank maps kinds onto the pinned order's rank ladder: emissions of
// one access must be rank-non-decreasing. The queue-side kinds sit at
// the window's edges: Enqueue/Issue before the Access (rank 0, with
// exact-successor rules below), Inval after everything.
var poRank = [numPoKinds]int{
	poAccess:  0,
	poHit:     1,
	poMiss:    1,
	poEvict:   2,
	poPromote: 3,
	poDemote:  3,
	poPlace:   4,
	poSwap:    5,
	poEnqueue: 0,
	poIssue:   0,
	poInval:   6,
	// Bypass sits where a suppressed promotion's movement links would:
	// directly after the Hit outcome, before any trailing Inval.
	poBypass: 3,
}

// poAllowed reports whether next may directly follow prev within the
// event stream.
func poAllowed(prev, next poKind) bool {
	if prev == poEnqueue {
		// An enqueued request's only successor is its bank grant.
		return next == poIssue
	}
	if prev == poIssue {
		// A granted request goes straight into the organization.
		return next == poAccess
	}
	switch next {
	case poEnqueue:
		// A new queued access may begin after any completed window —
		// but never directly after a bare Access (outcome pending).
		return prev != poAccess
	case poIssue:
		return false // Issue only directly follows its own Enqueue
	case poInval:
		// Coherence shoot-downs trail the access's outcome: anything
		// rank >= 1 (another Inval included) may precede one.
		return poRank[prev] >= 1
	case poAccess:
		// A new access may begin after any completed emission — the
		// batched AccessMany loops do exactly that — but never directly
		// after a bare Access (its outcome is still pending).
		return prev != poAccess
	case poBypass:
		// A bypass is a suppressed promotion: it directly follows its
		// access's Hit outcome and nothing else.
		return prev == poHit
	}
	if prev == poInval {
		// Only a new access window may follow a shoot-down (handled by
		// the poAccess/poEnqueue cases above).
		return false
	}
	if prev == poBypass {
		// A bypass closes its access window like a completed movement:
		// only a new window or a trailing Inval (both handled above) may
		// follow it.
		return false
	}
	if prev == poPlace && poRank[next] == 1 {
		// A level's fill completed; a multi-level organization moves on
		// to the next level's outcome (uca.Hierarchy per-level order).
		return true
	}
	if poRank[next] < poRank[prev] {
		return false
	}
	if poRank[next] == 1 && poRank[prev] == 1 {
		return false // two outcomes for one access
	}
	return true
}

// poSummary is a function's emission summary: first is the mask of
// kinds it can emit while nothing has been emitted yet, last the mask
// of possibly-final kinds at exit (poStart set when some path emits
// nothing).
type poSummary struct {
	first uint16
	last  uint16
}

// poSite is one checkable location: a direct emission or a call to a
// same-package emitting helper. in accumulates every state mask that
// reached it across the fixpoint.
type poSite struct {
	call   *ast.CallExpr
	direct bool
	kind   poKind      // direct sites
	callee *types.Func // helper-call sites
	in     uint16
}

type poAnalysis struct {
	pass       *Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[*types.Func]*poSummary
	inProgress map[*types.Func]bool
	sites      map[*ast.CallExpr]*poSite
	siteOrder  []*poSite
	// exitMask accumulates the state masks at the return points of the
	// function currently being summarized.
	exitMask uint16
	// breakFrames routes break statements to the innermost breakable
	// construct (loop or switch) during evaluation.
	breakFrames []*poFrame
}

type poFrame struct {
	breakMask    uint16
	continueMask uint16
	isLoop       bool
}

func runProbeOrder(pass *Pass) error {
	a := &poAnalysis{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		summaries:  make(map[*types.Func]*poSummary),
		inProgress: make(map[*types.Func]bool),
		sites:      make(map[*ast.CallExpr]*poSite),
	}
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
				order = append(order, fn)
			}
		}
	}
	for _, fn := range order {
		a.summarize(fn)
	}
	a.report()
	return nil
}

func (a *poAnalysis) summarize(fn *types.Func) *poSummary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inProgress[fn] {
		// Recursive helper: assume it emits nothing. No emitting
		// function in this codebase recurses; the assumption only
		// weakens, never falsifies, downstream checks.
		return &poSummary{last: poStart}
	}
	a.inProgress[fn] = true
	defer delete(a.inProgress, fn)

	// Nested summarization (a helper call mid-evaluation) must not
	// leak exit states or break frames between functions.
	savedExit, savedFrames := a.exitMask, a.breakFrames
	a.exitMask, a.breakFrames = 0, nil

	s := &poSummary{}
	body := a.decls[fn].Body
	out := a.evalBlock(body, poStart) // implicit return
	s.last = out | a.exitMask
	a.exitMask, a.breakFrames = savedExit, savedFrames
	if s.last == 0 {
		s.last = poStart // e.g. body is one infinite loop with no emits
	}
	// first: kinds whose site saw the Start bit.
	for _, site := range a.siteOrder {
		if !a.inFunc(site, body) {
			continue
		}
		if site.in&poStart == 0 {
			continue
		}
		if site.direct {
			s.first |= 1 << uint(site.kind)
		} else if cs := a.summaries[site.callee]; cs != nil {
			s.first |= cs.first
		}
	}
	a.summaries[fn] = s
	return s
}

// inFunc reports whether site lies inside body.
func (a *poAnalysis) inFunc(site *poSite, body *ast.BlockStmt) bool {
	return site.call.Pos() >= body.Pos() && site.call.End() <= body.End()
}

func (a *poAnalysis) evalBlock(b *ast.BlockStmt, in uint16) uint16 {
	cur := in
	for _, s := range b.List {
		if cur == 0 {
			break // unreachable after return/break on all paths
		}
		cur = a.evalStmt(s, cur)
	}
	return cur
}

func (a *poAnalysis) evalStmt(s ast.Stmt, in uint16) uint16 {
	switch st := s.(type) {
	case nil:
		return in
	case *ast.BlockStmt:
		return a.evalBlock(st, in)
	case *ast.IfStmt:
		in = a.evalStmt(st.Init, in)
		in = a.evalCalls(st.Cond, in)
		bodyOut := a.evalBlock(st.Body, in)
		if st.Else != nil {
			return bodyOut | a.evalStmt(st.Else, in)
		}
		if isNilGuard(st.Cond) && a.containsEmit(st.Body) {
			// A probe guard: the nil fast path emits nothing, so only
			// the taken branch constrains ordering.
			return bodyOut
		}
		return bodyOut | in
	case *ast.ForStmt:
		in = a.evalStmt(st.Init, in)
		frame := &poFrame{isLoop: true}
		a.breakFrames = append(a.breakFrames, frame)
		cur := in
		var condOut uint16
		for {
			condOut = a.evalCalls(st.Cond, cur)
			bodyOut := a.evalBlock(st.Body, condOut)
			bodyOut |= frame.continueMask
			postOut := a.evalStmt(st.Post, bodyOut)
			next := cur | postOut
			if next == cur {
				break
			}
			cur = next
		}
		a.breakFrames = a.breakFrames[:len(a.breakFrames)-1]
		if st.Cond == nil {
			return frame.breakMask // for{}: only break exits
		}
		return condOut | frame.breakMask
	case *ast.RangeStmt:
		in = a.evalCalls(st.X, in)
		frame := &poFrame{isLoop: true}
		a.breakFrames = append(a.breakFrames, frame)
		cur := in
		for {
			bodyOut := a.evalBlock(st.Body, cur)
			next := cur | bodyOut | frame.continueMask
			if next == cur {
				break
			}
			cur = next
		}
		a.breakFrames = a.breakFrames[:len(a.breakFrames)-1]
		return cur | frame.breakMask
	case *ast.SwitchStmt:
		in = a.evalStmt(st.Init, in)
		in = a.evalCalls(st.Tag, in)
		return a.evalCases(st.Body, in, hasDefaultCase(st.Body))
	case *ast.TypeSwitchStmt:
		in = a.evalStmt(st.Init, in)
		in = a.evalCalls(st.Assign, in)
		return a.evalCases(st.Body, in, hasDefaultCase(st.Body))
	case *ast.SelectStmt:
		return a.evalCases(st.Body, in, true)
	case *ast.LabeledStmt:
		return a.evalStmt(st.Stmt, in)
	case *ast.ReturnStmt:
		out := in
		for _, r := range st.Results {
			out = a.evalCalls(r, out)
		}
		a.exitMask |= out
		return 0
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if f := a.innermostFrame(false); f != nil {
				f.breakMask |= in
			}
		case token.CONTINUE:
			if f := a.innermostFrame(true); f != nil {
				f.continueMask |= in
			}
		}
		return 0
	default:
		// Expression-bearing statements: evaluate calls in source order.
		return a.evalCalls(s, in)
	}
}

func (a *poAnalysis) innermostFrame(loopOnly bool) *poFrame {
	for i := len(a.breakFrames) - 1; i >= 0; i-- {
		if !loopOnly || a.breakFrames[i].isLoop {
			return a.breakFrames[i]
		}
	}
	return nil
}

func (a *poAnalysis) evalCases(body *ast.BlockStmt, in uint16, exhaustive bool) uint16 {
	frame := &poFrame{}
	a.breakFrames = append(a.breakFrames, frame)
	var out uint16
	for _, s := range body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			if cc2, ok := s.(*ast.CommClause); ok {
				cur := in
				for _, bs := range cc2.Body {
					if cur == 0 {
						break
					}
					cur = a.evalStmt(bs, cur)
				}
				out |= cur
			}
			continue
		}
		cur := in
		for _, e := range cc.List {
			cur = a.evalCalls(e, cur)
		}
		for _, bs := range cc.Body {
			if cur == 0 {
				break
			}
			cur = a.evalStmt(bs, cur)
		}
		out |= cur
	}
	a.breakFrames = a.breakFrames[:len(a.breakFrames)-1]
	out |= frame.breakMask
	if !exhaustive {
		out |= in
	}
	return out
}

// evalCalls scans n (an expression or simple statement) for emission
// and same-package helper calls in source order, threading the state
// mask through them.
func (a *poAnalysis) evalCalls(n ast.Node, in uint16) uint16 {
	if n == nil {
		return in
	}
	cur := in
	ast.Inspect(n, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := a.emissionKind(call); ok {
			cur = a.applyEmission(call, kind, cur)
			return false // the constructor argument is part of the site
		}
		if fn := a.sameOrLocalCallee(call); fn != nil {
			cur = a.applyCall(call, fn, cur)
		} else if fn := a.lowerAccessCallee(call); fn != nil {
			cur = a.applyCall(call, fn, cur)
		}
		return true
	})
	return cur
}

// lowerAccessCallee recognizes dynamic dispatch into a cache
// organization — a call to memsys.LowerLevel.Access / AccessMany (or
// the package-level batch helpers of the same names) — and registers a
// synthetic summary for it: the callee emits one (or, batched, many)
// complete canonical access window(s), beginning with Access and
// ending in a completed-window kind. This keeps queue-side emitters
// (internal/cmp) checkable even though the organization behind the
// interface is invisible to a per-package pass.
func (a *poAnalysis) lowerAccessCallee(call *ast.CallExpr) *types.Func {
	fn := staticCallee(a.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != memsysPkgPath {
		return nil
	}
	if fn.Name() != "Access" && fn.Name() != "AccessMany" {
		return nil
	}
	if _, ok := a.summaries[fn]; !ok {
		a.summaries[fn] = &poSummary{
			first: 1 << uint(poAccess),
			last: 1<<uint(poHit) | 1<<uint(poMiss) | 1<<uint(poEvict) |
				1<<uint(poPromote) | 1<<uint(poDemote) | 1<<uint(poPlace) |
				1<<uint(poSwap) | 1<<uint(poBypass),
		}
	}
	return fn
}

// emissionKind recognizes p.Emit(obs.Ctor(...)) and returns the
// constructor's kind.
func (a *poAnalysis) emissionKind(call *ast.CallExpr) (poKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return 0, false
	}
	fn, ok := a.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Emit" || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return 0, false
	}
	ctor, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	cfn := staticCallee(a.pass.Info, ctor)
	if cfn == nil || cfn.Pkg() == nil || cfn.Pkg().Path() != obsPkgPath {
		return 0, false
	}
	kind, ok := poCtorKinds[cfn.Name()]
	return kind, ok
}

// sameOrLocalCallee resolves a call to a function declared in this
// package, the only calls with emission summaries.
func (a *poAnalysis) sameOrLocalCallee(call *ast.CallExpr) *types.Func {
	fn := staticCallee(a.pass.Info, call)
	if fn == nil {
		return nil
	}
	if _, ok := a.decls[fn]; !ok {
		return nil
	}
	return fn
}

func (a *poAnalysis) site(call *ast.CallExpr, direct bool, kind poKind, callee *types.Func) *poSite {
	if s, ok := a.sites[call]; ok {
		return s
	}
	s := &poSite{call: call, direct: direct, kind: kind, callee: callee}
	a.sites[call] = s
	a.siteOrder = append(a.siteOrder, s)
	return s
}

func (a *poAnalysis) applyEmission(call *ast.CallExpr, kind poKind, in uint16) uint16 {
	a.site(call, true, kind, nil).in |= in
	return 1 << uint(kind)
}

func (a *poAnalysis) applyCall(call *ast.CallExpr, fn *types.Func, in uint16) uint16 {
	sum := a.summarize(fn)
	if sum.first == 0 && sum.last&^poStart == 0 {
		return in // emits nothing
	}
	a.site(call, false, 0, fn).in |= in
	out := sum.last &^ poStart
	if sum.last&poStart != 0 {
		out |= in // may emit nothing: prior states survive
	}
	return out
}

// report walks every recorded site and emits at most one diagnostic per
// site: the worst (prev, next) pair that violates the pinned order.
func (a *poAnalysis) report() {
	sort.Slice(a.siteOrder, func(i, j int) bool {
		return a.siteOrder[i].call.Pos() < a.siteOrder[j].call.Pos()
	})
	for _, s := range a.siteOrder {
		prevs := s.in &^ poStart
		if s.direct {
			if s.kind == poAccess && prevs&^(1<<uint(poIssue)) != 0 {
				// Issue is the one legal predecessor: an inline queue may
				// grant, then access.
				a.pass.Reportf(s.call.Pos(),
					"obs.Access emitted after obs.%s: Access must be the first emission of an access",
					poNames[worstKind(prevs&^(1<<uint(poIssue)))])
				continue
			}
			if bad := a.badPrevs(prevs, 1<<uint(s.kind)); bad != 0 {
				a.pass.Reportf(s.call.Pos(),
					"obs.%s emitted after obs.%s violates the pinned order Access → outcome → Evict → links → Place",
					poNames[s.kind], poNames[worstKind(bad)])
			}
			continue
		}
		sum := a.summaries[s.callee]
		if sum == nil {
			continue
		}
		if bad := a.badPrevs(prevs, sum.first); bad != 0 {
			a.pass.Reportf(s.call.Pos(),
				"call to %s can emit obs.%s after obs.%s, violating the pinned order Access → outcome → Evict → links → Place",
				s.callee.Name(), poNames[firstViolatedNext(bad, sum.first)], poNames[worstKind(bad)])
		}
	}
}

// badPrevs returns the subset of prevs that cannot precede at least one
// kind in nexts.
func (a *poAnalysis) badPrevs(prevs, nexts uint16) uint16 {
	var bad uint16
	for p := poKind(0); p < numPoKinds; p++ {
		if prevs&(1<<uint(p)) == 0 {
			continue
		}
		for n := poKind(0); n < numPoKinds; n++ {
			if nexts&(1<<uint(n)) != 0 && !poAllowed(p, n) {
				bad |= 1 << uint(p)
			}
		}
	}
	return bad
}

// firstViolatedNext picks the lowest next kind some bad prev cannot
// precede, for a deterministic message.
func firstViolatedNext(bad, nexts uint16) poKind {
	for n := poKind(0); n < numPoKinds; n++ {
		if nexts&(1<<uint(n)) == 0 {
			continue
		}
		for p := poKind(0); p < numPoKinds; p++ {
			if bad&(1<<uint(p)) != 0 && !poAllowed(p, n) {
				return n
			}
		}
	}
	return 0
}

// worstKind picks the highest-ranked kind in mask, for a deterministic
// message.
func worstKind(mask uint16) poKind {
	best := poKind(0)
	bestRank := -1
	for k := poKind(0); k < numPoKinds; k++ {
		if mask&(1<<uint(k)) != 0 && poRank[k] >= bestRank {
			best, bestRank = k, poRank[k]
		}
	}
	return best
}

// hasDefaultCase reports whether a switch body has a default clause.
func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isNilGuard matches `x != nil` (either operand order).
func isNilGuard(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	return isNilIdent(be.X) || isNilIdent(be.Y)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// containsEmit reports whether the block directly (or in nested
// statements) contains a probe emission.
func (a *poAnalysis) containsEmit(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := a.emissionKind(call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
