package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dir   string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports through compiler export data located by
// `go list -export`. Paths missing from the initial map (rare; e.g. an
// import pulled in only through export data references) are resolved
// lazily with one more go list call.
type exportImporter struct {
	dir     string
	exports map[string]string
}

func (ei *exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := ei.exports[path]
	if !ok || file == "" {
		pkgs, err := goList(ei.dir, "-export", "-json=ImportPath,Export", path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			ei.exports[p.ImportPath] = p.Export
		}
		file = ei.exports[path]
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Load typechecks the non-test Go files of every package matching the
// given `go list` patterns (e.g. "./..."), run from dir.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles,Standard,Incomplete,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// One -deps -export pass primes export data for every dependency,
	// including the targets' own siblings, so each target typechecks
	// independently of load order.
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		exports[p.ImportPath] = p.Export
	}

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typecheck(dir, t.ImportPath, t.Dir, files, exports)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", t.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir typechecks every .go file directly inside dir as one package.
// It is the analysistest loader: testdata packages live outside the
// module's package graph, so their imports (stdlib only, typically) are
// resolved lazily.
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return typecheck(moduleDir, filepath.Base(dir), dir, files, map[string]string{})
}

// typecheck parses and typechecks one package from source, resolving
// imports through export data.
func typecheck(moduleDir, path, pkgDir string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	ei := &exportImporter{dir: moduleDir, exports: exports}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", ei.lookup),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info, Dir: pkgDir}, nil
}
