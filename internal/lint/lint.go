// Package lint is a small, dependency-free analogue of the
// golang.org/x/tools go/analysis framework, tailored to this repository.
// It exists because the simulator's correctness argument rests on
// properties a compiler cannot check — bit-reproducible output, loud
// invariant panics, no silently dropped metrics — and the module is
// deliberately stdlib-only, so the real go/analysis cannot be vendored.
//
// The shape mirrors go/analysis closely: an Analyzer bundles a name, doc
// string, and a Run function over a Pass; a Pass exposes the package's
// syntax trees and full type information and collects Diagnostics. The
// loader (load.go) typechecks packages from source, resolving imports
// through compiler export data obtained from `go list -export`, so
// analyzers see the same types the compiler does.
//
// Diagnostics can be suppressed per line with a trailing or preceding
//
//	//nurapidlint:ignore <analyzer> <reason>
//
// comment, mirroring staticcheck's lint directives.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the Pass. The returned error signals an analysis failure
	// (not a finding) and aborts the run.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	ignores map[string][]ignoreDirective // filename -> directives
	diags   *[]Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

type ignoreDirective struct {
	line     int
	analyzer string // "" means all analyzers
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, ig := range p.ignores[position.Filename] {
		if (ig.analyzer == "" || ig.analyzer == p.Analyzer.Name) &&
			(ig.line == position.Line || ig.line == position.Line-1) {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// collectIgnores scans a file's comments for //nurapidlint:ignore
// directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	out := make(map[string][]ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "nurapidlint:ignore") {
					continue
				}
				rest := strings.TrimPrefix(text, "nurapidlint:ignore")
				fields := strings.Fields(rest)
				dir := ignoreDirective{line: fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					dir.analyzer = fields[0]
				}
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename], dir)
			}
		}
	}
	return out
}

// Run applies each analyzer to each package and returns all diagnostics
// sorted by position. It fails only on analysis errors, never findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				ignores:  ignores,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PanicStyle, StatsReg}
}
