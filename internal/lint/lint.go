// Package lint is a small, dependency-free analogue of the
// golang.org/x/tools go/analysis framework, tailored to this repository.
// It exists because the simulator's correctness argument rests on
// properties a compiler cannot check — bit-reproducible output, loud
// invariant panics, no silently dropped metrics, allocation-free hot
// paths — and the module is deliberately stdlib-only, so the real
// go/analysis cannot be vendored.
//
// The shape mirrors go/analysis closely: an Analyzer bundles a name, doc
// string, and a Run function over a Pass; a Pass exposes the package's
// syntax trees and full type information and collects Diagnostics. The
// loader (load.go) typechecks packages from source, resolving imports
// through compiler export data obtained from `go list -export`, so
// analyzers see the same types the compiler does.
//
// Two analyzer shapes exist. Per-package analyzers (Run) see one package
// at a time. Whole-program analyzers (RunProgram) see every loaded
// package at once — the hotpath analyzer needs the full call graph, so
// it must observe cross-package edges. Because each package is
// typechecked independently, types.Object identities do NOT hold across
// packages; cross-package facilities key functions by stable string
// keys (see callgraph.go).
//
// Diagnostics can be suppressed per line with a trailing or preceding
//
//	//nurapidlint:ignore <analyzer> <reason>
//
// comment, mirroring staticcheck's lint directives. Directive hygiene is
// itself checked: a directive naming an unknown analyzer, or one that
// suppressed nothing in a run that included its analyzer, is reported
// under the reserved name "directives".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the Pass. The returned error signals an analysis failure
	// (not a finding) and aborts the run. Exactly one of Run and
	// RunProgram is set.
	Run func(*Pass) error
	// RunProgram applies the analyzer to every loaded package at once,
	// for checks that need cross-package visibility (call graphs).
	RunProgram func(*Program) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	ignores map[string][]*ignoreDirective // filename -> directives
	diags   *[]Diagnostic
}

// A Program is one whole-program analyzer applied to every loaded
// package. Diagnostics are reported through the per-package passes so
// ignore directives keep working.
type Program struct {
	Pkgs   []*Package
	passes map[*Package]*Pass
}

// Pass returns the reporting pass for pkg.
func (p *Program) Pass(pkg *Package) *Pass { return p.passes[pkg] }

// Reportf records a finding at pos inside pkg unless an ignore
// directive covers it.
func (p *Program) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.passes[pkg].Reportf(pos, format, args...)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

type ignoreDirective struct {
	line     int
	analyzer string // "" means all analyzers
	pos      token.Position
	used     bool
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, ig := range p.ignores[position.Filename] {
		if (ig.analyzer == "" || ig.analyzer == p.Analyzer.Name) &&
			(ig.line == position.Line || ig.line == position.Line-1) {
			ig.used = true
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// collectIgnores scans a file's comments for //nurapidlint:ignore
// directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]*ignoreDirective {
	out := make(map[string][]*ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "nurapidlint:ignore") {
					continue
				}
				rest := strings.TrimPrefix(text, "nurapidlint:ignore")
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				dir := &ignoreDirective{line: pos.Line, pos: pos}
				if len(fields) > 0 {
					dir.analyzer = fields[0]
				}
				out[pos.Filename] = append(out[pos.Filename], dir)
			}
		}
	}
	return out
}

// DirectivesName is the reserved analyzer name under which ignore
// directive hygiene findings are reported.
const DirectivesName = "directives"

// checkDirectives reports ignore directives that name an analyzer not
// in the registry (a typo'd directive suppresses nothing and warns
// nobody) and directives that suppressed no diagnostic even though
// their analyzer ran.
func checkDirectives(ran []*Analyzer, allIgnores []map[string][]*ignoreDirective, diags *[]Diagnostic) {
	known := map[string]bool{DirectivesName: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranNames[a.Name] = true
	}
	for _, ignores := range allIgnores {
		for _, list := range ignores {
			for _, ig := range list {
				switch {
				case ig.analyzer != "" && !known[ig.analyzer]:
					*diags = append(*diags, Diagnostic{
						Analyzer: DirectivesName,
						Pos:      ig.pos,
						Message: fmt.Sprintf(
							"ignore directive names unknown analyzer %q (known: %s)",
							ig.analyzer, strings.Join(knownNames(known), ", ")),
					})
				case !ig.used && (ig.analyzer == "" || ranNames[ig.analyzer]):
					*diags = append(*diags, Diagnostic{
						Analyzer: DirectivesName,
						Pos:      ig.pos,
						Message:  "ignore directive suppressed no diagnostic; remove it or move it to the offending line",
					})
				}
			}
		}
	}
}

func knownNames(known map[string]bool) []string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run applies each analyzer to each package and returns all diagnostics
// sorted by position. It fails only on analysis errors, never findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allIgnores := make([]map[string][]*ignoreDirective, len(pkgs))
	for i, pkg := range pkgs {
		allIgnores[i] = collectIgnores(pkg.Fset, pkg.Files)
	}
	newPass := func(a *Analyzer, i int) *Pass {
		return &Pass{
			Analyzer: a,
			Fset:     pkgs[i].Fset,
			Files:    pkgs[i].Files,
			Pkg:      pkgs[i].Types,
			Info:     pkgs[i].Info,
			ignores:  allIgnores[i],
			diags:    &diags,
		}
	}
	for i, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if err := a.Run(newPass(a, i)); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		prog := &Program{Pkgs: pkgs, passes: make(map[*Package]*Pass, len(pkgs))}
		for i, pkg := range pkgs {
			prog.passes[pkg] = newPass(a, i)
		}
		if err := a.RunProgram(prog); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	checkDirectives(analyzers, allIgnores, &diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PanicStyle, StatsReg, HotPath, ProbeOrder, SnapshotDet}
}
