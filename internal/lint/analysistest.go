package lint

import (
	"fmt"
	"os"
	"regexp"
	"strings"
)

// This file is the repository's stand-in for
// golang.org/x/tools/go/analysis/analysistest: golden testdata packages
// annotate the lines where an analyzer must fire with
//
//	// want `regexp`
//
// comments (multiple backquoted regexps for multiple diagnostics), and
// CheckDir verifies the analyzer produces exactly the expected set.

var wantRe = regexp.MustCompile("//\\s*want((?:\\s+`[^`]*`)+)")
var wantArgRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// CheckDir loads the package rooted at dir (an analysistest golden
// package), runs the analyzer, and returns a list of mismatches between
// produced diagnostics and // want expectations. moduleDir anchors
// import resolution.
func CheckDir(moduleDir, dir string, a *Analyzer) ([]string, error) {
	pkg, err := LoadDir(moduleDir, dir)
	if err != nil {
		return nil, err
	}
	var expected []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					return nil, fmt.Errorf("lint: bad want pattern %q in %s:%d: %v",
						arg[1], name, i+1, err)
				}
				expected = append(expected, &expectation{file: name, line: i + 1, pattern: re})
			}
		}
	}

	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, d := range diags {
		found := false
		for _, e := range expected {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line &&
				e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, e := range expected {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q",
				e.file, e.line, e.pattern))
		}
	}
	return problems, nil
}
