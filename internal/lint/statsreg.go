package lint

import (
	"go/ast"
	"go/types"
)

// StatsReg enforces the no-silent-metrics rule, modeled on how Sniper's
// NUCA cache registers every statistic centrally: a struct that exposes a
// Snapshot method is declaring "these are my metrics", so every
// counter-shaped field (int64 or float64, the repository's counter and
// energy types) must be emitted — i.e. referenced — inside that Snapshot
// method. Adding a counter without wiring it into Snapshot is exactly the
// silently-dropped-metric bug this analyzer exists to catch.
//
// Fields of other types (configs, sub-structs, slices, maps) are exempt;
// a deliberately internal scratch value can be excluded with a
// //nurapidlint:ignore statsreg comment on the Snapshot method's
// declaration line... but prefer emitting it.
var StatsReg = &Analyzer{
	Name: "statsreg",
	Doc: "every int64/float64 field of a struct with a Snapshot method " +
		"must be referenced in that Snapshot method (no silent metrics)",
	Run: runStatsReg,
}

func runStatsReg(pass *Pass) error {
	// Find Snapshot methods declared in this package, keyed by their
	// receiver's named type.
	snapshots := make(map[*types.Named]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Snapshot" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				snapshots[named] = fn
			}
		}
	}

	for named, fn := range snapshots {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		emitted := fieldsReferenced(pass, fn)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !isCounterKind(f.Type()) {
				continue
			}
			if !emitted[f] {
				pass.Reportf(fn.Pos(),
					"%s.Snapshot does not emit counter field %q; every metric must be reported",
					named.Obj().Name(), f.Name())
			}
		}
	}
	return nil
}

// isCounterKind reports whether t is the repository's counter shape: an
// int64 or float64, possibly behind a named type.
func isCounterKind(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Kind() == types.Int64 || basic.Kind() == types.Float64
}

// fieldsReferenced collects every struct field selected anywhere inside
// the function body.
func fieldsReferenced(pass *Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}
