package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

// StatsReg enforces the no-silent-metrics rule, modeled on how Sniper's
// NUCA cache registers every statistic centrally: a struct that exposes a
// Snapshot method is declaring "these are my metrics", so every
// counter-shaped field (int64 or float64, the repository's counter and
// energy types) must be emitted — i.e. referenced — inside that Snapshot
// method. Adding a counter without wiring it into Snapshot is exactly the
// silently-dropped-metric bug this analyzer exists to catch.
//
// Fields of other types (configs, sub-structs, slices, maps) are exempt;
// a deliberately internal scratch value can be excluded with a
// //nurapidlint:ignore statsreg comment on the Snapshot method's
// declaration line... but prefer emitting it.
//
// The analyzer also enforces the metric-name convention at registration
// sites: a string literal passed as the name to NewHistogram,
// NewSampler, or NewTimeSeries must be lower_snake_case
// ([a-z][a-z0-9_]*), so snapshot keys derived from it (name_le_7,
// name_dgroup_0, name_wf_queue_wait_cycles) stay uniform and
// machine-parseable. Names built at runtime are exempt — the analyzer
// only sees literals.
var StatsReg = &Analyzer{
	Name: "statsreg",
	Doc: "every int64/float64 field of a struct with a Snapshot method " +
		"must be referenced in that Snapshot method (no silent metrics); " +
		"literal metric names registered via NewHistogram/NewSampler/" +
		"NewTimeSeries must be lower_snake_case",
	Run: runStatsReg,
}

// metricNameRe is the registration naming convention: snapshot key
// prefixes are lower_snake_case.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricCtors are the constructors whose first argument names a metric.
var metricCtors = map[string]bool{
	"NewHistogram":  true,
	"NewSampler":    true,
	"NewTimeSeries": true,
}

func runStatsReg(pass *Pass) error {
	// Find Snapshot methods declared in this package, keyed by their
	// receiver's named type.
	snapshots := make(map[*types.Named]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Snapshot" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				snapshots[named] = fn
			}
		}
	}

	for named, fn := range snapshots {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		emitted := fieldsReferenced(pass, fn)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !isCounterKind(f.Type()) {
				continue
			}
			if !emitted[f] {
				pass.Reportf(fn.Pos(),
					"%s.Snapshot does not emit counter field %q; every metric must be reported",
					named.Obj().Name(), f.Name())
			}
		}
	}

	checkMetricNames(pass)
	return nil
}

// checkMetricNames flags registration calls whose literal metric name
// breaks the lower_snake_case convention.
func checkMetricNames(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			ctor := calleeName(call)
			if !metricCtors[ctor] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // runtime-built name: not statically checkable
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || metricNameRe.MatchString(name) {
				return true
			}
			pass.Reportf(lit.Pos(),
				"metric name %q passed to %s is not lower_snake_case (want %s)",
				name, ctor, metricNameRe)
			return true
		})
	}
}

// calleeName returns the called function's bare name for plain and
// package-qualified calls ("" for anything fancier).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isCounterKind reports whether t is the repository's counter shape: an
// int64 or float64, possibly behind a named type.
func isCounterKind(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Kind() == types.Int64 || basic.Kind() == types.Float64
}

// fieldsReferenced collects every struct field selected anywhere inside
// the function body.
func fieldsReferenced(pass *Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}
