// Package determinismtest seeds violations for the determinism analyzer.
package determinismtest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

var table = map[string]float64{"alpha": 1, "beta": 2}

func wallClock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(8) // want `rand\.Intn uses the process-global generator`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle uses the process-global generator`
}

func aliasedGlobal() func(int) int {
	return rand.Intn // want `rand\.Intn uses the process-global generator`
}

func storedGlobal() {
	perm := rand.Perm // want `rand\.Perm uses the process-global generator`
	_ = perm(4)
}

func seededRand() *rand.Rand {
	return rand.New(rand.NewSource(1)) // ok: explicitly seeded instance
}

func typeRefOnly(r *rand.Rand) int { // ok: rand.Rand is a type, not global state
	return r.Intn(4)
}

func emitUnsorted() {
	for k, v := range table { // want `map iteration order is random`
		fmt.Printf("%s %f\n", k, v)
	}
}

func emitNestedWriter(rows map[string]int) string {
	var b []byte
	sink := &builderLike{}
	for k := range rows { // want `map iteration order is random`
		sink.WriteString(k)
	}
	return string(b)
}

func emitSorted() {
	keys := make([]string, 0, len(table))
	for k := range table { // ok: collect, then sort, then emit
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s %f\n", k, table[k])
	}
}

func suppressed() int64 {
	//nurapidlint:ignore determinism debug timestamp, never reaches results
	return time.Now().UnixNano()
}

type builderLike struct{}

func (b *builderLike) WriteString(s string) {}
