// b.go seeds the dot-import hole: a dot-imported math/rand exposes the
// global-generator functions as bare idents, with no selector for the
// package-qualified check to see — called or taken as values, they
// still draw from hidden global state.
package determinismtest

import . "math/rand"

func dotCalled() int {
	return Intn(8) // want `rand\.Intn uses the process-global generator`
}

func dotAliased() func(int) int {
	f := Intn // want `rand\.Intn uses the process-global generator`
	return f
}

func dotSeeded() *Rand {
	return New(NewSource(7)) // ok: seeded constructors remain allowed
}
