// Package directivestest seeds findings for the directives meta-check:
// ignore comments naming unknown analyzers and ignore comments that
// suppress nothing are themselves diagnostics, so stale suppressions
// cannot silently pile up.
package directivestest

import "time"

func suppressed() int64 {
	//nurapidlint:ignore determinism debug timestamp, never reaches results
	return time.Now().UnixNano()
}

func typoed() int64 {
	//nurapidlint:ignore determinsm misspelled analyzer name // want `ignore directive names unknown analyzer "determinsm"`
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func pointless() int {
	//nurapidlint:ignore determinism nothing on the next line can fire // want `ignore directive suppressed no diagnostic`
	return 4
}
