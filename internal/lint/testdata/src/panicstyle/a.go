// Package panicpkg seeds violations for the panicstyle analyzer.
package panicpkg

import (
	"errors"
	"fmt"
)

func invariantGood(n int) {
	if n < 0 {
		panic("panicpkg: negative n") // ok: prefixed invariant panic
	}
}

func invariantSprintf(n int) {
	if n < 0 {
		panic(fmt.Sprintf("panicpkg: bad n %d", n)) // ok: prefixed format literal
	}
}

func invariantConcat(msg string) {
	panic("panicpkg: " + msg) // ok: prefixed concatenation
}

func invariantBad(n int) {
	if n > 8 {
		panic("n too large") // want `panic message must start with "panicpkg: "`
	}
}

func invariantSprintfBad(n int) {
	panic(fmt.Sprintf("bad n %d", n)) // want `panic message must start with "panicpkg: "`
}

func New(n int) (int, error) {
	if n < 0 {
		panic("panicpkg: negative") // want `New returns an error; use the error path`
	}
	return n, nil
}

func MustNew(n int) int {
	v, err := New(n)
	if err != nil {
		panic(err) // ok: Must* wrappers convert errors to panics by design
	}
	return v
}

func helper() error {
	do := func() {
		panic("panicpkg: invariant inside literal") // ok: the literal has no error result
	}
	do()
	return errors.New("x")
}
