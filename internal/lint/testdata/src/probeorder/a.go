// Package probeordertest seeds violations for the probeorder analyzer:
// the pinned per-access emission order [Enqueue → Issue →] Access →
// outcome → Evict → links → Place [→ Inval...], checked on every
// control-flow path, including through same-package helper calls and
// the synthetic summary for dynamic memsys.LowerLevel.Access dispatch.
package probeordertest

import (
	"nurapid/internal/memsys"
	"nurapid/internal/obs"
)

type cache struct {
	probe obs.Probe
}

// goodMiss emits the canonical miss sequence.
func (c *cache) goodMiss(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Miss(now, addr))
	c.probe.Emit(obs.Evict(now, 1, true))
	c.probe.Emit(obs.DemoteLink(now, 0, 1, 1))
	c.probe.Emit(obs.Place(now, 1, 1))
}

// goodMultiLevel uses the per-level reset: a Place completing one
// level's fill may be followed by the next level's outcome
// (uca.Hierarchy's shape).
func (c *cache) goodMultiLevel(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Hit(now, 0, 4))
	c.probe.Emit(obs.Place(now, 0, 0))
	c.probe.Emit(obs.Hit(now, 1, 12)) // ok: Place closes a level, next level's outcome follows
}

// guarded is the production idiom: emissions behind nil-probe checks.
func (c *cache) guarded(now int64, addr uint64) {
	if c.probe != nil {
		c.probe.Emit(obs.Access(now, addr, false, 0))
	}
	if c.probe != nil {
		c.probe.Emit(obs.Miss(now, addr))
	}
}

// evictAfterPlace reorders the fill.
func (c *cache) evictAfterPlace(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, true, 0))
	c.probe.Emit(obs.Miss(now, addr))
	c.probe.Emit(obs.Place(now, 2, 0))
	c.probe.Emit(obs.Evict(now, 2, false)) // want `obs\.Evict emitted after obs\.Place violates the pinned order`
}

// accessNotFirst emits the outcome before the access.
func (c *cache) accessNotFirst(now int64, addr uint64) {
	c.probe.Emit(obs.Hit(now, 0, 4))
	c.probe.Emit(obs.Access(now, addr, false, 0)) // want `obs\.Access emitted after obs\.Hit: Access must be the first emission of an access`
}

// branchOutcome violates on only one path: the else branch reports two
// outcomes for one access.
func (c *cache) branchOutcome(now int64, addr uint64, hit bool) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	if hit {
		c.probe.Emit(obs.Hit(now, 0, 4))
	} else {
		c.probe.Emit(obs.Miss(now, addr))
		c.probe.Emit(obs.Hit(now, 0, 4)) // want `obs\.Hit emitted after obs\.Miss violates the pinned order`
	}
}

// fill emits a fill tail; its summary (first emission: Evict) flows to
// call sites.
func (c *cache) fill(now int64) {
	c.probe.Emit(obs.Evict(now, 0, false))
	c.probe.Emit(obs.Place(now, 0, 1))
}

// placeThenFill calls fill after already emitting Place: the violation
// crosses the call boundary.
func (c *cache) placeThenFill(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Miss(now, addr))
	c.probe.Emit(obs.Place(now, 1, 0))
	c.fill(now) // want `call to fill can emit obs\.Evict after obs\.Place, violating the pinned order`
}

// suppressed shows per-line suppression for a deliberate replay.
func (c *cache) suppressed(now int64, addr uint64) {
	c.probe.Emit(obs.Place(now, 0, 0))
	//nurapidlint:ignore probeorder deliberate trace-tail replay in a test fixture
	c.probe.Emit(obs.Access(now, addr, false, 0))
}

// queue mirrors the shared bank-queue idiom: the grant prologue
// precedes a dynamic dispatch into the wrapped organization, which the
// analyzer models with a synthetic whole-window summary (first
// emission Access, last a completed-window kind).
type queue struct {
	probe obs.Probe
	l2    memsys.LowerLevel
}

// goodQueued is the canonical queued window: Enqueue → Issue →
// (organization window) → Inval tail.
func (q *queue) goodQueued(req memsys.Req) {
	if q.probe != nil {
		q.probe.Emit(obs.Enqueue(req.Now, req.Addr, 3, req.Core, req.Write, 1))
	}
	if q.probe != nil {
		q.probe.Emit(obs.Issue(req.Now+4, 3, req.Core, 4))
	}
	r := q.l2.Access(req)
	if q.probe != nil {
		q.probe.Emit(obs.Inval(r.DoneAt, req.Addr, 1))
	}
}

// goodInlineGrant: Issue is the one legal direct predecessor of
// Access — an inline queue grants, then accesses.
func (c *cache) goodInlineGrant(now int64, addr uint64) {
	c.probe.Emit(obs.Enqueue(now, addr, 0, 0, false, 0))
	c.probe.Emit(obs.Issue(now, 0, 0, 0))
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Hit(now, 0, 4))
}

// enqueueAfterAccess opens a queue window inside an open access window.
func (c *cache) enqueueAfterAccess(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Enqueue(now, addr, 0, 0, false, 0)) // want `obs\.Enqueue emitted after obs\.Access violates the pinned order`
}

// issueAfterAccess grants mid-window: Issue may only follow Enqueue.
func (c *cache) issueAfterAccess(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Issue(now, 0, 0, 0)) // want `obs\.Issue emitted after obs\.Access violates the pinned order`
}

// grantSkipped jumps from Enqueue straight to Access.
func (c *cache) grantSkipped(now int64, addr uint64) {
	c.probe.Emit(obs.Enqueue(now, addr, 0, 0, false, 0))
	c.probe.Emit(obs.Access(now, addr, false, 0)) // want `obs\.Access emitted after obs\.Enqueue: Access must be the first emission of an access`
}

// invalBeforeOutcome drops an L1 copy before the access resolved.
func (c *cache) invalBeforeOutcome(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Inval(now, addr, 1)) // want `obs\.Inval emitted after obs\.Access violates the pinned order`
}

// emitAfterInval reopens a window Inval already closed.
func (c *cache) emitAfterInval(now int64, addr uint64) {
	c.probe.Emit(obs.Inval(now, addr, 1))
	c.probe.Emit(obs.Place(now, 0, 0)) // want `obs\.Place emitted after obs\.Inval violates the pinned order`
}

// doubleWindow dispatches into the organization with a window already
// open: the violation crosses the synthetic-summary call boundary.
func (q *queue) doubleWindow(req memsys.Req) {
	q.probe.Emit(obs.Access(req.Now, req.Addr, req.Write, 0))
	q.l2.Access(req) // want `call to Access can emit obs\.Access after obs\.Access, violating the pinned order`
}
