// Package probeordertest seeds violations for the probeorder analyzer:
// the pinned per-access emission order Access → outcome → Evict →
// links → Place, checked on every control-flow path, including through
// same-package helper calls.
package probeordertest

import "nurapid/internal/obs"

type cache struct {
	probe obs.Probe
}

// goodMiss emits the canonical miss sequence.
func (c *cache) goodMiss(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Miss(now, addr))
	c.probe.Emit(obs.Evict(now, 1, true))
	c.probe.Emit(obs.DemoteLink(now, 0, 1, 1))
	c.probe.Emit(obs.Place(now, 1, 1))
}

// goodMultiLevel uses the per-level reset: a Place completing one
// level's fill may be followed by the next level's outcome
// (uca.Hierarchy's shape).
func (c *cache) goodMultiLevel(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Hit(now, 0, 4))
	c.probe.Emit(obs.Place(now, 0, 0))
	c.probe.Emit(obs.Hit(now, 1, 12)) // ok: Place closes a level, next level's outcome follows
}

// guarded is the production idiom: emissions behind nil-probe checks.
func (c *cache) guarded(now int64, addr uint64) {
	if c.probe != nil {
		c.probe.Emit(obs.Access(now, addr, false, 0))
	}
	if c.probe != nil {
		c.probe.Emit(obs.Miss(now, addr))
	}
}

// evictAfterPlace reorders the fill.
func (c *cache) evictAfterPlace(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, true, 0))
	c.probe.Emit(obs.Miss(now, addr))
	c.probe.Emit(obs.Place(now, 2, 0))
	c.probe.Emit(obs.Evict(now, 2, false)) // want `obs\.Evict emitted after obs\.Place violates the pinned order`
}

// accessNotFirst emits the outcome before the access.
func (c *cache) accessNotFirst(now int64, addr uint64) {
	c.probe.Emit(obs.Hit(now, 0, 4))
	c.probe.Emit(obs.Access(now, addr, false, 0)) // want `obs\.Access emitted after obs\.Hit: Access must be the first emission of an access`
}

// branchOutcome violates on only one path: the else branch reports two
// outcomes for one access.
func (c *cache) branchOutcome(now int64, addr uint64, hit bool) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	if hit {
		c.probe.Emit(obs.Hit(now, 0, 4))
	} else {
		c.probe.Emit(obs.Miss(now, addr))
		c.probe.Emit(obs.Hit(now, 0, 4)) // want `obs\.Hit emitted after obs\.Miss violates the pinned order`
	}
}

// fill emits a fill tail; its summary (first emission: Evict) flows to
// call sites.
func (c *cache) fill(now int64) {
	c.probe.Emit(obs.Evict(now, 0, false))
	c.probe.Emit(obs.Place(now, 0, 1))
}

// placeThenFill calls fill after already emitting Place: the violation
// crosses the call boundary.
func (c *cache) placeThenFill(now int64, addr uint64) {
	c.probe.Emit(obs.Access(now, addr, false, 0))
	c.probe.Emit(obs.Miss(now, addr))
	c.probe.Emit(obs.Place(now, 1, 0))
	c.fill(now) // want `call to fill can emit obs\.Evict after obs\.Place, violating the pinned order`
}

// suppressed shows per-line suppression for a deliberate replay.
func (c *cache) suppressed(now int64, addr uint64) {
	c.probe.Emit(obs.Place(now, 0, 0))
	//nurapidlint:ignore probeorder deliberate trace-tail replay in a test fixture
	c.probe.Emit(obs.Access(now, addr, false, 0))
}
