// Package hotpathtest seeds violations for the hotpath analyzer: every
// construct the zero-allocation contract forbids, the annotation
// frontier rules, and the sanctioned escape hatches (panic arguments,
// struct-field scratch buffers, //nurapid:coldpath callees).
package hotpathtest

import "fmt"

// Probe mirrors obs.Probe: Emit is a blessed hot frontier, Report is
// not annotated.
type Probe interface {
	//nurapid:hotpath
	Emit(int)

	Report(int)
}

type pair struct{ x, y int }

// Cache is the receiver under test.
type Cache struct {
	name    string
	data    []int
	scratch []int
	index   map[uint64]int
	probe   Probe
	stats   func(int)
	ch      chan int
}

// Access is a hot root exercising every forbidden construct.
//
//nurapid:hotpath
func (c *Cache) Access(addr uint64) int {
	bump := func() {} // want `closure literal allocates on the hot path`
	bump()            // want `dynamic call through a function value on the hot path`
	c.stats(1)        // want `dynamic call through a function value on the hot path`

	_ = map[int]int{1: 1} // want `map literal allocates on the hot path`
	_ = []int{1, 2}       // want `slice literal allocates on the hot path`
	_ = &pair{1, 2}       // want `address of composite literal allocates on the hot path`

	hit := c.index[addr] // want `map access on the hot path`
	for range c.index {  // want `map iteration on the hot path`
		hit++
	}
	delete(c.index, addr) // want `map delete on the hot path`

	tag := c.name + "!" // want `string concatenation allocates on the hot path`
	tag += "?"          // want `string concatenation allocates on the hot path`
	raw := []byte(tag)  // want `string-to-slice conversion allocates on the hot path`
	_ = string(raw)     // want `\[\]byte-to-string conversion allocates on the hot path`

	_ = make([]int, 4) // want `make allocates on the hot path`
	_ = new(pair)      // want `new allocates on the hot path`

	local := c.data
	local = append(local, 1) // want `append may grow a heap slice on the hot path`
	_ = local
	c.scratch = append(c.scratch[:0], hit) // ok: owned struct-field scratch buffer

	go c.flush()    // want `goroutine launch on the hot path`
	defer c.flush() // want `defer on the hot path`
	c.ch <- hit     // want `channel send on the hot path`

	_ = fmt.Sprint("trace") // want `fmt\.Sprint allocates on the hot path`
	if addr == 0 {
		panic(fmt.Sprintf("hotpathtest: zero address %d", addr)) // ok: panic arguments are exempt
	}

	c.probe.Emit(hit)   // ok: annotated interface method
	c.probe.Report(hit) // want `call through interface method hotpath\.Probe\.Report whose declaration is not annotated`

	sink(addr)    // want `passing uint64 as interface interface\{\} boxes the value on the hot path`
	_ = sum(1, 2) // want `variadic call materializes an argument slice on the hot path`

	helper(c)
	_ = audit(c) // ok: //nurapid:coldpath callee is never traversed
	ignored(c)
	return hit
}

// flush is only reachable through go/defer statements above, which are
// reported and pruned, so its body is never scanned.
func (c *Cache) flush() {}

// sink is a hot helper with an interface parameter, for the boxing
// check at its call sites.
//
//nurapid:hotpath
func sink(v interface{}) { _ = v }

// sum is a hot variadic helper.
//
//nurapid:hotpath
func sum(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

// helper is unannotated but same-package: hot by contagion from Access.
func helper(c *Cache) {
	_ = fmt.Sprint(c.name) // want `function hotpath\.helper: fmt\.Sprint allocates on the hot path`
}

// audit formats freely: deliberately off the fast path.
//
//nurapid:coldpath
func audit(c *Cache) string {
	return fmt.Sprintf("%v", c.index)
}

// ignored demonstrates per-line suppression inside hot code.
func ignored(c *Cache) {
	//nurapidlint:ignore hotpath scratch reallocation is init-only here
	c.scratch = make([]int, 0, 8)
}

// offPath is unreachable from any hot root: nothing below is reported.
func offPath() []int {
	out := make([]int, 0, 4)
	out = append(out, len(out))
	return out
}
