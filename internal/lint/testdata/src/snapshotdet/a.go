// Package snapshotdettest seeds violations for the snapshotdet
// analyzer: Snapshot/Counters/Names implementations must not leak map
// iteration order into their results.
package snapshotdettest

import "sort"

type kv struct {
	key string
	val int64
}

type collector struct {
	counts map[string]int64
}

// Snapshot leaks map order into its result.
func (c *collector) Snapshot() []kv {
	out := make([]kv, 0, len(c.counts))
	for k, v := range c.counts { // want `Snapshot ranges over a map into a result without sorting it`
		out = append(out, kv{k, v})
	}
	return out
}

// Counters sorts after filling: the sanctioned pattern.
func (c *collector) Counters() []kv {
	out := make([]kv, 0, len(c.counts))
	for k, v := range c.counts { // ok: sorted before returning
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// SortKeys is a repo-local sorting helper; its name marks it for the
// analyzer.
func SortKeys(ks []string) { sort.Strings(ks) }

// Names fills its result, then sorts through the local helper.
func (c *collector) Names() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts { // ok: sorted via SortKeys before returning
		out = append(out, k)
	}
	SortKeys(out)
	return out
}

type table struct {
	cells map[string]int64
}

// Counters sorts before the loop, which cannot launder the iteration
// order of what the loop appends afterwards.
func (t *table) Counters() []string {
	keys := make([]string, 0, len(t.cells))
	sort.Strings(keys)
	for k := range t.cells { // want `Counters ranges over a map into a result without sorting it`
		keys = append(keys, k)
	}
	return keys
}

type gauge struct {
	levels map[string]int64
	total  int64
}

// refresh is not a snapshot method; its map iteration is the general
// determinism analyzer's business, not snapshotdet's.
func (g *gauge) refresh() {
	for range g.levels {
		g.total++
	}
}

type insertion struct {
	order []string
	set   map[string]bool
}

// Counters here is justified out-of-band; the directive documents why
// the analyzer is silenced.
func (i *insertion) Counters() []string {
	out := make([]string, 0, len(i.set))
	//nurapidlint:ignore snapshotdet keys mirror insertion order maintained in i.order
	for k := range i.set {
		out = append(out, k)
	}
	return out
}
