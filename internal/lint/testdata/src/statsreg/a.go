// Package statsregtest seeds violations for the statsreg analyzer.
package statsregtest

// KV mirrors the repository's stats.KV metric sample.
type KV struct {
	Name  string
	Value float64
}

type goodStats struct {
	hits   int64
	misses int64
	energy float64
	label  string // non-counter: exempt
}

func (s *goodStats) Snapshot() []KV { // ok: every counter field emitted
	return []KV{
		{Name: "hits", Value: float64(s.hits)},
		{Name: "misses", Value: float64(s.misses)},
		{Name: "energy", Value: s.energy},
	}
}

type badStats struct {
	hits    int64
	dropped int64
	waste   float64
}

func (s *badStats) Snapshot() []KV { // want `badStats.Snapshot does not emit counter field "dropped"` `badStats.Snapshot does not emit counter field "waste"`
	return []KV{{Name: "hits", Value: float64(s.hits)}}
}

type cycleCount int64

type namedCounter struct {
	spins cycleCount
}

func (n namedCounter) Snapshot() []KV { // want `namedCounter.Snapshot does not emit counter field "spins"`
	return nil
}

type noContract struct {
	anything int64 // ok: no Snapshot method, no registration contract
}

// Metric-registration stubs mirroring stats.NewHistogram and
// stats.NewSampler: literal names must be lower_snake_case.

func NewHistogram(name string, numBuckets int, width int64) *goodStats { return nil }

func NewSampler(name string, epochAccesses int64) *goodStats { return nil }

func NewTimeSeries(name string, epochCycles int64) *goodStats { return nil }

var (
	_ = NewHistogram("chain_depth", 9, 1)   // ok
	_ = NewHistogram("Chain-Depth", 9, 1)   // want `metric name "Chain-Depth" passed to NewHistogram is not lower_snake_case`
	_ = NewHistogram("7_lives", 9, 1)       // want `metric name "7_lives" passed to NewHistogram is not lower_snake_case`
	_ = NewSampler("occupancy_v2", 4)       // ok
	_ = NewSampler("occupancy timeline", 4) // want `metric name "occupancy timeline" passed to NewSampler is not lower_snake_case`
	_ = NewTimeSeries("ts", 0)              // ok
	_ = NewTimeSeries("TS-latency", 0)      // want `metric name "TS-latency" passed to NewTimeSeries is not lower_snake_case`
)

// ok: runtime-built names cannot be checked statically.
func dynamicName(prefix string) *goodStats { return NewSampler(prefix+"_occ", 1) }
