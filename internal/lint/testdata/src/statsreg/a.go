// Package statsregtest seeds violations for the statsreg analyzer.
package statsregtest

// KV mirrors the repository's stats.KV metric sample.
type KV struct {
	Name  string
	Value float64
}

type goodStats struct {
	hits   int64
	misses int64
	energy float64
	label  string // non-counter: exempt
}

func (s *goodStats) Snapshot() []KV { // ok: every counter field emitted
	return []KV{
		{Name: "hits", Value: float64(s.hits)},
		{Name: "misses", Value: float64(s.misses)},
		{Name: "energy", Value: s.energy},
	}
}

type badStats struct {
	hits    int64
	dropped int64
	waste   float64
}

func (s *badStats) Snapshot() []KV { // want `badStats.Snapshot does not emit counter field "dropped"` `badStats.Snapshot does not emit counter field "waste"`
	return []KV{{Name: "hits", Value: float64(s.hits)}}
}

type cycleCount int64

type namedCounter struct {
	spins cycleCount
}

func (n namedCounter) Snapshot() []KV { // want `namedCounter.Snapshot does not emit counter field "spins"`
	return nil
}

type noContract struct {
	anything int64 // ok: no Snapshot method, no registration contract
}
