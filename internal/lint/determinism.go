package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the Runner's bit-reproducibility contract: for a
// given seed, two simulations must produce byte-identical tables and
// figures (that is what makes D-NUCA comparisons and EXPERIMENTS.md
// anchors meaningful). Three constructs break that contract:
//
//  1. wall-clock reads (time.Now and friends) leaking into results;
//  2. the process-global math/rand generator, whose sequence depends on
//     whatever else consumed it (seeded mathx.RNG / rand.New instances
//     are fine);
//  3. iterating a map while directly emitting table, figure, or printed
//     output, since Go randomizes map iteration order per run.
//
// Collecting map keys into a slice and sorting before output is the
// sanctioned pattern and is not flagged.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, the global math/rand generator, and " +
		"map-range loops that feed table/figure output",
	Run: runDeterminism,
}

// clockFuncs are time-package functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// seededRandFuncs are the math/rand constructors that yield explicitly
// seeded, deterministic generators; everything else package-level draws
// from (or perturbs) hidden global state.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// emittingCalls are function/method names that write experiment-visible
// output when they appear inside a map-range body.
var emittingCalls = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"AddRow": true, "AddRowStrings": true, "AddHit": true,
	"WriteText": true, "WriteCSV": true, "Render": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		// Idents consumed as the Sel of a selector are handled (with
		// package qualification) by checkForbiddenRef; the bare-ident
		// path below is for dot-imported references, which have no
		// selector at all.
		handled := make(map[*ast.Ident]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				handled[node.Sel] = true
				checkForbiddenRef(pass, node)
			case *ast.Ident:
				if !handled[node] {
					checkForbiddenIdent(pass, node)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, node)
			}
			return true
		})
	}
	return nil
}

// pkgOf resolves a selector's qualifier to a package, or nil when the
// selector is not a package-qualified reference.
func pkgOf(pass *Pass, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

func checkForbiddenRef(pass *Pass, sel *ast.SelectorExpr) {
	pkg := pkgOf(pass, sel)
	if pkg == nil {
		return
	}
	name := sel.Sel.Name
	switch pkg.Path() {
	case "time":
		if clockFuncs[name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulations must be reproducible per seed", name)
		}
	case "math/rand", "math/rand/v2":
		if seededRandFuncs[name] {
			return
		}
		// Referencing a type (rand.Source, rand.Rand) is fine; only
		// package-level functions and variables touch global state.
		if _, isType := pass.Info.Uses[sel.Sel].(*types.TypeName); isType {
			return
		}
		pass.Reportf(sel.Pos(),
			"rand.%s uses the process-global generator; use a seeded instance (mathx.RNG or rand.New)", name)
	}
}

// checkForbiddenIdent is checkForbiddenRef for unqualified references:
// a dot import (`import . "math/rand"`) makes the forbidden functions
// reachable as bare idents, with no SelectorExpr for the selector path
// to see. The same rules apply whether the function is called or taken
// as a value — a value use (passed, aliased, stored) draws from the
// global generator at every later call site, which is exactly the
// satellite-reported hole.
func checkForbiddenIdent(pass *Pass, id *ast.Ident) {
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Methods ((*Rand).Intn on a seeded instance) and types are fine;
	// only package-level functions touch global state.
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	name := obj.Name()
	switch obj.Pkg().Path() {
	case "time":
		if clockFuncs[name] {
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock; simulations must be reproducible per seed", name)
		}
	case "math/rand", "math/rand/v2":
		if seededRandFuncs[name] {
			return
		}
		pass.Reportf(id.Pos(),
			"rand.%s uses the process-global generator; use a seeded instance (mathx.RNG or rand.New)", name)
	}
}

// checkMapRange reports ranging over a map when the loop body emits
// output directly: map order is randomized, so the emitted rows would
// differ between runs.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	var emitter string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emitter != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if emittingCalls[fn.Sel.Name] {
				emitter = fn.Sel.Name
			}
		case *ast.Ident:
			if emittingCalls[fn.Name] {
				emitter = fn.Name
			}
		}
		return true
	})
	if emitter != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order is random; sort keys before calling %s (output must be reproducible)", emitter)
	}
}
