package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotDet extends the determinism contract to the reporting
// surface: Snapshot(), Counters(), and Names() implementations feed
// experiment tables and fingerprints, so a map-range inside one that
// populates a result without a subsequent sort leaks Go's randomized
// iteration order straight into rendered output. The sanctioned
// pattern — range the map into a slice, sort it, then return — is
// recognized: a map-range is clean when some sink it fills is later
// passed to a sort call (sort.*, slices.Sort*, or any function whose
// name contains "Sort").
//
// The general map-range check in the determinism analyzer only fires
// when the loop body itself emits output; snapshot methods instead
// return data the caller emits, which is why they get their own
// analyzer.
var SnapshotDet = &Analyzer{
	Name: "snapshotdet",
	Doc: "forbid map iteration feeding Snapshot/Counters/Names results " +
		"without a sort before return",
	Run: runSnapshotDet,
}

// snapshotFuncNames are the reporting-surface method names under the
// stricter rule.
var snapshotFuncNames = map[string]bool{
	"Snapshot": true, "Counters": true, "Names": true,
}

func runSnapshotDet(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !snapshotFuncNames[fd.Name.Name] {
				continue
			}
			checkSnapshotFunc(pass, fd)
		}
	}
	return nil
}

func checkSnapshotFunc(pass *Pass, fd *ast.FuncDecl) {
	// Collect the body's top-to-bottom statements flattened enough to
	// order "range" vs "sort": we track, per map-range, the sink
	// objects its body assigns or appends into, then look for a later
	// sort call referencing one of them.
	type mapRange struct {
		rng   *ast.RangeStmt
		sinks map[types.Object]bool
	}
	var ranges []*mapRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		mr := &mapRange{rng: rng, sinks: collectSinks(pass, rng.Body)}
		ranges = append(ranges, mr)
		return true
	})
	for _, mr := range ranges {
		if len(mr.sinks) == 0 {
			// The loop fills nothing: either it only reads (fine) or
			// it emits directly, which the determinism analyzer's
			// map-range check already covers.
			continue
		}
		if sortedAfter(pass, fd.Body, mr.rng, mr.sinks) {
			continue
		}
		pass.Reportf(mr.rng.Pos(),
			"%s ranges over a map into a result without sorting it; map order is random, so snapshots must sort before returning", fd.Name.Name)
	}
}

// collectSinks returns the objects assigned or appended to inside the
// range body — the candidates carrying map-ordered data outward.
func collectSinks(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	sinks := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		base := ast.Unparen(e)
		for {
			switch x := base.(type) {
			case *ast.IndexExpr:
				base = ast.Unparen(x.X)
				continue
			case *ast.SelectorExpr:
				base = ast.Unparen(x.X)
				continue
			case *ast.StarExpr:
				base = ast.Unparen(x.X)
				continue
			}
			break
		}
		if id, ok := base.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				sinks[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				add(lhs)
			}
		case *ast.CallExpr:
			// append(sink, ...) assigned elsewhere is caught by the
			// AssignStmt case; method fills like sink.Add(...) count
			// through the receiver.
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if _, isMethod := pass.Info.Selections[sel]; isMethod {
					add(sel.X)
				}
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether a call that sorts one of the sinks
// appears after rng within body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, sinks map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil && sinks[obj] {
						refs = true
					}
				}
				return !refs
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall matches sort.* and slices.Sort* calls, plus any callee
// whose name contains "Sort" (repo-local sorting helpers).
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pkg := pkgOf(pass, fun); pkg != nil {
			if pkg.Path() == "sort" || pkg.Path() == "slices" {
				return true
			}
		}
		return strings.Contains(fun.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.Contains(fun.Name, "Sort")
	}
	return false
}
