// Cross-package call-graph facility for whole-program analyzers.
//
// Each loaded Package is typechecked independently with its own FileSet
// and importer, so *types.Func identity does not hold across packages:
// internal/nurapid's view of cache.Array.FindTag is a different object
// from internal/cache's own. Functions are therefore keyed by a stable
// string — "pkgpath.Func" or "pkgpath.Recv.Method" — that both sides
// compute identically, and the graph maps keys back to the declaring
// package's AST when (and only when) that package was loaded.
//
// The annotation convention enforced on top of this graph:
//
//	//nurapid:hotpath   — the function (or interface method) is on the
//	                      simulator's per-access hot path: reachable
//	                      code must not allocate, and every call edge
//	                      leaving it must land on another annotated
//	                      function. Placing the marker on an interface
//	                      method declaration blesses dynamic calls
//	                      through that method; implementations are NOT
//	                      traversed (probes are trusted frontiers).
//	//nurapid:coldpath  — the function is deliberately off the hot path
//	                      (audit/oracle code). Hot functions may call it
//	                      only never; the marker exists so entry points
//	                      with hot-path-shaped signatures are explicitly
//	                      classified rather than silently unannotated.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Function marks recognized by the call graph.
const (
	markHot  = "hotpath"
	markCold = "coldpath"
)

// progFunc is one function declaration somewhere in the loaded program.
type progFunc struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
	mark string // "", markHot, or markCold
}

// callGraph indexes every function declared in the loaded packages plus
// the hot/cold marks, including marks on interface method declarations
// (which have no FuncDecl).
type callGraph struct {
	funcs map[string]*progFunc
	marks map[string]string
}

// funcKey builds the stable cross-package key for fn, or "" when fn has
// no package (universe members like error.Error).
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		return fn.Pkg().Path() + "." + recvTypeName(recv.Type()) + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// recvTypeName names a receiver type, stripping pointers.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if iface, ok := t.(*types.Interface); ok {
		_ = iface
		return "interface"
	}
	return t.String()
}

// markOf extracts the //nurapid:hotpath or //nurapid:coldpath marker
// from a doc comment group.
func markOf(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch text {
		case "nurapid:hotpath":
			return markHot
		case "nurapid:coldpath":
			return markCold
		}
	}
	return ""
}

// buildCallGraph indexes every declared function and annotation in pkgs.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{
		funcs: make(map[string]*progFunc),
		marks: make(map[string]string),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					key := funcKey(obj)
					if key == "" {
						continue
					}
					pf := &progFunc{key: key, pkg: pkg, decl: d, mark: markOf(d.Doc)}
					cg.funcs[key] = pf
					if pf.mark != "" {
						cg.marks[key] = pf.mark
					}
				case *ast.GenDecl:
					cg.indexInterfaceMarks(pkg, d)
				}
			}
		}
	}
	return cg
}

// indexInterfaceMarks records //nurapid:hotpath marks on interface
// method declarations, which live on type-spec fields rather than
// FuncDecls.
func (cg *callGraph) indexInterfaceMarks(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		iface, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, field := range iface.Methods.List {
			mark := markOf(field.Doc)
			if mark == "" {
				continue
			}
			for _, name := range field.Names {
				fn, ok := pkg.Info.Defs[name].(*types.Func)
				if !ok {
					continue
				}
				if key := funcKey(fn); key != "" {
					cg.marks[key] = mark
				}
			}
		}
	}
}

// markFor returns the annotation on the function identified by key.
func (cg *callGraph) markFor(key string) string {
	if m, ok := cg.marks[key]; ok {
		return m
	}
	if pf, ok := cg.funcs[key]; ok {
		return pf.mark
	}
	return ""
}

// staticCallee resolves a call expression to its *types.Func when the
// call is static (direct function or method call, including calls
// through interfaces, which resolve to the interface method). Returns
// nil for dynamic calls through function values, builtins, and type
// conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isConversion reports whether call is a type conversion, not a call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin being called ("append",
// "make", ...), or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
