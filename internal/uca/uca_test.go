package uca

import (
	"testing"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
)

func newIdeal(t *testing.T) (*Uniform, *memsys.Memory) {
	t.Helper()
	mem := memsys.NewMemory(128)
	return NewIdeal(cacti.Default(), mem), mem
}

func TestIdealHitLatency(t *testing.T) {
	u, _ := newIdeal(t)
	r := u.Access(memsys.Req{Now: 0, Addr: 0x1000, Write: false})
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	r = u.Access(memsys.Req{Now: r.DoneAt, Addr: 0x1000, Write: false})
	if !r.Hit {
		t.Fatal("second access must hit")
	}
	if got := r.DoneAt - u.port.FreeAt() + 14; got != 14 && r.DoneAt <= 0 {
		t.Fatalf("unexpected hit completion %d", r.DoneAt)
	}
}

func TestIdealMissGoesToMemory(t *testing.T) {
	u, mem := newIdeal(t)
	r := u.Access(memsys.Req{Now: 100, Addr: 0x2000, Write: false})
	// Miss detected after the 8-cycle tag probe, then 194 memory cycles.
	want := int64(100 + 8 + 194)
	if r.DoneAt != want {
		t.Fatalf("miss done at %d, want %d", r.DoneAt, want)
	}
	if mem.Accesses != 1 {
		t.Fatalf("memory accesses = %d", mem.Accesses)
	}
	if r.Group != -1 {
		t.Fatal("miss must report group -1")
	}
}

func TestIdealPortSerializes(t *testing.T) {
	u, _ := newIdeal(t)
	u.Access(memsys.Req{Now: 0, Addr: 0x1000, Write: false})
	u.Access(memsys.Req{Now: 0, Addr: 0x1000, Write: false}) // hit, issued at the same cycle
	r := u.Access(memsys.Req{Now: 0, Addr: 0x1000, Write: false})
	// The pipelined port issues every 4 cycles: the miss holds [0,4),
	// the second access starts at 4, the third at 8 and completes 14
	// cycles later.
	if r.DoneAt != 8+14 {
		t.Fatalf("serialized hit done at %d, want 22", r.DoneAt)
	}
}

func TestIdealDirtyWriteback(t *testing.T) {
	u, mem := newIdeal(t)
	geo := u.Cache().Geometry()
	stride := uint64(geo.NumSets() * geo.BlockBytes)
	u.Access(memsys.Req{Now: 0, Addr: 0, Write: true}) // dirty block in set 0
	for i := 1; i <= geo.Assoc; i++ {
		u.Access(memsys.Req{Now: int64(i) * 1000, Addr: uint64(i) * stride, Write: false})
	}
	if mem.Writes != 1 {
		t.Fatalf("memory writes = %d, want 1 (dirty victim)", mem.Writes)
	}
	if u.Counters().Get("writebacks") != 1 {
		t.Fatal("writeback counter not incremented")
	}
}

func TestIdealDistributionAndEnergy(t *testing.T) {
	u, _ := newIdeal(t)
	u.Access(memsys.Req{Now: 0, Addr: 0x40, Write: false})
	u.Access(memsys.Req{Now: 1000, Addr: 0x40, Write: false})
	d := u.Distribution()
	if d.HitCount(0) != 1 || d.MissCount() != 1 {
		t.Fatalf("distribution hits=%d misses=%d", d.HitCount(0), d.MissCount())
	}
	if u.EnergyNJ() <= 0 {
		t.Fatal("energy must accumulate")
	}
}

func TestNewUniformRejectsBadGeometry(t *testing.T) {
	if _, err := NewUniform(UniformConfig{Geometry: cache.Geometry{}}, memsys.NewMemory(128)); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
}

func newBase(t *testing.T) (*Hierarchy, *memsys.Memory) {
	t.Helper()
	mem := memsys.NewMemory(128)
	return NewHierarchy(cacti.Default(), mem), mem
}

func TestHierarchyL2Hit(t *testing.T) {
	h, _ := newBase(t)
	h.Access(memsys.Req{Now: 0, Addr: 0x4000, Write: false})
	r := h.Access(memsys.Req{Now: 10000, Addr: 0x4000, Write: false})
	if !r.Hit || r.Group != 0 {
		t.Fatalf("expected L2 hit, got %+v", r)
	}
	if r.DoneAt != 10000+11 {
		t.Fatalf("L2 hit done at %d, want %d", r.DoneAt, 10000+11)
	}
}

func TestHierarchyL3Hit(t *testing.T) {
	h, _ := newBase(t)
	h.Access(memsys.Req{Now: 0, Addr: 0x4000, Write: false})
	// Evict 0x4000 from the 1-MB L2 with 8 conflicting blocks; the 8-MB
	// L3 keeps all of them (its sets are 8x larger... same assoc, more
	// sets, so these map to distinct L3 sets or fewer conflicts).
	l2stride := uint64(h.L2().Geometry().NumSets() * 128)
	for i := 1; i <= 8; i++ {
		h.Access(memsys.Req{Now: int64(i) * 1000, Addr: 0x4000 + uint64(i)*l2stride, Write: false})
	}
	r := h.Access(memsys.Req{Now: 100000, Addr: 0x4000, Write: false})
	if !r.Hit || r.Group != 1 {
		t.Fatalf("expected L3 hit, got %+v", r)
	}
	if r.DoneAt < 100000+43 {
		t.Fatalf("L3 hit done at %d, want >= %d", r.DoneAt, 100000+43)
	}
}

func TestHierarchyMissTiming(t *testing.T) {
	h, mem := newBase(t)
	r := h.Access(memsys.Req{Now: 500, Addr: 0x8000, Write: false})
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	// L2 tags (6) + L3 tags (8) + memory (194).
	want := int64(500 + 6 + 8 + 194)
	if r.DoneAt != want {
		t.Fatalf("miss done at %d, want %d", r.DoneAt, want)
	}
	if mem.Accesses != 1 {
		t.Fatalf("memory accesses = %d", mem.Accesses)
	}
}

func TestHierarchyDirtyL2VictimLandsInL3(t *testing.T) {
	h, mem := newBase(t)
	h.Access(memsys.Req{Now: 0, Addr: 0x4000, Write: true}) // dirty in both L2 and L3
	l2stride := uint64(h.L2().Geometry().NumSets() * 128)
	for i := 1; i <= 8; i++ {
		h.Access(memsys.Req{Now: int64(i) * 1000, Addr: 0x4000 + uint64(i)*l2stride, Write: false})
	}
	// The dirty victim must have been absorbed by the L3, not memory.
	if mem.Writes != 0 {
		t.Fatalf("memory writes = %d, want 0", mem.Writes)
	}
	if h.Counters().Get("l2_writebacks") != 1 {
		t.Fatalf("l2_writebacks = %d, want 1", h.Counters().Get("l2_writebacks"))
	}
	// And the L3 copy must now be dirty.
	set := h.L3().Geometry().SetIndex(0x4000)
	way, hit := h.L3().Array().Lookup(0x4000)
	if !hit || !h.L3().Array().Line(set, way).Dirty {
		t.Fatal("L3 copy of the victim must be dirty")
	}
}

func TestHierarchyDistribution(t *testing.T) {
	h, _ := newBase(t)
	h.Access(memsys.Req{Now: 0, Addr: 0x100, Write: false})    // miss
	h.Access(memsys.Req{Now: 1000, Addr: 0x100, Write: false}) // L2 hit
	d := h.Distribution()
	if d.HitCount(0) != 1 || d.MissCount() != 1 {
		t.Fatalf("distribution: %v", d)
	}
	if h.Name() != "base-l2l3" {
		t.Fatal("name wrong")
	}
	if h.EnergyNJ() <= 0 {
		t.Fatal("energy must accumulate")
	}
}

func TestHierarchyEnergyOrdering(t *testing.T) {
	// An L3 hit must cost more energy than an L2 hit.
	m := cacti.Default()
	if m.UniformCacheNJ(8) <= m.UniformCacheNJ(1) {
		t.Fatal("L3 access energy must exceed L2's")
	}
}

var _ memsys.LowerLevel = (*Uniform)(nil)
var _ memsys.LowerLevel = (*Hierarchy)(nil)
