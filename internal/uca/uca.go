// Package uca implements the uniform-access cache organizations: the
// conventional L2/L3 hierarchy the paper uses as its base case, and the
// single-level uniform cache that doubles as the paper's "ideal" bound
// (every hit served at the fastest d-group's latency).
package uca

import (
	"fmt"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

// tagOnlyNJ is the energy of probing just the centralized tag array on a
// sequential tag-data access that misses. The paper's Table 2 bundles
// "tag + access"; the tag-only share of those figures is small.
const tagOnlyNJ = 0.05

// BlockBytes is the block size of the paper's base hierarchy and ideal
// bound (Table 1: 128-B blocks). Callers building the backing memory
// model must match it.
const BlockBytes = 128

// Uniform is one monolithic cache level with a single uniform access
// latency, sequential tag-data access, and allocate-on-miss with
// writeback. It implements memsys.LowerLevel.
type Uniform struct {
	name      string
	c         *cache.Cache
	hitLat    int64 // full sequential tag+data latency
	tagLat    int64 // tag-only latency (miss detection point)
	occupancy int64 // port time per access
	accessNJ  float64
	port      memsys.Port
	mem       *memsys.Memory
	dist      *stats.Distribution
	ctrs      stats.Counters
	hot       uniformHot
	energy    float64
	probe     obs.Probe
}

// uniformHot holds the per-access counters as plain fields; Counters()
// materializes them with the same presence semantics as Inc (a name
// exists iff its count is non-zero).
type uniformHot struct {
	accesses   int64
	misses     int64
	writebacks int64
}

// UniformConfig parameterizes a Uniform cache.
type UniformConfig struct {
	Name      string
	Geometry  cache.Geometry
	HitLat    int64
	TagLat    int64
	Occupancy int64
	AccessNJ  float64
}

// NewUniform builds a uniform cache backed by mem.
func NewUniform(cfg UniformConfig, mem *memsys.Memory) (*Uniform, error) {
	c, err := cache.NewCache(cfg.Geometry, cache.LRU, nil)
	if err != nil {
		return nil, err
	}
	return &Uniform{
		name:      cfg.Name,
		c:         c,
		hitLat:    cfg.HitLat,
		tagLat:    cfg.TagLat,
		occupancy: cfg.Occupancy,
		accessNJ:  cfg.AccessNJ,
		mem:       mem,
		dist:      stats.NewDistribution(cfg.Name),
	}, nil
}

// NewIdeal builds the paper's ideal bound: an 8-MB, 8-way cache in which
// every hit completes at the fastest 4-d-group latency (14 cycles).
func NewIdeal(m *cacti.Model, mem *memsys.Memory) *Uniform {
	geo := cache.Geometry{CapacityBytes: 8 << 20, BlockBytes: BlockBytes, Assoc: 8}
	u, err := NewUniform(UniformConfig{
		Name:      "ideal",
		Geometry:  geo,
		HitLat:    14,
		TagLat:    int64(m.TagCycles),
		Occupancy: 4, // pipelined single port, like NuRAPID's
		AccessNJ:  m.DataAccessNJ(2),
	}, mem)
	if err != nil {
		panic(fmt.Sprintf("uca: ideal configuration invalid: %v", err)) // static, cannot fail
	}
	return u
}

// Name implements memsys.LowerLevel.
func (u *Uniform) Name() string { return u.name }

// SetProbe attaches an observability probe (obs.Probeable). Probes only
// observe; a nil probe restores the zero-overhead fast path. The
// uniform cache is a single latency group, so every hit and placement
// reports group 0.
func (u *Uniform) SetProbe(p obs.Probe) { u.probe = p }

// Access implements memsys.LowerLevel. Probe events follow the
// canonical per-access order (obs package doc): Access, then Hit, or
// Miss followed by Evict (when a valid victim was displaced) and Place.
//
//nurapid:hotpath
func (u *Uniform) Access(req memsys.Req) memsys.AccessResult {
	now, addr, write := req.Now, req.Addr, req.Write
	start := u.port.Acquire(now, u.occupancy)
	u.hot.accesses++
	if u.probe != nil {
		u.probe.Emit(obs.Access(now, addr, write, req.Core))
	}
	out := u.c.Access(addr, write)
	if out.Hit {
		u.dist.AddHit(0)
		u.energy += u.accessNJ
		if u.probe != nil {
			u.probe.Emit(obs.Hit(now, 0, start+u.hitLat-now))
		}
		return memsys.AccessResult{Hit: true, DoneAt: start + u.hitLat, Group: 0}
	}
	u.dist.AddMiss()
	u.hot.misses++
	if u.probe != nil {
		u.probe.Emit(obs.Miss(now, addr))
	}
	if out.Evicted {
		if u.probe != nil {
			u.probe.Emit(obs.Evict(now, 0, out.Victim.Dirty))
		}
		if out.Victim.Dirty {
			u.hot.writebacks++
			u.energy += u.accessNJ // victim read for writeback
			u.mem.Write()
		}
	}
	u.energy += tagOnlyNJ  // miss discovered in the tag array
	u.energy += u.accessNJ // fill write when data returns
	if u.probe != nil {
		u.probe.Emit(obs.Place(now, 0, 0))
	}
	done := u.mem.Read(start + u.tagLat)
	return memsys.AccessResult{Hit: false, DoneAt: done, Group: -1}
}

// Distribution implements memsys.LowerLevel.
func (u *Uniform) Distribution() *stats.Distribution { return u.dist }

// EnergyNJ implements memsys.LowerLevel.
func (u *Uniform) EnergyNJ() float64 { return u.energy }

// Counters implements memsys.LowerLevel. Hot-path counts are
// materialized from plain fields; names appear only when non-zero.
func (u *Uniform) Counters() *stats.Counters {
	if u.hot.accesses != 0 {
		u.ctrs.Set("accesses", u.hot.accesses)
	}
	if u.hot.misses != 0 {
		u.ctrs.Set("misses", u.hot.misses)
	}
	if u.hot.writebacks != 0 {
		u.ctrs.Set("writebacks", u.hot.writebacks)
	}
	return &u.ctrs
}

// AccessMany implements memsys.BatchAccessor.
//
//nurapid:hotpath
func (u *Uniform) AccessMany(now int64, reqs []memsys.Req, out []memsys.AccessResult) int64 {
	for i := range reqs {
		q := reqs[i]
		q.Now = now
		r := u.Access(q)
		if out != nil {
			out[i] = r
		}
		now = r.DoneAt + reqs[i].Gap
	}
	return now
}

// Cache exposes the underlying cache (tests, occupancy checks).
func (u *Uniform) Cache() *cache.Cache { return u.c }

// Hierarchy is the paper's base case (Table 1): a 1-MB 8-way 11-cycle L2
// backed by an 8-MB 8-way 43-cycle L3, both with 128-B blocks, backed by
// main memory. It implements memsys.LowerLevel; the distribution's two
// categories are L2 hits and L3 hits.
type Hierarchy struct {
	l2, l3         *cache.Cache
	l2Lat, l3Lat   int64
	l2Tag, l3Tag   int64
	l2Port, l3Port memsys.Port
	l2NJ, l3NJ     float64
	l3Idx          cache.Index
	mem            *memsys.Memory
	dist           *stats.Distribution
	ctrs           stats.Counters
	hot            hierarchyHot
	energy         float64
	probe          obs.Probe
}

// hierarchyHot holds the per-access counters as plain fields; Counters()
// materializes them with the same presence semantics as Inc (a name
// exists iff its count is non-zero).
type hierarchyHot struct {
	accesses     int64
	l2Misses     int64
	l3Hits       int64
	misses       int64
	l2Writebacks int64
	l3Writebacks int64
}

// NewHierarchy builds the base L2/L3 configuration with energies from the
// cacti model.
func NewHierarchy(m *cacti.Model, mem *memsys.Memory) *Hierarchy {
	l2 := cache.MustNewCache(cache.Geometry{CapacityBytes: 1 << 20, BlockBytes: BlockBytes, Assoc: 8}, cache.LRU, nil)
	l3 := cache.MustNewCache(cache.Geometry{CapacityBytes: 8 << 20, BlockBytes: BlockBytes, Assoc: 8}, cache.LRU, nil)
	return &Hierarchy{
		l2:    l2,
		l3:    l3,
		l3Idx: l3.Array().Index(),
		l2Lat: 11, l3Lat: 43,
		l2Tag: 6, l3Tag: int64(m.TagCycles),
		l2NJ: m.UniformCacheNJ(1),
		l3NJ: m.UniformCacheNJ(8),
		mem:  mem,
		dist: stats.NewDistribution("L2", "L3"),
	}
}

// Name implements memsys.LowerLevel.
func (h *Hierarchy) Name() string { return "base-l2l3" }

// SetProbe attaches an observability probe (obs.Probeable). Probes only
// observe; a nil probe restores the zero-overhead fast path. The
// hierarchy reports the L2 as group 0 and the L3 as group 1, matching
// its access distribution.
func (h *Hierarchy) SetProbe(p obs.Probe) { h.probe = p }

// Access implements memsys.LowerLevel. Probe events follow the
// canonical per-access order (obs package doc) at each level: the L2
// reports Evict then Place around its allocation (there is no per-level
// miss event; KindMiss means a miss to memory), and the L3 reports Miss,
// Evict, Place on the outermost miss path.
//
//nurapid:hotpath
func (h *Hierarchy) Access(req memsys.Req) memsys.AccessResult {
	now, addr, write := req.Now, req.Addr, req.Write
	start := h.l2Port.Acquire(now, 4)
	h.hot.accesses++
	if h.probe != nil {
		h.probe.Emit(obs.Access(now, addr, write, req.Core))
	}
	o2 := h.l2.Access(addr, write)
	if o2.Hit {
		h.dist.AddHit(0)
		h.energy += h.l2NJ
		if h.probe != nil {
			h.probe.Emit(obs.Hit(now, 0, start+h.l2Lat-now))
		}
		return memsys.AccessResult{Hit: true, DoneAt: start + h.l2Lat, Group: 0}
	}
	h.hot.l2Misses++
	if o2.Evicted {
		if h.probe != nil {
			h.probe.Emit(obs.Evict(now, 0, o2.Victim.Dirty))
		}
		if o2.Victim.Dirty {
			h.writebackToL3(o2.Victim.Addr)
		}
	}
	h.energy += tagOnlyNJ // L2 miss discovered in its tags
	h.energy += h.l2NJ    // eventual L2 fill write
	if h.probe != nil {
		h.probe.Emit(obs.Place(now, 0, 0)) // L2 allocates on miss
	}

	start3 := h.l3Port.Acquire(start+h.l2Tag, 8)
	o3 := h.l3.Access(addr, write)
	if o3.Hit {
		h.dist.AddHit(1)
		h.energy += h.l3NJ
		h.hot.l3Hits++
		if h.probe != nil {
			h.probe.Emit(obs.Hit(now, 1, start3+h.l3Lat-now))
		}
		return memsys.AccessResult{Hit: true, DoneAt: start3 + h.l3Lat, Group: 1}
	}
	h.dist.AddMiss()
	h.hot.misses++
	if h.probe != nil {
		h.probe.Emit(obs.Miss(now, addr))
	}
	if o3.Evicted {
		if h.probe != nil {
			h.probe.Emit(obs.Evict(now, 1, o3.Victim.Dirty))
		}
		if o3.Victim.Dirty {
			h.hot.l3Writebacks++
			h.energy += h.l3NJ
			h.mem.Write()
		}
	}
	h.energy += tagOnlyNJ // L3 miss discovered in its tags
	h.energy += h.l3NJ    // eventual L3 fill write
	if h.probe != nil {
		h.probe.Emit(obs.Place(now, 1, 0)) // L3 allocates on miss
	}
	done := h.mem.Read(start3 + h.l3Tag)
	return memsys.AccessResult{Hit: false, DoneAt: done, Group: -1}
}

// writebackToL3 retires a dirty L2 victim: it lands in the L3 when the
// block is still resident there (the common, mostly-inclusive case) and
// otherwise goes to memory.
//
// A writeback that hits marks the resident line dirty but deliberately
// does NOT refresh its recency: the paper's base hierarchy treats
// writebacks as non-uses (the block was evicted from the L2 precisely
// because the processor stopped using it), so only demand accesses
// influence L3 replacement. TestWritebackToL3DoesNotRefreshRecency pins
// this choice.
func (h *Hierarchy) writebackToL3(addr uint64) {
	h.hot.l2Writebacks++
	h.energy += h.l2NJ // victim read
	set := h.l3Idx.SetIndex(addr)
	if way, hit := h.l3.Array().FindTag(set, h.l3Idx.Tag(addr)); hit {
		h.l3.Array().Line(set, way).Dirty = true
		h.energy += h.l3NJ
		return
	}
	h.mem.Write()
}

// Distribution implements memsys.LowerLevel.
func (h *Hierarchy) Distribution() *stats.Distribution { return h.dist }

// EnergyNJ implements memsys.LowerLevel.
func (h *Hierarchy) EnergyNJ() float64 { return h.energy }

// Counters implements memsys.LowerLevel. Hot-path counts are
// materialized from plain fields; names appear only when non-zero.
func (h *Hierarchy) Counters() *stats.Counters {
	set := func(name string, v int64) {
		if v != 0 {
			h.ctrs.Set(name, v)
		}
	}
	set("accesses", h.hot.accesses)
	set("l2_misses", h.hot.l2Misses)
	set("l3_hits", h.hot.l3Hits)
	set("misses", h.hot.misses)
	set("l2_writebacks", h.hot.l2Writebacks)
	set("l3_writebacks", h.hot.l3Writebacks)
	return &h.ctrs
}

// AccessMany implements memsys.BatchAccessor.
//
//nurapid:hotpath
func (h *Hierarchy) AccessMany(now int64, reqs []memsys.Req, out []memsys.AccessResult) int64 {
	for i := range reqs {
		q := reqs[i]
		q.Now = now
		r := h.Access(q)
		if out != nil {
			out[i] = r
		}
		now = r.DoneAt + reqs[i].Gap
	}
	return now
}

// L2 exposes the first level (tests).
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// L3 exposes the second level (tests).
func (h *Hierarchy) L3() *cache.Cache { return h.l3 }

var (
	_ memsys.LowerLevel    = (*Uniform)(nil)
	_ memsys.BatchAccessor = (*Uniform)(nil)
	_ memsys.LowerLevel    = (*Hierarchy)(nil)
	_ memsys.BatchAccessor = (*Hierarchy)(nil)
)
