package uca

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
)

func newHierarchy(t *testing.T) (*Hierarchy, *memsys.Memory) {
	t.Helper()
	mem := memsys.NewMemory(128)
	return NewHierarchy(cacti.Default(), mem), mem
}

// TestUniformMissCounter pins the counter-parity fix: the uniform cache
// counts its misses like every other organization, and the count agrees
// with the access distribution.
func TestUniformMissCounter(t *testing.T) {
	u, _ := newIdeal(t)
	now := int64(0)
	for i := 0; i < 16; i++ {
		r := u.Access(memsys.Req{Now: now, Addr: uint64(i) * 128, Write: false}) // 16 cold misses
		now = r.DoneAt
	}
	for i := 0; i < 4; i++ {
		r := u.Access(memsys.Req{Now: now, Addr: uint64(i) * 128, Write: false}) // 4 hits
		now = r.DoneAt
	}
	ctrs := u.Counters()
	if got := ctrs.Get("misses"); got != 16 {
		t.Fatalf("misses counter = %d, want 16", got)
	}
	if got, want := ctrs.Get("misses"), u.Distribution().MissCount(); got != want {
		t.Fatalf("misses counter %d disagrees with distribution %d", got, want)
	}
	if got := ctrs.Get("accesses"); got != 20 {
		t.Fatalf("accesses counter = %d, want 20", got)
	}
}

// TestHierarchyL2MissCounter checks the hierarchy's new per-level miss
// counter: every access that falls through the L2 increments l2_misses,
// and the L3's view decomposes as l2_misses = l3_hits + misses.
func TestHierarchyL2MissCounter(t *testing.T) {
	h, _ := newHierarchy(t)
	now := int64(0)
	addrs := []uint64{0, 128, 256, 0, 128, 4096, 0}
	for _, a := range addrs {
		r := h.Access(memsys.Req{Now: now, Addr: a, Write: false})
		now = r.DoneAt
	}
	ctrs := h.Counters()
	l2Misses := ctrs.Get("l2_misses")
	if l2Misses == 0 {
		t.Fatal("l2_misses never incremented")
	}
	if got := ctrs.Get("l3_hits") + ctrs.Get("misses"); got != l2Misses {
		t.Fatalf("l3_hits(%d) + misses(%d) = %d, want l2_misses = %d",
			ctrs.Get("l3_hits"), ctrs.Get("misses"), got, l2Misses)
	}
	if got, want := ctrs.Get("misses"), h.Distribution().MissCount(); got != want {
		t.Fatalf("misses counter %d disagrees with distribution %d", got, want)
	}
}

// TestCounterParityAcrossOrganizations pins the cross-organization
// counter contract: every uca organization exposes the same core
// counter set {accesses, misses}, so cmd/nurapidtrace and
// RunResult.ObsMetrics consumers see symmetric names regardless of
// which organization produced a run.
func TestCounterParityAcrossOrganizations(t *testing.T) {
	ideal, _ := newIdeal(t)
	hier, _ := newHierarchy(t)
	orgs := []memsys.LowerLevel{ideal, hier}
	for _, org := range orgs {
		now := int64(0)
		for i := 0; i < 12; i++ {
			r := org.Access(memsys.Req{Now: now, Addr: uint64(i%5) * 128, Write: i%3 == 0})
			now = r.DoneAt
		}
		for _, name := range []string{"accesses", "misses"} {
			if org.Counters().Get(name) == 0 {
				t.Errorf("%s: counter %q missing or zero after a miss-bearing run", org.Name(), name)
			}
		}
	}
}

// fillL3Set makes every way of the L3 set holding addr valid by issuing
// demand accesses to conflicting addresses, returning the conflicting
// address stride. Demand accesses also install into the L2, but the L2
// is smaller so its sets cycle independently; only the L3 state matters
// here.
func fillL3Set(h *Hierarchy, now *int64, base uint64) uint64 {
	geo := h.L3().Geometry()
	stride := uint64(geo.NumSets() * geo.BlockBytes)
	for i := 0; i < geo.Assoc; i++ {
		r := h.Access(memsys.Req{Now: *now, Addr: base + uint64(i)*stride, Write: false})
		*now = r.DoneAt
	}
	return stride
}

// TestWritebackToL3DoesNotRefreshRecency pins the writeback-as-non-use
// semantics: a dirty L2 victim landing on a resident L3 line marks it
// dirty but leaves its recency alone, so the block is still evicted in
// its demand-use order.
func TestWritebackToL3DoesNotRefreshRecency(t *testing.T) {
	h, _ := newHierarchy(t)
	var now int64
	stride := fillL3Set(h, &now, 0)
	// Way order in the L3 set, LRU first, is now addr 0, stride, 2*stride...
	// A writeback hit on addr 0 must NOT move it up the recency order.
	h.writebackToL3(0)
	set := h.L3().Geometry().SetIndex(0)
	if way, hit := h.L3().Array().Lookup(0); !hit {
		t.Fatal("writeback target left the L3")
	} else if !h.L3().Array().Line(set, way).Dirty {
		t.Fatal("writeback hit did not mark the L3 line dirty")
	}
	// One more conflicting demand miss evicts the set's LRU block, which
	// must still be addr 0: the writeback was not a use.
	assoc := h.L3().Geometry().Assoc
	r := h.Access(memsys.Req{Now: now, Addr: uint64(assoc) * stride, Write: false})
	now = r.DoneAt
	if h.L3().Contains(0) {
		t.Fatal("writeback refreshed recency: addr 0 survived the next eviction")
	}
}

// TestDemandHitRefreshesL3Recency is the contrast case: a demand hit on
// the same LRU block must refresh recency, so the block survives the
// next conflicting miss.
func TestDemandHitRefreshesL3Recency(t *testing.T) {
	h, _ := newHierarchy(t)
	var now int64
	stride := fillL3Set(h, &now, 0)
	// Evict addr 0 from the L2 (not the L3) so the next access of addr 0
	// is an L3 demand hit: fill L2 set 0 with blocks that land in L2 set
	// 0 but NOT in L3 set 0 (l2stride multiples that are not l3stride
	// multiples), so L3 set 0 stays untouched.
	l2geo := h.L2().Geometry()
	l2stride := uint64(l2geo.NumSets() * l2geo.BlockBytes)
	ratio := uint64(h.L3().Geometry().NumSets() / l2geo.NumSets())
	evicted := 0
	for i := uint64(1); evicted < l2geo.Assoc; i++ {
		if i%ratio == 0 {
			continue // would alias into L3 set 0
		}
		r := h.Access(memsys.Req{Now: now, Addr: i * l2stride, Write: false})
		now = r.DoneAt
		evicted++
	}
	if h.L2().Contains(0) {
		t.Fatal("setup: addr 0 still resident in the L2")
	}
	r := h.Access(memsys.Req{Now: now, Addr: 0, Write: false})
	now = r.DoneAt
	if !r.Hit || r.Group != 1 {
		t.Fatalf("setup: access of addr 0 was not an L3 demand hit (hit=%v group=%d)", r.Hit, r.Group)
	}
	assoc := h.L3().Geometry().Assoc
	r = h.Access(memsys.Req{Now: now, Addr: uint64(assoc) * stride, Write: false})
	now = r.DoneAt
	if !h.L3().Contains(0) {
		t.Fatal("demand hit did not refresh recency: addr 0 was evicted")
	}
}
