package uca

import (
	"testing"

	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

func TestUniformWriteHitDirties(t *testing.T) {
	u, mem := newIdeal(t)
	u.Access(memsys.Req{Now: 0, Addr: 0x500, Write: false})
	u.Access(memsys.Req{Now: 1000, Addr: 0x500, Write: true}) // write hit
	geo := u.Cache().Geometry()
	stride := uint64(geo.NumSets() * geo.BlockBytes)
	for i := 1; i <= geo.Assoc; i++ {
		u.Access(memsys.Req{Now: int64(i) * 5000, Addr: 0x500 + uint64(i)*stride, Write: false})
	}
	if mem.Writes != 1 {
		t.Fatalf("memory writes = %d, want 1 (write-hit dirtied the line)", mem.Writes)
	}
}

func TestUniformMissCountsInDistribution(t *testing.T) {
	u, _ := newIdeal(t)
	rng := mathx.NewRNG(3)
	for i := 0; i < 5000; i++ {
		u.Access(memsys.Req{Now: int64(i) * 50, Addr: uint64(rng.Intn(1<<24)) &^ 0x7F, Write: rng.Bool(0.2)})
	}
	d := u.Distribution()
	if d.Total() != u.Counters().Get("accesses") {
		t.Fatal("distribution total disagrees with access counter")
	}
	if d.MissCount() == 0 || d.HitCount(0) == 0 {
		t.Fatal("storm must produce both hits and misses")
	}
}

func TestHierarchyL3PortSeparateFromL2(t *testing.T) {
	h, _ := newBase(t)
	// Two simultaneous L2 hits: only the L2 port serializes them (4
	// cycles apart), the L3 port stays untouched.
	h.Access(memsys.Req{Now: 0, Addr: 0x4000, Write: false})
	r1 := h.Access(memsys.Req{Now: 100000, Addr: 0x4000, Write: false})
	r2 := h.Access(memsys.Req{Now: 100000, Addr: 0x4000, Write: false})
	if r2.DoneAt-r1.DoneAt != 4 {
		t.Fatalf("L2 hits must pipeline at 4 cycles, got %d", r2.DoneAt-r1.DoneAt)
	}
}

func TestHierarchyCountersConsistent(t *testing.T) {
	h, _ := newBase(t)
	rng := mathx.NewRNG(5)
	for i := 0; i < 20000; i++ {
		h.Access(memsys.Req{Now: int64(i) * 40, Addr: uint64(rng.Intn(1<<25)) &^ 0x7F, Write: rng.Bool(0.25)})
	}
	d := h.Distribution()
	ctr := h.Counters()
	if d.Total() != ctr.Get("accesses") {
		t.Fatal("distribution total disagrees with accesses")
	}
	if d.HitCount(1) != ctr.Get("l3_hits") {
		t.Fatal("L3 hit counts disagree")
	}
	if d.MissCount() != ctr.Get("misses") {
		t.Fatal("miss counts disagree")
	}
}

func TestHierarchyInclusionTendency(t *testing.T) {
	// A block that just missed everything must be resident in both
	// levels afterwards.
	h, _ := newBase(t)
	h.Access(memsys.Req{Now: 0, Addr: 0xABC00, Write: false})
	if !h.L2().Contains(0xABC00) || !h.L3().Contains(0xABC00) {
		t.Fatal("fill must populate both levels")
	}
}

func TestUniformNameAndCounters(t *testing.T) {
	u, _ := newIdeal(t)
	if u.Name() != "ideal" {
		t.Fatalf("name = %q", u.Name())
	}
	u.Access(memsys.Req{Now: 0, Addr: 0x100, Write: false})
	if u.Counters().Get("accesses") != 1 {
		t.Fatal("accesses counter wrong")
	}
}
