package obs

import "nurapid/internal/stats"

// DefaultWindowCycles is the TimeSeries' default epoch length: 65536
// cycles keeps a 2M-instruction CMP run's timeline within the ring.
const DefaultWindowCycles = 1 << 16

// tsRingWindows bounds the retained window ring. Older windows are
// evicted (their per-access contributions stay in the all-time
// aggregates); consumers rendering the timeline must say so — the ring
// is the last tsRingWindows active windows, not the whole run.
const tsRingWindows = 64

// Waterfall component indices: every attributed access's latency is
// split exactly into these five parts (they sum to DoneAt minus the
// enqueue cycle).
const (
	// WfQueueWait is time spent in the shared bank queue before issue.
	WfQueueWait = iota
	// WfBankBusy is time the organization's port was busy with other
	// accesses' issue intervals.
	WfBankBusy
	// WfTagProbe is the tag-array probe.
	WfTagProbe
	// WfDataAccess is the serving d-group's data array + wire time on a
	// hit, or the memory round-trip on a miss.
	WfDataAccess
	// WfPromotionRipple is port backlog left behind by earlier accesses'
	// promotion/demotion movement chains.
	WfPromotionRipple

	// NumWaterfall is the component count.
	NumWaterfall
)

// WaterfallNames are the metric-name suffixes per component, indexed by
// the Wf constants.
var WaterfallNames = [NumWaterfall]string{
	"queue_wait", "bank_busy", "tag_probe", "data_access", "promotion_ripple",
}

// CoreLatency is one core's all-time view of the shared level as seen
// through the event stream.
type CoreLatency struct {
	// Accesses and Hits count completed access windows.
	Accesses, Hits int64
	// Invals counts L1D shoot-downs this core absorbed as a victim.
	Invals int64
	// QueueWaitCycles sums bank-queue wait before issue.
	QueueWaitCycles int64
	// LatencyCycles sums end-to-end latency over LatencySamples
	// accesses whose completion time was observable (all accesses with
	// a latency profile; hits only without one).
	LatencyCycles, LatencySamples int64
}

// BankStat is one queue bank's all-time contention view.
type BankStat struct {
	// Enqueues counts requests hashed to the bank.
	Enqueues int64
	// WaitCycles sums queue wait absorbed at the bank.
	WaitCycles int64
	// DepthHWM is the deepest instantaneous queue ever seen at arrival.
	DepthHWM int64
}

// WindowStat is one fixed-cycle epoch of the timeline.
type WindowStat struct {
	// Epoch is the window index: the window spans cycles
	// [Epoch*EpochCycles, (Epoch+1)*EpochCycles). Windows with no
	// activity are skipped.
	Epoch int64
	// Accesses and Hits count the windows' completed accesses.
	Accesses, Hits int64
	// PerCoreAccesses is Accesses split by requesting core.
	PerCoreAccesses []int64
	// PerBankWaitCycles is queue wait accumulated per bank.
	PerBankWaitCycles []int64
	// PerBankDepthHWM is the deepest queue seen per bank within the
	// window.
	PerBankDepthHWM []int64
	// Fairness is Jain's index over PerCoreAccesses (1 = perfectly
	// fair).
	Fairness float64
}

// tsCore, tsBank, tsWindow are the mutable internal counterparts; the
// exported stat structs above are copied out on demand.
type tsCore struct {
	accesses, hits, invals, queueWait, latency, latSamples int64
	lat                                                    *stats.Histogram
}

type tsBank struct {
	enqueues, waitCycles, depthHWM int64
	wait                           *stats.Histogram
}

type tsWindow struct {
	epoch          int64
	accesses, hits int64
	perCore        []int64
	perBankWait    []int64
	perBankHWM     []int64
	fairness       float64
	closed         bool
}

// tsOpen is the in-flight access window's scratch state.
type tsOpen struct {
	open        bool
	core, bank  int
	depth       int64
	enq         int64 // arrival cycle (enqueue, or access when unqueued)
	queueWait   int64
	orgNow      int64 // cycle the organization saw the request
	haveOutcome bool
	hit         bool
	attributed  bool
	done        int64
	comps       [NumWaterfall]int64
}

// tsPort mirrors the organization's single-port scoreboard from the
// event stream alone: freeAt is the modeled memsys.Port.FreeAt, and
// issueEnd excludes movement-chain extensions, so freeAt-issueEnd is
// the promotion-ripple debt the next access will absorb.
type tsPort struct {
	freeAt, issueEnd int64
}

// latency histogram geometry: 16-cycle buckets to 512 cycles cover a
// contended miss (queue wait + tag + memory); bank-wait histograms use
// 4-cycle buckets to 64 (one bucket per queued request ahead).
const (
	tsLatBuckets  = 32
	tsLatWidth    = 16
	tsWaitBuckets = 16
	tsWaitWidth   = 4
)

// TimeSeries is the windowed time-series registry: it folds the event
// stream into a fixed-epoch ring of per-core and per-bank activity
// (rolling Jain fairness, queue-depth high-water marks) plus all-time
// per-core latency and per-bank wait histograms, and — when the
// observed organization supplies a LatencyProfile — attributes every
// completed access's latency into the five waterfall components, whose
// sum equals the access's reported latency exactly.
//
// Like every probe it is strictly observational and single-goroutine.
// Emit allocates only while growing (first sight of a core, bank, or
// window); steady state is allocation-free.
type TimeSeries struct {
	name        string
	epochCycles int64
	profile     LatencyProfile
	hasProfile  bool

	ring    []tsWindow
	head    int
	count   int
	started int64

	cores []tsCore
	banks []tsBank

	wfComps        [NumWaterfall]int64
	wfAccesses     int64
	wfUnattributed int64

	a    tsOpen
	port tsPort
}

// NewTimeSeries builds a registry named name (metric-name convention:
// lower_snake_case, enforced by the statsreg analyzer) with the given
// window length in cycles; epochCycles <= 0 selects
// DefaultWindowCycles.
func NewTimeSeries(name string, epochCycles int64) *TimeSeries {
	if epochCycles <= 0 {
		epochCycles = DefaultWindowCycles
	}
	return &TimeSeries{
		name:        name,
		epochCycles: epochCycles,
		ring:        make([]tsWindow, tsRingWindows),
	}
}

// SetProfile installs the observed organization's timing model,
// enabling waterfall attribution. Call before the first event; an
// invalid (zero) profile is ignored, leaving the registry in its
// histogram-only mode.
func (ts *TimeSeries) SetProfile(p LatencyProfile) {
	if !p.Valid() {
		return
	}
	p.GroupCycles = append([]int64(nil), p.GroupCycles...)
	ts.profile = p
	ts.hasProfile = true
}

// Name returns the registry's metric name prefix.
func (ts *TimeSeries) Name() string { return ts.name }

// EpochCycles returns the window length in cycles.
func (ts *TimeSeries) EpochCycles() int64 { return ts.epochCycles }

// Emit implements Probe.
func (ts *TimeSeries) Emit(e Event) {
	switch e.Kind {
	case KindEnqueue:
		ts.finalize()
		ts.a = tsOpen{
			open:  true,
			core:  int(e.Core),
			bank:  int(e.Group),
			depth: int64(e.Depth),
			enq:   e.Now,
			// orgNow is refined by the KindIssue/KindAccess that follow;
			// starting at the arrival cycle keeps a truncated stream sane.
			orgNow: e.Now,
		}
	case KindIssue:
		ts.a.queueWait = e.Lat
		ts.a.orgNow = e.Now
	case KindAccess:
		if !ts.a.open {
			ts.finalize()
			ts.a = tsOpen{open: true, core: int(e.Core), bank: -1, enq: e.Now}
		}
		ts.a.core = int(e.Core)
		ts.a.orgNow = e.Now
	case KindHit:
		ts.outcome(e.Now, true, e.Lat)
	case KindMiss:
		ts.outcome(e.Now, false, 0)
	case KindDemote:
		if ts.hasProfile {
			ts.port.freeAt += ts.profile.MoveCycles
		}
	case KindInval:
		ts.growCores(int(e.Core))
		ts.cores[e.Core].invals++
	}
}

// outcome applies the modeled port acquire and, with a profile, splits
// the access's latency into the waterfall components. The split is
// exact by construction: the five parts always sum to done-enq.
func (ts *TimeSeries) outcome(now int64, hit bool, hitLat int64) {
	if !ts.a.open || ts.a.haveOutcome {
		// Ignore inner-level outcomes of multi-level organizations; the
		// first outcome is the shared level's.
		return
	}
	ts.a.haveOutcome = true
	ts.a.hit = hit
	if !ts.hasProfile {
		if hit {
			ts.a.done = now + hitLat
		}
		return
	}
	start := now
	if ts.port.freeAt > start {
		start = ts.port.freeAt
	}
	wait := start - now
	debt := ts.port.freeAt - ts.port.issueEnd
	ts.port.issueEnd = start + ts.profile.IssueCycles
	ts.port.freeAt = ts.port.issueEnd

	orgLat := hitLat
	if !hit {
		orgLat = wait + ts.profile.TagCycles + ts.profile.MemCycles
	}
	// Guard against model drift on organizations whose port differs
	// from the profile: clamping keeps the sum exact regardless.
	if wait > orgLat {
		wait = orgLat
	}
	ripple := debt
	if ripple > wait {
		ripple = wait
	}
	busy := wait - ripple
	rem := orgLat - wait
	tag := ts.profile.TagCycles
	if tag > rem {
		tag = rem
	}
	data := rem - tag

	ts.a.done = now + orgLat
	ts.a.attributed = true
	ts.a.comps[WfQueueWait] = ts.a.queueWait
	ts.a.comps[WfBankBusy] = busy
	ts.a.comps[WfTagProbe] = tag
	ts.a.comps[WfDataAccess] = data
	ts.a.comps[WfPromotionRipple] = ripple
}

// finalize folds the completed in-flight access into the aggregates
// and its window, then clears the scratch state.
func (ts *TimeSeries) finalize() {
	if !ts.a.open {
		return
	}
	a := &ts.a
	ts.growCores(a.core)
	c := &ts.cores[a.core]
	c.accesses++
	if a.hit {
		c.hits++
	}
	c.queueWait += a.queueWait

	w := ts.window(a.enq)
	w.accesses++
	if a.hit {
		w.hits++
	}
	w.perCore = growInt64(w.perCore, a.core)
	w.perCore[a.core]++

	if a.bank >= 0 {
		ts.growBanks(a.bank)
		b := &ts.banks[a.bank]
		b.enqueues++
		b.waitCycles += a.queueWait
		if a.depth > b.depthHWM {
			b.depthHWM = a.depth
		}
		b.wait.Add(a.queueWait)
		w.perBankWait = growInt64(w.perBankWait, a.bank)
		w.perBankWait[a.bank] += a.queueWait
		w.perBankHWM = growInt64(w.perBankHWM, a.bank)
		if a.depth > w.perBankHWM[a.bank] {
			w.perBankHWM[a.bank] = a.depth
		}
	}

	if a.attributed {
		for i, v := range a.comps {
			ts.wfComps[i] += v
		}
		ts.wfAccesses++
	} else {
		ts.wfUnattributed++
	}
	if a.attributed || (a.haveOutcome && a.hit) {
		lat := a.done - a.enq
		c.latency += lat
		c.latSamples++
		c.lat.Add(lat)
	}
	a.open = false
}

// Flush finalizes any in-flight access so aggregates include it.
// Snapshot calls it; tests use it to observe per-access deltas.
func (ts *TimeSeries) Flush() { ts.finalize() }

// window returns the window covering cycle now, rotating the ring
// forward as needed. Out-of-order cycles (round-robin core stepping
// makes arrival cycles only near-monotone) clamp to the newest window.
func (ts *TimeSeries) window(now int64) *tsWindow {
	idx := now / ts.epochCycles
	if ts.count > 0 {
		cur := &ts.ring[(ts.head+ts.count-1)%len(ts.ring)]
		if idx <= cur.epoch {
			return cur
		}
		ts.closeWindow(cur)
	}
	ts.started++
	var w *tsWindow
	if ts.count < len(ts.ring) {
		w = &ts.ring[(ts.head+ts.count)%len(ts.ring)]
		ts.count++
	} else {
		// Ring full: recycle the oldest window's storage.
		w = &ts.ring[ts.head]
		ts.head = (ts.head + 1) % len(ts.ring)
	}
	w.epoch = idx
	w.accesses, w.hits = 0, 0
	w.perCore = zeroInt64(w.perCore)
	w.perBankWait = zeroInt64(w.perBankWait)
	w.perBankHWM = zeroInt64(w.perBankHWM)
	w.fairness = 0
	w.closed = false
	return w
}

// closeWindow stamps the window's fairness over every core the run has
// seen (cores idle in the window count as zeros).
func (ts *TimeSeries) closeWindow(w *tsWindow) {
	w.fairness = ts.windowFairness(w)
	w.closed = true
}

func (ts *TimeSeries) windowFairness(w *tsWindow) float64 {
	n := len(ts.cores)
	if n == 0 {
		return 1
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		var x float64
		if i < len(w.perCore) {
			x = float64(w.perCore[i])
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

func (ts *TimeSeries) growCores(core int) {
	for len(ts.cores) <= core {
		i := len(ts.cores)
		ts.cores = append(ts.cores, tsCore{
			lat: stats.NewHistogram(ts.name+"_core"+itoa(i)+"_lat", tsLatBuckets, tsLatWidth),
		})
	}
}

func (ts *TimeSeries) growBanks(bank int) {
	for len(ts.banks) <= bank {
		i := len(ts.banks)
		ts.banks = append(ts.banks, tsBank{
			wait: stats.NewHistogram(ts.name+"_bank"+itoa(i)+"_wait", tsWaitBuckets, tsWaitWidth),
		})
	}
}

func growInt64(s []int64, i int) []int64 {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

// zeroInt64 truncates a reused window slice; growInt64 re-extends it
// with explicit zeros, so recycled capacity never leaks old values.
func zeroInt64(s []int64) []int64 { return s[:0] }

// WaterfallTotals returns the accumulated waterfall components and the
// number of attributed accesses. Call Flush first to include an
// in-flight access.
func (ts *TimeSeries) WaterfallTotals() ([NumWaterfall]int64, int64) {
	return ts.wfComps, ts.wfAccesses
}

// Unattributed returns the number of completed accesses that got no
// waterfall (no latency profile installed).
func (ts *TimeSeries) Unattributed() int64 { return ts.wfUnattributed }

// CoreStats copies out the all-time per-core view, indexed by core id.
func (ts *TimeSeries) CoreStats() []CoreLatency {
	out := make([]CoreLatency, len(ts.cores))
	for i := range ts.cores {
		c := &ts.cores[i]
		out[i] = CoreLatency{
			Accesses: c.accesses, Hits: c.hits, Invals: c.invals,
			QueueWaitCycles: c.queueWait,
			LatencyCycles:   c.latency, LatencySamples: c.latSamples,
		}
	}
	return out
}

// CoreLatencyHist returns core i's end-to-end latency histogram.
func (ts *TimeSeries) CoreLatencyHist(i int) *stats.Histogram { return ts.cores[i].lat }

// BankStats copies out the all-time per-bank view, indexed by bank id.
// Runs without a shared queue (no KindEnqueue events) return an empty
// slice.
func (ts *TimeSeries) BankStats() []BankStat {
	out := make([]BankStat, len(ts.banks))
	for i := range ts.banks {
		b := &ts.banks[i]
		out[i] = BankStat{Enqueues: b.enqueues, WaitCycles: b.waitCycles, DepthHWM: b.depthHWM}
	}
	return out
}

// BankWaitHist returns bank i's queue-wait histogram.
func (ts *TimeSeries) BankWaitHist(i int) *stats.Histogram { return ts.banks[i].wait }

// Windows copies out the retained ring, oldest first: the last
// tsRingWindows active windows (earlier ones were evicted, though
// their accesses remain in the all-time aggregates).
func (ts *TimeSeries) Windows() []WindowStat {
	out := make([]WindowStat, 0, ts.count)
	for k := 0; k < ts.count; k++ {
		w := &ts.ring[(ts.head+k)%len(ts.ring)]
		fair := w.fairness
		if !w.closed {
			fair = ts.windowFairness(w)
		}
		out = append(out, WindowStat{
			Epoch:             w.epoch,
			Accesses:          w.accesses,
			Hits:              w.hits,
			PerCoreAccesses:   append([]int64(nil), w.perCore...),
			PerBankWaitCycles: append([]int64(nil), w.perBankWait...),
			PerBankDepthHWM:   append([]int64(nil), w.perBankHWM...),
			Fairness:          fair,
		})
	}
	return out
}

// Fairness returns Jain's index over the cores' all-time access
// counts.
func (ts *TimeSeries) Fairness() float64 {
	var sum, sumSq float64
	for i := range ts.cores {
		x := float64(ts.cores[i].accesses)
		sum += x
		sumSq += x * x
	}
	if len(ts.cores) == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(ts.cores)) * sumSq)
}

// Snapshot emits the registry's aggregates (statsreg convention: every
// counter field must appear here): epoch geometry, waterfall totals,
// rolling fairness, and the per-core / per-bank counters and
// histograms. It flushes any in-flight access first.
func (ts *TimeSeries) Snapshot() []stats.KV {
	ts.Flush()
	out := []stats.KV{
		{Name: ts.name + "_epoch_cycles", Value: float64(ts.epochCycles)},
		{Name: ts.name + "_windows_started", Value: float64(ts.started)},
		{Name: ts.name + "_wf_accesses", Value: float64(ts.wfAccesses)},
		{Name: ts.name + "_wf_unattributed", Value: float64(ts.wfUnattributed)},
	}
	for i, v := range ts.wfComps {
		out = append(out, stats.KV{
			Name:  ts.name + "_wf_" + WaterfallNames[i] + "_cycles",
			Value: float64(v),
		})
	}
	out = append(out, stats.KV{Name: ts.name + "_fairness", Value: ts.Fairness()})
	var winFair float64
	var closed int
	for k := 0; k < ts.count; k++ {
		w := &ts.ring[(ts.head+k)%len(ts.ring)]
		if w.closed {
			winFair += w.fairness
			closed++
		}
	}
	if closed == 0 {
		winFair, closed = 1, 1
	}
	out = append(out, stats.KV{Name: ts.name + "_fairness_window", Value: winFair / float64(closed)})
	for i := range ts.cores {
		c := &ts.cores[i]
		pre := ts.name + "_core" + itoa(i)
		out = append(out,
			stats.KV{Name: pre + "_accesses", Value: float64(c.accesses)},
			stats.KV{Name: pre + "_hits", Value: float64(c.hits)},
			stats.KV{Name: pre + "_invals", Value: float64(c.invals)},
			stats.KV{Name: pre + "_queue_wait_cycles", Value: float64(c.queueWait)},
			stats.KV{Name: pre + "_latency_cycles", Value: float64(c.latency)},
			stats.KV{Name: pre + "_latency_samples", Value: float64(c.latSamples)},
		)
		out = append(out, c.lat.Snapshot()...)
	}
	for i := range ts.banks {
		b := &ts.banks[i]
		pre := ts.name + "_bank" + itoa(i)
		out = append(out,
			stats.KV{Name: pre + "_enqueues", Value: float64(b.enqueues)},
			stats.KV{Name: pre + "_wait_cycles", Value: float64(b.waitCycles)},
			stats.KV{Name: pre + "_depth_hwm", Value: float64(b.depthHWM)},
		)
		out = append(out, b.wait.Snapshot()...)
	}
	return out
}
