package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"nurapid/internal/stats"
)

// Trace format: one JSON object per line ("JSONL"), one line per event,
// fields in a fixed order so a fixed-seed run writes byte-identical
// traces:
//
//	{"k":"access","t":12,"addr":268435456,"w":true}
//	{"k":"access","t":12,"addr":268435456,"core":1}
//	{"k":"hit","t":16,"g":0,"lat":14}
//	{"k":"miss","t":20,"addr":268436480}
//	{"k":"place","t":20,"g":1,"depth":1}
//	{"k":"promote","t":24,"from":2,"g":1}
//	{"k":"demote","t":24,"from":1,"g":2,"depth":1}
//	{"k":"evict","t":20,"g":3,"d":true}
//	{"k":"swap","t":24,"lat":4}
//	{"k":"enqueue","t":30,"addr":268435456,"bank":2,"depth":1,"w":true,"core":1}
//	{"k":"issue","t":34,"bank":2,"lat":4,"core":1}
//	{"k":"inval","t":48,"addr":268435456,"core":1}
//
// Only the fields meaningful for each kind are written; "w" and "d"
// are omitted when false, "depth" on enqueue lines when 0, and "core"
// when 0 (single-core runs keep their pre-CMP byte format; the
// queue-side kinds appear only in CMP traces). cmd/nurapidtrace (or
// any JSONL tool) reads the stream back.

// TraceSink is a buffered JSONL trace writer probe. It is not safe for
// concurrent use: attach one sink per simulated run (sim.WithTrace does
// exactly that). Close flushes the buffer and closes the underlying
// writer; the first write error is latched and returned from Close.
type TraceSink struct {
	w      *bufio.Writer
	c      io.Closer
	buf    []byte
	err    error
	events int64
}

// NewTraceSink builds a trace sink over w. When w is also an io.Closer
// (a file), Close closes it.
func NewTraceSink(w io.Writer) *TraceSink {
	s := &TraceSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 128)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Probe: it appends one JSONL line for the event.
func (s *TraceSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = appendEvent(s.buf[:0], e)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
		return
	}
	s.events++
}

// Events returns the number of events written so far.
func (s *TraceSink) Events() int64 { return s.events }

// Err returns the first write error, if any.
func (s *TraceSink) Err() error { return s.err }

// Close flushes buffered events and closes the underlying writer.
func (s *TraceSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// Snapshot emits the sink's write statistics (statsreg convention:
// every counter field must appear here).
func (s *TraceSink) Snapshot() []stats.KV {
	return []stats.KV{{Name: "trace_events", Value: float64(s.events)}}
}

// appendEvent renders e as one JSONL line. Hand-rolled so the hot
// tracing path allocates nothing beyond the reused buffer and the field
// order is fixed (deterministic traces for a fixed seed).
func appendEvent(b []byte, e Event) []byte {
	b = append(b, `{"k":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","t":`...)
	b = strconv.AppendInt(b, e.Now, 10)
	switch e.Kind {
	case KindAccess:
		b = append(b, `,"addr":`...)
		b = strconv.AppendUint(b, e.Addr, 10)
		if e.Write {
			b = append(b, `,"w":true`...)
		}
		// Core 0 (every single-core run) is omitted, keeping fixed-seed
		// single-core traces byte-identical to the pre-CMP format.
		if e.Core != 0 {
			b = append(b, `,"core":`...)
			b = strconv.AppendInt(b, int64(e.Core), 10)
		}
	case KindHit:
		b = appendGroup(b, e.Group)
		b = append(b, `,"lat":`...)
		b = strconv.AppendInt(b, e.Lat, 10)
	case KindMiss:
		b = append(b, `,"addr":`...)
		b = strconv.AppendUint(b, e.Addr, 10)
	case KindPlace:
		b = appendGroup(b, e.Group)
		b = append(b, `,"depth":`...)
		b = strconv.AppendInt(b, int64(e.Depth), 10)
	case KindPromote:
		b = appendFrom(b, e.From)
		b = appendGroup(b, e.Group)
	case KindDemote:
		b = appendFrom(b, e.From)
		b = appendGroup(b, e.Group)
		b = append(b, `,"depth":`...)
		b = strconv.AppendInt(b, int64(e.Depth), 10)
	case KindEvict:
		b = appendGroup(b, e.Group)
		if e.Dirty {
			b = append(b, `,"d":true`...)
		}
	case KindSwap:
		b = append(b, `,"lat":`...)
		b = strconv.AppendInt(b, e.Lat, 10)
	case KindEnqueue:
		b = append(b, `,"addr":`...)
		b = strconv.AppendUint(b, e.Addr, 10)
		b = append(b, `,"bank":`...)
		b = strconv.AppendInt(b, int64(e.Group), 10)
		if e.Depth != 0 {
			b = append(b, `,"depth":`...)
			b = strconv.AppendInt(b, int64(e.Depth), 10)
		}
		if e.Write {
			b = append(b, `,"w":true`...)
		}
		b = appendCore(b, e.Core)
	case KindIssue:
		b = append(b, `,"bank":`...)
		b = strconv.AppendInt(b, int64(e.Group), 10)
		b = append(b, `,"lat":`...)
		b = strconv.AppendInt(b, e.Lat, 10)
		b = appendCore(b, e.Core)
	case KindInval:
		b = append(b, `,"addr":`...)
		b = strconv.AppendUint(b, e.Addr, 10)
		b = appendCore(b, e.Core)
	}
	return append(b, '}', '\n')
}

// appendCore writes the core field with the same omit-zero convention
// the access line uses.
func appendCore(b []byte, core int16) []byte {
	if core == 0 {
		return b
	}
	b = append(b, `,"core":`...)
	return strconv.AppendInt(b, int64(core), 10)
}

func appendGroup(b []byte, g int16) []byte {
	b = append(b, `,"g":`...)
	return strconv.AppendInt(b, int64(g), 10)
}

func appendFrom(b []byte, g int16) []byte {
	b = append(b, `,"from":`...)
	return strconv.AppendInt(b, int64(g), 10)
}

// wireEvent mirrors the JSONL field set for decoding.
type wireEvent struct {
	K     string `json:"k"`
	T     int64  `json:"t"`
	Addr  uint64 `json:"addr"`
	Core  int16  `json:"core"`
	G     int16  `json:"g"`
	Bank  int16  `json:"bank"`
	From  int16  `json:"from"`
	Depth uint8  `json:"depth"`
	W     bool   `json:"w"`
	D     bool   `json:"d"`
	Lat   int64  `json:"lat"`
}

// DecodeTrace reads a JSONL trace from r, calling fn for every event in
// stream order. Blank lines are skipped; a malformed line or an unknown
// kind aborts with an error naming the line number.
func DecodeTrace(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(line, &w); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		e, err := w.event()
		if err != nil {
			return fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// event reconstructs the canonical Event, restoring the -1 sentinels
// the encoder omitted for not-applicable group fields.
func (w wireEvent) event() (Event, error) {
	k, ok := KindByName(w.K)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", w.K)
	}
	switch k {
	case KindAccess:
		return Access(w.T, w.Addr, w.W, int(w.Core)), nil
	case KindHit:
		return Hit(w.T, int(w.G), w.Lat), nil
	case KindMiss:
		return Miss(w.T, w.Addr), nil
	case KindPlace:
		return Place(w.T, int(w.G), int(w.Depth)), nil
	case KindPromote:
		return Promote(w.T, int(w.From), int(w.G)), nil
	case KindDemote:
		return DemoteLink(w.T, int(w.From), int(w.G), int(w.Depth)), nil
	case KindEvict:
		return Evict(w.T, int(w.G), w.D), nil
	case KindSwap:
		return SwapBacklog(w.T, w.Lat), nil
	case KindEnqueue:
		return Enqueue(w.T, w.Addr, int(w.Bank), int(w.Core), w.W, int(w.Depth)), nil
	case KindIssue:
		return Issue(w.T, int(w.Bank), int(w.Core), w.Lat), nil
	case KindInval:
		return Inval(w.T, w.Addr, int(w.Core)), nil
	}
	return Event{}, fmt.Errorf("unhandled event kind %q", w.K)
}
