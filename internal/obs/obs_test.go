package obs

import (
	"bytes"
	"strings"
	"testing"
)

// canonicalEvents covers every kind with its meaningful fields set.
func canonicalEvents() []Event {
	return []Event{
		Access(12, 0x1000_0000, true, 0),
		Access(16, 0x1000_0080, false, 0),
		Hit(16, 0, 14),
		Miss(20, 0x2000_0000),
		Place(20, 1, 1),
		Promote(24, 2, 1),
		DemoteLink(24, 1, 2, 1),
		Evict(20, 3, true),
		Evict(28, 0, false),
		SwapBacklog(24, 4),
		Enqueue(30, 0x1000_0000, 2, 1, true, 1),
		Issue(34, 2, 1, 4),
		Inval(48, 0x1000_0000, 1),
	}
}

// TestTraceQueueKindBytes pins the queue-side kinds' JSONL encodings,
// including the omit-default conventions: "depth" 0 and "w" false drop
// from enqueue lines, "core" 0 from all three.
func TestTraceQueueKindBytes(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Enqueue(30, 268435456, 2, 1, true, 1),
			`{"k":"enqueue","t":30,"addr":268435456,"bank":2,"depth":1,"w":true,"core":1}`},
		{Enqueue(30, 268435456, 0, 0, false, 0),
			`{"k":"enqueue","t":30,"addr":268435456,"bank":0}`},
		{Issue(34, 2, 1, 4), `{"k":"issue","t":34,"bank":2,"lat":4,"core":1}`},
		{Issue(34, 0, 0, 0), `{"k":"issue","t":34,"bank":0,"lat":0}`},
		{Inval(48, 268435456, 1), `{"k":"inval","t":48,"addr":268435456,"core":1}`},
		{Inval(48, 268435456, 0), `{"k":"inval","t":48,"addr":268435456}`},
	}
	for _, c := range cases {
		got := string(bytes.TrimRight(appendEvent(nil, c.e), "\n"))
		if got != c.want {
			t.Errorf("encoding mismatch:\n got %s\nwant %s", got, c.want)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatalf("unknown kind stringer = %q", Kind(200).String())
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("KindByName accepted a bogus name")
	}
}

// TestTraceRoundTrip pins the JSONL encoding and checks decode restores
// every canonical event exactly.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceSink(&buf)
	events := canonicalEvents()
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Events() != int64(len(events)) {
		t.Fatalf("sink counted %d events, want %d", sink.Events(), len(events))
	}

	wantFirst := `{"k":"access","t":12,"addr":268435456,"w":true}`
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; got != wantFirst {
		t.Fatalf("first trace line\n got %s\nwant %s", got, wantFirst)
	}

	var back []Event
	if err := DecodeTrace(bytes.NewReader(buf.Bytes()), func(e Event) error {
		back = append(back, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(back), len(events))
	}
	for i, e := range events {
		if back[i] != e {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, back[i], e)
		}
	}
}

func TestDecodeTraceRejectsGarbage(t *testing.T) {
	if err := DecodeTrace(strings.NewReader("{\"k\":\"noevent\",\"t\":1}\n"), func(Event) error { return nil }); err == nil {
		t.Fatal("unknown kind not rejected")
	}
	if err := DecodeTrace(strings.NewReader("not json\n"), func(Event) error { return nil }); err == nil {
		t.Fatal("malformed line not rejected")
	}
	// Blank lines are fine.
	n := 0
	if err := DecodeTrace(strings.NewReader("\n{\"k\":\"swap\",\"t\":1,\"lat\":2}\n\n"), func(Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("decoded %d events, want 1", n)
	}
}

// TestCollectorAggregation feeds a synthetic run and checks counters,
// histograms, and per-group hits.
func TestCollectorAggregation(t *testing.T) {
	c := NewCollector()
	// Two accesses: one hit in group 1 at 30 cycles, one miss whose
	// placement rippled through two demotion links after an eviction.
	c.Emit(Access(0, 0x100, false, 0))
	c.Emit(Hit(0, 1, 30))
	c.Emit(Access(4, 0x200, true, 0))
	c.Emit(Miss(4, 0x200))
	c.Emit(Evict(4, 3, true))
	c.Emit(DemoteLink(4, 0, 1, 1))
	c.Emit(DemoteLink(4, 1, 2, 2))
	c.Emit(Place(4, 2, 2))
	c.Emit(SwapBacklog(4, 4))

	ctrs := c.Counters()
	for name, want := range map[string]int64{
		"accesses": 2, "writes": 1, "hits": 1, "misses": 1,
		"placements": 1, "demotions": 2, "evictions": 1,
		"dirty_evictions": 1, "swap_backlogs": 1, "swap_backlog_cycles": 4,
	} {
		if got := ctrs.Get(name); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := c.ChainDepth().Count(2); got != 1 {
		t.Errorf("chain depth bucket 2 = %d, want 1", got)
	}
	if got := c.ChainDepth().Total(); got != 1 {
		t.Errorf("chain depth total = %d, want 1", got)
	}
	if got := c.HitLatency().Count(30 / 8); got != 1 {
		t.Errorf("hit latency bucket = %d, want 1", got)
	}
	hits := c.GroupHits()
	if len(hits) != 2 || hits[1] != 1 {
		t.Errorf("group hits = %v, want [0 1]", hits)
	}
	if len(c.Snapshot()) == 0 {
		t.Error("empty collector snapshot")
	}
}

// TestSamplerOccupancy checks the occupancy reconstruction and epoch
// sampling against a hand-traced movement sequence.
func TestSamplerOccupancy(t *testing.T) {
	s := NewSampler("occ", 2)
	// Fill: two blocks into group 0.
	s.Emit(Place(0, 0, 0))
	s.Emit(Place(1, 0, 0))
	// Miss chain: eviction frees group 2, demotion link 0->1 is
	// neutral, the chain's final install lands in group 1.
	s.Emit(Evict(2, 2, false))
	s.Emit(DemoteLink(2, 0, 1, 1))
	s.Emit(Place(2, 1, 1))
	// Promotion: block leaves group 1, re-placed into group 0.
	s.Emit(Promote(3, 1, 0))
	s.Emit(Place(3, 0, 0))

	want := []int64{3, 0, -1}
	got := s.Occupancy()
	if len(got) != len(want) {
		t.Fatalf("occupancy %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occupancy %v, want %v", got, want)
		}
	}

	if s.NumSamples() != 0 {
		t.Fatalf("samples before any access = %d", s.NumSamples())
	}
	s.Emit(Access(4, 0x1, false, 0))
	s.Emit(Access(5, 0x2, false, 0))
	s.Emit(Access(6, 0x3, false, 0))
	if s.NumSamples() != 1 {
		t.Fatalf("samples after one epoch = %d, want 1", s.NumSamples())
	}
	samp := s.Sample(0)
	if samp[0] != 3 {
		t.Fatalf("sample 0 = %v", samp)
	}
	if s.EpochAccesses() != 2 || s.Name() != "occ" || s.NumGroups() != 3 {
		t.Fatal("sampler accessors wrong")
	}
	if len(s.Snapshot()) == 0 {
		t.Fatal("empty sampler snapshot")
	}
	if NewSampler("d", 0).EpochAccesses() != DefaultEpochAccesses {
		t.Fatal("default epoch not applied")
	}
}

// TestMulti checks fan-out order, nil skipping, and collapsing.
func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must be nil")
	}
	c := NewCollector()
	if Multi(nil, c) != Probe(c) {
		t.Fatal("single-probe Multi must collapse")
	}
	s := NewSampler("occ", 0)
	m := Multi(c, nil, s)
	m.Emit(Place(0, 0, 0))
	if c.Counters().Get("placements") != 1 || s.Occupancy()[0] != 1 {
		t.Fatal("Multi did not fan out")
	}
}
