package obs

import (
	"strings"
	"testing"
)

// tsTestProfile mirrors the default NuRAPID timing: 8-cycle tag probe,
// one 21-cycle d-group, 4-cycle issue interval, 4-cycle movement
// extension, 194-cycle memory round-trip.
func tsTestProfile() LatencyProfile {
	return LatencyProfile{
		TagCycles:   8,
		GroupCycles: []int64{21},
		IssueCycles: 4,
		MoveCycles:  4,
		MemCycles:   194,
	}
}

// wfDelta drives fn, flushes, and returns the waterfall totals gained.
func wfDelta(ts *TimeSeries, fn func()) ([NumWaterfall]int64, int64) {
	before, nBefore := ts.WaterfallTotals()
	fn()
	ts.Flush()
	after, nAfter := ts.WaterfallTotals()
	var d [NumWaterfall]int64
	for i := range d {
		d[i] = after[i] - before[i]
	}
	return d, nAfter - nBefore
}

// TestTimeSeriesWaterfallExactSum hand-traces three queued accesses
// through the modeled port and checks each access's five components
// individually and their exact sum against DoneAt minus the enqueue
// cycle.
func TestTimeSeriesWaterfallExactSum(t *testing.T) {
	ts := NewTimeSeries("ts", 1<<16)
	ts.SetProfile(tsTestProfile())

	// Access A: uncontended hit. start=0, done=21.
	d, n := wfDelta(ts, func() {
		ts.Emit(Enqueue(0, 0x100, 0, 0, false, 0))
		ts.Emit(Issue(0, 0, 0, 0))
		ts.Emit(Access(0, 0x100, false, 0))
		ts.Emit(Hit(0, 0, 21))
	})
	if want := [NumWaterfall]int64{0, 0, 8, 13, 0}; d != want || n != 1 {
		t.Fatalf("access A components = %v (%d attributed), want %v", d, n, want)
	}

	// Access B: arrives at 2, port busy until 4 from A's issue interval
	// (plain bank-busy, no movement debt). Observed hit latency 23 =
	// 2 wait + 21 group. A demotion link then extends the port to 12.
	d, n = wfDelta(ts, func() {
		ts.Emit(Enqueue(2, 0x200, 0, 0, false, 0))
		ts.Emit(Issue(2, 0, 0, 0))
		ts.Emit(Access(2, 0x200, false, 0))
		ts.Emit(Hit(2, 0, 23))
		ts.Emit(DemoteLink(2, 0, 0, 1))
	})
	if want := [NumWaterfall]int64{0, 2, 8, 13, 0}; d != want || n != 1 {
		t.Fatalf("access B components = %v (%d attributed), want %v", d, n, want)
	}

	// Access C: a miss on another bank that waited 4 cycles in the
	// queue, then finds the port extended to 12 by B's demotion chain —
	// 4 cycles of promotion ripple, none of plain busy.
	d, n = wfDelta(ts, func() {
		ts.Emit(Enqueue(4, 0x300, 1, 1, true, 2))
		ts.Emit(Issue(8, 1, 1, 4))
		ts.Emit(Access(8, 0x300, true, 1))
		ts.Emit(Miss(8, 0x300))
	})
	// orgLat = 4 wait + 8 tag + 194 memory = 206; done-enq = 210.
	if want := [NumWaterfall]int64{4, 0, 8, 194, 4}; d != want || n != 1 {
		t.Fatalf("access C components = %v (%d attributed), want %v", d, n, want)
	}

	// Aggregates: per-core, per-bank, and all-time fairness.
	cores := ts.CoreStats()
	if len(cores) != 2 || cores[0].Accesses != 2 || cores[0].Hits != 2 ||
		cores[1].Accesses != 1 || cores[1].Hits != 0 || cores[1].QueueWaitCycles != 4 {
		t.Fatalf("core stats = %+v", cores)
	}
	if cores[0].LatencySamples != 2 || cores[0].LatencyCycles != 21+23 {
		t.Fatalf("core 0 latency = %+v", cores[0])
	}
	if cores[1].LatencySamples != 1 || cores[1].LatencyCycles != 210 {
		t.Fatalf("core 1 latency = %+v", cores[1])
	}
	banks := ts.BankStats()
	if len(banks) != 2 || banks[0].Enqueues != 2 || banks[0].WaitCycles != 0 ||
		banks[1].Enqueues != 1 || banks[1].WaitCycles != 4 || banks[1].DepthHWM != 2 {
		t.Fatalf("bank stats = %+v", banks)
	}
	if got := ts.Fairness(); got != 0.9 { // (2+1)^2 / (2*(4+1))
		t.Fatalf("fairness = %v, want 0.9", got)
	}
	if ts.Unattributed() != 0 {
		t.Fatalf("unattributed = %d, want 0", ts.Unattributed())
	}
}

// TestTimeSeriesNoProfile pins the histogram-only mode (the trace
// analyzer's view): hits record observed latency, misses complete but
// stay unattributed, and no waterfall accumulates.
func TestTimeSeriesNoProfile(t *testing.T) {
	ts := NewTimeSeries("ts", 0)
	if ts.EpochCycles() != DefaultWindowCycles {
		t.Fatalf("default epoch = %d", ts.EpochCycles())
	}
	ts.Emit(Enqueue(0, 0x100, 0, 0, false, 0))
	ts.Emit(Issue(0, 0, 0, 0))
	ts.Emit(Access(0, 0x100, false, 0))
	ts.Emit(Hit(0, 0, 21))
	ts.Emit(Enqueue(30, 0x200, 0, 0, true, 0))
	ts.Emit(Issue(30, 0, 0, 0))
	ts.Emit(Access(30, 0x200, true, 0))
	ts.Emit(Miss(30, 0x200))
	ts.Flush()

	if _, n := ts.WaterfallTotals(); n != 0 {
		t.Fatalf("attributed %d accesses without a profile", n)
	}
	// No access gets a waterfall without a profile, hits included.
	if ts.Unattributed() != 2 {
		t.Fatalf("unattributed = %d, want 2", ts.Unattributed())
	}
	c := ts.CoreStats()[0]
	if c.Accesses != 2 || c.LatencySamples != 1 || c.LatencyCycles != 21 {
		t.Fatalf("core stats = %+v", c)
	}
}

// TestTimeSeriesInvalAttribution routes shoot-downs to the victim
// core's counter, not the writer's.
func TestTimeSeriesInvalAttribution(t *testing.T) {
	ts := NewTimeSeries("ts", 0)
	ts.Emit(Enqueue(0, 0x100, 0, 0, true, 0))
	ts.Emit(Issue(0, 0, 0, 0))
	ts.Emit(Access(0, 0x100, true, 0))
	ts.Emit(Hit(0, 0, 21))
	ts.Emit(Inval(21, 0x100, 1))
	ts.Emit(Inval(21, 0x100, 3))
	ts.Flush()
	cores := ts.CoreStats()
	if len(cores) != 4 || cores[0].Invals != 0 || cores[1].Invals != 1 || cores[3].Invals != 1 {
		t.Fatalf("inval attribution = %+v", cores)
	}
}

// TestTimeSeriesWindows exercises the sparse ring: empty epochs are
// skipped, backwards arrival cycles clamp to the newest window, and a
// full ring evicts oldest-first while the all-time aggregates keep
// every access.
func TestTimeSeriesWindows(t *testing.T) {
	ts := NewTimeSeries("ts", 16)
	hit := func(now int64, core int) {
		ts.Emit(Enqueue(now, 0x100, 0, core, false, 0))
		ts.Emit(Issue(now, 0, core, 0))
		ts.Emit(Access(now, 0x100, false, core))
		ts.Emit(Hit(now, 0, 21))
	}
	hit(0, 0)   // epoch 0
	hit(165, 1) // epoch 10: epochs 1..9 never materialize
	hit(160, 0) // backwards within the round-robin jitter: clamps to epoch 10
	ts.Flush()

	ws := ts.Windows()
	if len(ws) != 2 || ws[0].Epoch != 0 || ws[1].Epoch != 10 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[1].Accesses != 2 || ws[1].PerCoreAccesses[0] != 1 || ws[1].PerCoreAccesses[1] != 1 {
		t.Fatalf("clamped window = %+v", ws[1])
	}
	if ws[1].Fairness != 1 { // both cores equally active in the window
		t.Fatalf("window fairness = %v, want 1", ws[1].Fairness)
	}
	// ws[0] predates core 1: its fairness over the full core set is
	// Jain over [1, 0] = 0.5.
	if ws[0].Fairness != 0.5 {
		t.Fatalf("closed window fairness = %v, want 0.5", ws[0].Fairness)
	}

	// Fill far past the ring: only the last 64 windows are retained, and
	// recycled slices carry no stale per-core counts.
	for i := int64(0); i < 100; i++ {
		hit(200+i*16, 0)
	}
	ts.Flush()
	ws = ts.Windows()
	if len(ws) != 64 {
		t.Fatalf("ring holds %d windows, want 64", len(ws))
	}
	for _, w := range ws {
		if w.Accesses != 1 || w.PerCoreAccesses[0] != 1 {
			t.Fatalf("recycled window carries stale counts: %+v", w)
		}
	}
	var total int64
	for _, c := range ts.CoreStats() {
		total += c.Accesses
	}
	if total != 103 {
		t.Fatalf("all-time accesses = %d, want 103", total)
	}
}

// TestTimeSeriesSnapshot spot-checks the snapshot key set.
func TestTimeSeriesSnapshot(t *testing.T) {
	ts := NewTimeSeries("ts", 0)
	ts.SetProfile(tsTestProfile())
	ts.Emit(Enqueue(0, 0x100, 2, 1, false, 0))
	ts.Emit(Issue(0, 2, 1, 0))
	ts.Emit(Access(0, 0x100, false, 1))
	ts.Emit(Hit(0, 0, 21))

	kvs := ts.Snapshot() // flushes the in-flight access
	byName := map[string]float64{}
	for _, kv := range kvs {
		byName[kv.Name] = kv.Value
	}
	for name, want := range map[string]float64{
		"ts_epoch_cycles":               float64(DefaultWindowCycles),
		"ts_windows_started":            1,
		"ts_wf_accesses":                1,
		"ts_wf_unattributed":            0,
		"ts_wf_queue_wait_cycles":       0,
		"ts_wf_tag_probe_cycles":        8,
		"ts_wf_data_access_cycles":      13,
		"ts_wf_promotion_ripple_cycles": 0,
		"ts_fairness_window":            1,
		"ts_core1_accesses":             1,
		"ts_core1_hits":                 1,
		"ts_bank2_enqueues":             1,
	} {
		got, ok := byName[name]
		if !ok || got != want {
			t.Errorf("snapshot %s = %v, %v; want %v", name, got, ok, want)
		}
	}
	for _, kv := range kvs {
		if !strings.HasPrefix(kv.Name, "ts_") {
			t.Errorf("snapshot key %q not ts_-prefixed", kv.Name)
		}
	}
}

// TestSamplerCoreAware checks the per-core occupancy attribution and
// that single-core snapshots stay in the pre-CMP format.
func TestSamplerCoreAware(t *testing.T) {
	s := NewSampler("occ", 2)
	// Core 0 places two blocks over two of its accesses (one epoch);
	// core 1 places one and evicts one of core 0's... the eviction is
	// attributed to the window that triggered it, i.e. core 1.
	s.Emit(Access(0, 0x1, false, 0))
	s.Emit(Place(0, 0, 0))
	s.Emit(Access(1, 0x2, false, 0))
	s.Emit(Place(1, 0, 0))
	s.Emit(Access(2, 0x3, true, 1))
	s.Emit(Evict(2, 0, false))
	s.Emit(Place(2, 1, 0))

	if s.NumCores() != 2 {
		t.Fatalf("cores = %d", s.NumCores())
	}
	if occ := s.CoreOccupancy(0); occ[0] != 2 {
		t.Fatalf("core 0 occupancy = %v", occ)
	}
	if occ := s.CoreOccupancy(1); occ[0] != -1 || occ[1] != 1 {
		t.Fatalf("core 1 occupancy = %v", occ)
	}
	if agg := s.Occupancy(); agg[0] != 1 || agg[1] != 1 {
		t.Fatalf("aggregate occupancy = %v", agg)
	}
	// Core 0 filled its 2-access epoch; core 1 has not. The sample is
	// taken at the access boundary, before that access's placement
	// lands, so it sees one resident block.
	if s.CoreNumSamples(0) != 1 || s.CoreNumSamples(1) != 0 {
		t.Fatalf("core samples = %d, %d", s.CoreNumSamples(0), s.CoreNumSamples(1))
	}
	if samp := s.CoreSample(0, 0); samp[0] != 1 {
		t.Fatalf("core 0 sample = %v", samp)
	}
	for _, kv := range s.Snapshot() {
		if strings.HasPrefix(kv.Name, "occ_core0_") {
			return // multi-core stream present, as required
		}
	}
	t.Fatal("multi-core snapshot lacks per-core lines")
}

// TestSamplerSingleCoreSnapshotUnchanged pins byte-compatibility: a
// single-core stream must produce exactly the historical key set.
func TestSamplerSingleCoreSnapshotUnchanged(t *testing.T) {
	s := NewSampler("occ", 2)
	s.Emit(Access(0, 0x1, false, 0))
	s.Emit(Place(0, 0, 0))
	want := []string{"occ_epoch_accesses", "occ_epoch_fill", "occ_samples", "occ_dgroup_0"}
	kvs := s.Snapshot()
	if len(kvs) != len(want) {
		t.Fatalf("snapshot has %d keys, want %d: %+v", len(kvs), len(want), kvs)
	}
	for i, kv := range kvs {
		if kv.Name != want[i] {
			t.Fatalf("snapshot key %d = %q, want %q", i, kv.Name, want[i])
		}
	}
}
