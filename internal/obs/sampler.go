package obs

import "nurapid/internal/stats"

// DefaultEpochAccesses is the Sampler's default epoch length: one
// occupancy sample per 4096 cache accesses keeps a 2M-instruction run's
// timeline under ~100 samples.
const DefaultEpochAccesses = 4096

// Sampler reconstructs per-d-group occupancy from movement events and
// records an epoch-based timeline: every epoch accesses it snapshots
// how many frames each d-group holds. The reconstruction needs no
// cache-side bookkeeping — placement, promotion, and eviction events
// carry enough information:
//
//   - KindPlace installs a block into a free frame of Group (+1);
//   - KindEvict frees a frame of Group (-1);
//   - KindPromote removes the block from From (-1) before the ensuing
//     chain re-places it;
//   - KindDemote is occupancy-neutral: the incoming block replaces the
//     victim in place, and the victim's landing is the chain's next
//     KindDemote or final KindPlace.
type Sampler struct {
	name    string
	epoch   int64
	inEpoch int64
	occ     []int64
	samples [][]int64
}

// NewSampler builds an occupancy sampler named name (metric-name
// convention: lower_snake_case, enforced by the statsreg analyzer)
// taking one sample per epochAccesses accesses;
// epochAccesses <= 0 selects DefaultEpochAccesses.
func NewSampler(name string, epochAccesses int64) *Sampler {
	if epochAccesses <= 0 {
		epochAccesses = DefaultEpochAccesses
	}
	return &Sampler{name: name, epoch: epochAccesses}
}

func (s *Sampler) grow(g int) {
	for len(s.occ) <= g {
		s.occ = append(s.occ, 0)
	}
}

// Emit implements Probe.
func (s *Sampler) Emit(e Event) {
	switch e.Kind {
	case KindAccess:
		s.inEpoch++
		if s.inEpoch >= s.epoch {
			s.inEpoch = 0
			s.samples = append(s.samples, s.Occupancy())
		}
	case KindPlace:
		s.grow(int(e.Group))
		s.occ[e.Group]++
	case KindEvict:
		s.grow(int(e.Group))
		s.occ[e.Group]--
	case KindPromote:
		s.grow(int(e.From))
		s.occ[e.From]--
	}
}

// Name returns the sampler's metric name.
func (s *Sampler) Name() string { return s.name }

// EpochAccesses returns the epoch length in accesses.
func (s *Sampler) EpochAccesses() int64 { return s.epoch }

// NumGroups returns the number of d-groups seen so far.
func (s *Sampler) NumGroups() int { return len(s.occ) }

// NumSamples returns the number of epoch samples recorded.
func (s *Sampler) NumSamples() int { return len(s.samples) }

// Sample returns epoch i's per-group occupancy. Early samples may be
// shorter than NumGroups when higher groups had not yet been touched.
func (s *Sampler) Sample(i int) []int64 { return s.samples[i] }

// Occupancy returns the current per-group occupancy.
func (s *Sampler) Occupancy() []int64 {
	out := make([]int64, len(s.occ))
	copy(out, s.occ)
	return out
}

// Snapshot emits the epoch geometry, sample count, and current
// occupancy per group (statsreg convention: every counter field must
// appear here). inEpoch is the partially filled current epoch.
func (s *Sampler) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: s.name + "_epoch_accesses", Value: float64(s.epoch)},
		{Name: s.name + "_epoch_fill", Value: float64(s.inEpoch)},
		{Name: s.name + "_samples", Value: float64(len(s.samples))},
	}
	for g, n := range s.occ {
		out = append(out, stats.KV{
			Name:  s.name + "_dgroup_" + itoa(g),
			Value: float64(n),
		})
	}
	return out
}
