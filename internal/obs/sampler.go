package obs

import "nurapid/internal/stats"

// DefaultEpochAccesses is the Sampler's default epoch length: one
// occupancy sample per 4096 cache accesses keeps a 2M-instruction run's
// timeline under ~100 samples.
const DefaultEpochAccesses = 4096

// Sampler reconstructs per-d-group occupancy from movement events and
// records an epoch-based timeline: every epoch accesses it snapshots
// how many frames each d-group holds. The reconstruction needs no
// cache-side bookkeeping — placement, promotion, and eviction events
// carry enough information:
//
//   - KindPlace installs a block into a free frame of Group (+1);
//   - KindEvict frees a frame of Group (-1);
//   - KindPromote removes the block from From (-1) before the ensuing
//     chain re-places it;
//   - KindDemote is occupancy-neutral: the incoming block replaces the
//     victim in place, and the victim's landing is the chain's next
//     KindDemote or final KindPlace.
//
// The sampler is core-aware: besides the aggregate stream it keys a
// second set of epoch streams by (core, group), attributing each
// movement to the core of the access window it belongs to (the
// canonical order guarantees the preceding KindAccess names the
// requestor). Single-core runs see exactly the historical aggregate
// behavior — the per-core streams surface in Snapshot only when more
// than one core appears — so CMP traces no longer merge per-core
// occupancy behavior silently.
type Sampler struct {
	name    string
	epoch   int64
	inEpoch int64
	occ     []int64
	samples [][]int64

	cur     int16 // requesting core of the current access window
	perCore []coreEpochs
}

// coreEpochs is one core's private epoch stream: its own access count
// drives its epoch clock, and only movements from its access windows
// land in its occupancy view.
type coreEpochs struct {
	inEpoch int64
	occ     []int64
	samples [][]int64
}

// NewSampler builds an occupancy sampler named name (metric-name
// convention: lower_snake_case, enforced by the statsreg analyzer)
// taking one sample per epochAccesses accesses;
// epochAccesses <= 0 selects DefaultEpochAccesses.
func NewSampler(name string, epochAccesses int64) *Sampler {
	if epochAccesses <= 0 {
		epochAccesses = DefaultEpochAccesses
	}
	return &Sampler{name: name, epoch: epochAccesses}
}

func (s *Sampler) grow(g int) {
	for len(s.occ) <= g {
		s.occ = append(s.occ, 0)
	}
}

// core returns core c's epoch stream, growing the table as new cores
// appear in the trace.
func (s *Sampler) core(c int) *coreEpochs {
	for len(s.perCore) <= c {
		s.perCore = append(s.perCore, coreEpochs{})
	}
	return &s.perCore[c]
}

// Emit implements Probe.
func (s *Sampler) Emit(e Event) {
	switch e.Kind {
	case KindAccess:
		s.cur = e.Core
		s.inEpoch++
		if s.inEpoch >= s.epoch {
			s.inEpoch = 0
			s.samples = append(s.samples, s.Occupancy())
		}
		c := s.core(int(e.Core))
		c.inEpoch++
		if c.inEpoch >= s.epoch {
			c.inEpoch = 0
			c.samples = append(c.samples, append([]int64(nil), c.occ...))
		}
	case KindPlace:
		s.grow(int(e.Group))
		s.occ[e.Group]++
		c := s.core(int(s.cur))
		c.grow(int(e.Group))
		c.occ[e.Group]++
	case KindEvict:
		s.grow(int(e.Group))
		s.occ[e.Group]--
		c := s.core(int(s.cur))
		c.grow(int(e.Group))
		c.occ[e.Group]--
	case KindPromote:
		s.grow(int(e.From))
		s.occ[e.From]--
		c := s.core(int(s.cur))
		c.grow(int(e.From))
		c.occ[e.From]--
	}
}

func (c *coreEpochs) grow(g int) {
	for len(c.occ) <= g {
		c.occ = append(c.occ, 0)
	}
}

// Name returns the sampler's metric name.
func (s *Sampler) Name() string { return s.name }

// EpochAccesses returns the epoch length in accesses.
func (s *Sampler) EpochAccesses() int64 { return s.epoch }

// NumGroups returns the number of d-groups seen so far.
func (s *Sampler) NumGroups() int { return len(s.occ) }

// NumSamples returns the number of epoch samples recorded.
func (s *Sampler) NumSamples() int { return len(s.samples) }

// Sample returns epoch i's per-group occupancy. Early samples may be
// shorter than NumGroups when higher groups had not yet been touched.
func (s *Sampler) Sample(i int) []int64 { return s.samples[i] }

// Occupancy returns the current per-group occupancy.
func (s *Sampler) Occupancy() []int64 {
	out := make([]int64, len(s.occ))
	copy(out, s.occ)
	return out
}

// NumCores returns how many cores the trace has named so far (at least
// 1 once any access was seen: single-core streams carry core 0).
func (s *Sampler) NumCores() int { return len(s.perCore) }

// CoreOccupancy returns core c's current per-group occupancy view —
// the net frames its own access windows placed minus freed.
func (s *Sampler) CoreOccupancy(c int) []int64 {
	out := make([]int64, len(s.perCore[c].occ))
	copy(out, s.perCore[c].occ)
	return out
}

// CoreNumSamples returns how many epoch samples core c recorded; its
// epoch clock counts only its own accesses.
func (s *Sampler) CoreNumSamples(c int) int { return len(s.perCore[c].samples) }

// CoreSample returns core c's epoch i per-group occupancy view.
func (s *Sampler) CoreSample(c, i int) []int64 { return s.perCore[c].samples[i] }

// Snapshot emits the epoch geometry, sample count, and current
// occupancy per group (statsreg convention: every counter field must
// appear here). inEpoch is the partially filled current epoch. The
// per-core streams are emitted only when more than one core appeared,
// so single-core snapshots are unchanged from the pre-CMP format.
func (s *Sampler) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: s.name + "_epoch_accesses", Value: float64(s.epoch)},
		{Name: s.name + "_epoch_fill", Value: float64(s.inEpoch)},
		{Name: s.name + "_samples", Value: float64(len(s.samples))},
	}
	for g, n := range s.occ {
		out = append(out, stats.KV{
			Name:  s.name + "_dgroup_" + itoa(g),
			Value: float64(n),
		})
	}
	if len(s.perCore) > 1 {
		for c := range s.perCore {
			ce := &s.perCore[c]
			pre := s.name + "_core" + itoa(c)
			out = append(out,
				stats.KV{Name: pre + "_epoch_fill", Value: float64(ce.inEpoch)},
				stats.KV{Name: pre + "_samples", Value: float64(len(ce.samples))},
			)
			for g, n := range ce.occ {
				out = append(out, stats.KV{
					Name:  pre + "_dgroup_" + itoa(g),
					Value: float64(n),
				})
			}
		}
	}
	return out
}
