// Package obs is the microarchitectural observability layer: a typed
// probe interface the cache organizations (internal/nurapid, nuca, uca)
// emit fine-grained events into — per-access outcomes, placement,
// promotion, each demotion-chain link with its depth, evictions, and
// swap-buffer backlog — plus ready-made probes: an in-memory Collector
// (histograms + counters), an epoch-based d-group occupancy Sampler,
// a buffered JSONL TraceSink, and Multi for fan-out.
//
// The paper's key claims live below the run level: demotion chains that
// "ripple until an empty frame absorbs them", promotion traffic, and
// per-d-group residence (Figures 4, 5, 7). Run-level IPC says which
// policy wins; this layer shows why.
//
// Ordering contract: every organization emits the events of one access
// in the same canonical order — KindAccess first, then either KindHit
// (with any KindPromote/KindDemote/KindPlace movement events after it,
// or a single KindBypass where a suppressed promotion's movement would
// have appeared) or KindMiss, followed by KindEvict when a valid block
// was displaced and the KindDemote links and final KindPlace of the
// fill. In
// particular Miss always precedes Evict, and Evict precedes Place
// within one access. Multi-level organizations (uca.Hierarchy) apply
// the order per level, with KindMiss reserved for the outermost miss to
// memory. TestEventOrderCanonical (internal/sim) pins the order for
// every organization.
//
// The CMP front end (internal/cmp) extends the window at both ends:
// a queued access opens with KindEnqueue (bank id and instantaneous
// queue depth) immediately followed by KindIssue (the grant cycle and
// the queue-wait it absorbed), then the organization's canonical
// window above; a write's coherence shoot-downs close the window with
// one KindInval per private L1D copy dropped, after the outcome.
// Single-core runs never emit the queue-side kinds, so their traces
// stay byte-identical to the pre-CMP format. The probeorder analyzer
// (internal/lint) checks the extended order statically;
// TestCMPEventOrderCanonical (internal/cmp) pins it at runtime.
//
// Overhead contract: probes are strictly observational (they never alter
// simulated state or timing), events are fixed-size structs passed by
// value (no allocation on the emitting path), and every emission site
// sits behind a nil-probe check, so a simulation without a probe pays
// one predictable branch per event site and rendered experiment output
// stays byte-identical to a probe-free build. With a fixed workload
// seed, the event stream is deterministic: two traced runs of the same
// (app, organization, seed) produce identical event sequences.
package obs

import (
	"fmt"
	"io"

	"nurapid/internal/stats"
)

// Kind distinguishes the microarchitectural events a Probe sees.
type Kind uint8

const (
	// KindAccess fires once per lower-level cache access, before the
	// outcome is known. Addr and Write are set.
	KindAccess Kind = iota
	// KindHit fires when an access is served by the cache. Group is the
	// serving d-group (latency group), Lat the observed serve latency in
	// cycles, port/bank queueing included.
	KindHit
	// KindMiss fires when an access misses to memory. Addr is set.
	KindMiss
	// KindPlace fires when a block is installed into a free frame:
	// Group is the absorbing d-group and Depth the number of demotion
	// links that rippled before this install (0 = direct placement).
	// Every placement chain ends in exactly one KindPlace.
	KindPlace
	// KindPromote fires when a hit block leaves Group `From` to be
	// re-placed closer (Group is the requested destination); the
	// subsequent KindDemote/KindPlace events describe where the
	// displaced blocks went.
	KindPromote
	// KindDemote fires once per demotion-chain link: the victim of
	// Group `From` is displaced into Group `Group`. Depth is the link's
	// 1-based index within its chain.
	KindDemote
	// KindEvict fires when a block leaves the cache entirely (data
	// replacement). Group is the d-group whose frame was freed, Dirty
	// whether the victim required a writeback.
	KindEvict
	// KindSwap reports swap-buffer pressure after a movement chain: Lat
	// is the single port's outstanding backlog in cycles beyond the
	// access that triggered the movement.
	KindSwap
	// KindEnqueue fires when a request arrives at the shared bank queue
	// (CMP runs only), before bank arbitration. Addr, Core, and Write
	// are set; Group carries the bank id and Depth the bank's
	// instantaneous queue depth in requests (saturated at 255).
	KindEnqueue
	// KindIssue fires when the bank grants the enqueued request. Now is
	// the grant cycle, Group the bank id, Core the requester, and Lat
	// the queue-wait in cycles (grant cycle minus arrival cycle).
	KindIssue
	// KindInval fires once per private L1D copy a write's coherence
	// shoot-down dropped (CMP runs only). Addr is the block, Core the
	// victim core (never the writer), and Now the cycle the write's
	// shared-level access completed.
	KindInval
	// KindBypass fires when the predictive promotion policy suppresses a
	// hit block's promotion because the reuse-distance predictor flags it
	// as dead/streaming (nurapid.PredictiveBypass). Group is the d-group
	// that served the hit and keeps the block. In the canonical order it
	// follows KindHit where the movement events of a promotion would
	// otherwise appear.
	KindBypass

	numKinds
)

// kindNames are the Kind wire names used in JSONL traces, indexed by
// Kind. New kinds append — existing indices and wire names are part of
// the trace format.
var kindNames = [numKinds]string{
	"access", "hit", "miss", "place", "promote", "demote", "evict", "swap",
	"enqueue", "issue", "inval", "bypass",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName resolves a trace wire name back to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one microarchitectural event. It is a fixed-size value —
// emitting one allocates nothing — and only the fields meaningful for
// its Kind are set; group fields are -1 when not applicable. Use the
// constructor helpers (Access, Hit, ...) so the not-applicable fields
// get their canonical values.
type Event struct {
	Kind Kind
	// Now is the cycle of the access that produced the event.
	Now int64
	// Addr is the accessed block address (KindAccess, KindMiss).
	Addr uint64
	// Core is the requesting core's id, set on KindAccess, KindEnqueue,
	// and KindIssue events (memsys.Req.Core; 0 in single-core
	// simulations) and the victim core on KindInval. The events that
	// follow an access in the canonical order belong to the same
	// requestor, so per-core trace analysis needs it only at the window
	// boundaries.
	Core int16
	// Group is the serving or destination d-group, or the bank id on
	// KindEnqueue/KindIssue; -1 when n/a.
	Group int16
	// From is the source d-group of a movement; -1 when n/a.
	From int16
	// Depth is the demotion-chain link index (KindDemote, 1-based), the
	// chain length absorbed by an install (KindPlace), or the bank's
	// queue depth at arrival (KindEnqueue, saturated at 255).
	Depth uint8
	// Write marks a write access (KindAccess).
	Write bool
	// Dirty marks an eviction that required a writeback (KindEvict).
	Dirty bool
	// Lat is the observed hit latency (KindHit), the port backlog in
	// cycles a movement chain left behind (KindSwap), or the queue-wait
	// in cycles (KindIssue).
	Lat int64
}

// Access builds a KindAccess event issued by core.
//
//nurapid:hotpath
func Access(now int64, addr uint64, write bool, core int) Event {
	return Event{Kind: KindAccess, Now: now, Addr: addr, Core: int16(core), Group: -1, From: -1, Write: write}
}

// Hit builds a KindHit event for a hit served by group at the observed
// latency.
//
//nurapid:hotpath
func Hit(now int64, group int, lat int64) Event {
	return Event{Kind: KindHit, Now: now, Group: int16(group), From: -1, Lat: lat}
}

// Miss builds a KindMiss event.
//
//nurapid:hotpath
func Miss(now int64, addr uint64) Event {
	return Event{Kind: KindMiss, Now: now, Addr: addr, Group: -1, From: -1}
}

// Place builds a KindPlace event: a block absorbed by a free frame of
// group after depth demotion links.
//
//nurapid:hotpath
func Place(now int64, group, depth int) Event {
	return Event{Kind: KindPlace, Now: now, Group: int16(group), From: -1, Depth: uint8(depth)}
}

// Promote builds a KindPromote event: a block left `from` heading for
// `to`.
//
//nurapid:hotpath
func Promote(now int64, from, to int) Event {
	return Event{Kind: KindPromote, Now: now, Group: int16(to), From: int16(from)}
}

// DemoteLink builds a KindDemote event: chain link number depth
// displaced the victim of `from` into `to`.
//
//nurapid:hotpath
func DemoteLink(now int64, from, to, depth int) Event {
	return Event{Kind: KindDemote, Now: now, Group: int16(to), From: int16(from), Depth: uint8(depth)}
}

// Evict builds a KindEvict event: a block left the cache, freeing a
// frame in group.
//
//nurapid:hotpath
func Evict(now int64, group int, dirty bool) Event {
	return Event{Kind: KindEvict, Now: now, Group: int16(group), From: -1, Dirty: dirty}
}

// SwapBacklog builds a KindSwap event: after a movement chain, the
// single port is booked lat cycles beyond the triggering access.
//
//nurapid:hotpath
func SwapBacklog(now, lat int64) Event {
	return Event{Kind: KindSwap, Now: now, Group: -1, From: -1, Lat: lat}
}

// Enqueue builds a KindEnqueue event: core's request for addr arrived
// at its bank's queue at cycle now, finding depth requests' worth of
// backlog ahead of it (saturated at 255).
//
//nurapid:hotpath
func Enqueue(now int64, addr uint64, bank, core int, write bool, depth int) Event {
	return Event{Kind: KindEnqueue, Now: now, Addr: addr, Core: int16(core),
		Group: int16(bank), From: -1, Write: write, Depth: uint8(depth)}
}

// Issue builds a KindIssue event: the bank granted core's enqueued
// request at cycle now after wait cycles in the queue.
//
//nurapid:hotpath
func Issue(now int64, bank, core int, wait int64) Event {
	return Event{Kind: KindIssue, Now: now, Core: int16(core), Group: int16(bank),
		From: -1, Lat: wait}
}

// Inval builds a KindInval event: a coherence shoot-down dropped addr
// from victim core's private L1D at cycle now.
//
//nurapid:hotpath
func Inval(now int64, addr uint64, core int) Event {
	return Event{Kind: KindInval, Now: now, Addr: addr, Core: int16(core),
		Group: -1, From: -1}
}

// Bypass builds a KindBypass event: the reuse-distance predictor
// suppressed the promotion of the hit block, which stays in group.
//
//nurapid:hotpath
func Bypass(now int64, group int) Event {
	return Event{Kind: KindBypass, Now: now, Group: int16(group), From: -1}
}

// LatencyProfile is an organization's static timing model, enough for
// the TimeSeries waterfall to attribute each access's latency into
// components without touching simulated state. The zero value means
// "no profile" (SetProfile ignores it); a valid profile has at least
// one group latency and a positive issue interval.
type LatencyProfile struct {
	// TagCycles is the tag-probe latency charged before the data array.
	TagCycles int64
	// GroupCycles is the full serve latency per d-group (tag included),
	// indexed by group.
	GroupCycles []int64
	// IssueCycles is the port's issue interval: how long one access
	// occupies the organization's port.
	IssueCycles int64
	// MoveCycles is the port occupancy one demotion-chain link adds.
	MoveCycles int64
	// MemCycles is the memory round-trip a miss pays after the tag
	// probe.
	MemCycles int64
}

// Valid reports whether the profile carries a usable timing model.
func (p LatencyProfile) Valid() bool {
	return len(p.GroupCycles) > 0 && p.IssueCycles > 0
}

// LatencyProfiler is implemented by organizations (and wrappers like
// cmp.Queue) that can describe their static timing for waterfall
// attribution. Implementations return the zero LatencyProfile when no
// model is available.
type LatencyProfiler interface {
	LatencyProfile() LatencyProfile
}

// Probe receives microarchitectural events from one cache instance.
// Implementations are called synchronously from the simulation's hot
// path: they must be cheap, must not retain pointers into the caller,
// and need no locking (one simulation runs on one goroutine).
type Probe interface {
	//nurapid:hotpath
	Emit(Event)
}

// Probeable is implemented by cache organizations that accept a probe.
// SetProbe must be called before the first access; a nil probe restores
// the zero-overhead fast path.
type Probeable interface {
	SetProbe(Probe)
}

// multi fans events out to several probes in order.
type multi []Probe

// Multi returns a probe that forwards every event to each non-nil probe
// in order. With zero or one non-nil probes it returns nil or that
// probe directly, keeping the fast path short.
func Multi(probes ...Probe) Probe {
	kept := make(multi, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			kept = append(kept, p)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// Emit implements Probe.
func (m multi) Emit(e Event) {
	for _, p := range m {
		p.Emit(e)
	}
}

// Snapshot concatenates the sub-probes' snapshots in fan-out order, so
// a composed probe reports everything its members report (sim harvests
// snapshots through this interface).
func (m multi) Snapshot() []stats.KV {
	var out []stats.KV
	for _, p := range m {
		if s, ok := p.(interface{ Snapshot() []stats.KV }); ok {
			out = append(out, s.Snapshot()...)
		}
	}
	return out
}

// Close closes every sub-probe that holds resources, returning the
// first error.
func (m multi) Close() error {
	var first error
	for _, p := range m {
		if c, ok := p.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
