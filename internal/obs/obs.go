// Package obs is the microarchitectural observability layer: a typed
// probe interface the cache organizations (internal/nurapid, nuca, uca)
// emit fine-grained events into — per-access outcomes, placement,
// promotion, each demotion-chain link with its depth, evictions, and
// swap-buffer backlog — plus ready-made probes: an in-memory Collector
// (histograms + counters), an epoch-based d-group occupancy Sampler,
// a buffered JSONL TraceSink, and Multi for fan-out.
//
// The paper's key claims live below the run level: demotion chains that
// "ripple until an empty frame absorbs them", promotion traffic, and
// per-d-group residence (Figures 4, 5, 7). Run-level IPC says which
// policy wins; this layer shows why.
//
// Ordering contract: every organization emits the events of one access
// in the same canonical order — KindAccess first, then either KindHit
// (with any KindPromote/KindDemote/KindPlace movement events after it)
// or KindMiss, followed by KindEvict when a valid block was displaced
// and the KindDemote links and final KindPlace of the fill. In
// particular Miss always precedes Evict, and Evict precedes Place
// within one access. Multi-level organizations (uca.Hierarchy) apply
// the order per level, with KindMiss reserved for the outermost miss to
// memory. TestEventOrderCanonical (internal/sim) pins the order for
// every organization.
//
// Overhead contract: probes are strictly observational (they never alter
// simulated state or timing), events are fixed-size structs passed by
// value (no allocation on the emitting path), and every emission site
// sits behind a nil-probe check, so a simulation without a probe pays
// one predictable branch per event site and rendered experiment output
// stays byte-identical to a probe-free build. With a fixed workload
// seed, the event stream is deterministic: two traced runs of the same
// (app, organization, seed) produce identical event sequences.
package obs

import (
	"fmt"
	"io"

	"nurapid/internal/stats"
)

// Kind distinguishes the microarchitectural events a Probe sees.
type Kind uint8

const (
	// KindAccess fires once per lower-level cache access, before the
	// outcome is known. Addr and Write are set.
	KindAccess Kind = iota
	// KindHit fires when an access is served by the cache. Group is the
	// serving d-group (latency group), Lat the observed serve latency in
	// cycles, port/bank queueing included.
	KindHit
	// KindMiss fires when an access misses to memory. Addr is set.
	KindMiss
	// KindPlace fires when a block is installed into a free frame:
	// Group is the absorbing d-group and Depth the number of demotion
	// links that rippled before this install (0 = direct placement).
	// Every placement chain ends in exactly one KindPlace.
	KindPlace
	// KindPromote fires when a hit block leaves Group `From` to be
	// re-placed closer (Group is the requested destination); the
	// subsequent KindDemote/KindPlace events describe where the
	// displaced blocks went.
	KindPromote
	// KindDemote fires once per demotion-chain link: the victim of
	// Group `From` is displaced into Group `Group`. Depth is the link's
	// 1-based index within its chain.
	KindDemote
	// KindEvict fires when a block leaves the cache entirely (data
	// replacement). Group is the d-group whose frame was freed, Dirty
	// whether the victim required a writeback.
	KindEvict
	// KindSwap reports swap-buffer pressure after a movement chain: Lat
	// is the single port's outstanding backlog in cycles beyond the
	// access that triggered the movement.
	KindSwap

	numKinds
)

// kindNames are the Kind wire names used in JSONL traces, indexed by
// Kind.
var kindNames = [numKinds]string{
	"access", "hit", "miss", "place", "promote", "demote", "evict", "swap",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName resolves a trace wire name back to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one microarchitectural event. It is a fixed-size value —
// emitting one allocates nothing — and only the fields meaningful for
// its Kind are set; group fields are -1 when not applicable. Use the
// constructor helpers (Access, Hit, ...) so the not-applicable fields
// get their canonical values.
type Event struct {
	Kind Kind
	// Now is the cycle of the access that produced the event.
	Now int64
	// Addr is the accessed block address (KindAccess, KindMiss).
	Addr uint64
	// Core is the requesting core's id, set on KindAccess events
	// (memsys.Req.Core; 0 in single-core simulations). The events that
	// follow an access in the canonical order belong to the same
	// requestor, so per-core trace analysis needs it only here.
	Core int16
	// Group is the serving or destination d-group; -1 when n/a.
	Group int16
	// From is the source d-group of a movement; -1 when n/a.
	From int16
	// Depth is the demotion-chain link index (KindDemote, 1-based) or
	// the chain length absorbed by an install (KindPlace).
	Depth uint8
	// Write marks a write access (KindAccess).
	Write bool
	// Dirty marks an eviction that required a writeback (KindEvict).
	Dirty bool
	// Lat is the observed hit latency (KindHit) or the port backlog in
	// cycles a movement chain left behind (KindSwap).
	Lat int64
}

// Access builds a KindAccess event issued by core.
//
//nurapid:hotpath
func Access(now int64, addr uint64, write bool, core int) Event {
	return Event{Kind: KindAccess, Now: now, Addr: addr, Core: int16(core), Group: -1, From: -1, Write: write}
}

// Hit builds a KindHit event for a hit served by group at the observed
// latency.
//
//nurapid:hotpath
func Hit(now int64, group int, lat int64) Event {
	return Event{Kind: KindHit, Now: now, Group: int16(group), From: -1, Lat: lat}
}

// Miss builds a KindMiss event.
//
//nurapid:hotpath
func Miss(now int64, addr uint64) Event {
	return Event{Kind: KindMiss, Now: now, Addr: addr, Group: -1, From: -1}
}

// Place builds a KindPlace event: a block absorbed by a free frame of
// group after depth demotion links.
//
//nurapid:hotpath
func Place(now int64, group, depth int) Event {
	return Event{Kind: KindPlace, Now: now, Group: int16(group), From: -1, Depth: uint8(depth)}
}

// Promote builds a KindPromote event: a block left `from` heading for
// `to`.
//
//nurapid:hotpath
func Promote(now int64, from, to int) Event {
	return Event{Kind: KindPromote, Now: now, Group: int16(to), From: int16(from)}
}

// DemoteLink builds a KindDemote event: chain link number depth
// displaced the victim of `from` into `to`.
//
//nurapid:hotpath
func DemoteLink(now int64, from, to, depth int) Event {
	return Event{Kind: KindDemote, Now: now, Group: int16(to), From: int16(from), Depth: uint8(depth)}
}

// Evict builds a KindEvict event: a block left the cache, freeing a
// frame in group.
//
//nurapid:hotpath
func Evict(now int64, group int, dirty bool) Event {
	return Event{Kind: KindEvict, Now: now, Group: int16(group), From: -1, Dirty: dirty}
}

// SwapBacklog builds a KindSwap event: after a movement chain, the
// single port is booked lat cycles beyond the triggering access.
//
//nurapid:hotpath
func SwapBacklog(now, lat int64) Event {
	return Event{Kind: KindSwap, Now: now, Group: -1, From: -1, Lat: lat}
}

// Probe receives microarchitectural events from one cache instance.
// Implementations are called synchronously from the simulation's hot
// path: they must be cheap, must not retain pointers into the caller,
// and need no locking (one simulation runs on one goroutine).
type Probe interface {
	//nurapid:hotpath
	Emit(Event)
}

// Probeable is implemented by cache organizations that accept a probe.
// SetProbe must be called before the first access; a nil probe restores
// the zero-overhead fast path.
type Probeable interface {
	SetProbe(Probe)
}

// multi fans events out to several probes in order.
type multi []Probe

// Multi returns a probe that forwards every event to each non-nil probe
// in order. With zero or one non-nil probes it returns nil or that
// probe directly, keeping the fast path short.
func Multi(probes ...Probe) Probe {
	kept := make(multi, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			kept = append(kept, p)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// Emit implements Probe.
func (m multi) Emit(e Event) {
	for _, p := range m {
		p.Emit(e)
	}
}

// Snapshot concatenates the sub-probes' snapshots in fan-out order, so
// a composed probe reports everything its members report (sim harvests
// snapshots through this interface).
func (m multi) Snapshot() []stats.KV {
	var out []stats.KV
	for _, p := range m {
		if s, ok := p.(interface{ Snapshot() []stats.KV }); ok {
			out = append(out, s.Snapshot()...)
		}
	}
	return out
}

// Close closes every sub-probe that holds resources, returning the
// first error.
func (m multi) Close() error {
	var first error
	for _, p := range m {
		if c, ok := p.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
