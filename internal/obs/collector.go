package obs

import "nurapid/internal/stats"

// chainDepthBuckets bounds the chain-depth histogram: NuRAPID chains
// are at most nGroups-1 links (conservation, paper Sec. 2.2) and the
// repository's largest configuration has 8 d-groups, so unit buckets
// 0..8 cover every legal chain and the overflow bucket would expose a
// conservation bug.
const chainDepthBuckets = 9

// hit-latency histogram geometry: 8-cycle buckets to 256 cycles span
// the fastest d-group (14 cycles) through a contended slowest group;
// memory-bound latencies land in the overflow bucket.
const (
	hitLatBuckets = 32
	hitLatWidth   = 8
)

// Collector is an in-memory aggregating probe: event counters mirroring
// the cache models' own (accesses, hits, misses, placements,
// promotions, demotions, evictions), a demotion-chain depth histogram,
// a hit-latency histogram, and per-d-group hit counts. One Collector
// observes one run; Merge is not provided — aggregate trace files with
// cmd/nurapidtrace instead.
type Collector struct {
	chain  *stats.Histogram
	hitLat *stats.Histogram
	ctrs   stats.Counters
	groups []int64 // hits per serving d-group
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		chain:  stats.NewHistogram("chain_depth", chainDepthBuckets, 1),
		hitLat: stats.NewHistogram("hit_latency", hitLatBuckets, hitLatWidth),
	}
}

// Emit implements Probe.
func (c *Collector) Emit(e Event) {
	switch e.Kind {
	case KindAccess:
		c.ctrs.Inc("accesses")
		if e.Write {
			c.ctrs.Inc("writes")
		}
	case KindHit:
		c.ctrs.Inc("hits")
		c.hitLat.Add(e.Lat)
		g := int(e.Group)
		for len(c.groups) <= g {
			c.groups = append(c.groups, 0)
		}
		c.groups[g]++
	case KindMiss:
		c.ctrs.Inc("misses")
	case KindPlace:
		c.ctrs.Inc("placements")
		c.chain.Add(int64(e.Depth))
	case KindPromote:
		c.ctrs.Inc("promotions")
	case KindDemote:
		c.ctrs.Inc("demotions")
	case KindEvict:
		c.ctrs.Inc("evictions")
		if e.Dirty {
			c.ctrs.Inc("dirty_evictions")
		}
	case KindSwap:
		c.ctrs.Inc("swap_backlogs")
		c.ctrs.Add("swap_backlog_cycles", e.Lat)
	case KindEnqueue:
		c.ctrs.Inc("enqueues")
	case KindIssue:
		c.ctrs.Add("queue_wait_cycles", e.Lat)
	case KindInval:
		c.ctrs.Inc("l1d_invals")
	}
}

// Counters returns the event counters.
func (c *Collector) Counters() *stats.Counters { return &c.ctrs }

// ChainDepth returns the demotion-chain depth histogram: one sample per
// placement, valued at the number of demotion links the chain rippled
// through before a free frame absorbed it.
func (c *Collector) ChainDepth() *stats.Histogram { return c.chain }

// HitLatency returns the observed hit-latency histogram (port and bank
// queueing included).
func (c *Collector) HitLatency() *stats.Histogram { return c.hitLat }

// GroupHits returns the number of hits served per d-group, indexed by
// group; the slice covers the highest group seen.
func (c *Collector) GroupHits() []int64 {
	out := make([]int64, len(c.groups))
	copy(out, c.groups)
	return out
}

// Snapshot emits the collector's counters, both histograms, and the
// per-group hit counts (statsreg convention: every counter field must
// appear here).
func (c *Collector) Snapshot() []stats.KV {
	out := c.ctrs.Snapshot()
	out = append(out, c.chain.Snapshot()...)
	out = append(out, c.hitLat.Snapshot()...)
	for g, n := range c.groups {
		out = append(out, stats.KV{
			Name:  "dgroup_" + itoa(g) + "_hits",
			Value: float64(n),
		})
	}
	return out
}

// itoa is a tiny non-negative integer formatter so Snapshot stays off
// fmt on the (cold) snapshot path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
