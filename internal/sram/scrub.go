package sram

import "fmt"

// ScrubReport summarizes one scrubbing pass over the array.
type ScrubReport struct {
	WordsScanned  int64
	Corrected     int64 // single-bit errors repaired in place
	Uncorrectable int64 // double-bit errors found (data lost)
}

func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d words, %d corrected, %d uncorrectable",
		r.WordsScanned, r.Corrected, r.Uncorrectable)
}

// Scrub walks every stored word, re-decoding and rewriting it. Single-bit
// upsets are corrected in place — which is what keeps independent soft
// errors from accumulating into uncorrectable double errors over time.
// Real large caches run such a scrubber continuously in the background;
// here it is a synchronous pass for tests and studies.
func (a *Array) Scrub() ScrubReport {
	var rep ScrubReport
	for s := range a.store {
		if a.defective[s] {
			continue // fused-out subarrays are never read
		}
		for i := range a.store[s] {
			w := &a.store[s][i]
			rep.WordsScanned++
			v, st := ECCDecode(w.data, w.check)
			switch st {
			case ECCCorrected:
				rep.Corrected++
				w.data = v
				w.check = ECCEncode(v)
			case ECCUncorrectable:
				rep.Uncorrectable++
			}
		}
	}
	return rep
}

// InjectRandomStrikes models n independent alpha-particle strikes at
// random locations, each flipping `width` adjacent bits of one row, and
// returns the locations hit (physical subarray, row). The rng is any
// source of uniform integers, kept as a tiny interface so the package
// stays free of simulator dependencies.
func (a *Array) InjectRandomStrikes(rng interface{ Intn(int) int }, n, width int) ([][2]int, error) {
	hits := make([][2]int, 0, n)
	rowBits := a.cfg.Interleave * 72
	for i := 0; i < n; i++ {
		s := rng.Intn(len(a.store))
		row := rng.Intn(a.rowsPerSub)
		start := rng.Intn(rowBits - width + 1)
		if err := a.Strike(s, row, start, width); err != nil {
			return hits, err
		}
		hits = append(hits, [2]int{s, row})
	}
	return hits, nil
}
