package sram

import (
	"testing"
	"testing/quick"

	"nurapid/internal/mathx"
)

func TestECCCleanRoundtrip(t *testing.T) {
	for _, v := range []uint64{0, 1, ^uint64(0), 0xDEADBEEFCAFEBABE, 1 << 63} {
		check := ECCEncode(v)
		got, st := ECCDecode(v, check)
		if st != ECCClean || got != v {
			t.Fatalf("clean decode of %#x: got %#x status %v", v, got, st)
		}
	}
}

func TestECCCorrectsEverySingleDataBit(t *testing.T) {
	rng := mathx.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		v := rng.Uint64()
		check := ECCEncode(v)
		for bit := 0; bit < 64; bit++ {
			got, st := ECCDecode(v^1<<uint(bit), check)
			if st != ECCCorrected {
				t.Fatalf("data bit %d flip: status %v", bit, st)
			}
			if got != v {
				t.Fatalf("data bit %d flip: decoded %#x, want %#x", bit, got, v)
			}
		}
	}
}

func TestECCCorrectsEverySingleCheckBit(t *testing.T) {
	rng := mathx.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		v := rng.Uint64()
		check := ECCEncode(v)
		for bit := 0; bit < 8; bit++ {
			got, st := ECCDecode(v, check^1<<uint(bit))
			if st != ECCCorrected {
				t.Fatalf("check bit %d flip: status %v", bit, st)
			}
			if got != v {
				t.Fatalf("check bit %d flip: decoded %#x, want %#x", bit, got, v)
			}
		}
	}
}

func TestECCDetectsDoubleErrors(t *testing.T) {
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 200; trial++ {
		v := rng.Uint64()
		check := ECCEncode(v)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		for b2 == b1 {
			b2 = rng.Intn(64)
		}
		_, st := ECCDecode(v^1<<uint(b1)^1<<uint(b2), check)
		if st != ECCUncorrectable {
			t.Fatalf("double flip (%d,%d) on %#x: status %v, want uncorrectable", b1, b2, v, st)
		}
	}
}

func TestECCDetectsDataPlusCheckDouble(t *testing.T) {
	rng := mathx.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		v := rng.Uint64()
		check := ECCEncode(v)
		db := rng.Intn(64)
		cb := rng.Intn(8)
		_, st := ECCDecode(v^1<<uint(db), check^1<<uint(cb))
		if st != ECCUncorrectable {
			t.Fatalf("data %d + check %d flip: status %v", db, cb, st)
		}
	}
}

func TestECCQuickSingleFlipAlwaysCorrected(t *testing.T) {
	f := func(v uint64, which uint8) bool {
		check := ECCEncode(v)
		bit := int(which) % 72
		var got uint64
		var st ECCStatus
		if bit < 64 {
			got, st = ECCDecode(v^1<<uint(bit), check)
		} else {
			got, st = ECCDecode(v, check^1<<uint(bit-64))
		}
		return st == ECCCorrected && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECCStatusString(t *testing.T) {
	if ECCClean.String() != "clean" || ECCCorrected.String() != "corrected" ||
		ECCUncorrectable.String() != "uncorrectable" {
		t.Fatal("status strings wrong")
	}
	if ECCStatus(42).String() == "" {
		t.Fatal("unknown status must render")
	}
}
