// Package sram models the physical organization of large cache data
// arrays: many SRAM subarrays with blocks spread across them, spare
// subarrays remapped over defective ones by fuse maps, and SECDED ECC
// whose words are interleaved so one particle strike touches at most one
// bit per ECC word.
//
// Section 3 of the paper argues that NuRAPID's few large d-groups retain
// these conventional-large-cache advantages while D-NUCA's many small
// independent d-groups cannot (spares and row addresses cannot be shared
// across d-groups with different latencies). This package makes that
// argument executable: the tests demonstrate spare sharing within a
// large d-group and strike tolerance under word spreading.
package sram

import "fmt"

// ECCStatus reports the outcome of decoding one protected word.
type ECCStatus int

const (
	// ECCClean means no error was present.
	ECCClean ECCStatus = iota
	// ECCCorrected means a single-bit error was detected and repaired.
	ECCCorrected
	// ECCUncorrectable means a double-bit error was detected; data is lost.
	ECCUncorrectable
)

func (s ECCStatus) String() string {
	switch s {
	case ECCClean:
		return "clean"
	case ECCCorrected:
		return "corrected"
	case ECCUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ECCStatus(%d)", int(s))
	}
}

// The code is an extended Hamming SECDED(72,64): 64 data bits, 7 Hamming
// check bits at codeword positions 1,2,4,...,64, and one overall parity
// bit at position 0. Data bits fill the remaining positions 3..71.

// dataPos[i] is the codeword position of data bit i.
var dataPos [64]int

// posData[p] is the data bit stored at codeword position p, or -1.
var posData [72]int

func init() {
	for i := range posData {
		posData[i] = -1
	}
	d := 0
	for p := 1; p < 72; p++ {
		if p&(p-1) == 0 { // power of two: check bit
			continue
		}
		dataPos[d] = p
		posData[p] = d
		d++
	}
	if d != 64 {
		panic("sram: ECC layout error")
	}
}

// ECCEncode computes the 8 check bits (7 Hamming + overall parity in bit
// 7) protecting the 64-bit word.
func ECCEncode(data uint64) uint8 {
	var syndrome int
	ones := 0
	for i := 0; i < 64; i++ {
		if data>>uint(i)&1 == 1 {
			syndrome ^= dataPos[i]
			ones++
		}
	}
	// Hamming check bit k (at position 1<<k) is bit k of the syndrome.
	var check uint8
	for k := 0; k < 7; k++ {
		if syndrome>>uint(k)&1 == 1 {
			check |= 1 << uint(k)
			ones++
		}
	}
	// Overall parity over all 72 bits (positions 0..71) must be even.
	if ones%2 == 1 {
		check |= 1 << 7
	}
	return check
}

// ECCDecode checks and, when possible, corrects a received (data, check)
// pair. It returns the corrected data and the decode status. For
// ECCUncorrectable the returned data is the raw input.
func ECCDecode(data uint64, check uint8) (uint64, ECCStatus) {
	var syndrome int
	ones := 0
	for i := 0; i < 64; i++ {
		if data>>uint(i)&1 == 1 {
			syndrome ^= dataPos[i]
			ones++
		}
	}
	for k := 0; k < 7; k++ {
		if check>>uint(k)&1 == 1 {
			syndrome ^= 1 << uint(k)
			ones++
		}
	}
	parityStored := check>>7&1 == 1
	parityComputed := ones%2 == 1
	parityErr := parityStored != parityComputed

	switch {
	case syndrome == 0 && !parityErr:
		return data, ECCClean
	case parityErr:
		// Odd number of flipped bits; with SECDED's guarantee, one.
		if syndrome == 0 {
			// The overall parity bit itself flipped; data is intact.
			return data, ECCCorrected
		}
		if syndrome < 72 {
			if d := posData[syndrome]; d >= 0 {
				return data ^ 1<<uint(d), ECCCorrected
			}
			// A check bit flipped; data is intact.
			return data, ECCCorrected
		}
		return data, ECCUncorrectable
	default:
		// syndrome != 0 with even parity: double-bit error.
		return data, ECCUncorrectable
	}
}
