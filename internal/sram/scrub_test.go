package sram

import (
	"bytes"
	"strings"
	"testing"

	"nurapid/internal/mathx"
)

func TestScrubCleanArray(t *testing.T) {
	a := testArray(t)
	rep := a.Scrub()
	if rep.Corrected != 0 || rep.Uncorrectable != 0 {
		t.Fatalf("clean array scrub found errors: %v", rep)
	}
	if rep.WordsScanned == 0 {
		t.Fatal("scrub must scan words")
	}
}

func TestScrubRepairsSingleBitUpsets(t *testing.T) {
	a := testArray(t)
	rng := mathx.NewRNG(5)
	payload := randomBlock(rng, 128)
	if err := a.WriteBlock(3, payload); err != nil {
		t.Fatal(err)
	}
	// Single-bit strike on one of the block's words.
	// Block 3 occupies column 0 of its row, so its word's bits sit at
	// positions p with p %% interleave == 0.
	phys := a.BlockSubarrays(3)[0]
	if err := a.Strike(phys, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	rep := a.Scrub()
	if rep.Corrected != 1 {
		t.Fatalf("scrub corrected %d words, want 1", rep.Corrected)
	}
	// After scrubbing, a second strike on the SAME word is again a
	// single-bit error — without scrubbing it would have accumulated
	// into an uncorrectable double error.
	if err := a.Strike(phys, 0, a.Interleave(), 1); err != nil {
		t.Fatal(err)
	}
	got, st, err := a.ReadBlock(3)
	if err != nil || st == ECCUncorrectable {
		t.Fatalf("post-scrub strike must remain correctable: st=%v err=%v", st, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestWithoutScrubErrorsAccumulate(t *testing.T) {
	a := testArray(t)
	rng := mathx.NewRNG(6)
	if err := a.WriteBlock(3, randomBlock(rng, 128)); err != nil {
		t.Fatal(err)
	}
	phys := a.BlockSubarrays(3)[0]
	// Two strikes hitting the same ECC word (column 0 of row 0, the
	// word block 3 owns) without a scrub in between.
	if err := a.Strike(phys, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Strike(phys, 0, a.Interleave(), 1); err != nil {
		t.Fatal(err)
	}
	_, st, _ := a.ReadBlock(3)
	if st != ECCUncorrectable {
		t.Fatalf("accumulated double error must be uncorrectable, got %v", st)
	}
	rep := a.Scrub()
	if rep.Uncorrectable != 1 {
		t.Fatalf("scrub must report the uncorrectable word: %v", rep)
	}
}

func TestScrubSkipsDefectiveSubarrays(t *testing.T) {
	a := testArray(t)
	full := a.Scrub().WordsScanned
	if err := a.MarkDefective(0); err != nil {
		t.Fatal(err)
	}
	after := a.Scrub().WordsScanned
	if after >= full {
		t.Fatalf("defective subarray must be skipped: %d -> %d", full, after)
	}
}

func TestInjectRandomStrikesAllCorrectableAtInterleaveWidth(t *testing.T) {
	a := testArray(t)
	rng := mathx.NewRNG(7)
	// Fill a few blocks.
	for b := 0; b < 64; b++ {
		if err := a.WriteBlock(b, randomBlock(rng, 128)); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := a.InjectRandomStrikes(rng, 50, a.Interleave())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 50 {
		t.Fatalf("injected %d strikes", len(hits))
	}
	rep := a.Scrub()
	if rep.Uncorrectable != 0 {
		t.Fatalf("interleave-width strikes must all be correctable: %v", rep)
	}
}

func TestScrubReportString(t *testing.T) {
	s := ScrubReport{WordsScanned: 10, Corrected: 2, Uncorrectable: 1}.String()
	if !strings.Contains(s, "10") || !strings.Contains(s, "2") || !strings.Contains(s, "1") {
		t.Fatalf("report string %q", s)
	}
}
