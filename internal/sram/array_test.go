package sram

import (
	"bytes"
	"testing"

	"nurapid/internal/mathx"
)

func testArray(t *testing.T) *Array {
	t.Helper()
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func randomBlock(rng *mathx.RNG, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
	return b
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{CapacityBytes: 2 << 20, SubarrayKB: 16, BlockBytes: 0, Interleave: 8},
		{CapacityBytes: 2 << 20, SubarrayKB: 16, BlockBytes: 100, Interleave: 8},
		{CapacityBytes: 0, SubarrayKB: 16, BlockBytes: 128, Interleave: 8},
		{CapacityBytes: 2 << 20, SubarrayKB: 0, BlockBytes: 128, Interleave: 8},
		{CapacityBytes: 2 << 20, SubarrayKB: 16, BlockBytes: 128, Interleave: 0},
		// Too few subarrays for 16-word spreading.
		{CapacityBytes: 64 << 10, SubarrayKB: 16, BlockBytes: 128, Interleave: 8},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestDefaultGeometry(t *testing.T) {
	a := testArray(t)
	if a.NumBlocks() != (2<<20)/128 {
		t.Fatalf("NumBlocks = %d", a.NumBlocks())
	}
	if a.NumDataSubarrays() != 128 {
		t.Fatalf("data subarrays = %d, want 128", a.NumDataSubarrays())
	}
	if a.SparesRemaining() != 2 {
		t.Fatalf("spares = %d, want 2", a.SparesRemaining())
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	a := testArray(t)
	rng := mathx.NewRNG(1)
	blocks := []int{0, 1, 7, 1000, a.NumBlocks() - 1}
	payloads := make(map[int][]byte)
	for _, b := range blocks {
		p := randomBlock(rng, 128)
		payloads[b] = p
		if err := a.WriteBlock(b, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range blocks {
		got, st, err := a.ReadBlock(b)
		if err != nil || st != ECCClean {
			t.Fatalf("block %d: err=%v status=%v", b, err, st)
		}
		if !bytes.Equal(got, payloads[b]) {
			t.Fatalf("block %d payload mismatch", b)
		}
	}
}

func TestWriteBlockRejectsBadSize(t *testing.T) {
	a := testArray(t)
	if err := a.WriteBlock(0, make([]byte, 64)); err == nil {
		t.Fatal("short payload must be rejected")
	}
}

func TestBlockSpreadAcrossSubarrays(t *testing.T) {
	// Sec. 3.1: every word of a block sits in a distinct subarray.
	a := testArray(t)
	for _, b := range []int{0, 5, 4095} {
		subs := a.BlockSubarrays(b)
		seen := make(map[int]bool)
		for _, s := range subs {
			if seen[s] {
				t.Fatalf("block %d reuses subarray %d", b, s)
			}
			seen[s] = true
		}
		if len(subs) != 16 {
			t.Fatalf("block %d spread over %d subarrays, want 16", b, len(subs))
		}
	}
}

func TestSpareRemapTransparent(t *testing.T) {
	a := testArray(t)
	rng := mathx.NewRNG(2)
	p := randomBlock(rng, 128)
	if err := a.WriteBlock(42, p); err != nil {
		t.Fatal(err)
	}
	victim := a.BlockSubarrays(42)[3]
	if err := a.MarkDefective(victim); err != nil {
		t.Fatal(err)
	}
	if !a.IsDefective(victim) {
		t.Fatal("victim must be recorded defective")
	}
	if a.SparesRemaining() != 1 {
		t.Fatalf("spares = %d, want 1", a.SparesRemaining())
	}
	// The block must now avoid the defective subarray and read back clean.
	for _, s := range a.BlockSubarrays(42) {
		if s == victim {
			t.Fatal("block still mapped onto defective subarray")
		}
	}
	got, st, err := a.ReadBlock(42)
	if err != nil || st != ECCClean || !bytes.Equal(got, p) {
		t.Fatalf("post-remap read: err=%v status=%v match=%v", err, st, bytes.Equal(got, p))
	}
}

func TestSpareSharingAcrossRowGroups(t *testing.T) {
	// The spares are a shared pool: failures in subarrays of different
	// row groups both get remapped, which is exactly what NUCA's small
	// independent d-groups cannot do (Sec. 3.2).
	a := testArray(t)
	s0 := a.BlockSubarrays(0)[0] // row group 0
	s1 := a.BlockSubarrays(1)[0] // row group 1
	if err := a.MarkDefective(s0); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkDefective(s1); err != nil {
		t.Fatal(err)
	}
	if a.SparesRemaining() != 0 {
		t.Fatalf("spares = %d, want 0", a.SparesRemaining())
	}
}

func TestSpareExhaustion(t *testing.T) {
	a := testArray(t)
	if err := a.MarkDefective(0); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkDefective(1); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkDefective(2); err == nil {
		t.Fatal("third failure must exhaust the 2 spares")
	}
}

func TestMarkDefectiveIdempotent(t *testing.T) {
	a := testArray(t)
	if err := a.MarkDefective(5); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkDefective(5); err != nil {
		t.Fatal("re-marking the same subarray must be a no-op")
	}
	if a.SparesRemaining() != 1 {
		t.Fatalf("spares = %d, want 1", a.SparesRemaining())
	}
}

func TestMarkDefectiveOutOfRange(t *testing.T) {
	a := testArray(t)
	if err := a.MarkDefective(-1); err == nil {
		t.Fatal("negative subarray must error")
	}
	if err := a.MarkDefective(10000); err == nil {
		t.Fatal("out-of-range subarray must error")
	}
}

func TestStrikeWithinInterleaveIsCorrected(t *testing.T) {
	// Sec. 3.1: because adjacent row bits belong to different ECC words,
	// a strike no wider than the interleave is always correctable.
	a := testArray(t)
	rng := mathx.NewRNG(3)
	p := randomBlock(rng, 128)
	if err := a.WriteBlock(7, p); err != nil {
		t.Fatal(err)
	}
	phys, row := a.BlockSubarrays(7)[0], 0
	// Block 7: group=7%8, slot=0 -> row 0. Strike the full interleave width.
	if err := a.Strike(phys, row, 10, a.Interleave()); err != nil {
		t.Fatal(err)
	}
	got, st, err := a.ReadBlock(7)
	if err != nil {
		t.Fatal(err)
	}
	if st == ECCUncorrectable {
		t.Fatal("strike within interleave width must be correctable")
	}
	if !bytes.Equal(got, p) {
		t.Fatal("corrected payload mismatch")
	}
}

func TestWideStrikeIsDetectedNotMiscorrected(t *testing.T) {
	a := testArray(t)
	rng := mathx.NewRNG(4)
	p := randomBlock(rng, 128)
	if err := a.WriteBlock(7, p); err != nil {
		t.Fatal(err)
	}
	phys := a.BlockSubarrays(7)[0]
	// Twice the interleave width: two bits flip in at least one word.
	if err := a.Strike(phys, 0, 0, 2*a.Interleave()); err != nil {
		t.Fatal(err)
	}
	_, st, err := a.ReadBlock(7)
	if st != ECCUncorrectable || err == nil {
		t.Fatalf("wide strike: status=%v err=%v, want uncorrectable+error", st, err)
	}
}

func TestStrikeValidation(t *testing.T) {
	a := testArray(t)
	if err := a.Strike(-1, 0, 0, 1); err == nil {
		t.Fatal("bad subarray must error")
	}
	if err := a.Strike(0, a.RowsPerSubarray(), 0, 1); err == nil {
		t.Fatal("bad row must error")
	}
	if err := a.Strike(0, 0, 0, 0); err == nil {
		t.Fatal("zero width must error")
	}
	if err := a.Strike(0, 0, a.Interleave()*72, 1); err == nil {
		t.Fatal("out-of-row strike must error")
	}
}

func TestLocPanicsOutOfRange(t *testing.T) {
	a := testArray(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range block must panic")
		}
	}()
	a.BlockSubarrays(a.NumBlocks())
}
