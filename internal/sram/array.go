package sram

import (
	"errors"
	"fmt"
)

// Config describes the physical organization of one d-group's data array.
type Config struct {
	CapacityBytes  int64 // total data capacity, e.g. 2 MB
	SubarrayKB     int   // nominal subarray size, e.g. 16 KB (Itanium-II-like)
	BlockBytes     int   // cache block size, e.g. 128
	SpareSubarrays int   // spares shared by the whole d-group
	Interleave     int   // ECC words bit-interleaved per subarray row
}

// DefaultConfig is a 2-MB d-group built from 16-KB subarrays with 2
// spares, 128-B blocks, and 8-way column interleaving, mirroring the
// Itanium II L3 organization the paper cites.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:  2 << 20,
		SubarrayKB:     16,
		BlockBytes:     128,
		SpareSubarrays: 2,
		Interleave:     8,
	}
}

type word struct {
	data  uint64
	check uint8
}

// Array is one d-group's physical data array: many subarrays, a fuse map
// remapping defective subarrays onto spares, and SECDED-protected words
// spread so that each word of a block sits in a different subarray.
type Array struct {
	cfg Config

	wordsPerBlock int // block words, each in a distinct subarray of its group
	numGroups     int // row groups: sets of wordsPerBlock subarrays
	blocksPerGrp  int
	rowsPerSub    int // rows per subarray; each row holds Interleave words

	dataSubs  int   // logical data subarrays
	remap     []int // logical -> physical subarray (the fuse map)
	defective []bool
	spares    []int // free physical spare subarray ids

	store [][]word // physical subarray -> row-major word storage
}

// New validates the configuration and builds the array.
func New(cfg Config) (*Array, error) {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes%8 != 0 {
		return nil, fmt.Errorf("sram: block size %d must be a positive multiple of 8", cfg.BlockBytes)
	}
	if cfg.CapacityBytes <= 0 || cfg.CapacityBytes%int64(cfg.BlockBytes) != 0 {
		return nil, fmt.Errorf("sram: capacity %d not a multiple of block size", cfg.CapacityBytes)
	}
	if cfg.Interleave <= 0 {
		return nil, errors.New("sram: interleave must be positive")
	}
	if cfg.SubarrayKB <= 0 {
		return nil, errors.New("sram: subarray size must be positive")
	}
	w := cfg.BlockBytes / 8
	subBytes := int64(cfg.SubarrayKB) * 1024
	dataSubs := int(cfg.CapacityBytes / subBytes)
	if dataSubs < w || dataSubs%w != 0 {
		return nil, fmt.Errorf("sram: %d subarrays cannot host %d-word blocks", dataSubs, w)
	}
	groups := dataSubs / w
	blocks := int(cfg.CapacityBytes) / cfg.BlockBytes
	if blocks%groups != 0 {
		return nil, fmt.Errorf("sram: %d blocks do not divide into %d row groups", blocks, groups)
	}
	perGroup := blocks / groups
	if perGroup%cfg.Interleave != 0 {
		return nil, fmt.Errorf("sram: %d blocks per group not a multiple of interleave %d", perGroup, cfg.Interleave)
	}
	rows := perGroup / cfg.Interleave

	total := dataSubs + cfg.SpareSubarrays
	a := &Array{
		cfg:           cfg,
		wordsPerBlock: w,
		numGroups:     groups,
		blocksPerGrp:  perGroup,
		rowsPerSub:    rows,
		dataSubs:      dataSubs,
		remap:         make([]int, dataSubs),
		defective:     make([]bool, total),
		store:         make([][]word, total),
	}
	for i := range a.remap {
		a.remap[i] = i
	}
	for s := dataSubs; s < total; s++ {
		a.spares = append(a.spares, s)
	}
	for s := range a.store {
		a.store[s] = make([]word, rows*cfg.Interleave)
	}
	return a, nil
}

// NumBlocks returns the number of cache blocks the array stores.
func (a *Array) NumBlocks() int { return a.numGroups * a.blocksPerGrp }

// NumDataSubarrays returns the number of logical (non-spare) subarrays.
func (a *Array) NumDataSubarrays() int { return a.dataSubs }

// SparesRemaining returns how many spare subarrays are still unused.
func (a *Array) SparesRemaining() int { return len(a.spares) }

// loc computes the physical coordinates of word w of block b.
func (a *Array) loc(b, w int) (phys, row, col int) {
	if b < 0 || b >= a.NumBlocks() {
		panic(fmt.Sprintf("sram: block %d out of range", b))
	}
	if w < 0 || w >= a.wordsPerBlock {
		panic(fmt.Sprintf("sram: word %d out of range", w))
	}
	group := b % a.numGroups
	slot := b / a.numGroups
	row = slot / a.cfg.Interleave
	col = slot % a.cfg.Interleave
	logical := group*a.wordsPerBlock + w
	return a.remap[logical], row, col
}

// BlockSubarrays returns the distinct physical subarrays holding block b,
// in word order. Every word of a block lives in its own subarray; this is
// the spreading property Sec. 3.1 of the paper describes.
func (a *Array) BlockSubarrays(b int) []int {
	out := make([]int, a.wordsPerBlock)
	for w := range out {
		out[w], _, _ = a.loc(b, w)
	}
	return out
}

// WriteBlock stores data (exactly BlockBytes long, little-endian words)
// into block b, ECC-encoding every word.
func (a *Array) WriteBlock(b int, data []byte) error {
	if len(data) != a.cfg.BlockBytes {
		return fmt.Errorf("sram: block payload %d bytes, want %d", len(data), a.cfg.BlockBytes)
	}
	for w := 0; w < a.wordsPerBlock; w++ {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(data[w*8+i]) << uint(8*i)
		}
		phys, row, col := a.loc(b, w)
		a.store[phys][row*a.cfg.Interleave+col] = word{data: v, check: ECCEncode(v)}
	}
	return nil
}

// ReadBlock fetches block b, ECC-decoding every word. It returns the
// (possibly corrected) payload and the worst decode status seen.
func (a *Array) ReadBlock(b int) ([]byte, ECCStatus, error) {
	out := make([]byte, a.cfg.BlockBytes)
	worst := ECCClean
	for w := 0; w < a.wordsPerBlock; w++ {
		phys, row, col := a.loc(b, w)
		wd := a.store[phys][row*a.cfg.Interleave+col]
		v, st := ECCDecode(wd.data, wd.check)
		if st > worst {
			worst = st
		}
		for i := 0; i < 8; i++ {
			out[w*8+i] = byte(v >> uint(8*i))
		}
	}
	if worst == ECCUncorrectable {
		return out, worst, errors.New("sram: uncorrectable error in block")
	}
	return out, worst, nil
}

// MarkDefective records a hard failure of physical subarray phys and
// remaps every logical subarray using it onto a spare (blowing a fuse, in
// hardware terms). Stored contents are migrated, modeling the repair
// performed at test time before the array is filled. It fails when no
// spares remain. Spares are shared across the whole d-group — the
// property small NUCA d-groups lose.
func (a *Array) MarkDefective(phys int) error {
	if phys < 0 || phys >= len(a.store) {
		return fmt.Errorf("sram: subarray %d out of range", phys)
	}
	if a.defective[phys] {
		return nil // already fused out
	}
	a.defective[phys] = true
	inUse := false
	for logical, p := range a.remap {
		if p != phys {
			continue
		}
		inUse = true
		if len(a.spares) == 0 {
			return errors.New("sram: no spare subarrays remaining")
		}
		spare := a.spares[0]
		a.spares = a.spares[1:]
		copy(a.store[spare], a.store[phys])
		a.remap[logical] = spare
	}
	_ = inUse // an unused spare failing needs no remap
	return nil
}

// IsDefective reports whether physical subarray phys has been fused out.
func (a *Array) IsDefective(phys int) bool {
	return phys >= 0 && phys < len(a.defective) && a.defective[phys]
}

// Strike emulates an alpha-particle hit flipping width adjacent physical
// bits of one subarray row, starting at bit offset start. Within a row,
// the Interleave ECC words are bit-interleaved (physical bit p belongs to
// word p mod Interleave), so a strike of width <= Interleave corrupts at
// most one bit in any ECC word and is always correctable on read.
func (a *Array) Strike(phys, row, start, width int) error {
	if phys < 0 || phys >= len(a.store) {
		return fmt.Errorf("sram: subarray %d out of range", phys)
	}
	if row < 0 || row >= a.rowsPerSub {
		return fmt.Errorf("sram: row %d out of range", row)
	}
	rowBits := a.cfg.Interleave * 72
	if start < 0 || width <= 0 || start+width > rowBits {
		return fmt.Errorf("sram: strike [%d,%d) outside row of %d bits", start, start+width, rowBits)
	}
	base := row * a.cfg.Interleave
	for p := start; p < start+width; p++ {
		col := p % a.cfg.Interleave
		bit := p / a.cfg.Interleave // codeword bit index, 0..71
		w := &a.store[phys][base+col]
		if bit < 64 {
			w.data ^= 1 << uint(bit)
		} else {
			w.check ^= 1 << uint(bit-64)
		}
	}
	return nil
}

// RowsPerSubarray returns the number of rows in each subarray.
func (a *Array) RowsPerSubarray() int { return a.rowsPerSub }

// Interleave returns the number of ECC words bit-interleaved per row.
func (a *Array) Interleave() int { return a.cfg.Interleave }
