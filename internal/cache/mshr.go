package cache

// MSHRFile models a set of miss-status holding registers: the bound on
// outstanding misses below a cache. Requests to a block already in
// flight merge into its entry; when every register holds an unfinished
// miss, new misses must stall — which is how the paper's 8-entry L1 MSHR
// file throttles demand on the L2.
type MSHRFile struct {
	capacity int
	inflight map[Addr]int64 // block address -> completion cycle

	Allocations int64
	Merges      int64
	FullStalls  int64
}

// NewMSHRFile creates a file with the given number of registers.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHRFile{capacity: capacity, inflight: make(map[Addr]int64, capacity)}
}

// Capacity returns the number of registers.
func (m *MSHRFile) Capacity() int { return m.capacity }

// Expire retires every miss completed at or before now.
func (m *MSHRFile) Expire(now int64) {
	for a, done := range m.inflight {
		if done <= now {
			delete(m.inflight, a)
		}
	}
}

// Outstanding returns the number of misses still in flight at now.
func (m *MSHRFile) Outstanding(now int64) int {
	m.Expire(now)
	return len(m.inflight)
}

// Lookup reports whether block is already in flight and, if so, when its
// fill completes.
func (m *MSHRFile) Lookup(block Addr) (doneAt int64, ok bool) {
	doneAt, ok = m.inflight[block]
	return doneAt, ok
}

// EarliestDone returns the earliest completion cycle among in-flight
// misses, or -1 when none are outstanding. Callers use it to schedule a
// retry after a full-file stall.
func (m *MSHRFile) EarliestDone() int64 {
	earliest := int64(-1)
	for _, d := range m.inflight {
		if earliest < 0 || d < earliest {
			earliest = d
		}
	}
	return earliest
}

// Allocate records a miss for block completing at doneAt. If the block
// is already in flight the request merges (returning the earlier entry's
// completion). If the file is full it returns the earliest cycle at
// which a register frees, and ok=false.
func (m *MSHRFile) Allocate(now int64, block Addr, doneAt int64) (effectiveDone int64, ok bool) {
	m.Expire(now)
	if done, exists := m.inflight[block]; exists {
		m.Merges++
		return done, true
	}
	if len(m.inflight) >= m.capacity {
		m.FullStalls++
		return m.EarliestDone(), false
	}
	m.inflight[block] = doneAt
	m.Allocations++
	return doneAt, true
}
