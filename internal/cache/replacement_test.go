package cache

import (
	"testing"

	"nurapid/internal/mathx"
)

func TestReplPolicyString(t *testing.T) {
	if LRU.String() != "lru" || PseudoLRU.String() != "pseudo-lru" || Random.String() != "random" {
		t.Fatal("policy strings wrong")
	}
	if ReplPolicy(99).String() == "" {
		t.Fatal("unknown policy must render")
	}
}

func TestLRUVictimIsLeastRecent(t *testing.T) {
	r := newLRUReplacer(1, 4)
	for _, w := range []int{0, 1, 2, 3} {
		r.Touch(0, w)
	}
	if v := r.Victim(0); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	r.Touch(0, 0) // now way 1 is oldest
	if v := r.Victim(0); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
}

func TestLRUSetsIndependent(t *testing.T) {
	r := newLRUReplacer(2, 2)
	r.Touch(0, 0)
	r.Touch(0, 1)
	r.Touch(1, 1)
	r.Touch(1, 0)
	if r.Victim(0) != 0 {
		t.Fatal("set 0 victim wrong")
	}
	if r.Victim(1) != 1 {
		t.Fatal("set 1 victim wrong")
	}
}

func TestTreePLRUNeverVictimizesMostRecent(t *testing.T) {
	r := newTreeReplacer(1, 8)
	rng := mathx.NewRNG(1)
	for i := 0; i < 1000; i++ {
		w := rng.Intn(8)
		r.Touch(0, w)
		if v := r.Victim(0); v == w {
			t.Fatalf("pseudo-LRU victimized the most recently used way %d", w)
		}
	}
}

func TestTreePLRUVictimInRange(t *testing.T) {
	r := newTreeReplacer(4, 16)
	rng := mathx.NewRNG(2)
	for i := 0; i < 1000; i++ {
		set := rng.Intn(4)
		r.Touch(set, rng.Intn(16))
		if v := r.Victim(set); v < 0 || v >= 16 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

func TestTreePLRUApproximatesLRU(t *testing.T) {
	// Touch ways in order; the victim must be one not touched recently
	// (way 0..3 half after touching the 4..7 half last).
	r := newTreeReplacer(1, 8)
	for w := 0; w < 8; w++ {
		r.Touch(0, w)
	}
	if v := r.Victim(0); v >= 4 {
		t.Fatalf("victim %d should come from the colder half [0,4)", v)
	}
}

func TestRandomVictimCoversAllWays(t *testing.T) {
	r := &randomReplacer{assoc: 4, rng: mathx.NewRNG(3)}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Victim(0)
		if v < 0 || v >= 4 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random replacement only chose ways %v", seen)
	}
}

func TestNewReplacerUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy must panic")
		}
	}()
	newReplacer(ReplPolicy(42), 1, 2, nil)
}
