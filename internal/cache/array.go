package cache

import (
	"fmt"

	"nurapid/internal/mathx"
)

// Line is one tag-array entry. Aux is an opaque per-line payload for the
// owning organization — NuRAPID stores its forward pointer there.
type Line struct {
	Valid bool
	Dirty bool
	Tag   uint64
	Aux   int64
}

// Array is a set-associative tag array with pluggable replacement. It
// holds no data; organizations pair it with their own data-array model.
//
// The address mapping is precomputed into an Index and true-LRU
// replacement (the common case on every hot path) is devirtualized, so
// a steady-state Lookup/Touch/Fill cycle performs no divisions and no
// interface dispatch.
type Array struct {
	geo   Geometry
	idx   Index
	lines []Line
	repl  replacer
	lru   *lruReplacer // non-nil iff policy == LRU: bypasses the interface
}

// NewArray builds a tag array. rng is consulted only by Random
// replacement and may be nil otherwise.
func NewArray(geo Geometry, policy ReplPolicy, rng *mathx.RNG) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geo:   geo,
		idx:   geo.Index(),
		lines: make([]Line, geo.NumBlocks()),
		repl:  newReplacer(policy, geo.NumSets(), geo.Assoc, rng),
	}
	a.lru, _ = a.repl.(*lruReplacer)
	return a, nil
}

// MustNewArray is NewArray that panics on configuration errors; for
// static configurations validated by tests.
func MustNewArray(geo Geometry, policy ReplPolicy, rng *mathx.RNG) *Array {
	a, err := NewArray(geo, policy, rng)
	if err != nil {
		panic(err)
	}
	return a
}

// Geometry returns the array's address mapping.
func (a *Array) Geometry() Geometry { return a.geo }

// Index returns the precomputed address mapping, for owners that share
// the array's set/tag math on their own hot paths.
func (a *Array) Index() Index { return a.idx }

// Lookup finds addr in its set. On a hit it returns the way and true; it
// does not update recency (callers decide whether a probe counts as use).
//
//nurapid:hotpath
func (a *Array) Lookup(addr Addr) (way int, hit bool) {
	block := addr >> a.idx.blockShift
	set := int(block & a.idx.setMask)
	tag := block >> a.idx.setShift
	base := set * a.idx.assoc
	for w := 0; w < a.idx.assoc; w++ {
		if l := &a.lines[base+w]; l.Valid && l.Tag == tag {
			return w, true
		}
	}
	return -1, false
}

// FindTag locates tag within set — Lookup with the address math hoisted,
// for owners that already computed set and tag from a shared Index.
//
//nurapid:hotpath
func (a *Array) FindTag(set int, tag uint64) (way int, hit bool) {
	base := set * a.idx.assoc
	for w := 0; w < a.idx.assoc; w++ {
		if l := &a.lines[base+w]; l.Valid && l.Tag == tag {
			return w, true
		}
	}
	return -1, false
}

// Touch records a use of (set, way) for replacement.
//
//nurapid:hotpath
func (a *Array) Touch(set, way int) {
	if a.lru != nil {
		a.lru.Touch(set, way)
		return
	}
	a.repl.Touch(set, way)
}

// VictimWay picks the way to evict from set, preferring invalid ways.
//
//nurapid:hotpath
func (a *Array) VictimWay(set int) int {
	base := set * a.idx.assoc
	for w := 0; w < a.idx.assoc; w++ {
		if !a.lines[base+w].Valid {
			return w
		}
	}
	if a.lru != nil {
		return a.lru.Victim(set)
	}
	return a.repl.Victim(set)
}

// Line returns the entry at (set, way) for inspection or mutation.
//
//nurapid:hotpath
func (a *Array) Line(set, way int) *Line {
	if set < 0 || set >= a.idx.sets || way < 0 || way >= a.idx.assoc {
		panic(fmt.Sprintf("cache: line (%d,%d) out of range", set, way))
	}
	return &a.lines[set*a.idx.assoc+way]
}

// Fill installs addr into (set, way), marking it valid and clean, and
// touches it. It returns the line for further decoration (Aux, Dirty).
//
//nurapid:hotpath
func (a *Array) Fill(addr Addr, way int) *Line {
	block := addr >> a.idx.blockShift
	set := int(block & a.idx.setMask)
	l := a.Line(set, way)
	l.Valid = true
	l.Dirty = false
	l.Tag = block >> a.idx.setShift
	l.Aux = 0
	a.Touch(set, way)
	return l
}

// Invalidate clears (set, way).
//
//nurapid:hotpath
func (a *Array) Invalidate(set, way int) {
	l := a.Line(set, way)
	*l = Line{}
}

// CountValid returns the number of valid lines (for tests/metrics).
func (a *Array) CountValid() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].Valid {
			n++
		}
	}
	return n
}

// Eviction describes a block pushed out of a cache.
type Eviction struct {
	Addr  Addr // base byte address of the victim block
	Dirty bool
}

// Outcome summarizes one access to a Cache. It is a plain value — the
// steady-state access path allocates nothing — so the displaced block
// is reported as an Evicted flag plus an inline Victim rather than a
// heap-allocated pointer.
type Outcome struct {
	Hit     bool
	Way     int      // way that served or received the block
	Evicted bool     // a valid block was displaced
	Victim  Eviction // the displaced block; meaningful only when Evicted
}

// Cache is a complete single-level cache: tag array plus fill/writeback
// behavior. It is used directly for the L1s and the baseline L2/L3, and
// by composition inside the NUCA organizations.
type Cache struct {
	arr *Array

	Accesses  int64
	Hits      int64
	Evictions int64
}

// NewCache builds a cache with the given geometry and replacement.
func NewCache(geo Geometry, policy ReplPolicy, rng *mathx.RNG) (*Cache, error) {
	arr, err := NewArray(geo, policy, rng)
	if err != nil {
		return nil, err
	}
	return &Cache{arr: arr}, nil
}

// MustNewCache is NewCache that panics on configuration errors.
func MustNewCache(geo Geometry, policy ReplPolicy, rng *mathx.RNG) *Cache {
	c, err := NewCache(geo, policy, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's address mapping.
func (c *Cache) Geometry() Geometry { return c.arr.Geometry() }

// Array exposes the underlying tag array (for tests and metrics).
//
//nurapid:hotpath
func (c *Cache) Array() *Array { return c.arr }

// Access performs a read or write of addr with allocate-on-miss and
// writeback of dirty victims.
//
//nurapid:hotpath
func (c *Cache) Access(addr Addr, write bool) Outcome {
	c.Accesses++
	idx := &c.arr.idx
	set := idx.SetIndex(addr)
	if way, hit := c.arr.Lookup(addr); hit {
		c.Hits++
		c.arr.Touch(set, way)
		if write {
			c.arr.Line(set, way).Dirty = true
		}
		return Outcome{Hit: true, Way: way}
	}
	way := c.arr.VictimWay(set)
	out := Outcome{Way: way}
	if l := c.arr.Line(set, way); l.Valid {
		out.Evicted = true
		out.Victim = Eviction{Addr: c.geoAddrOf(set, l.Tag), Dirty: l.Dirty}
		c.Evictions++
	}
	l := c.arr.Fill(addr, way)
	if write {
		l.Dirty = true
	}
	return out
}

// geoAddrOf reconstructs a victim's base address from the precomputed
// index (shift/or instead of the Geometry method's multiplications by
// recomputed set counts).
func (c *Cache) geoAddrOf(set int, tag uint64) Addr {
	ix := &c.arr.idx
	return ((tag << ix.setShift) | uint64(set)) << ix.blockShift
}

// Invalidate drops addr from the cache when resident, reporting whether
// a line was dropped and whether it was dirty. The dropped line is not
// written back: the caller decides what a stale copy means (internal/cmp
// uses this for its coherence-lite shoot-down, where the writer's copy
// supersedes the invalidated one).
//
//nurapid:hotpath
func (c *Cache) Invalidate(addr Addr) (dropped, dirty bool) {
	way, hit := c.arr.Lookup(addr)
	if !hit {
		return false, false
	}
	set := c.arr.idx.SetIndex(addr)
	dirty = c.arr.Line(set, way).Dirty
	c.arr.Invalidate(set, way)
	return true, dirty
}

// Contains reports whether addr is currently resident (no side effects).
func (c *Cache) Contains(addr Addr) bool {
	_, hit := c.arr.Lookup(addr)
	return hit
}

// HitRate returns hits/accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}
