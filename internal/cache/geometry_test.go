package cache

import (
	"testing"
	"testing/quick"
)

func geo64k() Geometry {
	return Geometry{CapacityBytes: 64 << 10, BlockBytes: 32, Assoc: 2}
}

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{
		geo64k(),
		{CapacityBytes: 1 << 20, BlockBytes: 128, Assoc: 8},
		{CapacityBytes: 8 << 20, BlockBytes: 128, Assoc: 16},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("%+v should validate: %v", g, err)
		}
	}
	bad := []Geometry{
		{},
		{CapacityBytes: 64 << 10, BlockBytes: 33, Assoc: 2},
		{CapacityBytes: 100, BlockBytes: 32, Assoc: 2},
		{CapacityBytes: 96, BlockBytes: 32, Assoc: 2},  // 3 blocks, assoc 2
		{CapacityBytes: 192, BlockBytes: 32, Assoc: 2}, // 3 sets
		{CapacityBytes: 64 << 10, BlockBytes: 32, Assoc: 0},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%+v should be rejected", g)
		}
	}
}

func TestGeometryCounts(t *testing.T) {
	g := Geometry{CapacityBytes: 1 << 20, BlockBytes: 128, Assoc: 8}
	if g.NumBlocks() != 8192 {
		t.Fatalf("NumBlocks = %d, want 8192", g.NumBlocks())
	}
	if g.NumSets() != 1024 {
		t.Fatalf("NumSets = %d, want 1024", g.NumSets())
	}
}

func TestSetIndexTagRoundtrip(t *testing.T) {
	g := Geometry{CapacityBytes: 1 << 20, BlockBytes: 128, Assoc: 8}
	f := func(raw uint64) bool {
		a := raw % (1 << 44)
		base := a / Addr(g.BlockBytes) * Addr(g.BlockBytes)
		return g.AddrOf(g.SetIndex(a), g.Tag(a)) == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameBlockSameSet(t *testing.T) {
	g := geo64k()
	a := Addr(0x12345678) / Addr(g.BlockBytes) * Addr(g.BlockBytes)
	for off := 0; off < g.BlockBytes; off++ {
		if g.SetIndex(a+Addr(off)) != g.SetIndex(a) || g.Tag(a+Addr(off)) != g.Tag(a) {
			t.Fatalf("offset %d changed set/tag", off)
		}
	}
}

func TestConsecutiveBlocksDifferentSets(t *testing.T) {
	g := geo64k()
	a := Addr(0)
	b := a + Addr(g.BlockBytes)
	if g.SetIndex(a) == g.SetIndex(b) {
		t.Fatal("consecutive blocks should map to consecutive sets")
	}
}
