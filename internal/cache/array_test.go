package cache

import (
	"testing"
	"testing/quick"

	"nurapid/internal/mathx"
)

func smallGeo() Geometry {
	return Geometry{CapacityBytes: 4096, BlockBytes: 64, Assoc: 4} // 16 sets
}

func TestNewArrayRejectsBadGeometry(t *testing.T) {
	if _, err := NewArray(Geometry{}, LRU, nil); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
}

func TestMustNewArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewArray must panic on bad geometry")
		}
	}()
	MustNewArray(Geometry{}, LRU, nil)
}

func TestArrayLookupMissOnEmpty(t *testing.T) {
	a := MustNewArray(smallGeo(), LRU, nil)
	if _, hit := a.Lookup(0x1000); hit {
		t.Fatal("empty array must miss")
	}
}

func TestArrayFillThenHit(t *testing.T) {
	a := MustNewArray(smallGeo(), LRU, nil)
	addr := Addr(0x1040)
	set := a.Geometry().SetIndex(addr)
	way := a.VictimWay(set)
	a.Fill(addr, way)
	gotWay, hit := a.Lookup(addr)
	if !hit || gotWay != way {
		t.Fatalf("lookup after fill: way=%d hit=%v", gotWay, hit)
	}
}

func TestArrayVictimPrefersInvalid(t *testing.T) {
	a := MustNewArray(smallGeo(), LRU, nil)
	addr := Addr(0)
	set := a.Geometry().SetIndex(addr)
	a.Fill(addr, 0)
	if v := a.VictimWay(set); v == 0 {
		t.Fatal("victim must prefer an invalid way over the filled one")
	}
}

func TestArrayInvalidate(t *testing.T) {
	a := MustNewArray(smallGeo(), LRU, nil)
	addr := Addr(0x40)
	set := a.Geometry().SetIndex(addr)
	a.Fill(addr, 1)
	a.Invalidate(set, 1)
	if _, hit := a.Lookup(addr); hit {
		t.Fatal("invalidated line must miss")
	}
	if a.CountValid() != 0 {
		t.Fatal("CountValid must be 0 after invalidate")
	}
}

func TestArrayLinePanicsOutOfRange(t *testing.T) {
	a := MustNewArray(smallGeo(), LRU, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Line must panic")
		}
	}()
	a.Line(0, 99)
}

func TestArrayFillResetsState(t *testing.T) {
	a := MustNewArray(smallGeo(), LRU, nil)
	l := a.Fill(0x80, 2)
	l.Dirty = true
	l.Aux = 77
	l2 := a.Fill(0x80+Addr(a.Geometry().CapacityBytes), 2) // same set, new tag
	if l2.Dirty || l2.Aux != 0 {
		t.Fatal("Fill must reset Dirty and Aux")
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := MustNewCache(smallGeo(), LRU, nil)
	o := c.Access(0x100, false)
	if o.Hit {
		t.Fatal("first access must miss")
	}
	o = c.Access(0x100, false)
	if !o.Hit {
		t.Fatal("second access must hit")
	}
	if c.Accesses != 2 || c.Hits != 1 {
		t.Fatalf("counters: accesses=%d hits=%d", c.Accesses, c.Hits)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
}

func TestCacheSameBlockDifferentOffsetHits(t *testing.T) {
	c := MustNewCache(smallGeo(), LRU, nil)
	c.Access(0x100, false)
	if o := c.Access(0x13F, false); !o.Hit {
		t.Fatal("access within the same 64-B block must hit")
	}
}

func TestCacheEvictionAndWriteback(t *testing.T) {
	g := smallGeo() // 16 sets, 4 ways
	c := MustNewCache(g, LRU, nil)
	setStride := Addr(g.NumSets() * g.BlockBytes)
	// Fill all 4 ways of set 0, dirtying the first.
	c.Access(0*setStride, true)
	for i := 1; i < 4; i++ {
		c.Access(Addr(i)*setStride, false)
	}
	// Fifth block in set 0 evicts the LRU (the dirty first one).
	o := c.Access(4*setStride, false)
	if o.Hit {
		t.Fatal("conflict access must miss")
	}
	if !o.Evicted {
		t.Fatal("eviction expected")
	}
	if !o.Victim.Dirty {
		t.Fatal("victim was written; eviction must be dirty")
	}
	if o.Victim.Addr != 0 {
		t.Fatalf("victim address %#x, want 0", o.Victim.Addr)
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestCacheWriteHitSetsDirty(t *testing.T) {
	g := smallGeo()
	c := MustNewCache(g, LRU, nil)
	c.Access(0x200, false)
	c.Access(0x200, true) // write hit dirties the line
	setStride := Addr(g.NumSets() * g.BlockBytes)
	base := Addr(0x200) / setStride * setStride // not needed; evict via conflicts
	_ = base
	set := g.SetIndex(0x200)
	for i := 1; i <= 4; i++ {
		a := Addr(0x200) + Addr(i)*setStride
		if g.SetIndex(a) != set {
			t.Fatal("stride math wrong")
		}
		o := c.Access(a, false)
		if o.Evicted && o.Victim.Addr == 0x200 {
			if !o.Victim.Dirty {
				t.Fatal("written block must write back dirty")
			}
			return
		}
	}
	t.Fatal("written block was never evicted")
}

func TestCacheContains(t *testing.T) {
	c := MustNewCache(smallGeo(), LRU, nil)
	if c.Contains(0x300) {
		t.Fatal("empty cache cannot contain")
	}
	c.Access(0x300, false)
	if !c.Contains(0x300) {
		t.Fatal("must contain after access")
	}
	if c.Accesses != 1 {
		t.Fatal("Contains must not count as an access")
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	g := smallGeo()
	c := MustNewCache(g, Random, mathx.NewRNG(5))
	rng := mathx.NewRNG(6)
	for i := 0; i < 10000; i++ {
		c.Access(Addr(rng.Intn(1<<20)), rng.Bool(0.3))
	}
	if v := c.Array().CountValid(); v > g.NumBlocks() {
		t.Fatalf("%d valid lines exceed capacity %d", v, g.NumBlocks())
	}
}

func TestCacheQuickRecentAddressResident(t *testing.T) {
	// Property: an address accessed with no intervening accesses to its
	// set is still resident.
	g := smallGeo()
	c := MustNewCache(g, LRU, nil)
	f := func(raw uint32) bool {
		a := Addr(raw)
		c.Access(a, false)
		return c.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCache must panic on bad geometry")
		}
	}()
	MustNewCache(Geometry{}, LRU, nil)
}
