package cache

import "testing"

func TestMSHRAllocateAndExpire(t *testing.T) {
	m := NewMSHRFile(2)
	if m.Capacity() != 2 {
		t.Fatal("capacity accessor wrong")
	}
	done, ok := m.Allocate(0, 100, 50)
	if !ok || done != 50 {
		t.Fatalf("allocate: done=%d ok=%v", done, ok)
	}
	if m.Outstanding(0) != 1 {
		t.Fatal("one miss must be outstanding")
	}
	if m.Outstanding(50) != 0 {
		t.Fatal("miss must retire at its completion cycle")
	}
}

func TestMSHRMerge(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(0, 100, 60)
	done, ok := m.Allocate(5, 100, 90)
	if !ok || done != 60 {
		t.Fatalf("merge must return the original completion 60, got %d ok=%v", done, ok)
	}
	if m.Merges != 1 || m.Allocations != 1 {
		t.Fatalf("merges=%d allocations=%d", m.Merges, m.Allocations)
	}
	if m.Outstanding(10) != 1 {
		t.Fatal("merged request must not consume a second register")
	}
}

func TestMSHRFullStall(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(0, 1, 40)
	m.Allocate(0, 2, 70)
	free, ok := m.Allocate(10, 3, 100)
	if ok {
		t.Fatal("full file must refuse")
	}
	if free != 40 {
		t.Fatalf("earliest free cycle %d, want 40", free)
	}
	if m.FullStalls != 1 {
		t.Fatalf("FullStalls = %d", m.FullStalls)
	}
	// After the first entry retires, allocation succeeds.
	if _, ok := m.Allocate(40, 3, 100); !ok {
		t.Fatal("allocation must succeed once a register frees")
	}
}

func TestMSHRLookup(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(0, 7, 33)
	if done, ok := m.Lookup(7); !ok || done != 33 {
		t.Fatalf("lookup: done=%d ok=%v", done, ok)
	}
	if _, ok := m.Lookup(8); ok {
		t.Fatal("lookup of absent block must fail")
	}
}

func TestMSHRZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewMSHRFile(0)
}
