// Package cache provides the generic set-associative building blocks the
// three L2 organizations (conventional, D-NUCA, NuRAPID) are assembled
// from: address geometry, tag arrays with pluggable replacement, whole
// caches with dirty-victim writeback, and MSHR files.
package cache

import (
	"fmt"

	"nurapid/internal/mathx"
)

// Addr is a physical byte address.
type Addr = uint64

// Geometry fixes the address mapping of a set-associative structure.
type Geometry struct {
	CapacityBytes int64
	BlockBytes    int
	Assoc         int
}

// Validate reports whether the geometry is internally consistent: all
// fields positive powers of two (blocks and sets), associativity dividing
// the block count.
func (g Geometry) Validate() error {
	if g.CapacityBytes <= 0 || g.BlockBytes <= 0 || g.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", g)
	}
	if !mathx.IsPow2(int64(g.BlockBytes)) {
		return fmt.Errorf("cache: block size %d not a power of two", g.BlockBytes)
	}
	blocks := g.CapacityBytes / int64(g.BlockBytes)
	if blocks*int64(g.BlockBytes) != g.CapacityBytes {
		return fmt.Errorf("cache: capacity %d not a multiple of block size %d",
			g.CapacityBytes, g.BlockBytes)
	}
	if blocks%int64(g.Assoc) != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by associativity %d", blocks, g.Assoc)
	}
	if !mathx.IsPow2(blocks / int64(g.Assoc)) {
		return fmt.Errorf("cache: set count %d not a power of two", blocks/int64(g.Assoc))
	}
	return nil
}

// NumBlocks returns the total number of block frames.
func (g Geometry) NumBlocks() int {
	return int(g.CapacityBytes / int64(g.BlockBytes))
}

// NumSets returns the number of sets.
func (g Geometry) NumSets() int {
	return g.NumBlocks() / g.Assoc
}

// BlockAddr returns the block-granular address (byte address with the
// offset bits stripped).
func (g Geometry) BlockAddr(a Addr) Addr {
	return a / Addr(g.BlockBytes)
}

// SetIndex returns the set that address a maps to.
func (g Geometry) SetIndex(a Addr) int {
	return int(g.BlockAddr(a) % Addr(g.NumSets()))
}

// Tag returns the tag of address a.
func (g Geometry) Tag(a Addr) uint64 {
	return uint64(g.BlockAddr(a) / Addr(g.NumSets()))
}

// AddrOf reconstructs the base byte address of a block from its set and
// tag — the inverse of SetIndex/Tag, used when evicting.
func (g Geometry) AddrOf(set int, tag uint64) Addr {
	return (Addr(tag)*Addr(g.NumSets()) + Addr(set)) * Addr(g.BlockBytes)
}

// Index is the precomputed address mapping of a validated Geometry:
// block size and set count are powers of two (Validate enforces both),
// so the divisions in SetIndex/Tag reduce to shifts and masks. Hot
// paths build one Index up front instead of re-deriving set counts on
// every access; the methods are small enough to inline.
type Index struct {
	blockShift uint8
	setShift   uint8
	setMask    uint64
	sets       int
	assoc      int
}

// Index precomputes the geometry's address mapping. The geometry must
// have been validated; Index panics on a non-power-of-two block size or
// set count rather than silently mis-mapping addresses.
func (g Geometry) Index() Index {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("cache: Index on invalid geometry: %v", err))
	}
	return Index{
		blockShift: uint8(mathx.Log2(int64(g.BlockBytes))),
		setShift:   uint8(mathx.Log2(int64(g.NumSets()))),
		setMask:    uint64(g.NumSets() - 1),
		sets:       g.NumSets(),
		assoc:      g.Assoc,
	}
}

// NumSets returns the precomputed set count.
func (ix Index) NumSets() int { return ix.sets }

// Assoc returns the associativity.
func (ix Index) Assoc() int { return ix.assoc }

// BlockAddr returns the block-granular address.
//
//nurapid:hotpath
func (ix Index) BlockAddr(a Addr) Addr { return a >> ix.blockShift }

// SetIndex returns the set that address a maps to.
//
//nurapid:hotpath
func (ix Index) SetIndex(a Addr) int { return int((a >> ix.blockShift) & ix.setMask) }

// Tag returns the tag of address a.
//
//nurapid:hotpath
func (ix Index) Tag(a Addr) uint64 { return (a >> ix.blockShift) >> ix.setShift }
