package cache

import (
	"fmt"

	"nurapid/internal/mathx"
)

// ReplPolicy selects the victim-choice algorithm of a tag array.
type ReplPolicy int

const (
	// LRU is true least-recently-used, tracked with access stamps.
	LRU ReplPolicy = iota
	// PseudoLRU is the tree-based approximation used where true LRU
	// hardware would be too large.
	PseudoLRU
	// Random picks victims uniformly at random.
	Random
)

func (p ReplPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case PseudoLRU:
		return "pseudo-lru"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("ReplPolicy(%d)", int(p))
	}
}

// replacer tracks recency for one tag array and picks victims.
type replacer interface {
	// Touch records an access to (set, way).
	//nurapid:hotpath
	Touch(set, way int)
	// Victim returns the way to evict from set.
	//nurapid:hotpath
	Victim(set int) int
}

func newReplacer(policy ReplPolicy, sets, assoc int, rng *mathx.RNG) replacer {
	switch policy {
	case LRU:
		return newLRUReplacer(sets, assoc)
	case PseudoLRU:
		return newTreeReplacer(sets, assoc)
	case Random:
		if rng == nil {
			rng = mathx.NewRNG(0xCAC4E)
		}
		return &randomReplacer{assoc: assoc, rng: rng}
	default:
		panic("cache: unknown replacement policy")
	}
}

// lruReplacer keeps a per-line last-use stamp; the victim is the line
// with the smallest stamp.
type lruReplacer struct {
	assoc  int
	clock  uint64
	stamps []uint64
}

func newLRUReplacer(sets, assoc int) *lruReplacer {
	return &lruReplacer{assoc: assoc, stamps: make([]uint64, sets*assoc)}
}

func (r *lruReplacer) Touch(set, way int) {
	r.clock++
	r.stamps[set*r.assoc+way] = r.clock
}

func (r *lruReplacer) Victim(set int) int {
	base := set * r.assoc
	victim, best := 0, r.stamps[base]
	for w := 1; w < r.assoc; w++ {
		if s := r.stamps[base+w]; s < best {
			victim, best = w, s
		}
	}
	return victim
}

// treeReplacer is binary-tree pseudo-LRU: one bit per internal node
// points away from the most recent access. Associativity must be a power
// of two (padded up internally otherwise).
type treeReplacer struct {
	assoc int
	width int // power-of-two tree width >= assoc
	bits  [][]bool
}

func newTreeReplacer(sets, assoc int) *treeReplacer {
	width := 1
	for width < assoc {
		width *= 2
	}
	r := &treeReplacer{assoc: assoc, width: width, bits: make([][]bool, sets)}
	for i := range r.bits {
		r.bits[i] = make([]bool, width) // node 1..width-1 used; index 0 spare
	}
	return r
}

func (r *treeReplacer) Touch(set, way int) {
	node := 1
	lo, hi := 0, r.width
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			r.bits[set][node] = true // point away: right is older
			node = 2 * node
			hi = mid
		} else {
			r.bits[set][node] = false
			node = 2*node + 1
			lo = mid
		}
	}
}

func (r *treeReplacer) Victim(set int) int {
	node := 1
	lo, hi := 0, r.width
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.bits[set][node] {
			node = 2*node + 1
			lo = mid
		} else {
			node = 2 * node
			hi = mid
		}
	}
	if lo >= r.assoc {
		// Padded way: fall back to way 0 (only possible when assoc is
		// not a power of two, which the simulated configs never use).
		return 0
	}
	return lo
}

// randomReplacer picks uniformly among the ways.
type randomReplacer struct {
	assoc int
	rng   *mathx.RNG
}

func (r *randomReplacer) Touch(int, int) {}

func (r *randomReplacer) Victim(int) int { return r.rng.Intn(r.assoc) }
