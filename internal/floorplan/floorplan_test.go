package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLShapedPlanSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		p := NewLShapedPlan(8, n)
		if len(p.Groups) != n {
			t.Fatalf("plan(8,%d) has %d groups", n, len(p.Groups))
		}
		if got := p.GroupMB(); got != 8.0/float64(n) {
			t.Fatalf("GroupMB = %v, want %v", got, 8.0/float64(n))
		}
	}
}

func TestLShapedPlanInvalid(t *testing.T) {
	for _, tc := range [][2]int{{8, 3}, {8, 0}, {0, 2}, {-8, 2}, {8, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLShapedPlan(%d,%d) must panic", tc[0], tc[1])
				}
			}()
			NewLShapedPlan(tc[0], tc[1])
		}()
	}
}

func TestRoutesMonotone(t *testing.T) {
	// Route length must be nondecreasing in latency order: group i is
	// defined as the i-th closest.
	for _, n := range []int{2, 4, 8} {
		routes := NewLShapedPlan(8, n).Routes()
		for i := 1; i < len(routes); i++ {
			if routes[i] < routes[i-1] {
				t.Fatalf("n=%d: route[%d]=%v < route[%d]=%v", n, i, routes[i], i-1, routes[i-1])
			}
		}
	}
}

func TestFarthestRouteGrowsWithGroupCount(t *testing.T) {
	// Paper Sec. 5.1: "as the number of d-groups increases, the latency
	// of the slowest megabyte increases". Our reconstruction preserves
	// this for the 8-group case; 2 vs 4 groups tie at the far corner.
	r2 := NewLShapedPlan(8, 2).Routes()
	r4 := NewLShapedPlan(8, 4).Routes()
	r8 := NewLShapedPlan(8, 8).Routes()
	if r8[len(r8)-1] <= r4[len(r4)-1] {
		t.Fatalf("slowest route: 8 groups %v must exceed 4 groups %v",
			r8[len(r8)-1], r4[len(r4)-1])
	}
	if r4[len(r4)-1] < r2[len(r2)-1] {
		t.Fatalf("slowest route: 4 groups %v must not be below 2 groups %v",
			r4[len(r4)-1], r2[len(r2)-1])
	}
}

func TestClosestRouteShrinksWithGroupCount(t *testing.T) {
	// Smaller d-groups put the closest data closer to the core.
	r2 := NewLShapedPlan(8, 2).Routes()
	r4 := NewLShapedPlan(8, 4).Routes()
	r8 := NewLShapedPlan(8, 8).Routes()
	if !(r8[0] < r4[0] && r4[0] < r2[0]) {
		t.Fatalf("closest routes must shrink: got %v, %v, %v", r2[0], r4[0], r8[0])
	}
}

func TestRelativeRoutes(t *testing.T) {
	p := NewLShapedPlan(8, 4)
	rel := p.RelativeRoutes()
	if rel[0] != 0 {
		t.Fatalf("relative route of group 0 must be 0, got %v", rel[0])
	}
	abs := p.Routes()
	for i := range rel {
		if math.Abs(rel[i]-(abs[i]-abs[0])) > 1e-12 {
			t.Fatalf("relative route %d inconsistent", i)
		}
	}
}

func TestGroupArms(t *testing.T) {
	p := NewLShapedPlan(8, 4)
	if p.Groups[0].Arm != ArmCorner {
		t.Fatal("group 0 must sit at the corner")
	}
	// Subsequent groups alternate arms.
	if p.Groups[1].Arm != ArmX || p.Groups[2].Arm != ArmY || p.Groups[3].Arm != ArmX {
		t.Fatalf("arms = %v %v %v, want alternating x/y/x",
			p.Groups[1].Arm, p.Groups[2].Arm, p.Groups[3].Arm)
	}
}

func TestArmString(t *testing.T) {
	if ArmCorner.String() != "corner" || ArmX.String() != "arm-x" || ArmY.String() != "arm-y" {
		t.Fatal("Arm.String wrong")
	}
	if Arm(9).String() == "" {
		t.Fatal("unknown arm must still render")
	}
}

func TestGroupExtentsCoverArea(t *testing.T) {
	// Property: total extent x arm width == total area, for any valid split.
	f := func(k uint8) bool {
		n := 1 << (k % 4) // 1, 2, 4, 8
		p := NewLShapedPlan(8, n)
		total := 0.0
		for _, g := range p.Groups {
			total += g.Extent * armWidth
		}
		return math.Abs(total-8.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNUCAGridShape(t *testing.T) {
	g := NewNUCAGrid(8, 64)
	if g.NumBanks() != 128 {
		t.Fatalf("NumBanks = %d, want 128", g.NumBanks())
	}
	if g.Cols != 16 || g.Rows != 8 {
		t.Fatalf("grid = %dx%d, want 16x8", g.Cols, g.Rows)
	}
}

func TestNUCAGridInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid grid must panic")
		}
	}()
	NewNUCAGrid(8, 1000) // does not divide evenly
}

func TestBankRouteRange(t *testing.T) {
	g := NewNUCAGrid(8, 64)
	for b := 0; b < g.NumBanks(); b++ {
		r := g.BankRoute(b)
		if r <= 0 {
			t.Fatalf("bank %d route %v must be positive", b, r)
		}
	}
	// Farthest corner bank must be farther than any row-0 bank.
	far := g.BankRoute(g.NumBanks() - 1)
	for b := 0; b < g.Cols; b++ {
		if g.BankRoute(b) >= far {
			t.Fatalf("row-0 bank %d route %v >= far corner %v", b, g.BankRoute(b), far)
		}
	}
}

func TestBankRoutePanicsOutOfRange(t *testing.T) {
	g := NewNUCAGrid(8, 64)
	for _, b := range []int{-1, g.NumBanks()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BankRoute(%d) must panic", b)
				}
			}()
			g.BankRoute(b)
		}()
	}
}

func TestBanksByDistanceSorted(t *testing.T) {
	g := NewNUCAGrid(8, 64)
	order := g.BanksByDistance()
	if len(order) != g.NumBanks() {
		t.Fatalf("order has %d entries", len(order))
	}
	seen := make(map[int]bool)
	prev := -1.0
	for _, b := range order {
		if seen[b] {
			t.Fatalf("bank %d appears twice", b)
		}
		seen[b] = true
		r := g.BankRoute(b)
		if r < prev {
			t.Fatalf("order not sorted: %v after %v", r, prev)
		}
		prev = r
	}
}

func TestNUCAClosestBankNearerThanNuRAPIDGroup(t *testing.T) {
	// The paper: D-NUCA's small banks allow access to the closest data at
	// least as fast as NuRAPID's large d-groups (the rest of D-NUCA's
	// latency edge comes from parallel tag-data access, not routing).
	g := NewNUCAGrid(8, 64)
	nearest := g.BankRoute(g.BanksByDistance()[0])
	p := NewLShapedPlan(8, 8)
	if nearest > p.Routes()[0] {
		t.Fatalf("closest NUCA bank %v must not be farther than closest 1-MB d-group %v",
			nearest, p.Routes()[0])
	}
}
