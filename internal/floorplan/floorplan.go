// Package floorplan models the physical placement of cache data arrays.
//
// The paper's latency and energy numbers are dominated by global wires:
// how far a d-group (or a NUCA bank) sits from the processor core, and
// how much closer structure the route must detour around. This package
// captures just enough geometry to reproduce those effects:
//
//   - NuRAPID uses an L-shaped floorplan (paper Figure 3b): the core sits
//     in the unoccupied corner and d-groups are packed greedily onto the
//     two arms in latency order.
//   - D-NUCA uses an aggressive rectangular bank grid (paper Figure 3a):
//     128 small banks tiled in front of the core.
//
// Distances are expressed in "units", where one unit is the side length
// of a 1-MB square data array at the modeled technology node (70 nm).
// The cacti package converts units to cycles and nanojoules.
package floorplan

import (
	"fmt"
	"math"
)

// Arm identifies which arm of the L-shaped floorplan a d-group occupies.
type Arm int

const (
	// ArmCorner is the position abutting the core (group 0 only).
	ArmCorner Arm = iota
	// ArmX extends along the x axis.
	ArmX
	// ArmY extends along the y axis.
	ArmY
)

func (a Arm) String() string {
	switch a {
	case ArmCorner:
		return "corner"
	case ArmX:
		return "arm-x"
	case ArmY:
		return "arm-y"
	default:
		return fmt.Sprintf("Arm(%d)", int(a))
	}
}

// armWidth is the width of each arm of the L in units. An 8-MB cache
// packed into an L with 2-unit-wide arms has arms about 2 units by 4
// units each, matching the aspect ratio of Figure 3(b).
const armWidth = 2.0

// detourPerCrossing is the extra route length (in units) added for every
// closer d-group the wires must route around. It models switch/turn
// overhead and congestion: with more, smaller d-groups the route to the
// farthest group is progressively less direct, which is why the paper's
// Table 4 shows the slowest megabyte getting slower as the d-group count
// grows.
const detourPerCrossing = 0.4

// Group is the placement of one d-group on the L-shaped floorplan.
type Group struct {
	Index  int     // latency order; 0 is closest to the core
	Arm    Arm     // which arm holds the group
	Offset float64 // units from the core to the group's near edge
	Extent float64 // units of arm length the group occupies
	Route  float64 // wire route length, units, core to group centroid
}

// Plan is a complete NuRAPID floorplan: n equal d-groups packed onto the
// two arms of the L in latency order.
type Plan struct {
	TotalMB int
	Groups  []Group
}

// NewLShapedPlan packs nGroups equal-capacity d-groups of an 8-MB-class
// cache (totalMB) onto an L-shaped floorplan and returns their route
// distances in latency order. It panics unless nGroups divides totalMB
// evenly and both are positive, since fractional-megabyte d-groups are
// outside the paper's design space.
func NewLShapedPlan(totalMB, nGroups int) *Plan {
	if totalMB <= 0 || nGroups <= 0 || totalMB%nGroups != 0 {
		panic(fmt.Sprintf("floorplan: invalid plan %d MB / %d groups", totalMB, nGroups))
	}
	groupMB := float64(totalMB) / float64(nGroups)
	// Arm length consumed by one group: area / arm width.
	extent := groupMB / armWidth

	p := &Plan{TotalMB: totalMB, Groups: make([]Group, nGroups)}

	// Group 0 occupies the corner region adjacent to the core; its route
	// is just half its own extent. Both arms then start beyond it.
	p.Groups[0] = Group{Index: 0, Arm: ArmCorner, Offset: 0, Extent: extent, Route: extent / 2}
	frontier := map[Arm]float64{ArmX: extent, ArmY: extent}
	next := ArmX
	for i := 1; i < nGroups; i++ {
		arm := next
		if next == ArmX {
			next = ArmY
		} else {
			next = ArmX
		}
		off := frontier[arm]
		frontier[arm] = off + extent
		route := off + extent/2 + detourPerCrossing*float64(i)
		p.Groups[i] = Group{Index: i, Arm: arm, Offset: off, Extent: extent, Route: route}
	}
	return p
}

// Routes returns the per-group route lengths in latency order.
func (p *Plan) Routes() []float64 {
	out := make([]float64, len(p.Groups))
	for i, g := range p.Groups {
		out[i] = g.Route
	}
	return out
}

// RelativeRoutes returns route lengths measured from the closest group's
// centroid, which is the wire length the paper's Table 2 energy entries
// charge beyond the base array access ("includes routing").
func (p *Plan) RelativeRoutes() []float64 {
	out := p.Routes()
	base := out[0]
	for i := range out {
		out[i] -= base
	}
	return out
}

// GroupMB returns the capacity of each d-group in megabytes.
func (p *Plan) GroupMB() float64 {
	return float64(p.TotalMB) / float64(len(p.Groups))
}

// NUCAGrid is the rectangular D-NUCA bank tiling of Figure 3(a): cols
// columns of rows banks each, the core centered under the first row.
type NUCAGrid struct {
	Cols, Rows int
	BankMB     float64
}

// NewNUCAGrid builds the grid for a totalMB cache of banks×bankKB banks.
// The paper's configuration is 8 MB in 128 64-KB banks, tiled 16 wide and
// 8 deep in front of the core.
func NewNUCAGrid(totalMB int, bankKB int) *NUCAGrid {
	banks := totalMB * 1024 / bankKB
	if banks <= 0 || totalMB*1024%bankKB != 0 {
		panic(fmt.Sprintf("floorplan: invalid NUCA grid %d MB / %d KB banks", totalMB, bankKB))
	}
	// Tile twice as wide as deep, matching Figure 3(a)'s 16x8 aspect.
	cols := 1
	for cols*cols < 2*banks {
		cols *= 2
	}
	rows := banks / cols
	for rows*cols != banks {
		cols /= 2
		rows = banks / cols
	}
	return &NUCAGrid{Cols: cols, Rows: rows, BankMB: float64(bankKB) / 1024}
}

// NumBanks returns the number of banks in the grid.
func (g *NUCAGrid) NumBanks() int { return g.Cols * g.Rows }

// BankRoute returns the Manhattan wire route (in units) from the core to
// bank b. Banks are numbered row-major, row 0 nearest the core; the core
// sits centered below row 0, so horizontal distance is measured from the
// grid's midline. D-NUCA's rectangular floorplan is more aggressive than
// the L: no detour term, direct Manhattan routing.
func (g *NUCAGrid) BankRoute(b int) float64 {
	if b < 0 || b >= g.NumBanks() {
		panic(fmt.Sprintf("floorplan: bank %d out of range", b))
	}
	side := math.Sqrt(g.BankMB) // units
	row := b / g.Cols
	col := b % g.Cols
	dx := math.Abs(float64(col)+0.5-float64(g.Cols)/2) * side
	dy := (float64(row) + 0.5) * side
	return dx + dy
}

// BanksByDistance returns bank indices sorted from nearest to farthest
// (ties broken by index), which defines D-NUCA's latency ordering of the
// ways within a bank set.
func (g *NUCAGrid) BanksByDistance() []int {
	idx := make([]int, g.NumBanks())
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort keeps this dependency-free and the grid is small.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			ra, rb := g.BankRoute(a), g.BankRoute(b)
			if ra > rb || (ra == rb && a > b) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	return idx
}
