// Package memsys defines the contract between the CPU model and the
// lower-level cache organizations (conventional hierarchy, D-NUCA,
// NuRAPID), plus the two pieces they all share: the main-memory model and
// the port-occupancy scoreboard.
//
// All timing flows through explicit cycle numbers: the CPU owns the
// clock, issues a typed request (Access(Req{Now: now, ...})), and the
// organization returns when the data will be available. Organizations
// update their internal state atomically at access time and model
// contention with Port scoreboards. Req.Core identifies the requesting
// core, so shared (CMP) front ends can attribute traffic, fairness, and
// contention per requestor without side channels.
package memsys

import "nurapid/internal/stats"

// AccessResult reports the outcome of one lower-level cache access.
type AccessResult struct {
	// Hit is true when the block was resident.
	Hit bool
	// DoneAt is the cycle at which the requested data is available.
	DoneAt int64
	// Group is the distance-group (or latency bank-group) that served a
	// hit, in latency order; -1 for a miss.
	Group int
}

// Req is one lower-level cache request: the issue cycle, the block
// address, the access direction, and the identity of the requestor.
// Core is the issuing core's id (0 in single-core simulations); shared
// organizations use it for per-core attribution, fairness accounting,
// and contention queuing, and it is carried into the obs event stream.
//
// Gap is only meaningful in batched sequences (AccessMany): it is the
// idle think time, in cycles, inserted after this request completes
// before the next one issues. Access ignores it.
type Req struct {
	Now   int64
	Addr  uint64
	Write bool
	Core  int
	Gap   int64
}

// Request is the pre-Req batched element type. Its field set (Addr,
// Write, Gap) is a subset of Req, so existing keyed literals compile
// unchanged.
//
// Deprecated: use Req.
type Request = Req

// LowerLevel is the single interface every L2 organization implements.
// Access fully handles the request, including fetching from memory on a
// miss and any internal block movement (promotions, demotions, swaps).
type LowerLevel interface {
	// Name identifies the organization in experiment output.
	Name() string
	// Access performs the read or write described by req, issued at
	// cycle req.Now by core req.Core.
	//nurapid:hotpath
	Access(req Req) AccessResult
	// Distribution returns where accesses were served (per latency
	// group, plus misses) — the paper's Figures 4, 5, 7 data.
	Distribution() *stats.Distribution
	// EnergyNJ returns the total dynamic energy consumed so far,
	// including tag arrays, data arrays, wires, and search structures,
	// but excluding main memory.
	EnergyNJ() float64
	// Counters exposes the organization's event counts (swaps,
	// demotions, writebacks, d-group accesses, ...).
	Counters() *stats.Counters
}

// Access issues one request in the old positional form.
//
// Deprecated: build a Req and call l2.Access directly:
// l2.Access(Req{Now: now, Addr: addr, Write: write}).
//
//nurapid:coldpath
func Access(l2 LowerLevel, now int64, addr uint64, write bool) AccessResult {
	return l2.Access(Req{Now: now, Addr: addr, Write: write})
}

// BatchAccessor is implemented by organizations that provide a
// specialized batched replay loop. AccessMany must be observably
// identical to issuing each request through Access with the replay
// clock below — the differential harness compares the two paths.
type BatchAccessor interface {
	//nurapid:hotpath
	AccessMany(now int64, reqs []Req, out []AccessResult) int64
}

// AccessMany replays reqs through l2 back to back: request i issues at
// the completion time of request i-1 plus request i-1's Gap, with the
// whole sequence seeded at now (each request's own Now field is
// ignored; its Core is forwarded). When out is non-nil it must have
// len(reqs) and receives each per-request result. The return value is
// the completion cycle of the final request plus its Gap (now when
// reqs is empty). Organizations implementing BatchAccessor serve the
// batch on their specialized loop; everything else falls back to the
// generic per-access loop, so callers need not care which they hold.
//
//nurapid:hotpath
func AccessMany(l2 LowerLevel, now int64, reqs []Req, out []AccessResult) int64 {
	if ba, ok := l2.(BatchAccessor); ok {
		return ba.AccessMany(now, reqs, out)
	}
	return GenericAccessMany(l2, now, reqs, out)
}

// GenericAccessMany is the fallback batched loop over Access. It is
// exported so specialized implementations (and their tests) can compare
// against the reference replay semantics.
//
//nurapid:hotpath
func GenericAccessMany(l2 LowerLevel, now int64, reqs []Req, out []AccessResult) int64 {
	for i := range reqs {
		q := reqs[i]
		q.Now = now
		r := l2.Access(q)
		if out != nil {
			out[i] = r
		}
		now = r.DoneAt + reqs[i].Gap
	}
	return now
}

// Memory models main memory with the paper's Table 1 parameters:
// a fixed access latency plus a per-8-byte transfer charge.
type Memory struct {
	BaseLatency int64   // cycles before the first 8 bytes arrive
	PerChunk    int64   // cycles per 8-byte chunk
	BlockBytes  int     // transfer size
	AccessNJ    float64 // dynamic energy per block transfer

	Accesses int64
	Writes   int64
	energy   float64
}

// NewMemory returns the paper's memory model: 130 cycles + 4 cycles per
// 8 bytes, so a 128-byte block costs 194 cycles. The energy constant is
// not in the paper's Table 2; 40 nJ per block transfer is a typical
// DRAM+bus figure for the era and is documented in EXPERIMENTS.md.
func NewMemory(blockBytes int) *Memory {
	return &Memory{
		BaseLatency: 130,
		PerChunk:    4,
		BlockBytes:  blockBytes,
		AccessNJ:    40,
	}
}

// Latency returns the block-transfer latency in cycles.
func (m *Memory) Latency() int64 {
	return m.BaseLatency + m.PerChunk*int64(m.BlockBytes/8)
}

// Read fetches one block starting at cycle now and returns the completion
// cycle.
//
//nurapid:hotpath
func (m *Memory) Read(now int64) int64 {
	m.Accesses++
	m.energy += m.AccessNJ
	return now + m.Latency()
}

// Write retires one block writeback. Writebacks are buffered and do not
// stall the requester, so no completion time is returned.
//
//nurapid:hotpath
func (m *Memory) Write() {
	m.Accesses++
	m.Writes++
	m.energy += m.AccessNJ
}

// EnergyNJ returns total memory energy so far.
func (m *Memory) EnergyNJ() float64 { return m.energy }

// Snapshot emits the memory model's parameters and traffic counters
// (statsreg convention: every counter field must appear here).
func (m *Memory) Snapshot() []stats.KV {
	return []stats.KV{
		{Name: "base_latency_cycles", Value: float64(m.BaseLatency)},
		{Name: "per_chunk_cycles", Value: float64(m.PerChunk)},
		{Name: "access_nj", Value: m.AccessNJ},
		{Name: "accesses", Value: float64(m.Accesses)},
		{Name: "writes", Value: float64(m.Writes)},
		{Name: "energy_nj", Value: m.energy},
	}
}

// Port is an occupancy scoreboard for a single-ported resource: a
// non-banked cache, or one bank of a multibanked one.
type Port struct {
	freeAt int64

	// BusyCycles accumulates total occupied time, for utilization stats.
	BusyCycles int64
	// Conflicts counts acquisitions that had to wait.
	Conflicts int64
	// WaitCycles accumulates total time spent waiting.
	WaitCycles int64
}

// Acquire occupies the port for duration cycles starting no earlier than
// now, returning the actual start cycle (= now when the port was free).
//
//nurapid:hotpath
func (p *Port) Acquire(now, duration int64) int64 {
	start := now
	if p.freeAt > now {
		start = p.freeAt
		p.Conflicts++
		p.WaitCycles += p.freeAt - now
	}
	p.freeAt = start + duration
	p.BusyCycles += duration
	return start
}

// Extend lengthens the current occupancy by duration cycles — used when
// an access discovers follow-on work (swaps, demotions) after it has
// already acquired the port.
//
//nurapid:hotpath
func (p *Port) Extend(duration int64) {
	p.freeAt += duration
	p.BusyCycles += duration
}

// FreeAt returns the cycle at which the port next becomes free.
//
//nurapid:hotpath
func (p *Port) FreeAt() int64 { return p.freeAt }
