package memsys

import "testing"

func TestMemoryLatencyMatchesTable1(t *testing.T) {
	// Table 1: 130 cycles + 4 cycles per 8 bytes -> 194 for 128 B.
	m := NewMemory(128)
	if m.Latency() != 194 {
		t.Fatalf("Latency = %d, want 194", m.Latency())
	}
}

func TestMemoryReadTiming(t *testing.T) {
	m := NewMemory(128)
	done := m.Read(1000)
	if done != 1194 {
		t.Fatalf("Read done at %d, want 1194", done)
	}
	if m.Accesses != 1 {
		t.Fatalf("Accesses = %d", m.Accesses)
	}
	if m.EnergyNJ() != m.AccessNJ {
		t.Fatalf("energy = %v, want %v", m.EnergyNJ(), m.AccessNJ)
	}
}

func TestMemoryWriteCharges(t *testing.T) {
	m := NewMemory(128)
	m.Write()
	if m.Accesses != 1 || m.Writes != 1 {
		t.Fatalf("accesses=%d writes=%d", m.Accesses, m.Writes)
	}
	if m.EnergyNJ() != m.AccessNJ {
		t.Fatal("write must charge energy")
	}
}

func TestPortFreeStartsImmediately(t *testing.T) {
	var p Port
	if start := p.Acquire(100, 10); start != 100 {
		t.Fatalf("start = %d, want 100", start)
	}
	if p.FreeAt() != 110 {
		t.Fatalf("FreeAt = %d, want 110", p.FreeAt())
	}
	if p.Conflicts != 0 {
		t.Fatal("no conflict expected")
	}
}

func TestPortSerializes(t *testing.T) {
	var p Port
	p.Acquire(100, 10)
	start := p.Acquire(105, 20)
	if start != 110 {
		t.Fatalf("second start = %d, want 110", start)
	}
	if p.Conflicts != 1 || p.WaitCycles != 5 {
		t.Fatalf("conflicts=%d wait=%d", p.Conflicts, p.WaitCycles)
	}
	if p.FreeAt() != 130 {
		t.Fatalf("FreeAt = %d, want 130", p.FreeAt())
	}
}

func TestPortIdleGap(t *testing.T) {
	var p Port
	p.Acquire(0, 10)
	start := p.Acquire(50, 10) // long after the port went idle
	if start != 50 {
		t.Fatalf("start = %d, want 50", start)
	}
	if p.BusyCycles != 20 {
		t.Fatalf("BusyCycles = %d, want 20", p.BusyCycles)
	}
}

func TestPortExtend(t *testing.T) {
	var p Port
	p.Acquire(0, 10)
	p.Extend(15)
	if p.FreeAt() != 25 {
		t.Fatalf("FreeAt = %d, want 25", p.FreeAt())
	}
	if p.BusyCycles != 25 {
		t.Fatalf("BusyCycles = %d, want 25", p.BusyCycles)
	}
}
