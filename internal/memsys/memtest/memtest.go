// Package memtest provides shared test fakes for the memsys contract,
// so every package exercising a CPU or front end against a fake lower
// level uses one implementation (it used to be copied per test package).
//
// The fakes live outside memsys itself to keep the production package
// free of test-only surface; importing memtest from non-test code is a
// mistake.
package memtest

import (
	"nurapid/internal/memsys"
	"nurapid/internal/stats"
)

// Stub is a fixed-latency memsys.LowerLevel: every access hits in group
// 0 after Latency cycles. Deterministic timing tests (internal/cpu,
// internal/cmp) use it to isolate the component under test from real
// cache behavior.
//
// The zero value is unusable; build with NewStub.
type Stub struct {
	// Latency is the fixed hit latency in cycles.
	Latency int64
	// Accesses counts calls to Access.
	Accesses int64
	// PerCore counts accesses by req.Core (grown on demand).
	PerCore []int64
	// Reqs records every request verbatim when Record is true.
	Reqs   []memsys.Req
	Record bool

	dist *stats.Distribution
	ctrs stats.Counters
}

// NewStub builds a stub lower level with the given fixed hit latency.
func NewStub(latency int64) *Stub {
	return &Stub{Latency: latency, dist: stats.NewDistribution("stub")}
}

// Name implements memsys.LowerLevel.
func (s *Stub) Name() string { return "stub" }

// Access implements memsys.LowerLevel: a hit in group 0 at Now+Latency.
//
//nurapid:coldpath
func (s *Stub) Access(req memsys.Req) memsys.AccessResult {
	s.Accesses++
	for len(s.PerCore) <= req.Core {
		s.PerCore = append(s.PerCore, 0)
	}
	s.PerCore[req.Core]++
	if s.Record {
		s.Reqs = append(s.Reqs, req)
	}
	s.dist.AddHit(0)
	return memsys.AccessResult{Hit: true, DoneAt: req.Now + s.Latency, Group: 0}
}

// Distribution implements memsys.LowerLevel.
func (s *Stub) Distribution() *stats.Distribution { return s.dist }

// EnergyNJ implements memsys.LowerLevel.
func (s *Stub) EnergyNJ() float64 { return 0 }

// Counters implements memsys.LowerLevel.
func (s *Stub) Counters() *stats.Counters { return &s.ctrs }

var _ memsys.LowerLevel = (*Stub)(nil)
