package nuca

import (
	"testing"

	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

func TestIncrementalHitLatencyGrowsWithGroup(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = Incremental })
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	// Hit in the slowest group: every group probed sequentially first.
	r := c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1), Write: false})
	slow := r.DoneAt - 100000
	// Bubble the block to group 0 and measure again.
	for i := 0; i < 8; i++ {
		c.Access(memsys.Req{Now: int64(200000 + i*10000), Addr: blockAddr(1), Write: false})
	}
	r = c.Access(memsys.Req{Now: 1000000, Addr: blockAddr(1), Write: false})
	fast := r.DoneAt - 1000000
	if fast != 7 {
		t.Fatalf("group-0 incremental hit = %d cycles, want 7 (first probe only)", fast)
	}
	if slow <= fast {
		t.Fatalf("slowest-group hit (%d) must exceed group-0 hit (%d)", slow, fast)
	}
}

func TestIncrementalUsesNoSmartSearch(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = Incremental })
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1), Write: false})
	if c.Counters().Get("ss_accesses") != 0 {
		t.Fatal("incremental search must not touch the smart-search array")
	}
}

func TestIncrementalMissProbesAllGroups(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = Incremental })
	before := c.Counters().Get("bank_accesses")
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false}) // miss: 8 probes + 1 fill
	probes := c.Counters().Get("bank_accesses") - before
	if probes != int64(c.NumGroups())+1 {
		t.Fatalf("miss performed %d bank accesses, want %d", probes, c.NumGroups()+1)
	}
}

func TestIncrementalGroupZeroHitProbesOnce(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = Incremental })
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	for i := 0; i < 8; i++ {
		c.Access(memsys.Req{Now: int64(100000 + i*10000), Addr: blockAddr(1), Write: false})
	}
	if c.GroupOf(blockAddr(1)) != 0 {
		t.Fatal("setup: block must reach group 0")
	}
	before := c.Counters().Get("bank_accesses")
	c.Access(memsys.Req{Now: 1000000, Addr: blockAddr(1), Write: false}) // group-0 hit, no swap
	if got := c.Counters().Get("bank_accesses") - before; got != 1 {
		t.Fatalf("group-0 incremental hit used %d bank accesses, want 1", got)
	}
}

func TestIncrementalSlowerThanSSPerformance(t *testing.T) {
	run := func(policy SearchPolicy) int64 {
		c, _ := build(t, func(cfg *Config) { cfg.Policy = policy })
		rng := mathx.NewRNG(31)
		var last int64
		for i := 0; i < 20000; i++ {
			r := c.Access(memsys.Req{Now: int64(i) * 40, Addr: blockAddr(rng.Intn(30000)), Write: rng.Bool(0.2)})
			last = r.DoneAt
		}
		return last
	}
	if inc, ss := run(Incremental), run(SSPerformance); inc <= ss {
		t.Fatalf("incremental (%d) must be slower than ss-performance (%d)", inc, ss)
	}
}

func TestIncrementalInvariants(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = Incremental })
	rng := mathx.NewRNG(33)
	zipf := mathx.NewZipf(rng.Split(), 0.8, 100000)
	for i := 0; i < 50000; i++ {
		c.Access(memsys.Req{Now: int64(i) * 40, Addr: blockAddr(zipf.Draw()), Write: rng.Bool(0.3)})
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
