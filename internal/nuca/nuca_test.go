package nuca

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

func build(t *testing.T, mutate func(*Config)) (*Cache, *memsys.Memory) {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	mem := memsys.NewMemory(cfg.BlockBytes)
	c, err := New(cfg, cacti.Default(), mem)
	if err != nil {
		t.Fatal(err)
	}
	return c, mem
}

func blockAddr(i int) uint64 { return uint64(i) * 128 }

func TestNewRejectsBadConfigs(t *testing.T) {
	m := cacti.Default()
	mem := memsys.NewMemory(128)
	bad := []func(*Config){
		func(c *Config) { c.BankKB = 0 },
		func(c *Config) { c.BankKB = 7 },
		func(c *Config) { c.Assoc = 0 },
		func(c *Config) { c.PartialTagBits = 0 },
		func(c *Config) { c.PartialTagBits = 64 },
	}
	for i, f := range bad {
		cfg := DefaultConfig()
		f(&cfg)
		if _, err := New(cfg, m, mem); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSearchPolicyString(t *testing.T) {
	if SSPerformance.String() != "ss-performance" || SSEnergy.String() != "ss-energy" {
		t.Fatal("policy strings wrong")
	}
	if SearchPolicy(5).String() == "" {
		t.Fatal("unknown policy must render")
	}
}

func TestInitialPlacementInSlowestGroup(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	if g := c.GroupOf(blockAddr(1)); g != c.NumGroups()-1 {
		t.Fatalf("new block in group %d, want slowest %d", g, c.NumGroups()-1)
	}
}

func TestBubblePromotionOneGroupPerHit(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	for hits := 1; hits <= c.NumGroups()-1; hits++ {
		c.Access(memsys.Req{Now: int64(hits) * 10000, Addr: blockAddr(1), Write: false})
		want := c.NumGroups() - 1 - hits
		if g := c.GroupOf(blockAddr(1)); g != want {
			t.Fatalf("after %d hits block in group %d, want %d", hits, g, want)
		}
	}
	// Further hits keep it in group 0.
	c.Access(memsys.Req{Now: 1e9, Addr: blockAddr(1), Write: false})
	if g := c.GroupOf(blockAddr(1)); g != 0 {
		t.Fatalf("block left group 0: %d", g)
	}
}

func TestMissLatencySSPerformanceEarlyDetection(t *testing.T) {
	c, mem := build(t, nil)
	// Empty cache: no partial match anywhere, so the miss is detected
	// after the smart-search latency and memory starts immediately.
	r := c.Access(memsys.Req{Now: 1000, Addr: blockAddr(42), Write: false})
	want := int64(1000+3) + mem.Latency()
	if r.DoneAt != want {
		t.Fatalf("early-detected miss done at %d, want %d", r.DoneAt, want)
	}
}

func TestHitLatencyReflectsGroupDistance(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	// First re-access: hit in slowest group (avg 29 cycles per Table 4).
	r := c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1), Write: false})
	if !r.Hit {
		t.Fatal("must hit")
	}
	slow := r.DoneAt - 100000
	// Bubble the block to group 0, then measure again.
	for i := 0; i < 8; i++ {
		c.Access(memsys.Req{Now: int64(200000 + i*10000), Addr: blockAddr(1), Write: false})
	}
	r = c.Access(memsys.Req{Now: 1000000, Addr: blockAddr(1), Write: false})
	fast := r.DoneAt - 1000000
	if fast >= slow {
		t.Fatalf("fast-group hit (%d cycles) must beat slow-group hit (%d)", fast, slow)
	}
	if fast != 7 {
		t.Fatalf("fastest-group hit latency %d, want 7 (Table 4 average)", fast)
	}
}

func TestSSEnergyProbesOnlyMatchingBanks(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = SSEnergy })
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	before := c.Counters().Get("bank_accesses")
	c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1)}) // hit: 1 probe + swap traffic (4)
	probes := c.Counters().Get("bank_accesses") - before
	if probes != 1+4 {
		t.Fatalf("ss-energy hit used %d bank accesses, want 5 (1 probe + 4 swap)", probes)
	}
}

func TestSSPerformanceMulticastsAllGroups(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	before := c.Counters().Get("bank_accesses")
	c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1), Write: false}) // hit: 8 probes + 4 swap accesses
	probes := c.Counters().Get("bank_accesses") - before
	if probes != 8+4 {
		t.Fatalf("ss-performance hit used %d bank accesses, want 12", probes)
	}
}

func TestSSEnergyCheaperThanSSPerformance(t *testing.T) {
	run := func(policy SearchPolicy) float64 {
		c, _ := build(t, func(cfg *Config) { cfg.Policy = policy })
		rng := mathx.NewRNG(3)
		for i := 0; i < 20000; i++ {
			c.Access(memsys.Req{Now: int64(i) * 50, Addr: blockAddr(rng.Intn(30000)), Write: rng.Bool(0.2)})
		}
		return c.EnergyNJ()
	}
	perf, energy := run(SSPerformance), run(SSEnergy)
	if energy >= perf {
		t.Fatalf("ss-energy (%.0f nJ) must consume less than ss-performance (%.0f nJ)", energy, perf)
	}
}

func TestEvictionFromSlowestWay(t *testing.T) {
	c, mem := build(t, nil)
	set0 := blockAddr(0)
	stride := c.geo.NumSets() // in blocks
	// Fill all 16 ways of set 0; every new block lands in the slowest
	// group and displaces its LRU way, so with 16 fills and no hits only
	// the slowest group's 2 ways survive plus earlier bubbled... in fact
	// without hits nothing bubbles: each fill evicts the previous one
	// once the 2 slowest ways are full.
	c.Access(memsys.Req{Now: 0, Addr: set0, Write: true}) // dirty
	c.Access(memsys.Req{Now: 1000, Addr: blockAddr(stride), Write: false})
	c.Access(memsys.Req{Now: 2000, Addr: blockAddr(2 * stride), Write: false})
	// Third fill into the same set: the slowest group's 2 ways held
	// blocks 0 and stride; block 0 is LRU and gets evicted (dirty).
	if c.Contains(set0) {
		t.Fatal("dirty LRU of the slowest group should have been evicted")
	}
	if mem.Writes != 1 {
		t.Fatalf("memory writes = %d, want 1", mem.Writes)
	}
	if c.Counters().Get("evictions") != 1 {
		t.Fatal("eviction counter wrong")
	}
}

func TestEvictionIsNotGlobalLRU(t *testing.T) {
	// The paper: the evicted block may not be the set's LRU block. A
	// frequently-hit block that bubbled inward survives even when a
	// colder block sits in a faster way... conversely, a recently used
	// block still in the slowest group is evicted before older faster
	// blocks.
	c, _ := build(t, nil)
	stride := c.geo.NumSets()
	// Block A bubbles to group 6 with one hit.
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(0), Write: false})
	c.Access(memsys.Req{Now: 1000, Addr: blockAddr(0), Write: false})
	// Blocks B and C fill the slowest group.
	c.Access(memsys.Req{Now: 2000, Addr: blockAddr(stride), Write: false})
	c.Access(memsys.Req{Now: 3000, Addr: blockAddr(2 * stride), Write: false})
	// D fills: evicts B (LRU of slowest group) even though A is older
	// in absolute terms but already promoted.
	c.Access(memsys.Req{Now: 4000, Addr: blockAddr(3 * stride), Write: false})
	if !c.Contains(blockAddr(0)) {
		t.Fatal("promoted block must survive")
	}
	if c.Contains(blockAddr(stride)) {
		t.Fatal("slowest-group LRU must be the victim")
	}
}

func TestDistributionTracksGroups(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	c.Access(memsys.Req{Now: 10000, Addr: blockAddr(1), Write: false})
	d := c.Distribution()
	if d.MissCount() != 1 {
		t.Fatalf("misses = %d", d.MissCount())
	}
	if d.HitCount(c.NumGroups()-1) != 1 {
		t.Fatal("hit must be attributed to the slowest group")
	}
}

func TestInvariantsAfterStorm(t *testing.T) {
	for _, policy := range []SearchPolicy{SSPerformance, SSEnergy} {
		c, _ := build(t, func(cfg *Config) { cfg.Policy = policy })
		rng := mathx.NewRNG(uint64(policy) + 21)
		zipf := mathx.NewZipf(rng.Split(), 0.9, 150000)
		for i := 0; i < 60000; i++ {
			c.Access(memsys.Req{Now: int64(i) * 40, Addr: blockAddr(zipf.Draw()), Write: rng.Bool(0.3)})
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if c.Counters().Get("promotions") == 0 {
			t.Fatalf("%v: storm should promote blocks", policy)
		}
	}
}

func TestBankContentionSerializes(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	// Two simultaneous hits to the same block contend for its bank.
	r1 := c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1), Write: false})
	r2 := c.Access(memsys.Req{Now: 100000, Addr: blockAddr(1), Write: false})
	if r2.DoneAt <= r1.DoneAt {
		t.Fatalf("second access (%d) must finish after the first (%d)", r2.DoneAt, r1.DoneAt)
	}
}

func TestNameAndConfig(t *testing.T) {
	c, _ := build(t, nil)
	if c.Name() != "dnuca-ss-performance" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Config().Assoc != 16 {
		t.Fatal("config accessor wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.BankKB = 7
	MustNew(cfg, cacti.Default(), memsys.NewMemory(128))
}

func TestFalsePartialHitsHappen(t *testing.T) {
	// Two blocks whose tags share the low 7 bits collide in the
	// smart-search array: probing for the absent one wastes a search.
	c, _ := build(t, func(cfg *Config) { cfg.Policy = SSEnergy })
	setBlocks := c.geo.NumSets()
	// tag 1 and tag 129 share bits 0..6 (129 = 0b10000001).
	a1 := blockAddr(1 * setBlocks) // set 0, tag 1
	a2 := blockAddr(129 * setBlocks)
	c.Access(memsys.Req{Now: 0, Addr: a1, Write: false})
	before := c.Counters().Get("false_partial_hits")
	c.Access(memsys.Req{Now: 10000, Addr: a2, Write: false}) // miss, but partial tags match tag 1
	if c.Counters().Get("false_partial_hits") != before+1 {
		t.Fatal("partial-tag collision must register a false hit")
	}
}
