// Package nuca implements the D-NUCA baseline the paper compares
// against: the best-performing dynamic non-uniform cache architecture of
// Kim et al. (ASPLOS'02), configured as in the paper's Sec. 4.
//
// The 8-MB, 16-way cache is built from 128 small (64-KB) banks tiled in
// a rectangular grid. The 16 ways of every set are distributed over 8
// latency groups of 2 ways each; a way's group is fixed, so moving a
// block between groups means swapping ways ("bubble" replacement). New
// blocks enter the slowest group and bubble toward the fastest on hits;
// eviction takes the LRU block of the slowest group's ways.
//
// Searches use the smart-search (partial tag) array:
//
//   - ss-performance multicasts the search to all 8 group banks in
//     parallel and uses the partial tags only for early miss detection;
//   - ss-energy probes the partial tags first and then searches only the
//     matching groups, closest first.
//
// Per the paper's generous baseline assumptions, the switched network has
// infinite bandwidth and zero energy, and the smart-search array has
// infinite bandwidth; only bank conflicts are modeled. The cache is
// multibanked: accesses to different banks proceed in parallel.
package nuca

import (
	"fmt"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/floorplan"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

// SearchPolicy selects the D-NUCA lookup strategy.
type SearchPolicy int

const (
	// SSPerformance is the performance-optimal policy: parallel
	// multicast search of all groups plus early miss detection.
	SSPerformance SearchPolicy = iota
	// SSEnergy is the energy-optimal policy: partial tags narrow the
	// search to matching groups, probed sequentially closest-first.
	SSEnergy
	// Incremental probes the groups closest-first with no smart-search
	// array at all — the basic D-NUCA lookup the ss policies improve on
	// (kept as an ablation baseline).
	Incremental
)

func (p SearchPolicy) String() string {
	switch p {
	case SSPerformance:
		return "ss-performance"
	case SSEnergy:
		return "ss-energy"
	case Incremental:
		return "incremental"
	default:
		return fmt.Sprintf("SearchPolicy(%d)", int(p))
	}
}

// Config parameterizes the D-NUCA cache.
type Config struct {
	CapacityBytes int64 // 8 MB in the paper
	BlockBytes    int   // 128
	Assoc         int   // 16
	BankKB        int   // 64
	Policy        SearchPolicy

	// PartialTagBits is the width of the smart-search array entries; the
	// paper uses the 7 least-significant tag bits.
	PartialTagBits int
}

// DefaultConfig is the paper's optimal D-NUCA: 8 MB, 16-way, 128 64-KB
// banks, 8 groups per set, 7-bit partial tags, ss-performance search.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:  8 << 20,
		BlockBytes:     128,
		Assoc:          16,
		BankKB:         64,
		Policy:         SSPerformance,
		PartialTagBits: 7,
	}
}

// bankOccupancy is the cycles one probe occupies a (small, pipelined)
// bank.
const bankOccupancy = 3

// swapOccupancy is the cycles one bubble-swap operation occupies a bank:
// a full 128-B block is read out of or written into the bank and crosses
// the switched network. This is the bandwidth the paper says D-NUCA's
// "frequent swaps" consume — later probes of a bank mid-swap must wait.
const swapOccupancy = 12

type line struct {
	valid bool
	dirty bool
	tag   uint64
	stamp uint64
}

// Cache is a D-NUCA cache. It implements memsys.LowerLevel.
type Cache struct {
	cfg       Config
	geo       cache.Geometry
	idx       cache.Index
	numGroups int
	assoc     int
	wpg       int    // ways per latency group
	wayGroup  []int8 // way -> latency group
	lines     []line // sets x assoc; way w belongs to group wayGroup[w]
	clock     uint64

	banks   []memsys.Port
	bankLat []int64
	bankNJ  []float64
	// bankTab flattens the [group][set % banksPerGroup] -> bank id map:
	// entry group*bpg + (set % bpg). When bpg is a power of two the modulo
	// reduces to a mask on the hot path.
	bankTab []int32
	bpg     int
	bpgMask uint32
	bpgPow2 bool

	ssLat int64
	ssNJ  float64
	mask  uint64 // partial-tag mask

	matchBuf []bool // scratch for partialMatches; reused every access

	mem    *memsys.Memory
	dist   *stats.Distribution
	ctrs   stats.Counters
	hot    nucaHot
	energy float64
	probe  obs.Probe
}

// nucaHot holds the per-access counters as plain fields; Counters()
// materializes them into the map with the same presence semantics as the
// former Inc calls (a name exists iff its count is non-zero).
type nucaHot struct {
	accesses         int64
	misses           int64
	evictions        int64
	writebacks       int64
	promotions       int64
	bankAccesses     int64
	ssAccesses       int64
	falsePartialHits int64
}

// New builds a D-NUCA cache with bank latencies and energies from the
// cacti model over the rectangular bank grid.
func New(cfg Config, m *cacti.Model, mem *memsys.Memory) (*Cache, error) {
	geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.BankKB <= 0 || cfg.CapacityBytes%int64(cfg.BankKB<<10) != 0 {
		return nil, fmt.Errorf("nuca: capacity %d not divisible into %d-KB banks",
			cfg.CapacityBytes, cfg.BankKB)
	}
	numBanks := int(cfg.CapacityBytes / int64(cfg.BankKB<<10))
	if numBanks%cfg.Assoc != 0 {
		return nil, fmt.Errorf("nuca: %d banks not divisible by associativity %d", numBanks, cfg.Assoc)
	}
	if cfg.PartialTagBits <= 0 || cfg.PartialTagBits > 32 {
		return nil, fmt.Errorf("nuca: partial tag bits %d out of range", cfg.PartialTagBits)
	}

	grid := floorplan.NewNUCAGrid(int(cfg.CapacityBytes>>20), cfg.BankKB)
	latencies := m.NUCABankLatencies(grid)
	energies := m.NUCABankEnergies(grid)
	order := grid.BanksByDistance()

	// Group the 16 ways into 8 latency groups of 2; each group owns a
	// chunk of 16 banks (by distance), one bank per 16 consecutive sets.
	numGroups := 8
	if cfg.Assoc < numGroups {
		numGroups = cfg.Assoc
	}
	banksPerGroup := numBanks / numGroups
	bankTab := make([]int32, numGroups*banksPerGroup)
	for g := 0; g < numGroups; g++ {
		chunk := order[g*banksPerGroup : (g+1)*banksPerGroup]
		for i, b := range chunk {
			bankTab[g*banksPerGroup+i] = int32(b)
		}
	}

	wpg := cfg.Assoc / numGroups
	wayGroup := make([]int8, cfg.Assoc)
	for w := range wayGroup {
		wayGroup[w] = int8(w / wpg)
	}

	labels := make([]string, numGroups)
	for g := range labels {
		labels[g] = fmt.Sprintf("group-%d", g)
	}

	lat64 := make([]int64, numBanks)
	for i, l := range latencies {
		lat64[i] = int64(l)
	}
	return &Cache{
		cfg:       cfg,
		geo:       geo,
		idx:       geo.Index(),
		numGroups: numGroups,
		assoc:     cfg.Assoc,
		wpg:       wpg,
		wayGroup:  wayGroup,
		lines:     make([]line, geo.NumSets()*cfg.Assoc),
		banks:     make([]memsys.Port, numBanks),
		bankLat:   lat64,
		bankNJ:    energies,
		bankTab:   bankTab,
		bpg:       banksPerGroup,
		bpgMask:   uint32(banksPerGroup - 1),
		bpgPow2:   mathx.IsPow2(int64(banksPerGroup)),
		ssLat:     int64(m.SmartSearchCyc),
		ssNJ:      m.SmartSearchNJ,
		mask:      (1 << uint(cfg.PartialTagBits)) - 1,
		matchBuf:  make([]bool, numGroups),
		mem:       mem,
		dist:      stats.NewDistribution(labels...),
	}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config, m *cacti.Model, mem *memsys.Memory) *Cache {
	c, err := New(cfg, m, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements memsys.LowerLevel.
func (c *Cache) Name() string { return "dnuca-" + c.cfg.Policy.String() }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetProbe attaches an observability probe (obs.Probeable). Probes only
// observe — simulated state and timing are unaffected — and a nil probe
// restores the zero-overhead fast path. Call before the first access.
// D-NUCA's bubble swap is reported as one promotion plus a depth-1
// demotion link absorbed by the frame the promoted block freed.
func (c *Cache) SetProbe(p obs.Probe) { c.probe = p }

func (c *Cache) groupOfWay(way int) int { return int(c.wayGroup[way]) }

func (c *Cache) line(set, way int) *line { return &c.lines[set*c.assoc+way] }

// bankOf returns the bank holding the ways of `group` for `set`.
func (c *Cache) bankOf(group, set int) int {
	if c.bpgPow2 {
		return int(c.bankTab[group*c.bpg+int(uint32(set)&c.bpgMask)])
	}
	return int(c.bankTab[group*c.bpg+set%c.bpg])
}

// probeBank performs one timed, energy-charged access to bank b starting
// no earlier than t, returning when its response is available.
func (c *Cache) probeBank(b int, t int64) int64 {
	start := c.banks[b].Acquire(t, bankOccupancy)
	c.hot.bankAccesses++
	c.energy += c.bankNJ[b]
	return start + c.bankLat[b]
}

// chargeBank records a block-movement bank access (swap traffic, fills):
// the bank is occupied for a full block transfer.
func (c *Cache) chargeBank(b int, t int64) {
	c.banks[b].Acquire(t, swapOccupancy)
	c.hot.bankAccesses++
	c.energy += c.bankNJ[b]
}

func (c *Cache) touch(set, way int) {
	c.clock++
	c.line(set, way).stamp = c.clock
}

// lookup finds addr in its set without side effects.
func (c *Cache) lookup(addr uint64) (way int, ok bool) {
	return c.findWay(c.idx.SetIndex(addr), c.idx.Tag(addr))
}

// findWay finds the way holding (set, tag) without side effects.
func (c *Cache) findWay(set int, tag uint64) (way int, ok bool) {
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if l := &c.lines[base+w]; l.valid && l.tag == tag {
			return w, true
		}
	}
	return -1, false
}

// partialMatches fills the per-group scratch buffer with whether any
// valid way in the set partially matches addr's tag — the smart-search
// array's answer. The buffer is owned by the cache and overwritten on
// the next access.
func (c *Cache) partialMatches(set int, tag uint64) []bool {
	out := c.matchBuf
	for g := range out {
		out[g] = false
	}
	masked := tag & c.mask
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag&c.mask == masked {
			out[c.wayGroup[w]] = true
		}
	}
	return out
}

// Access implements memsys.LowerLevel.
//
//nurapid:hotpath
func (c *Cache) Access(req memsys.Req) memsys.AccessResult {
	now, addr, write := req.Now, req.Addr, req.Write
	c.hot.accesses++
	if c.probe != nil {
		c.probe.Emit(obs.Access(now, addr, write, req.Core))
	}
	set := c.idx.SetIndex(addr)
	tag := c.idx.Tag(addr)

	way, hit := c.findWay(set, tag)

	var done int64
	switch c.cfg.Policy {
	case SSPerformance:
		c.chargeSmartSearch()
		done = c.searchParallel(now, set, way, hit, c.partialMatches(set, tag))
	case SSEnergy:
		c.chargeSmartSearch()
		done = c.searchSequential(now, set, way, hit, c.partialMatches(set, tag))
	case Incremental:
		done = c.searchIncremental(now, set, way, hit)
	default:
		panic("nuca: unknown search policy")
	}

	if hit {
		g := c.groupOfWay(way)
		c.dist.AddHit(g)
		if c.probe != nil {
			c.probe.Emit(obs.Hit(now, g, done-now))
		}
		l := c.line(set, way)
		if write {
			l.dirty = true
		}
		c.touch(set, way)
		if g > 0 {
			c.promote(now, set, way)
		}
		return memsys.AccessResult{Hit: true, DoneAt: done, Group: g}
	}

	// Miss: fetch from memory and place in the slowest group.
	c.dist.AddMiss()
	c.hot.misses++
	if c.probe != nil {
		c.probe.Emit(obs.Miss(now, addr))
	}
	fillDone := c.mem.Read(done)
	c.fill(now, set, tag, write)
	return memsys.AccessResult{Hit: false, DoneAt: fillDone, Group: -1}
}

func (c *Cache) chargeSmartSearch() {
	c.hot.ssAccesses++
	c.energy += c.ssNJ
}

// searchIncremental probes every group's bank closest-first until the
// block is found, with no partial-tag filtering; a miss is confirmed
// only after the farthest bank answers.
func (c *Cache) searchIncremental(now int64, set, way int, hit bool) int64 {
	t := now
	for g := 0; g < c.numGroups; g++ {
		t = c.probeBank(c.bankOf(g, set), t)
		if hit && g == c.groupOfWay(way) {
			return t
		}
	}
	return t
}

// searchParallel is ss-performance: every group's bank is probed at once;
// a hit completes when its bank responds; a miss with no partial match is
// detected as soon as the smart-search array answers, otherwise when the
// slowest probed bank responds.
func (c *Cache) searchParallel(now int64, set, way int, hit bool, matches []bool) int64 {
	latest := now + c.ssLat
	var hitDone int64
	for g := 0; g < c.numGroups; g++ {
		resp := c.probeBank(c.bankOf(g, set), now)
		if hit && g == c.groupOfWay(way) {
			hitDone = resp
		}
		if resp > latest {
			latest = resp
		}
	}
	if hit {
		return hitDone
	}
	anyMatch := false
	for _, m := range matches {
		anyMatch = anyMatch || m
	}
	if !anyMatch {
		return now + c.ssLat // early miss
	}
	c.hot.falsePartialHits++
	return latest
}

// searchSequential is ss-energy: only groups with a partial match are
// probed, closest first, each probe starting after the previous one
// answers.
func (c *Cache) searchSequential(now int64, set, way int, hit bool, matches []bool) int64 {
	t := now + c.ssLat
	probed := false
	for g := 0; g < c.numGroups; g++ {
		if !matches[g] {
			continue
		}
		probed = true
		t = c.probeBank(c.bankOf(g, set), t)
		if hit && g == c.groupOfWay(way) {
			return t
		}
		c.hot.falsePartialHits++
	}
	_ = probed
	return t // miss: confirmed after the last candidate (or the ss array)
}

// promote bubbles the block at (set, way) one group closer to the
// processor by swapping with the LRU way of the adjacent faster group
// (paper Sec. 2.2's "bubble replacement").
func (c *Cache) promote(now int64, set, way int) {
	g := c.groupOfWay(way)
	target := c.victimWay(set, g-1)
	a, b := c.line(set, way), c.line(set, target)
	swapped := b.valid
	// Stamps travel with the lines: the promoted block keeps its fresh
	// recency, the demoted one keeps its old stamp.
	*a, *b = *b, *a
	c.hot.promotions++
	if c.probe != nil {
		c.probe.Emit(obs.Promote(now, g, g-1))
		if swapped {
			// A bubble swap is a one-link chain: the promoted block
			// leaves group g, displacing g-1's victim into the frame
			// it freed.
			c.probe.Emit(obs.DemoteLink(now, g-1, g, 1))
			c.probe.Emit(obs.Place(now, g, 1))
		} else {
			// The faster group still had an empty way: a pure move.
			c.probe.Emit(obs.Place(now, g-1, 0))
		}
	}
	// A swap reads and writes both banks.
	b1 := c.bankOf(g, set)
	b2 := c.bankOf(g-1, set)
	c.chargeBank(b1, now)
	c.chargeBank(b1, now)
	c.chargeBank(b2, now)
	c.chargeBank(b2, now)
}

// victimWay picks the way of `group` to displace: an invalid way when one
// exists, else the LRU of the group's ways.
func (c *Cache) victimWay(set, group int) int {
	base := group * c.wpg
	victim := base
	var best uint64 = ^uint64(0)
	for w := base; w < base+c.wpg; w++ {
		l := c.line(set, w)
		if !l.valid {
			return w
		}
		if l.stamp < best {
			best = l.stamp
			victim = w
		}
	}
	return victim
}

// fill installs a new block into the slowest group, evicting that group's
// LRU way (the paper: "D-NUCA evicts the block in the slowest way of the
// set", which need not be the set's LRU block).
func (c *Cache) fill(now int64, set int, tag uint64, write bool) {
	slowest := c.numGroups - 1
	way := c.victimWay(set, slowest)
	l := c.line(set, way)
	bank := c.bankOf(slowest, set)
	if l.valid {
		c.hot.evictions++
		if c.probe != nil {
			c.probe.Emit(obs.Evict(now, slowest, l.dirty))
		}
		if l.dirty {
			c.hot.writebacks++
			c.chargeBank(bank, now) // victim read
			c.mem.Write()
		}
	}
	*l = line{valid: true, dirty: write, tag: tag}
	c.touch(set, way)
	c.chargeBank(bank, now) // fill write
	if c.probe != nil {
		c.probe.Emit(obs.Place(now, slowest, 0))
	}
}

// Distribution implements memsys.LowerLevel.
func (c *Cache) Distribution() *stats.Distribution { return c.dist }

// EnergyNJ implements memsys.LowerLevel.
func (c *Cache) EnergyNJ() float64 { return c.energy }

// Counters implements memsys.LowerLevel. The hot-path counts live in
// plain fields and are materialized here; a name is created only when
// its count is non-zero, matching the presence semantics of Inc.
func (c *Cache) Counters() *stats.Counters {
	set := func(name string, v int64) {
		if v != 0 {
			c.ctrs.Set(name, v)
		}
	}
	set("accesses", c.hot.accesses)
	set("misses", c.hot.misses)
	set("evictions", c.hot.evictions)
	set("writebacks", c.hot.writebacks)
	set("promotions", c.hot.promotions)
	set("bank_accesses", c.hot.bankAccesses)
	set("ss_accesses", c.hot.ssAccesses)
	set("false_partial_hits", c.hot.falsePartialHits)
	return &c.ctrs
}

// AccessMany implements memsys.BatchAccessor: a trace is replayed with
// each access issued when the previous one completes plus its gap.
//
//nurapid:hotpath
func (c *Cache) AccessMany(now int64, reqs []memsys.Req, out []memsys.AccessResult) int64 {
	for i := range reqs {
		q := reqs[i]
		q.Now = now
		r := c.Access(q)
		if out != nil {
			out[i] = r
		}
		now = r.DoneAt + reqs[i].Gap
	}
	return now
}

// GroupOf reports which latency group currently holds addr, or -1.
func (c *Cache) GroupOf(addr uint64) int {
	way, ok := c.lookup(addr)
	if !ok {
		return -1
	}
	return c.groupOfWay(way)
}

// Contains reports whether addr is resident (no side effects).
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.lookup(addr)
	return ok
}

// NumGroups returns the number of latency groups per set.
func (c *Cache) NumGroups() int { return c.numGroups }

// CheckInvariants validates tag-state consistency: no duplicate tags
// within a set and all stamps within the clock bound.
func (c *Cache) CheckInvariants() error {
	for set := 0; set < c.geo.NumSets(); set++ {
		seen := make(map[uint64]bool)
		for w := 0; w < c.assoc; w++ {
			l := c.line(set, w)
			if !l.valid {
				continue
			}
			if seen[l.tag] {
				return fmt.Errorf("set %d holds tag %#x twice", set, l.tag)
			}
			seen[l.tag] = true
			if l.stamp > c.clock {
				return fmt.Errorf("set %d way %d stamp %d beyond clock %d", set, w, l.stamp, c.clock)
			}
		}
	}
	return nil
}

var (
	_ memsys.LowerLevel    = (*Cache)(nil)
	_ memsys.BatchAccessor = (*Cache)(nil)
)
