package nuca

import (
	"testing"

	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

func TestVictimWayPrefersInvalid(t *testing.T) {
	c, _ := build(t, nil)
	set := 0
	slowest := c.NumGroups() - 1
	// Fill one way of the slowest group; the victim must be the other
	// (still invalid) way, not the occupied one.
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(0), Write: false})
	first := c.victimWay(set, slowest)
	if c.line(set, first).valid {
		t.Fatal("victim must prefer the invalid way")
	}
}

func TestPartialMatchesPerGroup(t *testing.T) {
	c, _ := build(t, nil)
	setBlocks := c.geo.NumSets()
	// Install tag 1 (set 0); it lands in the slowest group.
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1 * setBlocks), Write: false})
	matches := c.partialMatches(0, 129) // 129 shares low 7 bits with 1
	if !matches[c.NumGroups()-1] {
		t.Fatal("partial match must register in the resident group")
	}
	for g := 0; g < c.NumGroups()-1; g++ {
		if matches[g] {
			t.Fatalf("group %d must not partially match", g)
		}
	}
	matches = c.partialMatches(0, 2) // different low bits
	for g, m := range matches {
		if m {
			t.Fatalf("group %d matched tag with different partial bits", g)
		}
	}
}

func TestSSEnergyMissWithFalseMatchSlower(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Policy = SSEnergy })
	setBlocks := c.geo.NumSets()
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1 * setBlocks), Write: false}) // tag 1 resident
	// Miss with no partial match: early detection.
	r1 := c.Access(memsys.Req{Now: 100000, Addr: blockAddr(2 * setBlocks), Write: false})
	// Miss with a false partial match (tag 129): must probe the bank.
	r2 := c.Access(memsys.Req{Now: 300000, Addr: blockAddr(129 * setBlocks), Write: false})
	if r2.DoneAt-300000 <= r1.DoneAt-100000 {
		t.Fatalf("false-match miss (%d cyc) must exceed clean miss (%d cyc)",
			r2.DoneAt-300000, r1.DoneAt-100000)
	}
}

func TestGroupOfMissingBlock(t *testing.T) {
	c, _ := build(t, nil)
	if g := c.GroupOf(blockAddr(99)); g != -1 {
		t.Fatalf("absent block reports group %d, want -1", g)
	}
	if c.Contains(blockAddr(99)) {
		t.Fatal("absent block must not be contained")
	}
}

func TestWriteHitDirtiesAndWritesBackOnce(t *testing.T) {
	c, mem := build(t, nil)
	stride := c.geo.NumSets()
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(0), Write: false})
	c.Access(memsys.Req{Now: 10000, Addr: blockAddr(0), Write: true}) // write hit: dirty (and bubbles up)
	// Evict it: fill the slowest group repeatedly until block 0's way
	// group... block 0 bubbled to group 6 after the write hit, so evict
	// via many conflicting fills is impractical; instead verify dirty
	// state directly.
	way, ok := c.lookup(blockAddr(0))
	if !ok {
		t.Fatal("block must be resident")
	}
	if !c.line(c.geo.SetIndex(blockAddr(0)), way).dirty {
		t.Fatal("write hit must dirty the line")
	}
	_ = stride
	_ = mem
}

func TestFillCountsAndDistributionConsistent(t *testing.T) {
	c, _ := build(t, nil)
	rng := mathx.NewRNG(41)
	for i := 0; i < 30000; i++ {
		c.Access(memsys.Req{Now: int64(i) * 40, Addr: blockAddr(rng.Intn(60000)), Write: rng.Bool(0.25)})
	}
	d := c.Distribution()
	if d.Total() != c.Counters().Get("accesses") {
		t.Fatalf("distribution total %d != accesses %d",
			d.Total(), c.Counters().Get("accesses"))
	}
	if d.MissCount() != c.Counters().Get("misses") {
		t.Fatal("miss counts disagree")
	}
}

func TestEnergyOrderingAcrossPolicies(t *testing.T) {
	// ss-performance > incremental > ss-energy in energy for a
	// hit-dominated stream (multicast vs sequential-all vs narrowed).
	run := func(policy SearchPolicy) float64 {
		c, _ := build(t, func(cfg *Config) { cfg.Policy = policy })
		for i := 0; i < 2000; i++ {
			c.Access(memsys.Req{Now: int64(i) * 100, Addr: blockAddr(i % 64), Write: false})
		}
		return c.EnergyNJ()
	}
	perf, inc, energy := run(SSPerformance), run(Incremental), run(SSEnergy)
	if !(perf > inc && inc > energy) {
		t.Fatalf("energy ordering wrong: ss-perf %.0f, incremental %.0f, ss-energy %.0f",
			perf, inc, energy)
	}
}
