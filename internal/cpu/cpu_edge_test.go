package cpu

import (
	"testing"

	"nurapid/internal/workload"
)

func TestSingleL1DPortLimitsMemoryThroughput(t *testing.T) {
	// A stream of L1-hitting loads can retire at most one per cycle, so
	// IPC for a pure-load stream saturates at ~1 even with width 8.
	instrs := []workload.Instr{{Kind: workload.Load, PC: 0x400000, Addr: 0x10000000}}
	c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: instrs, loop: true}, 30000)
	if res.IPC > 1.05 {
		t.Fatalf("pure-load IPC %.2f exceeds the single L1D port bound", res.IPC)
	}
	if res.IPC < 0.8 {
		t.Fatalf("pure-load IPC %.2f far below the port bound", res.IPC)
	}
}

func TestMixedStreamExceedsOneIPC(t *testing.T) {
	// ALU work between loads issues in parallel with the L1D port.
	instrs := make([]workload.Instr, 8)
	for i := range instrs {
		instrs[i] = workload.Instr{Kind: workload.ALU, PC: 0x400000 + uint64(i)*4}
	}
	instrs[0] = workload.Instr{Kind: workload.Load, PC: 0x400000, Addr: 0x10000000}
	c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: instrs, loop: true}, 40000)
	if res.IPC < 2 {
		t.Fatalf("mixed stream IPC %.2f; ALU work should overlap the load port", res.IPC)
	}
}

func TestICacheMissStallsFetch(t *testing.T) {
	// Jumping between many distinct 32-B fetch blocks across a footprint
	// larger than the 64-KB L1I forces I-misses, which stall dispatch.
	mkInstrs := func(spreadBlocks int) []workload.Instr {
		out := make([]workload.Instr, 256)
		for i := range out {
			out[i] = workload.Instr{Kind: workload.ALU,
				PC: 0x400000 + uint64(i%spreadBlocks)*4096}
		}
		return out
	}
	run := func(spread int) cpuRunStats {
		c := MustNew(newStubL2(50), WithL1EnergyNJ(0.5))
		res := c.Run(&fixedSource{instrs: mkInstrs(spread), loop: true}, 30000)
		return cpuRunStats{ipc: res.IPC, iMisses: res.L1IMisses}
	}
	small := run(8)    // fits the L1I: no steady-state misses
	large := run(4096) // 16 MB of fetch blocks: constant misses
	if large.iMisses <= small.iMisses {
		t.Fatalf("large code footprint must miss more: %d vs %d", large.iMisses, small.iMisses)
	}
	if large.ipc >= small.ipc {
		t.Fatalf("I-misses must cost IPC: %.2f vs %.2f", large.ipc, small.ipc)
	}
}

type cpuRunStats struct {
	ipc     float64
	iMisses int64
}

func TestLSQBoundsInFlightMemOps(t *testing.T) {
	// With a huge L2 latency and LSQ=2, in-flight loads are capped, so
	// throughput collapses versus LSQ=32.
	run := func(lsq int) float64 {
		cfg := DefaultConfig()
		cfg.LSQ = lsq
		instrs := make([]workload.Instr, 64)
		for i := range instrs {
			instrs[i] = workload.Instr{Kind: workload.Load, PC: 0x400000,
				Addr: 0x10000000 + uint64(i)*4096}
		}
		c := MustNew(newStubL2(200), WithConfig(cfg), WithL1EnergyNJ(0.5))
		return c.Run(&fixedSource{instrs: instrs, loop: true}, 10000).IPC
	}
	if small, big := run(2), run(32); small >= big {
		t.Fatalf("LSQ=2 IPC %.3f must be below LSQ=32 IPC %.3f", small, big)
	}
}

func TestDirtyL1VictimWritesToL2(t *testing.T) {
	// Stores to conflicting L1 sets generate writeback traffic to the
	// lower level beyond the demand misses.
	cfg := DefaultConfig()
	stub := newStubL2(10)
	c := MustNew(stub, WithConfig(cfg), WithL1EnergyNJ(0.5))
	l1Sets := uint64(cfg.L1Geometry.NumSets() * cfg.L1Geometry.BlockBytes)
	instrs := make([]workload.Instr, 8)
	for i := range instrs {
		// 8 blocks in one L1 set (2-way): constant dirty evictions.
		instrs[i] = workload.Instr{Kind: workload.Store, PC: 0x400000,
			Addr: 0x10000000 + uint64(i)*l1Sets}
	}
	res := c.Run(&fixedSource{instrs: instrs, loop: true}, 5000)
	if stub.Accesses <= res.L1DMisses {
		t.Fatalf("L2 accesses (%d) must exceed demand misses (%d) due to writebacks",
			stub.Accesses, res.L1DMisses)
	}
}

func TestZeroMaxInstr(t *testing.T) {
	c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: alus(8), loop: true}, 0)
	if res.Instructions != 0 {
		t.Fatalf("committed %d, want 0", res.Instructions)
	}
}

func TestBranchWithoutMispredictIsCheap(t *testing.T) {
	instrs := alus(8)
	instrs[3] = workload.Instr{Kind: workload.Branch, PC: 0x40000c}
	c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: instrs, loop: true}, 40000)
	if res.IPC < 6 {
		t.Fatalf("predicted branches must not stall: IPC %.2f", res.IPC)
	}
}
