package cpu

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/memsys/memtest"
	"nurapid/internal/uca"
	"nurapid/internal/workload"
)

// newStubL2 is the shared fixed-latency lower level (memtest.Stub).
func newStubL2(latency int64) *memtest.Stub { return memtest.NewStub(latency) }

// aluSource yields only ALU instructions at a fixed PC run.
type fixedSource struct {
	instrs []workload.Instr
	pos    int
	loop   bool
}

func (f *fixedSource) Next() (workload.Instr, bool) {
	if f.pos >= len(f.instrs) {
		if !f.loop {
			return workload.Instr{}, false
		}
		f.pos = 0
	}
	in := f.instrs[f.pos]
	f.pos++
	return in, true
}

func alus(n int) []workload.Instr {
	out := make([]workload.Instr, n)
	for i := range out {
		out[i] = workload.Instr{Kind: workload.ALU, PC: 0x400000 + uint64(i%8)*4}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero width must be rejected")
	}
	bad = DefaultConfig()
	bad.L1Geometry.BlockBytes = 33
	if err := bad.Validate(); err == nil {
		t.Fatal("bad L1 geometry must be rejected")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROB = 0
	if _, err := New(newStubL2(10), WithConfig(cfg), WithL1EnergyNJ(0.5)); err == nil {
		t.Fatal("bad config must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.LSQ = 0
	MustNew(newStubL2(10), WithConfig(cfg))
}

func TestALUThroughput(t *testing.T) {
	// Pure ALU code at full width: IPC should approach the width.
	c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: alus(64), loop: true}, 80000)
	if res.Instructions != 80000 {
		t.Fatalf("committed %d", res.Instructions)
	}
	if res.IPC < 6.0 {
		t.Fatalf("ALU IPC = %.2f, want near width 8", res.IPC)
	}
}

func TestMispredictsCutIPC(t *testing.T) {
	run := func(mispredict bool) float64 {
		instrs := alus(16)
		instrs[7] = workload.Instr{Kind: workload.Branch, PC: 0x400000, Mispredicted: mispredict}
		c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
		return c.Run(&fixedSource{instrs: instrs, loop: true}, 40000).IPC
	}
	good, bad := run(false), run(true)
	if bad >= good*0.8 {
		t.Fatalf("mispredicts must cut IPC: %.2f -> %.2f", good, bad)
	}
}

func TestLoadsHitL1(t *testing.T) {
	instrs := []workload.Instr{
		{Kind: workload.Load, PC: 0x400000, Addr: 0x10000000},
	}
	c := MustNew(newStubL2(50), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: instrs, loop: true}, 10000)
	if res.L1DAccesses != 10000 {
		t.Fatalf("L1D accesses = %d", res.L1DAccesses)
	}
	if res.L1DMisses != 1 {
		t.Fatalf("L1D misses = %d, want 1 (only the cold miss)", res.L1DMisses)
	}
	// One data miss plus at most one instruction-fetch miss reach L2.
	if res.L2Accesses > 2 {
		t.Fatalf("L2 accesses = %d, want <= 2", res.L2Accesses)
	}
}

func TestL2LatencyHurtsIPC(t *testing.T) {
	// A pointer-chase-like stream of L1-missing loads: slower L2 must
	// yield lower IPC.
	stream := func() workload.Source {
		app, _ := workload.ByName("mcf")
		return workload.MustNewGenerator(app, 1)
	}
	run := func(lat int64) float64 {
		c := MustNew(newStubL2(lat), WithL1EnergyNJ(0.5))
		return c.Run(stream(), 100000).IPC
	}
	fast, slow := run(14), run(60)
	if slow >= fast {
		t.Fatalf("IPC with 60-cycle L2 (%.3f) must be below 14-cycle (%.3f)", slow, fast)
	}
}

func TestMSHRsBoundOutstandingMisses(t *testing.T) {
	// Distinct-block loads missing in L1 with a slow L2: only MSHRs many
	// can be outstanding, throttling IPC versus an unbounded window.
	many := DefaultConfig()
	few := DefaultConfig()
	few.MSHRs = 1
	mk := func(cfg Config) float64 {
		instrs := make([]workload.Instr, 256)
		for i := range instrs {
			instrs[i] = workload.Instr{Kind: workload.Load, PC: 0x400000,
				Addr: 0x10000000 + uint64(i)*4096}
		}
		c := MustNew(newStubL2(100), WithConfig(cfg), WithL1EnergyNJ(0.5))
		return c.Run(&fixedSource{instrs: instrs, loop: true}, 20000).IPC
	}
	if mk(few) >= mk(many)*0.7 {
		t.Fatalf("1 MSHR (%.3f) must be much slower than 8 (%.3f)", mk(few), mk(many))
	}
}

func TestSourceExhaustionStopsRun(t *testing.T) {
	c := MustNew(newStubL2(10), WithL1EnergyNJ(0.5))
	res := c.Run(&fixedSource{instrs: alus(100)}, 1<<40)
	if res.Instructions != 100 {
		t.Fatalf("committed %d, want 100", res.Instructions)
	}
	if res.Cycles <= 0 {
		t.Fatal("cycles must advance")
	}
}

func TestResultMetrics(t *testing.T) {
	app, _ := workload.ByName("applu")
	c := MustNew(newStubL2(20), WithL1EnergyNJ(0.57))
	res := c.Run(workload.MustNewGenerator(app, 2), 50000)
	if res.Instructions != 50000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC = %v out of range", res.IPC)
	}
	if res.APKI <= 0 {
		t.Fatal("APKI must be positive for a high-load app")
	}
	if res.L1EnergyNJ <= 0 {
		t.Fatal("L1 energy must accumulate")
	}
	if res.L1IAccesses == 0 {
		t.Fatal("instruction fetches must access the L1I")
	}
}

func TestIntegrationWithBaseHierarchy(t *testing.T) {
	// End to end: generator -> CPU -> L1s -> base L2/L3 -> memory.
	app, _ := workload.ByName("equake")
	mem := memsys.NewMemory(128)
	base := uca.NewHierarchy(cacti.Default(), mem)
	c := MustNew(base, WithL1EnergyNJ(0.57))
	res := c.Run(workload.MustNewGenerator(app, 3), 100000)
	if res.IPC <= 0 {
		t.Fatal("IPC must be positive")
	}
	if base.Counters().Get("accesses") != res.L2Accesses {
		t.Fatalf("CPU counted %d L2 accesses, hierarchy %d",
			res.L2Accesses, base.Counters().Get("accesses"))
	}
	if mem.Accesses == 0 {
		t.Fatal("some accesses must reach memory")
	}
}

var _ workload.Source = (*fixedSource)(nil)
