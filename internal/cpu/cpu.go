// Package cpu is a cycle-level simplified out-of-order core in the role
// SimpleScalar played for the paper, with the paper's Table 1 structural
// parameters: 8-wide issue, a 64-entry instruction window (RUU), a
// 32-entry load/store queue, pipelined 3-cycle 64-KB 2-way L1s, 8 MSHRs,
// a hybrid branch predictor folded into the workload's misprediction
// stream, and a 9-cycle redirect penalty.
//
// The model captures the first-order effects the evaluation depends on:
// how much L2 latency the out-of-order window hides, how the MSHRs bound
// memory-level parallelism, and how L2 port occupancy feeds back into
// the pipeline. Instructions dispatch in order into the window, complete
// at computed times, and commit in order.
package cpu

import (
	"fmt"

	"nurapid/internal/cache"
	"nurapid/internal/memsys"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// Config sets the core's structural parameters.
type Config struct {
	Width             int   // fetch/dispatch/commit width
	ROB               int   // instruction window (paper: RUU 64)
	LSQ               int   // in-flight memory instructions
	MSHRs             int   // outstanding L1 misses
	MispredictPenalty int64 // redirect bubble in cycles
	L1Latency         int64 // L1 hit latency
	L1Geometry        cache.Geometry
	FetchBytes        int // bytes per fetch block (I-cache access unit)
}

// DefaultConfig returns the paper's Table 1 core.
func DefaultConfig() Config {
	return Config{
		Width:             8,
		ROB:               64,
		LSQ:               32,
		MSHRs:             8,
		MispredictPenalty: 9,
		L1Latency:         3,
		L1Geometry:        cache.Geometry{CapacityBytes: 64 << 10, BlockBytes: 32, Assoc: 2},
		FetchBytes:        32,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.LSQ <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cpu: non-positive structure size in %+v", c)
	}
	if c.L1Latency <= 0 || c.MispredictPenalty < 0 || c.FetchBytes <= 0 {
		return fmt.Errorf("cpu: bad latency/penalty in %+v", c)
	}
	return c.L1Geometry.Validate()
}

// Result summarizes one simulation run.
type Result struct {
	Instructions int64
	Cycles       int64
	IPC          float64

	L1DAccesses, L1DMisses int64
	L1IAccesses, L1IMisses int64
	L2Accesses             int64
	L1DInvals              int64   // private-L1 lines shot down by coherence-lite
	APKI                   float64 // L2 accesses per 1000 instructions

	L1EnergyNJ float64
}

// Snapshot emits every metric of the run summary (statsreg convention:
// every counter field must appear here).
func (r Result) Snapshot() []stats.KV {
	return []stats.KV{
		{Name: "instructions", Value: float64(r.Instructions)},
		{Name: "cycles", Value: float64(r.Cycles)},
		{Name: "ipc", Value: r.IPC},
		{Name: "l1d_accesses", Value: float64(r.L1DAccesses)},
		{Name: "l1d_misses", Value: float64(r.L1DMisses)},
		{Name: "l1i_accesses", Value: float64(r.L1IAccesses)},
		{Name: "l1i_misses", Value: float64(r.L1IMisses)},
		{Name: "l2_accesses", Value: float64(r.L2Accesses)},
		{Name: "l1d_invals", Value: float64(r.L1DInvals)},
		{Name: "apki", Value: r.APKI},
		{Name: "l1_energy_nj", Value: r.L1EnergyNJ},
	}
}

type robEntry struct {
	done  int64
	isMem bool
}

// CPU drives a workload through the L1s and the lower-level organization
// under test.
type CPU struct {
	cfg    Config
	l1d    *cache.Cache
	l1i    *cache.Cache
	mshr   *cache.MSHRFile
	l2     memsys.LowerLevel
	l1NJ   float64
	coreID int

	rob        []robEntry
	head, tail int
	used       int
	lsqUsed    int

	cycle      int64
	committed  int64
	stallUntil int64 // no dispatch before this cycle (redirect, MSHR full)
	memIssued  bool  // the single L1D port already used this cycle

	curFetchBlock uint64
	l2Accesses    int64
	l1Energy      float64
	l1dInvals     int64 // coherence-lite shoot-downs absorbed

	// Stepped-run state (Start/Step/Result). pending is held by value so
	// a stalled instruction survives across Step calls without escaping
	// to the heap.
	src        workload.Source
	maxInstr   int64
	pending    workload.Instr
	hasPending bool
	sourceDone bool
	halted     bool
}

// Option configures a CPU at construction (sim.NewRunner style).
type Option func(*CPU)

// WithConfig sets the core's structural parameters (default:
// DefaultConfig).
func WithConfig(cfg Config) Option { return func(c *CPU) { c.cfg = cfg } }

// WithL1EnergyNJ sets the per-access L1 energy (Table 2's 0.57 nJ for 2
// ports; default 0 — timing only).
func WithL1EnergyNJ(nj float64) Option { return func(c *CPU) { c.l1NJ = nj } }

// WithCoreID sets the id stamped on every lower-level request this core
// issues (memsys.Req.Core; default 0). Shared organizations use it for
// per-core attribution.
func WithCoreID(id int) Option { return func(c *CPU) { c.coreID = id } }

// New builds a CPU around the given lower-level cache; options default
// to the paper's Table 1 core with zero L1 energy and core id 0.
func New(l2 memsys.LowerLevel, opts ...Option) (*CPU, error) {
	c := &CPU{cfg: DefaultConfig(), l2: l2}
	for _, o := range opts {
		o(c)
	}
	if err := c.cfg.Validate(); err != nil {
		return nil, err
	}
	l1d, err := cache.NewCache(c.cfg.L1Geometry, cache.LRU, nil)
	if err != nil {
		return nil, err
	}
	l1i, err := cache.NewCache(c.cfg.L1Geometry, cache.LRU, nil)
	if err != nil {
		return nil, err
	}
	c.l1d = l1d
	c.l1i = l1i
	c.mshr = cache.NewMSHRFile(c.cfg.MSHRs)
	c.rob = make([]robEntry, c.cfg.ROB)
	c.curFetchBlock = ^uint64(0)
	return c, nil
}

// MustNew panics on configuration errors.
func MustNew(l2 memsys.LowerLevel, opts ...Option) *CPU {
	c, err := New(l2, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// NewWithConfig builds a CPU in the old positional form.
//
// Deprecated: use New(l2, WithConfig(cfg), WithL1EnergyNJ(l1NJ)).
func NewWithConfig(cfg Config, l2 memsys.LowerLevel, l1NJ float64) (*CPU, error) {
	return New(l2, WithConfig(cfg), WithL1EnergyNJ(l1NJ))
}

// CoreID returns the id stamped on this core's lower-level requests.
func (c *CPU) CoreID() int { return c.coreID }

// Run executes up to maxInstr instructions from src (or until the source
// ends) and returns the run summary. It is Start + Step-to-completion +
// Result; lockstep drivers (internal/cmp) call those pieces directly.
func (c *CPU) Run(src workload.Source, maxInstr int64) Result {
	c.Start(src, maxInstr)
	for c.Step() {
	}
	return c.Result()
}

// Start arms the core to execute up to maxInstr instructions from src.
// It does not simulate any cycles; drive the core with Step.
func (c *CPU) Start(src workload.Source, maxInstr int64) {
	c.src = src
	c.maxInstr = maxInstr
	c.hasPending = false
	c.sourceDone = false
	c.halted = false
}

// Step simulates one cycle: commit, then dispatch. It returns false once
// the core is done (instruction budget reached, or the source is
// exhausted and the window has drained); the clock does not advance on
// the final call, so Cycles counts only simulated cycles — a full
// Start/Step loop is cycle-for-cycle identical to the pre-Step Run loop.
func (c *CPU) Step() bool {
	if c.halted || c.committed >= c.maxInstr {
		c.halted = true
		return false
	}
	c.commitStage()

	// Dispatch stage.
	c.memIssued = false
	dispatched := 0
	for dispatched < c.cfg.Width && c.used < c.cfg.ROB && c.cycle >= c.stallUntil {
		if !c.hasPending {
			if c.sourceDone || c.committed+int64(c.used) >= c.maxInstr {
				break
			}
			in, ok := c.src.Next()
			if !ok {
				c.sourceDone = true
				break
			}
			c.pending = in
			c.hasPending = true
		}
		if !c.dispatch(&c.pending) {
			break // structural stall; retry the same instruction
		}
		c.hasPending = false
		dispatched++
	}

	if c.sourceDone && c.used == 0 && !c.hasPending {
		c.halted = true
		return false
	}
	c.cycle++
	return true
}

// Done reports whether the core has finished its Start-ed run.
func (c *CPU) Done() bool {
	return c.halted || c.committed >= c.maxInstr
}

// Result summarizes the run so far.
func (c *CPU) Result() Result {
	res := Result{
		Instructions: c.committed,
		Cycles:       c.cycle,
		L1DAccesses:  c.l1d.Accesses,
		L1DMisses:    c.l1d.Accesses - c.l1d.Hits,
		L1IAccesses:  c.l1i.Accesses,
		L1IMisses:    c.l1i.Accesses - c.l1i.Hits,
		L2Accesses:   c.l2Accesses,
		L1DInvals:    c.l1dInvals,
		L1EnergyNJ:   c.l1Energy,
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	if res.Instructions > 0 {
		res.APKI = float64(res.L2Accesses) * 1000 / float64(res.Instructions)
	}
	return res
}

// InvalidateL1 drops addr's block from the private L1D if resident —
// the coherence-lite shoot-down another core's shared write triggers.
// The stale copy is discarded without writeback (the writer's copy
// supersedes it); the drop is counted in Result.L1DInvals.
//
// Event contract: the CPU itself emits nothing here. Each true return
// makes the caller (cmp.System.shootDown) emit one obs.KindInval
// stamped with the victim core's id and the writing access's DoneAt,
// so shoot-downs trail their access window's outcome in the trace.
//
//nurapid:hotpath
func (c *CPU) InvalidateL1(addr uint64) bool {
	dropped, _ := c.l1d.Invalidate(addr)
	if dropped {
		c.l1dInvals++
	}
	return dropped
}

// commitStage retires up to Width completed instructions in order.
func (c *CPU) commitStage() {
	for n := 0; n < c.cfg.Width && c.used > 0; n++ {
		e := &c.rob[c.head]
		if e.done > c.cycle {
			return
		}
		if e.isMem {
			c.lsqUsed--
		}
		c.head = (c.head + 1) % c.cfg.ROB
		c.used--
		c.committed++
	}
}

// dispatch tries to enter one instruction into the window; it returns
// false on a structural stall (LSQ or MSHR full, I-fetch miss pending).
func (c *CPU) dispatch(in *workload.Instr) bool {
	// Instruction fetch: one I-cache access per fetch-block transition.
	fb := in.PC / uint64(c.cfg.FetchBytes)
	if fb != c.curFetchBlock {
		c.curFetchBlock = fb
		c.l1Energy += c.l1NJ
		if out := c.l1i.Access(in.PC, false); !out.Hit {
			done := c.l2Request(in.PC, false)
			c.stallUntil = done // fetch stalls on an I-miss
			return false
		}
	}

	var done int64
	isMem := false
	switch in.Kind {
	case workload.ALU:
		done = c.cycle + 1
	case workload.Branch:
		done = c.cycle + 1
		if in.Mispredicted {
			c.stallUntil = c.cycle + 1 + c.cfg.MispredictPenalty
		}
	case workload.Load, workload.Store:
		if c.lsqUsed >= c.cfg.LSQ {
			return false // wait for commits to drain the LSQ
		}
		if c.memIssued {
			return false // the 1-ported, pipelined L1D takes one access per cycle
		}
		c.memIssued = true
		isMem = true
		write := in.Kind == workload.Store
		block := in.Addr / 128 // lower-level block granularity
		// Structural pre-check before any state changes: a miss that
		// cannot merge needs a free MSHR, or dispatch stalls here and
		// retries the same instruction once one frees.
		if !c.l1d.Contains(in.Addr) {
			if _, merge := c.mshr.Lookup(block); !merge &&
				c.mshr.Outstanding(c.cycle) >= c.cfg.MSHRs {
				c.stallUntil = c.mshr.EarliestDone()
				return false
			}
		}
		c.l1Energy += c.l1NJ
		out := c.l1d.Access(in.Addr, write)
		if out.Evicted && out.Victim.Dirty {
			// L1 writeback into the lower level; does not block.
			c.l2Request(out.Victim.Addr, true)
		}
		switch {
		case out.Hit:
			done = c.cycle + c.cfg.L1Latency
		default:
			if fill, ok := c.mshr.Lookup(block); ok {
				c.mshr.Allocate(c.cycle, block, fill) // merge
				done = fill
			} else {
				fill := c.l2Request(in.Addr, write) + c.cfg.L1Latency
				if _, ok := c.mshr.Allocate(c.cycle, block, fill); !ok {
					panic("cpu: MSHR full despite pre-check")
				}
				done = fill
			}
			if write {
				// Stores retire through the store buffer.
				done = c.cycle + 1
			}
		}
	}

	c.rob[c.tail] = robEntry{done: done, isMem: isMem}
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.used++
	if isMem {
		c.lsqUsed++
	}
	return true
}

// l2Request issues one access to the organization under test.
//
//nurapid:hotpath
func (c *CPU) l2Request(addr uint64, write bool) int64 {
	c.l2Accesses++
	return c.l2.Access(memsys.Req{Now: c.cycle, Addr: addr, Write: write, Core: c.coreID}).DoneAt
}
