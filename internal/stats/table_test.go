package stats

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Table X", "name", "value")
	tb.AddRow("alpha", 42)
	tb.AddRow("beta", 3.14159)
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table X", "name", "alpha", "42", "3.142"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("longlonglong", "x")
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Header line, separator, one data row.
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), lines)
	}
	// Column b must start at the same offset on header and data rows.
	hIdx := strings.Index(lines[0], "b")
	dIdx := strings.Index(lines[2], "x")
	if hIdx != dIdx {
		t.Fatalf("columns misaligned: header b at %d, data x at %d", hIdx, dIdx)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %q", out)
	}
}

func TestTableCellAccess(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRowStrings("v0")
	tb.AddRow(7)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	if tb.Cell(0, 0) != "v0" || tb.Cell(1, 0) != "7" {
		t.Fatal("Cell returned wrong contents")
	}
	if tb.Title() != "t" {
		t.Fatal("Title accessor wrong")
	}
}
