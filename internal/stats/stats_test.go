package stats

import (
	"testing"
)

func TestCountersZeroValue(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("untouched counter must read 0")
	}
	c.Inc("x")
	c.Add("x", 4)
	if c.Get("x") != 5 {
		t.Fatalf("x = %d, want 5", c.Get("x"))
	}
}

func TestCountersNamesSorted(t *testing.T) {
	var c Counters
	c.Inc("b")
	c.Inc("a")
	c.Inc("c")
	names := c.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names() = %v, want [a b c]", names)
	}
}

func TestCountersSumAndReset(t *testing.T) {
	var c Counters
	c.Add("a", 3)
	c.Add("b", 7)
	if c.Sum() != 10 {
		t.Fatalf("Sum = %d, want 10", c.Sum())
	}
	c.Reset()
	if c.Sum() != 0 || c.Get("a") != 0 {
		t.Fatal("Reset must zero all counters")
	}
}

func TestCountersRatio(t *testing.T) {
	var c Counters
	c.Add("hits", 3)
	c.Add("accesses", 4)
	if got := c.Ratio("hits", "accesses"); got != 0.75 {
		t.Fatalf("Ratio = %v, want 0.75", got)
	}
	if c.Ratio("hits", "nonexistent") != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
}

// TestCountersString pins the exact rendering (name left-aligned to 32,
// value right-aligned to 12, sorted by name): callers diff this output,
// so the format is part of the contract.
func TestCountersString(t *testing.T) {
	var c Counters
	c.Add("beta", 3)
	c.Add("alpha", 12)
	want := "alpha                                      12\n" +
		"beta                                        3\n"
	if got := c.String(); got != want {
		t.Fatalf("String() =\n%q\nwant\n%q", got, want)
	}
	var empty Counters
	if got := empty.String(); got != "" {
		t.Fatalf("empty String() = %q, want empty", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.8642); got != "86.4%" {
		t.Fatalf("Percent = %q, want 86.4%%", got)
	}
}

func TestFrac(t *testing.T) {
	if Frac(1, 2) != 0.5 || Frac(1, 0) != 0 {
		t.Fatal("Frac misbehaves")
	}
}
