// Package stats provides the counting, distribution, and table-rendering
// helpers shared by the simulator and the experiment harness.
//
// The simulator hot paths use plain struct fields for their own counters;
// this package is for the cross-cutting pieces: named counter sets that
// experiments can diff, access-distribution summaries (the stacked bars
// of the paper's Figures 4, 5, and 7), and aligned text/CSV tables (the
// paper's Tables 2-4 and per-figure series).
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing event counts.
// The zero value is ready to use.
type Counters struct {
	m map[string]int64
}

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Set overwrites counter name with value (for derived gauges).
func (c *Counters) Set(name string, value int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] = value
}

// Get returns the current value of counter name (0 if never touched).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter.
func (c *Counters) Reset() { c.m = nil }

// Sum returns the total across all counters.
func (c *Counters) Sum() int64 {
	var s int64
	for _, v := range c.m {
		s += v
	}
	return s
}

// Ratio returns Get(num)/Get(den), or 0 when the denominator is zero.
func (c *Counters) Ratio(num, den string) float64 {
	d := c.Get(den)
	if d == 0 {
		return 0
	}
	return float64(c.Get(num)) / float64(d)
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.m[n])
	}
	return b.String()
}

// Percent formats a fraction as "NN.N%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Frac returns a/b as a float, or 0 when b is 0.
func Frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
