package stats

// KV is one named metric sample. Slices of KV are the repository's
// snapshot convention: any struct that accumulates counters exposes a
// Snapshot method returning every metric it holds, in a deterministic
// order, and the statsreg analyzer (internal/lint) verifies no counter
// field is silently omitted.
type KV struct {
	Name  string
	Value float64
}

// Snapshot emits every counter, sorted by name.
func (c *Counters) Snapshot() []KV {
	names := c.Names()
	out := make([]KV, len(names))
	for i, n := range names {
		out[i] = KV{Name: n, Value: float64(c.m[n])}
	}
	return out
}

// Snapshot emits the per-category hit counts in category order, then the
// miss count.
func (d *Distribution) Snapshot() []KV {
	out := make([]KV, 0, len(d.labels)+1)
	for i, l := range d.labels {
		out = append(out, KV{Name: "hits_" + l, Value: float64(d.counts[i])})
	}
	return append(out, KV{Name: "misses", Value: float64(d.misses)})
}
