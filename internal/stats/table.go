package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them as an aligned
// text table or as CSV. The experiment drivers use it to print the same
// rows/series the paper's tables and figures report.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: append([]string(nil), headers...)}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells are
// rendered with three significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a preformatted row.
func (t *Table) AddRowStrings(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// Cell returns the rendered cell at (row, col); it panics when out of
// range, which keeps experiment assertions honest.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd
	}
	total += len(widths) // separator slack
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (cells containing commas
// or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
