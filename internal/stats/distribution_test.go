package stats

import (
	"math"
	"strings"
	"testing"
)

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution("g0", "g1", "g2")
	for i := 0; i < 6; i++ {
		d.AddHit(0)
	}
	for i := 0; i < 3; i++ {
		d.AddHit(1)
	}
	d.AddMiss()
	if d.Total() != 10 {
		t.Fatalf("Total = %d, want 10", d.Total())
	}
	if d.HitFrac(0) != 0.6 || d.HitFrac(1) != 0.3 || d.HitFrac(2) != 0 {
		t.Fatalf("fracs = %v %v %v", d.HitFrac(0), d.HitFrac(1), d.HitFrac(2))
	}
	if d.MissFrac() != 0.1 {
		t.Fatalf("MissFrac = %v, want 0.1", d.MissFrac())
	}
	if d.HitCount(0) != 6 || d.MissCount() != 1 {
		t.Fatal("raw counts wrong")
	}
}

func TestDistributionFracsSumToOne(t *testing.T) {
	d := NewDistribution("a", "b")
	d.AddHit(0)
	d.AddHit(1)
	d.AddHit(1)
	d.AddMiss()
	sum := 0.0
	for _, f := range d.Fracs() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution("a")
	if d.Total() != 0 || d.HitFrac(0) != 0 || d.MissFrac() != 0 {
		t.Fatal("empty distribution must report zeros")
	}
}

func TestDistributionAddHitPanicsOutOfRange(t *testing.T) {
	d := NewDistribution("a")
	defer func() {
		if recover() == nil {
			t.Fatal("AddHit(5) must panic for a 1-category distribution")
		}
	}()
	d.AddHit(5)
}

func TestDistributionMerge(t *testing.T) {
	a := NewDistribution("x", "y")
	b := NewDistribution("x", "y")
	a.AddHit(0)
	b.AddHit(1)
	b.AddMiss()
	a.Merge(b)
	if a.HitCount(0) != 1 || a.HitCount(1) != 1 || a.MissCount() != 1 {
		t.Fatal("Merge did not combine tallies")
	}
}

func TestDistributionMergeMismatchPanics(t *testing.T) {
	a := NewDistribution("x")
	b := NewDistribution("x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Merge must panic")
		}
	}()
	a.Merge(b)
}

func TestDistributionLabelsAndString(t *testing.T) {
	d := NewDistribution("g0", "g1")
	if d.NumCategories() != 2 || d.Label(1) != "g1" {
		t.Fatal("label accessors wrong")
	}
	d.AddHit(0)
	s := d.String()
	if !strings.Contains(s, "g0") || !strings.Contains(s, "miss") {
		t.Fatalf("String() = %q missing content", s)
	}
}
