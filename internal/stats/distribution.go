package stats

import (
	"fmt"
	"strings"
)

// Distribution tallies events into a fixed set of ordered categories plus
// an implicit "miss" category. It models the stacked-bar charts of the
// paper's Figures 4, 5, and 7: the fraction of all L2 accesses served by
// each d-group, plus the miss fraction.
type Distribution struct {
	labels []string
	counts []int64
	misses int64
}

// NewDistribution creates a distribution over the given category labels.
func NewDistribution(labels ...string) *Distribution {
	return &Distribution{
		labels: append([]string(nil), labels...),
		counts: make([]int64, len(labels)),
	}
}

// AddHit records one event in category i. It panics on out-of-range i so
// that miscounted d-group indices fail loudly in tests.
//
//nurapid:hotpath
func (d *Distribution) AddHit(i int) {
	d.counts[i]++
}

// AddMiss records one miss event.
//
//nurapid:hotpath
func (d *Distribution) AddMiss() { d.misses++ }

// Total returns the number of recorded events including misses.
func (d *Distribution) Total() int64 {
	t := d.misses
	for _, c := range d.counts {
		t += c
	}
	return t
}

// HitFrac returns the fraction of all events that hit in category i.
func (d *Distribution) HitFrac(i int) float64 {
	return Frac(d.counts[i], d.Total())
}

// MissFrac returns the fraction of all events that missed.
func (d *Distribution) MissFrac() float64 {
	return Frac(d.misses, d.Total())
}

// HitCount returns the raw count for category i.
func (d *Distribution) HitCount(i int) int64 { return d.counts[i] }

// MissCount returns the raw miss count.
func (d *Distribution) MissCount() int64 { return d.misses }

// NumCategories returns the number of hit categories (excluding misses).
func (d *Distribution) NumCategories() int { return len(d.labels) }

// Label returns the label of category i.
func (d *Distribution) Label(i int) string { return d.labels[i] }

// Fracs returns the per-category hit fractions followed by the miss
// fraction; the slice sums to ~1 when Total() > 0.
func (d *Distribution) Fracs() []float64 {
	out := make([]float64, len(d.counts)+1)
	for i := range d.counts {
		out[i] = d.HitFrac(i)
	}
	out[len(d.counts)] = d.MissFrac()
	return out
}

// Merge adds other's tallies into d. The two distributions must have the
// same number of categories.
func (d *Distribution) Merge(other *Distribution) {
	if len(other.counts) != len(d.counts) {
		panic("stats: merging distributions with different category counts")
	}
	for i, c := range other.counts {
		d.counts[i] += c
	}
	d.misses += other.misses
}

// String renders the distribution as "label: NN.N%" segments.
func (d *Distribution) String() string {
	var b strings.Builder
	for i, l := range d.labels {
		fmt.Fprintf(&b, "%s: %s  ", l, Percent(d.HitFrac(i)))
	}
	fmt.Fprintf(&b, "miss: %s", Percent(d.MissFrac()))
	return b.String()
}
