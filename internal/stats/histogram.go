package stats

import "fmt"

// Histogram is a fixed-bucket histogram over non-negative integer
// samples: numBuckets contiguous buckets of equal width starting at
// zero, plus an overflow bucket for everything past the last edge. The
// observability layer uses it for demotion-chain depths and hit-latency
// distributions; buckets are fixed at construction so recording a
// sample is two array operations and never allocates.
type Histogram struct {
	name    string
	width   int64
	buckets []int64
	over    int64 // samples >= width*len(buckets)
	total   int64
	sum     int64
}

// NewHistogram builds a histogram named name (metric-name convention:
// lower_snake_case, enforced by the statsreg analyzer) with numBuckets
// buckets of the given width.
func NewHistogram(name string, numBuckets int, width int64) *Histogram {
	if numBuckets <= 0 || width <= 0 {
		panic(fmt.Sprintf("stats: histogram %q needs positive buckets (%d) and width (%d)",
			name, numBuckets, width))
	}
	return &Histogram{name: name, width: width, buckets: make([]int64, numBuckets)}
}

// Add records one sample. Negative samples are invalid: the simulator's
// depths and latencies are non-negative by construction, so a negative
// value is a caller bug and fails loudly.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative sample %d in histogram %q", v, h.name))
	}
	i := v / h.width
	if i >= int64(len(h.buckets)) {
		h.over++
	} else {
		h.buckets[i]++
	}
	h.total++
	h.sum += v
}

// Name returns the histogram's metric name.
func (h *Histogram) Name() string { return h.name }

// NumBuckets returns the number of regular buckets (overflow excluded).
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Width returns the bucket width.
func (h *Histogram) Width() int64 { return h.width }

// Count returns the number of samples in bucket i.
func (h *Histogram) Count(i int) int64 { return h.buckets[i] }

// Overflow returns the number of samples past the last bucket edge.
func (h *Histogram) Overflow() int64 { return h.over }

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the arithmetic mean of the recorded samples (0 when
// empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// BucketLabel renders bucket i's value range: the single value for
// width-1 buckets, "[lo,hi)" otherwise.
func (h *Histogram) BucketLabel(i int) string {
	lo := int64(i) * h.width
	if h.width == 1 {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("[%d,%d)", lo, lo+h.width)
}

// Merge adds other's tallies into h. The two histograms must share
// bucket geometry.
func (h *Histogram) Merge(other *Histogram) {
	if other.width != h.width || len(other.buckets) != len(h.buckets) {
		panic(fmt.Sprintf("stats: merging histogram %q (%dx%d) into %q (%dx%d)",
			other.name, len(other.buckets), other.width, h.name, len(h.buckets), h.width))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.over += other.over
	h.total += other.total
	h.sum += other.sum
}

// Snapshot emits every bucket in order, then the overflow, total, and
// sum (statsreg convention: every counter field must appear here).
func (h *Histogram) Snapshot() []KV {
	out := make([]KV, 0, len(h.buckets)+3)
	for i, c := range h.buckets {
		out = append(out, KV{
			Name:  fmt.Sprintf("%s_le_%d", h.name, int64(i+1)*h.width-1),
			Value: float64(c),
		})
	}
	out = append(out,
		KV{Name: h.name + "_overflow", Value: float64(h.over)},
		KV{Name: h.name + "_total", Value: float64(h.total)},
		KV{Name: h.name + "_sum", Value: float64(h.sum)})
	return out
}
