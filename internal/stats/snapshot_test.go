package stats

import (
	"reflect"
	"testing"
)

func TestCountersSnapshotSortedAndComplete(t *testing.T) {
	var c Counters
	c.Add("zeta", 3)
	c.Add("alpha", 1)
	c.Inc("mid")
	got := c.Snapshot()
	want := []KV{{Name: "alpha", Value: 1}, {Name: "mid", Value: 1}, {Name: "zeta", Value: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
}

func TestDistributionSnapshotOrder(t *testing.T) {
	d := NewDistribution("near", "far")
	d.AddHit(0)
	d.AddHit(0)
	d.AddHit(1)
	d.AddMiss()
	got := d.Snapshot()
	want := []KV{{Name: "hits_near", Value: 2}, {Name: "hits_far", Value: 1}, {Name: "misses", Value: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
}
