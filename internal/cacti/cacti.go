// Package cacti is an analytical cache timing and energy model in the
// spirit of the Cacti tool the paper used (at 70 nm, 5 GHz).
//
// The paper published a handful of anchor values (its Table 2 energies
// and Table 4 latencies); this model reproduces those anchors and
// interpolates every other geometry with the same physics:
//
//   - data-array access time grows with d-group capacity (decode depth,
//     longer word/bit lines, wider column muxes);
//   - global wire delay and energy grow linearly with route length, which
//     the floorplan package supplies in units of one 1-MB array side;
//   - sequential tag-data access adds the (centralized) tag-array latency
//     in front of every data access.
//
// The fitted constants are calibration, not first-principles circuit
// modeling: exactly the role Cacti played for the original authors.
package cacti

import (
	"fmt"
	"math"

	"nurapid/internal/floorplan"
)

// Model holds the technology and clock assumptions. Use Default for the
// paper's 70-nm, 5-GHz configuration.
type Model struct {
	ClockGHz float64 // core clock; cycles = seconds * ClockGHz * 1e9
	TechNm   int     // feature size, documentation only

	// Latency calibration (cycles at ClockGHz).
	TagCycles      int     // centralized sequential tag array lookup (8-way, 8 MB)
	DataBaseCycles float64 // data-array access, capacity-independent part
	DataPerMB      float64 // data-array access, per-MB part
	WireCyclesUnit float64 // global wire delay per floorplan unit

	// Energy calibration (nJ per access).
	DataBaseNJ  float64 // large-array read incl. tag, at zero route
	DataPerMBNJ float64 // capacity-dependent part
	WireNJUnit  float64 // wire energy per floorplan unit (128-B block)

	// Small-structure constants published in the paper's Table 2.
	NUCABankNJ      float64 // closest 64-KB NUCA bank, tag+data in parallel
	SmartSearchNJ   float64 // D-NUCA partial-tag ("smart search") array access
	L1NJ            float64 // 2 ports of the 64-KB 2-way L1
	NUCABankCycles  int     // raw 64-KB bank access before routing
	SmartSearchCyc  int     // smart-search array latency
	PointerOverhead float64 // relative energy overhead of NuRAPID fwd/rev pointers

	// TagProbeNJ is the energy of one probe of NuRAPID's centralized
	// sequential tag array. Hits fold it into the d-group access energy;
	// misses charge it explicitly, and forward-pointer memoization
	// credits it back per skipped probe.
	TagProbeNJ float64
}

// Default returns the model calibrated to the paper's anchors:
//
//	latency  (Table 4): fastest d-group of 2x4MB=19, 4x2MB=14, 8x1MB=12 cycles
//	energy   (Table 2): closest 2-MB d-group 0.42 nJ, farthest of 4 3.3 nJ,
//	                    closest 1-MB 0.40 nJ, farthest of 8 4.6 nJ,
//	                    closest 64-KB NUCA bank 0.18 nJ, smart-search 0.19 nJ,
//	                    L1 (2 ports) 0.57 nJ
func Default() *Model {
	return &Model{
		ClockGHz:       5,
		TechNm:         70,
		TagCycles:      8,
		DataBaseCycles: 1.67,
		DataPerMB:      0.83,
		WireCyclesUnit: 6,
		DataBaseNJ:     0.38,
		DataPerMBNJ:    0.02,
		WireNJUnit:     0.9,
		NUCABankNJ:     0.18,
		SmartSearchNJ:  0.19,
		L1NJ:           0.57,
		NUCABankCycles: 3,
		SmartSearchCyc: 3,
		// 16-bit forward + reverse pointers on 51-bit tags / 1-Kbit
		// blocks: ~2% extra bits switched per access.
		PointerOverhead: 0.02,
		TagProbeNJ:      0.05,
	}
}

// Scaled returns a copy of the model with wire delay and wire energy
// multiplied by factor, modeling technology generations in which global
// wires slow relative to logic — the trend motivating non-uniform cache
// architectures in the first place. factor 1.0 is the calibrated 70-nm
// point.
func (m *Model) Scaled(factor float64) *Model {
	if factor <= 0 {
		panic(fmt.Sprintf("cacti: non-positive wire scale %v", factor))
	}
	s := *m
	s.WireCyclesUnit *= factor
	s.WireNJUnit *= factor
	return &s
}

// wireScale reports the model's wire delay relative to the calibrated
// 70-nm constant; the D-NUCA bank table scales its routing share by it.
func (m *Model) wireScale() float64 { return m.WireCyclesUnit / 6.0 }

// DataArrayCycles returns the access time (cycles) of a capMB data array,
// excluding tag and global routing.
func (m *Model) DataArrayCycles(capMB float64) float64 {
	if capMB <= 0 {
		panic(fmt.Sprintf("cacti: non-positive capacity %v", capMB))
	}
	return m.DataBaseCycles + m.DataPerMB*capMB
}

// WireCycles returns the global-wire delay for a route of the given
// length in floorplan units.
func (m *Model) WireCycles(routeUnits float64) float64 {
	return m.WireCyclesUnit * routeUnits
}

// DGroupLatencies returns the full sequential tag-data access latency, in
// cycles, of each d-group of an L-shaped NuRAPID plan, in latency order.
// This regenerates the NuRAPID columns of the paper's Table 4.
func (m *Model) DGroupLatencies(plan *floorplan.Plan) []int {
	capMB := plan.GroupMB()
	out := make([]int, len(plan.Groups))
	for i, r := range plan.Routes() {
		lat := float64(m.TagCycles) + m.DataArrayCycles(capMB) + m.WireCycles(r)
		out[i] = int(math.Round(lat))
	}
	return out
}

// DataAccessNJ returns the tag+data access energy of a capMB d-group at
// zero route distance.
func (m *Model) DataAccessNJ(capMB float64) float64 {
	if capMB <= 0 {
		panic(fmt.Sprintf("cacti: non-positive capacity %v", capMB))
	}
	return (m.DataBaseNJ + m.DataPerMBNJ*capMB) * (1 + m.PointerOverhead)
}

// WireNJ returns the energy to move one 128-B block over a route of the
// given length in floorplan units.
func (m *Model) WireNJ(routeUnits float64) float64 {
	return m.WireNJUnit * routeUnits
}

// DGroupEnergies returns the per-access energy (nJ) of each d-group of a
// NuRAPID plan, in latency order: array access plus routing measured from
// the closest group. This regenerates the NuRAPID rows of Table 2.
func (m *Model) DGroupEnergies(plan *floorplan.Plan) []float64 {
	capMB := plan.GroupMB()
	out := make([]float64, len(plan.Groups))
	for i, r := range plan.RelativeRoutes() {
		out[i] = m.DataAccessNJ(capMB) + m.WireNJ(r)
	}
	return out
}

// nucaMBLatency is the average access latency of each successive megabyte
// of the 8-MB D-NUCA, taken directly from the paper's Table 4 (the
// per-bank ranges were not published legibly; the averages were). Bank
// latencies are assigned from this table by distance rank.
var nucaMBLatency = []int{7, 11, 14, 17, 20, 23, 26, 29}

// NUCABankLatencies returns the per-bank access latency (parallel
// tag-data, including routing) for every bank of the D-NUCA grid, indexed
// by bank number. Calibrated so each successive megabyte of banks (by
// distance) averages the paper's Table 4 D-NUCA column.
func (m *Model) NUCABankLatencies(grid *floorplan.NUCAGrid) []int {
	order := grid.BanksByDistance()
	banksPerMB := int(math.Round(1.0 / grid.BankMB))
	out := make([]int, grid.NumBanks())
	scale := m.wireScale()
	for rank, b := range order {
		mb := rank / banksPerMB
		if mb >= len(nucaMBLatency) {
			mb = len(nucaMBLatency) - 1
		}
		// The table's routing share (everything beyond the raw bank
		// access) scales with the model's wire delay.
		base := float64(m.NUCABankCycles)
		out[b] = int(math.Round(base + scale*(float64(nucaMBLatency[mb])-base)))
	}
	return out
}

// NUCABankEnergies returns the per-access energy (nJ) of every bank of
// the D-NUCA grid, indexed by bank number: the closest-bank access energy
// plus wire energy for the extra route. This regenerates the NUCA rows of
// Table 2.
func (m *Model) NUCABankEnergies(grid *floorplan.NUCAGrid) []float64 {
	nearest := grid.BankRoute(grid.BanksByDistance()[0])
	out := make([]float64, grid.NumBanks())
	for b := range out {
		out[b] = m.NUCABankNJ + m.WireNJ(grid.BankRoute(b)-nearest)
	}
	return out
}

// UniformCacheNJ returns the per-access energy of a monolithic
// uniform-access cache of capMB with sequential tag-data access, charging
// the average route to its subarrays. Used for the baseline L2/L3.
func (m *Model) UniformCacheNJ(capMB float64) float64 {
	// A uniform cache pays, on average, the route to the middle of its
	// own footprint; for a compact (~1 MB) array that routing is already
	// inside the base access energy, so only the excess over a 1-MB
	// footprint is charged.
	avgRoute := math.Max(0, math.Sqrt(capMB)-1)
	return m.DataBaseNJ + m.DataPerMBNJ*capMB + m.WireNJ(avgRoute)
}
