package cacti

import (
	"math"
	"testing"

	"nurapid/internal/floorplan"
)

func plan(n int) *floorplan.Plan { return floorplan.NewLShapedPlan(8, n) }

// TestTable4Anchors pins the latency anchors the paper states explicitly
// in Sec. 5.1: fastest d-group of the 2-d-group config is 19 cycles, of
// the 4-d-group config 14 cycles (the "ideal" constant), and of the
// 8-d-group config 12 cycles.
func TestTable4Anchors(t *testing.T) {
	m := Default()
	cases := []struct {
		groups  int
		fastest int
	}{{2, 19}, {4, 14}, {8, 12}}
	for _, c := range cases {
		lats := m.DGroupLatencies(plan(c.groups))
		if lats[0] != c.fastest {
			t.Errorf("%d d-groups: fastest latency %d, want %d", c.groups, lats[0], c.fastest)
		}
	}
}

func TestDGroupLatenciesMonotone(t *testing.T) {
	m := Default()
	for _, n := range []int{2, 4, 8} {
		lats := m.DGroupLatencies(plan(n))
		for i := 1; i < len(lats); i++ {
			if lats[i] < lats[i-1] {
				t.Fatalf("n=%d: latency not monotone: %v", n, lats)
			}
		}
	}
}

// TestSlowestLatencyGrowsWithGroups pins the paper's observation that the
// slowest megabyte gets slower as the number of d-groups grows, because
// small far d-groups land in remote floorplan locations.
func TestSlowestLatencyGrowsWithGroups(t *testing.T) {
	m := Default()
	l2 := m.DGroupLatencies(plan(2))
	l4 := m.DGroupLatencies(plan(4))
	l8 := m.DGroupLatencies(plan(8))
	if !(l8[7] > l4[3] && l4[3] > l2[1]) {
		t.Fatalf("slowest latencies must grow with group count: 2g=%d 4g=%d 8g=%d",
			l2[1], l4[3], l8[7])
	}
}

// TestTable2NuRAPIDEnergyAnchors pins the paper's Table 2 energies for
// NuRAPID d-groups to within 5%.
func TestTable2NuRAPIDEnergyAnchors(t *testing.T) {
	m := Default()
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s = %.3f nJ, want %.2f (±5%%)", name, got, want)
		}
	}
	e4 := m.DGroupEnergies(plan(4))
	check("closest of 4x2MB", e4[0], 0.42)
	check("farthest of 4x2MB", e4[3], 3.3)
	e8 := m.DGroupEnergies(plan(8))
	check("closest of 8x1MB", e8[0], 0.40)
	check("farthest of 8x1MB", e8[7], 4.6)
}

func TestTable2SmallStructureAnchors(t *testing.T) {
	m := Default()
	if m.NUCABankNJ != 0.18 {
		t.Errorf("closest NUCA bank energy %v, want 0.18", m.NUCABankNJ)
	}
	if m.SmartSearchNJ != 0.19 {
		t.Errorf("smart-search energy %v, want 0.19", m.SmartSearchNJ)
	}
	if m.L1NJ != 0.57 {
		t.Errorf("L1 energy %v, want 0.57", m.L1NJ)
	}
}

func TestDGroupEnergiesMonotone(t *testing.T) {
	m := Default()
	for _, n := range []int{2, 4, 8} {
		es := m.DGroupEnergies(plan(n))
		for i := 1; i < len(es); i++ {
			if es[i] < es[i-1] {
				t.Fatalf("n=%d: energies not monotone: %v", n, es)
			}
		}
	}
}

func TestDataArrayCyclesGrowsWithCapacity(t *testing.T) {
	m := Default()
	if !(m.DataArrayCycles(1) < m.DataArrayCycles(2) && m.DataArrayCycles(2) < m.DataArrayCycles(4)) {
		t.Fatal("data array access time must grow with capacity")
	}
}

func TestDataArrayCyclesPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on non-positive capacity")
		}
	}()
	Default().DataArrayCycles(0)
}

func TestDataAccessNJPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic on non-positive capacity")
		}
	}()
	Default().DataAccessNJ(-1)
}

// TestNUCABankLatencies pins the D-NUCA column of Table 4: the average
// latency of each successive megabyte of banks (by distance) and that the
// fastest banks beat NuRAPID's fastest d-group (parallel tag-data access
// plus tiny banks).
func TestNUCABankLatencies(t *testing.T) {
	m := Default()
	grid := floorplan.NewNUCAGrid(8, 64)
	lats := m.NUCABankLatencies(grid)
	if len(lats) != 128 {
		t.Fatalf("got %d bank latencies", len(lats))
	}
	order := grid.BanksByDistance()
	want := []int{7, 11, 14, 17, 20, 23, 26, 29}
	for mb := 0; mb < 8; mb++ {
		sum := 0
		for i := 0; i < 16; i++ {
			sum += lats[order[mb*16+i]]
		}
		avg := float64(sum) / 16
		if math.Abs(avg-float64(want[mb])) > 0.5 {
			t.Errorf("MB %d average latency %.1f, want %d", mb+1, avg, want[mb])
		}
	}
	nurapidFastest := m.DGroupLatencies(plan(8))[0]
	if lats[order[0]] >= nurapidFastest {
		t.Errorf("closest NUCA bank (%d cycles) must beat NuRAPID's fastest d-group (%d)",
			lats[order[0]], nurapidFastest)
	}
}

func TestNUCABankEnergies(t *testing.T) {
	m := Default()
	grid := floorplan.NewNUCAGrid(8, 64)
	es := m.NUCABankEnergies(grid)
	order := grid.BanksByDistance()
	if math.Abs(es[order[0]]-0.18) > 1e-9 {
		t.Errorf("closest bank energy %.3f, want 0.18", es[order[0]])
	}
	far := es[order[len(order)-1]]
	if far <= 1.0 || far > 5.0 {
		t.Errorf("farthest bank energy %.3f outside plausible range (1, 5]", far)
	}
	// Energy must be monotone in distance rank.
	prev := -1.0
	for _, b := range order {
		if es[b] < prev {
			t.Fatal("bank energies not monotone in distance")
		}
		prev = es[b]
	}
}

func TestUniformCacheNJ(t *testing.T) {
	m := Default()
	e1 := m.UniformCacheNJ(1)
	e8 := m.UniformCacheNJ(8)
	if e1 <= 0 || e8 <= e1 {
		t.Fatalf("uniform cache energy must grow with capacity: 1MB=%.3f 8MB=%.3f", e1, e8)
	}
	// The 8-MB uniform L3 must cost more per access than NuRAPID's
	// closest d-group but less than its farthest (it averages routes).
	e4 := m.DGroupEnergies(plan(4))
	if !(e8 > e4[0] && e8 < e4[3]) {
		t.Fatalf("8MB uniform energy %.3f should sit between %v", e8, e4)
	}
}

// TestFullTable4 locks in the complete reproduced Table 4 so any change
// to the calibration is a conscious, reviewed one.
func TestFullTable4(t *testing.T) {
	m := Default()
	want := map[int][]int{
		2: {19, 33},
		4: {14, 23, 25, 34},
		8: {12, 17, 20, 25, 28, 33, 35, 41},
	}
	for n, w := range want {
		got := m.DGroupLatencies(plan(n))
		if len(got) != len(w) {
			t.Fatalf("n=%d: got %v", n, got)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("n=%d group %d: latency %d, want %d (full: %v)", n, i, got[i], w[i], got)
			}
		}
	}
}
