package sim

import (
	"fmt"
	"io"
	"time"

	"nurapid/internal/stats"
)

// EventKind distinguishes the lifecycle points an Observer sees.
type EventKind int

const (
	// RunStart fires when a simulation begins executing (not when a
	// memoized result is returned).
	RunStart EventKind = iota
	// RunFinish fires when a simulation completes and its result is
	// available.
	RunFinish
)

func (k EventKind) String() string {
	switch k {
	case RunStart:
		return "start"
	case RunFinish:
		return "finish"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// RunEvent describes one simulation run's lifecycle. Start events carry
// only the identity fields; finish events add the headline metrics and,
// when the Runner has a clock (WithClock), the run's wall time.
//
// Events fire once per executed simulation: memoized and
// singleflight-deduplicated calls observe nothing. Under a parallel
// Runner (WithWorkers > 1) events arrive in completion order, which is
// not deterministic; only the rendered experiment output is.
type RunEvent struct {
	Kind EventKind
	App  string // application name
	Org  string // organization (or variant) key

	// Finish-only fields.
	IPC     float64
	APKI    float64
	HasAPKI bool          // false for variants that do not report APKI
	Elapsed time.Duration // zero unless the Runner has a clock
	// Metrics is the run's full metrics snapshot (RunResult.Snapshot),
	// including any obs_-prefixed probe metrics. Observers must not
	// mutate it.
	Metrics []stats.KV
}

// Observer receives run lifecycle events. The Runner serializes Observe
// calls (they never run concurrently), so implementations need no
// internal locking; they must not call back into the Runner.
type Observer interface {
	Observe(RunEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(RunEvent)

// Observe calls f(e).
func (f ObserverFunc) Observe(e RunEvent) { f(e) }

// textObserver renders finish events as the runner's classic progress
// lines.
type textObserver struct {
	w io.Writer
}

// TextObserver returns an Observer that writes one line per completed
// run, byte-for-byte identical to the progress lines the pre-Observer
// Runner.Progress callback produced (cmd/experiments' stderr format).
func TextObserver(w io.Writer) Observer { return textObserver{w: w} }

func (o textObserver) Observe(e RunEvent) {
	if e.Kind != RunFinish {
		return
	}
	if e.HasAPKI {
		fmt.Fprintf(o.w, "ran %-8s on %-32s IPC=%.3f APKI=%.1f\n", e.App, e.Org, e.IPC, e.APKI)
		return
	}
	fmt.Fprintf(o.w, "ran %-8s on %-32s IPC=%.3f\n", e.App, e.Org, e.IPC)
}
