package sim

import (
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/workload"
)

// Option configures a Runner at construction time.
type Option func(*Runner)

// NewRunner builds a runner with the paper's defaults — the calibrated
// 70-nm model, 2M instructions per run, seed 1, the 15-application
// roster, serial execution — overridden by the given options.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{
		Model:        cacti.Default(),
		Instructions: 2_000_000,
		Seed:         1,
		Apps:         workload.Apps(),
		Workers:      1,
		memo:         make(map[string]*memoCell),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// NewRunnerSeeded is the pre-options constructor.
//
// Deprecated: use NewRunner(WithInstructions(instructions),
// WithSeed(seed)).
func NewRunnerSeeded(instructions int64, seed uint64) *Runner {
	return NewRunner(WithInstructions(instructions), WithSeed(seed))
}

// WithInstructions sets the number of instructions simulated per run.
func WithInstructions(n int64) Option {
	return func(r *Runner) { r.Instructions = n }
}

// WithSeed sets the workload seed. Rendered output is a pure function of
// the seed (and the run parameters), regardless of worker count.
func WithSeed(seed uint64) Option {
	return func(r *Runner) { r.Seed = seed }
}

// WithWorkers bounds the worker pool that executes prefetched runs.
// n <= 1 selects the serial runner; experiments then execute each
// simulation on demand, in the order the tables are assembled.
func WithWorkers(n int) Option {
	return func(r *Runner) { r.Workers = n }
}

// WithModel substitutes the physical timing/energy model.
func WithModel(m *cacti.Model) Option {
	return func(r *Runner) { r.Model = m }
}

// WithApps replaces the application roster.
func WithApps(apps ...workload.App) Option {
	return func(r *Runner) { r.Apps = apps }
}

// WithObserver attaches an observer for run lifecycle events. The
// Runner serializes Observe calls, so the observer needs no locking.
func WithObserver(o Observer) Option {
	return func(r *Runner) { r.observer = o }
}

// WithProbe attaches a per-run probe factory. The factory is called
// once per executed (non-memoized) simulation; the returned probe is
// wired into the lower-level organization (obs.Probeable) before the
// run and its Snapshot, if it has one, lands in RunResult.ObsMetrics
// afterwards. A nil factory or a factory returning nil keeps the
// organization's nil-probe fast path, so disabled probing costs one
// pointer compare per emission site.
func WithProbe(f ProbeFactory) Option {
	return func(r *Runner) { r.probe = f }
}

// WithTrace writes one JSONL event trace per executed run into dir,
// named <app>__<org>.jsonl. The directory must exist. Traces compose
// with WithProbe (both receive every event). File-creation and flush
// errors never abort a run; check Runner.ProbeErr after the experiment.
func WithTrace(dir string) Option {
	return func(r *Runner) { r.traceDir = dir }
}

// WithClock supplies a monotonic clock used only to stamp
// RunEvent.Elapsed. The default (nil) leaves Elapsed zero, keeping the
// sim package free of wall-clock reads; callers that want real timings
// (cmd/experiments) inject one.
func WithClock(now func() time.Duration) Option {
	return func(r *Runner) { r.clock = now }
}
