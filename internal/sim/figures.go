package sim

import (
	"fmt"

	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/stats"
	"nurapid/internal/vis"
)

// groupCountOrgs returns the 2-, 4-, and 8-d-group NuRAPIDs Figures 7
// and 8 sweep over.
func groupCountOrgs() []Organization {
	orgs := make([]Organization, 0, 3)
	for _, n := range []int{2, 4, 8} {
		orgs = append(orgs, NuRAPID(nurapidCfg(n, nurapid.NextFastest, nurapid.RandomDistance)))
	}
	return orgs
}

// meanAt averages column i of a set of fraction vectors.
func meanAt(rows [][]float64, i int) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += r[i]
	}
	return s / float64(len(rows))
}

// Fig4 compares set-associative and distance-associative placement in a
// 4-d-group non-uniform cache (paper Figure 4): the fraction of L2
// accesses served by d-group 1, d-group 2, d-groups 3+4, and misses. To
// isolate placement, both caches place new blocks in the fastest d-group
// and promote next-fastest; the set-associative cache uses LRU
// throughout, NuRAPID uses random distance replacement.
func (r *Runner) Fig4() *Experiment {
	saCfg := nurapidCfg(4, nurapid.NextFastest, nurapid.LRUDistance)
	saCfg.Placement = nurapid.SetAssociative
	sa := NuRAPID(saCfg)
	da := NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))
	r.Prefetch(r.Apps, []Organization{sa, da})

	t := stats.NewTable("Figure 4: d-group access distribution, set-associative (a) vs distance-associative (b) placement",
		"benchmark", "a:g1", "a:g2", "a:g3+4", "a:miss", "b:g1", "b:g2", "b:g3+4", "b:miss")
	var saF, daF [][]float64
	row := func(name string, s, d *RunResult) {
		sf, df := s.L2Dist.Fracs(), d.L2Dist.Fracs()
		t.AddRow(name,
			stats.Percent(sf[0]), stats.Percent(sf[1]), stats.Percent(sf[2]+sf[3]), stats.Percent(sf[4]),
			stats.Percent(df[0]), stats.Percent(df[1]), stats.Percent(df[2]+df[3]), stats.Percent(df[4]))
	}
	for _, app := range r.Apps {
		s, d := r.Run(app, sa), r.Run(app, da)
		row(app.Name, s, d)
		saF = append(saF, s.L2Dist.Fracs())
		daF = append(daF, d.L2Dist.Fracs())
	}
	t.AddRow("AVERAGE",
		stats.Percent(meanAt(saF, 0)), stats.Percent(meanAt(saF, 1)),
		stats.Percent(meanAt(saF, 2)+meanAt(saF, 3)), stats.Percent(meanAt(saF, 4)),
		stats.Percent(meanAt(daF, 0)), stats.Percent(meanAt(daF, 1)),
		stats.Percent(meanAt(daF, 2)+meanAt(daF, 3)), stats.Percent(meanAt(daF, 4)))

	chart := vis.NewStackedChart("Average access distribution (paper Figure 4 style)",
		"d-group 1", "d-group 2", "d-groups 3+4", "miss")
	chart.AddRow("set-assoc", meanAt(saF, 0), meanAt(saF, 1), meanAt(saF, 2)+meanAt(saF, 3), meanAt(saF, 4))
	chart.AddRow("dist-assoc", meanAt(daF, 0), meanAt(daF, 1), meanAt(daF, 2)+meanAt(daF, 3), meanAt(daF, 4))

	return &Experiment{ID: "fig4", Caption: "Set-associative vs distance-associative placement", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"sa_group1_frac": meanAt(saF, 0),
			"da_group1_frac": meanAt(daF, 0),
			"sa_last2_frac":  meanAt(saF, 2) + meanAt(saF, 3),
			"da_last2_frac":  meanAt(daF, 2) + meanAt(daF, 3),
		}}
}

// Fig5 shows the d-group access distribution of the three distance
// replacement policies (paper Figure 5): demotion-only, next-fastest,
// fastest, all with 4 d-groups and random distance replacement.
func (r *Runner) Fig5() *Experiment {
	orgs := []struct {
		label string
		org   Organization
	}{
		{"demotion-only", NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.RandomDistance))},
		{"next-fastest", NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))},
		{"fastest", NuRAPID(nurapidCfg(4, nurapid.Fastest, nurapid.RandomDistance))},
	}
	r.Prefetch(r.Apps, []Organization{orgs[0].org, orgs[1].org, orgs[2].org})
	t := stats.NewTable("Figure 5: d-group access distribution per promotion policy",
		"benchmark", "policy", "g1", "g2", "g3", "g4", "miss")
	fracs := map[string][][]float64{}
	for _, app := range r.Apps {
		for _, o := range orgs {
			res := r.Run(app, o.org)
			f := res.L2Dist.Fracs()
			t.AddRow(app.Name, o.label,
				stats.Percent(f[0]), stats.Percent(f[1]), stats.Percent(f[2]),
				stats.Percent(f[3]), stats.Percent(f[4]))
			fracs[o.label] = append(fracs[o.label], f)
		}
	}
	chart := vis.NewStackedChart("Average access distribution per policy (paper Figure 5 style)",
		"d-group 1", "d-group 2", "d-group 3", "d-group 4", "miss")
	for _, o := range orgs {
		f := fracs[o.label]
		t.AddRow("AVERAGE", o.label,
			stats.Percent(meanAt(f, 0)), stats.Percent(meanAt(f, 1)), stats.Percent(meanAt(f, 2)),
			stats.Percent(meanAt(f, 3)), stats.Percent(meanAt(f, 4)))
		chart.AddRow(o.label, meanAt(f, 0), meanAt(f, 1), meanAt(f, 2), meanAt(f, 3), meanAt(f, 4))
	}
	return &Experiment{ID: "fig5", Caption: "Promotion-policy access distribution", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"g1_demotion_only": meanAt(fracs["demotion-only"], 0),
			"g1_next_fastest":  meanAt(fracs["next-fastest"], 0),
			"g1_fastest":       meanAt(fracs["fastest"], 0),
		}}
}

// Fig6 compares the performance of the three promotion policies and the
// ideal bound, relative to the base L2/L3 hierarchy (paper Figure 6).
func (r *Runner) Fig6() *Experiment {
	orgs := []struct {
		label string
		org   Organization
	}{
		{"demotion-only", NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.RandomDistance))},
		{"next-fastest", NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))},
		{"fastest", NuRAPID(nurapidCfg(4, nurapid.Fastest, nurapid.RandomDistance))},
		{"ideal", Ideal()},
	}
	prefetch := []Organization{Base()}
	for _, o := range orgs {
		prefetch = append(prefetch, o.org)
	}
	r.Prefetch(r.Apps, prefetch)
	t := stats.NewTable("Figure 6: performance relative to base L2/L3 hierarchy",
		"benchmark", "demotion-only", "next-fastest", "fastest", "ideal")
	rel := map[string][]float64{}
	relHigh := map[string][]float64{}
	relLow := map[string][]float64{}
	for _, app := range r.Apps {
		row := []any{app.Name}
		for _, o := range orgs {
			p := r.RelPerf(app, o.org)
			row = append(row, p)
			rel[o.label] = append(rel[o.label], p)
			if app.Class.String() == "high" {
				relHigh[o.label] = append(relHigh[o.label], p)
			} else {
				relLow[o.label] = append(relLow[o.label], p)
			}
		}
		t.AddRow(row...)
	}
	addAvg := func(name string, m map[string][]float64) {
		row := []any{name}
		for _, o := range orgs {
			row = append(row, mean(m[o.label]))
		}
		t.AddRow(row...)
	}
	addAvg("HIGH-LOAD AVG", relHigh)
	addAvg("LOW-LOAD AVG", relLow)
	addAvg("OVERALL AVG", rel)
	chart := vis.NewBarChart("Average performance relative to base (paper Figure 6 style)", "x")
	chart.Reference = 1.0
	for _, o := range orgs {
		chart.AddRow(o.label, mean(rel[o.label]))
	}
	return &Experiment{ID: "fig6", Caption: "Promotion-policy performance", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"rel_demotion_only":     mean(rel["demotion-only"]),
			"rel_next_fastest":      mean(rel["next-fastest"]),
			"rel_fastest":           mean(rel["fastest"]),
			"rel_ideal":             mean(rel["ideal"]),
			"rel_next_fastest_high": mean(relHigh["next-fastest"]),
			"rel_next_fastest_low":  mean(relLow["next-fastest"]),
		}}
}

// LRUStudy reproduces Sec. 5.3.1: random vs true-LRU distance
// replacement, under demotion-only and next-fastest promotion, measured
// as the average fraction of accesses served by the first d-group.
func (r *Runner) LRUStudy() *Experiment {
	combos := []struct {
		label string
		org   Organization
	}{
		{"demotion-only/random", NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.RandomDistance))},
		{"demotion-only/lru", NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.LRUDistance))},
		{"next-fastest/random", NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))},
		{"next-fastest/lru", NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.LRUDistance))},
	}
	prefetch := make([]Organization, len(combos))
	for i, c := range combos {
		prefetch[i] = c.org
	}
	r.Prefetch(r.Apps, prefetch)
	t := stats.NewTable("Sec 5.3.1: distance-replacement selection policy (avg first d-group accesses)",
		"policy", "g1 accesses")
	metrics := map[string]float64{}
	for _, c := range combos {
		var fr []float64
		for _, app := range r.Apps {
			fr = append(fr, r.Run(app, c.org).L2Dist.HitFrac(0))
		}
		t.AddRow(c.label, stats.Percent(mean(fr)))
		metrics["g1_"+c.label] = mean(fr)
	}
	return &Experiment{ID: "lru", Caption: "Random vs LRU distance replacement", Table: t, Metrics: metrics}
}

// Fig7 shows the access distribution of 2-, 4-, and 8-d-group NuRAPIDs
// (paper Figure 7): first-group accesses, remaining-group hits, misses.
func (r *Runner) Fig7() *Experiment {
	r.Prefetch(r.Apps, groupCountOrgs())
	t := stats.NewTable("Figure 7: d-group access distribution for 2, 4, and 8 d-groups",
		"benchmark", "2g:g1", "2g:rest", "2g:miss", "4g:g1", "4g:rest", "4g:miss",
		"8g:g1", "8g:rest", "8g:miss")
	g1 := map[int][]float64{}
	for _, app := range r.Apps {
		row := []any{app.Name}
		for _, n := range []int{2, 4, 8} {
			res := r.Run(app, NuRAPID(nurapidCfg(n, nurapid.NextFastest, nurapid.RandomDistance)))
			first := res.L2Dist.HitFrac(0)
			rest := 0.0
			for i := 1; i < res.L2Dist.NumCategories(); i++ {
				rest += res.L2Dist.HitFrac(i)
			}
			row = append(row, stats.Percent(first), stats.Percent(rest), stats.Percent(res.L2Dist.MissFrac()))
			g1[n] = append(g1[n], first)
		}
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE",
		stats.Percent(mean(g1[2])), "-", "-",
		stats.Percent(mean(g1[4])), "-", "-",
		stats.Percent(mean(g1[8])), "-", "-")
	chart := vis.NewStackedChart("Average first-group accesses by d-group count (paper Figure 7 style)",
		"d-group 1", "other hits + misses")
	for _, n := range []int{2, 4, 8} {
		chart.AddRow(fmt.Sprintf("%d d-groups", n), mean(g1[n]), 1-mean(g1[n]))
	}
	return &Experiment{ID: "fig7", Caption: "d-group count access distribution", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"g1_2groups": mean(g1[2]),
			"g1_4groups": mean(g1[4]),
			"g1_8groups": mean(g1[8]),
		}}
}

// Fig8 compares the performance of 2-, 4-, and 8-d-group NuRAPIDs
// relative to the base hierarchy (paper Figure 8), and reports the
// promotion-swap ratio between the 8- and 4-d-group configurations.
func (r *Runner) Fig8() *Experiment {
	r.Prefetch(r.Apps, append([]Organization{Base()}, groupCountOrgs()...))
	t := stats.NewTable("Figure 8: performance of 2, 4, and 8 d-groups relative to base",
		"benchmark", "2 d-groups", "4 d-groups", "8 d-groups")
	rel := map[int][]float64{}
	var swaps4, swaps8 int64
	for _, app := range r.Apps {
		row := []any{app.Name}
		for _, n := range []int{2, 4, 8} {
			org := NuRAPID(nurapidCfg(n, nurapid.NextFastest, nurapid.RandomDistance))
			p := r.RelPerf(app, org)
			row = append(row, p)
			rel[n] = append(rel[n], p)
			res := r.Run(app, org)
			if n == 4 {
				swaps4 += res.L2Ctrs.Get("promotions")
			}
			if n == 8 {
				swaps8 += res.L2Ctrs.Get("promotions")
			}
		}
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE", mean(rel[2]), mean(rel[4]), mean(rel[8]))
	swapRatio := 0.0
	if swaps4 > 0 {
		swapRatio = float64(swaps8) / float64(swaps4)
	}
	chart := vis.NewBarChart("Average performance by d-group count (paper Figure 8 style)", "x")
	chart.Reference = 1.0
	for _, n := range []int{2, 4, 8} {
		chart.AddRow(fmt.Sprintf("%d d-groups", n), mean(rel[n]))
	}
	return &Experiment{ID: "fig8", Caption: "d-group count performance", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"rel_2groups":    mean(rel[2]),
			"rel_4groups":    mean(rel[4]),
			"rel_8groups":    mean(rel[8]),
			"swap_ratio_8v4": swapRatio,
		}}
}

// Fig9 compares D-NUCA (ss-performance) with the 4- and 8-d-group
// NuRAPIDs, relative to base (paper Figure 9).
func (r *Runner) Fig9() *Experiment {
	dn := DNUCA(nuca.DefaultConfig())
	n4 := NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))
	n8 := NuRAPID(nurapidCfg(8, nurapid.NextFastest, nurapid.RandomDistance))
	r.Prefetch(r.Apps, []Organization{Base(), dn, n4, n8})
	t := stats.NewTable("Figure 9: performance relative to base (D-NUCA ss-performance vs NuRAPID)",
		"benchmark", "D-NUCA", "NuRAPID 4g", "NuRAPID 8g")
	var rd, r4, r8 []float64
	for _, app := range r.Apps {
		pd, p4, p8 := r.RelPerf(app, dn), r.RelPerf(app, n4), r.RelPerf(app, n8)
		t.AddRow(app.Name, pd, p4, p8)
		rd = append(rd, pd)
		r4 = append(r4, p4)
		r8 = append(r8, p8)
	}
	t.AddRow("AVERAGE", mean(rd), mean(r4), mean(r8))
	// Per-app improvement of 4-d-group NuRAPID over D-NUCA.
	var imp []float64
	maxImp := 0.0
	for i := range rd {
		v := r4[i]/rd[i] - 1
		imp = append(imp, v)
		if v > maxImp {
			maxImp = v
		}
	}
	chart := vis.NewBarChart("Average performance relative to base (paper Figure 9 style)", "x")
	chart.Reference = 1.0
	chart.AddRow("D-NUCA ss-perf", mean(rd))
	chart.AddRow("NuRAPID 4g", mean(r4))
	chart.AddRow("NuRAPID 8g", mean(r8))
	return &Experiment{ID: "fig9", Caption: "NuRAPID vs D-NUCA performance", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"rel_dnuca":       mean(rd),
			"rel_nurapid_4g":  mean(r4),
			"rel_nurapid_8g":  mean(r8),
			"avg_improvement": mean(imp),
			"max_improvement": maxImp,
		}}
}

// Fig10 compares L2 dynamic energy across organizations (paper Sec.
// 5.4.2): the base hierarchy, D-NUCA under its energy-optimal ss-energy
// policy, and NuRAPID; plus the d-group (bank) access counts behind the
// paper's "61% fewer d-group accesses" claim.
func (r *Runner) Fig10() *Experiment {
	dnCfg := nuca.DefaultConfig()
	dnCfg.Policy = nuca.SSEnergy
	dn := DNUCA(dnCfg)
	n4 := NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))
	r.Prefetch(r.Apps, []Organization{Base(), dn, n4})
	t := stats.NewTable("Figure 10: L2 dynamic energy (nJ per 1000 instructions)",
		"benchmark", "base L2/L3", "D-NUCA (ss-energy)", "NuRAPID 4g", "NuRAPID/D-NUCA")
	var ratios, reds, perBase, perDN, perNu []float64
	var nuAcc, dnAcc int64
	for _, app := range r.Apps {
		b := r.Run(app, Base())
		d := r.Run(app, dn)
		n := r.Run(app, n4)
		per := func(res *RunResult) float64 {
			return res.L2EnergyNJ * 1000 / float64(res.CPU.Instructions)
		}
		ratio := 0.0
		if d.L2EnergyNJ > 0 {
			ratio = n.L2EnergyNJ / d.L2EnergyNJ
		}
		t.AddRow(app.Name, per(b), per(d), per(n), ratio)
		ratios = append(ratios, ratio)
		reds = append(reds, 1-ratio)
		perBase = append(perBase, per(b))
		perDN = append(perDN, per(d))
		perNu = append(perNu, per(n))
		for _, a := range n.L2GroupAccesses {
			nuAcc += a
		}
		dnAcc += d.L2Ctrs.Get("bank_accesses")
	}
	t.AddRow("AVERAGE", mean(perBase), mean(perDN), mean(perNu), mean(ratios))
	accRatio := 0.0
	if dnAcc > 0 {
		accRatio = float64(nuAcc) / float64(dnAcc)
	}
	chart := vis.NewBarChart("Average L2 dynamic energy (nJ per 1000 instructions)", " nJ")
	chart.AddRow("base L2/L3", mean(perBase))
	chart.AddRow("D-NUCA ss-energy", mean(perDN))
	chart.AddRow("NuRAPID 4g", mean(perNu))
	return &Experiment{ID: "fig10", Caption: "L2 dynamic energy", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"energy_ratio_nurapid_dnuca": mean(ratios),
			"energy_reduction":           mean(reds),
			"group_access_ratio":         accRatio,
			"group_access_reduction":     1 - accRatio,
		}}
}

// Fig11 compares processor energy-delay relative to base (paper Sec.
// 5.4.2): values below 1 are better than the conventional hierarchy.
func (r *Runner) Fig11() *Experiment {
	dnPerf := DNUCA(nuca.DefaultConfig())
	dnCfg := nuca.DefaultConfig()
	dnCfg.Policy = nuca.SSEnergy
	dnEnergy := DNUCA(dnCfg)
	n4 := NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance))
	r.Prefetch(r.Apps, []Organization{Base(), dnPerf, dnEnergy, n4})
	t := stats.NewTable("Figure 11: processor energy-delay relative to base",
		"benchmark", "D-NUCA (ss-perf)", "D-NUCA (ss-energy)", "NuRAPID 4g")
	var rp, re, rn []float64
	for _, app := range r.Apps {
		b := r.Run(app, Base())
		rel := func(o Organization) float64 {
			res := r.Run(app, o)
			if b.ED == 0 {
				return 0
			}
			return res.ED / b.ED
		}
		p, e, n := rel(dnPerf), rel(dnEnergy), rel(n4)
		t.AddRow(app.Name, p, e, n)
		rp = append(rp, p)
		re = append(re, e)
		rn = append(rn, n)
	}
	t.AddRow("AVERAGE", mean(rp), mean(re), mean(rn))
	chart := vis.NewBarChart("Average processor energy-delay relative to base (lower is better)", "x")
	chart.Reference = 1.0
	chart.AddRow("D-NUCA ss-perf", mean(rp))
	chart.AddRow("D-NUCA ss-energy", mean(re))
	chart.AddRow("NuRAPID 4g", mean(rn))
	return &Experiment{ID: "fig11", Caption: "Processor energy-delay", Table: t,
		Chart: chart,
		Metrics: map[string]float64{
			"ed_dnuca_perf":   mean(rp),
			"ed_dnuca_energy": mean(re),
			"ed_nurapid":      mean(rn),
			"ed_improvement":  1 - mean(rn),
		}}
}

// paperRunSet returns the deduped union of every organization the
// paper-order campaign (All) simulates. Prefetching this union in one
// pool pass is what lets a parallel runner actually saturate its
// workers across the whole campaign: each experiment's own Prefetch is
// a barrier, so per-experiment fan-out alone idles the pool during
// every table assembly and at every experiment's straggler tail.
// TestPaperRunSetCoversAll pins that no experiment runs an organization
// missing from this list.
func paperRunSet() []Organization {
	saCfg := nurapidCfg(4, nurapid.NextFastest, nurapid.LRUDistance)
	saCfg.Placement = nurapid.SetAssociative
	dnEnergy := nuca.DefaultConfig()
	dnEnergy.Policy = nuca.SSEnergy
	dnIncr := nuca.DefaultConfig()
	dnIncr.Policy = nuca.Incremental
	trig2 := nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)
	trig2.PromoteHits = 2
	trig4 := nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)
	trig4.PromoteHits = 4
	restrict := nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)
	restrict.RestrictFrames = 256

	orgs := []Organization{
		Base(), Ideal(),
		// Fig4: set-associative vs distance-associative placement.
		NuRAPID(saCfg),
		// Fig5/Fig6: the three promotion policies (next-fastest also
		// covers Fig7-Fig11's 4-d-group NuRAPID).
		NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.RandomDistance)),
		NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)),
		NuRAPID(nurapidCfg(4, nurapid.Fastest, nurapid.RandomDistance)),
		// LRUStudy: the LRU distance-replacement combos.
		NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.LRUDistance)),
		NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.LRUDistance)),
		// Fig7/Fig8/Fig9: the d-group count sweep.
		NuRAPID(nurapidCfg(2, nurapid.NextFastest, nurapid.RandomDistance)),
		NuRAPID(nurapidCfg(8, nurapid.NextFastest, nurapid.RandomDistance)),
		// Fig9-Fig11 + ablation: the D-NUCA policies.
		DNUCA(nuca.DefaultConfig()),
		DNUCA(dnEnergy),
		DNUCA(dnIncr),
		// Ablation: promotion-trigger and restricted-pointer variants.
		NuRAPID(trig2),
		NuRAPID(trig4),
		NuRAPID(restrict),
	}
	seen := make(map[string]bool, len(orgs))
	deduped := orgs[:0]
	for _, o := range orgs {
		if seen[o.Key] {
			continue
		}
		seen[o.Key] = true
		deduped = append(deduped, o)
	}
	return deduped
}

// All runs every experiment in paper order, then the ablations. The
// whole campaign's run set is prefetched in one pool pass first, so a
// parallel runner keeps every worker busy across experiment boundaries
// instead of draining the pool at each experiment's barrier; with a
// serial runner the prefetch is a no-op and runs stay lazy.
func (r *Runner) All() []*Experiment {
	r.Prefetch(r.Apps, paperRunSet())
	return []*Experiment{
		r.Table1(), r.Table2(), r.Table3(), r.Table4(),
		r.Fig4(), r.Fig5(), r.Fig6(), r.LRUStudy(),
		r.Fig7(), r.Fig8(), r.Fig9(), r.Fig10(), r.Fig11(),
		r.Ablation(),
	}
}

// ByID returns the experiment with the given id, or an error listing the
// valid ids.
func (r *Runner) ByID(id string) (*Experiment, error) {
	drivers := map[string]func() *Experiment{
		"table1": r.Table1, "table2": r.Table2, "table3": r.Table3, "table4": r.Table4,
		"fig4": r.Fig4, "fig5": r.Fig5, "fig6": r.Fig6, "lru": r.LRUStudy,
		"fig7": r.Fig7, "fig8": r.Fig8, "fig9": r.Fig9, "fig10": r.Fig10, "fig11": r.Fig11,
		"ablation":       r.Ablation,
		"predictor":      r.PredictorStudy,
		"sweep-capacity": r.CapacitySweep,
		"sweep-block":    r.BlockSweep,
		"sweep-tech":     r.TechSweep,
		"cmp":            r.CMP,
	}
	d, ok := drivers[id]
	if !ok {
		return nil, fmt.Errorf("sim: unknown experiment %q (valid: table1-table4, fig4-fig11, lru, ablation, predictor, sweep-*, cmp, all)", id)
	}
	return d(), nil
}
