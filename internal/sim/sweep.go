package sim

import (
	"fmt"

	"nurapid/internal/cpu"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// CapacitySweep extends the paper's design space along total cache
// capacity: a 4-, 8- (the paper), and 16-MB NuRAPID, each with 2-MB
// d-groups, against the fixed base hierarchy. The wire model scales the
// d-group latencies with the floorplan, so bigger caches pay for their
// slower far groups.
func (r *Runner) CapacitySweep() *Experiment {
	t := stats.NewTable("Capacity sweep: NuRAPID with 2-MB d-groups vs the 8-MB base hierarchy",
		"benchmark", "4 MB", "8 MB (paper)", "16 MB")
	capacities := []struct {
		mb     int
		groups int
	}{{4, 2}, {8, 4}, {16, 8}}
	orgs := []Organization{Base()}
	byMB := map[int]Organization{}
	for _, c := range capacities {
		cfg := nurapid.DefaultConfig()
		cfg.CapacityBytes = int64(c.mb) << 20
		cfg.NumDGroups = c.groups
		org := NuRAPID(cfg)
		org.Key = fmt.Sprintf("%s-%dmb", org.Key, c.mb)
		orgs = append(orgs, org)
		byMB[c.mb] = org
	}
	r.Prefetch(r.Apps, orgs)
	rel := map[int][]float64{}
	for _, app := range r.Apps {
		row := []any{app.Name}
		for _, c := range capacities {
			p := r.RelPerf(app, byMB[c.mb])
			row = append(row, p)
			rel[c.mb] = append(rel[c.mb], p)
		}
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE", mean(rel[4]), mean(rel[8]), mean(rel[16]))
	return &Experiment{ID: "sweep-capacity", Caption: "Capacity sensitivity", Table: t,
		Metrics: map[string]float64{
			"rel_4mb":  mean(rel[4]),
			"rel_8mb":  mean(rel[8]),
			"rel_16mb": mean(rel[16]),
		}}
}

// BlockSweep varies the NuRAPID block size (64, 128, 256 bytes). Because
// the base hierarchy is defined at 128-B blocks, this sweep reports the
// absolute behaviour of each variant — IPC, L2 accesses per
// kilo-instruction, and miss rate — rather than relative performance.
// The runner derives the backing memory's block size from each
// organization's config, so every variant's fills and transfer charges
// match its actual block.
func (r *Runner) BlockSweep() *Experiment {
	t := stats.NewTable("Block-size sweep: 8-MB, 4-d-group NuRAPID",
		"benchmark", "block", "IPC", "APKI", "miss rate")
	blocks := []int{64, 128, 256}
	byBlock := map[int]Organization{}
	orgs := make([]Organization, 0, len(blocks))
	for _, bb := range blocks {
		cfg := nurapid.DefaultConfig()
		cfg.BlockBytes = bb
		byBlock[bb] = NuRAPID(cfg)
		orgs = append(orgs, byBlock[bb])
	}
	r.Prefetch(r.Apps, orgs)
	ipc := map[int][]float64{}
	miss := map[int][]float64{}
	for _, app := range r.Apps {
		for _, bb := range blocks {
			res := r.Run(app, byBlock[bb])
			t.AddRow(app.Name, fmt.Sprintf("%d B", bb),
				res.CPU.IPC, res.CPU.APKI, stats.Percent(res.L2Dist.MissFrac()))
			ipc[bb] = append(ipc[bb], res.CPU.IPC)
			miss[bb] = append(miss[bb], res.L2Dist.MissFrac())
		}
	}
	for _, bb := range blocks {
		t.AddRow("AVERAGE", fmt.Sprintf("%d B", bb), mean(ipc[bb]), "-", stats.Percent(mean(miss[bb])))
	}
	return &Experiment{ID: "sweep-block", Caption: "Block-size sensitivity", Table: t,
		Metrics: map[string]float64{
			"ipc_64":   mean(ipc[64]),
			"ipc_128":  mean(ipc[128]),
			"ipc_256":  mean(ipc[256]),
			"miss_64":  mean(miss[64]),
			"miss_256": mean(miss[256]),
		}}
}

// TechSweep models the paper's motivating trend — global wires slowing
// relative to logic across technology generations — by scaling the
// model's wire delay and energy 1x (the calibrated 70-nm point), 1.5x,
// and 2x, and comparing NuRAPID directly against D-NUCA at each point.
// Both organizations' latencies derive from the same scaled model, so
// the ratio isolates how each design tolerates wire-dominated caches.
func (r *Runner) TechSweep() *Experiment {
	t := stats.NewTable("Technology sweep: NuRAPID-4g cycles relative to D-NUCA (higher = NuRAPID faster)",
		"benchmark", "wires 1.0x (70nm)", "wires 1.5x", "wires 2.0x")
	scales := []float64{1.0, 1.5, 2.0}
	var tasks []func()
	for _, app := range r.Apps {
		for _, s := range scales {
			app, s := app, s
			tasks = append(tasks,
				func() { r.runScaledVariant(app, s, true) },
				func() { r.runScaledVariant(app, s, false) })
		}
	}
	r.fanOut(tasks)
	rel := map[float64][]float64{}
	for _, app := range r.Apps {
		row := []any{app.Name}
		for _, s := range scales {
			nu := r.runScaledVariant(app, s, true)
			dn := r.runScaledVariant(app, s, false)
			ratio := float64(dn.CPU.Cycles) / float64(nu.CPU.Cycles)
			row = append(row, ratio)
			rel[s] = append(rel[s], ratio)
		}
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE", mean(rel[1.0]), mean(rel[1.5]), mean(rel[2.0]))
	return &Experiment{ID: "sweep-tech", Caption: "Wire-delay scaling", Table: t,
		Metrics: map[string]float64{
			"vs_dnuca_1.0x": mean(rel[1.0]),
			"vs_dnuca_1.5x": mean(rel[1.5]),
			"vs_dnuca_2.0x": mean(rel[2.0]),
		}}
}

// runScaledVariant runs one app on NuRAPID or D-NUCA built from a
// wire-scaled model (singleflight-memoized like every other run).
func (r *Runner) runScaledVariant(app workload.App, scale float64, isNurapid bool) *RunResult {
	org := "dnuca"
	if isNurapid {
		org = "nurapid"
	}
	key := fmt.Sprintf("%s/techsweep-%s-%.2f", app.Name, org, scale)
	label := fmt.Sprintf("%s-wire%.2fx", org, scale)
	return r.runMemo(key, app.Name, label, false, func() *RunResult {
		model := r.Model.Scaled(scale)
		var l2 memsys.LowerLevel
		var mem *memsys.Memory
		if isNurapid {
			cfg := nurapid.DefaultConfig()
			mem = memsys.NewMemory(cfg.BlockBytes)
			l2 = nurapid.MustNew(cfg, model, mem)
		} else {
			cfg := nuca.DefaultConfig()
			mem = memsys.NewMemory(cfg.BlockBytes)
			l2 = nuca.MustNew(cfg, model, mem)
		}
		probes := r.instrument(app.Name, label, l2)
		core := cpu.MustNew(l2, cpu.WithL1EnergyNJ(model.L1NJ))
		cres := core.Run(workload.MustNewGenerator(app, r.Seed), r.Instructions)
		res := &RunResult{
			App:         app.Name,
			Org:         label,
			CPU:         cres,
			L2Dist:      l2.Distribution(),
			L2EnergyNJ:  l2.EnergyNJ(),
			MemEnergyNJ: mem.EnergyNJ(),
			MemAccesses: mem.Accesses,
		}
		r.finishProbes(probes, res)
		return res
	})
}
