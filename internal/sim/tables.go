package sim

import (
	"fmt"

	"nurapid/internal/floorplan"
	"nurapid/internal/stats"
)

// Table1 echoes the simulated system parameters (paper Table 1).
func (r *Runner) Table1() *Experiment {
	t := stats.NewTable("Table 1: System parameters", "parameter", "value")
	t.AddRowStrings("Issue width", "8")
	t.AddRowStrings("RUU (instruction window)", "64 entries")
	t.AddRowStrings("LSQ size", "32 entries")
	t.AddRowStrings("L1 i-cache", "64K, 2-way, 32 byte blocks, 3 cycle hit, 1 port, pipelined")
	t.AddRowStrings("L1 d-cache", "64K, 2-way, 32 byte blocks, 3 cycle hit, 1 port, 8 MSHRs")
	t.AddRowStrings("Memory latency", "130 cycles + 4 cycles per 8 bytes")
	t.AddRowStrings("Branch mispredict penalty", "9 cycles")
	t.AddRowStrings("Base L2", "1 MB, 8-way, 128 B blocks, 11 cycle hit")
	t.AddRowStrings("Base L3", "8 MB, 8-way, 128 B blocks, 43 cycle hit")
	t.AddRowStrings("NuRAPID", "8 MB, 8-way, 128 B blocks, 2/4/8 d-groups")
	t.AddRowStrings("D-NUCA", "8 MB, 16-way, 128 x 64 KB banks, 8 groups/set")
	t.AddRowStrings("Technology / clock", "70 nm, 5 GHz")
	return &Experiment{ID: "table1", Caption: "System parameters", Table: t,
		Metrics: map[string]float64{}}
}

// Table2 regenerates the paper's cache-energy table from the cacti model.
func (r *Runner) Table2() *Experiment {
	m := r.Model
	t := stats.NewTable("Table 2: Example cache energies in nJ", "operation", "energy (nJ)")
	p4 := floorplan.NewLShapedPlan(8, 4)
	p8 := floorplan.NewLShapedPlan(8, 8)
	e4 := m.DGroupEnergies(p4)
	e8 := m.DGroupEnergies(p8)
	grid := floorplan.NewNUCAGrid(8, 64)
	eb := m.NUCABankEnergies(grid)
	order := grid.BanksByDistance()
	closest, farthest := eb[order[0]], eb[order[len(order)-1]]
	avgOther := 0.0
	for _, b := range order[1:] {
		avgOther += eb[b]
	}
	avgOther /= float64(len(order) - 1)

	t.AddRow("Tag + access: closest of 4, 2-MB d-groups", e4[0])
	t.AddRow("Tag + access: farthest of 4, 2-MB d-groups (includes routing)", e4[3])
	t.AddRow("Tag + access: closest of 8, 1-MB d-groups", e8[0])
	t.AddRow("Tag + access: farthest of 8, 1-MB d-groups (includes routing)", e8[7])
	t.AddRow("Tag + access: closest 64-KB NUCA d-group", closest)
	t.AddRow("Tag + access: other 64-KB NUCA d-groups, average (includes routing)", avgOther)
	t.AddRow("Tag + access: farthest 64-KB NUCA d-group (includes routing)", farthest)
	t.AddRow("Access 7-bit-per-entry, 16-way NUCA sm-search array", m.SmartSearchNJ)
	t.AddRow("Tag + access: 2 ports of low-latency 64-KB 2-way L1 cache", m.L1NJ)
	return &Experiment{ID: "table2", Caption: "Cache energies", Table: t,
		Metrics: map[string]float64{
			"closest_2mb_nj":  e4[0],
			"farthest_2mb_nj": e4[3],
			"closest_1mb_nj":  e8[0],
			"farthest_1mb_nj": e8[7],
			"closest_nuca_nj": closest,
		}}
}

// Table3 reports the application roster with the Table 3 anchors next to
// the measured base-case IPC and L2 accesses per kilo-instruction.
func (r *Runner) Table3() *Experiment {
	r.Prefetch(r.Apps, []Organization{Base()})
	t := stats.NewTable("Table 3: Applications and L2 load (base case)",
		"benchmark", "type", "class", "paper IPC", "IPC", "paper APKI", "APKI")
	metrics := map[string]float64{}
	for _, app := range r.Apps {
		res := r.Run(app, Base())
		typ := "Int"
		if app.FP {
			typ = "FP"
		}
		t.AddRow(app.Name, typ, app.Class.String(),
			app.TableIPC, res.CPU.IPC, app.TableAPKI, res.CPU.APKI)
		metrics["apki_"+app.Name] = res.CPU.APKI
		metrics["ipc_"+app.Name] = res.CPU.IPC
	}
	return &Experiment{ID: "table3", Caption: "Application L2 loads", Table: t, Metrics: metrics}
}

// Table4 regenerates the latency table: per-megabyte access latency for
// the three NuRAPID configurations and the D-NUCA average.
func (r *Runner) Table4() *Experiment {
	m := r.Model
	t := stats.NewTable("Table 4: Cache latencies in cycles",
		"capacity", "2 d-groups", "4 d-groups", "8 d-groups", "D-NUCA (avg)")
	lat := map[int][]int{}
	for _, n := range []int{2, 4, 8} {
		lat[n] = m.DGroupLatencies(floorplan.NewLShapedPlan(8, n))
	}
	nucaAvg := []int{7, 11, 14, 17, 20, 23, 26, 29}
	metrics := map[string]float64{}
	for mb := 0; mb < 8; mb++ {
		row := make([]string, 5)
		row[0] = fmt.Sprintf("MB %d", mb+1)
		for i, n := range []int{2, 4, 8} {
			group := mb / (8 / n)
			row[i+1] = fmt.Sprintf("%d", lat[n][group])
		}
		row[4] = fmt.Sprintf("%d", nucaAvg[mb])
		t.AddRowStrings(row...)
	}
	metrics["fastest_2g"] = float64(lat[2][0])
	metrics["fastest_4g"] = float64(lat[4][0])
	metrics["fastest_8g"] = float64(lat[8][0])
	metrics["slowest_8g"] = float64(lat[8][7])
	return &Experiment{ID: "table4", Caption: "Cache latencies", Table: t, Metrics: metrics}
}
