package sim

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
)

// zeroAllocOrgs is every obs-emitting organization, one instance per
// policy family. DESIGN.md's overhead contract says the nil-probe fast
// path allocates nothing per access; these tests pin that claim with
// testing.AllocsPerRun instead of trusting the benchmark suite.
func zeroAllocOrgs() []Organization {
	dnucaEnergy := nuca.DefaultConfig()
	dnucaEnergy.Policy = nuca.SSEnergy
	nrLRU := nurapid.DefaultConfig()
	nrLRU.Distance = nurapid.LRUDistance
	nrPred := nurapid.DefaultConfig()
	nrPred.Promotion = nurapid.PredictiveBypass
	nrPred.Distance = nurapid.DeadOnArrival
	nrPred.Memoize = true
	return []Organization{
		Base(),
		Ideal(),
		DNUCA(nuca.DefaultConfig()),
		DNUCA(dnucaEnergy),
		NuRAPID(nurapid.DefaultConfig()),
		NuRAPID(nrLRU),
		NuRAPID(nrPred),
	}
}

// zeroAllocStream builds a deterministic mixed request stream sized to
// cycle each organization through hits, misses, evictions, writebacks,
// promotions, and demotion ripples.
func zeroAllocStream(blockBytes int, n int) []memsys.Request {
	rng := mathx.NewRNG(7)
	reqs := make([]memsys.Request, n)
	for i := range reqs {
		block := uint64(rng.Intn(3000))
		reqs[i] = memsys.Request{
			Addr:  block * uint64(blockBytes),
			Write: rng.Bool(0.3),
			Gap:   int64(rng.Intn(4)),
		}
	}
	return reqs
}

// TestNilProbeAccessZeroAlloc drives every organization's steady-state
// access path with no probe attached and requires zero heap allocations
// per batch: every obs emission site must sit behind a nil check that
// keeps the Event from being constructed, let alone escaping.
func TestNilProbeAccessZeroAlloc(t *testing.T) {
	for _, org := range zeroAllocOrgs() {
		org := org
		t.Run(org.Key, func(t *testing.T) {
			mem := memsys.NewMemory(org.blockBytes())
			l2 := org.Factory(cacti.Default(), mem)
			reqs := zeroAllocStream(org.blockBytes(), 4096)
			// Warm: fill the cache and settle the movement machinery.
			now := memsys.AccessMany(l2, 0, reqs, nil)
			avg := testing.AllocsPerRun(10, func() {
				now = memsys.AccessMany(l2, now, reqs, nil)
			})
			if avg != 0 {
				t.Fatalf("nil-probe steady state allocates %.1f allocs per %d-access batch, want 0",
					avg, len(reqs))
			}
		})
	}
}

// countingProbe is the cheapest possible non-nil probe: it observes the
// event stream without retaining anything.
type countingProbe struct {
	n int64
}

func (p *countingProbe) Emit(obs.Event) { p.n++ }

// TestAttachedProbeEmissionZeroAlloc pins the other half of the
// overhead contract: Events are fixed-size structs passed by value, so
// even with a probe attached the emitting path itself performs no heap
// allocation (probes that retain events pay for their own storage).
func TestAttachedProbeEmissionZeroAlloc(t *testing.T) {
	for _, org := range zeroAllocOrgs() {
		org := org
		t.Run(org.Key, func(t *testing.T) {
			mem := memsys.NewMemory(org.blockBytes())
			l2 := org.Factory(cacti.Default(), mem)
			p, ok := l2.(obs.Probeable)
			if !ok {
				t.Fatalf("%s does not accept probes", org.Key)
			}
			probe := &countingProbe{}
			p.SetProbe(probe)
			reqs := zeroAllocStream(org.blockBytes(), 4096)
			now := memsys.AccessMany(l2, 0, reqs, nil)
			avg := testing.AllocsPerRun(10, func() {
				now = memsys.AccessMany(l2, now, reqs, nil)
			})
			if avg != 0 {
				t.Fatalf("probed steady state allocates %.1f allocs per %d-access batch, want 0",
					avg, len(reqs))
			}
			if probe.n == 0 {
				t.Fatal("probe observed no events; the test exercised nothing")
			}
		})
	}
}
