package sim

import "testing"

func TestAblationExperiment(t *testing.T) {
	r := smallRunner(t)
	e := r.Ablation()
	if e.ID != "ablation" {
		t.Fatalf("id = %q", e.ID)
	}
	if e.Table.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7 variants", e.Table.NumRows())
	}
	for _, k := range []string{
		"rel_nurapid_trigger_1_paper",
		"rel_nurapid_trigger_2",
		"rel_nurapid_10_bit_pointers",
		"rel_dnuca_incremental",
		"energy_dnuca_ss_performance",
	} {
		if _, ok := e.Metrics[k]; !ok {
			t.Fatalf("metric %q missing; have %v", k, keys(e.Metrics))
		}
	}
	// ss-performance multicasts every access; incremental must use less
	// energy per instruction.
	if e.Metrics["energy_dnuca_incremental"] >= e.Metrics["energy_dnuca_ss_performance"] {
		t.Fatal("incremental search must use less energy than multicast")
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestAblationViaByID(t *testing.T) {
	r := smallRunner(t)
	e, err := r.ByID("ablation")
	if err != nil || e.ID != "ablation" {
		t.Fatalf("ByID(ablation): %v %v", e, err)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"nurapid trigger=1 (paper)": "nurapid_trigger_1_paper",
		"dnuca ss-energy":           "dnuca_ss_energy",
		"a  b":                      "a_b",
		"trailing ":                 "trailing",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}
