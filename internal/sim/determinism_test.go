package sim

import (
	"strings"
	"testing"
)

// renderExperiments runs a run-bearing subset of the paper's experiments
// on a fresh Runner and renders each in both text and CSV form, exactly
// as cmd/experiments would print them.
func renderExperiments(t *testing.T, seed uint64) string {
	t.Helper()
	r := smallRunner(t, WithSeed(seed))
	var b strings.Builder
	for _, e := range []*Experiment{r.Table4(), r.Fig4(), r.Fig7(), r.Fig11()} {
		if err := e.Render(&b, false); err != nil {
			t.Fatal(err)
		}
		if err := e.Render(&b, true); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestTableFigureOutputBitReproducible pins the Runner's reproducibility
// contract at the byte level: two runners with the same seed must render
// byte-identical table, chart, and metric text. D-NUCA comparisons and
// the EXPERIMENTS.md anchors are only meaningful under this guarantee,
// and the determinism analyzer (internal/lint) statically guards the
// constructs that usually break it.
func TestTableFigureOutputBitReproducible(t *testing.T) {
	a := renderExperiments(t, 7)
	b := renderExperiments(t, 7)
	if a != b {
		t.Fatalf("same seed rendered different bytes:\nfirst %d bytes, second %d bytes\nfirst diff near %q",
			len(a), len(b), firstDiff(a, b))
	}
	if len(a) == 0 {
		t.Fatal("rendered output is empty")
	}
}

// TestTableFigureOutputSeedSensitive is the converse guard: a different
// seed must actually change the workload, not just the label.
func TestTableFigureOutputSeedSensitive(t *testing.T) {
	a := renderExperiments(t, 7)
	b := renderExperiments(t, 8)
	if a == b {
		t.Fatal("different seeds rendered identical bytes; seed is not reaching the workload")
	}
}

func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 30
			if lo < 0 {
				lo = 0
			}
			hi := i + 30
			if hi > n {
				hi = n
			}
			return a[lo:hi]
		}
	}
	return "(one output is a prefix of the other)"
}
