package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestTextObserverFormat pins the adapter's output to the exact bytes
// the pre-Observer Runner.Progress callback produced.
func TestTextObserverFormat(t *testing.T) {
	var buf bytes.Buffer
	o := TextObserver(&buf)

	o.Observe(RunEvent{Kind: RunStart, App: "mcf", Org: "base"})
	if buf.Len() != 0 {
		t.Fatalf("start events must render nothing, got %q", buf.String())
	}

	o.Observe(RunEvent{Kind: RunFinish, App: "mcf", Org: "base",
		IPC: 1.23456, APKI: 12.34, HasAPKI: true})
	want := "ran mcf      on base                             IPC=1.235 APKI=12.3\n"
	if got := buf.String(); got != want {
		t.Fatalf("finish line:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	o.Observe(RunEvent{Kind: RunFinish, App: "applu", Org: "nurapid-wire1.50x",
		IPC: 0.5, APKI: 99, HasAPKI: false})
	want = "ran applu    on nurapid-wire1.50x                IPC=0.500\n"
	if got := buf.String(); got != want {
		t.Fatalf("APKI-less finish line:\n got %q\nwant %q", got, want)
	}
}

// TestTextObserverMatchesLegacyProgress runs a real simulation with the
// adapter attached and checks the emitted line against the legacy
// Progress format string, byte for byte.
func TestTextObserverMatchesLegacyProgress(t *testing.T) {
	var buf bytes.Buffer
	r := smallRunner(t, WithInstructions(60_000), WithObserver(TextObserver(&buf)))
	app := r.Apps[0]
	res := r.Run(app, Base())
	want := fmt.Sprintf("ran %-8s on %-32s IPC=%.3f APKI=%.1f\n",
		app.Name, "base", res.CPU.IPC, res.CPU.APKI)
	if got := buf.String(); got != want {
		t.Fatalf("progress line:\n got %q\nwant %q", got, want)
	}
}

// TestClockStampsElapsed checks that an injected clock reaches
// RunEvent.Elapsed on finish events (and only there).
func TestClockStampsElapsed(t *testing.T) {
	var ticks time.Duration
	clock := func() time.Duration { ticks += time.Millisecond; return ticks }
	var events []RunEvent
	r := smallRunner(t, WithInstructions(60_000),
		WithObserver(ObserverFunc(func(e RunEvent) { events = append(events, e) })),
		WithClock(clock))
	r.Run(r.Apps[0], Base())
	if len(events) != 2 {
		t.Fatalf("got %d events, want start+finish", len(events))
	}
	if events[0].Elapsed != 0 {
		t.Fatalf("start event carries elapsed %v, want 0", events[0].Elapsed)
	}
	if events[1].Elapsed != time.Millisecond {
		t.Fatalf("finish elapsed = %v, want 1ms from the fake clock", events[1].Elapsed)
	}
}

// TestEventKindString covers the diagnostic stringer.
func TestEventKindString(t *testing.T) {
	if RunStart.String() != "start" || RunFinish.String() != "finish" {
		t.Fatal("EventKind stringer wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Fatal("unknown kind stringer wrong")
	}
}
