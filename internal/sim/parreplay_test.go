package sim

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/workload"
)

// sliceSource replays a fixed instruction sequence then exhausts — the
// bounded-source shape (trace files, workload.Limit) whose trailing
// think time ExtractTrace used to discard.
type sliceSource struct {
	instrs []workload.Instr
	pos    int
}

func (s *sliceSource) Next() (workload.Instr, bool) {
	if s.pos >= len(s.instrs) {
		return workload.Instr{}, false
	}
	in := s.instrs[s.pos]
	s.pos++
	return in, true
}

// TestExtractTraceTailGap pins the tail-gap fix: a source ending in
// non-memory instructions must surface the trailing think time and the
// full instruction count instead of silently dropping both.
func TestExtractTraceTailGap(t *testing.T) {
	alu := workload.Instr{Kind: workload.ALU}
	src := &sliceSource{instrs: []workload.Instr{
		alu,
		{Kind: workload.Load, Addr: 0x1000},
		alu, alu,
		{Kind: workload.Store, Addr: 0x2000},
		alu, alu, alu,
	}}
	tr := ExtractTraceSource(src, 100)
	if len(tr.Reqs) != 2 {
		t.Fatalf("extracted %d requests, want 2", len(tr.Reqs))
	}
	if tr.Reqs[0].Gap != 1 || tr.Reqs[0].Write {
		t.Fatalf("request 0 = %+v, want Load with Gap 1", tr.Reqs[0])
	}
	if tr.Reqs[1].Gap != 2 || !tr.Reqs[1].Write {
		t.Fatalf("request 1 = %+v, want Store with Gap 2", tr.Reqs[1])
	}
	if tr.TailGap != 3 {
		t.Fatalf("TailGap = %d, want 3 (the trailing ALU run)", tr.TailGap)
	}
	if tr.Instructions != 8 {
		t.Fatalf("Instructions = %d, want 8", tr.Instructions)
	}

	// Budget-bounded extraction stops at a memory operation, so the
	// tail gap is zero and the unconsumed suffix is not accounted.
	src2 := &sliceSource{instrs: src.instrs}
	tr2 := ExtractTraceSource(src2, 1)
	if len(tr2.Reqs) != 1 || tr2.TailGap != 0 || tr2.Instructions != 2 {
		t.Fatalf("budgeted extraction = %d reqs, tail %d, %d instructions; want 1, 0, 2",
			len(tr2.Reqs), tr2.TailGap, tr2.Instructions)
	}
}

// TestReplayTraceAccountsTailGap pins that the trailing think time
// reaches FinalClock (and therefore the fingerprint) through
// ReplayTrace, while a zero tail leaves Replay's bytes untouched.
func TestReplayTraceAccountsTailGap(t *testing.T) {
	app, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload model missing")
	}
	model := cacti.Default()
	org := NuRAPID(nurapid.DefaultConfig())
	tr := ExtractTraceApp(app, 1, 2000)
	if tr.TailGap != 0 {
		t.Fatalf("generator-backed trace has TailGap %d, want 0", tr.TailGap)
	}
	plain := Replay(model, org, tr.Reqs)
	viaTrace := ReplayTrace(model, org, tr)
	if plain.Fingerprint() != viaTrace.Fingerprint() {
		t.Fatalf("zero-tail ReplayTrace fingerprint %#x differs from Replay %#x",
			viaTrace.Fingerprint(), plain.Fingerprint())
	}
	tailed := tr
	tailed.TailGap = 97
	withTail := ReplayTrace(model, org, tailed)
	if got, want := withTail.FinalClock, plain.FinalClock+97; got != want {
		t.Fatalf("FinalClock with tail = %d, want %d", got, want)
	}
	if withTail.Fingerprint() == plain.Fingerprint() {
		t.Fatal("tail gap did not reach the fingerprint")
	}
}

// TestTraceStreamMatchesExtract pins the sharding contract of chunked
// generation: the concatenation of a TraceStream's chunks must be
// byte-identical to a one-shot ExtractTrace at every chunk size, so the
// chunk size can never leak into replay results.
func TestTraceStreamMatchesExtract(t *testing.T) {
	app, ok := workload.ByName("applu")
	if !ok {
		t.Fatal("applu workload model missing")
	}
	const n = 5000
	want := ExtractTrace(app, 1, n)
	if len(want) != n {
		t.Fatalf("one-shot extraction produced %d requests, want %d", len(want), n)
	}
	for _, chunk := range []int{1, 7, 1000, n, 10 * n} {
		s := NewTraceStream(app, 1, n)
		var got []memsys.Request
		for {
			c := s.Next(chunk)
			if c == nil {
				break
			}
			got = append(got, c...)
		}
		if !s.Done() {
			t.Fatalf("chunk %d: stream not done after nil chunk", chunk)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: chunked extraction diverged from one-shot", chunk)
		}
		if s.TailGap() != 0 {
			t.Fatalf("chunk %d: generator-backed stream has tail gap %d", chunk, s.TailGap())
		}
		if s.Instructions() < int64(n) {
			t.Fatalf("chunk %d: %d instructions for %d requests", chunk, s.Instructions(), n)
		}
	}
}

// parReplayJobs is the job matrix the determinism tests shard: two
// seeded app streams replayed through one organization per family, so
// both the generation sharing (several orgs per stream) and the
// cross-family merge are exercised.
func parReplayJobs(t *testing.T, n int) []ReplayJob {
	t.Helper()
	var jobs []ReplayJob
	orgs := []Organization{Base(), DNUCA(nuca.DefaultConfig()), NuRAPID(nurapid.DefaultConfig())}
	for _, name := range []string{"mcf", "gzip"} {
		app, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		for _, org := range orgs {
			jobs = append(jobs, ReplayJob{App: app, Seed: 1, N: n, Org: org})
		}
	}
	return jobs
}

// replaySnapshotString flattens a ReplayResult into a comparable string
// covering the snapshot and every counter — the "byte-identical
// snapshot" half of the determinism contract (Fingerprint covers the
// same fields hashed).
func replaySnapshotString(r *ReplayResult) string {
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		return "writetext error: " + err.Error()
	}
	fmt.Fprintf(&b, "fingerprint %016x\n", r.Fingerprint())
	return b.String()
}

// TestReplayAllMatchesSerial is the chunked-replay determinism
// contract: at 1, 2, 4, and 8 workers, with shuffled task submission
// standing in for shuffled completion order, and at several chunk
// sizes, ReplayAll must reproduce the serial per-job ReplayTrace bytes
// exactly. Run under -race (make race-runner / CI) this also shakes
// out data races in the producer/consumer pipeline.
func TestReplayAllMatchesSerial(t *testing.T) {
	const n = 4000
	jobs := parReplayJobs(t, n)
	model := cacti.Default()

	want := make([]string, len(jobs))
	for i, j := range jobs {
		want[i] = replaySnapshotString(ReplayTrace(model, j.Org, ExtractTraceApp(j.App, j.Seed, j.N)))
	}

	// A fixed non-trivial permutation: reversed pairs across the job
	// list, so later-submitted jobs complete before earlier ones even
	// on a single-proc pool.
	shuffled := make([]int, len(jobs))
	for i := range shuffled {
		shuffled[i] = len(jobs) - 1 - i
	}

	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{0, 512, 1 << 16} {
			opts := ReplayOptions{Workers: workers, ChunkRequests: chunk, order: shuffled}
			got := ReplayAll(model, jobs, opts)
			if len(got) != len(jobs) {
				t.Fatalf("workers=%d chunk=%d: %d results for %d jobs", workers, chunk, len(got), len(jobs))
			}
			for i, res := range got {
				if res == nil {
					t.Fatalf("workers=%d chunk=%d: job %d missing result", workers, chunk, i)
				}
				if s := replaySnapshotString(res); s != want[i] {
					t.Fatalf("workers=%d chunk=%d: job %d diverged from serial\nserial:\n%s\npool:\n%s",
						workers, chunk, i, want[i], s)
				}
			}
		}
	}
}

// TestReplayAllSharesTraceGeneration pins the sharded-generation
// grouping: jobs over the same (app, seed, n) stream must replay the
// very same trace (one producer per stream), observable as identical
// request counts and — for identical orgs — identical fingerprints.
func TestReplayAllSharesTraceGeneration(t *testing.T) {
	app, ok := workload.ByName("applu")
	if !ok {
		t.Fatal("applu workload model missing")
	}
	model := cacti.Default()
	org := NuRAPID(nurapid.DefaultConfig())
	jobs := []ReplayJob{
		{App: app, Seed: 1, N: 2000, Org: org},
		{App: app, Seed: 1, N: 2000, Org: org},
		{App: app, Seed: 2, N: 2000, Org: org},
	}
	got := ReplayAll(model, jobs, ReplayOptions{Workers: 4})
	if got[0].Fingerprint() != got[1].Fingerprint() {
		t.Fatal("same (app, seed, n, org) jobs produced different fingerprints")
	}
	if got[0].Fingerprint() == got[2].Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// panickingOrg is an organization whose factory panics — the seeded
// fault for the worker-pool failure-handling tests.
func panickingOrg() Organization {
	return Organization{Key: "panicker", Factory: func(m *cacti.Model, mem *memsys.Memory) memsys.LowerLevel {
		panic("sim: seeded test panic")
	}}
}

// TestRunPanicReleasesSingleflight seeds a panic into the one memoized
// execution and checks every concurrent caller of the key — the
// executor and all singleflight waiters — observes it. Before the
// latch, waiters were released with a nil result and crashed on a
// secondary nil dereference (or the process died from a pool
// goroutine).
func TestRunPanicReleasesSingleflight(t *testing.T) {
	starts := 0
	r := smallRunner(t, WithInstructions(60_000),
		WithObserver(ObserverFunc(func(e RunEvent) {
			if e.Kind == RunStart {
				starts++
			}
		})))
	app := r.Apps[0]

	const callers = 8
	panics := make([]string, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[i] = fmt.Sprint(p)
				}
			}()
			r.Run(app, panickingOrg())
		}(i)
	}
	wg.Wait()

	if starts != 1 {
		t.Fatalf("panicking run started %d times, want exactly 1", starts)
	}
	for i, p := range panics {
		if p == "" {
			t.Fatalf("caller %d did not observe the panic", i)
		}
		if !strings.Contains(p, "seeded test panic") || !strings.Contains(p, "panicker") {
			t.Fatalf("caller %d panic %q does not carry the seeded failure and run key", i, p)
		}
	}
}

// TestPrefetchPanicPropagates seeds a panic into one task of a
// parallel Prefetch and checks the pool finishes the remaining tasks,
// then re-raises the failure from Prefetch on the caller's goroutine —
// instead of the pre-fix behaviour, where the panic killed the process
// from an anonymous worker goroutine mid-fan-out.
func TestPrefetchPanicPropagates(t *testing.T) {
	finishes := 0
	r := smallRunner(t, WithInstructions(60_000), WithWorkers(4),
		WithObserver(ObserverFunc(func(e RunEvent) {
			if e.Kind == RunFinish {
				finishes++
			}
		})))

	var caught string
	func() {
		defer func() {
			if p := recover(); p != nil {
				caught = fmt.Sprint(p)
			}
		}()
		r.Prefetch(r.Apps, []Organization{Base(), panickingOrg(), Ideal()})
	}()

	if caught == "" {
		t.Fatal("Prefetch swallowed the task panic")
	}
	if !strings.Contains(caught, "seeded test panic") {
		t.Fatalf("Prefetch panic %q does not carry the seeded failure", caught)
	}
	// Every healthy (app, org) pair still ran: the pool drained instead
	// of dying mid-flight.
	if want := len(r.Apps) * 2; finishes != want {
		t.Fatalf("pool finished %d healthy runs before re-raising, want %d", finishes, want)
	}
}

// TestRunPoolPanicIsDeterministic pins which panic wins when several
// tasks fail: the lowest submission index, whatever the completion
// order.
func TestRunPoolPanicIsDeterministic(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		var caught string
		func() {
			defer func() {
				if p := recover(); p != nil {
					caught = fmt.Sprint(p)
				}
			}()
			runPool(4, []func(){
				func() {},
				func() { panic("sim: first seeded panic") },
				func() { panic("sim: second seeded panic") },
				func() {},
			})
		}()
		if !strings.Contains(caught, "task 1") || !strings.Contains(caught, "first seeded panic") {
			t.Fatalf("trial %d: runPool re-raised %q, want the lowest-index panic (task 1)", trial, caught)
		}
	}
}

// TestPaperRunSetCoversAll pins the union prefetch against drift: after
// prefetching paperRunSet, rendering the whole campaign must execute no
// further simulations. An experiment gaining an organization missing
// from the union would start a run here.
func TestPaperRunSetCoversAll(t *testing.T) {
	starts := 0
	r := smallRunner(t, WithInstructions(60_000), WithWorkers(2),
		WithObserver(ObserverFunc(func(e RunEvent) {
			if e.Kind == RunStart {
				starts++
			}
		})))
	r.Prefetch(r.Apps, paperRunSet())
	prefetched := starts
	if prefetched == 0 {
		t.Fatal("union prefetch executed nothing")
	}
	for _, e := range r.All() {
		if e == nil {
			t.Fatal("nil experiment")
		}
	}
	if starts != prefetched {
		t.Fatalf("All() executed %d runs beyond the union prefetch — paperRunSet is missing organizations",
			starts-prefetched)
	}
}
