// Trace replay: the batched AccessMany path from the L2's point of
// view. The full-system runner drives organizations access-by-access
// through the out-of-order core (each DoneAt feeds back into dispatch),
// but measurement campaigns that only care about the L2 itself — the
// bench-core suite, the determinism guard, quick what-if sweeps —
// replay a pre-extracted request trace straight through
// memsys.AccessMany, hitting each organization's specialized batched
// loop with zero per-access overhead from the core model.
package sim

import (
	"fmt"
	"hash/fnv"
	"io"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// ExtractTrace synthesizes the L2-visible request stream of an
// application model: every Load/Store becomes one request (block
// granularity is left to the organization), and the Gap of a request
// counts the non-memory instructions issued since the previous memory
// operation — a cheap stand-in for core think time. Deterministic for
// a given (app, seed, n).
func ExtractTrace(app workload.App, seed uint64, n int) []memsys.Request {
	return ExtractTraceApp(app, seed, n).Reqs
}

// Trace bundles an extracted request stream with the accounting the raw
// request slice cannot carry: the think time trailing the last memory
// operation (which a Gap field on the next request would normally hold,
// but there is no next request) and the total instructions the stream
// covers. Replaying Reqs alone silently drops TailGap; ReplayTrace
// accounts it.
type Trace struct {
	Reqs []memsys.Request
	// TailGap is the number of non-memory instructions issued after the
	// last Load/Store before the source ended. Zero for request-budget
	// extraction from an inexhaustible generator (extraction stops at a
	// memory operation), nonzero when a bounded source ends mid-gap.
	TailGap int64
	// Instructions is the total instruction count consumed producing
	// the trace: len(Reqs) memory operations plus every inter-request
	// gap plus TailGap.
	Instructions int64
}

// ExtractTraceApp extracts app's request stream like ExtractTrace but
// returns the full Trace, including the tail-gap and instruction
// accounting.
func ExtractTraceApp(app workload.App, seed uint64, n int) Trace {
	return ExtractTraceSource(workload.MustNewGenerator(app, seed), n)
}

// ExtractTraceSource drains up to n requests from src. The request
// bytes are identical to ExtractTrace over the same stream; the Trace
// additionally carries the trailing think time of a source that ends
// after its last memory operation, so bounded sources (trace files,
// workload.Limit) lose no instruction accounting.
func ExtractTraceSource(src workload.Source, n int) Trace {
	s := NewSourceStream(src, n)
	t := Trace{Reqs: s.Next(n)}
	if t.Reqs == nil {
		t.Reqs = []memsys.Request{}
	}
	t.TailGap = s.TailGap()
	t.Instructions = s.Instructions()
	return t
}

// TraceStream incrementally extracts an L2 request stream in chunks,
// carrying the inter-request gap across chunk boundaries so the
// concatenation of its chunks is byte-identical to a one-shot
// ExtractTrace of the same source and budget (a tested guarantee).
// The chunked form is what the parallel replay pipeline works in:
// generation stays a single sequential stream (the generator is
// stateful), while downstream replay proceeds chunk by chunk.
type TraceStream struct {
	src   workload.Source
	left  int   // requests still to extract
	gap   int64 // think time accumulated since the last request
	insts int64 // instructions consumed so far
	done  bool  // source exhausted or budget reached
}

// NewTraceStream opens a chunked extraction of app's request stream at
// seed, budgeted at n requests.
func NewTraceStream(app workload.App, seed uint64, n int) *TraceStream {
	return NewSourceStream(workload.MustNewGenerator(app, seed), n)
}

// NewSourceStream opens a chunked extraction over an arbitrary
// instruction source, budgeted at n requests.
func NewSourceStream(src workload.Source, n int) *TraceStream {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative trace budget %d", n))
	}
	return &TraceStream{src: src, left: n}
}

// Next extracts the next chunk of up to limit requests, or nil when the
// stream is exhausted. Each returned slice is freshly allocated, so
// chunks may be handed to concurrent consumers.
func (s *TraceStream) Next(limit int) []memsys.Request {
	if s.done || limit <= 0 {
		return nil
	}
	if limit > s.left {
		limit = s.left
	}
	reqs := make([]memsys.Request, 0, limit)
	for len(reqs) < limit {
		in, ok := s.src.Next()
		if !ok {
			s.done = true
			break
		}
		s.insts++
		switch in.Kind {
		case workload.Load, workload.Store:
			reqs = append(reqs, memsys.Request{
				Addr:  in.Addr,
				Write: in.Kind == workload.Store,
				Gap:   s.gap,
			})
			s.gap = 0
		default:
			s.gap++
		}
	}
	s.left -= len(reqs)
	if s.left == 0 {
		s.done = true
	}
	if len(reqs) == 0 {
		return nil
	}
	return reqs
}

// Done reports whether the stream has no further requests.
func (s *TraceStream) Done() bool { return s.done }

// TailGap returns the think time accumulated after the last extracted
// request. It only settles once Done; mid-stream it is the gap carried
// into the next chunk.
func (s *TraceStream) TailGap() int64 { return s.gap }

// Instructions returns the total instructions consumed so far.
func (s *TraceStream) Instructions() int64 { return s.insts }

// ReplayResult captures the organization-level outcome of one batched
// trace replay.
type ReplayResult struct {
	Org      string
	Requests int64
	// FinalClock is the completion cycle of the last request — the
	// replay's end-to-end latency under the organization's port and
	// movement serialization rules.
	FinalClock int64
	Hits       int64
	L2EnergyNJ float64
	MemReads   int64
	MemWrites  int64

	Ctrs stats.Counters
}

// Snapshot emits the replay's numeric fields (statsreg convention).
func (r *ReplayResult) Snapshot() []stats.KV {
	return []stats.KV{
		{Name: "requests", Value: float64(r.Requests)},
		{Name: "final_clock", Value: float64(r.FinalClock)},
		{Name: "hits", Value: float64(r.Hits)},
		{Name: "l2_energy_nj", Value: r.L2EnergyNJ},
		{Name: "mem_reads", Value: float64(r.MemReads)},
		{Name: "mem_writes", Value: float64(r.MemWrites)},
	}
}

// Replay runs reqs through a fresh instance of org on the batched
// path and returns the aggregate result. Deterministic for a given
// (org, reqs, model).
//
//nurapid:coldpath
func Replay(model *cacti.Model, org Organization, reqs []memsys.Request) *ReplayResult {
	return ReplayTrace(model, org, Trace{Reqs: reqs})
}

// ReplayTrace replays a full Trace through a fresh instance of org:
// the request stream runs on the batched path, and the trace's trailing
// think time is added to FinalClock, so a bounded source's tail gap is
// no longer silently dropped from the replay's end-to-end latency. For
// a TailGap of zero the result is bit-identical to Replay.
//
//nurapid:coldpath
func ReplayTrace(model *cacti.Model, org Organization, t Trace) *ReplayResult {
	mem := memsys.NewMemory(org.blockBytes())
	l2 := org.Factory(model, mem)
	end := replayChunks(l2, t.Reqs, len(t.Reqs)) + t.TailGap
	return buildReplayResult(org.Key, l2, mem, int64(len(t.Reqs)), end)
}

// replayChunks drives reqs through l2 in chunks of at most chunk
// requests, carrying the completion clock across chunk boundaries.
// Because AccessMany's replay rule (now_i = DoneAt_{i-1} + Gap_{i-1})
// threads one clock through the whole sequence, folding the returned
// clock into the next chunk's start reproduces the single-call replay
// exactly — the chunk boundary is invisible to the organization's port
// and movement serialization. This is the per-shard inner loop of the
// parallel replay pipeline; cache state cannot be split, so within one
// (app, org) replay chunks stay strictly sequential.
//
//nurapid:coldpath
func replayChunks(l2 memsys.LowerLevel, reqs []memsys.Request, chunk int) int64 {
	if chunk <= 0 {
		chunk = DefaultChunkRequests
	}
	now := int64(0)
	for start := 0; start < len(reqs); start += chunk {
		end := start + chunk
		if end > len(reqs) {
			end = len(reqs)
		}
		now = memsys.AccessMany(l2, now, reqs[start:end], nil)
	}
	return now
}

// buildReplayResult harvests the organization's post-replay state into
// a ReplayResult; shared by the serial and pooled replay paths so both
// produce identical bytes by construction.
func buildReplayResult(orgKey string, l2 memsys.LowerLevel, mem *memsys.Memory, requests, finalClock int64) *ReplayResult {
	res := &ReplayResult{
		Org:        orgKey,
		Requests:   requests,
		FinalClock: finalClock,
		Hits:       l2.Distribution().Total() - l2.Distribution().MissCount(),
		L2EnergyNJ: l2.EnergyNJ(),
		MemReads:   mem.Accesses - mem.Writes,
		MemWrites:  mem.Writes,
	}
	for _, name := range l2.Counters().Names() {
		res.Ctrs.Add(name, l2.Counters().Get(name))
	}
	return res
}

// Fingerprint folds the replay's counters and snapshot into one FNV-64
// value. Two runs with the same configuration, trace, and model hash
// identically; any divergence — a counter, the final clock, an energy
// bit — changes the fingerprint. The determinism guard compares this
// against a golden value.
func (r *ReplayResult) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "org=%s\n", r.Org)
	for _, kv := range r.Snapshot() {
		fmt.Fprintf(h, "%s=%v\n", kv.Name, kv.Value)
	}
	for _, name := range r.Ctrs.Names() {
		fmt.Fprintf(h, "ctr.%s=%d\n", name, r.Ctrs.Get(name))
	}
	return h.Sum64()
}

// WriteText renders the replay result as an aligned two-column report.
func (r *ReplayResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "replay %s: %d requests\n", r.Org, r.Requests); err != nil {
		return err
	}
	for _, kv := range r.Snapshot() {
		if kv.Name == "requests" {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-24s %v\n", kv.Name, kv.Value); err != nil {
			return err
		}
	}
	for _, name := range r.Ctrs.Names() {
		if _, err := fmt.Fprintf(w, "  %-24s %d\n", "ctr."+name, r.Ctrs.Get(name)); err != nil {
			return err
		}
	}
	return nil
}
