// Trace replay: the batched AccessMany path from the L2's point of
// view. The full-system runner drives organizations access-by-access
// through the out-of-order core (each DoneAt feeds back into dispatch),
// but measurement campaigns that only care about the L2 itself — the
// bench-core suite, the determinism guard, quick what-if sweeps —
// replay a pre-extracted request trace straight through
// memsys.AccessMany, hitting each organization's specialized batched
// loop with zero per-access overhead from the core model.
package sim

import (
	"fmt"
	"hash/fnv"
	"io"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// ExtractTrace synthesizes the L2-visible request stream of an
// application model: every Load/Store becomes one request (block
// granularity is left to the organization), and the Gap of a request
// counts the non-memory instructions issued since the previous memory
// operation — a cheap stand-in for core think time. Deterministic for
// a given (app, seed, n).
func ExtractTrace(app workload.App, seed uint64, n int) []memsys.Request {
	gen := workload.MustNewGenerator(app, seed)
	reqs := make([]memsys.Request, 0, n)
	gap := int64(0)
	for len(reqs) < n {
		in, ok := gen.Next()
		if !ok {
			break
		}
		switch in.Kind {
		case workload.Load, workload.Store:
			reqs = append(reqs, memsys.Request{
				Addr:  in.Addr,
				Write: in.Kind == workload.Store,
				Gap:   gap,
			})
			gap = 0
		default:
			gap++
		}
	}
	return reqs
}

// ReplayResult captures the organization-level outcome of one batched
// trace replay.
type ReplayResult struct {
	Org      string
	Requests int64
	// FinalClock is the completion cycle of the last request — the
	// replay's end-to-end latency under the organization's port and
	// movement serialization rules.
	FinalClock int64
	Hits       int64
	L2EnergyNJ float64
	MemReads   int64
	MemWrites  int64

	Ctrs stats.Counters
}

// Snapshot emits the replay's numeric fields (statsreg convention).
func (r *ReplayResult) Snapshot() []stats.KV {
	return []stats.KV{
		{Name: "requests", Value: float64(r.Requests)},
		{Name: "final_clock", Value: float64(r.FinalClock)},
		{Name: "hits", Value: float64(r.Hits)},
		{Name: "l2_energy_nj", Value: r.L2EnergyNJ},
		{Name: "mem_reads", Value: float64(r.MemReads)},
		{Name: "mem_writes", Value: float64(r.MemWrites)},
	}
}

// Replay runs reqs through a fresh instance of org on the batched
// path and returns the aggregate result. Deterministic for a given
// (org, reqs, model).
//
//nurapid:coldpath
func Replay(model *cacti.Model, org Organization, reqs []memsys.Request) *ReplayResult {
	mem := memsys.NewMemory(org.blockBytes())
	l2 := org.Factory(model, mem)
	end := memsys.AccessMany(l2, 0, reqs, nil)
	res := &ReplayResult{
		Org:        org.Key,
		Requests:   int64(len(reqs)),
		FinalClock: end,
		Hits:       l2.Distribution().Total() - l2.Distribution().MissCount(),
		L2EnergyNJ: l2.EnergyNJ(),
		MemReads:   mem.Accesses - mem.Writes,
		MemWrites:  mem.Writes,
	}
	for _, name := range l2.Counters().Names() {
		res.Ctrs.Add(name, l2.Counters().Get(name))
	}
	return res
}

// Fingerprint folds the replay's counters and snapshot into one FNV-64
// value. Two runs with the same configuration, trace, and model hash
// identically; any divergence — a counter, the final clock, an energy
// bit — changes the fingerprint. The determinism guard compares this
// against a golden value.
func (r *ReplayResult) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "org=%s\n", r.Org)
	for _, kv := range r.Snapshot() {
		fmt.Fprintf(h, "%s=%v\n", kv.Name, kv.Value)
	}
	for _, name := range r.Ctrs.Names() {
		fmt.Fprintf(h, "ctr.%s=%d\n", name, r.Ctrs.Get(name))
	}
	return h.Sum64()
}

// WriteText renders the replay result as an aligned two-column report.
func (r *ReplayResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "replay %s: %d requests\n", r.Org, r.Requests); err != nil {
		return err
	}
	for _, kv := range r.Snapshot() {
		if kv.Name == "requests" {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-24s %v\n", kv.Name, kv.Value); err != nil {
			return err
		}
	}
	for _, name := range r.Ctrs.Names() {
		if _, err := fmt.Fprintf(w, "  %-24s %d\n", "ctr."+name, r.Ctrs.Get(name)); err != nil {
			return err
		}
	}
	return nil
}
