package sim

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nurapid/internal/memsys"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

// ProbeFactory builds one probe per executed run. It is called once per
// (app, org) simulation — memoized duplicates never see it — from
// whichever goroutine executes the run, so factories must be safe for
// concurrent calls but the probes they return need no locking (a run's
// events are emitted from a single goroutine). Returning nil opts the
// run out of probing entirely.
type ProbeFactory func(app, org string) obs.Probe

// noteProbeErr latches the first probe-plumbing error (trace file
// creation, sink flush, an organization that cannot accept probes).
// Probing is observability, not simulation: errors never abort a run,
// they surface through ProbeErr after the experiment completes.
func (r *Runner) noteProbeErr(err error) {
	if err == nil {
		return
	}
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	if r.probeErr == nil {
		r.probeErr = err
	}
}

// ProbeErr reports the first error hit while wiring or closing probes,
// if any. Callers using WithTrace should check it after their runs.
func (r *Runner) ProbeErr() error {
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	return r.probeErr
}

// buildProbes assembles the probe chain for one run: the WithProbe
// factory's probe (if any) followed by a WithTrace JSONL sink (if any).
func (r *Runner) buildProbes(app, org string) []obs.Probe {
	var ps []obs.Probe
	if r.probe != nil {
		if p := r.probe(app, org); p != nil {
			ps = append(ps, p)
		}
	}
	if r.traceDir != "" {
		f, err := os.Create(filepath.Join(r.traceDir, app+"__"+org+".jsonl"))
		if err != nil {
			r.noteProbeErr(err)
		} else {
			ps = append(ps, obs.NewTraceSink(f))
		}
	}
	return ps
}

// instrument attaches the run's probe chain to l2 and returns the
// probes so finishProbes can harvest and close them after the run.
// With no probes configured it returns nil and l2 keeps its nil-probe
// fast path.
func (r *Runner) instrument(app, org string, l2 memsys.LowerLevel) []obs.Probe {
	ps := r.buildProbes(app, org)
	if len(ps) == 0 {
		return nil
	}
	pb, ok := l2.(obs.Probeable)
	if !ok {
		r.noteProbeErr(fmt.Errorf("sim: organization %s does not accept probes", org))
		r.closeProbes(ps)
		return nil
	}
	pb.SetProbe(obs.Multi(ps...))
	return ps
}

// finishProbes harvests each probe's metrics snapshot into the result
// and closes probes that hold resources (trace sinks flush here).
func (r *Runner) finishProbes(ps []obs.Probe, res *RunResult) {
	for _, p := range ps {
		if s, ok := p.(interface{ Snapshot() []stats.KV }); ok {
			res.ObsMetrics = append(res.ObsMetrics, s.Snapshot()...)
		}
	}
	r.closeProbes(ps)
}

// closeProbes closes every probe that is an io.Closer, latching the
// first error.
func (r *Runner) closeProbes(ps []obs.Probe) {
	for _, p := range ps {
		if c, ok := p.(io.Closer); ok {
			r.noteProbeErr(c.Close())
		}
	}
}
