package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nurapid/internal/cmp"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// TestProbeObserverParallelDelivery checks the Runner's observer
// contract under a parallel pool: Observe calls never overlap (the
// Runner serializes them), every executed run produces exactly one
// start/finish pair, and finish events carry the metrics snapshot.
func TestProbeObserverParallelDelivery(t *testing.T) {
	var inFlight, overlaps int32
	type pair struct{ starts, finishes int }
	pairs := make(map[string]*pair)
	obsv := ObserverFunc(func(e RunEvent) {
		if atomic.AddInt32(&inFlight, 1) != 1 {
			atomic.AddInt32(&overlaps, 1)
		}
		key := e.App + "/" + e.Org
		p := pairs[key]
		if p == nil {
			p = &pair{}
			pairs[key] = p
		}
		switch e.Kind {
		case RunStart:
			p.starts++
			if e.Metrics != nil {
				t.Error("start event carries metrics")
			}
		case RunFinish:
			p.finishes++
			if len(e.Metrics) == 0 {
				t.Error("finish event missing metrics snapshot")
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})

	r := smallRunner(t, WithWorkers(4), WithObserver(obsv))
	orgs := []Organization{Base(), NuRAPID(nurapid.DefaultConfig())}
	r.Prefetch(r.Apps, orgs)
	// Re-running everything must observe nothing new (memoized).
	for _, app := range r.Apps {
		for _, org := range orgs {
			r.Run(app, org)
		}
	}

	if overlaps != 0 {
		t.Fatalf("%d overlapping Observe calls; delivery must be serialized", overlaps)
	}
	if len(pairs) != len(r.Apps)*len(orgs) {
		t.Fatalf("observed %d runs, want %d", len(pairs), len(r.Apps)*len(orgs))
	}
	for key, p := range pairs {
		if p.starts != 1 || p.finishes != 1 {
			t.Fatalf("run %s observed %d starts / %d finishes, want 1/1", key, p.starts, p.finishes)
		}
	}
}

// memProbe wraps a TraceSink over an in-memory buffer so tests can
// compare raw trace bytes.
type memProbe struct {
	mu   sync.Mutex
	bufs map[string]*bytes.Buffer
}

func (m *memProbe) factory(app, org string) obs.Probe {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bufs == nil {
		m.bufs = make(map[string]*bytes.Buffer)
	}
	buf := &bytes.Buffer{}
	m.bufs[app+"/"+org] = buf
	return obs.NewTraceSink(buf)
}

// TestTraceDeterminismFixedSeed checks that two runners at the same
// seed emit byte-identical event traces, including under a parallel
// worker pool.
func TestTraceDeterminismFixedSeed(t *testing.T) {
	run := func(workers int) map[string]*bytes.Buffer {
		m := &memProbe{}
		r := smallRunner(t, WithWorkers(workers), WithProbe(m.factory))
		orgs := []Organization{NuRAPID(nurapid.DefaultConfig()), Base()}
		r.Prefetch(r.Apps, orgs)
		for _, app := range r.Apps { // serial runners compute on demand
			for _, org := range orgs {
				r.Run(app, org)
			}
		}
		if err := r.ProbeErr(); err != nil {
			t.Fatal(err)
		}
		return m.bufs
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("trace sets differ in size: %d vs %d", len(serial), len(parallel))
	}
	for key, a := range serial {
		b := parallel[key]
		if b == nil {
			t.Fatalf("run %s missing from parallel traces", key)
		}
		if a.Len() == 0 {
			t.Fatalf("run %s produced an empty trace", key)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("run %s traces differ between serial and parallel runners", key)
		}
	}
}

// TestCMPTraceDeterminism checks that fixed-seed CMP runs emit
// byte-identical queue-side traces across serial and parallel runners,
// that the stream carries the queue kinds (enqueue/issue) and coherence
// shoot-downs (inval), and pins the first enqueue line's exact bytes as
// the golden encoding for the -cmp trace format.
func TestCMPTraceDeterminism(t *testing.T) {
	org := NuRAPID(nurapid.DefaultConfig())
	run := func(workers int) map[string]*bytes.Buffer {
		m := &memProbe{}
		r := smallRunner(t, WithWorkers(workers), WithProbe(m.factory),
			WithCores(2), WithSharing(cmp.Shared))
		orgs := []Organization{org, Base()}
		r.PrefetchCMP(r.Apps, orgs)
		for _, app := range r.Apps { // serial runners compute on demand
			for _, o := range orgs {
				r.RunCMP(app, o)
			}
		}
		if err := r.ProbeErr(); err != nil {
			t.Fatal(err)
		}
		return m.bufs
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("trace sets differ in size: %d vs %d", len(serial), len(parallel))
	}
	var invals int64
	var mcfTrace []byte
	for key, a := range serial {
		b := parallel[key]
		if b == nil {
			t.Fatalf("run %s missing from parallel traces", key)
		}
		if a.Len() == 0 {
			t.Fatalf("run %s produced an empty trace", key)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("run %s traces differ between serial and parallel runners", key)
		}
		var enq, iss int64
		if err := obs.DecodeTrace(bytes.NewReader(a.Bytes()), func(e obs.Event) error {
			switch e.Kind {
			case obs.KindEnqueue:
				enq++
			case obs.KindIssue:
				iss++
			case obs.KindInval:
				invals++
			}
			return nil
		}); err != nil {
			t.Fatalf("run %s trace does not decode: %v", key, err)
		}
		if enq == 0 || enq != iss {
			t.Fatalf("run %s: %d enqueues / %d issues; every queued access must emit both", key, enq, iss)
		}
		if strings.HasPrefix(key, "mcf/") && strings.HasSuffix(key, org.Key) {
			mcfTrace = a.Bytes()
		}
	}
	if invals == 0 {
		t.Fatal("no shared run produced inval events")
	}
	if mcfTrace == nil {
		t.Fatal("mcf/nurapid CMP trace missing")
	}
	first := ""
	for _, line := range strings.Split(string(mcfTrace), "\n") {
		if strings.Contains(line, `"k":"enqueue"`) {
			first = line
			break
		}
	}
	const wantFirst = `{"k":"enqueue","t":0,"addr":4199552,"bank":1}`
	if first != wantFirst {
		t.Fatalf("first enqueue line\n got %s\nwant %s", first, wantFirst)
	}
}

// TestTraceMatchesCounters cross-checks the probe event stream against
// the cache's own counters: aggregating the trace with a Collector must
// reproduce the NuRAPID demotion/promotion/eviction/miss counts. A
// deliberately tiny cache forces demotion chains and evictions within
// the short test runs.
func TestTraceMatchesCounters(t *testing.T) {
	cfg := nurapid.DefaultConfig()
	cfg.CapacityBytes = 4 << 20 // 1 MB per d-group: fills within the run
	mcf, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	var mu sync.Mutex
	colls := make(map[string]*obs.Collector)
	r := NewRunner(WithInstructions(600_000), WithSeed(1), WithApps(mcf),
		WithProbe(func(app, org string) obs.Probe {
			mu.Lock()
			defer mu.Unlock()
			c := obs.NewCollector()
			colls[app] = c
			return c
		}))
	sawDemotions := false
	for _, app := range r.Apps {
		res := r.Run(app, NuRAPID(cfg))
		c := colls[app.Name]
		if c == nil {
			t.Fatalf("no collector for %s", app.Name)
		}
		got := c.Counters()
		for _, name := range []string{"accesses", "misses", "evictions", "promotions", "demotions"} {
			if g, w := got.Get(name), res.L2Ctrs.Get(name); g != w {
				t.Errorf("%s: collector %s = %d, cache counter = %d", app.Name, name, g, w)
			}
		}
		if got.Get("demotions") > 0 {
			sawDemotions = true
		}
		if g, w := got.Get("hits"), res.L2Ctrs.Get("accesses")-res.L2Ctrs.Get("misses"); g != w {
			t.Errorf("%s: collector hits = %d, want accesses-misses = %d", app.Name, g, w)
		}
		if got.Get("placements") == 0 {
			t.Errorf("%s: no placements observed", app.Name)
		}
		// The harvested snapshot must surface the same counters under
		// the obs_ prefix.
		snap := res.Snapshot()
		found := false
		for _, kv := range snap {
			if kv.Name == "obs_accesses" && int64(kv.Value) == got.Get("accesses") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: obs_accesses missing from result snapshot", app.Name)
		}
	}
	if !sawDemotions {
		t.Error("no demotion chains exercised; shrink the cache or lengthen the run")
	}
}

// TestTraceProbeDisabledResultsIdentical checks the overhead contract's
// correctness half: probing must not change simulation results.
func TestTraceProbeDisabledResultsIdentical(t *testing.T) {
	bare := smallRunner(t)
	probed := smallRunner(t, WithProbe(func(app, org string) obs.Probe {
		return obs.Multi(obs.NewCollector(), obs.NewSampler("occupancy", 0))
	}))
	nilProbed := smallRunner(t, WithProbe(func(app, org string) obs.Probe { return nil }))
	for _, r := range []*Runner{bare, probed, nilProbed} {
		for _, app := range r.Apps {
			r.Run(app, NuRAPID(nurapid.DefaultConfig()))
		}
	}
	for _, app := range bare.Apps {
		org := NuRAPID(nurapid.DefaultConfig())
		a := bare.Run(app, org)
		b := probed.Run(app, org)
		c := nilProbed.Run(app, org)
		if a.CPU.Cycles != b.CPU.Cycles || a.CPU.Cycles != c.CPU.Cycles {
			t.Fatalf("%s: cycles differ with probing: %d / %d / %d",
				app.Name, a.CPU.Cycles, b.CPU.Cycles, c.CPU.Cycles)
		}
		if a.L2EnergyNJ != b.L2EnergyNJ || a.L2EnergyNJ != c.L2EnergyNJ ||
			a.ED != b.ED || a.ED != c.ED {
			t.Fatalf("%s: energy differs with probing", app.Name)
		}
		if len(a.ObsMetrics) != 0 || len(c.ObsMetrics) != 0 {
			t.Fatal("unprobed runs must carry no obs metrics")
		}
		if len(b.ObsMetrics) == 0 {
			t.Fatal("probed run lost its obs metrics")
		}
	}
}

// TestTraceWithTraceWritesFiles checks the WithTrace plumbing end to
// end: one decodable JSONL file per executed run, and a latched
// ProbeErr when the directory cannot be written.
func TestTraceWithTraceWritesFiles(t *testing.T) {
	dir := t.TempDir()
	r := smallRunner(t, WithTrace(dir))
	app := r.Apps[0]
	org := NuRAPID(nurapid.DefaultConfig())
	res := r.Run(app, org)
	if err := r.ProbeErr(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, app.Name+"__"+org.Key+".jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	coll := obs.NewCollector()
	if err := obs.DecodeTrace(f, func(e obs.Event) error { coll.Emit(e); return nil }); err != nil {
		t.Fatal(err)
	}
	if g, w := coll.Counters().Get("accesses"), res.L2Ctrs.Get("accesses"); g != w {
		t.Fatalf("trace accesses = %d, cache counter = %d", g, w)
	}
	// The sink's own snapshot must surface through the result.
	found := false
	for _, kv := range res.ObsMetrics {
		if kv.Name == "trace_events" && kv.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("trace_events missing from ObsMetrics")
	}

	bad := smallRunner(t, WithTrace(filepath.Join(dir, "missing", "nested")))
	bad.Run(bad.Apps[0], Base())
	if bad.ProbeErr() == nil {
		t.Fatal("unwritable trace dir must latch ProbeErr")
	}
}

// TestTraceSweepVariantsProbed checks that the wire-delay sweep's
// variant runs go through the same probe plumbing as regular runs.
func TestTraceSweepVariantsProbed(t *testing.T) {
	var mu sync.Mutex
	orgs := map[string]bool{}
	r := smallRunner(t, WithProbe(func(app, org string) obs.Probe {
		mu.Lock()
		defer mu.Unlock()
		orgs[org] = true
		return obs.NewCollector()
	}))
	res := r.runScaledVariant(r.Apps[0], 1.5, true)
	if len(res.ObsMetrics) == 0 {
		t.Fatal("sweep variant run lost its obs metrics")
	}
	if !orgs["nurapid-wire1.50x"] {
		t.Fatalf("probe factory saw orgs %v, want nurapid-wire1.50x", orgs)
	}
}

// TestTraceRunEventMetricsNames spot-checks the snapshot naming scheme
// delivered to observers: cpu_ and obs_ prefixes for nested metrics.
func TestTraceRunEventMetricsNames(t *testing.T) {
	var metrics []stats.KV
	r := smallRunner(t,
		WithProbe(func(app, org string) obs.Probe { return obs.NewCollector() }),
		WithObserver(ObserverFunc(func(e RunEvent) {
			if e.Kind == RunFinish && metrics == nil {
				metrics = e.Metrics
			}
		})))
	r.Run(r.Apps[0], Base())
	want := map[string]bool{"energy_delay": false, "cpu_instructions": false, "obs_accesses": false}
	for _, kv := range metrics {
		if _, ok := want[kv.Name]; ok {
			want[kv.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s missing from finish event (got %d metrics)", name, len(metrics))
		}
	}
}
