package sim

import (
	"fmt"

	"nurapid/internal/nurapid"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// PredictorStudy ablates the reuse-distance predictor family against the
// paper's NuRAPID configuration (4 d-groups, next-fastest promotion,
// random distance replacement):
//
//   - predictive bypass: a sampled dead-block predictor suppresses the
//     promotion trigger for blocks it classifies as streaming, keeping
//     single-use data from displacing hot blocks in the fast d-group;
//   - dead-on-arrival fills: predicted-dead misses install directly into
//     the slowest d-group instead of the fastest;
//   - memoized forward pointers: repeat accesses to a set's most recent
//     block skip the centralized tag probe and credit its energy back.
//
// The roster is the paper's 15 applications plus the synthetic streaming
// application (workload.Streaming), which supplies the access pattern the
// predictor is built for. Each row reports average relative performance
// (vs. the base L2/L3), average fastest-d-group access fraction, L2
// dynamic energy, and the predictor's own activity counters.
func (r *Runner) PredictorStudy() *Experiment {
	type variant struct {
		label string
		org   Organization
	}
	mk := func(label string, mutate func(*nurapid.Config)) variant {
		cfg := nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)
		if mutate != nil {
			mutate(&cfg)
		}
		return variant{label: label, org: NuRAPID(cfg)}
	}
	variants := []variant{
		mk("nurapid baseline (paper)", nil),
		mk("predictive bypass", func(c *nurapid.Config) {
			c.Promotion = nurapid.PredictiveBypass
		}),
		mk("dead-on-arrival fills", func(c *nurapid.Config) {
			c.Distance = nurapid.DeadOnArrival
		}),
		mk("bypass + dead-on-arrival", func(c *nurapid.Config) {
			c.Promotion = nurapid.PredictiveBypass
			c.Distance = nurapid.DeadOnArrival
		}),
		mk("memoized pointers", func(c *nurapid.Config) {
			c.Memoize = true
		}),
		mk("all predictor features", func(c *nurapid.Config) {
			c.Promotion = nurapid.PredictiveBypass
			c.Distance = nurapid.DeadOnArrival
			c.Memoize = true
		}),
	}
	apps := append(append([]workload.App(nil), r.Apps...), workload.Streaming())
	prefetch := []Organization{Base()}
	for _, v := range variants {
		prefetch = append(prefetch, v.org)
	}
	r.Prefetch(apps, prefetch)

	t := stats.NewTable("Predictor family: placement/promotion ablations (averages over all applications + stream)",
		"variant", "rel perf", "g1 accesses", "L2 energy (nJ/1k instr)", "bypasses", "dead fills", "memo hits")
	metrics := map[string]float64{}
	for _, v := range variants {
		var rel, g1, enj []float64
		var bypasses, deadFills, memoHits int64
		for _, app := range apps {
			rel = append(rel, r.RelPerf(app, v.org))
			res := r.Run(app, v.org)
			g1 = append(g1, res.L2Dist.HitFrac(0))
			enj = append(enj, res.L2EnergyNJ*1000/float64(res.CPU.Instructions))
			bypasses += res.L2Ctrs.Get("bypasses")
			deadFills += res.L2Ctrs.Get("dead_fills")
			memoHits += res.L2Ctrs.Get("memo_hits")
		}
		t.AddRow(v.label, mean(rel), stats.Percent(mean(g1)), mean(enj),
			fmt.Sprintf("%d", bypasses), fmt.Sprintf("%d", deadFills), fmt.Sprintf("%d", memoHits))
		slug := slugify(v.label)
		metrics["rel_"+slug] = mean(rel)
		metrics["g1_"+slug] = mean(g1)
		metrics["energy_"+slug] = mean(enj)
	}
	return &Experiment{ID: "predictor", Caption: "Reuse-distance predictor ablations", Table: t, Metrics: metrics}
}
