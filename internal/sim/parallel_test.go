package sim

import (
	"strings"
	"sync"
	"testing"
)

// renderEverything regenerates every experiment — the full paper set
// plus the three sweeps — on a runner with the given worker count and
// returns the rendered bytes (text and CSV), exactly as cmd/experiments
// would print them.
func renderEverything(t *testing.T, workers int) string {
	t.Helper()
	r := smallRunner(t, WithInstructions(60_000), WithWorkers(workers))
	exps := r.All()
	exps = append(exps, r.CapacitySweep(), r.BlockSweep(), r.TechSweep())
	var b strings.Builder
	for _, e := range exps {
		if err := e.Render(&b, false); err != nil {
			t.Fatal(err)
		}
		if err := e.Render(&b, true); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestParallelAllMatchesSerial is the parallel runner's determinism
// contract: rendering every experiment on an 8-worker pool must produce
// the same bytes as the serial runner at the same seed. Run under
// -race (make race-runner / CI) this also shakes out data races in the
// fan-out and singleflight layers.
func TestParallelAllMatchesSerial(t *testing.T) {
	serial := renderEverything(t, 1)
	parallel := renderEverything(t, 8)
	if serial != parallel {
		t.Fatalf("parallel rendering diverged from serial:\nserial %d bytes, parallel %d bytes\nfirst diff near %q",
			len(serial), len(parallel), firstDiff(serial, parallel))
	}
	if len(serial) == 0 {
		t.Fatal("rendered output is empty")
	}
}

// TestSingleflightConcurrentRun proves the memo is singleflight:
// concurrent Run calls for the same (app, org) must execute the
// simulation exactly once and share the one result.
func TestSingleflightConcurrentRun(t *testing.T) {
	starts := 0
	obs := ObserverFunc(func(e RunEvent) {
		if e.Kind == RunStart {
			starts++
		}
	})
	r := smallRunner(t, WithInstructions(60_000), WithObserver(obs))
	app := r.Apps[0]

	const callers = 16
	results := make([]*RunResult, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(app, Base())
		}(i)
	}
	wg.Wait()

	if starts != 1 {
		t.Fatalf("simulation executed %d times for one key, want exactly 1", starts)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("caller %d got nil result", i)
		}
		if res != results[0] {
			t.Fatalf("caller %d got a different result object", i)
		}
	}
}

// TestPrefetchWarmsMemo checks that Prefetch executes the submitted
// matrix on the pool, so subsequent Run calls are pure memo lookups
// (no further events).
func TestPrefetchWarmsMemo(t *testing.T) {
	finishes := 0
	obs := ObserverFunc(func(e RunEvent) {
		if e.Kind == RunFinish {
			finishes++
		}
	})
	r := smallRunner(t, WithInstructions(60_000), WithWorkers(4), WithObserver(obs))
	orgs := []Organization{Base(), Ideal()}
	r.Prefetch(r.Apps, orgs)
	want := len(r.Apps) * len(orgs)
	if finishes != want {
		t.Fatalf("prefetch executed %d runs, want %d", finishes, want)
	}
	for _, app := range r.Apps {
		for _, org := range orgs {
			r.Run(app, org)
		}
	}
	if finishes != want {
		t.Fatalf("memoized Run re-executed: %d events, want %d", finishes, want)
	}
}

// TestSerialPrefetchIsLazy pins the serial runner's behaviour: with
// Workers <= 1, Prefetch defers to on-demand execution so progress
// events keep today's table-assembly order.
func TestSerialPrefetchIsLazy(t *testing.T) {
	events := 0
	r := smallRunner(t, WithInstructions(60_000),
		WithObserver(ObserverFunc(func(RunEvent) { events++ })))
	r.Prefetch(r.Apps, []Organization{Base()})
	if events != 0 {
		t.Fatalf("serial Prefetch executed %d events, want 0 (lazy)", events)
	}
	r.Run(r.Apps[0], Base())
	if events != 2 {
		t.Fatalf("on-demand run emitted %d events, want start+finish", events)
	}
}
