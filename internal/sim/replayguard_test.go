package sim

import (
	"fmt"
	"os"
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/workload"
)

// replayGoldens are the expected Fingerprint values of a fixed-seed
// batched replay: 40k memory requests of the mcf model at seed 1,
// replayed through one organization per family. The fingerprint folds
// every counter, the final clock, the energy total, and the memory
// traffic, so ANY behavioral change to an access path — intended or
// not — shows up here. When a change is intentional, regenerate with:
//
//	REPLAY_PRINT_GOLDENS=1 go test ./internal/sim -run TestReplayDeterminismGuard -v
//
// CI runs this test under -race: the guard doubles as a check that the
// batched fast paths share no hidden mutable state.
var replayGoldens = map[string]uint64{
	"base":                           0x1af7371c01312b2c,
	"ideal":                          0xd0ef9cef0f699de1,
	"dnuca-ss-performance":           0xaa13605614ddfcef,
	"dnuca-ss-energy":                0x07b9617385a0e3fb,
	"nurapid-4g-next-fastest-random": 0xdd1f6aaf81dc1028,
	"nurapid-4g-demotion-only-lru":   0x5b283e9d42df5c3c,
}

func replayGuardOrgs() []Organization {
	ssEnergy := nuca.DefaultConfig()
	ssEnergy.Policy = nuca.SSEnergy
	nrLRU := nurapid.DefaultConfig()
	nrLRU.Promotion = nurapid.DemotionOnly
	nrLRU.Distance = nurapid.LRUDistance
	return []Organization{
		Base(),
		Ideal(),
		DNUCA(nuca.DefaultConfig()),
		DNUCA(ssEnergy),
		NuRAPID(nurapid.DefaultConfig()),
		NuRAPID(nrLRU),
	}
}

// TestReplayDeterminismGuard replays a fixed trace through the batched
// AccessMany path of every organization family and compares the hash of
// counters + snapshot against a committed golden value.
func TestReplayDeterminismGuard(t *testing.T) {
	app, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload model missing")
	}
	reqs := ExtractTrace(app, 1, 40000)
	if len(reqs) != 40000 {
		t.Fatalf("trace extraction produced %d requests, want 40000", len(reqs))
	}
	model := cacti.Default()
	printGoldens := os.Getenv("REPLAY_PRINT_GOLDENS") != ""
	for _, org := range replayGuardOrgs() {
		org := org
		t.Run(org.Key, func(t *testing.T) {
			got := Replay(model, org, reqs).Fingerprint()
			if printGoldens {
				fmt.Printf("\t%q: %#016x,\n", org.Key, got)
				return
			}
			want, ok := replayGoldens[org.Key]
			if !ok {
				t.Fatalf("no golden fingerprint for %s (set REPLAY_PRINT_GOLDENS=1 to generate)", org.Key)
			}
			if got != want {
				t.Fatalf("fingerprint %#016x, want %#016x — the access path's observable "+
					"behavior changed; if intentional, regenerate goldens with REPLAY_PRINT_GOLDENS=1",
					got, want)
			}
		})
	}
}
