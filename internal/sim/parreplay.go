// Parallel trace-gen + replay pipeline. The measurement campaigns'
// replay work factors into two kinds of independence the serial path
// never exploited: trace generation is embarrassingly parallel across
// (app, seed) streams (each stream is independently seeded, so shards
// need no coordination), and replay is embarrassingly parallel across
// (app, org) jobs (each job builds a private L2 and memory). Within one
// job, cache state cannot be split, so the request stream is replayed
// in chunks that carry the completion clock sequentially (replayChunks)
// — chunk boundaries respect the port-serialization contract, and the
// per-job results merge deterministically by job index, reproducing the
// serial ReplayResult and Fingerprint bytes exactly whatever the worker
// count or completion order.
package sim

import (
	"fmt"
	"sync"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/workload"
)

// DefaultChunkRequests is the replay chunk size: large enough that the
// batched AccessMany loop dominates chunking overhead, small enough
// that a chunk's request slice stays cache- and allocator-friendly
// (~2.5 MB at 40 bytes/request).
const DefaultChunkRequests = 1 << 16

// ReplayJob names one replay: app's request stream at Seed, budgeted at
// N requests, driven through a fresh instance of Org.
type ReplayJob struct {
	App  workload.App
	Seed uint64
	N    int
	Org  Organization
}

// ReplayOptions configures ReplayAll's worker pool.
type ReplayOptions struct {
	// Workers bounds the pool; <= 1 replays serially on the calling
	// goroutine, in job order.
	Workers int
	// ChunkRequests is the replay chunk size; <= 0 selects
	// DefaultChunkRequests. The chunk size never changes results, only
	// the granularity of the inner replay loop.
	ChunkRequests int

	// order permutes replay-task submission (a test hook: shuffled
	// completion order must not change the merged results).
	order []int
}

// traceGroup shares one generated trace among every job that replays
// the same (app, seed, n) stream: the producer task extracts the trace
// once and closes ready; consumer tasks block on ready before
// replaying. Producer tasks are always submitted ahead of consumer
// tasks, so a pool worker blocked in a consumer always has its
// producer already running (or finished) on another worker — the
// pipeline cannot deadlock at any pool size.
type traceGroup struct {
	app   workload.App
	seed  uint64
	n     int
	ready chan struct{}
	trace Trace
}

// ReplayAll runs every job on a bounded worker pool and returns the
// results indexed like jobs (the deterministic merge). Trace generation
// is sharded per (app, seed, n) stream — jobs replaying the same stream
// share one generation pass — and overlaps with the replay of streams
// already generated. The results are byte-identical to calling
// ReplayTrace serially per job, whatever Workers is; a tested,
// race-checked guarantee.
//
//nurapid:coldpath
func ReplayAll(model *cacti.Model, jobs []ReplayJob, opts ReplayOptions) []*ReplayResult {
	if len(jobs) == 0 {
		return nil
	}
	chunk := opts.ChunkRequests
	if chunk <= 0 {
		chunk = DefaultChunkRequests
	}

	// Group jobs by stream so each trace is generated exactly once.
	groups := make(map[string]*traceGroup)
	var ordered []*traceGroup
	jobGroup := make([]*traceGroup, len(jobs))
	for i, j := range jobs {
		key := fmt.Sprintf("%s\x00%d\x00%d", j.App.Name, j.Seed, j.N)
		g, ok := groups[key]
		if !ok {
			g = &traceGroup{app: j.App, seed: j.Seed, n: j.N, ready: make(chan struct{})}
			groups[key] = g
			ordered = append(ordered, g)
		}
		jobGroup[i] = g
	}

	results := make([]*ReplayResult, len(jobs))
	tasks := make([]func(), 0, len(ordered)+len(jobs))
	for _, g := range ordered {
		g := g
		tasks = append(tasks, func() {
			g.trace = extractChunked(g.app, g.seed, g.n, chunk)
			close(g.ready)
		})
	}
	jobOrder := opts.order
	if jobOrder == nil {
		jobOrder = make([]int, len(jobs))
		for i := range jobOrder {
			jobOrder[i] = i
		}
	} else if len(jobOrder) != len(jobs) {
		panic(fmt.Sprintf("sim: replay order permutation has %d entries for %d jobs",
			len(jobOrder), len(jobs)))
	}
	for _, i := range jobOrder {
		i := i
		job := jobs[i]
		g := jobGroup[i]
		tasks = append(tasks, func() {
			<-g.ready
			results[i] = replayJob(model, job, g.trace, chunk)
		})
	}
	runPool(opts.Workers, tasks)
	return results
}

// extractChunked generates one stream's trace through the chunked
// TraceStream path and assembles the full Trace for its consumers. The
// chunk concatenation is byte-identical to a one-shot extraction, so
// the chunk size never leaks into results.
func extractChunked(app workload.App, seed uint64, n int, chunk int) Trace {
	s := NewTraceStream(app, seed, n)
	reqs := make([]memsys.Request, 0, n)
	for {
		c := s.Next(chunk)
		if c == nil {
			break
		}
		reqs = append(reqs, c...)
	}
	return Trace{Reqs: reqs, TailGap: s.TailGap(), Instructions: s.Instructions()}
}

// replayJob replays one job's share of the pipeline: a fresh L2 and
// memory, the chunked inner loop, the trace's tail gap, and the result
// harvest — identical code to the serial ReplayTrace path.
func replayJob(model *cacti.Model, job ReplayJob, t Trace, chunk int) *ReplayResult {
	mem := memsys.NewMemory(job.Org.blockBytes())
	l2 := job.Org.Factory(model, mem)
	end := replayChunks(l2, t.Reqs, chunk) + t.TailGap
	return buildReplayResult(job.Org.Key, l2, mem, int64(len(t.Reqs)), end)
}

// runPool executes tasks on min(w, len(tasks)) goroutines, handing them
// out in submission order; with w <= 1 it runs them inline, in order,
// on the calling goroutine. A task that panics no longer kills the
// process from an anonymous worker goroutine: the panic is recovered,
// the one with the lowest submission index is latched (so which panic
// wins is deterministic under any completion order), the remaining
// tasks still run — releasing every singleflight waiter — and the
// latched panic is re-raised on the caller's goroutine after the pool
// drains.
func runPool(w int, tasks []func()) {
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	type indexedTask struct {
		i  int
		fn func()
	}
	ch := make(chan indexedTask)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicIdx = -1
		panicVal any
	)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for t := range ch {
				func() {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							if panicIdx == -1 || t.i < panicIdx {
								panicIdx, panicVal = t.i, p
							}
							mu.Unlock()
						}
					}()
					t.fn()
				}()
			}
		}()
	}
	for i, t := range tasks {
		ch <- indexedTask{i: i, fn: t}
	}
	close(ch)
	wg.Wait()
	if panicIdx != -1 {
		panic(fmt.Sprintf("sim: pooled task %d panicked: %v", panicIdx, panicVal))
	}
}
