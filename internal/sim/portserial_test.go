package sim

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nurapid"
)

// portSerialConfig is the deterministic worst-case geometry from the
// nurapid package's demotion-chain test: DemotionOnly + LRU distance
// draws no random numbers, and RestrictFrames carves partitions small
// enough that one conflict miss ripples through every d-group.
func portSerialConfig() nurapid.Config {
	return nurapid.Config{
		CapacityBytes:  4 << 20,
		BlockBytes:     8192,
		Assoc:          8,
		NumDGroups:     4,
		Promotion:      nurapid.DemotionOnly,
		Distance:       nurapid.LRUDistance,
		Placement:      nurapid.DistanceAssociative,
		RestrictFrames: 16,
		Seed:           1,
		Audit:          true,
	}
}

// fillPartitionZero loads 64 distinct blocks into partition 0 (8 sets x
// 8 ways), exactly filling its 4 d-groups x 16 frames without a single
// eviction, and returns the completion time of the last fill plus the
// address helper.
func fillPartitionZero(t *testing.T, c *nurapid.Cache) (int64, func(set, tag int) uint64) {
	t.Helper()
	cfg := c.Config()
	sets := int(cfg.CapacityBytes) / cfg.BlockBytes / cfg.Assoc
	addrOf := func(set, tag int) uint64 {
		return uint64(tag*sets+set) * uint64(cfg.BlockBytes)
	}
	nParts := 8 // framesPerGroup 128 / RestrictFrames 16
	now := int64(0)
	for i := 0; i < 64; i++ {
		r := c.Access(memsys.Req{Now: now, Addr: addrOf((i%8)*nParts, i/8)})
		now = r.DoneAt + 1
	}
	if got := c.Counters().Get("evictions"); got != 0 {
		t.Fatalf("setup overflowed a set: %d evictions", got)
	}
	return now, addrOf
}

// TestAccessSerializesBehindDemotionRipple pins the paper's Sec. 2.4
// one-ported/non-banked rule on the fast path: block movement charged
// by a demotion ripple extends the single port, so an access issued
// immediately after the rippling miss starts only when the movement
// drains — its DoneAt carries the full swap backlog.
func TestAccessSerializesBehindDemotionRipple(t *testing.T) {
	cfg := portSerialConfig()
	model := cacti.Default()

	// Two identical caches, identically filled. `quiet` serves the probe
	// hit with an idle port; `rippled` serves the same hit one cycle
	// after a miss whose fill demoted a block through every faster
	// d-group (NumDGroups-1 links).
	quiet := nurapid.MustNew(cfg, model, memsys.NewMemory(cfg.BlockBytes))
	rippled := nurapid.MustNew(cfg, model, memsys.NewMemory(cfg.BlockBytes))
	endQ, addrOf := fillPartitionZero(t, quiet)
	endR, _ := fillPartitionZero(t, rippled)
	if endQ != endR {
		t.Fatalf("identical fills completed at %d vs %d", endQ, endR)
	}
	// Let the port drain completely before the probe window.
	T := endQ + 1000

	// hitAddr is the most recently filled block: resident in d-group 0
	// and most-recent in the distance-LRU order, so the ripple below
	// cannot demote it. DemotionOnly means the hit itself moves nothing.
	hitAddr := addrOf(56, 7)
	missAddr := addrOf(0, 8) // 9th tag of set 0: conflict miss

	demBefore := rippled.Counters().Get("demotions")
	rippled.Access(memsys.Req{Now: T, Addr: missAddr, Write: false})
	wantLinks := int64(cfg.NumDGroups - 1)
	if got := rippled.Counters().Get("demotions") - demBefore; got != wantLinks {
		t.Fatalf("probe miss rippled %d links, want %d", got, wantLinks)
	}

	hq := quiet.Access(memsys.Req{Now: T + 1, Addr: hitAddr, Write: false})
	hr := rippled.Access(memsys.Req{Now: T + 1, Addr: hitAddr, Write: false})
	if !hq.Hit || !hr.Hit || hq.Group != 0 || hr.Group != 0 {
		t.Fatalf("probe hits not served from d-group 0: quiet %+v rippled %+v", hq, hr)
	}

	// Quiet port: the hit starts at T+1. Rippled port: the miss started
	// at T, held the port for the 4-cycle issue interval, and each of
	// the 3 demotion links extended it by 2*movementOccupancy = 4
	// cycles; the hit therefore starts at T+16, i.e. 15 cycles later
	// than the quiet one, and finishes exactly that much later.
	const accessIssueInterval, movementOccupancy = 4, 2
	wantDelay := accessIssueInterval + wantLinks*2*movementOccupancy - 1
	if got := hr.DoneAt - hq.DoneAt; got != wantDelay {
		t.Fatalf("post-ripple hit delayed %d cycles, want %d (movement must serialize the port)",
			got, wantDelay)
	}
}

// TestBatchedPathMatchesPerAccessReplay guards the batched AccessMany
// loop against ordering drift: a conflict-heavy stream (hits, misses,
// evictions, demotion ripples) replayed through the specialized batched
// path must produce element-identical results — Hit, Group, and the
// port-serialized DoneAt — to the generic per-access replay.
func TestBatchedPathMatchesPerAccessReplay(t *testing.T) {
	for _, prom := range []nurapid.Promotion{nurapid.DemotionOnly, nurapid.NextFastest, nurapid.Fastest} {
		cfg := portSerialConfig()
		cfg.Promotion = prom
		cfg.Audit = false // audited caches route AccessMany through the generic loop already
		model := cacti.Default()

		rng := mathx.NewRNG(99)
		reqs := make([]memsys.Request, 20000)
		for i := range reqs {
			set, tag := rng.Intn(16), rng.Intn(12)
			reqs[i] = memsys.Request{
				Addr:  uint64(tag*64+set) * uint64(cfg.BlockBytes),
				Write: rng.Bool(0.3),
				Gap:   int64(rng.Intn(4)),
			}
		}

		generic := nurapid.MustNew(cfg, model, memsys.NewMemory(cfg.BlockBytes))
		batched := nurapid.MustNew(cfg, model, memsys.NewMemory(cfg.BlockBytes))
		outG := make([]memsys.AccessResult, len(reqs))
		outB := make([]memsys.AccessResult, len(reqs))
		endG := memsys.GenericAccessMany(generic, 0, reqs, outG)
		endB := batched.AccessMany(0, reqs, outB)
		if endG != endB {
			t.Fatalf("%s: batched end clock %d, generic %d", prom, endB, endG)
		}
		for i := range outG {
			if outG[i] != outB[i] {
				t.Fatalf("%s: request %d diverged: generic %+v batched %+v",
					prom, i, outG[i], outB[i])
			}
		}
	}
}
