package sim

import (
	"fmt"
	"sync"
	"time"

	"nurapid/internal/cmp"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
	"nurapid/internal/vis"
	"nurapid/internal/workload"
)

// WithCores sets how many cores the CMP experiments simulate over one
// shared lower level. The single-core experiments (the paper's tables
// and figures) ignore it.
func WithCores(n int) Option {
	return func(r *Runner) { r.Cores = n }
}

// WithSharing selects the CMP workload sharing pattern (cmp.Shared or
// cmp.Private).
func WithSharing(s cmp.Sharing) Option {
	return func(r *Runner) { r.Sharing = s }
}

// CMPRunResult captures one multi-core run: the cmp system's own
// result plus the energy the shared organization and memory consumed.
type CMPRunResult struct {
	App   string
	Org   string
	Cores int

	Res cmp.Result

	L2EnergyNJ  float64
	MemEnergyNJ float64

	// QueueMetrics is the shared bank-queue's contention snapshot.
	QueueMetrics []stats.KV

	// ObsMetrics holds the snapshots harvested from the run's probes
	// (time-series registry, collectors, trace sinks); empty when the
	// run was unprobed. Snapshot re-emits them under the obs_ prefix,
	// mirroring the single-core RunResult.
	ObsMetrics []stats.KV
}

// Snapshot emits the run's metrics (statsreg convention: every counter
// field must appear here).
func (r *CMPRunResult) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: "cores", Value: float64(r.Cores)},
		{Name: "l2_energy_nj", Value: r.L2EnergyNJ},
		{Name: "mem_energy_nj", Value: r.MemEnergyNJ},
	}
	out = append(out, r.Res.Snapshot()...)
	out = append(out, r.QueueMetrics...)
	for _, kv := range r.ObsMetrics {
		out = append(out, stats.KV{Name: "obs_" + kv.Name, Value: kv.Value})
	}
	return out
}

// cmpCell is the singleflight slot for one memoized CMP run. panicked
// latches a panic escaping the one execution so concurrent waiters are
// released with the real failure, not a nil result (see memoCell).
type cmpCell struct {
	once     sync.Once
	res      *CMPRunResult
	panicked any
}

// cmpLabel names a CMP run in observer events and memo keys, e.g.
// "cmp4-shared-nurapid-4g-next-random".
func (r *Runner) cmpLabel(org Organization) string {
	return fmt.Sprintf("cmp%d-%s-%s", r.cmpCores(), r.Sharing, org.Key)
}

// cmpCores returns the configured core count, defaulting to 2 so a
// plain NewRunner() can run the CMP experiment meaningfully.
func (r *Runner) cmpCores() int {
	if r.Cores >= 1 {
		return r.Cores
	}
	return 2
}

// cmpSlot returns the singleflight slot for key, creating it if needed.
func (r *Runner) cmpSlot(key string) *cmpCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cmpMemo == nil {
		r.cmpMemo = make(map[string]*cmpCell)
	}
	c, ok := r.cmpMemo[key]
	if !ok {
		c = &cmpCell{}
		r.cmpMemo[key] = c
	}
	return c
}

// RunCMP simulates app on Cores copies of the out-of-order core over
// one shared org, memoized on (app, cores, sharing, org key). Each core
// retires Instructions instructions, so the aggregate work scales with
// the core count. Probes and traces attach to the shared organization
// exactly as in single-core runs, under the cmp label.
func (r *Runner) RunCMP(app workload.App, org Organization) *CMPRunResult {
	label := r.cmpLabel(org)
	key := app.Name + "/" + label
	c := r.cmpSlot(key)
	c.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				c.panicked = p
			}
		}()
		r.emit(RunEvent{Kind: RunStart, App: app.Name, Org: label})
		var start time.Duration
		if r.clock != nil {
			start = r.clock()
		}
		c.res = r.runCMP(app, org, label)
		var elapsed time.Duration
		if r.clock != nil {
			elapsed = r.clock() - start
		}
		r.emit(RunEvent{Kind: RunFinish, App: app.Name, Org: label,
			IPC: c.res.Res.AggregateIPC, Elapsed: elapsed, Metrics: c.res.Snapshot()})
	})
	if c.panicked != nil {
		panic(fmt.Sprintf("sim: cmp run %s panicked: %v", key, c.panicked))
	}
	return c.res
}

// runCMP executes one (non-memoized) CMP simulation.
func (r *Runner) runCMP(app workload.App, org Organization, label string) *CMPRunResult {
	mem := memsys.NewMemory(org.blockBytes())
	l2 := org.Factory(r.Model, mem)
	sys, err := cmp.New(l2, cmp.Config{
		Cores:      r.cmpCores(),
		Sharing:    r.Sharing,
		L1EnergyNJ: r.Model.L1NJ,
		Queue: cmp.QueueConfig{
			Banks:      8,
			BlockBytes: org.blockBytes(),
			Occupancy:  4,
			Cores:      r.cmpCores(),
		},
	})
	if err != nil {
		// All inputs are runner-controlled; an error is a bug.
		panic(fmt.Sprintf("sim: cmp system construction failed: %v", err))
	}
	probes := r.instrumentCMP(app.Name, label, sys)
	srcs, err := sys.Sources(app, r.Seed)
	if err != nil {
		panic(fmt.Sprintf("sim: cmp sources failed: %v", err))
	}
	res := sys.Run(srcs, r.Instructions)

	out := &CMPRunResult{
		App:          app.Name,
		Org:          org.Key,
		Cores:        r.cmpCores(),
		Res:          res,
		L2EnergyNJ:   l2.EnergyNJ(),
		MemEnergyNJ:  mem.EnergyNJ(),
		QueueMetrics: sys.Queue().Snapshot(),
	}
	for _, p := range probes {
		if s, ok := p.(interface{ Snapshot() []stats.KV }); ok {
			out.ObsMetrics = append(out.ObsMetrics, s.Snapshot()...)
		}
	}
	r.closeProbes(probes)
	return out
}

// instrumentCMP attaches the run's probe chain to the whole shared
// side (coherence shoot-downs, bank queue, and wrapped organization)
// and appends the windowed time-series registry so probed CMP runs
// harvest the latency waterfall, per-bank contention, and rolling
// fairness into ObsMetrics. Unprobed runs keep the nil-probe fast
// path untouched.
func (r *Runner) instrumentCMP(app, label string, sys *cmp.System) []obs.Probe {
	ps := r.buildProbes(app, label)
	if len(ps) == 0 {
		return nil
	}
	ts := obs.NewTimeSeries("ts", 0)
	ts.SetProfile(sys.Queue().LatencyProfile())
	ps = append(ps, ts)
	sys.SetProbe(obs.Multi(ps...))
	return ps
}

// PrefetchCMP submits every (app, org) CMP pair to the worker pool and
// blocks until all are simulated; a no-op for serial runners.
func (r *Runner) PrefetchCMP(apps []workload.App, orgs []Organization) {
	tasks := make([]func(), 0, len(apps)*len(orgs))
	for _, app := range apps {
		for _, org := range orgs {
			app, org := app, org
			tasks = append(tasks, func() { r.RunCMP(app, org) })
		}
	}
	r.fanOut(tasks)
}

// CMP compares the three shared-L2 organizations under multi-core load:
// aggregate throughput, Jain's fairness over per-core IPC, queue
// contention stalls per kilo-access, and coherence shoot-downs. This is
// the repository's extension beyond the paper (the paper is
// single-core); the sharing pattern and core count come from
// WithCores/WithSharing.
func (r *Runner) CMP() *Experiment {
	orgs := []Organization{Base(), DNUCA(nuca.DefaultConfig()), NuRAPID(nurapid.DefaultConfig())}
	r.PrefetchCMP(r.Apps, orgs)
	cores := r.cmpCores()
	t := stats.NewTable(
		fmt.Sprintf("CMP: %d cores, %s workloads, shared L2", cores, r.Sharing),
		"benchmark", "org", "agg IPC", "fairness", "stall/ka", "invals")
	chart := vis.NewBarChart(fmt.Sprintf("Aggregate IPC at %d cores (mean over apps)", cores), "IPC")
	metrics := map[string]float64{}
	sumIPC := map[string]float64{}
	for _, app := range r.Apps {
		for _, org := range orgs {
			res := r.RunCMP(app, org)
			var accesses, stalls int64
			for _, cs := range res.Res.PerCore {
				accesses += cs.Accesses
				stalls += cs.StallCycles
			}
			stallPerKA := 0.0
			if accesses > 0 {
				stallPerKA = float64(stalls) * 1000 / float64(accesses)
			}
			t.AddRow(app.Name, org.Key,
				res.Res.AggregateIPC, res.Res.Fairness, stallPerKA,
				float64(res.Res.Invalidations))
			sumIPC[org.Key] += res.Res.AggregateIPC
			metrics["ipc_"+app.Name+"_"+org.Key] = res.Res.AggregateIPC
			metrics["fairness_"+app.Name+"_"+org.Key] = res.Res.Fairness
		}
	}
	for _, org := range orgs {
		mean := sumIPC[org.Key] / float64(len(r.Apps))
		chart.AddRow(org.Key, mean)
		metrics["mean_ipc_"+org.Key] = mean
	}
	return &Experiment{
		ID:      "cmp",
		Caption: fmt.Sprintf("Shared-L2 organizations at %d cores (%s)", cores, r.Sharing),
		Table:   t,
		Chart:   chart,
		Metrics: metrics,
	}
}
