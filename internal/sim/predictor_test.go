package sim

import (
	"strings"
	"testing"

	"nurapid/internal/nurapid"
)

func TestPredictorStudyExperiment(t *testing.T) {
	r := smallRunner(t)
	e := r.PredictorStudy()
	if e.ID != "predictor" {
		t.Fatalf("id = %q", e.ID)
	}
	if e.Table.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6 variants", e.Table.NumRows())
	}
	for _, k := range []string{
		"rel_nurapid_baseline_paper",
		"rel_predictive_bypass",
		"rel_dead_on_arrival_fills",
		"rel_bypass_dead_on_arrival",
		"rel_memoized_pointers",
		"rel_all_predictor_features",
		"energy_all_predictor_features",
	} {
		if _, ok := e.Metrics[k]; !ok {
			t.Fatalf("metric %q missing; have %v", k, keys(e.Metrics))
		}
	}
	// Memoization skips tag probes and credits their energy back without
	// touching timing: same performance as the baseline, less L2 energy.
	if e.Metrics["rel_memoized_pointers"] != e.Metrics["rel_nurapid_baseline_paper"] {
		t.Fatal("memoization changed performance; it must be energy-only")
	}
	if e.Metrics["energy_memoized_pointers"] >= e.Metrics["energy_nurapid_baseline_paper"] {
		t.Fatal("memoization must reduce L2 energy per instruction")
	}
}

func TestPredictorStudyViaByID(t *testing.T) {
	r := smallRunner(t)
	e, err := r.ByID("predictor")
	if err != nil || e.ID != "predictor" {
		t.Fatalf("ByID(predictor): %v %v", e, err)
	}
}

// TestNuRAPIDKeyMemoSuffix pins the organization key: a memoized
// configuration must not collide with (and silently share the memoized
// result of) its unmemoized twin in the runner's singleflight cache.
func TestNuRAPIDKeyMemoSuffix(t *testing.T) {
	cfg := nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)
	plain := NuRAPID(cfg).Key
	cfg.Memoize = true
	memo := NuRAPID(cfg).Key
	if plain == memo {
		t.Fatalf("memoized key %q collides with the plain key", memo)
	}
	if !strings.HasSuffix(memo, "-memo") {
		t.Fatalf("memoized key = %q, want -memo suffix", memo)
	}
}
