package sim

import (
	"fmt"

	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/stats"
)

// Ablation sweeps the design choices the paper fixes without a full
// sensitivity study, beyond its published figures:
//
//   - promotion trigger: promote on every hit (the paper) vs. screening
//     a block for k hits before moving it;
//   - pointer restriction (Sec. 2.4.3): full 16-bit flexibility vs. the
//     256-frame partitions that shrink pointers to 10 bits;
//   - D-NUCA search policies, including the basic incremental search the
//     smart-search array improves on.
//
// Each row reports average relative performance (vs. the base L2/L3),
// average first-d-group access fraction, and total L2 dynamic energy
// across the roster.
func (r *Runner) Ablation() *Experiment {
	type variant struct {
		label string
		org   Organization
	}
	mkNurapid := func(label string, mutate func(*nurapid.Config)) variant {
		cfg := nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)
		if mutate != nil {
			mutate(&cfg)
		}
		return variant{label: label, org: NuRAPID(cfg)}
	}
	mkDNUCA := func(label string, policy nuca.SearchPolicy) variant {
		cfg := nuca.DefaultConfig()
		cfg.Policy = policy
		return variant{label: label, org: DNUCA(cfg)}
	}
	variants := []variant{
		mkNurapid("nurapid trigger=1 (paper)", nil),
		mkNurapid("nurapid trigger=2", func(c *nurapid.Config) { c.PromoteHits = 2 }),
		mkNurapid("nurapid trigger=4", func(c *nurapid.Config) { c.PromoteHits = 4 }),
		mkNurapid("nurapid 10-bit pointers", func(c *nurapid.Config) { c.RestrictFrames = 256 }),
		mkDNUCA("dnuca ss-performance", nuca.SSPerformance),
		mkDNUCA("dnuca ss-energy", nuca.SSEnergy),
		mkDNUCA("dnuca incremental", nuca.Incremental),
	}
	prefetch := []Organization{Base()}
	for _, v := range variants {
		prefetch = append(prefetch, v.org)
	}
	r.Prefetch(r.Apps, prefetch)

	t := stats.NewTable("Ablations: design-choice sensitivity (averages over all applications)",
		"variant", "rel perf", "g1 accesses", "L2 energy (nJ/1k instr)", "swaps")
	metrics := map[string]float64{}
	for _, v := range variants {
		var rel, g1, enj []float64
		var swaps int64
		for _, app := range r.Apps {
			rel = append(rel, r.RelPerf(app, v.org))
			res := r.Run(app, v.org)
			g1 = append(g1, res.L2Dist.HitFrac(0))
			enj = append(enj, res.L2EnergyNJ*1000/float64(res.CPU.Instructions))
			swaps += res.L2Ctrs.Get("promotions")
		}
		t.AddRow(v.label, mean(rel), stats.Percent(mean(g1)), mean(enj), fmt.Sprintf("%d", swaps))
		slug := slugify(v.label)
		metrics["rel_"+slug] = mean(rel)
		metrics["g1_"+slug] = mean(g1)
		metrics["energy_"+slug] = mean(enj)
	}
	return &Experiment{ID: "ablation", Caption: "Design-choice ablations", Table: t, Metrics: metrics}
}

func slugify(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c == ' ', c == '=', c == '-', c == '(', c == ')':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}
