package sim

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/uca"
)

// eventRecorder captures the raw event stream of one cache instance.
type eventRecorder struct {
	events []obs.Event
}

func (r *eventRecorder) Emit(e obs.Event) { r.events = append(r.events, e) }

// driveConflictHeavy feeds n deterministic accesses confined to a few
// sets of the organization, so hits, misses, evictions, and (where the
// organization has them) promotions and demotion chains all fire.
func driveConflictHeavy(l2 memsys.LowerLevel, numSets, blockBytes, nTags, n int) {
	rng := mathx.NewRNG(42)
	now := int64(0)
	for i := 0; i < n; i++ {
		set := rng.Intn(4)
		tag := rng.Intn(nTags)
		addr := uint64(tag*numSets+set) * uint64(blockBytes)
		res := l2.Access(memsys.Req{Now: now, Addr: addr, Write: rng.Bool(0.3)})
		now = res.DoneAt + int64(rng.Intn(8))
	}
}

// checkCanonicalOrder verifies the obs package's per-access ordering
// contract over a recorded stream: each access window starts with
// KindAccess, contains exactly one outcome (KindHit or KindMiss), every
// outer-level event follows the outcome (so Miss precedes Evict and all
// movement follows the serve), and per d-group an Evict precedes the
// Place that reuses its freed frame. inner marks groups that belong to
// an inner cache level (the Hierarchy's L2), whose Evict/Place wrap
// their own allocation before the outer outcome is known.
func checkCanonicalOrder(t *testing.T, org string, events []obs.Event, inner func(int16) bool) {
	t.Helper()
	if len(events) == 0 {
		t.Fatalf("%s: no events recorded", org)
	}
	var windows [][]obs.Event
	for _, e := range events {
		if e.Kind == obs.KindAccess {
			windows = append(windows, nil)
		}
		if len(windows) == 0 {
			t.Fatalf("%s: stream does not start with an access event (got %v)", org, e.Kind)
		}
		windows[len(windows)-1] = append(windows[len(windows)-1], e)
	}
	sawHit, sawMissEvict := false, false
	for wi, w := range windows {
		outcome := -1
		for i, e := range w {
			switch e.Kind {
			case obs.KindAccess:
				if i != 0 {
					t.Fatalf("%s window %d: access event at position %d", org, wi, i)
				}
			case obs.KindHit, obs.KindMiss:
				if outcome >= 0 {
					t.Fatalf("%s window %d: second outcome event %v at %d (first at %d)",
						org, wi, e.Kind, i, outcome)
				}
				outcome = i
				sawHit = sawHit || e.Kind == obs.KindHit
			case obs.KindEvict, obs.KindPlace, obs.KindPromote, obs.KindDemote, obs.KindSwap, obs.KindBypass:
				if inner(e.Group) && e.Kind != obs.KindSwap {
					continue // inner-level allocation precedes the outer outcome
				}
				if outcome < 0 {
					t.Fatalf("%s window %d: %v (group %d) before the access outcome",
						org, wi, e.Kind, e.Group)
				}
			}
		}
		if outcome < 0 {
			t.Fatalf("%s window %d: no hit/miss outcome in %d events", org, wi, len(w))
		}
		// Per group: Evict frees a frame before Place reuses one.
		lastEvict := map[int16]int{}
		for i, e := range w {
			if e.Kind == obs.KindEvict {
				lastEvict[e.Group] = i
			}
			if e.Kind == obs.KindPlace {
				if j, ok := lastEvict[e.Group]; ok && j > i {
					t.Fatalf("%s window %d: place(group %d) at %d precedes evict at %d",
						org, wi, e.Group, i, j)
				}
			}
			if e.Kind == obs.KindMiss {
				sawMissEvict = true
			}
		}
	}
	if !sawHit {
		t.Fatalf("%s: workload produced no hits; ordering not exercised", org)
	}
	if !sawMissEvict {
		t.Fatalf("%s: workload produced no misses; ordering not exercised", org)
	}
}

// TestEventOrderCanonical pins the Access -> outcome -> Evict -> Place
// event order for every organization, per the obs package ordering
// contract. Before the cross-organization fix, uca.Uniform and
// uca.Hierarchy emitted Evict ahead of Miss while nurapid emitted Miss
// first; any regression in either direction fails here.
func TestEventOrderCanonical(t *testing.T) {
	m := cacti.Default()

	t.Run("nurapid", func(t *testing.T) {
		cfg := nurapid.DefaultConfig()
		cfg.CapacityBytes = 2 << 20
		cfg.NumDGroups = 2
		// Tiny partitions: each set's 8 ways overcommit the 4 frames its
		// partition owns per d-group, so demotion chains actually fire.
		cfg.RestrictFrames = 4
		mem := memsys.NewMemory(cfg.BlockBytes)
		c := nurapid.MustNew(cfg, m, mem)
		rec := &eventRecorder{}
		c.SetProbe(rec)
		driveConflictHeavy(c, 2048, cfg.BlockBytes, 40, 4000)
		if c.Counters().Get("evictions") == 0 || c.Counters().Get("demotions") == 0 {
			t.Fatal("workload too gentle: no evictions or demotions")
		}
		checkCanonicalOrder(t, "nurapid", rec.events, func(int16) bool { return false })
	})

	t.Run("nurapid-predictive", func(t *testing.T) {
		cfg := nurapid.DefaultConfig()
		cfg.CapacityBytes = 2 << 20
		cfg.NumDGroups = 2
		cfg.RestrictFrames = 4
		cfg.Promotion = nurapid.PredictiveBypass
		cfg.Distance = nurapid.DeadOnArrival
		cfg.Memoize = true
		mem := memsys.NewMemory(cfg.BlockBytes)
		c := nurapid.MustNew(cfg, m, mem)
		rec := &eventRecorder{}
		c.SetProbe(rec)
		driveConflictHeavy(c, 2048, cfg.BlockBytes, 40, 4000)
		if c.Counters().Get("bypasses") == 0 || c.Counters().Get("dead_fills") == 0 {
			t.Fatal("workload too gentle: the predictor never bypassed a promotion or redirected a fill")
		}
		checkCanonicalOrder(t, "nurapid-predictive", rec.events, func(int16) bool { return false })
	})

	t.Run("uniform", func(t *testing.T) {
		mem := memsys.NewMemory(uca.BlockBytes)
		u := uca.NewIdeal(m, mem)
		rec := &eventRecorder{}
		u.SetProbe(rec)
		driveConflictHeavy(u, u.Cache().Geometry().NumSets(), uca.BlockBytes, 40, 3000)
		if u.Counters().Get("writebacks") == 0 {
			t.Fatal("workload too gentle: no dirty evictions")
		}
		checkCanonicalOrder(t, "uniform", rec.events, func(int16) bool { return false })
	})

	t.Run("hierarchy", func(t *testing.T) {
		mem := memsys.NewMemory(uca.BlockBytes)
		h := uca.NewHierarchy(m, mem)
		rec := &eventRecorder{}
		h.SetProbe(rec)
		driveConflictHeavy(h, h.L3().Geometry().NumSets(), uca.BlockBytes, 12, 3000)
		if h.Counters().Get("misses") == 0 || h.Counters().Get("l3_hits") == 0 {
			t.Fatal("workload too gentle: want both L3 hits and misses")
		}
		checkCanonicalOrder(t, "hierarchy", rec.events, func(g int16) bool { return g == 0 })
	})

	t.Run("dnuca", func(t *testing.T) {
		mem := memsys.NewMemory(128)
		d := nuca.MustNew(nuca.DefaultConfig(), m, mem)
		rec := &eventRecorder{}
		d.SetProbe(rec)
		driveConflictHeavy(d, 4096, 128, 40, 3000)
		if d.Counters().Get("promotions") == 0 {
			t.Fatal("workload too gentle: no promotions")
		}
		checkCanonicalOrder(t, "dnuca", rec.events, func(int16) bool { return false })
	})
}
