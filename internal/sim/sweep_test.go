package sim

import "testing"

func TestCapacitySweep(t *testing.T) {
	r := smallRunner(t)
	e := r.CapacitySweep()
	if e.ID != "sweep-capacity" {
		t.Fatalf("id = %q", e.ID)
	}
	if e.Table.NumRows() != len(r.Apps)+1 {
		t.Fatalf("rows = %d", e.Table.NumRows())
	}
	for _, k := range []string{"rel_4mb", "rel_8mb", "rel_16mb"} {
		if e.Metrics[k] <= 0 {
			t.Fatalf("metric %s missing", k)
		}
	}
	// A 16-MB NuRAPID cannot miss more than a 4-MB one; with our
	// footprints it should not perform worse on average.
	if e.Metrics["rel_16mb"] < e.Metrics["rel_4mb"]-0.02 {
		t.Fatalf("16 MB (%.3f) materially below 4 MB (%.3f)",
			e.Metrics["rel_16mb"], e.Metrics["rel_4mb"])
	}
}

func TestBlockSweep(t *testing.T) {
	r := smallRunner(t)
	e := r.BlockSweep()
	if e.ID != "sweep-block" {
		t.Fatalf("id = %q", e.ID)
	}
	if e.Table.NumRows() != 3*len(r.Apps)+3 {
		t.Fatalf("rows = %d", e.Table.NumRows())
	}
	for _, k := range []string{"ipc_64", "ipc_128", "ipc_256"} {
		if e.Metrics[k] <= 0 {
			t.Fatalf("metric %s missing", k)
		}
	}
	// Bigger blocks exploit spatial locality: fewer misses per access.
	if e.Metrics["miss_256"] > e.Metrics["miss_64"] {
		t.Fatalf("256-B miss rate (%.3f) above 64-B (%.3f)",
			e.Metrics["miss_256"], e.Metrics["miss_64"])
	}
}

func TestSweepsViaByID(t *testing.T) {
	r := smallRunner(t)
	for _, id := range []string{"sweep-capacity", "sweep-block"} {
		e, err := r.ByID(id)
		if err != nil || e.ID != id {
			t.Fatalf("ByID(%s): %v %v", id, e, err)
		}
	}
}

func TestFigureChartsPresent(t *testing.T) {
	r := smallRunner(t)
	for _, e := range []*Experiment{r.Fig4(), r.Fig5(), r.Fig6(), r.Fig7(), r.Fig8(), r.Fig9(), r.Fig10(), r.Fig11()} {
		if e.Chart == nil {
			t.Errorf("figure %s has no chart", e.ID)
		}
	}
}

func TestTechSweepAdvantageGrowsWithWireDelay(t *testing.T) {
	r := smallRunner(t)
	e := r.TechSweep()
	if e.ID != "sweep-tech" {
		t.Fatalf("id = %q", e.ID)
	}
	v1 := e.Metrics["vs_dnuca_1.0x"]
	v2 := e.Metrics["vs_dnuca_2.0x"]
	if v1 <= 0 || v2 <= 0 {
		t.Fatal("sweep metrics missing")
	}
	// The paper's motivation: as wires dominate, NuRAPID's few large
	// d-groups beat D-NUCA's bank ladder by more.
	if v2 < v1 {
		t.Fatalf("NuRAPID advantage must not shrink with wire delay: %.3f -> %.3f", v1, v2)
	}
}

func TestScaledModelPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	smallRunner(t).Model.Scaled(0)
}
