package sim

import (
	"strings"
	"testing"

	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/workload"
)

// smallRunner trims the roster and run length so experiment smoke tests
// stay fast; behaviour (not magnitudes) is asserted.
func smallRunner(t *testing.T, opts ...Option) *Runner {
	t.Helper()
	apps := []workload.App{}
	for _, name := range []string{"applu", "mcf", "gzip"} {
		a, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}
	base := []Option{WithInstructions(120_000), WithSeed(1), WithApps(apps...)}
	return NewRunner(append(base, opts...)...)
}

func TestRunMemoizes(t *testing.T) {
	r := smallRunner(t)
	app := r.Apps[0]
	a := r.Run(app, Base())
	b := r.Run(app, Base())
	if a != b {
		t.Fatal("identical runs must be memoized")
	}
}

func TestRunDeterminism(t *testing.T) {
	r1 := smallRunner(t)
	r2 := smallRunner(t)
	a := r1.Run(r1.Apps[0], NuRAPID(nurapid.DefaultConfig()))
	b := r2.Run(r2.Apps[0], NuRAPID(nurapid.DefaultConfig()))
	if a.CPU.Cycles != b.CPU.Cycles || a.L2EnergyNJ != b.L2EnergyNJ {
		t.Fatalf("runs not deterministic: %d vs %d cycles", a.CPU.Cycles, b.CPU.Cycles)
	}
}

func TestRelPerfBaseIsOne(t *testing.T) {
	r := smallRunner(t)
	if p := r.RelPerf(r.Apps[0], Base()); p != 1.0 {
		t.Fatalf("RelPerf(base) = %v, want 1", p)
	}
}

func TestRunResultPopulated(t *testing.T) {
	r := smallRunner(t)
	res := r.Run(r.Apps[0], NuRAPID(nurapid.DefaultConfig()))
	if res.CPU.Instructions != 120_000 {
		t.Fatalf("instructions = %d", res.CPU.Instructions)
	}
	if res.L2Dist == nil || res.L2Dist.Total() == 0 {
		t.Fatal("distribution must be populated")
	}
	if res.L2GroupAccesses == nil {
		t.Fatal("NuRAPID runs must expose group accesses")
	}
	if res.Energy.TotalNJ() <= 0 || res.ED <= 0 {
		t.Fatal("energy accounting must be populated")
	}
	if res.L2Ctrs.Get("accesses") != res.CPU.L2Accesses {
		t.Fatal("organization and CPU disagree on L2 accesses")
	}
}

func TestOrganizationKeys(t *testing.T) {
	if Base().Key != "base" || Ideal().Key != "ideal" {
		t.Fatal("builtin keys wrong")
	}
	cfg := nurapid.DefaultConfig()
	if got := NuRAPID(cfg).Key; got != "nurapid-4g-next-fastest-random" {
		t.Fatalf("NuRAPID key = %q", got)
	}
	cfg.Placement = nurapid.SetAssociative
	if !strings.HasSuffix(NuRAPID(cfg).Key, "-sa") {
		t.Fatal("set-associative key must be distinct")
	}
	cfg = nurapid.DefaultConfig()
	cfg.RestrictFrames = 256
	if !strings.HasSuffix(NuRAPID(cfg).Key, "-r256") {
		t.Fatal("restricted key must be distinct")
	}
	if DNUCA(nuca.DefaultConfig()).Key != "dnuca-ss-performance" {
		t.Fatal("DNUCA key wrong")
	}
}

func TestTable1(t *testing.T) {
	e := smallRunner(t).Table1()
	if e.ID != "table1" || e.Table.NumRows() < 10 {
		t.Fatalf("table1: id=%q rows=%d", e.ID, e.Table.NumRows())
	}
}

func TestTable2MatchesAnchors(t *testing.T) {
	e := smallRunner(t).Table2()
	if e.Table.NumRows() != 9 {
		t.Fatalf("table2 rows = %d", e.Table.NumRows())
	}
	if v := e.Metrics["closest_2mb_nj"]; v < 0.40 || v > 0.45 {
		t.Fatalf("closest 2MB energy %v, want ~0.42", v)
	}
	if v := e.Metrics["closest_nuca_nj"]; v != 0.18 {
		t.Fatalf("closest NUCA energy %v, want 0.18", v)
	}
}

func TestTable3ReportsAllApps(t *testing.T) {
	r := smallRunner(t)
	e := r.Table3()
	if e.Table.NumRows() != len(r.Apps) {
		t.Fatalf("table3 rows = %d, want %d", e.Table.NumRows(), len(r.Apps))
	}
	for _, app := range r.Apps {
		if e.Metrics["apki_"+app.Name] <= 0 {
			t.Fatalf("APKI for %s missing", app.Name)
		}
	}
}

func TestTable4MatchesAnchors(t *testing.T) {
	e := smallRunner(t).Table4()
	if e.Table.NumRows() != 8 {
		t.Fatalf("table4 rows = %d", e.Table.NumRows())
	}
	if e.Metrics["fastest_4g"] != 14 || e.Metrics["fastest_8g"] != 12 || e.Metrics["fastest_2g"] != 19 {
		t.Fatalf("fastest latencies wrong: %v", e.Metrics)
	}
}

func TestFig4Shape(t *testing.T) {
	r := smallRunner(t)
	e := r.Fig4()
	if e.Table.NumRows() != len(r.Apps)+1 {
		t.Fatalf("fig4 rows = %d", e.Table.NumRows())
	}
	// Distance-associative placement must serve at least as many
	// accesses from the fastest d-group as set-associative.
	if e.Metrics["da_group1_frac"] < e.Metrics["sa_group1_frac"] {
		t.Fatalf("DA g1 %.3f must be >= SA g1 %.3f",
			e.Metrics["da_group1_frac"], e.Metrics["sa_group1_frac"])
	}
}

func TestFig5MissesPolicyIndependent(t *testing.T) {
	r := smallRunner(t)
	_ = r.Fig5()
	// The same app under the three policies must show identical misses.
	app := r.Apps[0]
	orgs := []Organization{
		NuRAPID(nurapidCfg(4, nurapid.DemotionOnly, nurapid.RandomDistance)),
		NuRAPID(nurapidCfg(4, nurapid.NextFastest, nurapid.RandomDistance)),
		NuRAPID(nurapidCfg(4, nurapid.Fastest, nurapid.RandomDistance)),
	}
	var miss []int64
	for _, o := range orgs {
		miss = append(miss, r.Run(app, o).L2Ctrs.Get("misses"))
	}
	if miss[0] != miss[1] || miss[1] != miss[2] {
		t.Fatalf("miss counts differ across promotion policies: %v", miss)
	}
}

func TestFig6ContainsAverages(t *testing.T) {
	r := smallRunner(t)
	e := r.Fig6()
	found := false
	for i := 0; i < e.Table.NumRows(); i++ {
		if e.Table.Cell(i, 0) == "OVERALL AVG" {
			found = true
		}
	}
	if !found {
		t.Fatal("fig6 must include the overall average row")
	}
	if e.Metrics["rel_ideal"] <= 0 {
		t.Fatal("ideal metric missing")
	}
}

func TestLRUStudyMetrics(t *testing.T) {
	e := smallRunner(t).LRUStudy()
	for _, k := range []string{
		"g1_demotion-only/random", "g1_demotion-only/lru",
		"g1_next-fastest/random", "g1_next-fastest/lru",
	} {
		if e.Metrics[k] <= 0 || e.Metrics[k] > 1 {
			t.Fatalf("metric %s = %v out of range", k, e.Metrics[k])
		}
	}
}

func TestFig7MoreGroupsFewerFirstGroupHits(t *testing.T) {
	e := smallRunner(t).Fig7()
	// Smaller d-groups hold less of the working set: first-group
	// fraction must not increase with the group count.
	if e.Metrics["g1_8groups"] > e.Metrics["g1_2groups"]+0.02 {
		t.Fatalf("8-group g1 %.3f should not exceed 2-group g1 %.3f",
			e.Metrics["g1_8groups"], e.Metrics["g1_2groups"])
	}
}

func TestFig8SwapRatio(t *testing.T) {
	e := smallRunner(t).Fig8()
	if e.Table.NumRows() == 0 {
		t.Fatal("fig8 table empty")
	}
	// Paper: the 8-d-group config incurs about 2x the promotion swaps of
	// the 4-d-group one. At smoke scale the fastest d-group may not fill
	// (no swaps at all); assert the direction only when swaps happened.
	if r := e.Metrics["swap_ratio_8v4"]; r > 0 && r <= 1.0 {
		t.Fatalf("8-group swaps must exceed 4-group swaps (ratio %.2f)", r)
	}
}

func TestFig9Metrics(t *testing.T) {
	e := smallRunner(t).Fig9()
	for _, k := range []string{"rel_dnuca", "rel_nurapid_4g", "rel_nurapid_8g"} {
		if e.Metrics[k] <= 0 {
			t.Fatalf("metric %s missing", k)
		}
	}
}

func TestFig10EnergyAdvantage(t *testing.T) {
	e := smallRunner(t).Fig10()
	// NuRAPID must use far less L2 energy and far fewer d-group accesses
	// than D-NUCA even at smoke-test scale.
	if e.Metrics["energy_ratio_nurapid_dnuca"] >= 0.8 {
		t.Fatalf("energy ratio %.3f, want well below 1", e.Metrics["energy_ratio_nurapid_dnuca"])
	}
	if e.Metrics["group_access_ratio"] >= 1.0 {
		t.Fatalf("group access ratio %.3f, want below 1", e.Metrics["group_access_ratio"])
	}
}

func TestFig11Metrics(t *testing.T) {
	e := smallRunner(t).Fig11()
	if e.Metrics["ed_nurapid"] <= 0 {
		t.Fatal("energy-delay metric missing")
	}
	// NuRAPID's energy-delay must beat D-NUCA's performance policy,
	// which burns bank energy on every multicast search.
	if e.Metrics["ed_nurapid"] >= e.Metrics["ed_dnuca_perf"] {
		t.Fatalf("NuRAPID ED %.3f must beat D-NUCA ss-perf %.3f",
			e.Metrics["ed_nurapid"], e.Metrics["ed_dnuca_perf"])
	}
}

func TestByID(t *testing.T) {
	r := smallRunner(t)
	if _, err := r.ByID("nonsense"); err == nil {
		t.Fatal("unknown id must error")
	}
	e, err := r.ByID("table4")
	if err != nil || e.ID != "table4" {
		t.Fatalf("ByID(table4): %v %v", e, err)
	}
}

func TestObserverSeesEachRunOnce(t *testing.T) {
	starts, finishes := 0, 0
	obs := ObserverFunc(func(e RunEvent) {
		switch e.Kind {
		case RunStart:
			starts++
		case RunFinish:
			finishes++
		}
	})
	r := smallRunner(t, WithObserver(obs))
	r.Run(r.Apps[0], Base())
	r.Run(r.Apps[0], Base()) // memoized: no second event pair
	if starts != 1 || finishes != 1 {
		t.Fatalf("events = %d starts, %d finishes, want 1 each", starts, finishes)
	}
}

func TestDeprecatedSeededConstructor(t *testing.T) {
	r := NewRunnerSeeded(120_000, 7)
	if r.Instructions != 120_000 || r.Seed != 7 || r.Workers != 1 {
		t.Fatalf("NewRunnerSeeded misconfigured: %+v", r)
	}
	if len(r.Apps) != 15 {
		t.Fatalf("roster size %d, want 15", len(r.Apps))
	}
}
