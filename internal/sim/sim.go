// Package sim assembles full-system simulations (workload generator ->
// out-of-order core -> L1s -> lower-level organization -> memory) and
// provides one driver per table and figure of the paper's evaluation.
package sim

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"nurapid/internal/cacti"
	"nurapid/internal/cmp"
	"nurapid/internal/cpu"
	"nurapid/internal/energy"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	"nurapid/internal/nurapid"
	"nurapid/internal/stats"
	"nurapid/internal/uca"
	"nurapid/internal/vis"
	"nurapid/internal/workload"
)

// L2Factory builds one lower-level organization against a fresh memory.
type L2Factory func(m *cacti.Model, mem *memsys.Memory) memsys.LowerLevel

// Organization pairs a short key with a factory; the experiments select
// organizations by key. BlockBytes is the organization's block size, so
// the runner can build a matching memory model; zero means the paper's
// 128-B default.
type Organization struct {
	Key        string
	BlockBytes int
	Factory    L2Factory
}

// blockBytes returns the organization's block size, defaulting to the
// paper's 128 B for hand-built organizations that leave it unset.
func (o Organization) blockBytes() int {
	if o.BlockBytes > 0 {
		return o.BlockBytes
	}
	return uca.BlockBytes
}

// Base returns the conventional L2/L3 hierarchy (the paper's base case).
func Base() Organization {
	return Organization{Key: "base", BlockBytes: uca.BlockBytes, Factory: func(m *cacti.Model, mem *memsys.Memory) memsys.LowerLevel {
		return uca.NewHierarchy(m, mem)
	}}
}

// Ideal returns the constant-fastest-latency bound of Figure 6.
func Ideal() Organization {
	return Organization{Key: "ideal", BlockBytes: uca.BlockBytes, Factory: func(m *cacti.Model, mem *memsys.Memory) memsys.LowerLevel {
		return uca.NewIdeal(m, mem)
	}}
}

// NuRAPID returns a NuRAPID organization with the given configuration.
func NuRAPID(cfg nurapid.Config) Organization {
	key := fmt.Sprintf("nurapid-%dg-%s-%s", cfg.NumDGroups, cfg.Promotion, cfg.Distance)
	if cfg.Placement == nurapid.SetAssociative {
		key += "-sa"
	}
	if cfg.RestrictFrames > 0 {
		key += fmt.Sprintf("-r%d", cfg.RestrictFrames)
	}
	if cfg.PromoteHits > 1 {
		key += fmt.Sprintf("-t%d", cfg.PromoteHits)
	}
	if cfg.Memoize {
		key += "-memo"
	}
	if cfg.BlockBytes != 128 {
		key += fmt.Sprintf("-b%d", cfg.BlockBytes)
	}
	return Organization{Key: key, BlockBytes: cfg.BlockBytes, Factory: func(m *cacti.Model, mem *memsys.Memory) memsys.LowerLevel {
		return nurapid.MustNew(cfg, m, mem)
	}}
}

// DNUCA returns a D-NUCA organization with the given configuration.
func DNUCA(cfg nuca.Config) Organization {
	key := "dnuca-" + cfg.Policy.String()
	if cfg.BlockBytes != 128 {
		key += fmt.Sprintf("-b%d", cfg.BlockBytes)
	}
	return Organization{Key: key, BlockBytes: cfg.BlockBytes, Factory: func(m *cacti.Model, mem *memsys.Memory) memsys.LowerLevel {
		return nuca.MustNew(cfg, m, mem)
	}}
}

// RunResult captures everything the experiments need from one run.
type RunResult struct {
	App string
	Org string

	CPU cpu.Result

	L2Dist          *stats.Distribution
	L2Ctrs          stats.Counters
	L2GroupAccesses []int64 // nil for organizations without the concept

	L2EnergyNJ  float64
	MemEnergyNJ float64
	MemAccesses int64

	Energy energy.Breakdown
	ED     float64

	// ObsMetrics holds the snapshots harvested from the run's probes
	// (WithProbe / WithTrace); nil when the run was not probed.
	ObsMetrics []stats.KV
}

// Snapshot emits the run's headline metrics plus the nested CPU summary
// (statsreg convention: every counter field must appear here).
func (r *RunResult) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: "l2_energy_nj", Value: r.L2EnergyNJ},
		{Name: "mem_energy_nj", Value: r.MemEnergyNJ},
		{Name: "mem_accesses", Value: float64(r.MemAccesses)},
		{Name: "energy_delay", Value: r.ED},
	}
	for _, kv := range r.CPU.Snapshot() {
		out = append(out, stats.KV{Name: "cpu_" + kv.Name, Value: kv.Value})
	}
	for _, kv := range r.ObsMetrics {
		out = append(out, stats.KV{Name: "obs_" + kv.Name, Value: kv.Value})
	}
	return out
}

// Runner executes and memoizes simulations so experiments sharing a
// configuration (every figure needs the base runs) pay for it once.
//
// A Runner is safe for concurrent use: the memo is singleflight — the
// first caller for a (app, org) key executes the simulation, concurrent
// callers for the same key block until that one result is ready, and
// later callers get it instantly. With Workers > 1 the experiments
// prefetch their full run set onto a bounded worker pool and then
// assemble tables from completed results in deterministic order, so the
// rendered output is byte-identical to a serial run at the same seed.
//
// Configure the exported fields before the first Run (or use the
// NewRunner options); they must not change afterwards.
type Runner struct {
	Model        *cacti.Model
	Instructions int64
	Seed         uint64
	Apps         []workload.App

	// Workers bounds the pool executing prefetched runs; <= 1 is serial.
	Workers int

	// Cores is the core count for CMP runs (RunCMP / the cmp
	// experiment); <= 0 means 2. Single-core experiments ignore it.
	Cores int
	// Sharing is the CMP workload sharing pattern (zero value: shared).
	Sharing cmp.Sharing

	observer Observer
	obsMu    sync.Mutex
	clock    func() time.Duration

	probe    ProbeFactory
	traceDir string
	probeMu  sync.Mutex
	probeErr error

	mu      sync.Mutex
	memo    map[string]*memoCell
	cmpMemo map[string]*cmpCell
}

// memoCell is one singleflight slot: the once gates the single
// execution, res is written inside it and read only after Do returns.
// panicked latches a panic escaping the one execution: sync.Once marks
// itself done even when f panics, so without the latch concurrent
// callers blocked on the Once would be released with a nil result and
// crash on a confusing secondary nil dereference. With it, every caller
// of the key — first and waiters alike — re-raises the original panic.
type memoCell struct {
	once     sync.Once
	res      *RunResult
	panicked any
}

// cell returns the singleflight slot for key, creating it if needed.
func (r *Runner) cell(key string) *memoCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memo == nil {
		r.memo = make(map[string]*memoCell)
	}
	c, ok := r.memo[key]
	if !ok {
		c = &memoCell{}
		r.memo[key] = c
	}
	return c
}

// emit delivers an event to the observer, serialized so observers need
// no locking of their own.
func (r *Runner) emit(e RunEvent) {
	if r.observer == nil {
		return
	}
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	r.observer.Observe(e)
}

// runMemo executes compute exactly once per key, concurrent duplicates
// included, and emits start/finish events around the one execution. A
// panic inside compute is recovered, latched on the cell, and re-raised
// from every caller of the key — releasing concurrent singleflight
// waiters with the real failure instead of a nil result.
func (r *Runner) runMemo(key, app, org string, hasAPKI bool, compute func() *RunResult) *RunResult {
	c := r.cell(key)
	c.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				c.panicked = p
			}
		}()
		r.emit(RunEvent{Kind: RunStart, App: app, Org: org})
		var start time.Duration
		if r.clock != nil {
			start = r.clock()
		}
		res := compute()
		var elapsed time.Duration
		if r.clock != nil {
			elapsed = r.clock() - start
		}
		c.res = res
		r.emit(RunEvent{Kind: RunFinish, App: app, Org: org,
			IPC: res.CPU.IPC, APKI: res.CPU.APKI, HasAPKI: hasAPKI, Elapsed: elapsed,
			Metrics: res.Snapshot()})
	})
	if c.panicked != nil {
		panic(fmt.Sprintf("sim: run %s panicked: %v", key, c.panicked))
	}
	return c.res
}

// Run simulates app on org, memoized on (app, org key).
func (r *Runner) Run(app workload.App, org Organization) *RunResult {
	key := app.Name + "/" + org.Key
	return r.runMemo(key, app.Name, org.Key, true, func() *RunResult {
		mem := memsys.NewMemory(org.blockBytes())
		l2 := org.Factory(r.Model, mem)
		probes := r.instrument(app.Name, org.Key, l2)
		core := cpu.MustNew(l2, cpu.WithL1EnergyNJ(r.Model.L1NJ))
		gen := workload.MustNewGenerator(app, r.Seed)
		cres := core.Run(gen, r.Instructions)

		params := energy.DefaultParams(r.Model)
		bd := params.Collect(cres.Cycles, cres.Instructions,
			cres.L1DAccesses+cres.L1IAccesses, l2.EnergyNJ(), mem.EnergyNJ())

		res := &RunResult{
			App:         app.Name,
			Org:         org.Key,
			CPU:         cres,
			L2Dist:      l2.Distribution(),
			L2EnergyNJ:  l2.EnergyNJ(),
			MemEnergyNJ: mem.EnergyNJ(),
			MemAccesses: mem.Accesses,
			Energy:      bd,
			ED:          energy.EnergyDelay(bd.TotalNJ(), cres.Cycles),
		}
		for _, name := range l2.Counters().Names() {
			res.L2Ctrs.Add(name, l2.Counters().Get(name))
		}
		if nc, ok := l2.(*nurapid.Cache); ok {
			res.L2GroupAccesses = nc.GroupAccesses()
		}
		r.finishProbes(probes, res)
		return res
	})
}

// Prefetch submits every (app, org) pair to the worker pool and blocks
// until all are simulated. With Workers <= 1 it is a no-op: the serial
// runner executes each simulation on demand, in table-assembly order,
// exactly as before the pool existed. Each experiment calls Prefetch
// with its full run set up front, then assembles its table from
// memoized results in deterministic order.
func (r *Runner) Prefetch(apps []workload.App, orgs []Organization) {
	tasks := make([]func(), 0, len(apps)*len(orgs))
	for _, app := range apps {
		for _, org := range orgs {
			app, org := app, org
			tasks = append(tasks, func() { r.Run(app, org) })
		}
	}
	r.fanOut(tasks)
}

// fanOut runs tasks on min(Workers, len(tasks)) goroutines and waits
// for all of them; with Workers <= 1 it does nothing (serial callers
// compute on demand). Tasks are handed out in submission order, but
// completion order is unspecified. A panicking task no longer takes the
// process down from an anonymous worker goroutine: runPool recovers it,
// lets the remaining tasks finish (releasing their singleflight
// waiters), and re-raises the lowest-index panic here, on the
// Prefetch/fan-out caller's goroutine.
func (r *Runner) fanOut(tasks []func()) {
	if r.Workers <= 1 {
		return
	}
	runPool(r.Workers, tasks)
}

// RelPerf returns org's performance relative to the base hierarchy for
// app (cycles_base / cycles_org; > 1 means faster than base).
func (r *Runner) RelPerf(app workload.App, org Organization) float64 {
	base := r.Run(app, Base())
	o := r.Run(app, org)
	if o.CPU.Cycles == 0 {
		return 0
	}
	return float64(base.CPU.Cycles) / float64(o.CPU.Cycles)
}

// Experiment is one regenerated table or figure: a printable table plus
// the headline metrics benches and EXPERIMENTS.md report, and (for the
// figures) a text chart in the paper's visual style.
type Experiment struct {
	ID      string
	Caption string
	Table   *stats.Table
	// Chart, when non-nil, renders the figure's series as a text chart.
	Chart vis.Chart
	// Metrics holds the experiment's headline numbers, keyed by a short
	// slug (e.g. "avg_rel_perf_next_fastest").
	Metrics map[string]float64
}

// Render writes the experiment the way cmd/experiments prints it: the
// table (aligned text, or CSV when csv is set), the chart (text mode
// only), and the headline metrics sorted by key. For a fixed Runner seed
// the bytes written are identical across runs — a tested guarantee
// (determinism_test.go) that keeps regenerated tables diffable.
func (e *Experiment) Render(w io.Writer, csv bool) error {
	if csv {
		if err := e.Table.WriteCSV(w); err != nil {
			return err
		}
	} else {
		if err := e.Table.WriteText(w); err != nil {
			return err
		}
		if e.Chart != nil {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			if err := e.Chart.Render(w); err != nil {
				return err
			}
		}
	}
	if len(e.Metrics) > 0 {
		if _, err := fmt.Fprintln(w, "headline metrics:"); err != nil {
			return err
		}
		keys := make([]string, 0, len(e.Metrics))
		for k := range e.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %-32s %.4f\n", k, e.Metrics[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// standard NuRAPID configurations used across experiments.
func nurapidCfg(groups int, prom nurapid.Promotion, dist nurapid.DistancePolicy) nurapid.Config {
	cfg := nurapid.DefaultConfig()
	cfg.NumDGroups = groups
	cfg.Promotion = prom
	cfg.Distance = dist
	return cfg
}

// mean is arithmetic mean over a slice (the paper's "on average").
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
