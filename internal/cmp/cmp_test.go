package cmp

import (
	"testing"

	"nurapid/internal/memsys"
	"nurapid/internal/memsys/memtest"
)

func TestQueueConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  QueueConfig
	}{
		{"zero banks", QueueConfig{Banks: 0, BlockBytes: 128, Occupancy: 4, Cores: 1}},
		{"block not power of two", QueueConfig{Banks: 8, BlockBytes: 96, Occupancy: 4, Cores: 1}},
		{"block too small", QueueConfig{Banks: 8, BlockBytes: 4, Occupancy: 4, Cores: 1}},
		{"zero occupancy", QueueConfig{Banks: 8, BlockBytes: 128, Occupancy: 0, Cores: 1}},
		{"zero cores", QueueConfig{Banks: 8, BlockBytes: 128, Occupancy: 4, Cores: 0}},
	}
	for _, tc := range cases {
		if _, err := NewQueue(memtest.NewStub(10), tc.cfg); err == nil {
			t.Errorf("%s: NewQueue accepted invalid config %+v", tc.name, tc.cfg)
		}
	}
	if _, err := NewQueue(memtest.NewStub(10), DefaultQueueConfig(4)); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// Two requests from different cores hitting the same bank in the same
// cycle must serialize: the second starts after the first's occupancy.
func TestQueueSerializesSameBank(t *testing.T) {
	stub := memtest.NewStub(10)
	q, err := NewQueue(stub, QueueConfig{Banks: 8, BlockBytes: 128, Occupancy: 4, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	const addr = 0x1000 // both requests target the same block/bank
	r0 := q.Access(memsys.Req{Now: 100, Addr: addr, Core: 0})
	r1 := q.Access(memsys.Req{Now: 100, Addr: addr, Core: 1})
	if want := int64(110); r0.DoneAt != want {
		t.Errorf("first access DoneAt = %d, want %d (no wait)", r0.DoneAt, want)
	}
	if want := int64(114); r1.DoneAt != want {
		t.Errorf("second access DoneAt = %d, want %d (waits one occupancy)", r1.DoneAt, want)
	}
	pc := q.PerCore()
	if pc[0].StallCycles != 0 || pc[1].StallCycles != 4 {
		t.Errorf("stall attribution = %d/%d, want 0/4", pc[0].StallCycles, pc[1].StallCycles)
	}
	if pc[0].Accesses != 1 || pc[1].Accesses != 1 {
		t.Errorf("access attribution = %d/%d, want 1/1", pc[0].Accesses, pc[1].Accesses)
	}
	if pc[1].LatencyCycles != 14 {
		t.Errorf("core 1 latency = %d, want 14 (4 wait + 10 access)", pc[1].LatencyCycles)
	}
}

// Requests to different banks must not interfere.
func TestQueueIndependentBanks(t *testing.T) {
	q, err := NewQueue(memtest.NewStub(10), QueueConfig{Banks: 8, BlockBytes: 128, Occupancy: 4, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	r0 := q.Access(memsys.Req{Now: 100, Addr: 0 * 128, Core: 0})
	r1 := q.Access(memsys.Req{Now: 100, Addr: 1 * 128, Core: 1})
	if r0.DoneAt != 110 || r1.DoneAt != 110 {
		t.Errorf("DoneAt = %d/%d, want 110/110 (distinct banks, no wait)", r0.DoneAt, r1.DoneAt)
	}
}

// Bank-wait cycles are attributed to the d-group that served the
// stalled access (the stub always hits in group 0).
func TestQueueGroupStallAttribution(t *testing.T) {
	q, err := NewQueue(memtest.NewStub(10), QueueConfig{Banks: 1, BlockBytes: 128, Occupancy: 4, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	q.Access(memsys.Req{Now: 0, Addr: 0, Core: 0})
	q.Access(memsys.Req{Now: 0, Addr: 128, Core: 1}) // same single bank: waits 4
	perGroup, miss := q.GroupStalls()
	if len(perGroup) != 1 || perGroup[0] != 4 {
		t.Errorf("perGroup = %v, want [4]", perGroup)
	}
	if miss != 0 {
		t.Errorf("miss stalls = %d, want 0", miss)
	}
	snap := q.Snapshot()
	found := false
	for _, kv := range snap {
		if kv.Name == "queue_dgroup_0_stall_cycles" && kv.Value == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot missing queue_dgroup_0_stall_cycles=4: %v", snap)
	}
}

// Write requests carried through the queue keep their core id on the
// wrapped organization (per-core attribution end to end).
func TestQueueForwardsCore(t *testing.T) {
	stub := memtest.NewStub(1)
	stub.Record = true
	q, err := NewQueue(stub, DefaultQueueConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	q.Access(memsys.Req{Now: 5, Addr: 0x40, Write: true, Core: 3})
	if len(stub.Reqs) != 1 {
		t.Fatalf("stub saw %d reqs, want 1", len(stub.Reqs))
	}
	got := stub.Reqs[0]
	if got.Core != 3 || !got.Write || got.Addr != 0x40 {
		t.Errorf("forwarded req = %+v, want Core 3 write to 0x40", got)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{2, 2, 2, 2}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
	}
	for _, tc := range cases {
		if got := JainIndex(tc.xs); got != tc.want {
			t.Errorf("JainIndex(%v) = %g, want %g", tc.xs, got, tc.want)
		}
	}
	// Unequal but nonzero: strictly between 1/n and 1.
	got := JainIndex([]float64{1, 2})
	if got <= 0.5 || got >= 1 {
		t.Errorf("JainIndex(1,2) = %g, want in (0.5, 1)", got)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	if _, err := New(memtest.NewStub(10), Config{Cores: 0}); err == nil {
		t.Error("New accepted Cores=0")
	}
	if _, err := New(memtest.NewStub(10), Config{Cores: 4, Queue: QueueConfig{Banks: 8, BlockBytes: 128, Occupancy: 4, Cores: 2}}); err == nil {
		t.Error("New accepted Queue.Cores < Cores")
	}
}
