package cmp

import (
	"fmt"

	"nurapid/internal/cpu"
	"nurapid/internal/memsys"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
	"nurapid/internal/workload"
)

// Sharing selects how the per-core instruction streams relate.
type Sharing int

const (
	// Shared gives every core the identical stream: same seed, same
	// addresses — full constructive and destructive sharing, the worst
	// case for coherence shoot-downs and the best for shared-L2 reuse.
	Shared Sharing = iota
	// Private seeds each core independently and offsets its address
	// space so no block is ever shared: pure capacity and bandwidth
	// contention, no coherence traffic.
	Private
)

// String implements fmt.Stringer.
func (s Sharing) String() string {
	switch s {
	case Shared:
		return "shared"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("Sharing(%d)", int(s))
	}
}

// ParseSharing maps the -cmp flag spellings to a Sharing.
func ParseSharing(s string) (Sharing, error) {
	switch s {
	case "shared":
		return Shared, nil
	case "private":
		return Private, nil
	default:
		return 0, fmt.Errorf("cmp: unknown sharing pattern %q (valid: shared, private)", s)
	}
}

// defaultPrivateStride separates private per-core address spaces by
// 64 GB — far above any generated working set, so streams never alias.
const defaultPrivateStride = uint64(1) << 36

// Config parameterizes a CMP system.
type Config struct {
	// Cores is the number of out-of-order cores (>= 1).
	Cores int
	// Sharing selects the workload sharing pattern.
	Sharing Sharing
	// Queue configures the shared-L2 bank queues; the zero value means
	// DefaultQueueConfig(Cores).
	Queue QueueConfig
	// CPU configures each core; the zero value means
	// cpu.DefaultConfig().
	CPU cpu.Config
	// L1EnergyNJ is the per-L1-access energy charged by each core.
	L1EnergyNJ float64
	// PrivateStride is the per-core address offset under Private
	// sharing; zero means 64 GB.
	PrivateStride uint64
}

// System is N cores in lockstep over one shared lower level.
type System struct {
	cfg    Config
	queue  *Queue
	fronts []coreFront
	cores  []*cpu.CPU

	cycle         int64
	invalidations int64

	// probe observes coherence events (KindInval); the queue and the
	// shared organization share the same probe via SetProbe.
	probe obs.Probe
}

// New builds a CMP system over the shared organization l2. The queue
// model owns the only path to l2; each core's misses go
// core -> coreFront (coherence) -> Queue (bank arbitration) -> l2.
func New(l2 memsys.LowerLevel, cfg Config) (*System, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("cmp: Cores must be >= 1, got %d", cfg.Cores)
	}
	qcfg := cfg.Queue
	if qcfg == (QueueConfig{}) {
		qcfg = DefaultQueueConfig(cfg.Cores)
	} else if qcfg.Cores == 0 {
		qcfg.Cores = cfg.Cores
	}
	if qcfg.Cores < cfg.Cores {
		return nil, fmt.Errorf("cmp: Queue.Cores = %d < Cores = %d", qcfg.Cores, cfg.Cores)
	}
	ccfg := cfg.CPU
	if ccfg == (cpu.Config{}) {
		ccfg = cpu.DefaultConfig()
	}
	queue, err := NewQueue(l2, qcfg)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, queue: queue}
	s.fronts = make([]coreFront, cfg.Cores)
	s.cores = make([]*cpu.CPU, cfg.Cores)
	for i := range s.fronts {
		s.fronts[i] = coreFront{sys: s, core: i}
		c, err := cpu.New(&s.fronts[i],
			cpu.WithConfig(ccfg),
			cpu.WithL1EnergyNJ(cfg.L1EnergyNJ),
			cpu.WithCoreID(i))
		if err != nil {
			return nil, err
		}
		s.cores[i] = c
	}
	return s, nil
}

// MustNew is New, panicking on configuration errors.
func MustNew(l2 memsys.LowerLevel, cfg Config) *System {
	s, err := New(l2, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// SetProbe implements obs.Probeable for the whole shared side: the
// probe receives the system's coherence shoot-down events plus the
// queue's and the wrapped organization's streams, all in the canonical
// per-access order. Call before Run; nil restores the fast path
// everywhere.
func (s *System) SetProbe(p obs.Probe) {
	s.probe = p
	s.queue.SetProbe(p)
}

// Queue exposes the shared bank-queue model (contention figures).
func (s *System) Queue() *Queue { return s.queue }

// Cores exposes the per-core CPU models (tests, per-core figures).
func (s *System) Cores() []*cpu.CPU { return s.cores }

// Sources builds one instruction source per core for app at seed under
// the configured sharing pattern. Shared hands every core a generator
// with the identical seed (identical streams, truly shared blocks);
// Private perturbs each core's seed and offsets its address space by
// PrivateStride so streams never alias.
func (s *System) Sources(app workload.App, seed uint64) ([]workload.Source, error) {
	stride := s.cfg.PrivateStride
	if stride == 0 {
		stride = defaultPrivateStride
	}
	srcs := make([]workload.Source, len(s.cores))
	for i := range srcs {
		switch s.cfg.Sharing {
		case Shared:
			g, err := workload.NewGenerator(app, seed)
			if err != nil {
				return nil, err
			}
			srcs[i] = g
		case Private:
			g, err := workload.NewGenerator(app, seed+uint64(i)*0x9E37_79B9_7F4A_7C15)
			if err != nil {
				return nil, err
			}
			srcs[i] = &offsetSource{src: g, offset: uint64(i) * stride}
		default:
			return nil, fmt.Errorf("cmp: unknown sharing pattern %d", s.cfg.Sharing)
		}
	}
	return srcs, nil
}

// Run starts every core on its source and steps them in lockstep until
// all retire maxInstrPerCore instructions (or exhaust their sources).
// Within each global cycle the core stepping order rotates round-robin
// ((cycle + k) mod n), so no core gets a standing first-access
// advantage at the shared queue; the schedule is a pure function of the
// cycle number, keeping runs deterministic.
func (s *System) Run(srcs []workload.Source, maxInstrPerCore int64) Result {
	if len(srcs) != len(s.cores) {
		panic(fmt.Sprintf("cmp: %d sources for %d cores", len(srcs), len(s.cores)))
	}
	for i := range s.cores {
		s.cores[i].Start(srcs[i], maxInstrPerCore)
	}
	n := len(s.cores)
	running := n
	finished := make([]bool, n)
	for running > 0 {
		base := int(s.cycle % int64(n))
		for k := 0; k < n; k++ {
			i := (base + k) % n
			if finished[i] {
				continue
			}
			if s.cores[i].Done() || !s.cores[i].Step() {
				finished[i] = true
				running--
			}
		}
		s.cycle++
	}
	return s.Result()
}

// shootDown invalidates addr's block from every L1D except the writer's
// own — the coherence-lite model: a write reaching the shared level
// makes every other private copy stale, and stale copies are dropped
// without writeback because the writer's data supersedes them. done is
// the cycle the write's shared-level access completed; each dropped
// copy emits one KindInval stamped with it, closing the access's event
// window after the outcome.
//
//nurapid:hotpath
func (s *System) shootDown(writer int, addr uint64, done int64) {
	for i := range s.cores {
		if i == writer {
			continue
		}
		if s.cores[i].InvalidateL1(addr) {
			s.invalidations++
			if s.probe != nil {
				s.probe.Emit(obs.Inval(done, addr, i))
			}
		}
	}
}

// coreFront is the per-core adapter between a CPU and the shared queue:
// it stamps the core id on every request and runs the coherence-lite
// shoot-down for writes reaching the shared level.
type coreFront struct {
	sys  *System
	core int
}

// Name implements memsys.LowerLevel.
func (f *coreFront) Name() string { return f.sys.queue.Name() }

// Access implements memsys.LowerLevel for one core's private view of
// the shared level. The shoot-down runs after the queued access
// returns — the write is coherence-visible once the shared level
// accepted it, and nothing else executes in between (one goroutine,
// lockstep stepping), so the reorder is invisible to simulated state
// while keeping KindInval events after the access window's outcome.
//
//nurapid:hotpath
func (f *coreFront) Access(req memsys.Req) memsys.AccessResult {
	req.Core = f.core
	r := f.sys.queue.Access(req)
	if req.Write {
		f.sys.shootDown(f.core, req.Addr, r.DoneAt)
	}
	return r
}

// Distribution implements memsys.LowerLevel.
func (f *coreFront) Distribution() *stats.Distribution { return f.sys.queue.Distribution() }

// EnergyNJ implements memsys.LowerLevel.
func (f *coreFront) EnergyNJ() float64 { return f.sys.queue.EnergyNJ() }

// Counters implements memsys.LowerLevel.
func (f *coreFront) Counters() *stats.Counters { return f.sys.queue.Counters() }

var _ memsys.LowerLevel = (*coreFront)(nil)

// offsetSource shifts a stream's data and fetch addresses by a fixed
// offset, giving each Private-mode core a disjoint address space.
type offsetSource struct {
	src    workload.Source
	offset uint64
}

// Next implements workload.Source.
func (o *offsetSource) Next() (workload.Instr, bool) {
	in, ok := o.src.Next()
	if !ok {
		return in, false
	}
	in.PC += o.offset
	if in.Addr != 0 {
		in.Addr += o.offset
	}
	return in, true
}
