package cmp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/workload"
)

// testInstr keeps full-system tests fast while still driving thousands
// of shared-L2 accesses per core.
const testInstr = 30_000

func testApp(t *testing.T) workload.App {
	t.Helper()
	app, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("workload roster has no mcf")
	}
	return app
}

func newNuRAPID(t *testing.T) *nurapid.Cache {
	t.Helper()
	mem := memsys.NewMemory(128)
	c, err := nurapid.New(nurapid.DefaultConfig(), cacti.Default(), mem)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runShared(t *testing.T, cores int, sharing Sharing, trace *bytes.Buffer) Result {
	t.Helper()
	l2 := newNuRAPID(t)
	if trace != nil {
		l2.SetProbe(obs.NewTraceSink(trace))
	}
	sys, err := New(l2, Config{Cores: cores, Sharing: sharing, L1EnergyNJ: cacti.Default().L1NJ})
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := sys.Sources(testApp(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run(srcs, testInstr)
}

// Two cores running the identical workload must progress equally:
// Jain's index stays at ~1.0 and both cores retire the full budget.
func TestSharedWorkloadFairness(t *testing.T) {
	res := runShared(t, 2, Shared, nil)
	for i, cr := range res.Cores {
		if cr.Instructions != testInstr {
			t.Errorf("core %d retired %d instructions, want %d", i, cr.Instructions, testInstr)
		}
	}
	if res.Fairness < 0.999 {
		t.Errorf("fairness = %f for identical workloads, want ~1.0", res.Fairness)
	}
	if res.AggregateIPC <= 0 {
		t.Errorf("aggregate IPC = %f, want > 0", res.AggregateIPC)
	}
	if res.Instructions != 2*testInstr {
		t.Errorf("total instructions = %d, want %d", res.Instructions, 2*testInstr)
	}
}

// Shared streams write the same blocks, so coherence shoot-downs must
// occur; private streams never alias, so none may occur.
func TestCoherenceInvalidations(t *testing.T) {
	shared := runShared(t, 2, Shared, nil)
	if shared.Invalidations == 0 {
		t.Error("shared run recorded no L1D invalidations; writes to shared blocks must shoot down peer copies")
	}
	var l1dInvals int64
	for _, cr := range shared.Cores {
		l1dInvals += cr.L1DInvals
	}
	if l1dInvals != shared.Invalidations {
		t.Errorf("per-core L1DInvals sum %d != system Invalidations %d", l1dInvals, shared.Invalidations)
	}

	private := runShared(t, 2, Private, nil)
	if private.Invalidations != 0 {
		t.Errorf("private run recorded %d invalidations, want 0 (disjoint address spaces)", private.Invalidations)
	}
}

// Contention is real: with disjoint (Private) address spaces there is
// no constructive sharing to hide behind, so two cores fighting over
// the same L2 capacity and bank bandwidth take longer than one core
// alone, and the queue records nonzero stall cycles. (Under Shared
// streams the comparison is invalid: each core's misses prefetch the
// other's blocks into the shared L2, and the pair can finish *faster*
// than solo — see TestSharedPrefetchEffect.)
func TestContentionShowsUp(t *testing.T) {
	solo := runShared(t, 1, Private, nil)
	duo := runShared(t, 2, Private, nil)
	if duo.Cycles <= solo.Cycles {
		t.Errorf("2-core makespan %d <= 1-core %d; shared-queue contention must cost cycles", duo.Cycles, solo.Cycles)
	}
	var stalls int64
	for _, cs := range duo.PerCore {
		stalls += cs.StallCycles
	}
	if stalls == 0 {
		t.Error("2-core run recorded zero queue stall cycles; same-bank collisions must stall")
	}
	var attributed int64
	for _, s := range duo.GroupStallCycles {
		attributed += s
	}
	attributed += duo.MissStallCycles
	if attributed != stalls {
		t.Errorf("group+miss attribution %d != total stalls %d", attributed, stalls)
	}
}

// Identical Shared streams interfere constructively: whichever core is
// momentarily ahead fetches blocks the other then finds in the shared
// L2, so each core sees fewer memory-level misses than it would alone.
// This is the behavior that makes the Shared/Private split worth
// modeling, so pin it down.
func TestSharedPrefetchEffect(t *testing.T) {
	solo := runShared(t, 1, Shared, nil)
	duo := runShared(t, 2, Shared, nil)
	perCoreDuo := (duo.Cores[0].Cycles + duo.Cores[1].Cycles) / 2
	if perCoreDuo >= solo.Cycles {
		t.Errorf("shared duo per-core cycles %d >= solo %d; identical streams should prefetch for each other", perCoreDuo, solo.Cycles)
	}
}

// The whole system is deterministic: two identical runs produce deeply
// equal results and byte-identical shared-L2 event traces, and the
// trace carries non-zero core ids.
func TestSystemDeterminism(t *testing.T) {
	var t1, t2 bytes.Buffer
	r1 := runShared(t, 2, Shared, &t1)
	r2 := runShared(t, 2, Shared, &t2)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("identical runs produced different Results")
	}
	if t1.Len() == 0 {
		t.Fatal("trace sink captured no events")
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("identical runs produced different event traces")
	}
	if !strings.Contains(t1.String(), `"core":1`) {
		t.Error("trace never attributes an access to core 1")
	}
}

// A Result snapshot carries the headline aggregate metrics and the
// per-core nesting.
func TestResultSnapshot(t *testing.T) {
	res := runShared(t, 2, Shared, nil)
	snap := res.Snapshot()
	want := []string{
		"cycles", "instructions", "aggregate_ipc", "fairness",
		"invalidations", "miss_stall_cycles",
		"core0_ipc", "core1_ipc", "core0_queue_stall_cycles", "core1_queue_accesses",
	}
	have := make(map[string]bool, len(snap))
	for _, kv := range snap {
		have[kv.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("Result snapshot missing %q", name)
		}
	}
}

// Private sharing offsets each core's stream: the underlying generator
// addresses never collide across cores.
func TestOffsetSourceDisjoint(t *testing.T) {
	l2 := newNuRAPID(t)
	sys, err := New(l2, Config{Cores: 2, Sharing: Private})
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := sys.Sources(testApp(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for core, src := range srcs {
		for i := 0; i < 2000; i++ {
			in, ok := src.Next()
			if !ok {
				break
			}
			if in.Addr == 0 {
				continue
			}
			blk := in.Addr >> 7
			if prev, dup := seen[blk]; dup && prev != core {
				t.Fatalf("block %#x generated by both core %d and core %d", blk, prev, core)
			}
			seen[blk] = core
		}
	}
}
