package cmp

import (
	"fmt"

	"nurapid/internal/cpu"
	"nurapid/internal/stats"
)

// Result summarizes one CMP run: per-core outcomes plus the aggregate
// throughput, fairness, and contention figures the experiments report.
type Result struct {
	// Cores holds each core's own simulation result, indexed by id.
	Cores []cpu.Result
	// PerCore holds each core's shared-queue statistics, indexed by id.
	PerCore []CoreStats
	// GroupStallCycles attributes bank-wait cycles to the d-group that
	// served the stalled access (index = group, latency order).
	GroupStallCycles []int64

	// MissStallCycles is the bank-wait share attributed to misses.
	MissStallCycles int64
	// Invalidations counts L1D lines shot down by other cores' writes.
	Invalidations int64
	// Cycles is the slowest core's cycle count — the run's makespan.
	Cycles int64
	// Instructions is the total retired across all cores.
	Instructions int64
	// AggregateIPC is total instructions over the makespan — the
	// system's throughput in instructions per cycle.
	AggregateIPC float64
	// Fairness is Jain's index over per-core IPCs: 1.0 when every core
	// progresses equally, approaching 1/n when one core starves the
	// rest.
	Fairness float64
}

// Result assembles the summary for the run so far. It is cheap and
// side-effect free, so tests may call it mid-run.
func (s *System) Result() Result {
	r := Result{
		Cores:         make([]cpu.Result, len(s.cores)),
		PerCore:       append([]CoreStats(nil), s.queue.PerCore()...),
		Invalidations: s.invalidations,
	}
	r.GroupStallCycles, r.MissStallCycles = s.queue.GroupStalls()
	ipcs := make([]float64, len(s.cores))
	for i, c := range s.cores {
		cr := c.Result()
		r.Cores[i] = cr
		r.Instructions += cr.Instructions
		if cr.Cycles > r.Cycles {
			r.Cycles = cr.Cycles
		}
		ipcs[i] = cr.IPC
	}
	if r.Cycles > 0 {
		r.AggregateIPC = float64(r.Instructions) / float64(r.Cycles)
	}
	r.Fairness = JainIndex(ipcs)
	return r
}

// JainIndex is Jain's fairness index (sum x)^2 / (n * sum x^2) over the
// per-core allocations: 1.0 when all are equal, 1/n when one core gets
// everything. An empty or all-zero allocation is reported as perfectly
// fair (1.0).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Snapshot emits the aggregate figures plus each core's nested summary
// (statsreg convention: every counter field must appear here).
func (r Result) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: "cycles", Value: float64(r.Cycles)},
		{Name: "instructions", Value: float64(r.Instructions)},
		{Name: "aggregate_ipc", Value: r.AggregateIPC},
		{Name: "fairness", Value: r.Fairness},
		{Name: "invalidations", Value: float64(r.Invalidations)},
		{Name: "miss_stall_cycles", Value: float64(r.MissStallCycles)},
	}
	for g, s := range r.GroupStallCycles {
		out = append(out, stats.KV{
			Name:  fmt.Sprintf("dgroup_%d_stall_cycles", g),
			Value: float64(s),
		})
	}
	for i := range r.Cores {
		prefix := fmt.Sprintf("core%d_", i)
		for _, kv := range r.Cores[i].Snapshot() {
			out = append(out, stats.KV{Name: prefix + kv.Name, Value: kv.Value})
		}
		out = append(out,
			stats.KV{Name: prefix + "queue_accesses", Value: float64(r.PerCore[i].Accesses)},
			stats.KV{Name: prefix + "queue_writes", Value: float64(r.PerCore[i].Writes)},
			stats.KV{Name: prefix + "queue_stall_cycles", Value: float64(r.PerCore[i].StallCycles)},
			stats.KV{Name: prefix + "queue_latency_cycles", Value: float64(r.PerCore[i].LatencyCycles)},
		)
	}
	return out
}
