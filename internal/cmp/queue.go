// Package cmp models a chip-multiprocessor front end over one shared
// lower-level organization: N out-of-order cores with private L1s
// (internal/cpu) drive a single NuRAPID, D-NUCA, or conventional
// hierarchy L2 through a deterministic bank-queue model.
//
// The pieces:
//
//   - Queue wraps the shared organization behind per-bank occupancy
//     scoreboards (memsys.Port), so requests from different cores to
//     the same bank serialize deterministically and the wait shows up
//     as attributable contention stalls.
//   - System builds the cores, steps them in lockstep with rotating
//     round-robin arbitration, and applies coherence-lite: a write
//     reaching the shared L2 shoots the block down from every other
//     core's private L1D (no writeback — the writer's copy supersedes).
//   - Result aggregates per-core IPC, Jain's fairness index, and
//     d-group contention stalls into one statsreg-compliant snapshot.
//
// Everything is deterministic: same seeds and configuration give
// byte-identical event streams and figures regardless of host.
package cmp

import (
	"fmt"
	"math/bits"

	"nurapid/internal/memsys"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

// maxGroups bounds per-d-group stall attribution. The largest
// organization in the repository has 8 latency groups; 64 leaves room
// for experimental configurations without hot-path growth.
const maxGroups = 64

// QueueConfig parameterizes the shared-L2 bank-queue model.
type QueueConfig struct {
	// Banks is the number of independently scheduled queues; requests
	// are address-interleaved across them at BlockBytes granularity.
	Banks int
	// BlockBytes is the interleave granularity (power of two). It
	// matches the organization's block size so one block maps to one
	// bank.
	BlockBytes int
	// Occupancy is how many cycles one request occupies its bank — the
	// issue interval of the shared organization's port, not the full
	// access latency (banks are pipelined like the underlying arrays).
	Occupancy int64
	// Cores pre-sizes per-core attribution; requests must carry
	// Core in [0, Cores).
	Cores int
}

// DefaultQueueConfig mirrors the paper's port model: 8 banks at the
// organizations' 128-B block interleave, occupied for the 4-cycle issue
// interval the single-core organizations already charge.
func DefaultQueueConfig(cores int) QueueConfig {
	return QueueConfig{Banks: 8, BlockBytes: 128, Occupancy: 4, Cores: cores}
}

// validate reports the first configuration error.
func (c QueueConfig) validate() error {
	if c.Banks < 1 {
		return fmt.Errorf("cmp: Banks must be >= 1, got %d", c.Banks)
	}
	if c.BlockBytes < 8 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cmp: BlockBytes must be a power of two >= 8, got %d", c.BlockBytes)
	}
	if c.Occupancy < 1 {
		return fmt.Errorf("cmp: Occupancy must be >= 1, got %d", c.Occupancy)
	}
	if c.Cores < 1 {
		return fmt.Errorf("cmp: Cores must be >= 1, got %d", c.Cores)
	}
	return nil
}

// CoreStats is one core's view of the shared queue. It has no Snapshot
// method of its own; Result folds these into the system snapshot.
type CoreStats struct {
	// Accesses counts requests the core issued to the shared level.
	Accesses int64
	// Writes counts the write subset.
	Writes int64
	// StallCycles is time spent waiting for a busy bank before issue —
	// the contention the queue model adds over a private L2.
	StallCycles int64
	// LatencyCycles sums end-to-end latency (queue wait + access), for
	// average-latency figures.
	LatencyCycles int64
}

// Queue is a memsys.LowerLevel that serializes concurrent cores onto a
// shared organization through per-bank occupancy scoreboards. It is the
// only path cores use to reach the shared level, so its counters see
// every request.
//
// Queue itself implements the LowerLevel contract (forwarding Name,
// Distribution, EnergyNJ, and Counters to the wrapped organization), so
// the differential harness can compare a queued fast model against a
// queued reference model with the same glue.
type Queue struct {
	l2   memsys.LowerLevel
	name string

	banks   []memsys.Port
	perCore []CoreStats

	// groupStalls attributes bank-wait cycles to the d-group that
	// ultimately served the access; missStalls takes the miss share.
	groupStalls [maxGroups]int64
	missStalls  int64

	blockShift uint
	occupancy  int64

	// probe observes queue-side events (KindEnqueue/KindIssue); nil in
	// unprobed runs keeps the zero-overhead fast path.
	probe obs.Probe
}

// NewQueue wraps l2 behind cfg's bank queues.
func NewQueue(l2 memsys.LowerLevel, cfg QueueConfig) (*Queue, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Queue{
		l2:         l2,
		name:       "cmp(" + l2.Name() + ")",
		banks:      make([]memsys.Port, cfg.Banks),
		perCore:    make([]CoreStats, cfg.Cores),
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		occupancy:  cfg.Occupancy,
	}, nil
}

// Name implements memsys.LowerLevel.
func (q *Queue) Name() string { return q.name }

// Access implements memsys.LowerLevel: the request waits for its bank's
// scoreboard, then issues to the shared organization at the granted
// cycle. The bank wait is charged to the requesting core and attributed
// to the d-group that served the access (or to the miss bucket).
//
//nurapid:hotpath
func (q *Queue) Access(req memsys.Req) memsys.AccessResult {
	bank := int((req.Addr >> q.blockShift) % uint64(len(q.banks)))
	if q.probe != nil {
		// Instantaneous depth at arrival: how many whole occupancy
		// intervals of backlog sit ahead of this request.
		depth := int64(0)
		if backlog := q.banks[bank].FreeAt() - req.Now; backlog > 0 {
			depth = (backlog + q.occupancy - 1) / q.occupancy
		}
		if depth > 255 {
			depth = 255
		}
		q.probe.Emit(obs.Enqueue(req.Now, req.Addr, bank, req.Core, req.Write, int(depth)))
	}
	start := q.banks[bank].Acquire(req.Now, q.occupancy)
	stall := start - req.Now
	if q.probe != nil {
		q.probe.Emit(obs.Issue(start, bank, req.Core, stall))
	}

	cs := &q.perCore[req.Core]
	cs.Accesses++
	if req.Write {
		cs.Writes++
	}
	cs.StallCycles += stall

	issued := req
	issued.Now = start
	r := q.l2.Access(issued)
	cs.LatencyCycles += r.DoneAt - req.Now

	if r.Group >= 0 && r.Group < maxGroups {
		q.groupStalls[r.Group] += stall
	} else {
		q.missStalls += stall
	}
	return r
}

// Distribution implements memsys.LowerLevel.
func (q *Queue) Distribution() *stats.Distribution { return q.l2.Distribution() }

// EnergyNJ implements memsys.LowerLevel.
func (q *Queue) EnergyNJ() float64 { return q.l2.EnergyNJ() }

// Counters implements memsys.LowerLevel.
func (q *Queue) Counters() *stats.Counters { return q.l2.Counters() }

// SetProbe implements obs.Probeable: the probe sees this queue's
// KindEnqueue/KindIssue events interleaved in canonical order with the
// wrapped organization's own stream (the probe is forwarded to it when
// it accepts probes). Call before the first access; nil restores the
// fast path on both levels.
func (q *Queue) SetProbe(p obs.Probe) {
	q.probe = p
	if pb, ok := q.l2.(obs.Probeable); ok {
		pb.SetProbe(p)
	}
}

// LatencyProfile implements obs.LatencyProfiler by delegating to the
// wrapped organization; the zero profile means it has none.
func (q *Queue) LatencyProfile() obs.LatencyProfile {
	if lp, ok := q.l2.(obs.LatencyProfiler); ok {
		return lp.LatencyProfile()
	}
	return obs.LatencyProfile{}
}

// PerCore returns the per-core queue statistics, indexed by core id.
func (q *Queue) PerCore() []CoreStats { return q.perCore }

// GroupStalls returns bank-wait cycles attributed per serving d-group
// (index = group) plus the miss share, trimmed to the groups that were
// actually touched.
func (q *Queue) GroupStalls() (perGroup []int64, miss int64) {
	hi := 0
	for g := 0; g < maxGroups; g++ {
		if q.groupStalls[g] != 0 {
			hi = g + 1
		}
	}
	return append([]int64(nil), q.groupStalls[:hi]...), q.missStalls
}

// Snapshot emits the queue's contention counters (statsreg convention:
// every counter field must appear here).
func (q *Queue) Snapshot() []stats.KV {
	var conflicts, wait, busy int64
	for i := range q.banks {
		conflicts += q.banks[i].Conflicts
		wait += q.banks[i].WaitCycles
		busy += q.banks[i].BusyCycles
	}
	out := []stats.KV{
		{Name: "queue_banks", Value: float64(len(q.banks))},
		{Name: "queue_occupancy_cycles", Value: float64(q.occupancy)},
		{Name: "queue_conflicts", Value: float64(conflicts)},
		{Name: "queue_wait_cycles", Value: float64(wait)},
		{Name: "queue_busy_cycles", Value: float64(busy)},
		{Name: "queue_miss_stall_cycles", Value: float64(q.missStalls)},
	}
	perGroup, _ := q.GroupStalls()
	for g, s := range perGroup {
		out = append(out, stats.KV{
			Name:  fmt.Sprintf("queue_dgroup_%d_stall_cycles", g),
			Value: float64(s),
		})
	}
	return out
}

var _ memsys.LowerLevel = (*Queue)(nil)
