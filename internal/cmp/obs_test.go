package cmp

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
)

// recorderProbe captures the raw event stream for order checks.
type recorderProbe struct {
	events []obs.Event
}

func (r *recorderProbe) Emit(e obs.Event) { r.events = append(r.events, e) }

// countingProbe is the cheapest non-nil probe for allocation checks.
type countingProbe struct {
	n int64
}

func (p *countingProbe) Emit(obs.Event) { p.n++ }

// TestCMPEventOrderCanonical runs a 2-core shared system with a
// recording probe and checks every access window in the stream against
// the canonical CMP order: Enqueue → Issue → Access → outcome →
// movement tail → Inval*, with the Issue carrying exactly the
// queue-wait implied by its own and the Enqueue's timestamps.
func TestCMPEventOrderCanonical(t *testing.T) {
	l2 := newNuRAPID(t)
	sys, err := New(l2, Config{Cores: 2, Sharing: Shared})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorderProbe{}
	sys.SetProbe(rec)
	srcs, err := sys.Sources(testApp(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(srcs, 5_000)
	if len(rec.events) == 0 {
		t.Fatal("probe captured no events")
	}

	const (
		expectEnqueue = iota
		expectIssue
		expectAccess
		expectOutcome
		inTail  // outcome seen: movement events or Inval may follow
		inInval // Inval seen: only more Invals until the next Enqueue
	)
	state := expectEnqueue
	var enq, issue obs.Event
	windows, invals, waits := 0, 0, 0
	for i, e := range rec.events {
		if state == expectEnqueue && e.Kind != obs.KindEnqueue {
			t.Fatalf("event %d: window starts with %v, want enqueue", i, e.Kind)
		}
		switch e.Kind {
		case obs.KindEnqueue:
			if state != expectEnqueue && state != inTail && state != inInval {
				t.Fatalf("event %d: enqueue in state %d", i, state)
			}
			enq = e
			windows++
			state = expectIssue
		case obs.KindIssue:
			if state != expectIssue {
				t.Fatalf("event %d: issue in state %d", i, state)
			}
			if e.Group != enq.Group || e.Core != enq.Core {
				t.Fatalf("event %d: issue bank/core %d/%d != enqueue %d/%d",
					i, e.Group, e.Core, enq.Group, enq.Core)
			}
			if e.Lat != e.Now-enq.Now {
				t.Fatalf("event %d: issue wait %d != grant %d - arrival %d",
					i, e.Lat, e.Now, enq.Now)
			}
			if e.Lat > 0 {
				waits++
			}
			issue = e
			state = expectAccess
		case obs.KindAccess:
			if state != expectAccess {
				t.Fatalf("event %d: access in state %d", i, state)
			}
			if e.Core != enq.Core || e.Now != issue.Now {
				t.Fatalf("event %d: access core %d at %d, want core %d at grant %d",
					i, e.Core, e.Now, enq.Core, issue.Now)
			}
			state = expectOutcome
		case obs.KindHit, obs.KindMiss:
			if state != expectOutcome {
				t.Fatalf("event %d: outcome %v in state %d", i, e.Kind, state)
			}
			state = inTail
		case obs.KindEvict, obs.KindPromote, obs.KindDemote, obs.KindPlace, obs.KindSwap:
			if state != inTail {
				t.Fatalf("event %d: movement %v in state %d", i, e.Kind, state)
			}
		case obs.KindInval:
			if state != inTail && state != inInval {
				t.Fatalf("event %d: inval in state %d", i, state)
			}
			if e.Core == enq.Core {
				t.Fatalf("event %d: inval shot down the writer's own core %d", i, e.Core)
			}
			invals++
			state = inInval
		default:
			t.Fatalf("event %d: unexpected kind %v", i, e.Kind)
		}
	}
	if windows < 100 {
		t.Fatalf("only %d access windows in the stream", windows)
	}
	if invals == 0 {
		t.Fatal("shared write stream produced no inval events")
	}
	if waits == 0 {
		t.Fatal("no access ever waited in the queue; contention events untested")
	}
}

// TestQueuedEmissionZeroAlloc pins the hot queued path at zero
// allocations per access with probes attached: Enqueue/Issue emission,
// the wrapped organization's events, the shoot-down scan, and the
// time-series registry's steady state (one warm window, grown tables).
func TestQueuedEmissionZeroAlloc(t *testing.T) {
	l2 := newNuRAPID(t)
	sys, err := New(l2, Config{Cores: 2, Sharing: Shared})
	if err != nil {
		t.Fatal(err)
	}
	count := &countingProbe{}
	// A huge window keeps the whole test in one epoch: rotation-driven
	// slice growth is a warm-up cost, not a steady-state one.
	ts := obs.NewTimeSeries("ts", 1<<40)
	ts.SetProfile(sys.Queue().LatencyProfile())
	sys.SetProbe(obs.Multi(count, ts))

	now := int64(0)
	access := func(i int, write bool) {
		req := memsys.Req{
			Now:   now,
			Addr:  0x4000 + uint64(i%256)*128,
			Write: write,
		}
		r := sys.fronts[i%2].Access(req)
		now = r.DoneAt + 1
	}
	for i := 0; i < 512; i++ {
		access(i, i%4 == 0) // warm caches, histograms, and core/bank tables
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		access(i, i%4 == 0)
		i++
	})
	if allocs != 0 {
		t.Fatalf("queued probed access allocates %.2f times, want 0", allocs)
	}
	if count.n == 0 {
		t.Fatal("counting probe saw no events")
	}
}

// TestQueueNilProbeZeroAlloc guards the disabled-probe fast path on the
// same queued + shoot-down route.
func TestQueueNilProbeZeroAlloc(t *testing.T) {
	l2 := newNuRAPID(t)
	sys, err := New(l2, Config{Cores: 2, Sharing: Shared})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	access := func(i int) {
		req := memsys.Req{Now: now, Addr: 0x4000 + uint64(i%256)*128, Write: i%4 == 0}
		r := sys.fronts[i%2].Access(req)
		now = r.DoneAt + 1
	}
	for i := 0; i < 512; i++ {
		access(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		access(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("unprobed queued access allocates %.2f times, want 0", allocs)
	}
}

// TestWaterfallSumsToReportedLatency is the attribution acceptance
// test: for every access through a queued NuRAPID, the five waterfall
// components must sum exactly to the reported completion time minus the
// arrival cycle — hits and misses, contended and not, across demotion
// ripples.
func TestWaterfallSumsToReportedLatency(t *testing.T) {
	// The paper's 8 MB cache never demotes under a 4 000-access working
	// set, so no promotion-ripple debt would ever build. A 4 MB cache
	// with RestrictFrames 8 pins each block to an 8-frame partition per
	// d-group; 32 blocks sharing one partition then churn through
	// demotion chains continuously.
	cfg := nurapid.DefaultConfig()
	cfg.CapacityBytes = 4 << 20
	cfg.RestrictFrames = 8
	l2, err := nurapid.New(cfg, cacti.Default(), memsys.NewMemory(128))
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(l2, QueueConfig{Banks: 4, BlockBytes: 128, Occupancy: 4, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := obs.NewTimeSeries("ts", 0)
	ts.SetProfile(q.LatencyProfile())
	q.SetProbe(ts)

	prev, prevN := ts.WaterfallTotals()
	now := int64(0)
	prevAddr := uint64(0)
	// A mix of reuse (hits, promotions) and fresh blocks (misses,
	// demotion chains), arriving in bursts of three at one cycle: the
	// second collides with the first's queue bank (real queue wait), the
	// third lands on another bank and finds the organization's port busy
	// (real bank-busy time).
	for i := 0; i < 4_000; i++ {
		addr := 0x1000 + uint64((i*7)%512)*128
		switch {
		case i%3 == 1:
			// Same bank as the predecessor: the hash is
			// addr >> blockShift mod banks, so +banks*blocks*k keeps it.
			addr = prevAddr + 16*4*128
		case i%15 == 0:
			// Hot partition: blocks 1024 sets apart share a frame
			// partition (set % nParts), so cycling 32 of them through
			// 8 frames per d-group forces demotion chains whose port
			// debt the rest of the burst then rides (ripple).
			addr = 0x8000_0000 + uint64((i/15)%32)*1024*128
		}
		prevAddr = addr
		req := memsys.Req{Now: now, Addr: addr, Write: i%5 == 0, Core: i % 2}
		r := q.Access(req)
		ts.Flush()
		comps, n := ts.WaterfallTotals()
		if n != prevN+1 {
			t.Fatalf("access %d: not attributed (profile mode lost)", i)
		}
		var sum int64
		for k, v := range comps {
			sum += v - prev[k]
		}
		if want := r.DoneAt - req.Now; sum != want {
			t.Fatalf("access %d (addr %#x write %v): components sum %d != DoneAt-Now %d",
				i, addr, req.Write, sum, want)
		}
		prev, prevN = comps, n
		if i%3 == 2 { // the next burst starts after this one drains
			now = r.DoneAt + int64(i%9)
		}
	}
	comps, n := ts.WaterfallTotals()
	if n != 4_000 {
		t.Fatalf("attributed %d accesses, want 4000", n)
	}
	for k, name := range obs.WaterfallNames {
		if comps[k] < 0 {
			t.Fatalf("component %s went negative: %d", name, comps[k])
		}
	}
	// The workload must have exercised every component.
	for _, k := range []int{obs.WfQueueWait, obs.WfBankBusy, obs.WfTagProbe, obs.WfDataAccess, obs.WfPromotionRipple} {
		if comps[k] == 0 {
			t.Fatalf("component %s never accumulated; workload too gentle", obs.WaterfallNames[k])
		}
	}
}
