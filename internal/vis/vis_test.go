package vis

import (
	"strings"
	"testing"
)

func TestStackedChartRender(t *testing.T) {
	c := NewStackedChart("Distribution", "g1", "g2", "miss")
	c.AddRow("applu", 0.6, 0.3, 0.1)
	c.AddRow("mcf", 0.4, 0.4, 0.2)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Distribution", "applu", "mcf", "[#] g1", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStackedChartProportions(t *testing.T) {
	c := NewStackedChart("", "a", "b")
	c.Width = 10
	c.AddRow("x", 0.5, 0.5)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	row := lines[len(lines)-1]
	if !strings.Contains(row, "#####=====") {
		t.Fatalf("50/50 split not rendered: %q", row)
	}
}

func TestStackedChartClampsOverflow(t *testing.T) {
	c := NewStackedChart("", "a", "b")
	c.Width = 10
	c.AddRow("x", 0.9, 0.9) // overfull row must not exceed the bar width
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	row := lines[len(lines)-1]
	bar := row[strings.Index(row, "#"):]
	fill := strings.TrimRight(strings.Split(bar, " ")[0], " ")
	if len(fill) > 10 {
		t.Fatalf("bar overflows width: %q", row)
	}
}

func TestStackedChartRowMismatchPanics(t *testing.T) {
	c := NewStackedChart("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row must panic")
		}
	}()
	c.AddRow("x", 0.5)
}

func TestStackedChartNegativeClamped(t *testing.T) {
	c := NewStackedChart("", "a")
	c.AddRow("x", -0.5)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	row := lines[len(lines)-1] // skip the legend, which also contains '#'
	if strings.Contains(row, "#") {
		t.Fatalf("negative fraction must render empty: %q", row)
	}
}

func TestBarChartRender(t *testing.T) {
	c := NewBarChart("Performance relative to base", "x")
	c.Reference = 1.0
	c.AddRow("dnuca", 1.04)
	c.AddRow("nurapid", 1.06)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Performance", "dnuca", "1.040x", "1.060x", "marks 1.000x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBarChartScaling(t *testing.T) {
	c := NewBarChart("", "")
	c.Width = 10
	c.AddRow("half", 0.5)
	c.AddRow("full", 1.0)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if !strings.Contains(lines[0], "#####     ") {
		t.Fatalf("half bar wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "##########") {
		t.Fatalf("full bar wrong: %q", lines[1])
	}
}

func TestBarChartEmptyAndZeroMax(t *testing.T) {
	c := NewBarChart("t", "")
	c.AddRow("zero", 0)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "zero") {
		t.Fatal("zero row must still render")
	}
}

var _ Chart = (*StackedChart)(nil)
var _ Chart = (*BarChart)(nil)
