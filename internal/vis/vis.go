// Package vis renders the paper's two figure styles as plain-text
// charts: stacked horizontal bars for access distributions (Figures 4,
// 5, 7) and grouped horizontal bars for relative performance and energy
// (Figures 6, 8, 9, 10, 11). The experiment drivers attach a chart to
// each figure; cmd/experiments prints it alongside the data table.
package vis

import (
	"fmt"
	"io"
	"strings"
)

// Chart is anything that can render itself as text.
type Chart interface {
	Render(w io.Writer) error
}

// segmentRunes fills stacked-bar segments in order; the final segment
// (misses, in the paper's figures) uses the darkest fill.
var segmentRunes = []byte{'#', '=', '+', '-', ':', '.', '~', '%'}

// StackedChart draws one stacked bar per row, each split into the same
// ordered segments (e.g. d-group 1..4 hits, then misses).
type StackedChart struct {
	Title    string
	Segments []string // legend, in stacking order
	Width    int      // bar width in characters (default 50)
	rows     []stackedRow
}

type stackedRow struct {
	label string
	frac  []float64
}

// NewStackedChart creates a chart with the given legend.
func NewStackedChart(title string, segments ...string) *StackedChart {
	return &StackedChart{Title: title, Segments: append([]string(nil), segments...)}
}

// AddRow appends one bar. fracs must have one entry per segment; values
// are clamped to [0, 1] and the bar is proportional to their sum.
func (c *StackedChart) AddRow(label string, fracs ...float64) {
	if len(fracs) != len(c.Segments) {
		panic(fmt.Sprintf("vis: row %q has %d segments, chart has %d",
			label, len(fracs), len(c.Segments)))
	}
	c.rows = append(c.rows, stackedRow{label: label, frac: append([]float64(nil), fracs...)})
}

// Render implements Chart.
func (c *StackedChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	labelW := 10
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	// Legend.
	b.WriteString(strings.Repeat(" ", labelW+2))
	for i, s := range c.Segments {
		fmt.Fprintf(&b, "[%c] %s  ", segmentRunes[i%len(segmentRunes)], s)
	}
	b.WriteByte('\n')
	for _, r := range c.rows {
		fmt.Fprintf(&b, "%-*s  ", labelW, r.label)
		drawn := 0
		total := 0.0
		for i, f := range r.frac {
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			total += f
			n := int(f*float64(width) + 0.5)
			if drawn+n > width {
				n = width - drawn
			}
			b.WriteString(strings.Repeat(string(segmentRunes[i%len(segmentRunes)]), n))
			drawn += n
		}
		fmt.Fprintf(&b, "%s %5.1f%%\n", strings.Repeat(" ", width-drawn), total*100)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart draws one horizontal bar per row against a shared scale,
// marking a reference value (e.g. the base case at 1.0).
type BarChart struct {
	Title     string
	Unit      string
	Width     int     // bar width in characters (default 50)
	Reference float64 // draw a marker at this value; 0 disables
	rows      []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart creates a bar chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// AddRow appends one bar.
func (c *BarChart) AddRow(label string, value float64) {
	c.rows = append(c.rows, barRow{label: label, value: value})
}

// Render implements Chart.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	labelW := 10
	maxV := c.Reference
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
		if r.value > maxV {
			maxV = r.value
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	refCol := -1
	if c.Reference > 0 {
		refCol = int(c.Reference / maxV * float64(width))
		if refCol >= width {
			refCol = width - 1
		}
	}
	for _, r := range c.rows {
		n := int(r.value / maxV * float64(width))
		if n > width {
			n = width
		}
		bar := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if refCol >= 0 {
			if refCol < n {
				bar[refCol] = '|'
			} else {
				bar[refCol] = '.'
			}
		}
		fmt.Fprintf(&b, "%-*s  %s %.3f%s\n", labelW, r.label, bar, r.value, c.Unit)
	}
	if refCol >= 0 {
		fmt.Fprintf(&b, "%-*s  %s marks %.3f%s\n", labelW, "", strings.Repeat(" ", refCol)+"^", c.Reference, c.Unit)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
