package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(NewRNG(1), 1.0, 100)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Draw = %d out of [0,100)", v)
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		s float64
		n int
	}{{1.0, 0}, {1.0, -3}, {-0.5, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(s=%v, n=%d) must panic", tc.s, tc.n)
				}
			}()
			NewZipf(NewRNG(1), tc.s, tc.n)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	// With s=1 over 1000 items, rank 0 must be drawn far more often than
	// rank 500.
	z := NewZipf(NewRNG(2), 1.0, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < 10*counts[500] {
		t.Fatalf("rank 0 drawn %d times, rank 500 %d times; want strong skew",
			counts[0], counts[500])
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf(NewRNG(3), 0, 10)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("rank %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(NewRNG(4), 0.8, 257)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Fatal("out-of-range Prob must be 0")
	}
}

func TestZipfSingleton(t *testing.T) {
	z := NewZipf(NewRNG(5), 1.2, 1)
	for i := 0; i < 100; i++ {
		if z.Draw() != 0 {
			t.Fatal("singleton domain must always draw 0")
		}
	}
}

func TestZipfMatchesTheory(t *testing.T) {
	// Empirical frequency of rank 0 should match its analytic mass.
	z := NewZipf(NewRNG(6), 1.0, 50)
	const n = 400000
	hits := 0
	for i := 0; i < n; i++ {
		if z.Draw() == 0 {
			hits++
		}
	}
	want := z.Prob(0)
	got := float64(hits) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank-0 frequency %v, analytic %v", got, want)
	}
}

func TestZipfQuickDrawInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%1000) + 1
		s := float64(sRaw%30) / 10.0
		z := NewZipf(NewRNG(seed), s, n)
		for i := 0; i < 50; i++ {
			v := z.Draw()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
