package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampInt(t *testing.T) {
	if ClampInt(5, 1, 3) != 3 || ClampInt(-5, 1, 3) != 1 || ClampInt(2, 1, 3) != 2 {
		t.Fatal("ClampInt misbehaves")
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int64{1, 2, 4, 1024, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []int64{0, -1, -2, 3, 6, 1023} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {0, -1}, {-5, -1}}
	for _, c := range cases {
		if got := Log2(c.v); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 5, 2}, {11, 5, 3}, {0, 5, 0}, {1, 5, 1}, {5, 1, 5},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) must be 0")
	}
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	got = GeoMean([]float64{2, 2, 2})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(2,2,2) = %v, want 2", got)
	}
}

func TestGeoMeanLEArithmeticMean(t *testing.T) {
	// Property: AM-GM inequality for positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%1000) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2IsPow2Consistency(t *testing.T) {
	// Property: for powers of two, 1<<Log2(v) == v.
	f := func(shift uint8) bool {
		s := int(shift % 62)
		v := int64(1) << s
		return IsPow2(v) && Log2(v) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
