package mathx

import "math"

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int64) bool {
	return v > 0 && v&(v-1) == 0
}

// Log2 returns floor(log2(v)) for v > 0, and -1 for v <= 0.
func Log2(v int64) int {
	if v <= 0 {
		return -1
	}
	n := -1
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all must be > 0), or 0 for an
// empty slice. Relative-performance summaries in the paper average across
// benchmarks; geometric mean is the conventional aggregator for ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
