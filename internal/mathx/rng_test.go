package mathx

import (
	"testing"
	"testing/quick"
)

func TestNewRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must be remapped to a working state")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsIndependent(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical draws out of 1000", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := NewRNG(9)
	const n = int64(1) << 40
	for i := 0; i < 10000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n = %d out of range", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var below int
	for i := 0; i < n; i++ {
		if r.Float64() < 0.5 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("P(x < 0.5) = %v, want ~0.5", frac)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) must always be false")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) must always be true")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %v, want ~0.25", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// Drawing from the child must not change what the parent produces
	// relative to a parent that split but never used the child.
	parent2 := NewRNG(99)
	_ = parent2.Split()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != parent2.Uint64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}

func TestUint64QuickNoShortCycles(t *testing.T) {
	// Property: for any seed, the first 64 draws are distinct (a short
	// cycle or a stuck state would repeat almost immediately).
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		seen := make(map[uint64]bool, 64)
		for i := 0; i < 64; i++ {
			v := r.Uint64()
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
