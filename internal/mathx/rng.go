// Package mathx provides the deterministic random-number and sampling
// primitives shared by every simulator package.
//
// All randomness in the repository flows through RNG so that a run is
// reproducible bit-for-bit from a single seed. The generator is a
// xorshift64* variant: tiny state, no allocation, and fast enough to sit
// on the per-access hot path of the workload generators.
package mathx

// RNG is a small deterministic pseudo-random generator (xorshift64*).
// The zero value is invalid; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Scramble the low-entropy seeds users tend to pass (0, 1, 2, ...)
	// so that nearby seeds produce unrelated streams.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
//nurapid:hotpath
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("mathx: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits, the standard construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split derives an independent generator from r. Deriving rather than
// sharing keeps sub-streams (e.g. one per benchmark application)
// decoupled: consuming numbers from one cannot perturb another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}
