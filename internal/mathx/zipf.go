package mathx

import "math"

// Zipf draws integers in [0, N) with probability proportional to
// 1/(rank+1)^S. It is used by the workload generators to model the
// temporal-locality skew of a benchmark's hot working set: rank 0 is the
// hottest cache block, rank N-1 the coldest.
//
// The implementation precomputes the CDF once and samples by binary
// search, which is exact and allocation-free per draw. N is bounded by
// the hot-region block count (tens of thousands), so the table is cheap.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a sampler over [0, n) with exponent s >= 0.
// s == 0 degenerates to the uniform distribution. It panics if n <= 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("mathx: NewZipf called with non-positive n")
	}
	if s < 0 {
		panic("mathx: NewZipf called with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1.0 // guard against float round-off at the tail
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next sample in [0, N()).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i (for tests and analysis).
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
