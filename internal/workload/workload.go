// Package workload synthesizes the instruction and memory-reference
// streams the simulations run on.
//
// The paper evaluated 15 SPEC2K applications (Table 3), classified into
// high-load and low-load by their L2 accesses per thousand instructions.
// SPEC reference traces are not available here, so each application is
// modeled by a small set of parameters — working-set size, hot-region
// size and skew, streaming fraction, instruction mix, and branch
// behaviour — chosen so the generated stream reproduces the two
// properties the evaluation depends on: L2 access intensity (after L1
// filtering) and footprint pressure on the d-groups. Table 3's surviving
// anchor values (base IPC, accesses per kilo-instruction) are carried in
// the model for comparison against measured results; values lost to the
// source text's OCR are reconstructed and flagged in EXPERIMENTS.md.
package workload

import "fmt"

// Kind classifies one dynamic instruction.
type Kind uint8

const (
	// ALU is any non-memory, non-branch instruction.
	ALU Kind = iota
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch may redirect fetch.
	Branch
)

func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Instr is one dynamic instruction.
type Instr struct {
	Kind Kind
	PC   uint64 // fetch address
	Addr uint64 // effective address for Load/Store, else 0
	// Mispredicted marks a branch the predictor got wrong; the model
	// folds the predictor's accuracy into the stream.
	Mispredicted bool
}

// Source produces a dynamic instruction stream. Next returns false when
// the stream is exhausted (generators never exhaust; trace readers do).
type Source interface {
	Next() (Instr, bool)
}

// Class is the paper's load classification.
type Class int

const (
	// HighLoad applications access the L2 frequently.
	HighLoad Class = iota
	// LowLoad applications rarely miss the L1s.
	LowLoad
)

func (c Class) String() string {
	if c == HighLoad {
		return "high"
	}
	return "low"
}

// App is one modeled benchmark.
type App struct {
	Name  string
	FP    bool // floating-point vs integer suite
	Class Class

	// Table 3 anchors (documentation and comparison only — the
	// generator is calibrated toward these, not driven by them).
	TableIPC  float64 // base-case IPC
	TableAPKI float64 // L2 accesses per 1000 instructions

	// Generator parameters.
	WorkingSetKB int     // total data footprint
	HotKB        int     // skewed-reuse region
	HotFrac      float64 // fraction of references into the hot region
	ZipfS        float64 // skew of hot-region block popularity
	StreamFrac   float64 // fraction of references that stream sequentially
	ColumnFrac   float64 // fraction of references walking strided columns
	LoadFrac     float64 // fraction of instructions that load
	StoreFrac    float64 // fraction of instructions that store
	BranchFrac   float64 // fraction of instructions that branch
	Mispredict   float64 // branch misprediction rate
	CodeKB       int     // instruction footprint
}

// Apps returns the 15-application roster modeled after the paper's
// Table 3: 12 high-load and 3 low-load SPEC2K benchmarks.
func Apps() []App {
	return []App{
		// High-load floating point.
		{Name: "applu", FP: true, Class: HighLoad, TableIPC: 0.9, TableAPKI: 42,
			WorkingSetKB: 2560, HotKB: 1536, HotFrac: 0.60, ZipfS: 0.55, StreamFrac: 0.30, ColumnFrac: 0.20,
			LoadFrac: 0.29, StoreFrac: 0.14, BranchFrac: 0.07, Mispredict: 0.015, CodeKB: 96},
		{Name: "apsi", FP: true, Class: HighLoad, TableIPC: 1.0, TableAPKI: 25,
			WorkingSetKB: 2048, HotKB: 1280, HotFrac: 0.70, ZipfS: 0.75, StreamFrac: 0.20, ColumnFrac: 0.15,
			LoadFrac: 0.27, StoreFrac: 0.13, BranchFrac: 0.08, Mispredict: 0.02, CodeKB: 128},
		{Name: "art", FP: true, Class: HighLoad, TableIPC: 0.5, TableAPKI: 47,
			WorkingSetKB: 3584, HotKB: 3072, HotFrac: 0.85, ZipfS: 0.25, StreamFrac: 0.25, ColumnFrac: 0.15,
			LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.09, Mispredict: 0.01, CodeKB: 32},
		{Name: "equake", FP: true, Class: HighLoad, TableIPC: 0.7, TableAPKI: 39,
			WorkingSetKB: 2048, HotKB: 1536, HotFrac: 0.65, ZipfS: 0.50, StreamFrac: 0.30, ColumnFrac: 0.15,
			LoadFrac: 0.31, StoreFrac: 0.12, BranchFrac: 0.08, Mispredict: 0.02, CodeKB: 64},
		{Name: "galgel", FP: true, Class: HighLoad, TableIPC: 0.9, TableAPKI: 28,
			WorkingSetKB: 1536, HotKB: 1024, HotFrac: 0.70, ZipfS: 0.70, StreamFrac: 0.25, ColumnFrac: 0.20,
			LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.07, Mispredict: 0.015, CodeKB: 96},
		{Name: "mgrid", FP: true, Class: HighLoad, TableIPC: 0.8, TableAPKI: 30,
			WorkingSetKB: 3072, HotKB: 1536, HotFrac: 0.55, ZipfS: 0.45, StreamFrac: 0.40, ColumnFrac: 0.25,
			LoadFrac: 0.30, StoreFrac: 0.13, BranchFrac: 0.05, Mispredict: 0.01, CodeKB: 64},
		// High-load integer.
		{Name: "bzip2", FP: false, Class: HighLoad, TableIPC: 1.1, TableAPKI: 18,
			WorkingSetKB: 1536, HotKB: 768, HotFrac: 0.75, ZipfS: 0.80, StreamFrac: 0.20, ColumnFrac: 0.05,
			LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.13, Mispredict: 0.05, CodeKB: 64},
		{Name: "gcc", FP: false, Class: HighLoad, TableIPC: 1.0, TableAPKI: 16,
			WorkingSetKB: 1024, HotKB: 512, HotFrac: 0.70, ZipfS: 0.85, StreamFrac: 0.10, ColumnFrac: 0.03,
			LoadFrac: 0.25, StoreFrac: 0.13, BranchFrac: 0.15, Mispredict: 0.06, CodeKB: 512},
		{Name: "mcf", FP: false, Class: HighLoad, TableIPC: 0.5, TableAPKI: 37,
			WorkingSetKB: 6144, HotKB: 2560, HotFrac: 0.60, ZipfS: 0.40, StreamFrac: 0.05, ColumnFrac: 0.05,
			LoadFrac: 0.33, StoreFrac: 0.10, BranchFrac: 0.17, Mispredict: 0.07, CodeKB: 32},
		{Name: "parser", FP: false, Class: HighLoad, TableIPC: 0.9, TableAPKI: 22,
			WorkingSetKB: 1536, HotKB: 768, HotFrac: 0.70, ZipfS: 0.75, StreamFrac: 0.10, ColumnFrac: 0.03,
			LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.16, Mispredict: 0.06, CodeKB: 128},
		{Name: "twolf", FP: false, Class: HighLoad, TableIPC: 0.9, TableAPKI: 20,
			WorkingSetKB: 1024, HotKB: 640, HotFrac: 0.75, ZipfS: 0.70, StreamFrac: 0.05, ColumnFrac: 0.05,
			LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.14, Mispredict: 0.06, CodeKB: 96},
		{Name: "vpr", FP: false, Class: HighLoad, TableIPC: 0.9, TableAPKI: 18,
			WorkingSetKB: 1024, HotKB: 640, HotFrac: 0.72, ZipfS: 0.72, StreamFrac: 0.08, ColumnFrac: 0.05,
			LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.13, Mispredict: 0.05, CodeKB: 96},
		// Low-load.
		{Name: "gap", FP: false, Class: LowLoad, TableIPC: 1.3, TableAPKI: 5,
			WorkingSetKB: 1024, HotKB: 512, HotFrac: 0.85, ZipfS: 0.95, StreamFrac: 0.10, ColumnFrac: 0.02,
			LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.13, Mispredict: 0.04, CodeKB: 128},
		{Name: "gzip", FP: false, Class: LowLoad, TableIPC: 1.4, TableAPKI: 4,
			WorkingSetKB: 768, HotKB: 384, HotFrac: 0.90, ZipfS: 1.00, StreamFrac: 0.15, ColumnFrac: 0.02,
			LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.12, Mispredict: 0.04, CodeKB: 64},
		{Name: "wupwise", FP: true, Class: LowLoad, TableIPC: 1.3, TableAPKI: 6,
			WorkingSetKB: 1536, HotKB: 768, HotFrac: 0.85, ZipfS: 0.90, StreamFrac: 0.20, ColumnFrac: 0.10,
			LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.08, Mispredict: 0.02, CodeKB: 96},
	}
}

// HighLoadApps returns just the high-load subset.
func HighLoadApps() []App {
	var out []App
	for _, a := range Apps() {
		if a.Class == HighLoad {
			out = append(out, a)
		}
	}
	return out
}

// Streaming returns a synthetic streaming-heavy application: most of its
// references sweep a working set three times the 8-MB L2, so the swept
// blocks are genuinely dead on arrival (evicted before the scan wraps),
// while a small hot set keeps strong reuse — the separation the
// reuse-distance predictor exists to learn. It is not part of the
// paper's Table 3 roster (Apps() excludes it), but ByName resolves it
// and the predictor study runs it alongside the roster.
func Streaming() App {
	return App{
		Name: "stream", FP: true, Class: HighLoad, TableIPC: 0.7, TableAPKI: 45,
		WorkingSetKB: 24576, HotKB: 512, HotFrac: 0.22, ZipfS: 0.60, StreamFrac: 0.65, ColumnFrac: 0.15,
		LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.06, Mispredict: 0.01, CodeKB: 32,
	}
}

// ByName finds an application model by name, including the synthetic
// streaming application outside the Table 3 roster.
func ByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	if s := Streaming(); s.Name == name {
		return s, true
	}
	return App{}, false
}

// Validate checks that the model's fractions are sane.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: empty app name")
	}
	if a.WorkingSetKB <= 0 || a.HotKB <= 0 || a.HotKB > a.WorkingSetKB {
		return fmt.Errorf("workload %s: bad footprint (ws=%d hot=%d)", a.Name, a.WorkingSetKB, a.HotKB)
	}
	if a.CodeKB <= 0 {
		return fmt.Errorf("workload %s: bad code footprint", a.Name)
	}
	sum := a.LoadFrac + a.StoreFrac + a.BranchFrac
	if a.LoadFrac < 0 || a.StoreFrac < 0 || a.BranchFrac < 0 || sum >= 1 {
		return fmt.Errorf("workload %s: instruction mix sums to %v", a.Name, sum)
	}
	for _, f := range []float64{a.HotFrac, a.StreamFrac, a.ColumnFrac, a.Mispredict, a.ZipfS} {
		if f < 0 || f > 2.0 {
			return fmt.Errorf("workload %s: parameter %v out of range", a.Name, f)
		}
	}
	if a.StreamFrac+a.ColumnFrac >= 1 {
		return fmt.Errorf("workload %s: stream+column fractions %v leave no room",
			a.Name, a.StreamFrac+a.ColumnFrac)
	}
	return nil
}
