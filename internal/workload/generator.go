package workload

import (
	"fmt"

	"nurapid/internal/mathx"
)

// Memory-map bases keep the synthetic regions disjoint.
const (
	codeBase  uint64 = 0x0040_0000 // 4 MB
	dataBase  uint64 = 0x1000_0000 // 256 MB
	stackBase uint64 = 0x7F00_0000 // ~2 GB
)

// stackBytes is the size of the L1-resident near-reuse region (stack
// frames, register spills, innermost-loop temporaries). It fits well
// inside the 64-KB L1, so references to it model the short-term locality
// that keeps real L1 miss rates low.
const stackBytes = 16 << 10

// blockBytes is the granularity of the popularity model; offsets within a
// block are drawn uniformly.
const blockBytes = 128

// Generator synthesizes an infinite instruction stream for one App. It
// is deterministic for a given (app, seed) pair.
type Generator struct {
	app App
	rng *mathx.RNG

	wsBlocks int64
	hotBlks  int64
	l1Frac   float64 // fraction of references to the L1-resident region

	// Tile phase model: the hot region is worked on one tile at a time
	// (a program phase); the active tile shifts every tileLife
	// references. This moving-locus behaviour is what makes initial
	// placement and promotion policy matter: newly hot blocks start
	// cold (or demoted) in every organization.
	tileZipf   *mathx.Zipf
	tileBlocks int64
	nTiles     int64
	tileIdx    int64
	tileLeft   int64
	tileLife   int64

	// Column-walk model: strided accesses (matrix columns) that
	// concentrate many blocks into few cache sets — the hot-set
	// behaviour behind the paper's set-associative placement problem.
	colStride uint64
	colBase   uint64
	colK      int
	colPass   int

	codeZipf *mathx.Zipf // jump-target skew over code blocks

	// Streaming model: a head pointer walks a region several times the
	// working set (input data read once per pass), with reuse hits into
	// the megabyte-scale window trailing the head (stencil-style).
	streamBlocks int64
	streamPos    int64

	pc        uint64
	codeBytes uint64
	runLen    int // remaining instructions before the next fetch jump
	generated int64
}

// Streaming geometry: the stream region is streamScale working sets
// long; each stream reference advances the head with probability
// streamAdvance (a fresh block, a cache miss at steady state) and
// otherwise re-touches a block within the trailing streamWindow.
const (
	streamScale   = 4
	streamAdvance = 0.15
	streamWindow  = 4096 // blocks: a 512-KB trailing reuse window
)

// Column-walk geometry: a column touches colLen blocks separated by
// colStride bytes and is walked colPasses times before moving on. The
// stride is a large power of two (big matrix rows), so column blocks
// alias into few cache sets — the access pattern that creates the hot
// sets behind the paper's set-associative placement problem.
const (
	defaultColStride = 512 << 10
	colLen           = 12
	colPasses        = 6
)

// NewGenerator builds a generator for app seeded with seed.
func NewGenerator(app App, seed uint64) (*Generator, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(seed ^ hashName(app.Name))
	hotBlks := int64(app.HotKB) * 1024 / blockBytes

	tileKB := mathx.ClampInt(app.HotKB/3, 32, 512)
	if tileKB > app.HotKB {
		tileKB = app.HotKB
	}
	tileBlocks := int64(tileKB) * 1024 / blockBytes
	nTiles := hotBlks / tileBlocks
	if nTiles < 1 {
		nTiles = 1
	}

	// The column stride shrinks for small working sets, but stays a
	// power of two so the set aliasing survives.
	wsBytes := uint64(app.WorkingSetKB) * 1024
	stride := uint64(defaultColStride)
	for stride*colLen > wsBytes && stride > blockBytes {
		stride /= 2
	}

	g := &Generator{
		app:          app,
		rng:          rng,
		wsBlocks:     int64(app.WorkingSetKB) * 1024 / blockBytes,
		streamBlocks: streamScale * int64(app.WorkingSetKB) * 1024 / blockBytes,
		hotBlks:      hotBlks,
		l1Frac:       l1ResidentFraction(app),
		tileZipf:     mathx.NewZipf(rng.Split(), app.ZipfS, int(tileBlocks)),
		tileBlocks:   tileBlocks,
		nTiles:       nTiles,
		tileLife:     2 * tileBlocks, // ~two passes over the tile per phase
		colStride:    stride,
		colPass:      colPasses, // force a fresh column on first use
		codeBytes:    uint64(app.CodeKB) * 1024,
		codeZipf:     mathx.NewZipf(rng.Split(), 1.2, app.CodeKB*1024/64),
		pc:           codeBase,
	}
	return g, nil
}

// MustNewGenerator panics on an invalid app model.
func MustNewGenerator(app App, seed uint64) *Generator {
	g, err := NewGenerator(app, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// App returns the generated application model.
func (g *Generator) App() App { return g.app }

// Generated returns the number of instructions produced so far.
func (g *Generator) Generated() int64 { return g.generated }

// Next implements Source; generators never exhaust.
func (g *Generator) Next() (Instr, bool) {
	g.generated++
	in := Instr{PC: g.nextPC()}
	r := g.rng.Float64()
	switch {
	case r < g.app.LoadFrac:
		in.Kind = Load
		in.Addr = g.dataAddr()
	case r < g.app.LoadFrac+g.app.StoreFrac:
		in.Kind = Store
		in.Addr = g.dataAddr()
	case r < g.app.LoadFrac+g.app.StoreFrac+g.app.BranchFrac:
		in.Kind = Branch
		in.Mispredicted = g.rng.Bool(g.app.Mispredict)
	default:
		in.Kind = ALU
	}
	return in, true
}

// apkiScale inflates the generated L2 access rate above the paper's
// Table 3 figure. The paper simulated 5 billion instructions per run;
// this reproduction defaults to a few million, and at the paper's exact
// APKI that yields too few L2 accesses to exercise an 8-MB cache's
// steady state. Scaling the L2 intensity compresses the same cache
// behaviour into a feasible run length; EXPERIMENTS.md documents it.
const apkiScale = 1.5

// l1ResidentFraction calibrates the share of references that hit the
// L1-resident near-reuse region so the generated stream lands near
// apkiScale times the app's Table 3 L2 accesses per kilo-instruction.
// The remaining references go to the working set and mostly miss the
// 64-KB L1; the 1.25 divisor accounts for the L1 writebacks and I-fetch
// misses that also reach the L2.
func l1ResidentFraction(app App) float64 {
	memRefsPer1000 := (app.LoadFrac + app.StoreFrac) * 1000
	if memRefsPer1000 <= 0 {
		return 0
	}
	targetMisses := app.TableAPKI * apkiScale / 1.25
	return mathx.Clamp(1-targetMisses/memRefsPer1000, 0, 0.99)
}

// nextPC advances the fetch stream: mostly sequential 4-byte
// instructions, with occasional jumps whose targets follow a skewed
// (hot-loop) distribution over the code footprint.
func (g *Generator) nextPC() uint64 {
	if g.runLen <= 0 {
		g.pc = codeBase + uint64(g.codeZipf.Draw())*64
		g.runLen = 8 + g.rng.Intn(24) // basic-block run
	}
	g.runLen--
	pc := g.pc
	g.pc += 4
	if g.pc >= codeBase+g.codeBytes {
		g.pc = codeBase
	}
	return pc
}

// dataAddr draws one effective address. Most references (the calibrated
// l1Frac) go to the small L1-resident region; the rest follow the
// mixture model over the working set: strided column walks, sequential
// streaming, skewed reuse within the active hot tile, or a uniform cold
// reference.
func (g *Generator) dataAddr() uint64 {
	if g.rng.Float64() < g.l1Frac {
		return stackBase + uint64(g.rng.Intn(stackBytes/8))*8
	}
	r := g.rng.Float64()
	switch mix := g.app.StreamFrac + g.app.ColumnFrac; {
	case r < g.app.ColumnFrac:
		return g.columnAddr()
	case r < mix:
		return g.streamAddr()
	case r < mix+(1-mix)*g.app.HotFrac:
		return g.blockAddr(g.tileAddr())
	default:
		return g.blockAddr(g.rng.Int63n(g.wsBlocks))
	}
}

// blockAddr converts a working-set block index into a byte address with
// a random word offset.
func (g *Generator) blockAddr(block int64) uint64 {
	return dataBase + uint64(block)*blockBytes + uint64(g.rng.Intn(blockBytes/8))*8
}

// streamAddr advances the streaming head or re-touches its trailing
// window. Stream blocks live beyond the working-set region so streamed
// input keeps churning the cache the way read-mostly passes over large
// inputs do.
func (g *Generator) streamAddr() uint64 {
	if g.rng.Bool(streamAdvance) {
		g.streamPos++
		if g.streamPos >= g.streamBlocks {
			g.streamPos = 0
		}
	}
	blk := g.streamPos
	if lag := int64(g.rng.Intn(streamWindow)); g.rng.Bool(0.6) && lag <= blk {
		blk -= lag
	}
	base := dataBase + uint64(g.wsBlocks)*blockBytes
	return base + uint64(blk)*blockBytes + uint64(g.rng.Intn(blockBytes/8))*8
}

// tileAddr draws a block from the active hot tile, shifting to a new
// tile when the current phase expires.
func (g *Generator) tileAddr() int64 {
	if g.tileLeft <= 0 {
		if g.nTiles > 1 {
			// Always move to a different tile, so the previous phase's
			// blocks go dormant and must be re-promoted when their tile
			// becomes hot again.
			g.tileIdx = (g.tileIdx + 1 + int64(g.rng.Intn(int(g.nTiles-1)))) % g.nTiles
		}
		g.tileLeft = g.tileLife
	}
	g.tileLeft--
	return g.tileIdx*g.tileBlocks + int64(g.tileZipf.Draw())
}

// columnAddr advances the strided column walk, starting a fresh column
// after colPasses traversals.
func (g *Generator) columnAddr() uint64 {
	if g.colPass >= colPasses {
		span := g.colStride * colLen
		limit := uint64(g.wsBlocks)*blockBytes - span
		if limit == 0 {
			limit = blockBytes
		}
		g.colBase = dataBase + uint64(g.rng.Int63n(int64(limit)))/blockBytes*blockBytes
		g.colK = 0
		g.colPass = 0
	}
	addr := g.colBase + uint64(g.colK)*g.colStride
	g.colK++
	if g.colK >= colLen {
		g.colK = 0
		g.colPass++
	}
	return addr
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

var _ Source = (*Generator)(nil)

// Limited wraps a Source and stops after n instructions; useful for
// bounding trace capture.
type Limited struct {
	src  Source
	left int64
}

// Limit returns a Source producing at most n instructions from src.
func Limit(src Source, n int64) *Limited {
	if n < 0 {
		panic(fmt.Sprintf("workload: negative limit %d", n))
	}
	return &Limited{src: src, left: n}
}

// Next implements Source.
func (l *Limited) Next() (Instr, bool) {
	if l.left <= 0 {
		return Instr{}, false
	}
	l.left--
	return l.src.Next()
}
