package workload

import (
	"testing"
)

func TestAppsRoster(t *testing.T) {
	apps := Apps()
	if len(apps) != 15 {
		t.Fatalf("roster has %d apps, want 15", len(apps))
	}
	high, low := 0, 0
	names := make(map[string]bool)
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if names[a.Name] {
			t.Errorf("duplicate app %s", a.Name)
		}
		names[a.Name] = true
		if a.Class == HighLoad {
			high++
		} else {
			low++
		}
	}
	if high != 12 || low != 3 {
		t.Fatalf("class split %d/%d, want 12/3", high, low)
	}
}

func TestHighLoadApps(t *testing.T) {
	for _, a := range HighLoadApps() {
		if a.Class != HighLoad {
			t.Fatalf("%s is not high-load", a.Name)
		}
	}
	if len(HighLoadApps()) != 12 {
		t.Fatal("want 12 high-load apps")
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("mcf")
	if !ok || a.Name != "mcf" {
		t.Fatal("mcf must be found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("unknown app must not be found")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	base, _ := ByName("gzip")
	bad := []func(*App){
		func(a *App) { a.Name = "" },
		func(a *App) { a.WorkingSetKB = 0 },
		func(a *App) { a.HotKB = a.WorkingSetKB + 1 },
		func(a *App) { a.CodeKB = 0 },
		func(a *App) { a.LoadFrac = 0.9 }, // mix sums >= 1
		func(a *App) { a.Mispredict = -0.1 },
	}
	for i, f := range bad {
		a := base
		f(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if ALU.String() != "alu" || Load.String() != "load" || Store.String() != "store" ||
		Branch.String() != "branch" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
	if HighLoad.String() != "high" || LowLoad.String() != "low" {
		t.Fatal("class strings wrong")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	app, _ := ByName("applu")
	g1 := MustNewGenerator(app, 42)
	g2 := MustNewGenerator(app, 42)
	for i := 0; i < 10000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a != b {
			t.Fatalf("streams diverged at instruction %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	app, _ := ByName("applu")
	g1 := MustNewGenerator(app, 1)
	g2 := MustNewGenerator(app, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a == b {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestGeneratorInstructionMix(t *testing.T) {
	app, _ := ByName("equake")
	g := MustNewGenerator(app, 3)
	const n = 200000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		in, ok := g.Next()
		if !ok {
			t.Fatal("generator must never exhaust")
		}
		counts[in.Kind]++
	}
	check := func(kind Kind, want float64) {
		got := float64(counts[kind]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v fraction %.3f, want ~%.3f", kind, got, want)
		}
	}
	check(Load, app.LoadFrac)
	check(Store, app.StoreFrac)
	check(Branch, app.BranchFrac)
	if g.Generated() != n {
		t.Fatalf("Generated = %d", g.Generated())
	}
}

func TestGeneratorAddressesWithinFootprints(t *testing.T) {
	app, _ := ByName("mcf")
	g := MustNewGenerator(app, 4)
	ws := uint64(app.WorkingSetKB) * 1024
	code := uint64(app.CodeKB) * 1024
	for i := 0; i < 100000; i++ {
		in, _ := g.Next()
		if in.PC < codeBase || in.PC >= codeBase+code {
			t.Fatalf("PC %#x outside code footprint", in.PC)
		}
		if in.Kind == Load || in.Kind == Store {
			inWS := in.Addr >= dataBase && in.Addr < dataBase+ws
			inStream := in.Addr >= dataBase+ws && in.Addr < dataBase+ws*(1+streamScale)
			inStack := in.Addr >= stackBase && in.Addr < stackBase+stackBytes
			if !inWS && !inStream && !inStack {
				t.Fatalf("address %#x outside working set, stream region, and stack", in.Addr)
			}
		} else if in.Addr != 0 {
			t.Fatal("non-memory instruction carries an address")
		}
	}
}

func TestGeneratorSkew(t *testing.T) {
	// Hot-region references must concentrate on few blocks: the top 10%
	// of blocks should receive well over 10% of references for a skewed
	// app.
	app, _ := ByName("gzip") // ZipfS = 1.0, HotFrac 0.9
	g := MustNewGenerator(app, 5)
	counts := map[uint64]int{}
	refs := 0
	for i := 0; i < 3000000 && refs < 50000; i++ {
		in, _ := g.Next()
		if (in.Kind == Load || in.Kind == Store) && in.Addr < stackBase {
			counts[in.Addr/blockBytes]++
			refs++
		}
	}
	// Find the share of the single hottest block.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(refs) < 0.01 {
		t.Fatalf("hottest block has %.4f of references; expected strong skew", float64(max)/float64(refs))
	}
}

func TestGeneratorMispredictRate(t *testing.T) {
	app, _ := ByName("mcf") // 7% mispredict
	g := MustNewGenerator(app, 6)
	branches, mis := 0, 0
	for i := 0; i < 300000; i++ {
		in, _ := g.Next()
		if in.Kind == Branch {
			branches++
			if in.Mispredicted {
				mis++
			}
		}
	}
	rate := float64(mis) / float64(branches)
	if rate < 0.05 || rate > 0.09 {
		t.Fatalf("mispredict rate %.3f, want ~0.07", rate)
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	app, _ := ByName("gzip")
	app.WorkingSetKB = 0
	if _, err := NewGenerator(app, 1); err == nil {
		t.Fatal("invalid app must be rejected")
	}
}

func TestMustNewGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	app, _ := ByName("gzip")
	app.HotKB = 0
	MustNewGenerator(app, 1)
}

func TestLimit(t *testing.T) {
	app, _ := ByName("gzip")
	src := Limit(MustNewGenerator(app, 7), 5)
	for i := 0; i < 5; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("limited source ended early at %d", i)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("limited source must end after 5")
	}
}

func TestLimitPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	Limit(nil, -1)
}
