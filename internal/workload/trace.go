package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format (little endian):
//
//	magic   [4]byte  "NRT1"
//	nameLen uint8
//	name    [nameLen]byte
//	count   uint64   number of records
//	records count x {
//	    kindAndFlags uint8   // low 2 bits Kind, bit 7 Mispredicted
//	    pc           uint64
//	    addr         uint64  // present only for Load/Store
//	}
//
// The format favors simplicity over compression; a 2M-instruction trace
// is ~20 MB.

var traceMagic = [4]byte{'N', 'R', 'T', '1'}

const mispredictFlag = 0x80

// TraceWriter streams instructions to a trace file.
type TraceWriter struct {
	w     *bufio.Writer
	count uint64
	// countPos is unknown for non-seekable writers, so the count is
	// written up front by the caller via NewTraceWriter's expected
	// count... instead we write count at Close via the saved seeker, or
	// require the caller to declare it. To stay io.Writer-friendly the
	// count is declared up front.
	declared uint64
}

// NewTraceWriter starts a trace with the app name and a declared record
// count. Writing a different number of records makes Close fail.
func NewTraceWriter(w io.Writer, name string, count uint64) (*TraceWriter, error) {
	if len(name) > 255 {
		return nil, errors.New("workload: trace name too long")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, count); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw, declared: count}, nil
}

// Write appends one instruction record.
func (t *TraceWriter) Write(in Instr) error {
	if t.count >= t.declared {
		return fmt.Errorf("workload: trace already holds the declared %d records", t.declared)
	}
	flags := byte(in.Kind)
	if in.Mispredicted {
		flags |= mispredictFlag
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if err := binary.Write(t.w, binary.LittleEndian, in.PC); err != nil {
		return err
	}
	if in.Kind == Load || in.Kind == Store {
		if err := binary.Write(t.w, binary.LittleEndian, in.Addr); err != nil {
			return err
		}
	}
	t.count++
	return nil
}

// Close flushes the trace and verifies the declared count was honored.
func (t *TraceWriter) Close() error {
	if t.count != t.declared {
		return fmt.Errorf("workload: trace declared %d records but wrote %d", t.declared, t.count)
	}
	return t.w.Flush()
}

// Capture records n instructions from src into w as a trace.
func Capture(w io.Writer, name string, src Source, n int64) error {
	tw, err := NewTraceWriter(w, name, uint64(n))
	if err != nil {
		return err
	}
	for i := int64(0); i < n; i++ {
		in, ok := src.Next()
		if !ok {
			return fmt.Errorf("workload: source exhausted after %d of %d records", i, n)
		}
		if err := tw.Write(in); err != nil {
			return err
		}
	}
	return tw.Close()
}

// TraceReader replays a trace file as a Source.
type TraceReader struct {
	r     *bufio.Reader
	name  string
	count uint64
	read  uint64
	err   error
}

// NewTraceReader validates the header and prepares for replay.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	return &TraceReader{r: br, name: string(name), count: count}, nil
}

// Name returns the application name recorded in the trace.
func (t *TraceReader) Name() string { return t.name }

// Count returns the number of records the trace declares.
func (t *TraceReader) Count() uint64 { return t.count }

// Err returns the first decode error encountered, if any.
func (t *TraceReader) Err() error { return t.err }

// Next implements Source.
func (t *TraceReader) Next() (Instr, bool) {
	if t.err != nil || t.read >= t.count {
		return Instr{}, false
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		t.err = err
		return Instr{}, false
	}
	var in Instr
	in.Kind = Kind(flags &^ mispredictFlag)
	in.Mispredicted = flags&mispredictFlag != 0
	if in.Kind > Branch {
		t.err = fmt.Errorf("workload: corrupt record kind %d", in.Kind)
		return Instr{}, false
	}
	if err := binary.Read(t.r, binary.LittleEndian, &in.PC); err != nil {
		t.err = err
		return Instr{}, false
	}
	if in.Kind == Load || in.Kind == Store {
		if err := binary.Read(t.r, binary.LittleEndian, &in.Addr); err != nil {
			t.err = err
			return Instr{}, false
		}
	}
	t.read++
	return in, true
}

var _ Source = (*TraceReader)(nil)
