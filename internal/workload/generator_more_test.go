package workload

import (
	"testing"
)

func TestColumnStrideShrinksForSmallApps(t *testing.T) {
	small, _ := ByName("gzip") // 768-KB working set
	g := MustNewGenerator(small, 1)
	if g.colStride*colLen > uint64(small.WorkingSetKB)*1024 {
		t.Fatalf("column span %d exceeds working set %d",
			g.colStride*colLen, small.WorkingSetKB*1024)
	}
	// The stride must stay a power of two so set aliasing survives.
	if g.colStride&(g.colStride-1) != 0 {
		t.Fatalf("stride %d not a power of two", g.colStride)
	}
}

func TestColumnStrideFullForLargeApps(t *testing.T) {
	big, _ := ByName("mcf") // 6-MB working set
	g := MustNewGenerator(big, 1)
	if g.colStride != defaultColStride {
		t.Fatalf("large app stride %d, want %d", g.colStride, defaultColStride)
	}
}

func TestColumnAliasesIntoFewSets(t *testing.T) {
	// The whole point of column walks: one column's blocks land in very
	// few sets of an 8-MB 8-way cache (8192 sets, 1-MB set period).
	app, _ := ByName("mcf")
	g := MustNewGenerator(app, 2)
	const numSets = 8192
	sets := map[uint64]int{}
	colRefs := 0
	for i := 0; i < 3_000_000 && colRefs < colLen*colPasses; i++ {
		in, _ := g.Next()
		if in.Kind != Load && in.Kind != Store {
			continue
		}
		// Column addresses are exactly defaultColStride-aligned relative
		// to their base; detect them via the generator state instead:
		// simply classify by region is impossible, so sample the first
		// full column through the dedicated method.
		_ = in
		break
	}
	// Drive columnAddr directly for a deterministic check.
	for i := 0; i < colLen*colPasses; i++ {
		addr := g.columnAddr()
		sets[(addr/128)%numSets]++
		colRefs++
	}
	if len(sets) > 3 {
		t.Fatalf("one column touched %d distinct sets, want <= 3 (hot sets)", len(sets))
	}
	// And multiple blocks per set (the multi-way hotness).
	for s, n := range sets {
		if n < colPasses {
			t.Fatalf("set %d touched only %d times", s, n)
		}
	}
}

func TestTilePhaseSwitchesTiles(t *testing.T) {
	app, _ := ByName("art") // several tiles
	g := MustNewGenerator(app, 3)
	if g.nTiles < 2 {
		t.Fatalf("art must have >= 2 tiles, has %d", g.nTiles)
	}
	seen := map[int64]bool{}
	// Drain enough tile references to cross several phases.
	for i := int64(0); i < 5*g.tileLife; i++ {
		g.tileAddr()
		seen[g.tileIdx] = true
	}
	if len(seen) < 2 {
		t.Fatal("tile phases never switched")
	}
}

func TestTileSwitchAlwaysChangesTile(t *testing.T) {
	app, _ := ByName("art")
	g := MustNewGenerator(app, 4)
	prev := g.tileIdx
	for phase := 0; phase < 10; phase++ {
		g.tileLeft = 0 // force a switch on the next draw
		g.tileAddr()
		if g.tileIdx == prev {
			t.Fatal("tile switch must pick a different tile")
		}
		prev = g.tileIdx
	}
}

func TestTileAddrStaysInHotRegion(t *testing.T) {
	app, _ := ByName("applu")
	g := MustNewGenerator(app, 5)
	for i := 0; i < 50000; i++ {
		blk := g.tileAddr()
		if blk < 0 || blk >= g.hotBlks {
			t.Fatalf("tile block %d outside hot region [0,%d)", blk, g.hotBlks)
		}
	}
}

func TestStreamAddrStaysInStreamRegion(t *testing.T) {
	app, _ := ByName("equake")
	g := MustNewGenerator(app, 6)
	lo := dataBase + uint64(g.wsBlocks)*blockBytes
	hi := lo + uint64(g.streamBlocks)*blockBytes
	for i := 0; i < 50000; i++ {
		a := g.streamAddr()
		if a < lo || a >= hi {
			t.Fatalf("stream address %#x outside [%#x,%#x)", a, lo, hi)
		}
	}
}

func TestStreamAdvances(t *testing.T) {
	app, _ := ByName("equake")
	g := MustNewGenerator(app, 7)
	start := g.streamPos
	for i := 0; i < 10000; i++ {
		g.streamAddr()
	}
	if g.streamPos == start {
		t.Fatal("stream head never advanced")
	}
}

func TestL1ResidentFractionCalibration(t *testing.T) {
	// Higher-APKI apps must reserve a smaller L1-resident share.
	low, _ := ByName("gzip")
	high, _ := ByName("art")
	if l1ResidentFraction(high) >= l1ResidentFraction(low) {
		t.Fatalf("art l1Frac %.3f must be below gzip's %.3f",
			l1ResidentFraction(high), l1ResidentFraction(low))
	}
	for _, a := range Apps() {
		f := l1ResidentFraction(a)
		if f <= 0 || f >= 1 {
			t.Fatalf("%s: l1Frac %v out of (0,1)", a.Name, f)
		}
	}
}

func TestHashNameDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, a := range Apps() {
		h := hashName(a.Name)
		if other, ok := seen[h]; ok {
			t.Fatalf("hash collision between %s and %s", a.Name, other)
		}
		seen[h] = a.Name
	}
}
