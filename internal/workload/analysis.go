package workload

import (
	"fmt"
	"io"
	"sort"
)

// ReuseHistogram is a log2-bucketed histogram of LRU stack distances
// (reuse distances) at cache-block granularity: bucket i counts accesses
// whose reuse distance d satisfies 2^i <= d < 2^(i+1), with bucket 0
// holding d in {0, 1}. Cold (first-touch) accesses are counted
// separately. The reuse-distance profile of a stream predicts its hit
// rate in any LRU cache of a given capacity, which is how the workload
// models were sanity-checked against the paper's Table 3 loads.
type ReuseHistogram struct {
	Buckets []int64
	Cold    int64
	Total   int64
}

// HitFractionAt returns the fraction of all accesses whose reuse
// distance is below capacityBlocks — the hit rate of a fully-associative
// LRU cache of that size (conservatively bucketed: a bucket counts as a
// hit only if its entire range fits).
func (h *ReuseHistogram) HitFractionAt(capacityBlocks int64) float64 {
	if h.Total == 0 {
		return 0
	}
	var hits int64
	for i, c := range h.Buckets {
		upper := int64(1) << uint(i+1) // exclusive bucket upper bound
		if upper <= capacityBlocks {
			hits += c
		}
	}
	return float64(hits) / float64(h.Total)
}

// WriteText renders the histogram, one bucket per line.
func (h *ReuseHistogram) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-20s %12s %8s\n", "reuse distance", "accesses", "share"); err != nil {
		return err
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := int64(1) << uint(i)
		if i == 0 {
			lo = 0
		}
		hi := int64(1)<<uint(i+1) - 1
		if _, err := fmt.Fprintf(w, "[%8d,%8d]  %12d %7.2f%%\n",
			lo, hi, c, 100*float64(c)/float64(h.Total)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-20s %12d %7.2f%%\n", "cold (first touch)",
		h.Cold, 100*float64(h.Cold)/float64(max(h.Total, 1)))
	return err
}

// fenwick is a binary indexed tree over access timestamps, counting the
// "most recent access" markers used by the exact stack-distance
// algorithm (Bennett & Kruskal).
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

func (f *fenwick) add(i int, delta int64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of [0, i].
func (f *fenwick) prefix(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// grow doubles the tree to cover at least n entries, preserving content.
func (f *fenwick) grow(n int) {
	if n+1 <= len(f.tree) {
		return
	}
	size := len(f.tree)
	for size < n+1 {
		size *= 2
	}
	// Rebuild from point values (O(n log n), amortized by doubling).
	old := f.tree
	vals := make([]int64, len(old))
	for i := 1; i < len(old); i++ {
		v := old[i]
		// Subtract children already counted in this node.
		for j := i - (i & (-i)) + 1; j < i; j += j & (-j) {
			v -= vals[j]
		}
		vals[i] = v
	}
	f.tree = make([]int64, size)
	for i := 1; i < len(old); i++ {
		if vals[i] != 0 {
			f.add(i-1, vals[i])
		}
	}
}

// Analyzer computes exact LRU stack distances over a block-granular
// reference stream in O(log n) per access.
type Analyzer struct {
	blockBytes uint64
	last       map[uint64]int // block -> timestamp of previous access
	bit        *fenwick
	t          int
	hist       ReuseHistogram
	distinct   int64
	footprint  []int64 // distinct-block count sampled every sampleEvery
	sample     int64
}

// analyzerSampleEvery is the footprint sampling period in accesses.
const analyzerSampleEvery = 4096

// NewAnalyzer creates an analyzer at the given block granularity.
func NewAnalyzer(blockBytes int) *Analyzer {
	if blockBytes <= 0 {
		panic("workload: analyzer block size must be positive")
	}
	return &Analyzer{
		blockBytes: uint64(blockBytes),
		last:       make(map[uint64]int),
		bit:        newFenwick(1 << 12),
	}
}

// Touch records one memory reference.
func (a *Analyzer) Touch(addr uint64) {
	block := addr / a.blockBytes
	a.bit.grow(a.t + 1)
	a.hist.Total++
	if prev, ok := a.last[block]; ok {
		// Distinct blocks touched strictly after prev = markers in
		// (prev, t-1].
		d := a.bit.prefix(a.t-1) - a.bit.prefix(prev)
		a.recordDistance(d)
		a.bit.add(prev, -1)
	} else {
		a.hist.Cold++
		a.distinct++
	}
	a.bit.add(a.t, 1)
	a.last[block] = a.t
	a.t++
	a.sample++
	if a.sample >= analyzerSampleEvery {
		a.sample = 0
		a.footprint = append(a.footprint, a.distinct)
	}
}

func (a *Analyzer) recordDistance(d int64) {
	bucket := 0
	for v := d; v > 1; v >>= 1 {
		bucket++
	}
	for len(a.hist.Buckets) <= bucket {
		a.hist.Buckets = append(a.hist.Buckets, 0)
	}
	a.hist.Buckets[bucket]++
}

// Histogram returns the reuse-distance histogram accumulated so far.
func (a *Analyzer) Histogram() *ReuseHistogram { return &a.hist }

// DistinctBlocks returns the number of distinct blocks touched.
func (a *Analyzer) DistinctBlocks() int64 { return a.distinct }

// Footprint returns the distinct-block counts sampled every 4096
// accesses — the footprint growth curve.
func (a *Analyzer) Footprint() []int64 {
	return append([]int64(nil), a.footprint...)
}

// AnalyzeSource drains up to n instructions from src through an analyzer
// at the given block size, returning it for inspection. Only data
// references (loads and stores) are analyzed.
func AnalyzeSource(src Source, n int64, blockBytes int) *Analyzer {
	a := NewAnalyzer(blockBytes)
	for i := int64(0); i < n; i++ {
		in, ok := src.Next()
		if !ok {
			break
		}
		if in.Kind == Load || in.Kind == Store {
			a.Touch(in.Addr)
		}
	}
	return a
}

// WorkingSetAt estimates, from the footprint curve, the number of
// distinct blocks touched within the most recent window accesses;
// it reports the growth of the footprint over the last window samples.
func (a *Analyzer) WorkingSetAt(window int64) int64 {
	samples := int(window / analyzerSampleEvery)
	fp := a.footprint
	if len(fp) == 0 {
		return a.distinct
	}
	if samples <= 0 || samples >= len(fp) {
		return fp[len(fp)-1]
	}
	return fp[len(fp)-1] - fp[len(fp)-1-samples]
}

// SortedHotBlocks returns up to k (block, count) pairs of the most
// frequently touched blocks — useful for verifying popularity skew.
func SortedHotBlocks(src Source, n int64, blockBytes int, k int) []BlockCount {
	counts := make(map[uint64]int64)
	for i := int64(0); i < n; i++ {
		in, ok := src.Next()
		if !ok {
			break
		}
		if in.Kind == Load || in.Kind == Store {
			counts[in.Addr/uint64(blockBytes)]++
		}
	}
	out := make([]BlockCount, 0, len(counts))
	for b, c := range counts {
		out = append(out, BlockCount{Block: b, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Block < out[j].Block
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// BlockCount pairs a block index with its access count.
type BlockCount struct {
	Block uint64
	Count int64
}
