package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"nurapid/internal/mathx"
)

func TestAnalyzerColdCounts(t *testing.T) {
	a := NewAnalyzer(128)
	for i := 0; i < 10; i++ {
		a.Touch(uint64(i) * 128)
	}
	h := a.Histogram()
	if h.Cold != 10 || h.Total != 10 {
		t.Fatalf("cold=%d total=%d, want 10/10", h.Cold, h.Total)
	}
	if a.DistinctBlocks() != 10 {
		t.Fatalf("distinct = %d", a.DistinctBlocks())
	}
}

func TestAnalyzerImmediateReuse(t *testing.T) {
	a := NewAnalyzer(128)
	a.Touch(0)
	a.Touch(0) // distance 0
	h := a.Histogram()
	if h.Buckets[0] != 1 {
		t.Fatalf("immediate reuse not in bucket 0: %v", h.Buckets)
	}
}

func TestAnalyzerExactDistances(t *testing.T) {
	// Access A, then 5 distinct blocks, then A again: distance 5.
	a := NewAnalyzer(128)
	a.Touch(0)
	for i := 1; i <= 5; i++ {
		a.Touch(uint64(i) * 128)
	}
	a.Touch(0)
	// Distance 5 -> bucket 2 (4 <= 5 < 8).
	h := a.Histogram()
	if len(h.Buckets) < 3 || h.Buckets[2] != 1 {
		t.Fatalf("distance-5 reuse missing: %v", h.Buckets)
	}
}

func TestAnalyzerRepeatsDoNotInflateDistance(t *testing.T) {
	// A B B B A: the distance of the second A is 1 (only B distinct).
	a := NewAnalyzer(128)
	a.Touch(0)
	a.Touch(128)
	a.Touch(128)
	a.Touch(128)
	a.Touch(0)
	h := a.Histogram()
	// Distance 1 -> bucket 0; plus the two B self-reuses.
	if h.Buckets[0] != 3 {
		t.Fatalf("buckets = %v, want 3 entries in bucket 0", h.Buckets)
	}
}

func TestAnalyzerBlockGranularity(t *testing.T) {
	a := NewAnalyzer(128)
	a.Touch(0)
	a.Touch(64) // same 128-B block
	if a.DistinctBlocks() != 1 {
		t.Fatal("same-block offsets must not count as distinct")
	}
	if a.Histogram().Buckets[0] != 1 {
		t.Fatal("same-block reuse must be distance 0")
	}
}

func TestHitFractionAt(t *testing.T) {
	a := NewAnalyzer(128)
	// Cyclic access over 4 blocks, 10 rounds: distances are all 3.
	for r := 0; r < 10; r++ {
		for b := 0; b < 4; b++ {
			a.Touch(uint64(b) * 128)
		}
	}
	h := a.Histogram()
	// Distance 3 -> bucket 1 (2 <= 3 < 4): hits only when capacity >= 4.
	if f := h.HitFractionAt(2); f != 0 {
		t.Fatalf("HitFractionAt(2) = %v, want 0", f)
	}
	if f := h.HitFractionAt(4); f <= 0.8 {
		t.Fatalf("HitFractionAt(4) = %v, want ~0.9 (36 of 40)", f)
	}
}

func TestHitFractionMonotone(t *testing.T) {
	// Property: the LRU hit fraction is nondecreasing in capacity.
	app, _ := ByName("galgel")
	a := AnalyzeSource(MustNewGenerator(app, 3), 50_000, 128)
	h := a.Histogram()
	f := func(rawA, rawB uint16) bool {
		ca, cb := int64(rawA)+1, int64(rawB)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		return h.HitFractionAt(ca) <= h.HitFractionAt(cb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerMatchesBruteForce(t *testing.T) {
	// Cross-check the Fenwick-tree stack distances against a brute-force
	// LRU stack on a random stream.
	rng := mathx.NewRNG(9)
	a := NewAnalyzer(128)
	var stack []uint64 // most recent first
	brute := NewReuseHistogramLike()
	for i := 0; i < 3000; i++ {
		block := uint64(rng.Intn(100))
		a.Touch(block * 128)
		// Brute force.
		pos := -1
		for j, b := range stack {
			if b == block {
				pos = j
				break
			}
		}
		if pos < 0 {
			brute.Cold++
		} else {
			brute.record(int64(pos))
			stack = append(stack[:pos], stack[pos+1:]...)
		}
		stack = append([]uint64{block}, stack...)
		brute.Total++
	}
	h := a.Histogram()
	if h.Cold != brute.Cold || h.Total != brute.Total {
		t.Fatalf("cold/total mismatch: %d/%d vs %d/%d", h.Cold, h.Total, brute.Cold, brute.Total)
	}
	for i := range brute.Buckets {
		got := int64(0)
		if i < len(h.Buckets) {
			got = h.Buckets[i]
		}
		if got != brute.Buckets[i] {
			t.Fatalf("bucket %d: analyzer %d vs brute force %d\nanalyzer %v\nbrute    %v",
				i, got, brute.Buckets[i], h.Buckets, brute.Buckets)
		}
	}
}

// NewReuseHistogramLike builds an empty histogram for the brute-force
// cross-check.
func NewReuseHistogramLike() *ReuseHistogram { return &ReuseHistogram{} }

func (h *ReuseHistogram) record(d int64) {
	bucket := 0
	for v := d; v > 1; v >>= 1 {
		bucket++
	}
	for len(h.Buckets) <= bucket {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[bucket]++
}

func TestAnalyzeSource(t *testing.T) {
	app, _ := ByName("gzip")
	a := AnalyzeSource(MustNewGenerator(app, 5), 30_000, 128)
	if a.Histogram().Total == 0 {
		t.Fatal("no references analyzed")
	}
	if a.DistinctBlocks() == 0 {
		t.Fatal("no distinct blocks")
	}
}

func TestFootprintGrows(t *testing.T) {
	app, _ := ByName("applu")
	a := AnalyzeSource(MustNewGenerator(app, 6), 60_000, 128)
	fp := a.Footprint()
	if len(fp) < 2 {
		t.Fatalf("footprint has %d samples", len(fp))
	}
	for i := 1; i < len(fp); i++ {
		if fp[i] < fp[i-1] {
			t.Fatal("footprint must be nondecreasing")
		}
	}
	if ws := a.WorkingSetAt(16384); ws <= 0 {
		t.Fatalf("WorkingSetAt = %d", ws)
	}
}

func TestWorkingSetAtEdges(t *testing.T) {
	a := NewAnalyzer(128)
	if a.WorkingSetAt(100) != 0 {
		t.Fatal("empty analyzer working set must be 0")
	}
	for i := 0; i < 10000; i++ {
		a.Touch(uint64(i) * 128)
	}
	if a.WorkingSetAt(0) != a.Footprint()[len(a.Footprint())-1] {
		t.Fatal("zero window must return the latest footprint")
	}
}

func TestHistogramWriteText(t *testing.T) {
	a := NewAnalyzer(128)
	a.Touch(0)
	a.Touch(0)
	var b strings.Builder
	if err := a.Histogram().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cold") {
		t.Fatalf("output missing cold row: %q", b.String())
	}
}

func TestSortedHotBlocks(t *testing.T) {
	app, _ := ByName("gzip") // strong skew
	hot := SortedHotBlocks(MustNewGenerator(app, 7), 50_000, 128, 10)
	if len(hot) != 10 {
		t.Fatalf("got %d hot blocks", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Count > hot[i-1].Count {
			t.Fatal("hot blocks not sorted by count")
		}
	}
	if hot[0].Count <= hot[9].Count {
		t.Fatal("expected skew between rank 0 and rank 9")
	}
}

func TestNewAnalyzerPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	NewAnalyzer(0)
}
