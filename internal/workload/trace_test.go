package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundtrip(t *testing.T) {
	app, _ := ByName("applu")
	const n = 5000
	var buf bytes.Buffer
	if err := Capture(&buf, app.Name, MustNewGenerator(app, 9), n); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "applu" || r.Count() != n {
		t.Fatalf("header: name=%q count=%d", r.Name(), r.Count())
	}
	// Replay must match a fresh generator with the same seed.
	ref := MustNewGenerator(app, 9)
	for i := 0; i < n; i++ {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("trace ended early at %d: %v", i, r.Err())
		}
		want, _ := ref.Next()
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("trace must end after declared count")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTraceWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Instr{Kind: ALU}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err == nil {
		t.Fatal("Close must fail when fewer records were written")
	}
	if err := tw.Write(Instr{Kind: ALU}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Instr{Kind: ALU}); err == nil {
		t.Fatal("writing beyond the declared count must fail")
	}
}

func TestTraceWriterLongName(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewTraceWriter(&buf, strings.Repeat("x", 300), 0); err == nil {
		t.Fatal("over-long name must be rejected")
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestTraceReaderCorruptKind(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Instr{Kind: ALU, PC: 4}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the kind byte of the first record (after the 13-byte
	// header: magic 4 + len 1 + name 1 + count 8... name "x" is 1 byte).
	raw[4+1+1+8] = 0x05
	r, err := NewTraceReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("corrupt record must stop replay")
	}
	if r.Err() == nil {
		t.Fatal("corrupt record must surface an error")
	}
}

func TestTraceMispredictFlagSurvives(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, "b", 2)
	if err := tw.Write(Instr{Kind: Branch, PC: 8, Mispredicted: true}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Instr{Kind: Branch, PC: 12}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Next()
	b, _ := r.Next()
	if !a.Mispredicted || b.Mispredicted {
		t.Fatal("mispredict flags mangled")
	}
}

func TestCaptureSourceExhausted(t *testing.T) {
	app, _ := ByName("gzip")
	var buf bytes.Buffer
	src := Limit(MustNewGenerator(app, 1), 3)
	if err := Capture(&buf, "g", src, 10); err == nil {
		t.Fatal("capture beyond the source must fail")
	}
}
