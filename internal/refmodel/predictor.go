package refmodel

// This file is the executable specification of the sampled
// reuse-distance / dead-block predictor behind nurapid.PredictiveBypass
// and nurapid.DeadOnArrival. The pinned contract, implemented flat and
// allocation-free by internal/nurapid/predictor.go and transcribed here
// onto the simplest possible state:
//
//   - signature: the top 10 bits of ((key >> 6) * 0x9E3779B97F4A7C15),
//     where key is the block address — the 64-block region stands in
//     for the program counter the memory system does not model;
//   - table: 1024 two-bit saturating counters, initialized to zero;
//     predictDead(key) reports counter(sig(key)) >= 2;
//   - sampled sets: every set whose index is a multiple of 16 keeps
//     Assoc shadow entries of {key, recency stamp, referenced flag};
//   - observe in a sampled set: re-finding a shadowed key refreshes its
//     stamp, and its first re-reference trains the signature live
//     (decrement). A shadow miss installs over an empty entry, else
//     over the least recently stamped one; evicting an entry that was
//     never re-referenced trains its signature dead (increment);
//   - predict before observe on every access, so a prediction never
//     sees the access it is predicting.

const (
	refPredTableEntries = 1024
	refPredDeadAt       = 2
	refPredCounterMax   = 3
	refPredSampleStride = 16
	refPredRegionShift  = 6
	refPredHashMult     = 0x9E3779B97F4A7C15
)

// refPredSig maps a block address to its signature-table index: the top
// 10 bits (log2 of the table size) of the hashed 64-block region.
func refPredSig(key uint64) int {
	return int(((key >> refPredRegionShift) * refPredHashMult) >> 54)
}

// shadowEntry is one shadow tag of a sampled set.
type shadowEntry struct {
	key        uint64
	stamp      uint64
	referenced bool
}

// refPredictor is the reference predictor. Shadow sets live in a map
// and grow up to assoc entries; the recency stamps come from one global
// tick, mirroring the fast implementation's flat arrays.
type refPredictor struct {
	counters []uint8
	shadow   map[int][]*shadowEntry
	assoc    int
	tick     uint64
}

func newRefPredictor(assoc int) *refPredictor {
	return &refPredictor{
		counters: make([]uint8, refPredTableEntries),
		shadow:   make(map[int][]*shadowEntry),
		assoc:    assoc,
	}
}

// predictDead reports whether the block behind key is predicted dead on
// arrival / streaming.
func (p *refPredictor) predictDead(key uint64) bool {
	return p.counters[refPredSig(key)] >= refPredDeadAt
}

// observe feeds one access into the sampled shadow tags; non-sampled
// sets are ignored entirely.
func (p *refPredictor) observe(set int, key uint64) {
	if set%refPredSampleStride != 0 {
		return
	}
	p.tick++
	entries := p.shadow[set]
	for _, e := range entries {
		if e.key == key {
			if !e.referenced {
				e.referenced = true
				p.trainLive(key)
			}
			e.stamp = p.tick
			return
		}
	}
	if len(entries) < p.assoc {
		p.shadow[set] = append(entries, &shadowEntry{key: key, stamp: p.tick})
		return
	}
	// Stamps are unique (one global tick), so the LRU victim is
	// well-defined and matches the fast implementation's min-scan.
	victim := entries[0]
	for _, e := range entries[1:] {
		if e.stamp < victim.stamp {
			victim = e
		}
	}
	if !victim.referenced {
		p.trainDead(victim.key)
	}
	*victim = shadowEntry{key: key, stamp: p.tick}
}

// trainLive saturating-decrements key's signature counter toward the
// "live" end.
func (p *refPredictor) trainLive(key uint64) {
	if s := refPredSig(key); p.counters[s] > 0 {
		p.counters[s]--
	}
}

// trainDead saturating-increments key's signature counter toward the
// "dead" end.
func (p *refPredictor) trainDead(key uint64) {
	if s := refPredSig(key); p.counters[s] < refPredCounterMax {
		p.counters[s]++
	}
}
