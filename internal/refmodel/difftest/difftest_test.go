package difftest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nurapid"
	"nurapid/internal/refmodel"
)

// accessesPerCell scales the fuzzing depth: the in-tree default keeps
// `go test ./...` fast, `make diff-fuzz` (DIFF_FUZZ=1) runs the 10k
// accesses per cell the acceptance bar asks for, and DIFF_FUZZ_LONG=1 is
// the nightly soak.
func accessesPerCell() int {
	if os.Getenv("DIFF_FUZZ_LONG") != "" {
		return 100000
	}
	if os.Getenv("DIFF_FUZZ") != "" {
		return 10000
	}
	return 1500
}

// artifactDir is where shrunk divergence artifacts land: the CI workflow
// points DIFF_FUZZ_ARTIFACTS at a workspace directory it uploads on
// failure; locally the test's temp dir is used.
func artifactDir(t *testing.T) string {
	if dir := os.Getenv("DIFF_FUZZ_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("creating artifact dir: %v", err)
		}
		return dir
	}
	return t.TempDir()
}

// dumpDivergence shrinks a diverging sequence and writes the JSONL
// artifact, returning its path and the shrunk length.
func dumpDivergence(t *testing.T, cell Cell, workload string, opt Options, seq []Access) (string, int) {
	t.Helper()
	shrunk := Shrink(cell.Cfg, seq, opt)
	if shrunk == nil {
		t.Fatalf("sequence stopped diverging during shrink setup")
	}
	d := Diff(cell.Cfg, shrunk, opt)
	if d == nil {
		t.Fatalf("shrunk sequence no longer diverges")
	}
	path := filepath.Join(artifactDir(t), fmt.Sprintf("divergence-%s-%s.jsonl", cell.Name, workload))
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("creating artifact: %v", err)
	}
	defer f.Close()
	if err := WriteArtifact(f, cell.Name, workload, cell.Cfg, opt, d, shrunk); err != nil {
		t.Fatalf("writing artifact: %v", err)
	}
	return path, len(shrunk)
}

// TestDifferentialMatrix is the fuzzer: every policy-matrix cell runs
// every adversarial workload against both implementations, and any
// disagreement is shrunk and dumped before failing.
func TestDifferentialMatrix(t *testing.T) {
	n := accessesPerCell()
	for _, cell := range Matrix() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			for _, wl := range Workloads() {
				seq := wl.Gen(cell.Cfg, 11, n)
				if d := Diff(cell.Cfg, seq, Options{}); d != nil {
					path, size := dumpDivergence(t, cell, wl.Name, Options{}, seq)
					t.Fatalf("%s/%s diverged: %s\nshrunk to %d accesses, artifact: %s",
						cell.Name, wl.Name, d, size, path)
				}
			}
		})
	}
}

// TestDifferentialMatrixShared is the 2-core shared-L2 pass of the
// fuzzer: every policy-matrix cell runs every adversarial workload
// spread across two requestors through identical cmp bank-queues in
// front of both implementations (the -run regex of `make diff-fuzz`
// matches this test too, so the shared cell runs at CI depth and under
// -race).
func TestDifferentialMatrixShared(t *testing.T) {
	n := accessesPerCell()
	for _, cell := range Matrix() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			for _, wl := range Workloads() {
				seq := ShareAcross(wl.Gen(cell.Cfg, 11, n), 2, 23)
				if d := DiffShared(cell.Cfg, seq, Options{}); d != nil {
					t.Fatalf("%s/%s diverged on the shared 2-core path: %s",
						cell.Name, wl.Name, d)
				}
			}
		})
	}
}

// TestShareAcrossSpreadsCores guards the shared fuzzer input: both core
// ids must actually occur, and the original sequence must be untouched.
func TestShareAcrossSpreadsCores(t *testing.T) {
	seq := make([]Access, 200)
	shared := ShareAcross(seq, 2, 23)
	counts := map[int]int{}
	for _, a := range shared {
		counts[a.Core]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("core spread = %v, want both cores used", counts)
	}
	for i := range seq {
		if seq[i].Core != 0 {
			t.Fatal("ShareAcross modified its input")
		}
	}
}

// TestDiffSharedCatchesFault proves the shared path is a real oracle:
// a fault injected into the reference model must surface through the
// queued 2-core comparison too.
func TestDiffSharedCatchesFault(t *testing.T) {
	cell := faultCell()
	seq := ShareAcross(faultWorkload(cell.Cfg, 11, 4000), 2, 23)
	opt := Options{Fault: refmodel.FaultSkipDemoteHitsReset}
	if d := DiffShared(cell.Cfg, seq, opt); d == nil {
		t.Fatal("DiffShared missed an injected reference-model fault")
	}
}

// TestMatrixExercisesMachinery guards the fuzzer against silently gentle
// workloads: across the matrix, evictions, demotions, promotions,
// writebacks, predictor bypasses, dead-on-arrival fills, and memoized
// probes must all actually occur, or agreement proves nothing.
func TestMatrixExercisesMachinery(t *testing.T) {
	machinery := []string{
		"evictions", "demotions", "promotions", "writebacks",
		"bypasses", "dead_fills", "memo_hits",
	}
	totals := map[string]int64{}
	for _, cell := range Matrix() {
		for _, wl := range Workloads() {
			seq := wl.Gen(cell.Cfg, 11, 600)
			c := nurapid.MustNew(cell.Cfg, cacti.Default(), memsys.NewMemory(cell.Cfg.BlockBytes))
			now := int64(0)
			for _, a := range seq {
				r := c.Access(memsys.Req{Now: now, Addr: a.Addr, Write: a.Write})
				now = r.DoneAt + a.Gap
			}
			for _, name := range machinery {
				totals[name] += c.Counters().Get(name)
			}
		}
	}
	for _, name := range machinery {
		if totals[name] == 0 {
			t.Errorf("matrix never produced a single %s event", name)
		}
	}
}

// faultCell is a configuration in which FaultSkipDemoteHitsReset is
// observable. Three ingredients: a promotion trigger above 1 (so stale
// hit counts matter), a tight frame restriction (so hit blocks actually
// get demoted), and at least 3 d-groups — the faulted code path installs
// a *demoted* block over a further victim, which only happens in the
// middle links of a depth>=2 ripple; with 2 d-groups every demoted block
// lands in a frame freed by the eviction or promotion that started the
// chain and the reset is taken on the (always-correct) free-frame path.
func faultCell() Cell {
	return Cell{
		Name: "fault-4g-r16-next-lru-ph3",
		Cfg: nurapid.Config{
			CapacityBytes:  4 << 20,
			BlockBytes:     8192,
			Assoc:          8,
			NumDGroups:     4,
			Promotion:      nurapid.NextFastest,
			Distance:       nurapid.LRUDistance,
			Placement:      nurapid.DistanceAssociative,
			RestrictFrames: 16,
			PromoteHits:    3,
			Seed:           7,
		},
	}
}

// faultWorkload aims six sets that share one frame partition (sets
// congruent mod nParts) at 12 live tags each: enough partition pressure
// to fill three of the four d-group partitions, so demotion ripples run
// deep and blocks that have accumulated promotion hits get re-demoted —
// exactly where the skipped hits reset shows.
func faultWorkload(cfg nurapid.Config, seed uint64, n int) []Access {
	geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
	rng := mathx.NewRNG(seed)
	sets := []int{0, 8, 16, 24, 32, 40} // all partition 0 under RestrictFrames=16 (nParts=8)
	seq := make([]Access, n)
	for i := range seq {
		set := sets[rng.Intn(len(sets))]
		tag := rng.Intn(12)
		seq[i] = Access{
			Addr:  uint64(tag*geo.NumSets()+set) * uint64(cfg.BlockBytes),
			Write: rng.Bool(0.2),
			Gap:   int64(rng.Intn(4)),
		}
	}
	return seq
}

// TestSeededFaultCaughtAndShrunk is the harness's proof of life: with a
// deliberately wrong reference model (the demote path keeps the stale
// promotion hit count), the differ must report a divergence and the
// shrinker must cut the reproducer down to a small fraction of the
// original sequence while preserving it.
func TestSeededFaultCaughtAndShrunk(t *testing.T) {
	cell := faultCell()
	seq := faultWorkload(cell.Cfg, 11, 4000)

	if d := Diff(cell.Cfg, seq, Options{}); d != nil {
		t.Fatalf("models disagree before any fault was injected: %s", d)
	}
	faulty := Options{Fault: refmodel.FaultSkipDemoteHitsReset}
	d := Diff(cell.Cfg, seq, faulty)
	if d == nil {
		t.Fatal("seeded fault was not caught: the harness cannot detect a known-wrong spec")
	}
	t.Logf("seeded fault caught: %s", d)

	shrunk := Shrink(cell.Cfg, seq, faulty)
	if shrunk == nil {
		t.Fatal("shrinker lost the divergence")
	}
	if len(shrunk) >= len(seq)/4 {
		t.Fatalf("shrinker left %d of %d accesses; want a small reproducer", len(shrunk), len(seq))
	}
	if d := Diff(cell.Cfg, shrunk, faulty); d == nil {
		t.Fatal("shrunk sequence does not reproduce the divergence")
	}
	t.Logf("shrunk reproducer: %d of %d accesses", len(shrunk), len(seq))
}

// deadOnArrivalFaultCell is a configuration in which
// FaultDeadOnArrivalInverted is observable: the fault swaps which fills
// take the dead-on-arrival path, so any fill whose prediction the two
// sides route differently surfaces immediately as a Place-group (and
// latency) divergence.
func deadOnArrivalFaultCell() Cell {
	return Cell{
		Name: "fault-4g-da-next-doa-ph3",
		Cfg: nurapid.Config{
			CapacityBytes: 4 << 20,
			BlockBytes:    8192,
			Assoc:         8,
			NumDGroups:    4,
			Promotion:     nurapid.NextFastest,
			Distance:      nurapid.DeadOnArrival,
			Placement:     nurapid.DistanceAssociative,
			PromoteHits:   3,
			Seed:          7,
		},
	}
}

// TestSeededFaultDeadOnArrivalCaught proves the grown matrix still has a
// live oracle over the predictor policies: a reference model that sends
// every fill to the wrong target d-group (inverting the dead-on-arrival
// decision) must be caught, and the shrinker must reduce the reproducer —
// the very first fill already diverges, so it shrinks to almost nothing.
func TestSeededFaultDeadOnArrivalCaught(t *testing.T) {
	cell := deadOnArrivalFaultCell()
	var wl Workload
	for _, w := range Workloads() {
		if w.Name == "stream-scan" {
			wl = w
		}
	}
	if wl.Gen == nil {
		t.Fatal("stream-scan workload missing from Workloads()")
	}
	seq := wl.Gen(cell.Cfg, 11, 4000)

	if d := Diff(cell.Cfg, seq, Options{}); d != nil {
		t.Fatalf("models disagree before any fault was injected: %s", d)
	}
	faulty := Options{Fault: refmodel.FaultDeadOnArrivalInverted}
	d := Diff(cell.Cfg, seq, faulty)
	if d == nil {
		t.Fatal("seeded dead-on-arrival fault was not caught: the matrix does not gate the predictor fill path")
	}
	t.Logf("seeded fault caught: %s", d)

	shrunk := Shrink(cell.Cfg, seq, faulty)
	if shrunk == nil {
		t.Fatal("shrinker lost the divergence")
	}
	if len(shrunk) > 4 {
		t.Fatalf("shrinker left %d accesses; an inverted first fill should reproduce in a handful", len(shrunk))
	}
	if d := Diff(cell.Cfg, shrunk, faulty); d == nil {
		t.Fatal("shrunk sequence does not reproduce the divergence")
	}
	t.Logf("shrunk reproducer: %d of %d accesses", len(shrunk), len(seq))
}

// TestArtifactRoundTrip pins the JSONL artifact format: a dumped
// divergence can be read back into the same config and access sequence,
// and the replayed sequence still diverges.
func TestArtifactRoundTrip(t *testing.T) {
	cell := faultCell()
	faulty := Options{Fault: refmodel.FaultSkipDemoteHitsReset}
	seq := faultWorkload(cell.Cfg, 11, 4000)
	shrunk := Shrink(cell.Cfg, seq, faulty)
	if shrunk == nil {
		t.Fatal("no divergence to round-trip")
	}
	d := Diff(cell.Cfg, shrunk, faulty)

	var buf bytes.Buffer
	if err := WriteArtifact(&buf, cell.Name, "fault-workload", cell.Cfg, faulty, d, shrunk); err != nil {
		t.Fatalf("writing artifact: %v", err)
	}
	cfg, replay, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatalf("reading artifact back: %v", err)
	}
	if cfg != cell.Cfg {
		t.Fatalf("config round-trip mismatch:\n got %+v\nwant %+v", cfg, cell.Cfg)
	}
	if !reflect.DeepEqual(replay, shrunk) {
		t.Fatalf("sequence round-trip mismatch: got %d accesses, want %d", len(replay), len(shrunk))
	}
	if d := Diff(cfg, replay, faulty); d == nil {
		t.Fatal("replayed artifact does not reproduce the divergence")
	}
}

// TestNewErrorParity checks configuration legality is part of the shared
// contract: nurapid.New and refmodel.New accept and reject the same
// configurations.
func TestNewErrorParity(t *testing.T) {
	mutations := []func(*nurapid.Config){
		func(c *nurapid.Config) {}, // valid baseline
		func(c *nurapid.Config) { c.NumDGroups = 3 },
		func(c *nurapid.Config) { c.CapacityBytes = 512 << 10 },
		func(c *nurapid.Config) { c.RestrictFrames = 1000 },
		func(c *nurapid.Config) { c.Placement = nurapid.SetAssociative; c.RestrictFrames = 256 },
		func(c *nurapid.Config) { c.Placement = nurapid.Placement(9) },
		func(c *nurapid.Config) { c.PromoteHits = -1 },
		func(c *nurapid.Config) { c.PromoteHits = 201 },
		// Values past the uint8 saturation point must be rejected at New
		// on both sides, not silently truncated into the hit counter.
		func(c *nurapid.Config) { c.PromoteHits = 256 },
		func(c *nurapid.Config) { c.PromoteHits = 1000 },
		func(c *nurapid.Config) {
			c.Promotion = nurapid.PredictiveBypass
			c.Distance = nurapid.DeadOnArrival
			c.Memoize = true
		},
	}
	m := cacti.Default()
	for i, mutate := range mutations {
		cfg := nurapid.DefaultConfig()
		mutate(&cfg)
		_, fastErr := nurapid.New(cfg, m, memsys.NewMemory(cfg.BlockBytes))
		_, refErr := refmodel.New(cfg, m, memsys.NewMemory(cfg.BlockBytes))
		if (fastErr == nil) != (refErr == nil) {
			t.Errorf("mutation %d: acceptance disagrees: fast err=%v, ref err=%v", i, fastErr, refErr)
		}
	}
}
