// Package difftest is the differential correctness harness for the
// NuRAPID cache: it drives internal/nurapid (the fast implementation) and
// internal/refmodel (the executable specification) with identical access
// sequences and reports the first observable disagreement — per-access
// hit/miss outcome, serving d-group, completion cycle, the emitted event
// stream, or any piece of final state (counters, snapshots, d-group
// occupancy, block residency, memory traffic, energy).
//
// A reported divergence is shrunk with a ddmin-style loop to a minimal
// access sequence that still reproduces it, and can be dumped as a JSONL
// artifact that EXPERIMENTS.md documents how to replay.
package difftest

import (
	"encoding/json"
	"fmt"
	"io"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/cmp"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/refmodel"
	"nurapid/internal/stats"
)

// Access is one step of a differential workload. Gap is the idle time
// inserted after the previous access completes; the replay clock is
// now = prevDoneAt + Gap, so a sequence replays identically however it
// was produced or shrunk. Core is the issuing core id, used only by the
// shared (multi-core) comparison; single-core diffs leave it 0.
type Access struct {
	Addr  uint64 `json:"addr"`
	Write bool   `json:"write"`
	Gap   int64  `json:"gap"`
	Core  int    `json:"core,omitempty"`
}

// ShareAcross stamps a deterministic core id on every access, spreading
// seq across cores requestors — the input shape DiffShared expects. The
// original slice is not modified.
func ShareAcross(seq []Access, cores int, seed uint64) []Access {
	rng := mathx.NewRNG(seed)
	out := append([]Access(nil), seq...)
	for i := range out {
		out[i].Core = rng.Intn(cores)
	}
	return out
}

// Options tunes a differential run. The zero value is the production
// comparison; a non-zero Fault is injected into the reference model to
// verify the harness catches (and shrinks) a known-wrong specification.
type Options struct {
	Fault refmodel.Fault
}

// Divergence describes the first observed disagreement between the two
// implementations.
type Divergence struct {
	// Index is the access at which the disagreement surfaced, or -1 for
	// final-state comparisons after the full sequence.
	Index int
	// Field names what disagreed ("hit", "done_at", "group", "event",
	// "counter:misses", "occupancy", ...).
	Field string
	// Fast and Ref render the disagreeing values.
	Fast, Ref string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("access %d: %s: fast=%s ref=%s", d.Index, d.Field, d.Fast, d.Ref)
}

// recorder captures an event stream for comparison.
type recorder struct {
	events []obs.Event
}

func (r *recorder) Emit(e obs.Event) { r.events = append(r.events, e) }

// Diff replays seq against a fresh fast implementation and a fresh
// reference model (each with its own memory) and returns the first
// divergence, or nil when the two agree on everything. A third fast
// instance replays the same sequence through the batched AccessMany
// path and is compared against the per-access path element by element,
// so the specialized replay loop is oracle-gated too.
func Diff(cfg nurapid.Config, seq []Access, opt Options) *Divergence {
	m := cacti.Default()
	fastMem := memsys.NewMemory(cfg.BlockBytes)
	refMem := memsys.NewMemory(cfg.BlockBytes)
	fast := nurapid.MustNew(cfg, m, fastMem)
	ref := refmodel.MustNew(cfg, m, refMem)
	ref.InjectFault(opt.Fault)

	fastRec, refRec := &recorder{}, &recorder{}
	fast.SetProbe(fastRec)
	ref.SetProbe(refRec)

	now := int64(0)
	fastResults := make([]memsys.AccessResult, len(seq))
	for i, a := range seq {
		fr := fast.Access(memsys.Req{Now: now, Addr: a.Addr, Write: a.Write})
		rr := ref.Access(memsys.Req{Now: now, Addr: a.Addr, Write: a.Write})
		fastResults[i] = fr
		if fr.Hit != rr.Hit {
			return &Divergence{Index: i, Field: "hit",
				Fast: fmt.Sprint(fr.Hit), Ref: fmt.Sprint(rr.Hit)}
		}
		if fr.Group != rr.Group {
			return &Divergence{Index: i, Field: "group",
				Fast: fmt.Sprint(fr.Group), Ref: fmt.Sprint(rr.Group)}
		}
		if fr.DoneAt != rr.DoneAt {
			return &Divergence{Index: i, Field: "done_at",
				Fast: fmt.Sprint(fr.DoneAt), Ref: fmt.Sprint(rr.DoneAt)}
		}
		// The clock advances off the (agreed) completion time so port
		// pressure and idle gaps both occur.
		now = fr.DoneAt + a.Gap
	}

	// Event streams: same events in the same canonical order.
	for i := 0; i < len(fastRec.events) || i < len(refRec.events); i++ {
		var fe, re obs.Event
		feOK, reOK := i < len(fastRec.events), i < len(refRec.events)
		if feOK {
			fe = fastRec.events[i]
		}
		if reOK {
			re = refRec.events[i]
		}
		if !feOK || !reOK || fe != re {
			return &Divergence{Index: -1, Field: fmt.Sprintf("event %d", i),
				Fast: renderEvent(fe, feOK), Ref: renderEvent(re, reOK)}
		}
	}

	if d := diffBatched(cfg, m, seq, fast, fastMem, fastRec, fastResults, now); d != nil {
		return d
	}

	return diffFinalState(fast, ref, fastMem, refMem, seq)
}

// DiffShared replays seq through the 2-core shared front end: both the
// fast implementation and the reference model sit behind an identical
// cmp bank-queue, and each access carries a core id (stamp them with
// ShareAcross). Queue arbitration, per-core attribution, Core-stamped
// event streams, and all final state are compared, so the multi-core
// glue is oracle-gated exactly like the single-core path.
func DiffShared(cfg nurapid.Config, seq []Access, opt Options) *Divergence {
	const cores = 2
	m := cacti.Default()
	fastMem := memsys.NewMemory(cfg.BlockBytes)
	refMem := memsys.NewMemory(cfg.BlockBytes)
	fast := nurapid.MustNew(cfg, m, fastMem)
	ref := refmodel.MustNew(cfg, m, refMem)
	ref.InjectFault(opt.Fault)

	qcfg := cmp.QueueConfig{Banks: 4, BlockBytes: cfg.BlockBytes, Occupancy: 4, Cores: cores}
	fq, err := cmp.NewQueue(fast, qcfg)
	if err != nil {
		panic(fmt.Sprintf("difftest: queue construction failed: %v", err))
	}
	rq, err := cmp.NewQueue(ref, qcfg)
	if err != nil {
		panic(fmt.Sprintf("difftest: queue construction failed: %v", err))
	}

	// Probes attach through the queues, not the wrapped models, so the
	// compared streams carry the queue-side events (Enqueue/Issue) as
	// well as the organizations': bank hashing or arbitration drift
	// between the two sides surfaces as an event divergence.
	fastRec, refRec := &recorder{}, &recorder{}
	fq.SetProbe(fastRec)
	rq.SetProbe(refRec)

	now := int64(0)
	for i, a := range seq {
		req := memsys.Req{Now: now, Addr: a.Addr, Write: a.Write, Core: a.Core}
		fr := fq.Access(req)
		rr := rq.Access(req)
		if fr.Hit != rr.Hit {
			return &Divergence{Index: i, Field: "shared:hit",
				Fast: fmt.Sprint(fr.Hit), Ref: fmt.Sprint(rr.Hit)}
		}
		if fr.Group != rr.Group {
			return &Divergence{Index: i, Field: "shared:group",
				Fast: fmt.Sprint(fr.Group), Ref: fmt.Sprint(rr.Group)}
		}
		if fr.DoneAt != rr.DoneAt {
			return &Divergence{Index: i, Field: "shared:done_at",
				Fast: fmt.Sprint(fr.DoneAt), Ref: fmt.Sprint(rr.DoneAt)}
		}
		now = fr.DoneAt + a.Gap
	}

	// Core-stamped event streams must match exactly.
	for i := 0; i < len(fastRec.events) || i < len(refRec.events); i++ {
		var fe, re obs.Event
		feOK, reOK := i < len(fastRec.events), i < len(refRec.events)
		if feOK {
			fe = fastRec.events[i]
		}
		if reOK {
			re = refRec.events[i]
		}
		if !feOK || !reOK || fe != re {
			return &Divergence{Index: -1, Field: fmt.Sprintf("shared:event %d", i),
				Fast: renderEvent(fe, feOK), Ref: renderEvent(re, reOK)}
		}
	}

	// Wiring guard: a probe attached below the queue would silently drop
	// the queue-side events from both streams and weaken the oracle
	// without any visible disagreement, so their absence is itself a
	// divergence.
	if len(seq) > 0 {
		hasQueue := false
		for _, e := range fastRec.events {
			if e.Kind == obs.KindEnqueue {
				hasQueue = true
				break
			}
		}
		if !hasQueue {
			return &Divergence{Index: -1, Field: "shared:probe wiring",
				Fast: "stream carries no queue-side events", Ref: "expected Enqueue/Issue per access"}
		}
	}

	// Queue-side accounting: per-core attribution and contention
	// counters must agree (the queues are identical glue, so any drift
	// means the wrapped models disagreed on timing).
	fpc, rpc := fq.PerCore(), rq.PerCore()
	for c := range fpc {
		if fpc[c] != rpc[c] {
			return &Divergence{Index: -1, Field: fmt.Sprintf("shared:per_core %d", c),
				Fast: fmt.Sprintf("%+v", fpc[c]), Ref: fmt.Sprintf("%+v", rpc[c])}
		}
	}
	if d := diffKVs("shared:queue", fq.Snapshot(), rq.Snapshot()); d != nil {
		return d
	}

	return diffFinalState(fast, ref, fastMem, refMem, seq)
}

// diffBatched replays seq on a fresh instance through memsys.AccessMany
// and compares it against the per-access fast run: per-request results,
// the final replay clock, the emitted event stream, and all final state.
// Any drift the specialized loop introduces (ordering, port
// serialization, counter accounting) surfaces as a "batch:" divergence.
func diffBatched(cfg nurapid.Config, m *cacti.Model, seq []Access,
	fast *nurapid.Cache, fastMem *memsys.Memory, fastRec *recorder,
	fastResults []memsys.AccessResult, fastEnd int64) *Divergence {
	batchMem := memsys.NewMemory(cfg.BlockBytes)
	batch := nurapid.MustNew(cfg, m, batchMem)
	batchRec := &recorder{}
	batch.SetProbe(batchRec)

	reqs := make([]memsys.Request, len(seq))
	for i, a := range seq {
		reqs[i] = memsys.Request{Addr: a.Addr, Write: a.Write, Gap: a.Gap}
	}
	out := make([]memsys.AccessResult, len(seq))
	end := memsys.AccessMany(batch, 0, reqs, out)

	for i := range out {
		if out[i] != fastResults[i] {
			return &Divergence{Index: i, Field: "batch:result",
				Fast: fmt.Sprintf("%+v", fastResults[i]), Ref: fmt.Sprintf("%+v", out[i])}
		}
	}
	if end != fastEnd {
		return &Divergence{Index: -1, Field: "batch:end_clock",
			Fast: fmt.Sprint(fastEnd), Ref: fmt.Sprint(end)}
	}
	for i := 0; i < len(fastRec.events) || i < len(batchRec.events); i++ {
		var fe, be obs.Event
		feOK, beOK := i < len(fastRec.events), i < len(batchRec.events)
		if feOK {
			fe = fastRec.events[i]
		}
		if beOK {
			be = batchRec.events[i]
		}
		if !feOK || !beOK || fe != be {
			return &Divergence{Index: -1, Field: fmt.Sprintf("batch:event %d", i),
				Fast: renderEvent(fe, feOK), Ref: renderEvent(be, beOK)}
		}
	}
	if d := diffCounters(fast.Counters(), batch.Counters()); d != nil {
		d.Field = "batch:" + d.Field
		return d
	}
	if d := diffKVs("batch:snapshot", fast.Snapshot(), batch.Snapshot()); d != nil {
		return d
	}
	if fast.EnergyNJ() != batch.EnergyNJ() {
		return &Divergence{Index: -1, Field: "batch:energy_nj",
			Fast: fmt.Sprint(fast.EnergyNJ()), Ref: fmt.Sprint(batch.EnergyNJ())}
	}
	fo, bo := fast.GroupOccupancy(), batch.GroupOccupancy()
	for g := range fo {
		if fo[g] != bo[g] {
			return &Divergence{Index: -1, Field: fmt.Sprintf("batch:occupancy dgroup %d", g),
				Fast: fmt.Sprint(fo[g]), Ref: fmt.Sprint(bo[g])}
		}
	}
	if fastMem.Accesses != batchMem.Accesses || fastMem.Writes != batchMem.Writes {
		return &Divergence{Index: -1, Field: "batch:memory traffic",
			Fast: fmt.Sprintf("accesses=%d writes=%d", fastMem.Accesses, fastMem.Writes),
			Ref:  fmt.Sprintf("accesses=%d writes=%d", batchMem.Accesses, batchMem.Writes)}
	}
	return nil
}

func renderEvent(e obs.Event, ok bool) string {
	if !ok {
		return "<stream ended>"
	}
	return fmt.Sprintf("%+v", e)
}

// diffFinalState compares everything observable after the sequence:
// counters, snapshot key/values, energy, d-group occupancy, per-address
// residency, and the memory traffic each model generated.
func diffFinalState(fast *nurapid.Cache, ref *refmodel.Cache,
	fastMem, refMem *memsys.Memory, seq []Access) *Divergence {
	if d := diffCounters(fast.Counters(), ref.Counters()); d != nil {
		return d
	}
	if d := diffKVs("snapshot", fast.Snapshot(), ref.Snapshot()); d != nil {
		return d
	}
	if fast.EnergyNJ() != ref.EnergyNJ() {
		return &Divergence{Index: -1, Field: "energy_nj",
			Fast: fmt.Sprint(fast.EnergyNJ()), Ref: fmt.Sprint(ref.EnergyNJ())}
	}
	fo, ro := fast.GroupOccupancy(), ref.GroupOccupancy()
	for g := range fo {
		if fo[g] != ro[g] {
			return &Divergence{Index: -1, Field: fmt.Sprintf("occupancy dgroup %d", g),
				Fast: fmt.Sprint(fo[g]), Ref: fmt.Sprint(ro[g])}
		}
	}
	// Residency and placement of every address the workload touched.
	checked := make(map[uint64]bool)
	for _, a := range seq {
		if checked[a.Addr] {
			continue
		}
		checked[a.Addr] = true
		if fg, rg := fast.GroupOf(a.Addr), ref.GroupOf(a.Addr); fg != rg {
			return &Divergence{Index: -1, Field: fmt.Sprintf("group_of %#x", a.Addr),
				Fast: fmt.Sprint(fg), Ref: fmt.Sprint(rg)}
		}
	}
	if fastMem.Accesses != refMem.Accesses || fastMem.Writes != refMem.Writes {
		return &Divergence{Index: -1, Field: "memory traffic",
			Fast: fmt.Sprintf("accesses=%d writes=%d", fastMem.Accesses, fastMem.Writes),
			Ref:  fmt.Sprintf("accesses=%d writes=%d", refMem.Accesses, refMem.Writes)}
	}
	return nil
}

func diffCounters(fast, ref *stats.Counters) *Divergence {
	names := map[string]bool{}
	for _, n := range fast.Names() {
		names[n] = true
	}
	for _, n := range ref.Names() {
		names[n] = true
	}
	// Deterministic report order: reuse the sorted name lists.
	for _, n := range append(fast.Names(), ref.Names()...) {
		if !names[n] {
			continue
		}
		names[n] = false
		if fast.Get(n) != ref.Get(n) {
			return &Divergence{Index: -1, Field: "counter:" + n,
				Fast: fmt.Sprint(fast.Get(n)), Ref: fmt.Sprint(ref.Get(n))}
		}
	}
	return nil
}

func diffKVs(what string, fast, ref []stats.KV) *Divergence {
	n := len(fast)
	if len(ref) > n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		var f, r stats.KV
		if i < len(fast) {
			f = fast[i]
		}
		if i < len(ref) {
			r = ref[i]
		}
		if f != r {
			return &Divergence{Index: -1, Field: fmt.Sprintf("%s[%d]", what, i),
				Fast: fmt.Sprintf("%s=%v", f.Name, f.Value),
				Ref:  fmt.Sprintf("%s=%v", r.Name, r.Value)}
		}
	}
	return nil
}

// Shrink reduces seq to a (locally) minimal access sequence that still
// diverges under cfg/opt, using a ddmin-style pass: repeatedly try to
// delete chunks of halving size, keeping any deletion that preserves the
// divergence. It returns nil when seq does not diverge at all.
func Shrink(cfg nurapid.Config, seq []Access, opt Options) []Access {
	diverges := func(s []Access) bool { return Diff(cfg, s, opt) != nil }
	if !diverges(seq) {
		return nil
	}
	cur := append([]Access(nil), seq...)
	for chunk := len(cur) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]Access(nil), cur[:start]...), cur[start+chunk:]...)
			if diverges(cand) {
				cur = cand
				removedAny = true
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removedAny {
			break
		}
		if chunk > 1 {
			chunk /= 2
		} else if !removedAny {
			break
		}
	}
	return cur
}

// artifactHeader is the first JSONL line of a divergence artifact.
type artifactHeader struct {
	Cell     string         `json:"cell"`
	Workload string         `json:"workload"`
	Config   nurapid.Config `json:"config"`
	Field    string         `json:"field"`
	Index    int            `json:"index"`
	Fast     string         `json:"fast"`
	Ref      string         `json:"ref"`
	Accesses int            `json:"accesses"`
	Fault    refmodel.Fault `json:"fault,omitempty"`
}

// WriteArtifact dumps a shrunk divergence as JSONL: one header line with
// the cell, config, and disagreement, then one line per access. The
// format is the replay input EXPERIMENTS.md's divergence walkthrough
// consumes.
func WriteArtifact(w io.Writer, cell, workload string, cfg nurapid.Config,
	opt Options, d *Divergence, seq []Access) error {
	enc := json.NewEncoder(w)
	hdr := artifactHeader{
		Cell: cell, Workload: workload, Config: cfg,
		Field: d.Field, Index: d.Index, Fast: d.Fast, Ref: d.Ref,
		Accesses: len(seq), Fault: opt.Fault,
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, a := range seq {
		if err := enc.Encode(a); err != nil {
			return err
		}
	}
	return nil
}

// ReadArtifact parses a JSONL artifact back into its access sequence (the
// header line is skipped), for replaying a dumped divergence in a test or
// debugger session.
func ReadArtifact(r io.Reader) (cfg nurapid.Config, seq []Access, err error) {
	dec := json.NewDecoder(r)
	var hdr artifactHeader
	if err := dec.Decode(&hdr); err != nil {
		return nurapid.Config{}, nil, fmt.Errorf("difftest: reading artifact header: %w", err)
	}
	for {
		var a Access
		if err := dec.Decode(&a); err == io.EOF {
			break
		} else if err != nil {
			return nurapid.Config{}, nil, fmt.Errorf("difftest: reading artifact access: %w", err)
		}
		seq = append(seq, a)
	}
	return hdr.Config, seq, nil
}

// Cell is one point of the policy matrix.
type Cell struct {
	Name string
	Cfg  nurapid.Config
}

// Matrix enumerates the full policy matrix the fuzzer covers: two
// geometries (2 and 4 d-groups), the three placement variants
// (unrestricted distance-associative, pointer-restricted, and the
// set-associative comparison), all four promotion policies (including
// the predictor-driven bypass), all three distance-replacement policies
// (including dead-on-arrival placement), and two promotion triggers,
// plus a memoized variant of a representative cell per geometry and
// placement. Geometries use large blocks so the whole cache is a few
// hundred frames and a few thousand accesses already thrash every
// structure.
func Matrix() []Cell {
	type geom struct {
		name     string
		capacity int64
		nGroups  int
	}
	geoms := []geom{
		{"2g", 2 << 20, 2},
		{"4g", 4 << 20, 4},
	}
	type placeVariant struct {
		name      string
		placement nurapid.Placement
		restrict  int
	}
	places := []placeVariant{
		{"da", nurapid.DistanceAssociative, 0},
		{"r16", nurapid.DistanceAssociative, 16},
		{"sa", nurapid.SetAssociative, 0},
	}
	promos := []nurapid.Promotion{
		nurapid.DemotionOnly, nurapid.NextFastest, nurapid.Fastest, nurapid.PredictiveBypass,
	}
	dists := []nurapid.DistancePolicy{
		nurapid.RandomDistance, nurapid.LRUDistance, nurapid.DeadOnArrival,
	}

	var cells []Cell
	for _, g := range geoms {
		for _, pl := range places {
			for _, pr := range promos {
				triggers := []int{0, 3}
				if pr == nurapid.DemotionOnly {
					triggers = []int{0} // no promotion, trigger is moot
				}
				for _, di := range dists {
					for _, ph := range triggers {
						cfg := nurapid.Config{
							CapacityBytes:  g.capacity,
							BlockBytes:     8192,
							Assoc:          8,
							NumDGroups:     g.nGroups,
							Promotion:      pr,
							Distance:       di,
							Placement:      pl.placement,
							RestrictFrames: pl.restrict,
							PromoteHits:    ph,
							Seed:           7,
						}
						cells = append(cells, Cell{
							Name: fmt.Sprintf("%s-%s-%s-%s-ph%d", g.name, pl.name, pr, di, ph),
							Cfg:  cfg,
						})
					}
				}
			}
			// Memoized variants: forward-pointer memoization is energy-only
			// accounting, so one plain cell and one all-predictor cell per
			// geometry and placement cover its interaction with every
			// policy family without doubling the matrix.
			memoized := []struct {
				promo nurapid.Promotion
				dist  nurapid.DistancePolicy
				ph    int
			}{
				{nurapid.NextFastest, nurapid.RandomDistance, 0},
				{nurapid.PredictiveBypass, nurapid.DeadOnArrival, 3},
			}
			for _, mv := range memoized {
				cfg := nurapid.Config{
					CapacityBytes:  g.capacity,
					BlockBytes:     8192,
					Assoc:          8,
					NumDGroups:     g.nGroups,
					Promotion:      mv.promo,
					Distance:       mv.dist,
					Placement:      pl.placement,
					RestrictFrames: pl.restrict,
					PromoteHits:    mv.ph,
					Memoize:        true,
					Seed:           7,
				}
				cells = append(cells, Cell{
					Name: fmt.Sprintf("%s-%s-%s-%s-ph%d-memo", g.name, pl.name, mv.promo, mv.dist, mv.ph),
					Cfg:  cfg,
				})
			}
		}
	}
	return cells
}

// Workload is a named deterministic access-sequence generator.
type Workload struct {
	Name string
	Gen  func(cfg nurapid.Config, seed uint64, n int) []Access
}

// Workloads returns the adversarial workload set. Each generator derives
// everything from its seed and the cache geometry, so a (cell, workload,
// seed, n) tuple is fully reproducible.
func Workloads() []Workload {
	return []Workload{
		// tight-sets confines traffic to a handful of sets with more live
		// tags than ways: constant evictions, and every fill lands in a
		// crowded partition, forcing demotion ripples.
		{"tight-sets", func(cfg nurapid.Config, seed uint64, n int) []Access {
			geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
			rng := mathx.NewRNG(seed)
			seq := make([]Access, n)
			for i := range seq {
				set := rng.Intn(4)
				tag := rng.Intn(3 * cfg.Assoc)
				seq[i] = Access{
					Addr:  uint64(tag*geo.NumSets()+set) * uint64(cfg.BlockBytes),
					Write: rng.Bool(0.3),
					Gap:   int64(rng.Intn(8)),
				}
			}
			return seq
		}},
		// promote-churn hammers a small hot set (driving promotion
		// triggers) while a cold stream of conflicting misses keeps
		// demoting the hot blocks back out — the promote/demote/evict
		// interleaving the pointer machinery finds hardest.
		{"promote-churn", func(cfg nurapid.Config, seed uint64, n int) []Access {
			geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
			rng := mathx.NewRNG(seed)
			hot := make([]uint64, 6)
			for i := range hot {
				hot[i] = uint64(i*geo.NumSets()) * uint64(cfg.BlockBytes) // all in set 0
			}
			seq := make([]Access, n)
			for i := range seq {
				if rng.Bool(0.7) {
					seq[i] = Access{Addr: hot[rng.Intn(len(hot))], Write: rng.Bool(0.1)}
				} else {
					set := rng.Intn(2)
					tag := 8 + rng.Intn(4*cfg.Assoc)
					seq[i] = Access{
						Addr:  uint64(tag*geo.NumSets()+set) * uint64(cfg.BlockBytes),
						Write: rng.Bool(0.2),
					}
				}
				seq[i].Gap = int64(rng.Intn(4))
			}
			return seq
		}},
		// stream-scan interleaves a wrap-around sequential sweep over a
		// 2x-cache footprint (blocks that are dead on arrival: each is
		// touched once per lap) with a small hot set that is re-referenced
		// constantly — the separation the reuse-distance predictor exists
		// to learn, so the predictive policies actually fire under it.
		{"stream-scan", func(cfg nurapid.Config, seed uint64, n int) []Access {
			geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
			rng := mathx.NewRNG(seed)
			nBlocks := int(cfg.CapacityBytes / int64(cfg.BlockBytes))
			hot := make([]uint64, 8)
			for i := range hot {
				hot[i] = uint64(i*geo.NumSets()) * uint64(cfg.BlockBytes) // all in (sampled) set 0
			}
			pos := 0
			seq := make([]Access, n)
			for i := range seq {
				if rng.Bool(0.3) {
					seq[i] = Access{Addr: hot[rng.Intn(len(hot))], Write: rng.Bool(0.1)}
				} else {
					blk := nBlocks + pos%(2*nBlocks) // disjoint from the hot blocks
					pos++
					seq[i] = Access{Addr: uint64(blk) * uint64(cfg.BlockBytes), Write: rng.Bool(0.1)}
				}
				seq[i].Gap = int64(rng.Intn(4))
			}
			return seq
		}},
		// writeback-storm is write-heavy with moderate conflict, so dirty
		// victims and their writeback energy/traffic accounting dominate.
		{"writeback-storm", func(cfg nurapid.Config, seed uint64, n int) []Access {
			geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
			rng := mathx.NewRNG(seed)
			seq := make([]Access, n)
			for i := range seq {
				set := rng.Intn(8)
				tag := rng.Intn(2 * cfg.Assoc)
				seq[i] = Access{
					Addr:  uint64(tag*geo.NumSets()+set) * uint64(cfg.BlockBytes),
					Write: rng.Bool(0.8),
					Gap:   int64(rng.Intn(16)),
				}
			}
			return seq
		}},
	}
}
