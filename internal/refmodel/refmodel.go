// Package refmodel is the executable specification of the NuRAPID cache:
// a second, independent implementation of the same behavioral contract as
// internal/nurapid, written for readability instead of speed and used as
// the oracle of the differential test harness (see the difftest
// subdirectory and DESIGN.md "Reference model & differential testing").
//
// Where internal/nurapid earns O(1) accesses with intrusive recency
// lists, packed frame metadata, and forward/reverse pointers threaded
// through tag Aux words, this model is a direct transcription of the
// paper's rules onto the simplest possible state: one Go map from block
// address to a block struct, one slice of frame slots per d-group, and
// monotonic timestamps with O(n) scans standing in for every LRU list.
// Any divergence between the two — per-access hit/miss outcome, serving
// d-group, completion cycle, counters, energy, or occupancy — is a bug in
// one of them.
//
// Two low-level disciplines are deliberately part of the shared contract
// rather than implementation detail, because under RandomDistance the
// *identity* of frames determines which blocks demote and therefore all
// downstream behavior:
//
//   - Free-list order. Each (d-group, partition) free list is a LIFO
//     stack initialized with frame ids ascending: the first allocation of
//     partition p returns frame p*partSize, and the most recently freed
//     frame is reused first. internal/nurapid's intrusive free chain
//     implements exactly this discipline.
//
//   - RNG draws. Random distance replacement performs exactly one
//     rng.Intn(partSize) draw per victim selection, in ripple order
//     (fastest d-group first), from a mathx.NewRNG(cfg.Seed) stream, and
//     nothing else consumes that stream.
//
// The model reuses the repository's parameter sources (cacti latencies
// and energies over the L-shaped floorplan, the memsys memory and port
// models, the address geometry) so that a divergence always points at the
// cache mechanics, never at an independently re-derived constant.
package refmodel

import (
	"fmt"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/floorplan"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nurapid"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

// accessIssueInterval and movementOccupancy mirror the port-timing
// constants of internal/nurapid: the pipelined single port accepts an
// access every 4 cycles, and each demotion link holds it for a victim
// read plus an incoming write of 2 cycles each.
const (
	accessIssueInterval = 4
	movementOccupancy   = 2
)

// Fault selects a deliberate deviation from the specification. Faults
// exist only to prove the differential harness works: injecting one into
// the reference model must make the fuzzer report (and shrink) a
// divergence against the real implementation. They are never enabled
// outside harness self-tests.
type Fault int

const (
	// NoFault is the faithful specification.
	NoFault Fault = iota
	// FaultSkipDemoteHitsReset models forgetting the "hits since arrival"
	// reset when a block is installed over a distance-replacement victim:
	// the block keeps its stale hit count, so with a promotion trigger
	// above 1 it is promoted too early after a demotion.
	FaultSkipDemoteHitsReset
	// FaultDeadOnArrivalInverted models wiring the dead-on-arrival
	// routing backwards: under nurapid.DeadOnArrival, predicted-dead
	// fills take the normal fastest-group demotion ripple and
	// predicted-live fills install into the slowest free frame — i.e.
	// every fill lands in the wrong target d-group.
	FaultDeadOnArrivalInverted
)

// block is everything the specification knows about one resident block.
// The two stamps implement the two independent recency orders of the
// paper: setStamp orders blocks within a tag set (data replacement,
// i.e. eviction), distStamp orders blocks within a d-group partition
// (distance replacement, i.e. demotion).
type block struct {
	key   uint64 // block address: byte address / BlockBytes
	set   int32
	dirty bool

	group int   // d-group currently holding the block
	frame int32 // frame within that d-group

	hits      int    // hits since arriving in the current d-group, saturating at 255
	setStamp  uint64 // last demand use, for set-LRU eviction
	distStamp uint64 // last use or (re)placement, for LRU distance replacement
}

// Cache is the reference NuRAPID model. It implements memsys.LowerLevel
// with the same observable behavior as nurapid.Cache built from the same
// Config, cacti model, and an identically parameterized memory.
type Cache struct {
	cfg nurapid.Config
	geo cache.Geometry

	latency  []int64   // full serve latency per d-group, tag included
	accessNJ []float64 // energy per data-array access per d-group
	tagLat   int64
	tagNJ    float64
	memoNJ   float64 // energy credited back per memoized (probe-free) hit

	blocks map[uint64]*block // resident blocks by block address
	frames [][]*block        // frames[g][f]: occupant of frame f in d-group g, nil when free
	free   [][][]int32       // free[g][p]: LIFO stack of free frame ids, top at index 0

	// pred is non-nil iff a predictive policy is configured; memo maps a
	// set to the block key of its most recent access (Memoize only).
	pred *refPredictor
	memo map[int]uint64

	framesPerGroup int
	nParts         int
	partSize       int
	tick           uint64 // monotonic stamp source for both recency orders

	port  memsys.Port
	mem   *memsys.Memory
	rng   *mathx.RNG
	probe obs.Probe
	fault Fault

	dist          *stats.Distribution
	ctrs          stats.Counters
	groupAccesses []int64
	energy        float64
}

// New builds the reference model. It accepts and rejects exactly the
// configurations nurapid.New does — configuration legality is part of the
// specification — with latencies and energies derived from the same cacti
// model and L-shaped floorplan. Config.Audit is ignored: the whole model
// is its own auditor.
func New(cfg nurapid.Config, m *cacti.Model, mem *memsys.Memory) (*Cache, error) {
	geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumDGroups <= 0 || geo.NumBlocks()%cfg.NumDGroups != 0 {
		return nil, fmt.Errorf("refmodel: %d blocks do not divide into %d d-groups",
			geo.NumBlocks(), cfg.NumDGroups)
	}
	totalMB := int(cfg.CapacityBytes >> 20)
	if int64(totalMB)<<20 != cfg.CapacityBytes || totalMB%cfg.NumDGroups != 0 {
		return nil, fmt.Errorf("refmodel: capacity %d B does not split into %d whole-MB d-groups",
			cfg.CapacityBytes, cfg.NumDGroups)
	}
	framesPerGroup := geo.NumBlocks() / cfg.NumDGroups

	var nParts, partSize int
	switch cfg.Placement {
	case nurapid.DistanceAssociative:
		if cfg.RestrictFrames > 0 {
			if framesPerGroup%cfg.RestrictFrames != 0 {
				return nil, fmt.Errorf("refmodel: %d frames per d-group not divisible by restriction %d",
					framesPerGroup, cfg.RestrictFrames)
			}
			nParts, partSize = framesPerGroup/cfg.RestrictFrames, cfg.RestrictFrames
		} else {
			nParts, partSize = 1, framesPerGroup
		}
	case nurapid.SetAssociative:
		if cfg.RestrictFrames > 0 {
			return nil, fmt.Errorf("refmodel: RestrictFrames %d is incompatible with set-associative placement (frames are already restricted to the set)",
				cfg.RestrictFrames)
		}
		if cfg.Assoc%cfg.NumDGroups != 0 {
			return nil, fmt.Errorf("refmodel: set-associative placement needs assoc %d divisible by %d d-groups",
				cfg.Assoc, cfg.NumDGroups)
		}
		nParts, partSize = geo.NumSets(), cfg.Assoc/cfg.NumDGroups
	default:
		return nil, fmt.Errorf("refmodel: unknown placement %v", cfg.Placement)
	}
	if cfg.PromoteHits < 0 || cfg.PromoteHits > 200 {
		// Mirrors nurapid.New: the hardware hit counter is 8 bits and
		// saturates at 255, so larger screens are unrepresentable.
		return nil, fmt.Errorf("refmodel: promotion trigger %d outside [0, 200] (the per-frame hit counter saturates at 255 and cannot represent larger screens)", cfg.PromoteHits)
	}

	plan := floorplan.NewLShapedPlan(totalMB, cfg.NumDGroups)
	lats := m.DGroupLatencies(plan)
	energies := m.DGroupEnergies(plan)

	c := &Cache{
		cfg:            cfg,
		geo:            geo,
		latency:        make([]int64, cfg.NumDGroups),
		accessNJ:       append([]float64(nil), energies...),
		tagLat:         int64(m.TagCycles),
		tagNJ:          m.TagProbeNJ,
		memoNJ:         m.TagProbeNJ,
		blocks:         make(map[uint64]*block),
		frames:         make([][]*block, cfg.NumDGroups),
		free:           make([][][]int32, cfg.NumDGroups),
		framesPerGroup: framesPerGroup,
		nParts:         nParts,
		partSize:       partSize,
		mem:            mem,
		rng:            mathx.NewRNG(cfg.Seed),
		groupAccesses:  make([]int64, cfg.NumDGroups),
	}
	labels := make([]string, cfg.NumDGroups)
	for g := 0; g < cfg.NumDGroups; g++ {
		labels[g] = fmt.Sprintf("dgroup-%d", g)
		c.latency[g] = int64(lats[g])
		c.frames[g] = make([]*block, framesPerGroup)
		c.free[g] = make([][]int32, nParts)
		for p := 0; p < nParts; p++ {
			// The pinned free-list discipline: ascending frame ids, top of
			// stack first.
			list := make([]int32, partSize)
			for i := range list {
				list[i] = int32(p*partSize + i)
			}
			c.free[g][p] = list
		}
	}
	c.dist = stats.NewDistribution(labels...)
	if cfg.Promotion == nurapid.PredictiveBypass || cfg.Distance == nurapid.DeadOnArrival {
		c.pred = newRefPredictor(cfg.Assoc)
	}
	if cfg.Memoize {
		c.memo = make(map[int]uint64)
	}
	return c, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg nurapid.Config, m *cacti.Model, mem *memsys.Memory) *Cache {
	c, err := New(cfg, m, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements memsys.LowerLevel.
func (c *Cache) Name() string {
	return fmt.Sprintf("refmodel-%dg-%s", c.cfg.NumDGroups, c.cfg.Promotion)
}

// Config returns the model's configuration.
func (c *Cache) Config() nurapid.Config { return c.cfg }

// SetProbe attaches an observability probe (obs.Probeable). The model
// emits the same event stream, in the same canonical order, as the real
// implementation.
func (c *Cache) SetProbe(p obs.Probe) { c.probe = p }

// InjectFault switches the model to a deliberately wrong variant of the
// specification. Harness self-tests only.
func (c *Cache) InjectFault(f Fault) { c.fault = f }

// nextTick returns a fresh monotonic stamp. Both recency orders draw from
// the one counter; each only ever compares its own stamps, so sharing the
// source is safe and keeps "later" unambiguous.
func (c *Cache) nextTick() uint64 {
	c.tick++
	return c.tick
}

// partition maps a block's set to its frame partition, identically in
// every d-group (paper Sec. 2.4.3): everything in one partition when
// placement is unrestricted, one partition per set when set-associative,
// set modulo partition count under a pointer restriction.
func (c *Cache) partition(set int) int {
	if c.nParts == 1 {
		return 0
	}
	if c.cfg.Placement == nurapid.SetAssociative {
		return set
	}
	return set % c.nParts
}

// chargeAccess records one data-array access in d-group g: a serve, a
// swap read/write, or a fill.
func (c *Cache) chargeAccess(g int) {
	c.groupAccesses[g]++
	c.energy += c.accessNJ[g]
}

// Access implements memsys.LowerLevel.
//
//nurapid:coldpath
func (c *Cache) Access(req memsys.Req) memsys.AccessResult {
	now, addr, write := req.Now, req.Addr, req.Write
	c.ctrs.Inc("accesses")
	if c.probe != nil {
		c.probe.Emit(obs.Access(now, addr, write, req.Core))
	}
	key := c.geo.BlockAddr(addr)
	// Predict before observe: the prediction for this access must not
	// see the access itself, or sampled and non-sampled sets would apply
	// different policies to identical streams.
	predictedDead := false
	if c.pred != nil {
		predictedDead = c.pred.predictDead(key)
		c.pred.observe(c.geo.SetIndex(addr), key)
	}
	if b, ok := c.blocks[key]; ok {
		return c.hit(now, b, write, predictedDead)
	}
	return c.miss(now, addr, write, predictedDead)
}

// hit serves a resident block: refresh both recency orders, bump the
// saturating hit counter, charge the serving d-group, and apply the
// promotion policy. The result reports the d-group that served the hit,
// even when the block is promoted away in the same access.
func (c *Cache) hit(now int64, b *block, write, predictedDead bool) memsys.AccessResult {
	// Way memoization: a repeat access to the set's most recent block
	// skips the sequential tag probe and earns the probe energy back. A
	// memo entry is never stale — promotion, demotion, and swaps move
	// data frames but leave the block's tag way untouched, and evicting
	// the memoized block requires a miss in this set, which re-points
	// the memo at the incoming block.
	memoized := false
	if c.cfg.Memoize {
		last, ok := c.memo[int(b.set)]
		memoized = ok && last == b.key
	}
	b.setStamp = c.nextTick() // a demand use, for set-LRU eviction
	if write {
		b.dirty = true
	}
	g := b.group
	b.distStamp = c.nextTick() // and a use for distance replacement
	if b.hits < 255 {
		b.hits++ // the hardware counter is 8 bits and saturates
	}

	start := c.port.Acquire(now, accessIssueInterval)
	done := start + c.latency[g]
	c.chargeAccess(g)
	if memoized {
		c.ctrs.Inc("memo_hits")
		c.energy -= c.memoNJ
	}
	c.dist.AddHit(g)
	if c.probe != nil {
		c.probe.Emit(obs.Hit(now, g, done-now))
	}

	// Promotion (paper Sec. 2.4.1): after the trigger-th hit since
	// arriving in its d-group, a non-fastest block moves closer.
	trigger := 1
	if c.cfg.PromoteHits > 1 {
		trigger = c.cfg.PromoteHits
	}
	switch c.cfg.Promotion {
	case nurapid.NextFastest:
		if g > 0 && b.hits >= trigger {
			c.promote(now, b, g-1)
		}
	case nurapid.Fastest:
		if g > 0 && b.hits >= trigger {
			c.promote(now, b, 0)
		}
	case nurapid.PredictiveBypass:
		if predictedDead {
			// Promotion bypass, with the saturating-counter interaction
			// pinned: a bypassed hit RESETS the block's hit counter to
			// zero rather than letting it keep saturating, so a block
			// whose prediction later flips back to live must earn a full
			// PromoteHits screen of fresh hits before promoting — it can
			// never mass-promote off a counter that quietly saturated at
			// 255 while every hit was being bypassed.
			b.hits = 0
			c.ctrs.Inc("bypasses")
			if c.probe != nil {
				c.probe.Emit(obs.Bypass(now, g))
			}
		} else if g > 0 && b.hits >= trigger {
			c.promote(now, b, g-1)
		}
	}
	if c.cfg.Memoize {
		c.memo[int(b.set)] = b.key
	}
	return memsys.AccessResult{Hit: true, DoneAt: done, Group: g}
}

// miss fetches addr from memory. Data replacement (eviction) is set-LRU
// and completely decoupled from distance replacement: the victim frees a
// frame in whatever d-group held it, and the new block is placed in the
// fastest d-group, demotions rippling outward until a free frame — at the
// latest the victim's — absorbs the chain.
func (c *Cache) miss(now int64, addr uint64, write, predictedDead bool) memsys.AccessResult {
	start := c.port.Acquire(now, accessIssueInterval)
	c.energy += c.tagNJ
	c.dist.AddMiss()
	c.ctrs.Inc("misses")
	if c.probe != nil {
		c.probe.Emit(obs.Miss(now, addr))
	}

	set := c.geo.SetIndex(addr)
	if victim := c.setLRU(set); victim != nil {
		c.freeFrame(victim)
		delete(c.blocks, victim.key)
		c.ctrs.Inc("evictions")
		if c.probe != nil {
			c.probe.Emit(obs.Evict(now, victim.group, victim.dirty))
		}
		if victim.dirty {
			c.ctrs.Inc("writebacks")
			c.chargeAccess(victim.group) // victim read for writeback
			c.mem.Write()
		}
	}

	done := c.mem.Read(start + c.tagLat)

	b := &block{key: c.geo.BlockAddr(addr), set: int32(set), dirty: write}
	b.setStamp = c.nextTick()
	c.blocks[b.key] = b
	dead := predictedDead
	if c.fault == FaultDeadOnArrivalInverted {
		dead = !dead
	}
	if c.cfg.Distance == nurapid.DeadOnArrival && dead {
		c.placeDead(now, b)
	} else {
		c.place(now, b, 0)
	}
	if c.cfg.Memoize {
		c.memo[set] = b.key
	}
	return memsys.AccessResult{Hit: false, DoneAt: done, Group: -1}
}

// setLRU returns the data-replacement victim of a tag set — the least
// recently demand-used resident block — or nil while the set still has a
// free way. The map scan is O(blocks); stamps are unique, so the minimum
// is well-defined regardless of map iteration order.
func (c *Cache) setLRU(set int) *block {
	var lru *block
	resident := 0
	for _, b := range c.blocks {
		if int(b.set) != set {
			continue
		}
		resident++
		if lru == nil || b.setStamp < lru.setStamp {
			lru = b
		}
	}
	if resident < c.geo.Assoc {
		return nil
	}
	return lru
}

// promote moves a just-hit block to a faster d-group: its frame is
// released first, so the demotion ripple that placement triggers can
// terminate there at the latest.
func (c *Cache) promote(now int64, b *block, to int) {
	from := b.group
	c.freeFrame(b)
	c.ctrs.Inc("promotions")
	if c.probe != nil {
		c.probe.Emit(obs.Promote(now, from, to))
	}
	c.place(now, b, to)
}

// place installs b into d-group g: into a free frame of its partition if
// one exists, otherwise over a distance-replacement victim, which is then
// placed one d-group farther — the paper's demotion ripple. Conservation
// of frames bounds the chain at NumDGroups-1 links.
func (c *Cache) place(now int64, b *block, g int) {
	depth := 0
	for {
		if g >= c.cfg.NumDGroups {
			panic("refmodel: demotion ripple ran past the slowest d-group")
		}
		p := c.partition(int(b.set))
		if f, ok := c.takeFree(g, p); ok {
			c.frames[g][f] = b
			b.group, b.frame = g, f
			b.hits = 0 // promotion counts hits since arrival here
			b.distStamp = c.nextTick()
			c.chargeAccess(g) // fill write
			if c.probe != nil {
				c.probe.Emit(obs.Place(now, g, depth))
				if depth > 0 {
					c.probe.Emit(obs.SwapBacklog(now, c.port.FreeAt()-now))
				}
			}
			return
		}
		f := c.distanceVictim(g, p)
		victim := c.frames[g][f]
		c.frames[g][f] = b
		b.group, b.frame = g, f
		if c.fault != FaultSkipDemoteHitsReset {
			b.hits = 0
		}
		b.distStamp = c.nextTick()
		c.chargeAccess(g) // victim read
		c.chargeAccess(g) // incoming write
		c.port.Extend(2 * movementOccupancy)
		c.ctrs.Inc("demotions")
		depth++
		if c.probe != nil {
			c.probe.Emit(obs.DemoteLink(now, g, g+1, depth))
		}
		b = victim
		g++
	}
}

// placeDead installs a predicted-dead fill directly into the slowest
// d-group whose partition has a free frame, scanning slowest to fastest
// — no demotion ripple. Conservation of frames guarantees the scan
// succeeds: each partition holds exactly as many frames as the sets
// mapping to it hold blocks, so the data replacement preceding this
// fill freed a frame when the partition was full.
func (c *Cache) placeDead(now int64, b *block) {
	p := c.partition(int(b.set))
	for g := c.cfg.NumDGroups - 1; g >= 0; g-- {
		f, ok := c.takeFree(g, p)
		if !ok {
			continue
		}
		c.frames[g][f] = b
		b.group, b.frame = g, f
		b.hits = 0
		b.distStamp = c.nextTick()
		c.chargeAccess(g) // fill write
		c.ctrs.Inc("dead_fills")
		if c.probe != nil {
			c.probe.Emit(obs.Place(now, g, 0))
		}
		return
	}
	panic("refmodel: dead-on-arrival fill found no free frame in its partition")
}

// takeFree pops the top of a partition's free stack (the pinned LIFO
// discipline), reporting false when the partition is full.
func (c *Cache) takeFree(g, p int) (int32, bool) {
	list := c.free[g][p]
	if len(list) == 0 {
		return 0, false
	}
	c.free[g][p] = list[1:]
	return list[0], true
}

// freeFrame vacates b's current frame and pushes it on its partition's
// free stack, most recently freed first.
func (c *Cache) freeFrame(b *block) {
	g, f := b.group, b.frame
	if c.frames[g][f] != b {
		panic("refmodel: freeing a frame the block does not occupy")
	}
	c.frames[g][f] = nil
	p := int(f) / c.partSize
	c.free[g][p] = append([]int32{f}, c.free[g][p]...)
}

// distanceVictim selects the frame to demote from a full partition:
// the least recently used frame under LRUDistance, or a single uniform
// draw — the pinned one-draw-per-victim RNG contract — under
// RandomDistance.
func (c *Cache) distanceVictim(g, p int) int32 {
	base := int32(p * c.partSize)
	if c.cfg.Distance == nurapid.LRUDistance {
		victim := int32(-1)
		for f := base; f < base+int32(c.partSize); f++ {
			b := c.frames[g][f]
			if b == nil {
				panic("refmodel: distance victim requested while partition has free frames")
			}
			if victim < 0 || b.distStamp < c.frames[g][victim].distStamp {
				victim = f
			}
		}
		return victim
	}
	return base + int32(c.rng.Intn(c.partSize))
}

// Distribution implements memsys.LowerLevel.
func (c *Cache) Distribution() *stats.Distribution { return c.dist }

// EnergyNJ implements memsys.LowerLevel.
func (c *Cache) EnergyNJ() float64 { return c.energy }

// Counters implements memsys.LowerLevel.
func (c *Cache) Counters() *stats.Counters {
	c.ctrs.Set("port_wait_cycles", c.port.WaitCycles)
	c.ctrs.Set("port_conflicts", c.port.Conflicts)
	c.ctrs.Set("port_busy_cycles", c.port.BusyCycles)
	return &c.ctrs
}

// Snapshot mirrors nurapid.Cache.Snapshot key for key, so snapshot
// comparison needs no translation table.
func (c *Cache) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: "tag_latency_cycles", Value: float64(c.tagLat)},
		{Name: "tag_access_nj", Value: c.tagNJ},
		{Name: "energy_nj", Value: c.energy},
	}
	if c.cfg.Memoize {
		out = append(out, stats.KV{Name: "memo_saved_nj", Value: c.memoNJ * float64(c.ctrs.Get("memo_hits"))})
	}
	out = append(out, c.Counters().Snapshot()...)
	for g, n := range c.GroupAccesses() {
		out = append(out, stats.KV{Name: fmt.Sprintf("dgroup_%d_accesses", g), Value: float64(n)})
	}
	return out
}

// GroupAccesses returns the number of data-array accesses per d-group.
func (c *Cache) GroupAccesses() []int64 {
	return append([]int64(nil), c.groupAccesses...)
}

// GroupOf reports which d-group currently holds addr, or -1 when the
// block is not resident. No side effects.
func (c *Cache) GroupOf(addr uint64) int {
	b, ok := c.blocks[c.geo.BlockAddr(addr)]
	if !ok {
		return -1
	}
	return b.group
}

// Contains reports whether addr is resident (no side effects).
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.blocks[c.geo.BlockAddr(addr)]
	return ok
}

// GroupOccupancy returns the number of occupied frames per d-group.
func (c *Cache) GroupOccupancy() []int {
	out := make([]int, c.cfg.NumDGroups)
	for g, frames := range c.frames {
		for _, b := range frames {
			if b != nil {
				out[g]++
			}
		}
	}
	return out
}

var _ memsys.LowerLevel = (*Cache)(nil)
var _ obs.Probeable = (*Cache)(nil)
