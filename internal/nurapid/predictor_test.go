package nurapid

import (
	"math"
	"testing"

	"nurapid/internal/memsys"
)

// region returns a block key inside 64-block region r (regions are the
// predictor's PC surrogate: key >> predRegionShift).
func region(r int) uint64 { return uint64(r) << predRegionShift }

// TestPredictorIgnoresNonSampledSets pins the sampling contract: only
// sets at multiples of predSampleStride touch the shadow tags or train
// the table; every other set is free.
func TestPredictorIgnoresNonSampledSets(t *testing.T) {
	p := newPredictor(64, 4)
	for i := 0; i < 100; i++ {
		p.observe(1, region(i))
		p.observe(predSampleStride/2, region(i+100))
		p.observe(predSampleStride+3, region(i+200))
	}
	for i, v := range p.shadowValid {
		if v {
			t.Fatalf("shadow entry %d became valid from non-sampled sets", i)
		}
	}
	for s, v := range p.table {
		if v != 0 {
			t.Fatalf("table[%d] = %d trained from non-sampled sets", s, v)
		}
	}
	if p.tick != 0 {
		t.Fatalf("tick = %d advanced on non-sampled sets", p.tick)
	}
}

// TestPredictorSaturatingTraining walks one signature up to the 2-bit
// ceiling via repeated dead evictions and back down to the floor via
// re-references, checking the threshold crossing both ways.
func TestPredictorSaturatingTraining(t *testing.T) {
	p := newPredictor(predSampleStride, 2)
	dead := region(1)
	if p.predictDead(dead) {
		t.Fatal("fresh predictor must predict live")
	}
	// Each round installs dead in set 0's 2-deep shadow and then floods
	// it with two fillers, evicting dead without a re-reference.
	for round := 0; round < 6; round++ {
		p.observe(0, dead)
		p.observe(0, region(100+round))
		p.observe(0, region(200+round))
		if got := p.table[predSig(dead)]; got > predCounterMax {
			t.Fatalf("round %d: counter %d above the saturation ceiling", round, got)
		}
	}
	if got := p.table[predSig(dead)]; got != predCounterMax {
		t.Fatalf("counter = %d after 6 dead evictions, want saturated at %d", got, predCounterMax)
	}
	if !p.predictDead(dead) {
		t.Fatal("saturated counter must predict dead")
	}
	// Re-referencing a shadowed key trains live once per install; the
	// counter must cross below the threshold and floor at zero.
	for round := 0; round < 6; round++ {
		p.observe(0, dead)
		p.observe(0, dead) // first re-reference trains live
		p.observe(0, dead) // further re-references must not train again
		p.observe(0, region(300+round))
		p.observe(0, region(400+round)) // evicts dead, but it was referenced: no dead training
	}
	if got := p.table[predSig(dead)]; got != 0 {
		t.Fatalf("counter = %d after 6 live re-references, want floored at 0", got)
	}
	if p.predictDead(dead) {
		t.Fatal("floored counter must predict live")
	}
}

// TestPredictorRegionAliasing pins the PC-surrogate hash: keys in the
// same 64-block region share one signature (a streaming scan trains its
// whole footprint as one entity), while adjacent regions hash apart.
func TestPredictorRegionAliasing(t *testing.T) {
	if predSig(0) != predSig(predRegionBlocks()-1) {
		t.Fatal("keys 0 and 63 are one region but hash to different signatures")
	}
	if predSig(region(5)) != predSig(region(5)+17) {
		t.Fatal("keys of region 5 hash to different signatures")
	}
	if predSig(region(0)) == predSig(region(1)) {
		t.Fatal("adjacent regions 0 and 1 alias; the hash is not spreading")
	}
	// Training any key of a region must flip the prediction for every
	// other key of that region.
	p := newPredictor(predSampleStride, 2)
	for round := 0; round < 3; round++ {
		p.observe(0, region(7))
		p.observe(0, region(500+round))
		p.observe(0, region(600+round))
	}
	if !p.predictDead(region(7) + 42) {
		t.Fatal("dead training did not generalize across the 64-block region")
	}
}

func predRegionBlocks() uint64 { return 1 << predRegionShift }

// predictiveCache builds a small 2-d-group cache under PredictiveBypass
// with tight partitions, for driving blocks into the slow d-group.
func predictiveCache(t *testing.T) (*Cache, *memsys.Memory) {
	return build(t, func(c *Config) {
		c.CapacityBytes = 2 << 20
		c.NumDGroups = 2
		c.RestrictFrames = 4
		c.Promotion = PredictiveBypass
		c.PromoteHits = 3
	})
}

// TestBypassResetsHitCounter pins the satellite-2 semantics: a bypassed
// hit RESETS the per-frame hit counter instead of letting it accumulate,
// so when the prediction later flips to live, the block must re-earn its
// promotion screen from zero — it cannot mass-promote off hits that were
// taken while bypassed.
func TestBypassResetsHitCounter(t *testing.T) {
	c, _ := predictiveCache(t)
	cfg := c.Config()
	numSets := int(cfg.CapacityBytes) / (cfg.BlockBytes * cfg.Assoc)
	// Work in a NON-sampled set so the poked prediction cannot be
	// retrained by the accesses themselves.
	const set = 1
	addr := func(tag int) uint64 { return uint64(tag*numSets+set) * 128 }
	target := addr(0)

	// Predict the target's region dead for the whole demotion phase.
	c.pred.table[predSig(target/128)] = predDeadAt

	now := int64(0)
	access := func(a uint64) memsys.AccessResult {
		r := c.Access(memsys.Req{Now: now, Addr: a, Write: false})
		now = r.DoneAt + 1
		return r
	}
	access(target)
	// Keep the target's tag MRU with bypassed hits while fresh conflict
	// misses pressure its 4-frame g0 partition; random demotion pushes
	// the target into g1 within a handful of rounds.
	tag := 1
	for c.GroupOf(target) == 0 {
		access(target)
		access(addr(tag))
		tag++
		if tag > 100 {
			t.Fatal("target never demoted; the conflict pressure is miscalibrated")
		}
	}

	// Bypassed hits in g1: each resets the screen counter, no movement.
	before := c.Counters().Get("bypasses")
	for i := 0; i < 5; i++ {
		if r := access(target); !r.Hit || r.Group != 1 {
			t.Fatalf("bypassed hit %d: hit=%v group=%d, want a g1 hit", i, r.Hit, r.Group)
		}
	}
	if got := c.Counters().Get("bypasses") - before; got < 5 {
		t.Fatalf("bypasses grew by %d, want >= 5", got)
	}
	if g := c.GroupOf(target); g != 1 {
		t.Fatalf("bypassed block moved to d-group %d", g)
	}

	// Prediction flips to live: the first hit must NOT promote (the
	// counter restarted at zero), the third must (trigger = 3).
	c.pred.table[predSig(target/128)] = 0
	access(target)
	if g := c.GroupOf(target); g != 1 {
		t.Fatalf("block promoted on the first post-flip hit (d-group %d): bypassed hits leaked into the screen counter", g)
	}
	access(target)
	access(target)
	if g := c.GroupOf(target); g != 0 {
		t.Fatalf("block in d-group %d after re-earning the trigger, want promotion to 0", g)
	}
}

// TestMemoizationEnergyOnly pins the forward-pointer memoization
// contract: repeat accesses to a set's most recent block count as
// memo_hits and credit the tag-probe energy back, with bit-identical
// timing and outcomes versus the unmemoized cache.
func TestMemoizationEnergyOnly(t *testing.T) {
	plain, _ := build(t, nil)
	memo, _ := build(t, func(c *Config) { c.Memoize = true })

	const repeats = 10
	now := int64(0)
	var nowM int64
	for i := 0; i <= repeats; i++ {
		rp := plain.Access(memsys.Req{Now: now, Addr: blockAddr(1), Write: false})
		rm := memo.Access(memsys.Req{Now: nowM, Addr: blockAddr(1), Write: false})
		if rp != rm {
			t.Fatalf("access %d: memoized result %+v differs from plain %+v", i, rm, rp)
		}
		now, nowM = rp.DoneAt+1, rm.DoneAt+1
	}

	if got := memo.Counters().Get("memo_hits"); got != repeats {
		t.Fatalf("memo_hits = %d, want %d (every hit repeats the set's last tag)", got, repeats)
	}
	if got := plain.Counters().Get("memo_hits"); got != 0 {
		t.Fatalf("unmemoized cache counted %d memo_hits", got)
	}
	saved := plain.EnergyNJ() - memo.EnergyNJ()
	want := float64(repeats) * testModel().TagProbeNJ
	if math.Abs(saved-want) > 1e-9 {
		t.Fatalf("memoization saved %.4f nJ, want %.4f (%d probes at %.2f nJ)",
			saved, want, repeats, testModel().TagProbeNJ)
	}
	// The snapshot surfaces the credit (and statsreg requires the field).
	found := false
	for _, kv := range memo.Snapshot() {
		if kv.Name == "memo_saved_nj" {
			found = true
			if math.Abs(kv.Value-want) > 1e-9 {
				t.Fatalf("memo_saved_nj = %.4f, want %.4f", kv.Value, want)
			}
		}
	}
	if !found {
		t.Fatal("memoized snapshot missing memo_saved_nj")
	}
	for _, kv := range plain.Snapshot() {
		if kv.Name == "memo_saved_nj" {
			t.Fatal("unmemoized snapshot must not emit memo_saved_nj")
		}
	}
}
