// Package nurapid implements the paper's primary contribution: the
// Non-uniform access with Replacement And Placement using Distance
// associativity cache (NuRAPID).
//
// A centralized set-associative tag array is probed before the data
// arrays (sequential tag-data access). Each tag entry carries a forward
// pointer to an arbitrary frame in one of a few large distance-groups
// (d-groups); each frame carries a reverse pointer back to its tag
// entry. New blocks are placed in the fastest d-group; making room
// demotes some other block — not necessarily from the same set — to the
// next-slower d-group, rippling until a free frame absorbs the chain.
// Eviction from the cache (data replacement) stays LRU within the set
// and is completely decoupled from demotion (distance replacement).
//
// The cache is one-ported and non-banked: any outstanding block movement
// must complete before the next access starts, modeled with a single
// port scoreboard.
//
// The implementation is organized for an allocation-free access loop:
// all d-group frames live in one flat frameStore indexed by dense global
// frame ids (the tag-line forward pointer is that id plus one), per-set
// partition and per-group latency/energy lookups are precomputed tables,
// and the per-access event counts are plain struct fields materialized
// into the named counter set only when Counters() is called.
package nurapid

import (
	"fmt"

	"nurapid/internal/cache"
	"nurapid/internal/cacti"
	"nurapid/internal/floorplan"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/obs"
	"nurapid/internal/stats"
)

// Promotion selects what happens when a block hits outside the fastest
// d-group (paper Sec. 2.4.1).
type Promotion int

const (
	// DemotionOnly never promotes; blocks only move outward.
	DemotionOnly Promotion = iota
	// NextFastest promotes a hit block one d-group closer, demoting the
	// distance-replacement victim of that group into the freed frame.
	NextFastest
	// Fastest promotes a hit block straight to d-group 0, rippling
	// demotions outward until the freed frame absorbs the chain.
	Fastest
	// PredictiveBypass promotes like NextFastest, except that a hit on a
	// block the sampled reuse-distance predictor flags as dead/streaming
	// bypasses the promotion machinery entirely: no movement, and the
	// block's saturating hit counter is reset so a later prediction flip
	// still has to earn a full PromoteHits screen before promoting.
	PredictiveBypass
)

func (p Promotion) String() string {
	switch p {
	case DemotionOnly:
		return "demotion-only"
	case NextFastest:
		return "next-fastest"
	case Fastest:
		return "fastest"
	case PredictiveBypass:
		return "predictive-bypass"
	default:
		return fmt.Sprintf("Promotion(%d)", int(p))
	}
}

// DistancePolicy selects how the distance-replacement victim is chosen
// within a d-group (paper Sec. 2.4.2).
type DistancePolicy int

const (
	// RandomDistance picks a victim frame uniformly (the paper's
	// recommended cheap policy).
	RandomDistance DistancePolicy = iota
	// LRUDistance tracks true LRU among a d-group's frames (the paper's
	// expensive reference point).
	LRUDistance
	// DeadOnArrival selects victims like RandomDistance, but a fill whose
	// block the reuse-distance predictor flags as dead installs directly
	// into the slowest d-group with a free frame (scanning slowest to
	// fastest) instead of rippling demotions out of d-group 0.
	DeadOnArrival
)

func (p DistancePolicy) String() string {
	switch p {
	case RandomDistance:
		return "random"
	case LRUDistance:
		return "lru"
	case DeadOnArrival:
		return "dead-on-arrival"
	default:
		return fmt.Sprintf("DistancePolicy(%d)", int(p))
	}
}

// Placement selects the tag-data coupling mode.
type Placement int

const (
	// DistanceAssociative is NuRAPID's decoupled placement: any block in
	// any frame of any d-group.
	DistanceAssociative Placement = iota
	// SetAssociative couples placement to the set, giving each set a
	// fixed assoc/nGroups frames per d-group — the comparison cache of
	// the paper's Figure 4.
	SetAssociative
)

func (p Placement) String() string {
	switch p {
	case DistanceAssociative:
		return "distance-associative"
	case SetAssociative:
		return "set-associative"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Config parameterizes a NuRAPID cache. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	CapacityBytes int64 // total data capacity (8 MB in the paper)
	BlockBytes    int   // 128 in the paper
	Assoc         int   // tag-array associativity (8 in the paper)
	NumDGroups    int   // 2, 4, or 8

	Promotion Promotion
	Distance  DistancePolicy
	Placement Placement

	// RestrictFrames, when positive, restricts each block to a partition
	// of that many frames within each d-group (Sec. 2.4.3), shrinking
	// the forward/reverse pointers. 0 means fully flexible.
	RestrictFrames int

	// PromoteHits is the promotion trigger: a block is promoted after
	// its PromoteHits-th hit since arriving in its current d-group.
	// 0 and 1 both mean "promote on every hit" (the paper's policy);
	// higher values screen blocks before moving them, an ablation of
	// the screening D-NUCA performs with its slowest-first placement.
	PromoteHits int

	// Memoize enables forward-pointer memoization (after Ishihara &
	// Fallah's way memoization): each set remembers the tag and way of
	// its most recent access, and a repeat access to the same block skips
	// the sequential tag probe. The memo is an energy optimization only —
	// timing and placement are untouched — and each skipped probe credits
	// the cacti tag-probe energy back.
	Memoize bool

	Seed uint64 // seed for random distance replacement

	// Audit, when true, re-verifies the cache's structural invariants
	// (forward/reverse pointer bijection, d-group occupancy conservation,
	// recency-list well-formedness) after every access and panics on the
	// first violation. It makes each access cost O(frames) — for tests
	// and debugging only, never for performance runs.
	Audit bool
}

// DefaultConfig is the paper's primary design: 8 MB, 8-way, 128-B blocks,
// 4 d-groups, next-fastest promotion, random distance replacement.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 8 << 20,
		BlockBytes:    128,
		Assoc:         8,
		NumDGroups:    4,
		Promotion:     NextFastest,
		Distance:      RandomDistance,
		Placement:     DistanceAssociative,
		Seed:          1,
	}
}

// accessIssueInterval is the cycles between successive accesses the
// single port can accept when no block movement is outstanding: the tag
// array and data subarrays are pipelined even though the cache is
// non-banked.
const accessIssueInterval = 4

// movementOccupancy is the port time one block movement operation (a
// swap read or write, a demotion write, a victim read) holds the single
// port: a 128-B block transfer on the wide (64-B/cycle), pipelined
// internal bus.
// Movement must complete before the next access is initiated, so these
// cycles are the price NuRAPID pays for each swap — kept affordable by
// how few swaps its placement policy needs.
const movementOccupancy = 2

// hotCounters are the per-access event counts, kept as plain fields so
// the access loop never hashes a counter name. Counters() materializes
// them into the named set with the same presence semantics Inc would
// have produced: a name exists iff its event occurred at least once.
type hotCounters struct {
	accesses   int64
	misses     int64
	evictions  int64
	writebacks int64
	promotions int64
	demotions  int64
	bypasses   int64 // hits whose promotion the predictor suppressed
	deadFills  int64 // fills installed dead-on-arrival in a slow d-group
	memoHits   int64 // hits served through the per-set way memo
}

// Cache is a NuRAPID lower-level cache. It implements memsys.LowerLevel.
type Cache struct {
	cfg    Config
	geo    cache.Geometry
	idx    cache.Index
	tags   *cache.Array
	store  frameStore
	tagLat int64
	tagNJ  float64
	memoNJ float64 // energy credited back per memoized (probe-free) hit

	nGroups        int
	framesPerGroup int
	nParts         int
	partSize       int
	fpgShift       uint8 // frame id -> group shift; valid iff fpgPow2
	fpgPow2        bool
	trigger        uint8 // promotion trigger in saturating-hit units

	grpLat      []int64   // serve latency per d-group
	grpNJ       []float64 // energy per data-array access per d-group
	grpAccesses []int64   // data-array accesses per d-group
	partTab     []int32   // set -> frame partition (same in every group)

	port  memsys.Port
	mem   *memsys.Memory
	rng   *mathx.RNG
	probe obs.Probe

	// pred is non-nil iff a predictive policy is configured; the memo
	// slices are non-nil iff Config.Memoize (memoWay -1 = no memo entry).
	pred    *predictor
	memoTag []uint64
	memoWay []int32

	dist   *stats.Distribution
	ctrs   stats.Counters
	hot    hotCounters
	energy float64
}

// New builds a NuRAPID cache with latencies and energies derived from the
// cacti model and the L-shaped floorplan.
func New(cfg Config, m *cacti.Model, mem *memsys.Memory) (*Cache, error) {
	geo := cache.Geometry{CapacityBytes: cfg.CapacityBytes, BlockBytes: cfg.BlockBytes, Assoc: cfg.Assoc}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumDGroups <= 0 || geo.NumBlocks()%cfg.NumDGroups != 0 {
		return nil, fmt.Errorf("nurapid: %d blocks do not divide into %d d-groups",
			geo.NumBlocks(), cfg.NumDGroups)
	}
	totalMB := int(cfg.CapacityBytes >> 20)
	if int64(totalMB)<<20 != cfg.CapacityBytes || totalMB%cfg.NumDGroups != 0 {
		return nil, fmt.Errorf("nurapid: capacity %d B does not split into %d whole-MB d-groups",
			cfg.CapacityBytes, cfg.NumDGroups)
	}
	framesPerGroup := geo.NumBlocks() / cfg.NumDGroups

	var nParts, partSize int
	switch cfg.Placement {
	case DistanceAssociative:
		if cfg.RestrictFrames > 0 {
			if framesPerGroup%cfg.RestrictFrames != 0 {
				return nil, fmt.Errorf("nurapid: %d frames per d-group not divisible by restriction %d",
					framesPerGroup, cfg.RestrictFrames)
			}
			nParts, partSize = framesPerGroup/cfg.RestrictFrames, cfg.RestrictFrames
		} else {
			nParts, partSize = 1, framesPerGroup
		}
	case SetAssociative:
		if cfg.RestrictFrames > 0 {
			// Set-associative placement already pins each block to the
			// assoc/nGroups frames of its set; a frame restriction on top
			// of that has no meaning, and silently ignoring it would let
			// sweeps believe they measured a configuration that never ran.
			return nil, fmt.Errorf("nurapid: RestrictFrames %d is incompatible with set-associative placement (frames are already restricted to the set)",
				cfg.RestrictFrames)
		}
		if cfg.Assoc%cfg.NumDGroups != 0 {
			return nil, fmt.Errorf("nurapid: set-associative placement needs assoc %d divisible by %d d-groups",
				cfg.Assoc, cfg.NumDGroups)
		}
		nParts, partSize = geo.NumSets(), cfg.Assoc/cfg.NumDGroups
	default:
		return nil, fmt.Errorf("nurapid: unknown placement %v", cfg.Placement)
	}
	if cfg.PromoteHits < 0 || cfg.PromoteHits > 200 {
		// The per-frame hit count is an 8-bit saturating counter capped at
		// 255; triggers beyond 200 would sit in (or wrap into) the
		// saturation zone and silently never (or instantly) fire, so the
		// range check keeps the uint8 narrowing below provably lossless.
		return nil, fmt.Errorf("nurapid: promotion trigger %d outside [0, 200] (the per-frame hit counter saturates at 255 and cannot represent larger screens)", cfg.PromoteHits)
	}

	plan := floorplan.NewLShapedPlan(totalMB, cfg.NumDGroups)
	lats := m.DGroupLatencies(plan)
	energies := m.DGroupEnergies(plan)

	labels := make([]string, cfg.NumDGroups)
	grpLat := make([]int64, cfg.NumDGroups)
	grpNJ := make([]float64, cfg.NumDGroups)
	for g := range labels {
		labels[g] = fmt.Sprintf("dgroup-%d", g)
		grpLat[g] = int64(lats[g])
		grpNJ[g] = energies[g]
	}

	// The partition of a block depends only on its set, and identically
	// in every d-group, so demotion chains stay within one partition and
	// the conservation argument (a freed frame is always reachable)
	// holds. Memoized so the access loop never divides.
	partTab := make([]int32, geo.NumSets())
	if nParts > 1 {
		for s := range partTab {
			if cfg.Placement == SetAssociative {
				partTab[s] = int32(s)
			} else {
				partTab[s] = int32(s % nParts)
			}
		}
	}

	tags, err := cache.NewArray(geo, cache.LRU, nil)
	if err != nil {
		return nil, err
	}
	trigger := uint8(1)
	if cfg.PromoteHits > 1 {
		trigger = uint8(cfg.PromoteHits)
	}
	c := &Cache{
		cfg:            cfg,
		geo:            geo,
		idx:            geo.Index(),
		tags:           tags,
		store:          newFrameStore(cfg.NumDGroups, framesPerGroup, nParts, partSize),
		tagLat:         int64(m.TagCycles),
		tagNJ:          m.TagProbeNJ,
		memoNJ:         m.TagProbeNJ,
		nGroups:        cfg.NumDGroups,
		framesPerGroup: framesPerGroup,
		nParts:         nParts,
		partSize:       partSize,
		trigger:        trigger,
		grpLat:         grpLat,
		grpNJ:          grpNJ,
		grpAccesses:    make([]int64, cfg.NumDGroups),
		partTab:        partTab,
		mem:            mem,
		rng:            mathx.NewRNG(cfg.Seed),
		dist:           stats.NewDistribution(labels...),
	}
	if mathx.IsPow2(int64(framesPerGroup)) {
		c.fpgShift = uint8(mathx.Log2(int64(framesPerGroup)))
		c.fpgPow2 = true
	}
	if cfg.Promotion == PredictiveBypass || cfg.Distance == DeadOnArrival {
		c.pred = newPredictor(geo.NumSets(), cfg.Assoc)
	}
	if cfg.Memoize {
		c.memoTag = make([]uint64, geo.NumSets())
		c.memoWay = make([]int32, geo.NumSets())
		for i := range c.memoWay {
			c.memoWay[i] = -1
		}
	}
	return c, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config, m *cacti.Model, mem *memsys.Memory) *Cache {
	c, err := New(cfg, m, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements memsys.LowerLevel.
func (c *Cache) Name() string {
	return fmt.Sprintf("nurapid-%dg-%s", c.cfg.NumDGroups, c.cfg.Promotion)
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetProbe attaches an observability probe (obs.Probeable). Probes only
// observe — simulated state and timing are unaffected — and a nil probe
// restores the zero-overhead fast path. Call before the first access.
func (c *Cache) SetProbe(p obs.Probe) { c.probe = p }

// partition returns the frame partition for a block of the given set.
func (c *Cache) partition(set int32) int {
	if c.nParts == 1 {
		return 0
	}
	return int(c.partTab[set])
}

// Forward pointers are stored in tag-line Aux as 1+global frame id so
// that the zero value means "no frame".

func (c *Cache) decodeFrame(aux int64) (group int, f int32) {
	gid := c.decodeGid(aux)
	g := c.groupOfGid(gid)
	return g, gid - int32(g*c.framesPerGroup)
}

// decodeGid extracts the global frame id from a tag line's Aux.
func (c *Cache) decodeGid(aux int64) int32 {
	if aux == 0 {
		panic("nurapid: tag entry has no forward pointer")
	}
	return int32(aux - 1)
}

// groupOfGid maps a global frame id to its d-group: a shift when the
// per-group frame count is a power of two (every paper configuration),
// a division otherwise.
func (c *Cache) groupOfGid(gid int32) int {
	if c.fpgPow2 {
		return int(uint32(gid) >> c.fpgShift)
	}
	return int(gid) / c.framesPerGroup
}

// chargeAccess records one data-array access in d-group g (a serve, a
// swap read/write, or a fill), charging energy and counting it toward the
// paper's "d-group accesses" comparison.
func (c *Cache) chargeAccess(g int) {
	c.grpAccesses[g]++
	c.energy += c.grpNJ[g]
}

// Access implements memsys.LowerLevel.
//
//nurapid:hotpath
func (c *Cache) Access(req memsys.Req) memsys.AccessResult {
	if c.cfg.Audit {
		return c.auditedAccess(req.Now, req.Addr, req.Write, req.Core)
	}
	return c.access(req.Now, req.Addr, req.Write, req.Core)
}

// AccessMany implements memsys.BatchAccessor: the trace-replay loop with
// the per-request interface dispatch hoisted out. Each request issues at
// the completion time of its predecessor plus its think-time gap, and
// every per-access effect — including port serialization behind
// outstanding demotion-ripple movement — is identical to issuing the
// requests one at a time through Access; the differential harness
// replays both paths and compares them element by element.
//
//nurapid:hotpath
func (c *Cache) AccessMany(now int64, reqs []memsys.Req, out []memsys.AccessResult) int64 {
	if c.cfg.Audit {
		return memsys.GenericAccessMany(c, now, reqs, out)
	}
	for i := range reqs {
		r := c.access(now, reqs[i].Addr, reqs[i].Write, reqs[i].Core)
		if out != nil {
			out[i] = r
		}
		now = r.DoneAt + reqs[i].Gap
	}
	return now
}

func (c *Cache) access(now int64, addr uint64, write bool, core int) memsys.AccessResult {
	c.hot.accesses++
	if c.probe != nil {
		c.probe.Emit(obs.Access(now, addr, write, core))
	}
	set := c.idx.SetIndex(addr)
	tag := c.idx.Tag(addr)
	// Predict before observe: the prediction for this access must not see
	// the access itself, or the sampled and non-sampled sets would apply
	// different policies to identical streams.
	predDead := false
	if c.pred != nil {
		key := c.idx.BlockAddr(addr)
		predDead = c.pred.predictDead(key)
		c.pred.observe(set, key)
	}
	// The per-set way memo short-circuits the tag probe on a repeat
	// access. A memo entry can never be stale: promotion, demotion, and
	// swaps move data frames but leave the block's tag way untouched, and
	// evicting the memoized block requires a miss in this set, which
	// overwrites the memo with the incoming block below.
	if c.memoWay != nil && c.memoWay[set] >= 0 && c.memoTag[set] == tag {
		return c.accessHit(now, set, int(c.memoWay[set]), tag, write, predDead, true)
	}
	way, hit := c.tags.FindTag(set, tag)
	if hit {
		return c.accessHit(now, set, way, tag, write, predDead, false)
	}
	return c.accessMiss(now, addr, set, tag, write, predDead)
}

func (c *Cache) accessHit(now int64, set, way int, tag uint64, write, predDead, memoized bool) memsys.AccessResult {
	line := c.tags.Line(set, way)
	c.tags.Touch(set, way)
	if write {
		line.Dirty = true
	}
	gid := c.decodeGid(line.Aux)
	g := c.groupOfGid(gid)
	c.store.touch(gid, g*c.nParts+c.partition(int32(set)))
	fm := &c.store.frames[gid]
	if fm.hits < 255 {
		fm.hits++
	}

	// The single port accepts a new access every issue interval
	// (sequential tag-data accesses pipeline through the tag array and
	// subarrays), but outstanding block movement — charged via Extend in
	// place() — must complete before the next access starts, per the
	// paper's one-ported, non-banked design.
	start := c.port.Acquire(now, accessIssueInterval)
	done := start + c.grpLat[g]
	c.chargeAccess(g)
	if memoized {
		// The memoized forward pointer skipped the sequential tag probe;
		// credit the probe energy back (the d-group access charge above
		// folds the probe in on the normal hit path).
		c.hot.memoHits++
		c.energy -= c.memoNJ
	}
	c.dist.AddHit(g)
	if c.probe != nil {
		c.probe.Emit(obs.Hit(now, g, done-now))
	}

	switch c.cfg.Promotion {
	case NextFastest:
		if g > 0 && fm.hits >= c.trigger {
			c.moveBlock(now, set, way, gid, g, g-1)
		}
	case Fastest:
		if g > 0 && fm.hits >= c.trigger {
			c.moveBlock(now, set, way, gid, g, 0)
		}
	case PredictiveBypass:
		if predDead {
			// Bypass: no movement, and the screen counter restarts so a
			// prediction flip cannot mass-promote blocks that quietly
			// saturated their counters while bypassed.
			fm.hits = 0
			c.hot.bypasses++
			if c.probe != nil {
				c.probe.Emit(obs.Bypass(now, g))
			}
		} else if g > 0 && fm.hits >= c.trigger {
			c.moveBlock(now, set, way, gid, g, g-1)
		}
	}
	if c.memoWay != nil {
		c.memoTag[set], c.memoWay[set] = tag, int32(way)
	}
	return memsys.AccessResult{Hit: true, DoneAt: done, Group: g}
}

func (c *Cache) accessMiss(now int64, addr uint64, set int, tag uint64, write, predDead bool) memsys.AccessResult {
	// The miss is discovered in the tag array after the tag latency; the
	// pipelined port frees after the issue interval. The fill write and
	// the writeback victim read happen when memory responds, generally
	// off the port's critical path, so only demotion ripples (block
	// movement between d-groups, in place()) extend the port.
	start := c.port.Acquire(now, accessIssueInterval)
	c.energy += c.tagNJ
	c.dist.AddMiss()
	c.hot.misses++
	if c.probe != nil {
		c.probe.Emit(obs.Miss(now, addr))
	}

	// Conventional data replacement: evict the set's LRU block from the
	// cache, freeing a frame somewhere (paper Fig. 2 step 2).
	way := c.tags.VictimWay(set)
	vl := c.tags.Line(set, way)
	if vl.Valid {
		vgid := c.decodeGid(vl.Aux)
		vg := c.groupOfGid(vgid)
		c.store.release(vgid, vg*c.nParts+c.partition(int32(set)))
		c.hot.evictions++
		if c.probe != nil {
			c.probe.Emit(obs.Evict(now, vg, vl.Dirty))
		}
		if vl.Dirty {
			c.hot.writebacks++
			c.chargeAccess(vg) // victim read for writeback
			c.mem.Write()
		}
	}

	done := c.mem.Read(start + c.tagLat)

	line := c.tags.Fill(addr, way)
	if write {
		line.Dirty = true
	}
	// Distance placement: the new block goes to the fastest d-group,
	// demotions rippling outward until the freed frame absorbs them —
	// unless the predictor flags it dead on arrival, in which case it
	// installs straight into the slowest d-group with room.
	if c.cfg.Distance == DeadOnArrival && predDead {
		c.placeDead(now, int32(set), int8(way))
	} else {
		c.place(now, int32(set), int8(way), 0)
	}
	if c.memoWay != nil {
		c.memoTag[set], c.memoWay[set] = tag, int32(way)
	}
	return memsys.AccessResult{Hit: false, DoneAt: done, Group: -1}
}

// moveBlock promotes the block at (set, way), currently in frame gid of
// d-group `from`, to d-group `to` (to < from): its current frame is
// released, and placement into `to` demotes victims outward; the chain
// terminates at the released frame at the latest.
func (c *Cache) moveBlock(now int64, set, way int, gid int32, from, to int) {
	c.store.release(gid, from*c.nParts+c.partition(int32(set)))
	c.hot.promotions++
	if c.probe != nil {
		c.probe.Emit(obs.Promote(now, from, to))
	}
	// Reading the promoted block out of its old group happened as part
	// of the serve; only the movement writes/reads below are extra.
	c.place(now, int32(set), int8(way), to)
}

// place installs the block identified by its tag coordinates into
// d-group g, performing distance replacement: if the partition has no
// free frame, a victim is selected, displaced, and recursively placed
// one group farther. Conservation of frames guarantees termination; the
// worst case is nGroups-1 demotions (paper Sec. 2.2). The whole chain
// stays in one partition (the partition mapping is identical in every
// d-group), so the partition index is computed once.
func (c *Cache) place(now int64, set int32, way int8, g int) {
	p := c.partition(set)
	useLRU := c.cfg.Distance == LRUDistance
	depth := 0
	for {
		if g >= c.nGroups {
			panic("nurapid: demotion ripple ran past the slowest d-group")
		}
		h := g*c.nParts + p
		if f := c.store.takeFree(h); f != nilFrame {
			c.store.occupy(f, h, set, way)
			c.tags.Line(int(set), int(way)).Aux = int64(f) + 1
			c.chargeAccess(g) // fill write, off the port's critical path
			if c.probe != nil {
				c.probe.Emit(obs.Place(now, g, depth))
				if depth > 0 {
					// Movement extended the single port: report the
					// backlog this chain left behind the triggering
					// access (swap-buffer pressure).
					c.probe.Emit(obs.SwapBacklog(now, c.port.FreeAt()-now))
				}
			}
			return
		}
		base := int32(g*c.framesPerGroup + p*c.partSize)
		fv := c.store.victim(h, base, useLRU, c.rng)
		oldSet, oldWay := c.store.replace(fv, h, set, way)
		c.tags.Line(int(set), int(way)).Aux = int64(fv) + 1
		c.chargeAccess(g) // victim read
		c.chargeAccess(g) // incoming write
		c.port.Extend(2 * movementOccupancy)
		c.hot.demotions++
		depth++
		if c.probe != nil {
			c.probe.Emit(obs.DemoteLink(now, g, g+1, depth))
		}
		set, way = oldSet, oldWay
		g++
	}
}

// placeDead installs a predicted-dead fill directly into the slowest
// d-group with a free frame in the block's partition (scanning slowest
// to fastest), skipping the demotion ripple entirely. The conservation
// argument guarantees a free frame exists: each partition holds exactly
// as many frames as the sets mapping to it hold blocks, and the data
// replacement preceding this fill freed one when the partition was full.
func (c *Cache) placeDead(now int64, set int32, way int8) {
	p := c.partition(set)
	for g := c.nGroups - 1; g >= 0; g-- {
		h := g*c.nParts + p
		f := c.store.takeFree(h)
		if f == nilFrame {
			continue
		}
		c.store.occupy(f, h, set, way)
		c.tags.Line(int(set), int(way)).Aux = int64(f) + 1
		c.chargeAccess(g) // fill write, off the port's critical path
		c.hot.deadFills++
		if c.probe != nil {
			c.probe.Emit(obs.Place(now, g, 0))
		}
		return
	}
	panic("nurapid: dead-on-arrival fill found no free frame in its partition")
}

// Distribution implements memsys.LowerLevel.
func (c *Cache) Distribution() *stats.Distribution { return c.dist }

// EnergyNJ implements memsys.LowerLevel.
func (c *Cache) EnergyNJ() float64 { return c.energy }

// Counters implements memsys.LowerLevel. The hot per-access counts are
// materialized into the named set here, preserving Inc's presence
// semantics (a name exists iff its count is non-zero); the port gauges
// are always present, as before.
func (c *Cache) Counters() *stats.Counters {
	setIfNonZero := func(name string, v int64) {
		if v != 0 {
			c.ctrs.Set(name, v)
		}
	}
	setIfNonZero("accesses", c.hot.accesses)
	setIfNonZero("misses", c.hot.misses)
	setIfNonZero("evictions", c.hot.evictions)
	setIfNonZero("writebacks", c.hot.writebacks)
	setIfNonZero("promotions", c.hot.promotions)
	setIfNonZero("demotions", c.hot.demotions)
	setIfNonZero("bypasses", c.hot.bypasses)
	setIfNonZero("dead_fills", c.hot.deadFills)
	setIfNonZero("memo_hits", c.hot.memoHits)
	c.ctrs.Set("port_wait_cycles", c.port.WaitCycles)
	c.ctrs.Set("port_conflicts", c.port.Conflicts)
	c.ctrs.Set("port_busy_cycles", c.port.BusyCycles)
	return &c.ctrs
}

// Snapshot emits the cache's latency/energy parameters, event counters,
// and per-d-group access counts (statsreg convention: every counter
// field must appear here).
func (c *Cache) Snapshot() []stats.KV {
	out := []stats.KV{
		{Name: "tag_latency_cycles", Value: float64(c.tagLat)},
		{Name: "tag_access_nj", Value: c.tagNJ},
		{Name: "energy_nj", Value: c.energy},
	}
	if c.cfg.Memoize {
		out = append(out, stats.KV{Name: "memo_saved_nj", Value: c.memoNJ * float64(c.hot.memoHits)})
	}
	out = append(out, c.Counters().Snapshot()...)
	for g, n := range c.GroupAccesses() {
		out = append(out, stats.KV{Name: fmt.Sprintf("dgroup_%d_accesses", g), Value: float64(n)})
	}
	return out
}

// GroupAccesses returns the number of data-array accesses per d-group —
// the quantity behind the paper's "61% fewer d-group accesses than NUCA"
// claim.
func (c *Cache) GroupAccesses() []int64 {
	out := make([]int64, c.nGroups)
	copy(out, c.grpAccesses)
	return out
}

// GroupLatencies returns each d-group's serve latency in cycles.
func (c *Cache) GroupLatencies() []int64 {
	out := make([]int64, c.nGroups)
	copy(out, c.grpLat)
	return out
}

// LatencyProfile implements obs.LatencyProfiler: the cache's static
// timing model, exactly the quantities accessHit/accessMiss/place
// charge, so the obs.TimeSeries waterfall reproduces every access's
// reported latency from the event stream alone.
func (c *Cache) LatencyProfile() obs.LatencyProfile {
	return obs.LatencyProfile{
		TagCycles:   c.tagLat,
		GroupCycles: c.GroupLatencies(),
		IssueCycles: accessIssueInterval,
		MoveCycles:  2 * movementOccupancy,
		MemCycles:   c.mem.Latency(),
	}
}

// GroupOccupancy returns the number of occupied frames per d-group (no
// side effects) — compared against the reference model's occupancy by the
// differential harness.
func (c *Cache) GroupOccupancy() []int {
	out := make([]int, c.nGroups)
	for g := 0; g < c.nGroups; g++ {
		free := 0
		for p := 0; p < c.nParts; p++ {
			free += int(c.store.freeCount[g*c.nParts+p])
		}
		out[g] = c.framesPerGroup - free
	}
	return out
}

// GroupOf reports which d-group currently holds addr, or -1 when the
// block is not resident. It has no side effects.
func (c *Cache) GroupOf(addr uint64) int {
	way, hit := c.tags.Lookup(addr)
	if !hit {
		return -1
	}
	g, _ := c.decodeFrame(c.tags.Line(c.idx.SetIndex(addr), way).Aux)
	return g
}

// Contains reports whether addr is resident (no side effects).
func (c *Cache) Contains(addr uint64) bool {
	_, hit := c.tags.Lookup(addr)
	return hit
}

// PointerBits returns the width of the forward/reverse pointers implied
// by the configuration (Sec. 2.4.3): log2 of the number of distinct
// frames a block may occupy across all d-groups.
func (c *Cache) PointerBits() int {
	reach := c.framesPerGroup
	if c.cfg.RestrictFrames > 0 {
		reach = c.cfg.RestrictFrames
	}
	return mathx.Log2(int64(reach*c.nGroups-1)) + 1
}

var _ memsys.LowerLevel = (*Cache)(nil)
var _ memsys.BatchAccessor = (*Cache)(nil)
