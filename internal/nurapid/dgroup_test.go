package nurapid

import (
	"testing"
	"testing/quick"

	"nurapid/internal/mathx"
)

func newTestGroup(nParts, partSize int) *dgroup {
	return newDGroup(0, 14, 6, 0.42, nParts, partSize)
}

func TestDGroupFreeListExhaustion(t *testing.T) {
	g := newTestGroup(1, 4)
	var frames []int32
	for i := 0; i < 4; i++ {
		f := g.takeFree(0)
		if f == nilFrame {
			t.Fatalf("free list exhausted after %d of 4", i)
		}
		g.occupy(f, int32(i), 0)
		frames = append(frames, f)
	}
	if g.takeFree(0) != nilFrame {
		t.Fatal("full partition must return nilFrame")
	}
	g.release(frames[2])
	if f := g.takeFree(0); f != frames[2] {
		t.Fatalf("released frame %d not reused (got %d)", frames[2], f)
	}
}

func TestDGroupLRUVictimOrder(t *testing.T) {
	g := newTestGroup(1, 3)
	f0, f1, f2 := g.takeFree(0), g.takeFree(0), g.takeFree(0)
	g.occupy(f0, 0, 0)
	g.occupy(f1, 1, 0)
	g.occupy(f2, 2, 0)
	// f0 is the oldest.
	if v := g.victim(0, true, nil); v != f0 {
		t.Fatalf("LRU victim = %d, want %d", v, f0)
	}
	g.touch(f0) // now f1 is oldest
	if v := g.victim(0, true, nil); v != f1 {
		t.Fatalf("LRU victim after touch = %d, want %d", v, f1)
	}
}

func TestDGroupReplaceKeepsIdentity(t *testing.T) {
	g := newTestGroup(1, 2)
	f := g.takeFree(0)
	g.occupy(f, 7, 3)
	oldSet, oldWay := g.replace(f, 9, 1)
	if oldSet != 7 || oldWay != 3 {
		t.Fatalf("replace returned (%d,%d), want (7,3)", oldSet, oldWay)
	}
	if g.frames[f].set != 9 || g.frames[f].way != 1 {
		t.Fatal("replace did not install the new block")
	}
	// The replaced frame must be most recent.
	g2 := g.takeFree(0)
	g.occupy(g2, 5, 5)
	g.touch(f)
	if v := g.victim(0, true, nil); v != g2 {
		t.Fatalf("victim = %d, want the colder frame %d", v, g2)
	}
}

func TestDGroupRandomVictimRequiresFullPartition(t *testing.T) {
	g := newTestGroup(1, 2)
	f := g.takeFree(0)
	g.occupy(f, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("random victim with free frames must panic")
		}
	}()
	g.victim(0, false, mathx.NewRNG(1))
}

func TestDGroupPartitionsIndependent(t *testing.T) {
	g := newTestGroup(2, 2)
	// Exhaust partition 0; partition 1 must still have frames.
	g.occupy(g.takeFree(0), 0, 0)
	g.occupy(g.takeFree(0), 2, 0)
	if g.takeFree(0) != nilFrame {
		t.Fatal("partition 0 should be full")
	}
	f1 := g.takeFree(1)
	if f1 == nilFrame {
		t.Fatal("partition 1 must be unaffected")
	}
	g.occupy(f1, 1, 0) // a taken frame must be occupied before checking
	if err := g.checkIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDGroupOccupyValidFramePanics(t *testing.T) {
	g := newTestGroup(1, 2)
	f := g.takeFree(0)
	g.occupy(f, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double occupy must panic")
		}
	}()
	g.occupy(f, 1, 0)
}

func TestDGroupReleaseEmptyFramePanics(t *testing.T) {
	g := newTestGroup(1, 2)
	f := g.takeFree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a free frame must panic")
		}
	}()
	g.release(f)
}

func TestDGroupQuickRandomOps(t *testing.T) {
	// Property: any sequence of take/occupy/touch/release operations
	// leaves the partition lists consistent.
	f := func(seed uint64, opsRaw []uint8) bool {
		g := newTestGroup(2, 8)
		rng := mathx.NewRNG(seed)
		var occupied []int32
		for _, op := range opsRaw {
			switch op % 3 {
			case 0: // allocate
				p := rng.Intn(2)
				if fr := g.takeFree(p); fr != nilFrame {
					g.occupy(fr, int32(rng.Intn(100)), int8(rng.Intn(8)))
					occupied = append(occupied, fr)
				}
			case 1: // touch
				if len(occupied) > 0 {
					g.touch(occupied[rng.Intn(len(occupied))])
				}
			case 2: // release
				if len(occupied) > 0 {
					i := rng.Intn(len(occupied))
					g.release(occupied[i])
					occupied = append(occupied[:i], occupied[i+1:]...)
				}
			}
		}
		return g.checkIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheQuickInvariantsUnderRandomAccess(t *testing.T) {
	// Property: for any seed and modest access count, the full cache's
	// forward/reverse pointer bijection holds under every policy knob.
	f := func(seed uint64, pol, dist uint8) bool {
		cfg := DefaultConfig()
		cfg.Promotion = Promotion(pol % 3)
		cfg.Distance = DistancePolicy(dist % 2)
		cfg.Seed = seed
		c := MustNew(cfg, testModel(), testMemory())
		rng := mathx.NewRNG(seed ^ 0xABCD)
		for i := 0; i < 4000; i++ {
			c.Access(int64(i)*20, blockAddr(rng.Intn(150000)), rng.Bool(0.3))
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
