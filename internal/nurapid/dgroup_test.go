package nurapid

import (
	"testing"
	"testing/quick"

	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

// newTestStore builds a single-d-group frame store; with one group the
// home index of partition p is simply p.
func newTestStore(nParts, partSize int) *frameStore {
	s := newFrameStore(1, nParts*partSize, nParts, partSize)
	return &s
}

func TestStoreFreeListExhaustion(t *testing.T) {
	s := newTestStore(1, 4)
	var frames []int32
	for i := 0; i < 4; i++ {
		f := s.takeFree(0)
		if f == nilFrame {
			t.Fatalf("free list exhausted after %d of 4", i)
		}
		s.occupy(f, 0, int32(i), 0)
		frames = append(frames, f)
	}
	if s.takeFree(0) != nilFrame {
		t.Fatal("full partition must return nilFrame")
	}
	s.release(frames[2], 0)
	if f := s.takeFree(0); f != frames[2] {
		t.Fatalf("released frame %d not reused (got %d)", frames[2], f)
	}
}

func TestStoreLRUVictimOrder(t *testing.T) {
	s := newTestStore(1, 3)
	f0, f1, f2 := s.takeFree(0), s.takeFree(0), s.takeFree(0)
	s.occupy(f0, 0, 0, 0)
	s.occupy(f1, 0, 1, 0)
	s.occupy(f2, 0, 2, 0)
	// f0 is the oldest.
	if v := s.victim(0, 0, true, nil); v != f0 {
		t.Fatalf("LRU victim = %d, want %d", v, f0)
	}
	s.touch(f0, 0) // now f1 is oldest
	if v := s.victim(0, 0, true, nil); v != f1 {
		t.Fatalf("LRU victim after touch = %d, want %d", v, f1)
	}
}

func TestStoreReplaceKeepsIdentity(t *testing.T) {
	s := newTestStore(1, 2)
	f := s.takeFree(0)
	s.occupy(f, 0, 7, 3)
	oldSet, oldWay := s.replace(f, 0, 9, 1)
	if oldSet != 7 || oldWay != 3 {
		t.Fatalf("replace returned (%d,%d), want (7,3)", oldSet, oldWay)
	}
	if s.frames[f].set != 9 || s.frames[f].way != 1 {
		t.Fatal("replace did not install the new block")
	}
	// The replaced frame must be most recent.
	f2 := s.takeFree(0)
	s.occupy(f2, 0, 5, 5)
	s.touch(f, 0)
	if v := s.victim(0, 0, true, nil); v != f2 {
		t.Fatalf("victim = %d, want the colder frame %d", v, f2)
	}
}

func TestStoreRandomVictimRequiresFullPartition(t *testing.T) {
	s := newTestStore(1, 2)
	f := s.takeFree(0)
	s.occupy(f, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("random victim with free frames must panic")
		}
	}()
	s.victim(0, 0, false, mathx.NewRNG(1))
}

func TestStorePartitionsIndependent(t *testing.T) {
	s := newTestStore(2, 2)
	// Exhaust partition 0; partition 1 must still have frames.
	s.occupy(s.takeFree(0), 0, 0, 0)
	s.occupy(s.takeFree(0), 0, 2, 0)
	if s.takeFree(0) != nilFrame {
		t.Fatal("partition 0 should be full")
	}
	f1 := s.takeFree(1)
	if f1 == nilFrame {
		t.Fatal("partition 1 must be unaffected")
	}
	s.occupy(f1, 1, 1, 0) // a taken frame must be occupied before checking
	if err := s.checkIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGroupsShareNoFrames(t *testing.T) {
	// Two groups, one partition each: frame ids must not overlap, and a
	// frame's home must round-trip through homeOf.
	s := newFrameStore(2, 4, 1, 4)
	f0 := s.takeFree(0) // group 0, partition 0
	f1 := s.takeFree(1) // group 1, partition 0
	if f0 == f1 {
		t.Fatalf("groups handed out the same frame %d", f0)
	}
	if s.homeOf(f0) != 0 || s.homeOf(f1) != 1 {
		t.Fatalf("homeOf(%d)=%d, homeOf(%d)=%d; want 0 and 1",
			f0, s.homeOf(f0), f1, s.homeOf(f1))
	}
	s.occupy(f0, 0, 0, 0)
	s.occupy(f1, 1, 0, 0)
	if err := s.checkIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreOccupyValidFramePanics(t *testing.T) {
	s := newTestStore(1, 2)
	f := s.takeFree(0)
	s.occupy(f, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double occupy must panic")
		}
	}()
	s.occupy(f, 0, 1, 0)
}

func TestStoreReleaseEmptyFramePanics(t *testing.T) {
	s := newTestStore(1, 2)
	f := s.takeFree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a free frame must panic")
		}
	}()
	s.release(f, 0)
}

func TestStoreQuickRandomOps(t *testing.T) {
	// Property: any sequence of take/occupy/touch/release operations
	// leaves the partition lists consistent.
	f := func(seed uint64, opsRaw []uint8) bool {
		s := newTestStore(2, 8)
		rng := mathx.NewRNG(seed)
		var occupied []int32
		for _, op := range opsRaw {
			switch op % 3 {
			case 0: // allocate
				p := rng.Intn(2)
				if fr := s.takeFree(p); fr != nilFrame {
					s.occupy(fr, p, int32(rng.Intn(100)), int8(rng.Intn(8)))
					occupied = append(occupied, fr)
				}
			case 1: // touch
				if len(occupied) > 0 {
					fr := occupied[rng.Intn(len(occupied))]
					s.touch(fr, s.homeOf(fr))
				}
			case 2: // release
				if len(occupied) > 0 {
					i := rng.Intn(len(occupied))
					s.release(occupied[i], s.homeOf(occupied[i]))
					occupied = append(occupied[:i], occupied[i+1:]...)
				}
			}
		}
		return s.checkIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheQuickInvariantsUnderRandomAccess(t *testing.T) {
	// Property: for any seed and modest access count, the full cache's
	// forward/reverse pointer bijection holds under every policy knob.
	f := func(seed uint64, pol, dist uint8) bool {
		cfg := DefaultConfig()
		cfg.Promotion = Promotion(pol % 3)
		cfg.Distance = DistancePolicy(dist % 2)
		cfg.Seed = seed
		c := MustNew(cfg, testModel(), testMemory())
		rng := mathx.NewRNG(seed ^ 0xABCD)
		for i := 0; i < 4000; i++ {
			c.Access(memsys.Req{Now: int64(i) * 20, Addr: blockAddr(rng.Intn(150000)), Write: rng.Bool(0.3)})
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
