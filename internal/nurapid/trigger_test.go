package nurapid

import (
	"testing"

	"nurapid/internal/memsys"
)

func TestPromotionTriggerDelaysPromotion(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.PromoteHits = 3 })
	fillGroups(c, 2)
	target := blockAddr(0)
	g0 := c.GroupOf(target)
	if g0 < 1 {
		t.Fatalf("setup: block in d-group %d", g0)
	}
	// The first two hits must not promote; the third must.
	c.Access(memsys.Req{Now: 1e9, Addr: target, Write: false})
	if g := c.GroupOf(target); g != g0 {
		t.Fatalf("after 1 hit block moved to %d", g)
	}
	c.Access(memsys.Req{Now: 1e9 + 1000, Addr: target, Write: false})
	if g := c.GroupOf(target); g != g0 {
		t.Fatalf("after 2 hits block moved to %d", g)
	}
	c.Access(memsys.Req{Now: 1e9 + 2000, Addr: target, Write: false})
	if g := c.GroupOf(target); g != g0-1 {
		t.Fatalf("after 3 hits block in %d, want %d", c.GroupOf(target), g0-1)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPromotionTriggerResetsAfterMove(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.PromoteHits = 2 })
	fillGroups(c, 3)
	target := blockAddr(0)
	g0 := c.GroupOf(target)
	if g0 < 2 {
		t.Fatalf("setup: block in d-group %d, want >= 2", g0)
	}
	// Two hits promote one group; the counter then restarts, so the
	// next single hit must not promote again.
	c.Access(memsys.Req{Now: 1e9, Addr: target, Write: false})
	c.Access(memsys.Req{Now: 1e9 + 1000, Addr: target, Write: false})
	if g := c.GroupOf(target); g != g0-1 {
		t.Fatalf("after 2 hits block in %d, want %d", g, g0-1)
	}
	c.Access(memsys.Req{Now: 1e9 + 2000, Addr: target, Write: false})
	if g := c.GroupOf(target); g != g0-1 {
		t.Fatalf("3rd hit promoted early: block in %d", g)
	}
}

func TestPromotionTriggerDefaultIsEveryHit(t *testing.T) {
	// PromoteHits 0 and 1 both promote on the first hit.
	for _, k := range []int{0, 1} {
		c, _ := build(t, func(cfg *Config) { cfg.PromoteHits = k })
		fillGroups(c, 2)
		target := blockAddr(0)
		g0 := c.GroupOf(target)
		c.Access(memsys.Req{Now: 1e9, Addr: target, Write: false})
		if g := c.GroupOf(target); g != g0-1 {
			t.Fatalf("PromoteHits=%d: first hit did not promote (%d -> %d)", k, g0, g)
		}
	}
}

func TestPromotionTriggerValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PromoteHits = -1
	if _, err := New(cfg, testModel(), testMemory()); err == nil {
		t.Fatal("negative trigger must be rejected")
	}
	cfg.PromoteHits = 1000
	if _, err := New(cfg, testModel(), testMemory()); err == nil {
		t.Fatal("oversized trigger must be rejected")
	}
}

func TestPromotionTriggerReducesSwaps(t *testing.T) {
	run := func(k int) int64 {
		c, _ := build(t, func(cfg *Config) { cfg.PromoteHits = k })
		fillGroups(c, 3)
		// Alternate over a window of demoted blocks.
		for i := 0; i < 20000; i++ {
			c.Access(memsys.Req{Now: 1e9 + int64(i)*100, Addr: blockAddr(i % 4000), Write: false})
		}
		return c.Counters().Get("promotions")
	}
	if s1, s4 := run(1), run(4); s4 >= s1 {
		t.Fatalf("trigger=4 swaps (%d) must be below trigger=1 (%d)", s4, s1)
	}
}
