package nurapid

import (
	"strings"
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
)

// TestNewErrorMessages pins each validation branch of New to an error
// that names the offending quantity, so a misconfigured experiment fails
// with an actionable message rather than a generic rejection.
func TestNewErrorMessages(t *testing.T) {
	m := cacti.Default()
	mem := memsys.NewMemory(128)
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"dgroups-dont-divide", func(c *Config) { c.NumDGroups = 3 }, "d-groups"},
		{"zero-dgroups", func(c *Config) { c.NumDGroups = 0 }, "d-groups"},
		{"capacity-not-whole-mb", func(c *Config) { c.CapacityBytes = 512 << 10 }, "whole-MB"},
		{"bad-geometry", func(c *Config) { c.Assoc = 0 }, "geometry"},
		{"restriction-not-divisor", func(c *Config) { c.RestrictFrames = 1000 }, "restriction"},
		{"sa-with-restriction", func(c *Config) {
			c.Placement = SetAssociative
			c.RestrictFrames = 256
		}, "incompatible with set-associative"},
		{"sa-assoc-not-divisible", func(c *Config) {
			c.Placement = SetAssociative
			c.NumDGroups = 8
			c.CapacityBytes = 8 << 20
			c.Assoc = 12
		}, "divisible"},
		{"unknown-placement", func(c *Config) { c.Placement = Placement(9) }, "placement"},
		{"negative-trigger", func(c *Config) { c.PromoteHits = -1 }, "trigger"},
		{"huge-trigger", func(c *Config) { c.PromoteHits = 201 }, "trigger"},
		// Triggers past the uint8 range must be rejected with an error
		// naming the saturation point, not silently truncated into the
		// 8-bit per-frame hit counter (256 would wrap to a trigger of 0,
		// promoting on every hit).
		{"uint8-wrap-trigger", func(c *Config) { c.PromoteHits = 256 }, "saturates at 255"},
		{"way-past-uint8-trigger", func(c *Config) { c.PromoteHits = 1000 }, "saturates at 255"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			_, err := New(cfg, m, mem)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMustNewPanicsOnBadConfig verifies the Must* contract: same
// validation as New, converted to a panic carrying the New error.
func TestMustNewPanicsOnBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDGroups = 3
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustNew accepted an invalid config")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "d-groups") {
			t.Fatalf("panic %v is not the New validation error", r)
		}
	}()
	MustNew(cfg, cacti.Default(), memsys.NewMemory(128))
}

// TestMustNewReturnsWorkingCache is the happy path: MustNew must hand
// back the same cache New would.
func TestMustNewReturnsWorkingCache(t *testing.T) {
	c := MustNew(DefaultConfig(), cacti.Default(), memsys.NewMemory(128))
	if c == nil || c.Config().NumDGroups != 4 {
		t.Fatal("MustNew did not build the default cache")
	}
}

// TestEnumDefaultStrings pins the default String() branches to the
// Stringer convention "Type(value)" so unknown enum values stay
// identifiable in logs and experiment keys.
func TestEnumDefaultStrings(t *testing.T) {
	if got := Promotion(9).String(); got != "Promotion(9)" {
		t.Errorf("Promotion(9).String() = %q", got)
	}
	if got := DistancePolicy(9).String(); got != "DistancePolicy(9)" {
		t.Errorf("DistancePolicy(9).String() = %q", got)
	}
	if got := Placement(9).String(); got != "Placement(9)" {
		t.Errorf("Placement(9).String() = %q", got)
	}
}
