package nurapid

import (
	"fmt"

	"nurapid/internal/memsys"
)

// This file is the runtime invariant auditor. The paper's correctness
// argument (Sec. 2.2-2.4) rests on structural invariants the type system
// cannot express:
//
//   - pointer bijection: every valid tag entry's forward pointer names
//     exactly one data frame, and that frame's reverse pointer names the
//     tag entry back — no dangling and no double-mapped frames;
//   - occupancy conservation: a demotion ripple moves blocks between
//     d-groups but never creates or destroys them, so occupied frames
//     always equal valid tag entries, and each partition's occupied plus
//     free frames equal its capacity;
//   - recency-list well-formedness: each partition's intrusive LRU stack
//     is an acyclic, pointer-symmetric chain over exactly its occupied
//     frames, and its free list covers exactly its free frames.
//
// CheckInvariants verifies all of it in O(tags + frames). With
// Config.Audit set, every access re-verifies the full set plus the
// access-level occupancy delta, and the first violation panics.

// CheckInvariants verifies the forward/reverse pointer bijection and the
// internal list structures; tests call it after random operation storms,
// and Config.Audit calls it after every access. It never panics on
// corrupt state — corruption comes back as an error naming the first
// inconsistency found.
func (c *Cache) CheckInvariants() error {
	// Every valid tag entry's forward pointer must land, within its own
	// partition, on a distinct occupied frame whose reverse pointer
	// points back.
	claimed := make([]bool, len(c.groups)*c.framesPerGroup)
	validTags := 0
	for set := 0; set < c.geo.NumSets(); set++ {
		for way := 0; way < c.geo.Assoc; way++ {
			l := c.tags.Line(set, way)
			if !l.Valid {
				continue
			}
			validTags++
			if l.Aux <= 0 || int(l.Aux-1) >= len(claimed) {
				return fmt.Errorf("tag (%d,%d): forward pointer %d out of range", set, way, l.Aux)
			}
			gid := int(l.Aux - 1)
			g, f := gid/c.framesPerGroup, int32(gid%c.framesPerGroup)
			if claimed[gid] {
				return fmt.Errorf("frame %d/%d double-mapped; tag (%d,%d) claims an already-claimed frame",
					g, f, set, way)
			}
			claimed[gid] = true
			m := c.groups[g].frames[f]
			if !m.valid {
				return fmt.Errorf("tag (%d,%d): forward pointer to empty frame %d/%d", set, way, g, f)
			}
			if int(m.set) != set || int(m.way) != way {
				return fmt.Errorf("frame %d/%d reverse pointer (%d,%d) != tag (%d,%d)",
					g, f, m.set, m.way, set, way)
			}
			if c.partition(int32(set)) != c.groups[g].partOf(f) {
				return fmt.Errorf("tag (%d,%d) placed outside its partition", set, way)
			}
		}
	}
	// Every occupied frame must be claimed by exactly one tag entry;
	// counting both directions establishes the bijection. checkIntegrity
	// covers the per-partition recency/free list structure.
	occupied := 0
	for gi, g := range c.groups {
		if err := g.checkIntegrity(); err != nil {
			return err
		}
		for f := range g.frames {
			if g.frames[f].valid {
				occupied++
				if !claimed[gi*c.framesPerGroup+f] {
					return fmt.Errorf("frame %d/%d occupied but claimed by no tag entry", gi, f)
				}
			}
		}
	}
	if occupied != validTags {
		return fmt.Errorf("%d occupied frames but %d valid tags", occupied, validTags)
	}
	return nil
}

// occupiedFrames returns the number of occupied data frames across all
// d-groups, derived from the free-list accounting.
func (c *Cache) occupiedFrames() int {
	n := 0
	for _, g := range c.groups {
		n += g.numFrames()
		for p := 0; p < g.nParts; p++ {
			n -= int(g.freeCount[p])
		}
	}
	return n
}

// auditedAccess wraps one access with the conservation argument: a hit
// (with or without promotion ripples) moves blocks but conserves total
// occupancy; a miss adds exactly one block, minus one per eviction. It
// then re-verifies the full structural invariants.
func (c *Cache) auditedAccess(now int64, addr uint64, write bool) memsys.AccessResult {
	occBefore := c.occupiedFrames()
	evBefore := c.ctrs.Get("evictions")
	res := c.access(now, addr, write)
	occAfter := c.occupiedFrames()
	want := occBefore
	if !res.Hit {
		want += 1 - int(c.ctrs.Get("evictions")-evBefore)
	}
	if occAfter != want {
		panic(fmt.Sprintf("nurapid: audit: occupancy not conserved across access of %#x: %d -> %d, want %d (hit=%v)",
			addr, occBefore, occAfter, want, res.Hit))
	}
	if err := c.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("nurapid: audit: invariant violated after access of %#x: %v", addr, err))
	}
	return res
}
