package nurapid

import (
	"fmt"

	"nurapid/internal/memsys"
)

// This file is the runtime invariant auditor. The paper's correctness
// argument (Sec. 2.2-2.4) rests on structural invariants the type system
// cannot express:
//
//   - pointer bijection: every valid tag entry's forward pointer names
//     exactly one data frame, and that frame's reverse pointer names the
//     tag entry back — no dangling and no double-mapped frames;
//   - occupancy conservation: a demotion ripple moves blocks between
//     d-groups but never creates or destroys them, so occupied frames
//     always equal valid tag entries, and each partition's occupied plus
//     free frames equal its capacity;
//   - recency-list well-formedness: each partition's intrusive LRU stack
//     is an acyclic, pointer-symmetric chain over exactly its occupied
//     frames, and its free list covers exactly its free frames.
//
// CheckInvariants verifies all of it in O(tags + frames). With
// Config.Audit set, every access re-verifies the full set plus the
// access-level occupancy delta, and the first violation panics.

// CheckInvariants verifies the forward/reverse pointer bijection and the
// internal list structures; tests call it after random operation storms,
// and Config.Audit calls it after every access. It never panics on
// corrupt state — corruption comes back as an error naming the first
// inconsistency found.
func (c *Cache) CheckInvariants() error {
	// Every valid tag entry's forward pointer must land, within its own
	// partition, on a distinct occupied frame whose reverse pointer
	// points back.
	claimed := make([]bool, c.store.numFrames())
	validTags := 0
	for set := 0; set < c.geo.NumSets(); set++ {
		for way := 0; way < c.geo.Assoc; way++ {
			l := c.tags.Line(set, way)
			if !l.Valid {
				continue
			}
			validTags++
			if l.Aux <= 0 || int(l.Aux-1) >= len(claimed) {
				return fmt.Errorf("tag (%d,%d): forward pointer %d out of range", set, way, l.Aux)
			}
			gid := int32(l.Aux - 1)
			g, f := c.groupOfGid(gid), gid%int32(c.framesPerGroup)
			if claimed[gid] {
				return fmt.Errorf("frame %d/%d double-mapped; tag (%d,%d) claims an already-claimed frame",
					g, f, set, way)
			}
			claimed[gid] = true
			m := c.store.frames[gid]
			if !m.valid {
				return fmt.Errorf("tag (%d,%d): forward pointer to empty frame %d/%d", set, way, g, f)
			}
			if int(m.set) != set || int(m.way) != way {
				return fmt.Errorf("frame %d/%d reverse pointer (%d,%d) != tag (%d,%d)",
					g, f, m.set, m.way, set, way)
			}
			if c.partition(int32(set)) != c.store.partOf(gid) {
				return fmt.Errorf("tag (%d,%d) placed outside its partition", set, way)
			}
		}
	}
	// Every occupied frame must be claimed by exactly one tag entry;
	// counting both directions establishes the bijection. checkIntegrity
	// covers the per-partition recency/free list structure.
	if err := c.store.checkIntegrity(); err != nil {
		return err
	}
	occupied := 0
	for gid := range c.store.frames {
		if c.store.frames[gid].valid {
			occupied++
			if !claimed[gid] {
				return fmt.Errorf("frame %d/%d occupied but claimed by no tag entry",
					c.groupOfGid(int32(gid)), gid%c.framesPerGroup)
			}
		}
	}
	if occupied != validTags {
		return fmt.Errorf("%d occupied frames but %d valid tags", occupied, validTags)
	}
	return nil
}

// occupiedFrames returns the number of occupied data frames across all
// d-groups, derived from the free-list accounting.
func (c *Cache) occupiedFrames() int {
	n := c.store.numFrames()
	for h := range c.store.freeCount {
		n -= int(c.store.freeCount[h])
	}
	return n
}

// auditedAccess wraps one access with the conservation argument: a hit
// (with or without promotion ripples) moves blocks but conserves total
// occupancy; a miss adds exactly one block, minus one per eviction. It
// then re-verifies the full structural invariants.
//
//nurapid:coldpath
func (c *Cache) auditedAccess(now int64, addr uint64, write bool, core int) memsys.AccessResult {
	occBefore := c.occupiedFrames()
	evBefore := c.hot.evictions
	res := c.access(now, addr, write, core)
	occAfter := c.occupiedFrames()
	want := occBefore
	if !res.Hit {
		want += 1 - int(c.hot.evictions-evBefore)
	}
	if occAfter != want {
		panic(fmt.Sprintf("nurapid: audit: occupancy not conserved across access of %#x: %d -> %d, want %d (hit=%v)",
			addr, occBefore, occAfter, want, res.Hit))
	}
	if err := c.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("nurapid: audit: invariant violated after access of %#x: %v", addr, err))
	}
	return res
}
