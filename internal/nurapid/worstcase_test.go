package nurapid

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/memsys"
	"nurapid/internal/obs"
)

// chainRecorder keeps only the movement-relevant events of the most
// recent access window.
type chainRecorder struct {
	windows [][]obs.Event
}

func (r *chainRecorder) Emit(e obs.Event) {
	if e.Kind == obs.KindAccess {
		r.windows = append(r.windows, nil)
		return
	}
	if len(r.windows) > 0 {
		r.windows[len(r.windows)-1] = append(r.windows[len(r.windows)-1], e)
	}
}

// TestDemotionChainWorstCase constructs the paper's Sec. 2.2 worst case
// deterministically and pins it: a miss whose eviction frees a frame in
// the slowest d-group, so the fill's demotion ripple runs through every
// faster d-group — exactly NumDGroups-1 links — and terminates in the
// evicted block's freed frame.
func TestDemotionChainWorstCase(t *testing.T) {
	cfg := Config{
		CapacityBytes: 4 << 20,
		BlockBytes:    8192,
		Assoc:         8,
		NumDGroups:    4,
		// DemotionOnly + LRU distance: no promotions, no RNG — the block
		// ages outward one d-group at a time, fully deterministically.
		Promotion:      DemotionOnly,
		Distance:       LRUDistance,
		Placement:      DistanceAssociative,
		RestrictFrames: 16,
		Seed:           1,
		Audit:          true,
	}
	c := MustNew(cfg, cacti.Default(), memsys.NewMemory(cfg.BlockBytes))
	rec := &chainRecorder{}
	c.SetProbe(rec)

	// Partition 0 holds the frames of sets congruent 0 mod 8; its total
	// capacity is 4 d-groups x 16 frames = 64. Touch 64 distinct blocks
	// across 8 such sets (8 ways each): the partition fills completely and
	// no set overflows, so there are no evictions yet, and the first
	// block accessed — b0 in set 0 — has been demoted all the way out.
	nParts := 8 // framesPerGroup 128 / RestrictFrames 16
	addrOf := func(set, tag int) uint64 {
		return uint64(tag*c.geo.NumSets()+set) * uint64(cfg.BlockBytes)
	}
	b0 := addrOf(0, 0)
	now := int64(0)
	for i := 0; i < 64; i++ {
		r := c.Access(memsys.Req{Now: now, Addr: addrOf((i%8)*nParts, i/8)})
		now = r.DoneAt + 1
	}
	if got := c.Counters().Get("evictions"); got != 0 {
		t.Fatalf("setup overflowed a set: %d evictions before the probe miss", got)
	}
	if got := c.GroupOf(b0); got != cfg.NumDGroups-1 {
		t.Fatalf("aging setup wrong: b0 in d-group %d, want %d", got, cfg.NumDGroups-1)
	}
	demotionsBefore := c.Counters().Get("demotions")

	// The 9th tag of set 0 overflows the set: set-LRU eviction removes b0,
	// freeing the partition's only frame — in the slowest d-group.
	r := c.Access(memsys.Req{Now: now, Addr: addrOf(0, 8)})
	if r.Hit {
		t.Fatal("probe access unexpectedly hit")
	}
	if c.Contains(b0) {
		t.Fatal("set-LRU eviction did not remove b0")
	}

	wantLinks := int64(cfg.NumDGroups - 1)
	if got := c.Counters().Get("demotions") - demotionsBefore; got != wantLinks {
		t.Fatalf("worst-case miss produced %d demotion links, want %d", got, wantLinks)
	}
	w := rec.windows[len(rec.windows)-1]
	var evict, place *obs.Event
	links := 0
	for i := range w {
		switch w[i].Kind {
		case obs.KindEvict:
			evict = &w[i]
		case obs.KindDemote:
			links++
			if int(w[i].From) != links-1 || int(w[i].Group) != links {
				t.Fatalf("link %d demotes %d->%d, want %d->%d",
					links, w[i].From, w[i].Group, links-1, links)
			}
			if int(w[i].Depth) != links {
				t.Fatalf("link %d carries depth %d", links, w[i].Depth)
			}
		case obs.KindPlace:
			place = &w[i]
		}
	}
	if evict == nil || int(evict.Group) != cfg.NumDGroups-1 {
		t.Fatalf("eviction did not free a slowest-group frame: %+v", evict)
	}
	if int64(links) != wantLinks {
		t.Fatalf("observed %d demote links, want %d", links, wantLinks)
	}
	if place == nil || int(place.Group) != cfg.NumDGroups-1 || int(place.Depth) != int(wantLinks) {
		t.Fatalf("chain did not terminate in the freed slowest-group frame: %+v", place)
	}
}

// demoteOneBlock builds a 2-d-group cache and ages one block into
// d-group 1, returning the cache, the block's address, and its frame
// location. Deterministic: LRU distance, no RNG draws.
func demoteOneBlock(t *testing.T, promotion Promotion, promoteHits int) (*Cache, uint64, *frameMeta) {
	t.Helper()
	cfg := Config{
		CapacityBytes:  2 << 20,
		BlockBytes:     8192,
		Assoc:          8,
		NumDGroups:     2,
		Promotion:      promotion,
		Distance:       LRUDistance,
		Placement:      DistanceAssociative,
		RestrictFrames: 16,
		PromoteHits:    promoteHits,
		Seed:           1,
		Audit:          true,
	}
	c := MustNew(cfg, cacti.Default(), memsys.NewMemory(cfg.BlockBytes))
	nParts := 8 // framesPerGroup 128 / RestrictFrames 16
	addrOf := func(set, tag int) uint64 {
		return uint64(tag*c.geo.NumSets()+set) * uint64(cfg.BlockBytes)
	}
	b0 := addrOf(0, 0)
	// 16 misses fill d-group 0's partition 0; the 17th demotes the
	// distance-LRU block — b0 — into d-group 1.
	now := int64(0)
	for i := 0; i < 17; i++ {
		r := c.Access(memsys.Req{Now: now, Addr: addrOf((i%4)*nParts, i/4)})
		now = r.DoneAt + 1
	}
	if got := c.GroupOf(b0); got != 1 {
		t.Fatalf("aging setup wrong: b0 in d-group %d, want 1", got)
	}
	way, hit := c.tags.Lookup(b0)
	if !hit {
		t.Fatal("b0 not resident after aging")
	}
	gid := c.decodeGid(c.tags.Line(c.geo.SetIndex(b0), way).Aux)
	return c, b0, &c.store.frames[gid]
}

// TestHitCounterSaturates pins the 8-bit promotion hit counter's
// saturation: at 255 further hits neither advance nor wrap it. A wrap
// would silently restart promotion screening — with a high trigger the
// block would never promote.
func TestHitCounterSaturates(t *testing.T) {
	c, b0, meta := demoteOneBlock(t, DemotionOnly, 0)
	meta.hits = 254
	now := int64(1 << 20)
	for i := 0; i < 3; i++ {
		r := c.Access(memsys.Req{Now: now, Addr: b0, Write: false})
		if !r.Hit {
			t.Fatal("b0 hit expected")
		}
		now = r.DoneAt + 1
		if want := uint8(255); meta.hits != want {
			t.Fatalf("after hit %d: counter %d, want saturation at %d", i+1, meta.hits, want)
		}
	}
}

// TestPromotionFiresAtSaturatedCounter is the companion: with the
// maximum trigger (PromoteHits=200) a saturated counter still satisfies
// hits >= trigger, so screening promotes the block instead of wedging.
func TestPromotionFiresAtSaturatedCounter(t *testing.T) {
	c, b0, meta := demoteOneBlock(t, NextFastest, 200)
	meta.hits = 254
	r := c.Access(memsys.Req{Now: int64(1 << 20), Addr: b0, Write: false})
	if !r.Hit || r.Group != 1 {
		t.Fatalf("expected a d-group 1 hit, got %+v", r)
	}
	if got := c.Counters().Get("promotions"); got != 1 {
		t.Fatalf("promotions = %d, want 1: saturated counter must still cross the trigger", got)
	}
	if got := c.GroupOf(b0); got != 0 {
		t.Fatalf("b0 in d-group %d after promotion, want 0", got)
	}
}
