package nurapid

// This file is the sampled reuse-distance / dead-block predictor behind
// the PredictiveBypass promotion policy and the DeadOnArrival distance
// policy (ROADMAP item 4, after Wang et al.'s reuse-distance copy-backs
// and the dead-block sampling literature).
//
// A small fraction of the tag sets (one in predSampleStride) carries
// shadow tags: an assoc-deep recency-stamped table of recently filled
// block keys. When a shadow entry is evicted without ever having been
// re-referenced, the block behind it was dead on arrival — its signature
// trains toward "dead" in a table of 2-bit saturating counters. When a
// shadow entry *is* re-referenced, its signature trains back toward
// "live". Non-sampled sets pay nothing and consult only the table.
//
// The memory system models no program counters (memsys.Req carries only
// an address), so the signature hashes the block's 64-block region
// instead of a PC: a streaming scan trains its whole footprint through
// the sampled sets the way a PC-indexed table would through the single
// load instruction driving the scan, while a small hot region trains
// "live" independently. This is the documented deviation from the
// per-PC tables of the source papers.
//
// Everything is deterministic (pure function of the access stream) and
// allocation-free after construction; internal/refmodel transcribes the
// same contract in its readable style and the differential harness
// compares the two bit-for-bit.

const (
	// predTableEntries is the signature table size; predSigBits addresses
	// it exactly, so predictDead never masks.
	predTableEntries = 1024
	predSigBits      = 10

	// predDeadAt is the counter threshold for a "dead" prediction and
	// predCounterMax the 2-bit saturation ceiling.
	predDeadAt     = 2
	predCounterMax = 3

	// predSampleStride selects the sampled sets: every set whose index is
	// a multiple of the stride carries shadow tags.
	predSampleStride = 16

	// predRegionShift folds predRegionBlocks consecutive blocks into one
	// signature (the PC surrogate discussed above).
	predRegionShift = 6

	// predHashMult is the 64-bit Fibonacci hashing constant; the top
	// predSigBits bits of the product index the table.
	predHashMult = 0x9E3779B97F4A7C15
)

// predSig maps a block key (block address) to its signature-table index.
//
//nurapid:hotpath
func predSig(key uint64) uint32 {
	return uint32(((key >> predRegionShift) * predHashMult) >> (64 - predSigBits))
}

// predictor is the flat, allocation-free implementation. The shadow
// entries of all sampled sets live in four parallel slices indexed
//
//	row = set/predSampleStride, entry = row*assoc + i
//
// and the recency stamps come from one global tick so victim selection
// is a min-scan with no per-set state.
type predictor struct {
	table []uint8 // 2-bit saturating dead counters, indexed by predSig

	shadowKey   []uint64
	shadowStamp []uint64
	shadowValid []bool
	shadowRefd  []bool

	assoc int
	tick  uint64
}

func newPredictor(numSets, assoc int) *predictor {
	rows := (numSets + predSampleStride - 1) / predSampleStride
	n := rows * assoc
	return &predictor{
		table:       make([]uint8, predTableEntries),
		shadowKey:   make([]uint64, n),
		shadowStamp: make([]uint64, n),
		shadowValid: make([]bool, n),
		shadowRefd:  make([]bool, n),
		assoc:       assoc,
	}
}

// predictDead reports whether the block behind key is predicted dead on
// arrival / streaming. Callers consult it before observe so the
// prediction never sees the access it is predicting.
//
//nurapid:hotpath
func (p *predictor) predictDead(key uint64) bool {
	return p.table[predSig(key)] >= predDeadAt
}

// observe feeds one access into the sampled shadow tags. Non-sampled
// sets return immediately. In a sampled set, the first re-reference of a
// shadowed key trains its signature "live"; installing over a
// never-referenced victim trains the victim's signature "dead".
//
//nurapid:hotpath
func (p *predictor) observe(set int, key uint64) {
	if set%predSampleStride != 0 {
		return
	}
	base := (set / predSampleStride) * p.assoc
	p.tick++
	for i := base; i < base+p.assoc; i++ {
		if p.shadowValid[i] && p.shadowKey[i] == key {
			if !p.shadowRefd[i] {
				p.shadowRefd[i] = true
				s := predSig(key)
				if p.table[s] > 0 {
					p.table[s]--
				}
			}
			p.shadowStamp[i] = p.tick
			return
		}
	}
	// Shadow miss: victim is the first invalid entry, else the LRU stamp.
	v := base
	for i := base; i < base+p.assoc; i++ {
		if !p.shadowValid[i] {
			v = i
			break
		}
		if p.shadowStamp[i] < p.shadowStamp[v] {
			v = i
		}
	}
	if p.shadowValid[v] && !p.shadowRefd[v] {
		s := predSig(p.shadowKey[v])
		if p.table[s] < predCounterMax {
			p.table[s]++
		}
	}
	p.shadowKey[v] = key
	p.shadowStamp[v] = p.tick
	p.shadowValid[v] = true
	p.shadowRefd[v] = false
}
