package nurapid

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

func testModel() *cacti.Model { return cacti.Default() }

func testMemory() *memsys.Memory { return memsys.NewMemory(128) }

func build(t *testing.T, mutate func(*Config)) (*Cache, *memsys.Memory) {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	mem := memsys.NewMemory(cfg.BlockBytes)
	c, err := New(cfg, cacti.Default(), mem)
	if err != nil {
		t.Fatal(err)
	}
	return c, mem
}

func blockAddr(i int) uint64 { return uint64(i) * 128 }

func TestNewRejectsBadConfigs(t *testing.T) {
	m := cacti.Default()
	mem := memsys.NewMemory(128)
	bad := []func(*Config){
		func(c *Config) { c.NumDGroups = 3 }, // 8 MB not divisible
		func(c *Config) { c.NumDGroups = 0 },
		func(c *Config) { c.CapacityBytes = 12345 }, // not whole MB
		func(c *Config) { c.Assoc = 0 },
		func(c *Config) { c.RestrictFrames = 1000 }, // does not divide 16384
		func(c *Config) { c.Placement = SetAssociative; c.NumDGroups = 8; c.Assoc = 12 },
		func(c *Config) { c.Placement = Placement(9) },
	}
	for i, f := range bad {
		cfg := DefaultConfig()
		f(&cfg)
		if _, err := New(cfg, m, mem); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if DemotionOnly.String() != "demotion-only" || NextFastest.String() != "next-fastest" ||
		Fastest.String() != "fastest" {
		t.Fatal("promotion strings wrong")
	}
	if RandomDistance.String() != "random" || LRUDistance.String() != "lru" {
		t.Fatal("distance policy strings wrong")
	}
	if DistanceAssociative.String() != "distance-associative" || SetAssociative.String() != "set-associative" {
		t.Fatal("placement strings wrong")
	}
	if Promotion(9).String() == "" || DistancePolicy(9).String() == "" || Placement(9).String() == "" {
		t.Fatal("unknown enums must render")
	}
}

func TestMissPlacesInFastestGroup(t *testing.T) {
	c, mem := build(t, nil)
	r := c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	if g := c.GroupOf(blockAddr(1)); g != 0 {
		t.Fatalf("new block in d-group %d, want 0", g)
	}
	if mem.Accesses != 1 {
		t.Fatalf("memory accesses = %d", mem.Accesses)
	}
}

func TestHitLatencyFastestGroup(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	r := c.Access(memsys.Req{Now: 10000, Addr: blockAddr(1), Write: false})
	if !r.Hit || r.Group != 0 {
		t.Fatalf("want d-group-0 hit, got %+v", r)
	}
	// 4 d-groups: fastest latency is 14 cycles (Table 4).
	if r.DoneAt != 10000+14 {
		t.Fatalf("hit done at %d, want %d", r.DoneAt, 10000+14)
	}
}

func TestMissLatencyIncludesTagAndMemory(t *testing.T) {
	c, _ := build(t, nil)
	r := c.Access(memsys.Req{Now: 500, Addr: blockAddr(9), Write: false})
	want := int64(500 + 8 + 194) // tag probe + memory
	if r.DoneAt != want {
		t.Fatalf("miss done at %d, want %d", r.DoneAt, want)
	}
}

func TestOnePortSerializesHits(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false}) // issued while the port is busy
	r := c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	// The cold miss holds the port for the 4-cycle issue interval, the
	// second access for another 4; the third starts at cycle 8 and
	// completes a 14-cycle d-group-0 hit at 22.
	if r.DoneAt != 8+14 {
		t.Fatalf("third access done at %d, want 22", r.DoneAt)
	}
}

func TestSwapsExtendThePort(t *testing.T) {
	// A promotion's block movement must complete before the next access
	// starts (the paper's one-port constraint).
	c, _ := build(t, nil)
	fillGroups(c, 2)
	target := blockAddr(0)
	if c.GroupOf(target) < 1 {
		t.Fatal("setup: block must sit beyond d-group 0")
	}
	free := c.port.FreeAt()
	now := free + 100
	c.Access(memsys.Req{Now: now, Addr: target, Write: false}) // hit + promotion swap
	// Port held for the issue interval plus 2 movement operations.
	want := now + accessIssueInterval + 2*movementOccupancy
	if c.port.FreeAt() != want {
		t.Fatalf("port free at %d, want %d", c.port.FreeAt(), want)
	}
}

// fillGroups streams enough distinct blocks through the cache to
// populate the first n d-groups (2 MB each in the default config).
func fillGroups(c *Cache, n int) {
	blocks := n * (2 << 20) / 128
	for i := 0; i < blocks; i++ {
		c.Access(memsys.Req{Now: int64(i) * 1000, Addr: blockAddr(i), Write: false})
	}
}

func TestSequentialFillDemotesOldBlocks(t *testing.T) {
	c, _ := build(t, nil)
	fillGroups(c, 2) // 4 MB of distinct blocks
	// The earliest blocks must have been demoted out of d-group 0.
	if g := c.GroupOf(blockAddr(0)); g < 1 {
		t.Fatalf("oldest block still in d-group %d, want >= 1", g)
	}
	// The most recent block must be in d-group 0.
	last := 2*(2<<20)/128 - 1
	if g := c.GroupOf(blockAddr(last)); g != 0 {
		t.Fatalf("newest block in d-group %d, want 0", g)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoEvictionUntilCapacity(t *testing.T) {
	c, _ := build(t, nil)
	fillGroups(c, 4) // exactly 8 MB of distinct blocks
	if ev := c.Counters().Get("evictions"); ev != 0 {
		t.Fatalf("%d evictions before exceeding capacity", ev)
	}
	for i := 0; i < 4*(2<<20)/128; i++ {
		if !c.Contains(blockAddr(i)) {
			t.Fatalf("block %d missing although capacity not exceeded", i)
		}
	}
}

func TestNextFastestPromotesOneGroup(t *testing.T) {
	c, _ := build(t, nil)
	fillGroups(c, 2)
	target := blockAddr(0)
	g0 := c.GroupOf(target)
	if g0 < 1 {
		t.Fatalf("setup: block in d-group %d", g0)
	}
	r := c.Access(memsys.Req{Now: 1e9, Addr: target, Write: false})
	if !r.Hit || r.Group != g0 {
		t.Fatalf("hit reported group %d, want %d", r.Group, g0)
	}
	if g := c.GroupOf(target); g != g0-1 {
		t.Fatalf("after hit block in d-group %d, want %d", g, g0-1)
	}
	if c.Counters().Get("promotions") == 0 {
		t.Fatal("promotion not counted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFastestPromotesToGroupZero(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Promotion = Fastest })
	fillGroups(c, 3)
	target := blockAddr(0)
	if g := c.GroupOf(target); g < 2 {
		t.Fatalf("setup: block in d-group %d, want >= 2", g)
	}
	c.Access(memsys.Req{Now: 1e9, Addr: target, Write: false})
	if g := c.GroupOf(target); g != 0 {
		t.Fatalf("after hit block in d-group %d, want 0", g)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDemotionOnlyNeverPromotes(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Promotion = DemotionOnly })
	fillGroups(c, 2)
	target := blockAddr(0)
	g0 := c.GroupOf(target)
	if g0 < 1 {
		t.Fatalf("setup: block in d-group %d", g0)
	}
	for i := 0; i < 5; i++ {
		c.Access(memsys.Req{Now: 1e9 + int64(i)*1000, Addr: target, Write: false})
	}
	if g := c.GroupOf(target); g != g0 {
		t.Fatalf("demotion-only moved the block from %d to %d", g0, g)
	}
	if c.Counters().Get("promotions") != 0 {
		t.Fatal("demotion-only must not promote")
	}
}

func TestMissesIndependentOfPromotionPolicy(t *testing.T) {
	// Distance replacement never evicts (paper Sec. 2.2), so the miss
	// stream is identical across promotion policies.
	var missCounts []int64
	for _, pol := range []Promotion{DemotionOnly, NextFastest, Fastest} {
		c, _ := build(t, func(cfg *Config) { cfg.Promotion = pol })
		rng := mathx.NewRNG(7)
		for i := 0; i < 60000; i++ {
			c.Access(memsys.Req{Now: int64(i) * 30, Addr: blockAddr(rng.Intn(100000)), Write: rng.Bool(0.2)})
		}
		missCounts = append(missCounts, c.Counters().Get("misses"))
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
	if missCounts[0] != missCounts[1] || missCounts[1] != missCounts[2] {
		t.Fatalf("miss counts differ across policies: %v", missCounts)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c, mem := build(t, nil)
	set := c.geo.SetIndex(blockAddr(0))
	stride := c.geo.NumSets()                                     // in blocks
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(0), Write: true}) // dirty
	// Evict it with 8 conflicting fills into the same set.
	for i := 1; i <= 8; i++ {
		a := blockAddr(i * stride)
		if c.geo.SetIndex(a) != set {
			t.Fatal("stride math wrong")
		}
		c.Access(memsys.Req{Now: int64(i) * 1000, Addr: a, Write: false})
	}
	if c.Contains(blockAddr(0)) {
		t.Fatal("victim should have been evicted")
	}
	if mem.Writes != 1 {
		t.Fatalf("memory writes = %d, want 1", mem.Writes)
	}
	if c.Counters().Get("writebacks") != 1 {
		t.Fatal("writeback counter wrong")
	}
}

func TestHotSetFitsInFastestGroup(t *testing.T) {
	// The paper's motivating property: with distance associativity, all
	// 8 ways of a hot set can live in d-group 0.
	c, _ := build(t, nil)
	set := c.geo.SetIndex(blockAddr(0))
	stride := c.geo.NumSets()
	for i := 0; i < 8; i++ {
		c.Access(memsys.Req{Now: int64(i) * 1000, Addr: blockAddr(i * stride), Write: false})
	}
	for i := 0; i < 8; i++ {
		a := blockAddr(i * stride)
		if c.geo.SetIndex(a) != set {
			t.Fatal("stride math wrong")
		}
		if g := c.GroupOf(a); g != 0 {
			t.Fatalf("hot-set way %d in d-group %d, want 0", i, g)
		}
	}
}

func TestSetAssociativePlacementSplitsHotSet(t *testing.T) {
	// The same hot set under set-associative placement: only 2 frames
	// per d-group per set, so the 8 blocks spread 2-2-2-2.
	c, _ := build(t, func(cfg *Config) { cfg.Placement = SetAssociative })
	stride := c.geo.NumSets()
	for i := 0; i < 8; i++ {
		c.Access(memsys.Req{Now: int64(i) * 1000, Addr: blockAddr(i * stride), Write: false})
	}
	perGroup := make(map[int]int)
	for i := 0; i < 8; i++ {
		perGroup[c.GroupOf(blockAddr(i*stride))]++
	}
	for g := 0; g < 4; g++ {
		if perGroup[g] != 2 {
			t.Fatalf("d-group %d holds %d hot-set blocks, want 2 (distribution %v)",
				g, perGroup[g], perGroup)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPointerBits(t *testing.T) {
	// Sec. 2.4.3: full flexibility in an 8-MB/128-B cache needs 16-bit
	// pointers; restricting each block to 256 frames per d-group with 4
	// d-groups reduces them to 10 bits.
	c, _ := build(t, nil)
	if bits := c.PointerBits(); bits != 16 {
		t.Fatalf("unrestricted pointer bits = %d, want 16", bits)
	}
	c, _ = build(t, func(cfg *Config) { cfg.RestrictFrames = 256 })
	if bits := c.PointerBits(); bits != 10 {
		t.Fatalf("restricted pointer bits = %d, want 10", bits)
	}
}

func TestRestrictedPlacementKeepsInvariants(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.RestrictFrames = 256 })
	rng := mathx.NewRNG(11)
	for i := 0; i < 80000; i++ {
		c.Access(memsys.Req{Now: int64(i) * 25, Addr: blockAddr(rng.Intn(90000)), Write: rng.Bool(0.25)})
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Counters().Get("misses") == 0 || c.Counters().Get("demotions") == 0 {
		t.Fatal("storm should have produced misses and demotions")
	}
}

func TestLRUDistanceKeepsInvariants(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.Distance = LRUDistance })
	rng := mathx.NewRNG(13)
	for i := 0; i < 80000; i++ {
		c.Access(memsys.Req{Now: int64(i) * 25, Addr: blockAddr(rng.Intn(90000)), Write: rng.Bool(0.25)})
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantStormAllConfigs(t *testing.T) {
	// Cross product of the policy space under a hot/cold mixed workload.
	for _, groups := range []int{2, 4, 8} {
		for _, pol := range []Promotion{DemotionOnly, NextFastest, Fastest} {
			for _, dp := range []DistancePolicy{RandomDistance, LRUDistance} {
				c, _ := build(t, func(cfg *Config) {
					cfg.NumDGroups = groups
					cfg.Promotion = pol
					cfg.Distance = dp
				})
				rng := mathx.NewRNG(uint64(groups)*100 + uint64(pol)*10 + uint64(dp))
				zipf := mathx.NewZipf(rng.Split(), 0.9, 120000)
				for i := 0; i < 40000; i++ {
					c.Access(memsys.Req{Now: int64(i) * 30, Addr: blockAddr(zipf.Draw()), Write: rng.Bool(0.3)})
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("groups=%d %v/%v: %v", groups, pol, dp, err)
				}
			}
		}
	}
}

func TestGroupAccessCounting(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})    // miss: 1 fill write in group 0
	c.Access(memsys.Req{Now: 1000, Addr: blockAddr(1), Write: false}) // hit: 1 serve in group 0
	ga := c.GroupAccesses()
	if ga[0] != 2 {
		t.Fatalf("group 0 accesses = %d, want 2", ga[0])
	}
	if ga[1] != 0 || ga[2] != 0 || ga[3] != 0 {
		t.Fatalf("unexpected accesses in slower groups: %v", ga)
	}
}

func TestSwapAccountingOnPromotion(t *testing.T) {
	c, _ := build(t, nil)
	fillGroups(c, 2)
	before := c.GroupAccesses()
	target := blockAddr(0)
	g := c.GroupOf(target)
	c.Access(memsys.Req{Now: 1e9, Addr: target, Write: false}) // hit + next-fastest promotion
	after := c.GroupAccesses()
	// Serve (1 in g) + victim read and promoted write in g-1 (2) +
	// victim write into g (1).
	if after[g]-before[g] != 2 {
		t.Fatalf("group %d accesses grew by %d, want 2", g, after[g]-before[g])
	}
	if after[g-1]-before[g-1] != 2 {
		t.Fatalf("group %d accesses grew by %d, want 2", g-1, after[g-1]-before[g-1])
	}
}

func TestDistributionTracksGroups(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	c.Access(memsys.Req{Now: 1000, Addr: blockAddr(1), Write: false})
	d := c.Distribution()
	if d.MissCount() != 1 || d.HitCount(0) != 1 {
		t.Fatalf("distribution: misses=%d g0=%d", d.MissCount(), d.HitCount(0))
	}
	if d.NumCategories() != 4 {
		t.Fatalf("categories = %d, want 4", d.NumCategories())
	}
}

func TestGroupLatenciesMatchTable4(t *testing.T) {
	c, _ := build(t, nil)
	want := []int64{14, 23, 25, 34}
	got := c.GroupLatencies()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("latencies %v, want %v", got, want)
		}
	}
}

func TestNameAndConfig(t *testing.T) {
	c, _ := build(t, nil)
	if c.Name() != "nurapid-4g-next-fastest" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Config().NumDGroups != 4 {
		t.Fatal("Config accessor wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on bad config")
		}
	}()
	cfg := DefaultConfig()
	cfg.NumDGroups = 3
	MustNew(cfg, cacti.Default(), memsys.NewMemory(128))
}

func TestEnergyAccumulates(t *testing.T) {
	c, _ := build(t, nil)
	c.Access(memsys.Req{Now: 0, Addr: blockAddr(1), Write: false})
	e1 := c.EnergyNJ()
	c.Access(memsys.Req{Now: 1000, Addr: blockAddr(1), Write: false})
	if c.EnergyNJ() <= e1 || e1 <= 0 {
		t.Fatalf("energy not accumulating: %v -> %v", e1, c.EnergyNJ())
	}
}
