package nurapid

import (
	"fmt"
	"strings"
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
)

// auditGeometry is deliberately tiny (256 frames) so that the full
// O(frames) invariant audit after every single access stays affordable
// across a ~1M-access storm.
func auditConfig() Config {
	return Config{
		CapacityBytes: 4 << 20,
		BlockBytes:    16384,
		Assoc:         8,
		NumDGroups:    4,
		Audit:         true,
		Seed:          1,
	}
}

// auditVariants is the policy matrix the storm covers: every Promotion x
// DistancePolicy combination, each under flexible, pointer-restricted,
// and set-associative placement (the restricted variant also exercises
// the promotion trigger).
func auditVariants() []Config {
	var out []Config
	for _, prom := range []Promotion{DemotionOnly, NextFastest, Fastest} {
		for _, dist := range []DistancePolicy{RandomDistance, LRUDistance} {
			base := auditConfig()
			base.Promotion = prom
			base.Distance = dist

			flexible := base

			restricted := base
			restricted.RestrictFrames = 16
			restricted.PromoteHits = 2

			setAssoc := base
			setAssoc.Placement = SetAssociative

			out = append(out, flexible, restricted, setAssoc)
		}
	}
	return out
}

// TestAuditedAccessStorm is the randomized property test behind the
// invariant auditor: ~1M mixed accesses spread across the policy matrix,
// with the full structural audit running after every access. Any
// violation panics inside Access and fails the test.
func TestAuditedAccessStorm(t *testing.T) {
	perVariant := 60_000
	if testing.Short() {
		perVariant = 6_000
	}
	variants := auditVariants()
	model := cacti.Default()
	for i, cfg := range variants {
		name := fmt.Sprintf("%s-%s-p%d-r%d", cfg.Promotion, cfg.Distance, cfg.Placement, cfg.RestrictFrames)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mem := memsys.NewMemory(cfg.BlockBytes)
			c := MustNew(cfg, model, mem)
			rng := mathx.NewRNG(uint64(0xda7a + i))

			// 3/4 of accesses hit a working set slightly larger than the
			// cache (hits, promotions, demotion ripples, evictions); the
			// rest sweep a far larger footprint (streaming misses).
			hotBlocks := int64(c.geo.NumBlocks()) * 5 / 4
			coldBlocks := int64(c.geo.NumBlocks()) * 8
			now := int64(0)
			for n := 0; n < perVariant; n++ {
				var block int64
				if rng.Intn(4) != 0 {
					block = rng.Int63n(hotBlocks)
				} else {
					block = rng.Int63n(coldBlocks)
				}
				addr := uint64(block) * uint64(cfg.BlockBytes)
				res := c.Access(memsys.Req{Now: now, Addr: addr, Write: rng.Intn(10) < 3})
				if res.DoneAt < now {
					t.Fatalf("access %d completed at %d, before issue at %d", n, res.DoneAt, now)
				}
				now = res.DoneAt + 1
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("final invariant check: %v", err)
			}
			if got := c.Counters().Get("accesses"); got != int64(perVariant) {
				t.Fatalf("accesses counter = %d, want %d", got, perVariant)
			}
			if c.Counters().Get("misses") == 0 || c.Counters().Get("evictions") == 0 {
				t.Fatal("storm produced no misses or no evictions; working set too small to stress the auditor")
			}
		})
	}
}

// fillCache brings a small audited cache to a state with occupied frames
// in several d-groups.
func fillCache(t *testing.T) *Cache {
	t.Helper()
	cfg := auditConfig()
	cfg.Audit = false // corruption tests call CheckInvariants directly
	mem := memsys.NewMemory(cfg.BlockBytes)
	c := MustNew(cfg, cacti.Default(), mem)
	now := int64(0)
	for b := 0; b < 2*c.geo.NumBlocks(); b++ {
		res := c.Access(memsys.Req{Now: now, Addr: uint64(b) * uint64(cfg.BlockBytes), Write: b%3 == 0})
		now = res.DoneAt + 1
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("cache corrupt before corruption test: %v", err)
	}
	return c
}

// firstValid returns the coordinates of some valid tag entry and the
// global id of its frame.
func firstValid(t *testing.T, c *Cache) (set, way int, gid int32) {
	t.Helper()
	for set := 0; set < c.geo.NumSets(); set++ {
		for way := 0; way < c.geo.Assoc; way++ {
			if l := c.tags.Line(set, way); l.Valid {
				return set, way, c.decodeGid(l.Aux)
			}
		}
	}
	t.Fatal("no valid tag entry in a filled cache")
	return 0, 0, 0
}

// TestCheckInvariantsDetectsCorruption seeds one violation of each
// invariant class and asserts the auditor reports it; without these the
// property test could pass vacuously.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, c *Cache)
		want    string
	}{
		{"dangling-forward-pointer", func(t *testing.T, c *Cache) {
			set, way, _ := firstValid(t, c)
			c.tags.Line(set, way).Aux = int64(c.store.numFrames()) + 7
		}, "out of range"},
		{"reverse-pointer-mismatch", func(t *testing.T, c *Cache) {
			_, _, gid := firstValid(t, c)
			c.store.frames[gid].set ^= 1
		}, "reverse pointer"},
		{"double-mapped-frame", func(t *testing.T, c *Cache) {
			set, way, _ := firstValid(t, c)
			aux := c.tags.Line(set, way).Aux
			// Point a second valid tag entry at the same frame.
			other := (way + 1) % c.geo.Assoc
			if !c.tags.Line(set, other).Valid {
				t.Skip("neighbor way not valid")
			}
			c.tags.Line(set, other).Aux = aux
		}, "double-mapped"},
		{"occupancy-leak", func(t *testing.T, c *Cache) {
			_, _, gid := firstValid(t, c)
			s := &c.store
			s.lruUnlink(gid, s.homeOf(gid))
			s.frames[gid].valid = false // freed frame without free-list insert
		}, ""},
		{"recency-cycle", func(t *testing.T, c *Cache) {
			_, _, gid := firstValid(t, c)
			s := &c.store
			head := s.lruHead[s.homeOf(gid)]
			if s.next[head] == nilFrame {
				t.Skip("recency list too short for a cycle")
			}
			s.next[s.next[head]] = head
		}, ""},
		{"prev-pointer-asymmetry", func(t *testing.T, c *Cache) {
			_, _, gid := firstValid(t, c)
			s := &c.store
			head := s.lruHead[s.homeOf(gid)]
			if s.next[head] == nilFrame {
				t.Skip("recency list too short")
			}
			s.prev[s.next[head]] = nilFrame
		}, "prev pointer"},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			c := fillCache(t)
			tc.corrupt(t, c)
			err := c.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestAuditPanicsOnCorruption verifies the Config.Audit knob turns a
// detected violation into a prefixed panic at the offending access.
func TestAuditPanicsOnCorruption(t *testing.T) {
	cfg := auditConfig()
	mem := memsys.NewMemory(cfg.BlockBytes)
	c := MustNew(cfg, cacti.Default(), mem)
	now := int64(0)
	for b := 0; b < c.geo.NumBlocks(); b++ {
		res := c.Access(memsys.Req{Now: now, Addr: uint64(b) * uint64(cfg.BlockBytes), Write: false})
		now = res.DoneAt + 1
	}
	_, _, gid := firstValid(t, c)
	c.store.frames[gid].set ^= 1

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("audited access on corrupt cache did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "nurapid: audit:") {
			t.Fatalf("panic %v does not carry the nurapid audit prefix", r)
		}
	}()
	for b := 0; b < c.geo.NumBlocks(); b++ {
		c.Access(memsys.Req{Now: now, Addr: uint64(b) * uint64(cfg.BlockBytes), Write: false})
		now++
	}
}
