package nurapid

import (
	"fmt"

	"nurapid/internal/mathx"
)

// frameMeta is the data-array side of one block frame: the reverse
// pointer (set, way) locating the block's tag entry (paper Sec. 2.2),
// plus a small saturating hit counter used by promotion triggers.
type frameMeta struct {
	valid bool
	set   int32
	way   int8
	hits  uint8 // hits since the block arrived in this d-group
}

// dgroup is one distance-group: a pool of data frames at a single
// latency. Frames are divided into partitions to express the placement
// restrictions the paper discusses:
//
//   - unrestricted distance associativity: one partition spanning the
//     whole d-group (any block anywhere);
//   - pointer-restricted placement (Sec. 2.4.3): fixed-size partitions,
//     a block's set selecting its partition;
//   - set-associative placement (the Fig. 4 comparison): one partition
//     per set, holding assoc/nGroups frames.
//
// Each partition maintains a free list and an intrusive recency list so
// both random and true-LRU distance replacement run in O(1).
type dgroup struct {
	id       int
	latency  int64   // full serve latency, tag included
	dataLat  int64   // data array + wire portion (block movement cost)
	accessNJ float64 // energy per data-array access

	nParts   int
	partSize int
	frames   []frameMeta

	// Intrusive doubly-linked recency list per partition over occupied
	// frames (head = most recent). Free frames are chained through next.
	prev, next       []int32
	lruHead, lruTail []int32
	freeHead         []int32
	freeCount        []int32

	accesses int64 // data-array accesses (serves, swap reads/writes, fills)
}

const nilFrame = int32(-1)

func newDGroup(id int, latency, dataLat int64, accessNJ float64, nParts, partSize int) *dgroup {
	n := nParts * partSize
	g := &dgroup{
		id:        id,
		latency:   latency,
		dataLat:   dataLat,
		accessNJ:  accessNJ,
		nParts:    nParts,
		partSize:  partSize,
		frames:    make([]frameMeta, n),
		prev:      make([]int32, n),
		next:      make([]int32, n),
		lruHead:   make([]int32, nParts),
		lruTail:   make([]int32, nParts),
		freeHead:  make([]int32, nParts),
		freeCount: make([]int32, nParts),
	}
	for p := 0; p < nParts; p++ {
		g.lruHead[p] = nilFrame
		g.lruTail[p] = nilFrame
		// Chain the partition's frames into its free list.
		base := int32(p * partSize)
		g.freeHead[p] = base
		g.freeCount[p] = int32(partSize)
		for i := int32(0); i < int32(partSize); i++ {
			f := base + i
			if i == int32(partSize)-1 {
				g.next[f] = nilFrame
			} else {
				g.next[f] = f + 1
			}
			g.prev[f] = nilFrame
		}
	}
	return g
}

func (g *dgroup) numFrames() int { return len(g.frames) }

func (g *dgroup) partOf(f int32) int { return int(f) / g.partSize }

// takeFree pops a free frame from partition p, or returns nilFrame.
func (g *dgroup) takeFree(p int) int32 {
	f := g.freeHead[p]
	if f == nilFrame {
		return nilFrame
	}
	g.freeHead[p] = g.next[f]
	g.freeCount[p]--
	return f
}

// victim selects an occupied frame of partition p to demote. The caller
// must have exhausted takeFree first, so the partition is full and any
// frame is occupied; random selection is a single draw and LRU is the
// recency-list tail.
func (g *dgroup) victim(p int, useLRU bool, rng *mathx.RNG) int32 {
	if useLRU {
		f := g.lruTail[p]
		if f == nilFrame {
			panic(fmt.Sprintf("nurapid: d-group %d partition %d has no occupied frames", g.id, p))
		}
		return f
	}
	if g.freeCount[p] != 0 {
		panic(fmt.Sprintf("nurapid: random victim requested while partition %d has free frames", p))
	}
	return int32(p*g.partSize) + int32(rng.Intn(g.partSize))
}

// occupy installs a block into free frame f and makes it most recent.
func (g *dgroup) occupy(f int32, set int32, way int8) {
	if g.frames[f].valid {
		panic("nurapid: occupying a valid frame")
	}
	g.frames[f] = frameMeta{valid: true, set: set, way: way, hits: 0}
	g.lruPush(f)
}

// replace swaps the occupant of frame f for a new block, returning the
// old occupant's identity. Recency is refreshed: the incoming block was
// just accessed or just demoted.
func (g *dgroup) replace(f int32, set int32, way int8) (oldSet int32, oldWay int8) {
	m := &g.frames[f]
	if !m.valid {
		panic("nurapid: replacing an empty frame")
	}
	oldSet, oldWay = m.set, m.way
	m.set, m.way = set, way
	m.hits = 0
	g.lruUnlink(f)
	g.lruPush(f)
	return oldSet, oldWay
}

// release frees frame f (block evicted from the cache or promoted away).
func (g *dgroup) release(f int32) {
	if !g.frames[f].valid {
		panic("nurapid: releasing an empty frame")
	}
	g.lruUnlink(f)
	g.frames[f].valid = false
	p := g.partOf(f)
	g.next[f] = g.freeHead[p]
	g.freeHead[p] = f
	g.freeCount[p]++
}

// touch marks frame f most recently used in its partition.
func (g *dgroup) touch(f int32) {
	g.lruUnlink(f)
	g.lruPush(f)
}

func (g *dgroup) lruPush(f int32) {
	p := g.partOf(f)
	g.prev[f] = nilFrame
	g.next[f] = g.lruHead[p]
	if g.lruHead[p] != nilFrame {
		g.prev[g.lruHead[p]] = f
	}
	g.lruHead[p] = f
	if g.lruTail[p] == nilFrame {
		g.lruTail[p] = f
	}
}

func (g *dgroup) lruUnlink(f int32) {
	p := g.partOf(f)
	if g.prev[f] != nilFrame {
		g.next[g.prev[f]] = g.next[f]
	} else {
		g.lruHead[p] = g.next[f]
	}
	if g.next[f] != nilFrame {
		g.prev[g.next[f]] = g.prev[f]
	} else {
		g.lruTail[p] = g.prev[f]
	}
	g.prev[f] = nilFrame
	g.next[f] = nilFrame
}

// checkIntegrity validates the partition lists (the auditor's d-group
// half): every occupied frame is on exactly one recency list with
// symmetric prev/next pointers and a consistent tail, every free frame on
// its free list, and counts agree. It runs in O(frames) with a single
// allocation so Config.Audit can afford it per access.
func (g *dgroup) checkIntegrity() error {
	onLRU := make([]bool, len(g.frames))
	for p := 0; p < g.nParts; p++ {
		onList := 0
		last := nilFrame
		for f := g.lruHead[p]; f != nilFrame; f = g.next[f] {
			if onLRU[f] {
				return fmt.Errorf("d-group %d partition %d: recency list cycle at %d", g.id, p, f)
			}
			if !g.frames[f].valid {
				return fmt.Errorf("d-group %d: free frame %d on recency list", g.id, f)
			}
			if g.partOf(f) != p {
				return fmt.Errorf("d-group %d: frame %d on wrong partition list %d", g.id, f, p)
			}
			if g.prev[f] != last {
				return fmt.Errorf("d-group %d partition %d: frame %d prev pointer %d, want %d",
					g.id, p, f, g.prev[f], last)
			}
			onLRU[f] = true
			last = f
			onList++
		}
		if g.lruTail[p] != last {
			return fmt.Errorf("d-group %d partition %d: recency tail %d, want %d",
				g.id, p, g.lruTail[p], last)
		}
		free := int32(0)
		for f := g.freeHead[p]; f != nilFrame; f = g.next[f] {
			if g.frames[f].valid {
				return fmt.Errorf("d-group %d: occupied frame %d on free list", g.id, f)
			}
			if g.partOf(f) != p {
				return fmt.Errorf("d-group %d: free frame %d on wrong partition list %d", g.id, f, p)
			}
			free++
			if free > int32(g.partSize) {
				return fmt.Errorf("d-group %d partition %d: free list cycle", g.id, p)
			}
		}
		if free != g.freeCount[p] {
			return fmt.Errorf("d-group %d partition %d: free count %d, list %d", g.id, p, g.freeCount[p], free)
		}
		occupied := 0
		for i := p * g.partSize; i < (p+1)*g.partSize; i++ {
			if g.frames[i].valid {
				occupied++
			}
		}
		if occupied != onList {
			return fmt.Errorf("d-group %d partition %d: %d occupied frames but %d on recency list",
				g.id, p, occupied, onList)
		}
		if occupied+int(free) != g.partSize {
			return fmt.Errorf("d-group %d partition %d: %d occupied + %d free != %d",
				g.id, p, occupied, free, g.partSize)
		}
	}
	return nil
}
