package nurapid

import (
	"fmt"

	"nurapid/internal/mathx"
)

// frameMeta is the data-array side of one block frame: the reverse
// pointer (set, way) locating the block's tag entry (paper Sec. 2.2),
// plus a small saturating hit counter used by promotion triggers.
type frameMeta struct {
	valid bool
	set   int32
	way   int8
	hits  uint8 // hits since the block arrived in this d-group
}

// frameStore holds every d-group's data frames in one contiguous block,
// indexed by dense global frame ids:
//
//	gid = group*framesPerGroup + localFrame
//
// Frames within a d-group are divided into partitions to express the
// placement restrictions the paper discusses:
//
//   - unrestricted distance associativity: one partition spanning the
//     whole d-group (any block anywhere);
//   - pointer-restricted placement (Sec. 2.4.3): fixed-size partitions,
//     a block's set selecting its partition;
//   - set-associative placement (the Fig. 4 comparison): one partition
//     per set, holding assoc/nGroups frames.
//
// Each (group, partition) pair — its "home", h = group*nParts + part —
// maintains a free list and an intrusive recency list threaded through
// the shared prev/next slices, so both random and true-LRU distance
// replacement run in O(1) with no per-frame heap nodes and no pointer
// chasing across allocations. Hot-path methods take the home index h
// from the caller (who derives it from the block's set without any
// division); homeOf recomputes it with divisions for audits and tests.
type frameStore struct {
	nGroups        int
	framesPerGroup int
	nParts         int
	partSize       int

	frames []frameMeta

	// Intrusive doubly-linked recency list per home over occupied frames
	// (head = most recent). Free frames are chained through next.
	prev, next       []int32
	lruHead, lruTail []int32 // indexed by home
	freeHead         []int32 // indexed by home
	freeCount        []int32 // indexed by home
}

const nilFrame = int32(-1)

func newFrameStore(nGroups, framesPerGroup, nParts, partSize int) frameStore {
	n := nGroups * framesPerGroup
	homes := nGroups * nParts
	s := frameStore{
		nGroups:        nGroups,
		framesPerGroup: framesPerGroup,
		nParts:         nParts,
		partSize:       partSize,
		frames:         make([]frameMeta, n),
		prev:           make([]int32, n),
		next:           make([]int32, n),
		lruHead:        make([]int32, homes),
		lruTail:        make([]int32, homes),
		freeHead:       make([]int32, homes),
		freeCount:      make([]int32, homes),
	}
	for g := 0; g < nGroups; g++ {
		for p := 0; p < nParts; p++ {
			h := g*nParts + p
			s.lruHead[h] = nilFrame
			s.lruTail[h] = nilFrame
			// Chain the partition's frames into its free list in ascending
			// order. Pops are LIFO, so the pinned refmodel contract holds:
			// an untouched partition hands out frames lowest-id first, and
			// a released frame is the next one reused.
			base := int32(g*framesPerGroup + p*partSize)
			s.freeHead[h] = base
			s.freeCount[h] = int32(partSize)
			for i := int32(0); i < int32(partSize); i++ {
				f := base + i
				if i == int32(partSize)-1 {
					s.next[f] = nilFrame
				} else {
					s.next[f] = f + 1
				}
				s.prev[f] = nilFrame
			}
		}
	}
	return s
}

func (s *frameStore) numFrames() int { return len(s.frames) }

// homeOf recomputes the (group, partition) home of a frame from its id.
// It divides; hot paths derive the home from the block's set instead.
func (s *frameStore) homeOf(f int32) int {
	g := int(f) / s.framesPerGroup
	local := int(f) % s.framesPerGroup
	return g*s.nParts + local/s.partSize
}

// partOf returns the partition index of a frame within its d-group.
func (s *frameStore) partOf(f int32) int {
	return (int(f) % s.framesPerGroup) / s.partSize
}

// partBase returns the first frame id of home h's partition.
func (s *frameStore) partBase(h int) int32 {
	g, p := h/s.nParts, h%s.nParts
	return int32(g*s.framesPerGroup + p*s.partSize)
}

// takeFree pops a free frame from home h, or returns nilFrame.
func (s *frameStore) takeFree(h int) int32 {
	f := s.freeHead[h]
	if f == nilFrame {
		return nilFrame
	}
	s.freeHead[h] = s.next[f]
	s.freeCount[h]--
	return f
}

// victim selects an occupied frame of home h to demote; base is the
// partition's first frame id (precomputed by the caller). The caller
// must have exhausted takeFree first, so the partition is full and any
// frame is occupied; random selection is a single draw and LRU is the
// recency-list tail.
func (s *frameStore) victim(h int, base int32, useLRU bool, rng *mathx.RNG) int32 {
	if useLRU {
		f := s.lruTail[h]
		if f == nilFrame {
			panic(fmt.Sprintf("nurapid: d-group %d partition %d has no occupied frames",
				h/s.nParts, h%s.nParts))
		}
		return f
	}
	if s.freeCount[h] != 0 {
		panic(fmt.Sprintf("nurapid: random victim requested while partition %d has free frames",
			h%s.nParts))
	}
	return base + int32(rng.Intn(s.partSize))
}

// occupy installs a block into free frame f of home h and makes it most
// recent.
func (s *frameStore) occupy(f int32, h int, set int32, way int8) {
	if s.frames[f].valid {
		panic("nurapid: occupying a valid frame")
	}
	s.frames[f] = frameMeta{valid: true, set: set, way: way, hits: 0}
	s.lruPush(f, h)
}

// replace swaps the occupant of frame f for a new block, returning the
// old occupant's identity. Recency is refreshed: the incoming block was
// just accessed or just demoted.
func (s *frameStore) replace(f int32, h int, set int32, way int8) (oldSet int32, oldWay int8) {
	m := &s.frames[f]
	if !m.valid {
		panic("nurapid: replacing an empty frame")
	}
	oldSet, oldWay = m.set, m.way
	m.set, m.way = set, way
	m.hits = 0
	s.lruUnlink(f, h)
	s.lruPush(f, h)
	return oldSet, oldWay
}

// release frees frame f of home h (block evicted from the cache or
// promoted away).
func (s *frameStore) release(f int32, h int) {
	if !s.frames[f].valid {
		panic("nurapid: releasing an empty frame")
	}
	s.lruUnlink(f, h)
	s.frames[f].valid = false
	s.next[f] = s.freeHead[h]
	s.freeHead[h] = f
	s.freeCount[h]++
}

// touch marks frame f most recently used in its home.
func (s *frameStore) touch(f int32, h int) {
	s.lruUnlink(f, h)
	s.lruPush(f, h)
}

func (s *frameStore) lruPush(f int32, h int) {
	s.prev[f] = nilFrame
	s.next[f] = s.lruHead[h]
	if s.lruHead[h] != nilFrame {
		s.prev[s.lruHead[h]] = f
	}
	s.lruHead[h] = f
	if s.lruTail[h] == nilFrame {
		s.lruTail[h] = f
	}
}

func (s *frameStore) lruUnlink(f int32, h int) {
	if s.prev[f] != nilFrame {
		s.next[s.prev[f]] = s.next[f]
	} else {
		s.lruHead[h] = s.next[f]
	}
	if s.next[f] != nilFrame {
		s.prev[s.next[f]] = s.prev[f]
	} else {
		s.lruTail[h] = s.prev[f]
	}
	s.prev[f] = nilFrame
	s.next[f] = nilFrame
}

// checkIntegrity validates every home's lists (the auditor's data-array
// half): every occupied frame is on exactly its home's recency list with
// symmetric prev/next pointers and a consistent tail, every free frame
// on its home's free list, and counts agree. It runs in O(frames) with a
// single allocation so Config.Audit can afford it per access.
func (s *frameStore) checkIntegrity() error {
	onLRU := make([]bool, len(s.frames))
	for g := 0; g < s.nGroups; g++ {
		for p := 0; p < s.nParts; p++ {
			h := g*s.nParts + p
			onList := 0
			last := nilFrame
			for f := s.lruHead[h]; f != nilFrame; f = s.next[f] {
				if onLRU[f] {
					return fmt.Errorf("d-group %d partition %d: recency list cycle at %d", g, p, f)
				}
				if !s.frames[f].valid {
					return fmt.Errorf("d-group %d: free frame %d on recency list", g, f)
				}
				if s.homeOf(f) != h {
					return fmt.Errorf("d-group %d: frame %d on wrong partition list %d", g, f, p)
				}
				if s.prev[f] != last {
					return fmt.Errorf("d-group %d partition %d: frame %d prev pointer %d, want %d",
						g, p, f, s.prev[f], last)
				}
				onLRU[f] = true
				last = f
				onList++
			}
			if s.lruTail[h] != last {
				return fmt.Errorf("d-group %d partition %d: recency tail %d, want %d",
					g, p, s.lruTail[h], last)
			}
			free := int32(0)
			for f := s.freeHead[h]; f != nilFrame; f = s.next[f] {
				if s.frames[f].valid {
					return fmt.Errorf("d-group %d: occupied frame %d on free list", g, f)
				}
				if s.homeOf(f) != h {
					return fmt.Errorf("d-group %d: free frame %d on wrong partition list %d", g, f, p)
				}
				free++
				if free > int32(s.partSize) {
					return fmt.Errorf("d-group %d partition %d: free list cycle", g, p)
				}
			}
			if free != s.freeCount[h] {
				return fmt.Errorf("d-group %d partition %d: free count %d, list %d", g, p, s.freeCount[h], free)
			}
			occupied := 0
			base := s.partBase(h)
			for f := base; f < base+int32(s.partSize); f++ {
				if s.frames[f].valid {
					occupied++
				}
			}
			if occupied != onList {
				return fmt.Errorf("d-group %d partition %d: %d occupied frames but %d on recency list",
					g, p, occupied, onList)
			}
			if occupied+int(free) != s.partSize {
				return fmt.Errorf("d-group %d partition %d: %d occupied + %d free != %d",
					g, p, occupied, free, s.partSize)
			}
		}
	}
	return nil
}
