package nurapid

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"nurapid/internal/cmp"
	"nurapid/internal/obs"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

// obsBench is the record the observability bench smoke writes to
// BENCH_obs.json: Fig6 wall time probe-free, with a nil-returning probe
// factory (the disabled fast path the <3% budget covers), and with full
// Collector+Sampler probes attached to every run. The cmp_ fields
// repeat the measurement on the 2-core shared-L2 CMP experiment, whose
// hot path adds the queue-side emissions (Enqueue/Issue/Inval) and the
// time-series registry; its disabled overhead is gated at <3% in the
// test itself.
type obsBench struct {
	Experiment          string  `json:"experiment"`
	Apps                int     `json:"apps"`
	Instructions        int64   `json:"instructions_per_run"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	Iterations          int     `json:"iterations"`
	BaselineNS          int64   `json:"baseline_ns"`
	NilProbeNS          int64   `json:"nil_probe_ns"`
	ProbedNS            int64   `json:"probed_ns"`
	DisabledOverhead    float64 `json:"disabled_overhead"` // nil_probe/baseline - 1
	EnabledOverhead     float64 `json:"enabled_overhead"`  // probed/baseline - 1
	CMPBaselineNS       int64   `json:"cmp_baseline_ns"`
	CMPNilProbeNS       int64   `json:"cmp_nil_probe_ns"`
	CMPProbedNS         int64   `json:"cmp_probed_ns"`
	CMPDisabledOverhead float64 `json:"cmp_disabled_overhead"` // cmp_nil_probe/cmp_baseline - 1
	CMPEnabledOverhead  float64 `json:"cmp_enabled_overhead"`  // cmp_probed/cmp_baseline - 1
}

// TestBenchObsSmoke measures the observability layer's overhead
// contract on the Fig6 workload and on the 2-core shared-L2 CMP
// experiment: a nil probe factory must leave the rendered experiment
// output byte-identical to a probe-free runner and cost (near) nothing
// — <3% on the queued CMP path, asserted here — and even full probes
// must not change the output.
// Wall times and overhead ratios land in BENCH_obs.json. It only runs
// when BENCH_OBS_JSON names the output file (make obs-bench / CI), so
// plain `go test ./...` stays timing-free.
func TestBenchObsSmoke(t *testing.T) {
	out := os.Getenv("BENCH_OBS_JSON")
	if out == "" {
		t.Skip("set BENCH_OBS_JSON=<path> to run the observability bench smoke")
	}

	var apps []workload.App
	for _, name := range benchApps {
		a, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}

	timeExp := func(exp func(*sim.Runner) *sim.Experiment, extra []sim.Option) (time.Duration, string) {
		opts := []sim.Option{
			sim.WithInstructions(benchInstructions),
			sim.WithSeed(1),
			sim.WithApps(apps...),
			sim.WithWorkers(1), // serial: probe cost must not hide in idle cores
			sim.WithCores(2),
			sim.WithSharing(cmp.Shared),
		}
		opts = append(opts, extra...)
		r := sim.NewRunner(opts...)
		start := time.Now()
		e := exp(r)
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := e.Render(&buf, false); err != nil {
			t.Fatal(err)
		}
		if err := r.ProbeErr(); err != nil {
			t.Fatal(err)
		}
		return elapsed, buf.String()
	}
	fig6 := func(r *sim.Runner) *sim.Experiment { return r.Fig6() }
	cmpExp := func(r *sim.Runner) *sim.Experiment { return r.CMP() }

	nilFactory := sim.WithProbe(func(app, org string) obs.Probe { return nil })
	fullFactory := sim.WithProbe(func(app, org string) obs.Probe {
		return obs.Multi(obs.NewCollector(), obs.NewSampler("occupancy", 0))
	})

	// Best-of-iterations damps scheduler noise in the short CI runs; the
	// three probe modes are interleaved each round so clock drift and
	// thermal throttling hit them evenly instead of biasing whichever
	// mode runs last.
	const iterations = 3
	type sample struct {
		d   time.Duration
		out string
	}
	bench := func(exp func(*sim.Runner) *sim.Experiment) (base, nilP, full sample) {
		extras := [3][]sim.Option{nil, {nilFactory}, {fullFactory}}
		var got [3]sample
		for i := 0; i < iterations; i++ {
			for m, extra := range extras {
				d, o := timeExp(exp, extra)
				if i == 0 {
					got[m] = sample{d, o}
					continue
				}
				if o != got[m].out {
					t.Fatal("repeated runs rendered different bytes")
				}
				if d < got[m].d {
					got[m].d = d
				}
			}
		}
		return got[0], got[1], got[2]
	}

	fig6Base, fig6Nil, fig6Full := bench(fig6)
	baseline, disabled, probed := fig6Base.d, fig6Nil.d, fig6Full.d
	if fig6Base.out != fig6Nil.out {
		t.Fatalf("nil-probe factory changed rendered output (%d vs %d bytes)",
			len(fig6Base.out), len(fig6Nil.out))
	}
	if fig6Base.out != fig6Full.out {
		t.Fatalf("full probes changed rendered output (%d vs %d bytes)",
			len(fig6Base.out), len(fig6Full.out))
	}

	cmpBaseS, cmpNilS, cmpFullS := bench(cmpExp)
	cmpBase, cmpDisabled, cmpProbed := cmpBaseS.d, cmpNilS.d, cmpFullS.d
	if cmpBaseS.out != cmpNilS.out {
		t.Fatalf("nil-probe factory changed CMP output (%d vs %d bytes)",
			len(cmpBaseS.out), len(cmpNilS.out))
	}
	if cmpBaseS.out != cmpFullS.out {
		t.Fatalf("full probes changed CMP output (%d vs %d bytes)",
			len(cmpBaseS.out), len(cmpFullS.out))
	}

	rec := obsBench{
		Experiment:          "fig6+cmp2",
		Apps:                len(apps),
		Instructions:        benchInstructions,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Iterations:          iterations,
		BaselineNS:          baseline.Nanoseconds(),
		NilProbeNS:          disabled.Nanoseconds(),
		ProbedNS:            probed.Nanoseconds(),
		DisabledOverhead:    float64(disabled)/float64(baseline) - 1,
		EnabledOverhead:     float64(probed)/float64(baseline) - 1,
		CMPBaselineNS:       cmpBase.Nanoseconds(),
		CMPNilProbeNS:       cmpDisabled.Nanoseconds(),
		CMPProbedNS:         cmpProbed.Nanoseconds(),
		CMPDisabledOverhead: float64(cmpDisabled)/float64(cmpBase) - 1,
		CMPEnabledOverhead:  float64(cmpProbed)/float64(cmpBase) - 1,
	}
	// The queued CMP path carries the new Enqueue/Issue/Inval emission
	// sites; its nil-probe fast path is budgeted at <3%.
	if rec.CMPDisabledOverhead > 0.03 {
		t.Fatalf("CMP disabled-probe overhead %.2f%% exceeds the 3%% budget",
			rec.CMPDisabledOverhead*100)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fig6 baseline %v, nil-probe %v (%+.1f%%), probed %v (%+.1f%%); recorded in %s",
		baseline, disabled, rec.DisabledOverhead*100, probed, rec.EnabledOverhead*100, out)
	t.Logf("cmp2 baseline %v, nil-probe %v (%+.1f%%), probed %v (%+.1f%%)",
		cmpBase, cmpDisabled, rec.CMPDisabledOverhead*100, cmpProbed, rec.CMPEnabledOverhead*100)
}
