package nurapid

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"nurapid/internal/obs"
	"nurapid/internal/sim"
	"nurapid/internal/workload"
)

// obsBench is the record the observability bench smoke writes to
// BENCH_obs.json: Fig6 wall time probe-free, with a nil-returning probe
// factory (the disabled fast path the <3% budget covers), and with full
// Collector+Sampler probes attached to every run.
type obsBench struct {
	Experiment       string  `json:"experiment"`
	Apps             int     `json:"apps"`
	Instructions     int64   `json:"instructions_per_run"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Iterations       int     `json:"iterations"`
	BaselineNS       int64   `json:"baseline_ns"`
	NilProbeNS       int64   `json:"nil_probe_ns"`
	ProbedNS         int64   `json:"probed_ns"`
	DisabledOverhead float64 `json:"disabled_overhead"` // nil_probe/baseline - 1
	EnabledOverhead  float64 `json:"enabled_overhead"`  // probed/baseline - 1
}

// TestBenchObsSmoke measures the observability layer's overhead
// contract on the Fig6 workload: a nil probe factory must leave the
// rendered experiment output byte-identical to a probe-free runner and
// cost (near) nothing, and even full probes must not change the output.
// Wall times and overhead ratios land in BENCH_obs.json. It only runs
// when BENCH_OBS_JSON names the output file (make obs-bench / CI), so
// plain `go test ./...` stays timing-free.
func TestBenchObsSmoke(t *testing.T) {
	out := os.Getenv("BENCH_OBS_JSON")
	if out == "" {
		t.Skip("set BENCH_OBS_JSON=<path> to run the observability bench smoke")
	}

	var apps []workload.App
	for _, name := range benchApps {
		a, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		apps = append(apps, a)
	}

	timeFig6 := func(extra ...sim.Option) (time.Duration, string) {
		opts := []sim.Option{
			sim.WithInstructions(benchInstructions),
			sim.WithSeed(1),
			sim.WithApps(apps...),
			sim.WithWorkers(1), // serial: probe cost must not hide in idle cores
		}
		opts = append(opts, extra...)
		r := sim.NewRunner(opts...)
		start := time.Now()
		e := r.Fig6()
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := e.Render(&buf, false); err != nil {
			t.Fatal(err)
		}
		if err := r.ProbeErr(); err != nil {
			t.Fatal(err)
		}
		return elapsed, buf.String()
	}

	nilFactory := sim.WithProbe(func(app, org string) obs.Probe { return nil })
	fullFactory := sim.WithProbe(func(app, org string) obs.Probe {
		return obs.Multi(obs.NewCollector(), obs.NewSampler("occupancy", 0))
	})

	// Best-of-iterations damps scheduler noise in the short CI runs.
	const iterations = 2
	best := func(extra ...sim.Option) (time.Duration, string) {
		bestD, bestOut := timeFig6(extra...)
		for i := 1; i < iterations; i++ {
			d, o := timeFig6(extra...)
			if o != bestOut {
				t.Fatal("repeated Fig6 runs rendered different bytes")
			}
			if d < bestD {
				bestD = d
			}
		}
		return bestD, bestOut
	}

	baseline, baseBytes := best()
	disabled, nilBytes := best(nilFactory)
	probed, fullBytes := best(fullFactory)

	if baseBytes != nilBytes {
		t.Fatalf("nil-probe factory changed rendered output (%d vs %d bytes)",
			len(baseBytes), len(nilBytes))
	}
	if baseBytes != fullBytes {
		t.Fatalf("full probes changed rendered output (%d vs %d bytes)",
			len(baseBytes), len(fullBytes))
	}

	rec := obsBench{
		Experiment:       "fig6",
		Apps:             len(apps),
		Instructions:     benchInstructions,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Iterations:       iterations,
		BaselineNS:       baseline.Nanoseconds(),
		NilProbeNS:       disabled.Nanoseconds(),
		ProbedNS:         probed.Nanoseconds(),
		DisabledOverhead: float64(disabled)/float64(baseline) - 1,
		EnabledOverhead:  float64(probed)/float64(baseline) - 1,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fig6 baseline %v, nil-probe %v (%+.1f%%), probed %v (%+.1f%%); recorded in %s",
		baseline, disabled, rec.DisabledOverhead*100, probed, rec.EnabledOverhead*100, out)
}
